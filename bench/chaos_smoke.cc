/**
 * @file
 * Chaos smoke: end-to-end reliable delivery under a transient-fault
 * barrage. An 8x8 mesh under moderate uniform-random load runs with
 * the reliability protocol on while a fixed spin-faults/v2 schedule
 * throws flaky links, a link outage, a router outage, and one-shot
 * drop/corrupt arms at it. After injection stops the network drains,
 * and the bench audits the delivery record:
 *
 *   * exactly-once -- every (source, destination) flow ejected its
 *     sequence numbers 0..n-1 with no gap and no duplicate;
 *   * nothing lost -- no packet retired by a fault path, none
 *     abandoned by the escalation ladder, zero left in flight;
 *   * deterministic -- the JSON report is bit-identical for any
 *     --threads N (CI diffs -t1 against -t4).
 *
 * Exit code 0 when the audit passes, 1 otherwise (with the violations
 * printed), so CI can gate on it directly.
 */

#include <cstdio>
#include <map>
#include <set>
#include <utility>

#include "bench/BenchUtil.hh"
#include "topology/Mesh.hh"

using namespace spin;
using namespace spin::bench;

namespace
{

/**
 * The barrage. Every arm is transient or one-shot and every window
 * closes before the drain, so a correct protocol must converge to
 * exactly-once delivery; anything left over is a bug, not bad luck.
 */
const char *kChaosSchedule = R"({
  "schema": "spin-faults/v2",
  "events": [
    {"kind": "flaky-links", "cycle": 100, "count": 6, "seed": 11,
     "window": 1200, "prob": 0.02},
    {"kind": "link-outage", "cycle": 300, "src": 9, "dst": 10,
     "duration": 250},
    {"kind": "router-outage", "cycle": 700, "router": 27,
     "duration": 200},
    {"kind": "drop", "cycle": 450, "src": 18, "dst": 19},
    {"kind": "drop", "cycle": 900, "src": 35, "dst": 43},
    {"kind": "corrupt", "cycle": 500, "src": 28, "dst": 36},
    {"kind": "corrupt", "cycle": 1100, "src": 52, "dst": 53}
  ]
})";

struct FlowAudit
{
    std::uint64_t delivered = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t maxSeq = 0;
    std::set<std::uint64_t> seen;
};

} // namespace

int
main(int argc, char **argv)
{
    Options opt = Options::parse(argc, argv);
    // The point of the bench is the protocol; it is not optional here.
    opt.reliability = true;

    const auto topo = std::make_shared<Topology>(makeMesh(8, 8));
    NetworkConfig cfg;
    cfg.name = "chaos-smoke";
    cfg.vnets = 1;
    cfg.vcsPerVnet = 3;
    cfg.vcDepth = 5;
    cfg.maxPacketSize = 5;
    cfg.scheme = DeadlockScheme::Spin;
    opt.apply(cfg);

    auto net = buildNetwork(topo, cfg, RoutingKind::MinimalAdaptive);
    attachMetrics(*net, opt, "chaos-smoke");
    TraceAttacher ta(opt.tracePath);
    ta(*net);

    fault::FaultSchedule fs;
    std::string ferr;
    if (!opt.faultsPath.empty()) {
        if (!fault::FaultSchedule::fromFile(opt.faultsPath, fs, ferr))
            SPIN_FATAL(ferr);
    } else {
        const obs::JsonValue doc = obs::JsonValue::parse(kChaosSchedule);
        const bool ok = fault::FaultSchedule::fromJson(doc, fs, ferr);
        SPIN_ASSERT(ok, "builtin chaos schedule invalid: ", ferr);
    }
    net->attachFaults(std::move(fs));

    // Delivery record, keyed by flow. The listener fires once per
    // retired packet *after* duplicate suppression, so a duplicate
    // sequence number reaching it is a protocol violation in itself.
    std::map<std::pair<NodeId, NodeId>, FlowAudit> flows;
    std::uint64_t recovered = 0;
    net->setEjectListener([&](const PacketPtr &pkt) {
        FlowAudit &fa = flows[{pkt->src, pkt->dest}];
        if (!fa.seen.insert(pkt->e2eSeq).second)
            ++fa.duplicates;
        ++fa.delivered;
        fa.maxSeq = std::max(fa.maxSeq, pkt->e2eSeq);
        if (pkt->attempt > 0 || pkt->linkRetried)
            ++recovered;
    });

    // Inject through the whole fault barrage, then drain. --fast
    // shrinks the injection window but never below the last armed
    // fault, so every arm always fires.
    const Cycle inject =
        std::max<Cycle>(opt.warmup + opt.measure, 1400);
    const Cycle drainBudget = 60000;
    InjectorConfig icfg;
    icfg.injectionRate = 0.10;
    icfg.seed = cfg.seed + 1;
    SyntheticInjector inj(*net, Pattern::UniformRandom, icfg);

    WallLimitGuard wall(opt.wallLimit);
    for (Cycle i = 0; i < inject; ++i) {
        inj.tick();
        net->step();
        wall.check(*net);
    }
    Cycle drained = 0;
    while (net->packetsInFlight() > 0 && drained < drainBudget) {
        net->step();
        wall.check(*net);
        ++drained;
    }

    // ------------------------------------------------------------------
    // Audit.
    // ------------------------------------------------------------------
    const Stats &s = net->stats();
    std::vector<std::string> violations;
    const auto expect = [&](bool ok, const std::string &what) {
        if (!ok)
            violations.push_back(what);
    };

    std::uint64_t delivered = 0, duplicates = 0, gaps = 0;
    for (const auto &kv : flows) {
        const FlowAudit &fa = kv.second;
        delivered += fa.delivered;
        duplicates += fa.duplicates;
        // Exactly-once: n deliveries must cover seqs 0..n-1.
        if (fa.seen.size() != fa.maxSeq + 1)
            ++gaps;
    }
    expect(duplicates == 0, "duplicate deliveries: " +
                                std::to_string(duplicates));
    expect(gaps == 0, "flows with sequence gaps: " +
                          std::to_string(gaps));
    expect(net->packetsInFlight() == 0,
           "packets still in flight after drain: " +
               std::to_string(net->packetsInFlight()));
    expect(s.packetsAbandoned == 0,
           "packets abandoned: " + std::to_string(s.packetsAbandoned));
    expect(s.packetsLostToFaults == 0,
           "packets lost to faults: " +
               std::to_string(s.packetsLostToFaults));
    expect(s.crcFails > 0 || s.retransmits > 0,
           "the barrage never hit anything; schedule is inert");

    std::printf("chaos-smoke: %llu flows, %llu delivered, %llu "
                "recovered, %llu retransmits, %llu link retries, %llu "
                "dup drops, %llu crc fails, drained in %llu cycles\n",
                static_cast<unsigned long long>(flows.size()),
                static_cast<unsigned long long>(delivered),
                static_cast<unsigned long long>(recovered),
                static_cast<unsigned long long>(s.retransmits),
                static_cast<unsigned long long>(s.linkRetries),
                static_cast<unsigned long long>(s.dupDrops),
                static_cast<unsigned long long>(s.crcFails),
                static_cast<unsigned long long>(drained));
    for (const std::string &v : violations)
        std::printf("VIOLATION: %s\n", v.c_str());
    std::printf("chaos-smoke: %s\n",
                violations.empty() ? "PASS" : "FAIL");

    if (!opt.jsonPath.empty()) {
        BenchReporter rep("chaos_smoke", opt);
        obs::JsonValue audit = obs::JsonValue::object();
        audit.set("flows", obs::JsonValue(
                               static_cast<std::uint64_t>(flows.size())));
        audit.set("delivered", obs::JsonValue(delivered));
        audit.set("duplicates", obs::JsonValue(duplicates));
        audit.set("sequenceGaps", obs::JsonValue(gaps));
        audit.set("recovered", obs::JsonValue(recovered));
        audit.set("drainCycles", obs::JsonValue(drained));
        audit.set("pass", obs::JsonValue(violations.empty()));
        rep.add("audit", std::move(audit));
        rep.add("stats", s.toJson());
        if (!rep.writeIfRequested(opt))
            return 1;
    }
    return violations.empty() ? 0 : 1;
}
