/**
 * @file
 * google-benchmark micro benchmarks for the SPIN recovery pipeline:
 * wall-clock cost of a full detect-probe-move-spin round on a ring
 * deadlock, with the simulated recovery latency (cycles from injection
 * to resolution) reported as a counter -- the quantity the theory
 * section's bounds speak to.
 */

#include <benchmark/benchmark.h>

#include "tests/SpinTestUtil.hh"

using namespace spin;

namespace
{

void
BM_RingDeadlockRecovery(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    double cycles_sum = 0.0;
    int runs = 0;
    for (auto _ : state) {
        auto net = ringNetwork(n, DeadlockScheme::Spin, 1, 32);
        injectRingDeadlock(*net);
        const Cycle spent = drain(*net, 100000);
        if (net->packetsInFlight() != 0)
            state.SkipWithError("deadlock not resolved");
        cycles_sum += static_cast<double>(spent);
        ++runs;
    }
    state.counters["sim-cycles-to-resolve"] = cycles_sum / runs;
}
BENCHMARK(BM_RingDeadlockRecovery)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

void
BM_ProbePhaseOnly(benchmark::State &state)
{
    // Cost of running the SM phase machinery on an idle network (the
    // common case: no SMs anywhere).
    auto net = ringNetwork(8, DeadlockScheme::Spin);
    for (auto _ : state)
        net->step();
    state.counters["cycles/s"] =
        benchmark::Counter(static_cast<double>(state.iterations()),
                           benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ProbePhaseOnly)->Unit(benchmark::kNanosecond);

} // namespace

BENCHMARK_MAIN();
