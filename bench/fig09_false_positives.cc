/**
 * @file
 * Reproduces Fig. 9: spins and false-positive spins as a function of
 * injection rate, for 1-VC and 3-VC designs on the 8x8 mesh (uniform
 * random) and the 1024-node dragonfly (bit complement).
 *
 * Expected shape: zero false positives for 1-VC designs (probe forking
 * cannot happen); mesh-3VC shows false positives only at high load;
 * spins grow with load; the dragonfly 3-VC design spins less than the
 * 1-VC design (more VCs, fewer deadlocks) at comparable rates.
 */

#include "bench/BenchUtil.hh"
#include "topology/Dragonfly.hh"
#include "topology/Mesh.hh"

using namespace spin;
using namespace spin::bench;

namespace
{

obs::JsonValue
spinSweep(const char *label, const std::shared_ptr<const Topology> &topo,
          RoutingKind kind, int vcs, Pattern pattern,
          const std::vector<double> &rates, Cycle cycles,
          const Options &opt)
{
    obs::JsonValue block = obs::JsonValue::object();
    block.set("label", obs::JsonValue(label));
    block.set("vcsPerVnet", obs::JsonValue(vcs));
    block.set("pattern", obs::JsonValue(toString(pattern)));
    obs::JsonValue rows = obs::JsonValue::array();
    std::printf("--- %s (%d VC/vnet, %s, %llu cycles) ---\n", label, vcs,
                toString(pattern).c_str(),
                static_cast<unsigned long long>(cycles));
    std::printf("%8s %10s %14s %12s %12s\n", "rate", "spins",
                "false-pos", "probes", "probe-ret");
    for (const double rate : rates) {
        NetworkConfig cfg;
        cfg.vnets = 1;
        cfg.vcsPerVnet = vcs;
        cfg.vcDepth = 5;
        cfg.maxPacketSize = 5;
        cfg.scheme = DeadlockScheme::Spin;
        if (opt.seedSet)
            cfg.seed = opt.seed;
        auto net = buildNetwork(topo, cfg, kind);
        InjectorConfig icfg;
        icfg.injectionRate = rate;
        SyntheticInjector inj(*net, pattern, icfg);
        for (Cycle i = 0; i < cycles; ++i) {
            inj.tick();
            net->step();
        }
        const Stats &st = net->stats();
        std::printf("%8.2f %10llu %14llu %12llu %12llu\n", rate,
                    static_cast<unsigned long long>(st.spins),
                    static_cast<unsigned long long>(st.falsePositiveSpins),
                    static_cast<unsigned long long>(st.probesSent),
                    static_cast<unsigned long long>(st.probesReturned));
        obs::JsonValue row = obs::JsonValue::object();
        row.set("rate", obs::JsonValue(rate));
        row.set("spins", obs::JsonValue(st.spins));
        row.set("falsePositiveSpins", obs::JsonValue(st.falsePositiveSpins));
        row.set("probesSent", obs::JsonValue(st.probesSent));
        row.set("probesReturned", obs::JsonValue(st.probesReturned));
        rows.push(std::move(row));
    }
    std::printf("\n");
    block.set("rows", std::move(rows));
    return block;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = Options::parse(argc, argv);
    const Cycle mesh_cycles = opt.fast ? 5000 : 20000;
    const Cycle dfly_cycles = opt.fast ? 2000 : 6000;

    std::printf("=== Fig. 9: spins and false positives vs injection "
                "rate ===\n\n");

    BenchReporter report("fig09_false_positives", opt);
    obs::JsonValue blocks = obs::JsonValue::array();

    auto mesh = std::make_shared<Topology>(makeMesh(8, 8));
    const std::vector<double> mesh_rates{0.05, 0.15, 0.25, 0.35, 0.45};
    blocks.push(spinSweep("8x8 mesh", mesh, RoutingKind::MinimalAdaptive,
                          1, Pattern::UniformRandom, mesh_rates,
                          mesh_cycles, opt));
    blocks.push(spinSweep("8x8 mesh", mesh, RoutingKind::MinimalAdaptive,
                          3, Pattern::UniformRandom, mesh_rates,
                          mesh_cycles, opt));

    auto dfly = std::make_shared<Topology>(makePaperDragonfly());
    const std::vector<double> dfly_rates{0.05, 0.15, 0.25};
    blocks.push(spinSweep("1024-node dragonfly", dfly,
                          RoutingKind::MinimalAdaptive, 1,
                          Pattern::BitComplement, dfly_rates, dfly_cycles,
                          opt));
    blocks.push(spinSweep("1024-node dragonfly", dfly,
                          RoutingKind::UgalSpin, 3, Pattern::BitComplement,
                          dfly_rates, dfly_cycles, opt));
    report.add("spinSweeps", std::move(blocks));
    return report.writeIfRequested(opt) ? 0 : 1;
}
