/**
 * @file
 * Reproduces Fig. 9: spins and false-positive spins as a function of
 * injection rate, for 1-VC and 3-VC designs on the 8x8 mesh (uniform
 * random) and the 1024-node dragonfly (bit complement). Thin wrapper
 * over the built-in `fig09-mesh` and `fig09-dragonfly` sweep specs
 * (see docs/SWEEP.md); the spin counters accumulate over the whole
 * run (warmup 0 in both specs).
 *
 * Expected shape: zero false positives for 1-VC designs (probe forking
 * cannot happen); mesh-3VC shows false positives only at high load;
 * spins grow with load; the dragonfly 3-VC design spins less than the
 * 1-VC design (more VCs, fewer deadlocks) at comparable rates.
 */

#include "bench/CampaignBench.hh"

int
main(int argc, char **argv)
{
    return spin::bench::runCampaignMain(
        "=== Fig. 9: spins and false positives vs injection rate ===",
        {"fig09-mesh", "fig09-dragonfly"},
        spin::bench::CampaignReport::SpinCounts, argc, argv);
}
