/**
 * @file
 * Reproduces Fig. 6: latency vs. injection rate on the 1024-node
 * off-chip dragonfly (p=4, a=8, h=4, g=32; 1-cycle local, 3-cycle
 * global links). 3-VC pair: UGAL with Dally VC-ordering avoidance vs
 * UGAL + SPIN with free VC use; 1-VC pair: minimal adaptive + SPIN vs
 * FAvORS-NMin + SPIN. Thin wrapper over the built-in `fig06` sweep
 * spec; run with -jN for a worker pool, --resume to continue an
 * interrupted campaign (see docs/SWEEP.md).
 *
 * Expected shape (paper Sec. VI-C): UGAL+SPIN saturates markedly higher
 * than VC-ordered UGAL on bit-complement / tornado / neighbor;
 * FAvORS-NMin beats 1-VC minimal on tornado and bit-complement and ties
 * on transpose/neighbor.
 */

#include "bench/CampaignBench.hh"

int
main(int argc, char **argv)
{
    return spin::bench::runCampaignMain(
        "=== Fig. 6: 1024-node dragonfly latency vs injection rate ===",
        {"fig06"}, spin::bench::CampaignReport::LatencySeries, argc,
        argv);
}
