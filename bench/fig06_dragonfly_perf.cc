/**
 * @file
 * Reproduces Fig. 6: latency vs. injection rate on the 1024-node
 * off-chip dragonfly (p=4, a=8, h=4, g=32; 1-cycle local, 3-cycle
 * global links). 3-VC pair: UGAL with Dally VC-ordering avoidance vs
 * UGAL + SPIN with free VC use; 1-VC pair: minimal adaptive + SPIN vs
 * FAvORS-NMin + SPIN.
 *
 * Expected shape (paper Sec. VI-C): UGAL+SPIN saturates markedly higher
 * than VC-ordered UGAL on bit-complement / tornado / neighbor;
 * FAvORS-NMin beats 1-VC minimal on tornado and bit-complement and ties
 * on transpose/neighbor.
 */

#include "bench/BenchUtil.hh"
#include "topology/Dragonfly.hh"

using namespace spin;
using namespace spin::bench;

int
main(int argc, char **argv)
{
    Options opt = Options::parse(argc, argv);
    // The 1024-node network is ~20x the mesh's per-cycle cost; keep the
    // default windows tighter than the mesh bench.
    if (opt.warmup == 2000 && opt.measure == 4000) {
        opt.warmup = 1200;
        opt.measure = 2000;
    }
    auto topo = std::make_shared<Topology>(makePaperDragonfly());

    const std::vector<Pattern> patterns = {
        Pattern::UniformRandom, Pattern::BitComplement,
        Pattern::Transpose, Pattern::Tornado, Pattern::Neighbor,
    };

    std::vector<ConfigPreset> presets = dragonflyPresets3Vc();
    for (ConfigPreset &p : dragonflyPresets1Vc())
        presets.push_back(p);
    for (ConfigPreset &p : presets)
        opt.apply(p);

    std::printf("=== Fig. 6: 1024-node dragonfly latency vs injection "
                "rate ===\n\n");
    struct SatRow
    {
        std::string config, pattern;
        double sat;
    };
    std::vector<SatRow> summary;
    BenchReporter report("fig06_dragonfly_perf", opt);
    TraceAttacher attach(opt.tracePath);

    for (const Pattern pat : patterns) {
        const auto rates = rateLadder(0.02, 0.32, opt.fast ? 4 : 6);
        for (const ConfigPreset &preset : presets) {
            const SweepResult res =
                sweep(preset, topo, pat, rates, opt, 600.0,
                      [&](Network &n) { attach(n); });
            report.addSweep(preset.name, toString(pat), res);
            summary.push_back({preset.name, toString(pat),
                               res.saturationRate});
        }
    }

    std::printf("=== Saturation-throughput summary (flits/node/cycle) "
                "===\n%-24s %-16s %8s\n", "config", "pattern", "sat");
    for (const auto &r : summary)
        std::printf("%-24s %-16s %8.3f\n", r.config.c_str(),
                    r.pattern.c_str(), r.sat);
    return report.writeIfRequested(opt) ? 0 : 1;
}
