/**
 * @file
 * Shared harness for the table/figure reproduction benches: latency
 * versus injection-rate sweeps with warmup, saturation early-exit, and
 * aligned table printing. Every bench accepts:
 *
 *   --warmup N     warmup cycles per point
 *   --measure N    measurement cycles per point
 *   --fast         quarter-scale run for smoke testing
 *   --seed N       override the preset's RNG seed
 *   --json PATH    also write the results as machine-readable JSON
 *   --trace PATH   capture a Chrome trace (chrome://tracing / Perfetto)
 *                  of the first simulated network
 *
 * Unknown flags are rejected with the usage message. The printed
 * rows/series match the paper's figure; absolute numbers differ from
 * the paper's gem5 testbed, the *shape* (who saturates first, by
 * roughly what factor) is what EXPERIMENTS.md validates.
 */

#ifndef SPINNOC_BENCH_BENCHUTIL_HH
#define SPINNOC_BENCH_BENCHUTIL_HH

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/Logging.hh"
#include "deadlock/Invariants.hh"
#include "exp/ArgParse.hh"
#include "exp/Report.hh"
#include "fault/FaultSchedule.hh"
#include "network/NetworkBuilder.hh"
#include "obs/Json.hh"
#include "obs/Metrics.hh"
#include "obs/Profiler.hh"
#include "obs/Tracer.hh"
#include "traffic/SyntheticInjector.hh"

namespace spin::bench
{

/** Common CLI options. */
struct Options
{
    Cycle warmup = 2000;
    Cycle measure = 4000;
    bool fast = false;
    std::uint64_t seed = 0;
    bool seedSet = false;
    std::string jsonPath;
    std::string tracePath;
    std::string faultsPath;
    std::string metricsPath;
    Cycle metricsInterval = 256;
    /** Run the invariant auditor every N cycles; 0 disables. A
     *  violation fails the bench fast with a spin-audit/v1 report. */
    Cycle auditInterval = 0;
    bool profile = false;
    /** Threads inside each simulated network's step() (--threads).
     *  Results are bit-identical for any value (docs/SCALING.md), so
     *  this is an execution knob and never lands in the JSON export. */
    std::uint64_t threads = 1;
    /** End-to-end reliability (--reliability and friends). Defaults
     *  mirror ReliabilityConfig; the knobs only take effect when
     *  reliability is on, so reliability-off runs stay byte-identical
     *  to historical baselines. */
    bool reliability = false;
    std::uint64_t retxTimeout = 512;
    std::uint64_t retxMax = 5;
    std::uint64_t linkRetries = 3;
    std::uint64_t watchdog = 100000;
    /** Wall-clock watchdog in seconds (--wall-limit); 0 disables. On
     *  overrun the bench dumps telemetry (plus NIC retransmit state
     *  when reliability is on) and fails fast instead of hanging CI. */
    std::uint64_t wallLimit = 0;

    static const char *
    usage()
    {
        return "options:\n"
               "  --warmup N     warmup cycles per point\n"
               "  --measure N    measurement cycles per point\n"
               "  --fast         quarter-scale smoke run\n"
               "  --seed N       override the preset RNG seed\n"
               "  --json PATH    write results as JSON\n"
               "  --trace PATH   write a Chrome trace of the first "
               "network\n"
               "  --faults PATH  inject faults from a spin-faults/v2 "
               "spec\n"
               "  --metrics PATH spin-metrics/v2 JSONL of every "
               "simulated network\n"
               "  --metrics-interval N  metrics window in cycles "
               "(default 256)\n"
               "  --audit N      run the invariant auditor every N "
               "cycles;\n"
               "                 fail fast with a spin-audit/v1 report\n"
               "  --profile      per-phase wall-clock attribution\n"
               "  --threads N    threads inside each simulated network\n"
               "                 (default 1; bit-identical results for "
               "any N)\n"
               "  --reliability  end-to-end reliable delivery (CRC, "
               "link retry,\n"
               "                 NIC retransmission; docs/FAULTS.md)\n"
               "  --retx-timeout N  base ack timeout in cycles "
               "(default 512)\n"
               "  --retx-max N   retransmit attempts before abandoning "
               "(default 5)\n"
               "  --link-retries N  per-link retry budget per flit "
               "(default 3)\n"
               "  --watchdog N   livelock watchdog budget in cycles\n"
               "                 (default 100000)\n"
               "  --wall-limit N fail fast after N wall-clock seconds "
               "with a\n"
               "                 telemetry dump (0 = off)\n"
               "  --help         this message\n";
    }

    /**
     * Testable parser core, built on exp::ArgParse: unknown flags,
     * missing values and malformed numerics all fail with @p err set;
     * never exits. "--help" is treated as an error here so parse() can
     * special-case it.
     */
    static bool
    parseInto(Options &o, int argc, char **argv, std::string &err)
    {
        const std::vector<exp::ArgSpec> specs = {
            exp::argU64("--warmup", &o.warmup),
            exp::argU64("--measure", &o.measure),
            exp::argU64("--seed", &o.seed, &o.seedSet),
            exp::argStr("--json", &o.jsonPath),
            exp::argStr("--trace", &o.tracePath),
            exp::argStr("--faults", &o.faultsPath),
            exp::argStr("--metrics", &o.metricsPath),
            exp::argU64("--metrics-interval", &o.metricsInterval),
            exp::argU64("--audit", &o.auditInterval),
            exp::argFlag("--profile", &o.profile),
            exp::argU64("--threads", &o.threads),
            exp::argFlag("--reliability", &o.reliability),
            exp::argU64("--retx-timeout", &o.retxTimeout),
            exp::argU64("--retx-max", &o.retxMax),
            exp::argU64("--link-retries", &o.linkRetries),
            exp::argU64("--watchdog", &o.watchdog),
            exp::argU64("--wall-limit", &o.wallLimit),
            exp::argFlag("--fast", &o.fast),
        };
        if (!exp::parseArgs(argc, argv, specs, err))
            return false;
        if (o.fast) {
            o.warmup /= 4;
            o.measure /= 4;
        }
        return true;
    }

    /** CLI entry: parse or die with the usage message. */
    static Options
    parse(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i) {
            if (!std::strcmp(argv[i], "--help") ||
                !std::strcmp(argv[i], "-h")) {
                std::printf("%s", usage());
                std::exit(0);
            }
        }
        Options o;
        std::string err;
        if (!parseInto(o, argc, argv, err)) {
            std::fprintf(stderr, "%s: %s\n%s", argv[0], err.c_str(),
                         usage());
            std::exit(2);
        }
        return o;
    }

    /** Apply CLI overrides (--seed, --threads) to a raw config before
     *  building (for benches that assemble their own NetworkConfig). */
    void
    apply(NetworkConfig &cfg) const
    {
        if (seedSet)
            cfg.seed = seed;
        cfg.threads = threads > 0 ? static_cast<int>(threads) : 1;
        if (reliability) {
            cfg.reliability.enabled = true;
            cfg.reliability.ackTimeout = retxTimeout;
            cfg.reliability.maxRetransmits = static_cast<int>(retxMax);
            cfg.reliability.maxLinkRetries =
                static_cast<int>(linkRetries);
            cfg.reliability.watchdogBudget = watchdog;
        }
    }

    /** Apply CLI overrides (--seed, --threads) to a preset before
     *  building. */
    void
    apply(ConfigPreset &p) const
    {
        apply(p.cfg);
    }
};

/**
 * Shared append stream for --metrics: a bench simulates many networks
 * (one per sweep point) that all publish into one JSONL file, so the
 * stream is opened once per path and every network gets a borrowing
 * StreamMetricsSink. Returns nullptr (after complaining once) when the
 * path cannot be opened. Benches are single-threaded by construction.
 */
inline std::ostream *
sharedMetricsStream(const std::string &path)
{
    static std::map<std::string, std::unique_ptr<std::ofstream>> streams;
    auto it = streams.find(path);
    if (it == streams.end()) {
        auto os = std::make_unique<std::ofstream>(path);
        if (!*os) {
            std::fprintf(stderr, "cannot open metrics file %s\n",
                         path.c_str());
            os.reset();
        }
        it = streams.emplace(path, std::move(os)).first;
    }
    return it->second ? it->second.get() : nullptr;
}

/** Enable --metrics publication on a freshly built network. @p label
 *  tags every record ("cell" field), e.g. "mesh-spin|uniform|0.42". */
inline void
attachMetrics(Network &net, const Options &opt, const std::string &label)
{
    if (opt.metricsPath.empty())
        return;
    std::ostream *os = sharedMetricsStream(opt.metricsPath);
    if (!os)
        return;
    obs::MetricsConfig mcfg;
    mcfg.interval = opt.metricsInterval > 0 ? opt.metricsInterval : 256;
    mcfg.label = label;
    net.enableMetrics(mcfg, std::make_unique<obs::StreamMetricsSink>(*os));
}

/** Process-wide phase-profile accumulator for --profile: every network
 *  a bench simulates merges its totals here before destruction. */
inline obs::PhaseProfiler &
profileTotals()
{
    static obs::PhaseProfiler totals;
    return totals;
}

/**
 * Wall-clock watchdog for --wall-limit: sampled every ~1024 simulated
 * cycles (cheap enough for inner loops). On overrun it writes the
 * network's telemetry -- including per-NIC retransmit state when any
 * retransmit queue is nonempty -- to spin-wall-limit.json and fails
 * fast, so a livelocked or wedged run leaves forensics instead of
 * hanging CI.
 */
class WallLimitGuard
{
  public:
    explicit WallLimitGuard(std::uint64_t limit_seconds)
        : limit_(limit_seconds),
          start_(std::chrono::steady_clock::now())
    {}

    void
    check(Network &net)
    {
        if (limit_ == 0 || (++ticks_ & 1023u) != 0)
            return;
        const auto elapsed =
            std::chrono::duration_cast<std::chrono::seconds>(
                std::chrono::steady_clock::now() - start_)
                .count();
        if (static_cast<std::uint64_t>(elapsed) < limit_)
            return;
        obs::JsonValue doc = net.telemetryJson();
        obs::JsonValue retx = obs::JsonValue::array();
        for (int n = 0; n < net.numNodes(); ++n) {
            Nic &nic = net.nic(static_cast<NodeId>(n));
            if (nic.retxQueueLength() > 0)
                retx.push(nic.retxJson(net.now()));
        }
        doc.set("retx", std::move(retx));
        const char *path = "spin-wall-limit.json";
        std::ofstream os(path);
        os << doc.dump(2) << '\n';
        SPIN_FATAL("wall-clock limit of ", limit_,
                   "s exceeded at cycle ", net.now(),
                   "; telemetry: ", path);
    }

  private:
    std::uint64_t limit_;
    std::chrono::steady_clock::time_point start_;
    std::uint64_t ticks_ = 0;
};

/** One point of a latency/throughput sweep. */
struct SweepPoint
{
    double rate = 0.0;
    double latency = 0.0;    //!< avg end-to-end latency, cycles
    double throughput = 0.0; //!< received flits/node/cycle
    bool saturated = false;
};

/** Result of a sweep: points plus the estimated saturation rate. */
struct SweepResult
{
    std::vector<SweepPoint> points;
    /**
     * Last offered rate whose received throughput stayed within 10% of
     * offered and whose latency stayed under the saturation cap.
     */
    double saturationRate = 0.0;
};

/**
 * Run one latency-vs-injection sweep.
 *
 * A point counts as saturated when the average latency exceeds
 * @p latency_cap or throughput falls >10% below offered load; the sweep
 * stops two points after first saturation (enough to draw the knee).
 *
 * @p instrument, when set, is invoked on each freshly built network
 * before simulation starts (e.g. to attach a tracer or samplers).
 */
inline SweepResult
sweep(const ConfigPreset &preset,
      const std::shared_ptr<const Topology> &topo, Pattern pattern,
      const std::vector<double> &rates, const Options &opt,
      double latency_cap = 400.0,
      const std::function<void(Network &)> &instrument = {})
{
    SweepResult res;
    // Fold the CLI execution overrides (--seed, --threads) into the
    // preset once; every point of the sweep runs the same config.
    ConfigPreset p0 = preset;
    opt.apply(p0);
    // The --wall-limit budget covers the whole sweep, not one point: a
    // wedged point should fail the bench, not hand the remaining rates
    // a fresh clock.
    WallLimitGuard wall(opt.wallLimit);
    int past_saturation = 0;
    for (const double rate : rates) {
        if (past_saturation >= 2)
            break;
        auto net = p0.build(topo);
        if (instrument)
            instrument(*net);
        {
            char lbl[192];
            std::snprintf(lbl, sizeof(lbl), "%s|%s|%.3f",
                          p0.name.c_str(),
                          toString(pattern).c_str(), rate);
            attachMetrics(*net, opt, lbl);
        }
        if (opt.profile)
            net->enableProfiler();
        if (!opt.faultsPath.empty()) {
            fault::FaultSchedule fs;
            std::string ferr;
            if (!fault::FaultSchedule::fromFile(opt.faultsPath, fs,
                                                ferr))
                SPIN_FATAL(ferr);
            net->attachFaults(std::move(fs));
        }
        InjectorConfig icfg;
        icfg.injectionRate = rate;
        icfg.seed = p0.cfg.seed + 1;
        SyntheticInjector inj(*net, pattern, icfg);
        // --audit N: sample the runtime invariant auditor (the same
        // oracle spin_model applies per cycle) and fail the bench fast
        // on the first violation, leaving the report for CI artifacts.
        const auto maybeAudit = [&]() {
            if (opt.auditInterval == 0 ||
                net->now() % opt.auditInterval != 0) {
                return;
            }
            const AuditReport rep = auditNetwork(*net);
            if (rep.clean())
                return;
            obs::JsonValue doc = rep.toJson();
            doc.set("cycle", obs::JsonValue(net->now()));
            const char *path = "spin-audit-violation.json";
            std::ofstream os(path);
            os << doc.dump(2) << '\n';
            SPIN_FATAL("invariant audit failed at cycle ", net->now(),
                       " (", rep.violations.size(), " violation(s): ",
                       rep.violations.front(), "); report: ", path);
        };
        for (Cycle i = 0; i < opt.warmup; ++i) {
            inj.tick();
            net->step();
            maybeAudit();
            wall.check(*net);
        }
        net->beginMeasurement();
        for (Cycle i = 0; i < opt.measure; ++i) {
            inj.tick();
            net->step();
            maybeAudit();
            wall.check(*net);
        }
        if (opt.profile)
            profileTotals().merge(*net->profiler());
        SweepPoint p;
        p.rate = rate;
        p.latency = net->stats().avgLatency();
        p.throughput = net->stats().throughput(net->numNodes(),
                                               net->now());
        p.saturated = p.latency > latency_cap ||
                      p.throughput < 0.9 * rate;
        if (p.saturated)
            ++past_saturation;
        else
            res.saturationRate = rate;
        res.points.push_back(p);
    }
    return res;
}

/** Print one sweep as a table block. */
inline void
printSweep(const std::string &config, const std::string &pattern,
           const SweepResult &res)
{
    std::printf("## %s | %s\n", config.c_str(), pattern.c_str());
    std::printf("%10s %14s %14s %6s\n", "rate", "latency(cy)",
                "thru(f/n/c)", "sat");
    for (const SweepPoint &p : res.points) {
        std::printf("%10.3f %14.2f %14.4f %6s\n", p.rate, p.latency,
                    p.throughput, p.saturated ? "yes" : "");
    }
    std::printf("-> saturation throughput ~ %.3f flits/node/cycle\n\n",
                res.saturationRate);
}

/** Geometric ladder of injection rates. */
inline std::vector<double>
rateLadder(double lo, double hi, int points)
{
    std::vector<double> rates;
    if (points <= 1) {
        rates.push_back(lo);
        return rates;
    }
    const double step = (hi - lo) / (points - 1);
    for (int i = 0; i < points; ++i)
        rates.push_back(lo + step * i);
    return rates;
}

/** JSON image of one sweep (same fields as printSweep's table). */
inline obs::JsonValue
sweepToJson(const SweepResult &res)
{
    using obs::JsonValue;
    JsonValue o = JsonValue::object();
    JsonValue pts = JsonValue::array();
    for (const SweepPoint &p : res.points) {
        JsonValue pt = JsonValue::object();
        pt.set("rate", JsonValue(p.rate));
        pt.set("latency", JsonValue(p.latency));
        pt.set("throughput", JsonValue(p.throughput));
        pt.set("saturated", JsonValue(p.saturated));
        pts.push(std::move(pt));
    }
    o.set("points", std::move(pts));
    o.set("saturationRate", JsonValue(res.saturationRate));
    return o;
}

/**
 * Attaches a Chrome trace to the *first* network it is offered (a
 * sweep builds one network per rate; tracing them all would interleave
 * runs in one file). Pass via the sweep() instrument hook:
 *
 *   TraceAttacher ta(opt.tracePath);
 *   sweep(..., opt, cap, [&](Network &n) { ta(n); });
 */
class TraceAttacher
{
  public:
    explicit TraceAttacher(std::string path) : path_(std::move(path)) {}

    void
    operator()(Network &net)
    {
        if (done_ || path_.empty())
            return;
        if (auto sink = obs::ChromeTraceSink::open(path_)) {
            net.setTracer(std::make_unique<obs::Tracer>(std::move(sink)));
            done_ = true;
        } else {
            std::fprintf(stderr, "cannot open trace file %s\n",
                         path_.c_str());
            path_.clear();
        }
    }

  private:
    std::string path_;
    bool done_ = false;
};

/**
 * Collects every sweep (and any extra sections) of a bench run and, on
 * request, writes them as one JSON document -- the machine-readable
 * twin of the printed tables.
 */
class BenchReporter
{
  public:
    explicit BenchReporter(const std::string &bench_name,
                           const Options &opt)
        : root_(obs::JsonValue::object())
    {
        using obs::JsonValue;
        root_.set("bench", JsonValue(bench_name));
        JsonValue o = JsonValue::object();
        o.set("warmup", JsonValue(opt.warmup));
        o.set("measure", JsonValue(opt.measure));
        o.set("fast", JsonValue(opt.fast));
        if (opt.seedSet)
            o.set("seed", JsonValue(opt.seed));
        if (!opt.faultsPath.empty())
            o.set("faults", JsonValue(opt.faultsPath));
        root_.set("options", std::move(o));
        root_.set("sweeps", JsonValue::array());
    }

    /** Print the sweep table and record it for the JSON export. */
    void
    addSweep(const std::string &config, const std::string &pattern,
             const SweepResult &res)
    {
        printSweep(config, pattern, res);
        using obs::JsonValue;
        JsonValue s = sweepToJson(res);
        JsonValue entry = JsonValue::object();
        entry.set("config", JsonValue(config));
        entry.set("pattern", JsonValue(pattern));
        for (auto &kv : s.members())
            entry.set(kv.first, std::move(kv.second));
        root_.find("sweeps")->push(std::move(entry));
    }

    /** Attach an arbitrary extra section (e.g. raw Stats::toJson()). */
    void
    add(const std::string &section, obs::JsonValue v)
    {
        root_.set(section, std::move(v));
    }

    obs::JsonValue &root() { return root_; }

    /** Print/export the --profile summary and write to opt.jsonPath
     *  when --json was given. True on success. */
    bool
    writeIfRequested(const Options &opt)
    {
        if (opt.profile) {
            const obs::JsonValue prof = profileTotals().toJson();
            exp::printPhaseProfile(prof);
            root_.set("profile", prof);
        }
        if (opt.jsonPath.empty())
            return true;
        std::FILE *f = std::fopen(opt.jsonPath.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n",
                         opt.jsonPath.c_str());
            return false;
        }
        const std::string text = root_.dump(2);
        std::fwrite(text.data(), 1, text.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("wrote %s\n", opt.jsonPath.c_str());
        return true;
    }

  private:
    obs::JsonValue root_;
};

} // namespace spin::bench

#endif // SPINNOC_BENCH_BENCHUTIL_HH
