/**
 * @file
 * Shared harness for the table/figure reproduction benches: latency
 * versus injection-rate sweeps with warmup, saturation early-exit, and
 * aligned table printing. Every bench accepts:
 *
 *   --warmup N     warmup cycles per point
 *   --measure N    measurement cycles per point
 *   --fast         quarter-scale run for smoke testing
 *
 * and prints the same rows/series as the paper's figure. Absolute
 * numbers differ from the paper's gem5 testbed; the *shape* (who
 * saturates first, by roughly what factor) is what EXPERIMENTS.md
 * validates.
 */

#ifndef SPINNOC_BENCH_BENCHUTIL_HH
#define SPINNOC_BENCH_BENCHUTIL_HH

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "network/NetworkBuilder.hh"
#include "traffic/SyntheticInjector.hh"

namespace spin::bench
{

/** Common CLI options. */
struct Options
{
    Cycle warmup = 2000;
    Cycle measure = 4000;
    bool fast = false;

    static Options
    parse(int argc, char **argv)
    {
        Options o;
        for (int i = 1; i < argc; ++i) {
            if (!std::strcmp(argv[i], "--warmup") && i + 1 < argc)
                o.warmup = std::strtoull(argv[++i], nullptr, 10);
            else if (!std::strcmp(argv[i], "--measure") && i + 1 < argc)
                o.measure = std::strtoull(argv[++i], nullptr, 10);
            else if (!std::strcmp(argv[i], "--fast"))
                o.fast = true;
        }
        if (o.fast) {
            o.warmup /= 4;
            o.measure /= 4;
        }
        return o;
    }
};

/** One point of a latency/throughput sweep. */
struct SweepPoint
{
    double rate = 0.0;
    double latency = 0.0;    //!< avg end-to-end latency, cycles
    double throughput = 0.0; //!< received flits/node/cycle
    bool saturated = false;
};

/** Result of a sweep: points plus the estimated saturation rate. */
struct SweepResult
{
    std::vector<SweepPoint> points;
    /**
     * Last offered rate whose received throughput stayed within 10% of
     * offered and whose latency stayed under the saturation cap.
     */
    double saturationRate = 0.0;
};

/**
 * Run one latency-vs-injection sweep.
 *
 * A point counts as saturated when the average latency exceeds
 * @p latency_cap or throughput falls >10% below offered load; the sweep
 * stops two points after first saturation (enough to draw the knee).
 */
inline SweepResult
sweep(const ConfigPreset &preset,
      const std::shared_ptr<const Topology> &topo, Pattern pattern,
      const std::vector<double> &rates, const Options &opt,
      double latency_cap = 400.0)
{
    SweepResult res;
    int past_saturation = 0;
    for (const double rate : rates) {
        if (past_saturation >= 2)
            break;
        auto net = preset.build(topo);
        InjectorConfig icfg;
        icfg.injectionRate = rate;
        icfg.seed = preset.cfg.seed + 1;
        SyntheticInjector inj(*net, pattern, icfg);
        for (Cycle i = 0; i < opt.warmup; ++i) {
            inj.tick();
            net->step();
        }
        net->beginMeasurement();
        for (Cycle i = 0; i < opt.measure; ++i) {
            inj.tick();
            net->step();
        }
        SweepPoint p;
        p.rate = rate;
        p.latency = net->stats().avgLatency();
        p.throughput = net->stats().throughput(net->numNodes(),
                                               net->now());
        p.saturated = p.latency > latency_cap ||
                      p.throughput < 0.9 * rate;
        if (p.saturated)
            ++past_saturation;
        else
            res.saturationRate = rate;
        res.points.push_back(p);
    }
    return res;
}

/** Print one sweep as a table block. */
inline void
printSweep(const std::string &config, const std::string &pattern,
           const SweepResult &res)
{
    std::printf("## %s | %s\n", config.c_str(), pattern.c_str());
    std::printf("%10s %14s %14s %6s\n", "rate", "latency(cy)",
                "thru(f/n/c)", "sat");
    for (const SweepPoint &p : res.points) {
        std::printf("%10.3f %14.2f %14.4f %6s\n", p.rate, p.latency,
                    p.throughput, p.saturated ? "yes" : "");
    }
    std::printf("-> saturation throughput ~ %.3f flits/node/cycle\n\n",
                res.saturationRate);
}

/** Geometric ladder of injection rates. */
inline std::vector<double>
rateLadder(double lo, double hi, int points)
{
    std::vector<double> rates;
    if (points <= 1) {
        rates.push_back(lo);
        return rates;
    }
    const double step = (hi - lo) / (points - 1);
    for (int i = 0; i < points; ++i)
        rates.push_back(lo + step * i);
    return rates;
}

} // namespace spin::bench

#endif // SPINNOC_BENCH_BENCHUTIL_HH
