/**
 * @file
 * Reproduces Fig. 10 (router area overhead of deadlock-freedom schemes
 * normalized to the plain west-first router) plus the Sec. VI-C/D
 * area/power claims (1-VC vs 3-VC routers for mesh and dragonfly),
 * using the analytical Nangate-15nm-calibrated model.
 *
 * Expected shape: SPIN adds a few percent over west-first; Static
 * Bubble costs more (central recovery buffer); Escape-VC costs by far
 * the most (a full extra VC per vnet); the 1-VC routers are roughly
 * half the area and power of the 3-VC routers.
 */

#include <cstdio>

#include "core/LoopBuffer.hh"
#include "power/AreaPowerModel.hh"

using namespace spin;

namespace
{

RouterDesign
design(int radix, int vcs, int routers, SchemeExtras extras)
{
    RouterDesign d;
    d.radix = radix;
    d.vnets = 3;
    d.vcsPerVnet = vcs;
    d.vcDepthFlits = 5;
    d.flitBits = 128;
    d.numRouters = routers;
    d.extras = extras;
    return d;
}

} // namespace

int
main()
{
    std::printf("=== Fig. 10: mesh router area, normalized to "
                "west-first ===\n%-16s %12s %10s %10s\n", "design",
                "area(um^2)", "norm", "overhead");
    const AreaPower base =
        AreaPowerModel::evaluate(design(5, 1, 64, SchemeExtras::None));
    const struct
    {
        const char *name;
        SchemeExtras extras;
    } rows[] = {
        {"WestFirst", SchemeExtras::None},
        {"EscapeVC", SchemeExtras::EscapeVc},
        {"StaticBubble", SchemeExtras::StaticBubble},
        {"SPIN", SchemeExtras::Spin},
    };
    for (const auto &r : rows) {
        const AreaPower ap =
            AreaPowerModel::evaluate(design(5, 1, 64, r.extras));
        std::printf("%-16s %12.0f %10.3f %9.1f%%\n", r.name, ap.areaUm2,
                    ap.areaUm2 / base.areaUm2,
                    100.0 * (ap.areaUm2 / base.areaUm2 - 1.0));
    }

    std::printf("\n=== Sec. VI-C/D: 1-VC vs 3-VC router cost ===\n");
    std::printf("%-28s %12s %12s\n", "router", "area(um^2)",
                "power(mW)");
    const struct
    {
        const char *name;
        int radix, vcs, routers;
    } duo[] = {
        {"mesh r5 1VC/vnet", 5, 1, 64},
        {"mesh r5 3VC/vnet", 5, 3, 64},
        {"dragonfly r15 1VC/vnet", 15, 1, 256},
        {"dragonfly r15 3VC/vnet", 15, 3, 256},
    };
    AreaPower prev{};
    for (const auto &r : duo) {
        const AreaPower ap = AreaPowerModel::evaluate(
            design(r.radix, r.vcs, r.routers, SchemeExtras::None));
        std::printf("%-28s %12.0f %12.2f", r.name, ap.areaUm2,
                    ap.powerMw);
        if (r.vcs == 3) {
            std::printf("   (1VC is %.0f%% lower area, %.0f%% lower "
                        "power)", 100 * (1 - prev.areaUm2 / ap.areaUm2),
                        100 * (1 - prev.powerMw / ap.powerMw));
        }
        std::printf("\n");
        prev = ap;
    }

    std::printf("\n=== Table II sizing check: loop buffer ===\n");
    std::printf("64-router mesh (radix 5):      %4d bits (%0.1f flits "
                "@128b)\n", LoopBuffer::sizeBits(5, 64),
                LoopBuffer::sizeBits(5, 64) / 128.0);
    std::printf("256-router dragonfly (radix 15): %4d bits (%0.1f flits "
                "@128b)\n", LoopBuffer::sizeBits(15, 256),
                LoopBuffer::sizeBits(15, 256) / 128.0);
    return 0;
}
