/**
 * @file
 * Reproduces Fig. 7: latency vs. injection rate on the 8x8 on-chip
 * mesh for the Table III designs -- WestFirst_3VC, EscapeVC_3VC,
 * StaticBubble_3VC, MinAdaptive_3VC_SPIN, and the 1-VC pair
 * WestFirst_1VC vs FAvORS_Min_1VC_SPIN -- across the paper's synthetic
 * patterns. Thin wrapper over the built-in `fig07` sweep spec; run
 * with -jN for a worker pool, --resume to continue an interrupted
 * campaign (see docs/SWEEP.md).
 *
 * Expected shape (paper Sec. VI-D): SPIN's unrestricted adaptivity
 * saturates at equal or higher rates than west-first and escape-VC on
 * the adversarial permutations; on tornado all minimal designs
 * converge; FAvORS-Min-1VC beats WestFirst-1VC on transpose/bit-reverse
 * and ties on uniform random.
 */

#include "bench/CampaignBench.hh"

int
main(int argc, char **argv)
{
    return spin::bench::runCampaignMain(
        "=== Fig. 7: 8x8 mesh latency vs injection rate ===", {"fig07"},
        spin::bench::CampaignReport::LatencySeries, argc, argv);
}
