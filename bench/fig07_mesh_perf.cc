/**
 * @file
 * Reproduces Fig. 7: latency vs. injection rate on the 8x8 on-chip
 * mesh for the Table III designs -- WestFirst_3VC, EscapeVC_3VC,
 * StaticBubble_3VC, MinAdaptive_3VC_SPIN, and the 1-VC pair
 * WestFirst_1VC vs FAvORS_Min_1VC_SPIN -- across the paper's synthetic
 * patterns.
 *
 * Expected shape (paper Sec. VI-D): SPIN's unrestricted adaptivity
 * saturates at equal or higher rates than west-first and escape-VC on
 * the adversarial permutations; on tornado all minimal designs
 * converge; FAvORS-Min-1VC beats WestFirst-1VC on transpose/bit-reverse
 * and ties on uniform random.
 */

#include "bench/BenchUtil.hh"
#include "topology/Mesh.hh"

using namespace spin;
using namespace spin::bench;

int
main(int argc, char **argv)
{
    const Options opt = Options::parse(argc, argv);
    auto topo = std::make_shared<Topology>(makeMesh(8, 8));

    const std::vector<Pattern> patterns = {
        Pattern::UniformRandom, Pattern::Transpose, Pattern::BitReverse,
        Pattern::BitRotation, Pattern::Tornado,
    };

    std::vector<ConfigPreset> presets = meshPresets3Vc();
    for (ConfigPreset &p : meshPresets1Vc())
        presets.push_back(p);
    for (ConfigPreset &p : presets)
        opt.apply(p);

    std::printf("=== Fig. 7: 8x8 mesh latency vs injection rate ===\n\n");
    struct SatRow
    {
        std::string config, pattern;
        double sat;
    };
    std::vector<SatRow> summary;
    BenchReporter report("fig07_mesh_perf", opt);
    TraceAttacher attach(opt.tracePath);

    for (const Pattern pat : patterns) {
        const auto rates = rateLadder(0.02, 0.62, opt.fast ? 5 : 11);
        for (const ConfigPreset &preset : presets) {
            const SweepResult res =
                sweep(preset, topo, pat, rates, opt, 400.0,
                      [&](Network &n) { attach(n); });
            report.addSweep(preset.name, toString(pat), res);
            summary.push_back({preset.name, toString(pat),
                               res.saturationRate});
        }
    }

    std::printf("=== Saturation-throughput summary (flits/node/cycle) "
                "===\n%-24s %-16s %8s\n", "config", "pattern", "sat");
    for (const auto &r : summary)
        std::printf("%-24s %-16s %8.3f\n", r.config.c_str(),
                    r.pattern.c_str(), r.sat);
    return report.writeIfRequested(opt) ? 0 : 1;
}
