/**
 * @file
 * Reproduces Table II: the modules SPIN adds to a router and the loop
 * buffer sizing rule, evaluated for the paper's two design points (the
 * 64-router mesh and the 256-router, 1024-node dragonfly), including
 * the paper's "1 flit deep at 128-bit links" observation.
 */

#include <cstdio>

#include "core/LoopBuffer.hh"
#include "power/AreaPowerModel.hh"

using namespace spin;

int
main()
{
    std::printf("=== Table II: SPIN router modules ===\n\n");
    std::printf("%-14s %s\n", "FSM",
                "manages SM traversals and correctness (core/SpinUnit, "
                "core/SpinFsm)");
    std::printf("%-14s %s\n", "Probe Manager",
                "scans input-port VCs, forks probes over waited-on "
                "output ports (core/ProbeManager)");
    std::printf("%-14s %s\n", "Move Manager",
                "processes move / kill_move / probe_move "
                "(core/MoveManager)");
    std::printf("%-14s %s\n\n", "Loop Buffer",
                "stores the deadlock path: log2(radix) * N bits "
                "(core/LoopBuffer)");

    std::printf("%-32s %10s %14s %12s\n", "design point", "bits",
                "flits @128b", "area um^2");
    struct Row
    {
        const char *name;
        int radix, routers;
    } rows[] = {
        {"64-router 8x8 mesh (radix 5)", 5, 64},
        {"256-router dragonfly (radix 15)", 15, 256},
    };
    for (const Row &r : rows) {
        const int bits = LoopBuffer::sizeBits(r.radix, r.routers);
        RouterDesign with, without;
        with.radix = without.radix = r.radix;
        with.numRouters = without.numRouters = r.routers;
        with.extras = SchemeExtras::Spin;
        const double delta = AreaPowerModel::evaluate(with).areaUm2 -
                             AreaPowerModel::evaluate(without).areaUm2;
        std::printf("%-32s %10d %14.1f %12.0f\n", r.name, bits,
                    bits / 128.0, delta);
    }
    std::printf("\nThe 64-router mesh loop buffer is %.1f flits deep at "
                "128-bit links;\nthe paper quotes ~1 flit, i.e. the "
                "control-path cost of SPIN is about one\nbuffer slot "
                "per router -- no datapath buffers are added.\n",
                LoopBuffer::sizeBits(5, 64) / 128.0);
    return 0;
}
