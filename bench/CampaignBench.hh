/**
 * @file
 * Shared main() for the campaign-backed figure benches.
 *
 * Each latency/utilization figure binary is a thin wrapper over a
 * built-in sweep spec (src/exp/SweepSpec.cc): it names its spec(s), a
 * banner, and which report table to print, and this helper supplies the
 * command line (worker pool, window overrides, resume, JSON export) on
 * top of exp::Campaign. That keeps the figure grid definitions in one
 * dogfooded place and gives every figure `-jN` parallelism and
 * bit-identical-for-any-j aggregates for free.
 *
 * Figure binaries that need per-cycle instrumentation (fig03's
 * deadlock-onset timeline, fig08a's EDP runs) do not go through a
 * campaign; they keep bench::Options and its --trace flag.
 */

#ifndef SPINNOC_BENCH_CAMPAIGNBENCH_HH
#define SPINNOC_BENCH_CAMPAIGNBENCH_HH

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include <unistd.h>

#include "common/Logging.hh"
#include "exp/ArgParse.hh"
#include "exp/Campaign.hh"
#include "exp/Report.hh"
#include "exp/SweepSpec.hh"
#include "fault/FaultSchedule.hh"

namespace spin::bench
{

/** Which table a figure wrapper prints from the aggregated results. */
enum class CampaignReport
{
    LatencySeries,   ///< per-series latency tables + saturation summary
    LinkUtilization, ///< Fig. 8b link-cycle breakdown
    SpinCounts,      ///< Fig. 9 spins / false positives / probes
};

inline const char *
campaignUsage()
{
    return "options:\n"
           "  -j, --jobs N    worker threads, one cell each (default 1)\n"
           "  -t, --threads N threads inside each cell's simulation\n"
           "                  (default 1; results bit-identical for any\n"
           "                  value, docs/SCALING.md)\n"
           "  --warmup N      override the spec's warmup window\n"
           "  --measure N     override the spec's measure window\n"
           "  --fast          quarter-scale warmup/measure\n"
           "  --faults PATH   inject a spin-faults/v2 schedule into\n"
           "                  every cell (docs/FAULTS.md)\n"
           "  --seed N        run with the single seed N\n"
           "  --out DIR       per-cell result dir (default\n"
           "                  sweep-out/<spec>); enables resume\n"
           "  --no-cells      do not write per-cell files\n"
           "  --resume        reuse finished cells from --out\n"
           "  --json PATH     write the aggregated results JSON\n"
           "  --metrics PATH  combined spin-metrics/v2 JSONL of every\n"
           "                  simulated cell (one file per spec; with\n"
           "                  several specs the spec name is appended)\n"
           "  --metrics-interval N  metrics window in cycles (default\n"
           "                  256)\n"
           "  --audit N       run the invariant auditor every N cycles\n"
           "                  in every cell; fail fast with a\n"
           "                  spin-audit/v1 report on violation\n"
           "  --profile       per-phase wall-clock attribution\n"
           "  --reliability   run every cell with end-to-end reliable\n"
           "                  delivery on (docs/FAULTS.md)\n"
           "  --wall-limit N  per-cell wall-clock budget in seconds;\n"
           "                  overruns dump telemetry and fail fast\n"
           "                  (0 = off)\n"
           "  --live          single-line progress meter on stderr\n"
           "                  (auto when stderr is a TTY)\n"
           "  --progress      per-cell progress on stderr\n"
           "  --help          this message\n";
}

/**
 * Run the named built-in spec(s) and print @p report for each.
 *
 * With --json and one spec, the spin-sweep/v1 aggregate is written
 * as-is; with several specs the campaigns nest under a
 * spin-sweep-multi/v1 wrapper, in order.
 *
 * @return process exit code (0 ok, 1 runtime failure, 2 usage error)
 */
inline int
runCampaignMain(const char *banner,
                const std::vector<std::string> &specNames,
                CampaignReport report, int argc, char **argv)
{
    std::uint64_t jobs = 1, threads = 1, warmup = 0, measure = 0,
                  seed = 0;
    std::uint64_t metricsInterval = 256, auditInterval = 0;
    bool warmupSet = false, measureSet = false, seedSet = false;
    bool fast = false, resume = false, progress = false, live = false;
    bool profile = false;
    bool noCells = false, help = false;
    bool reliability = false;
    std::uint64_t wallLimit = 0;
    std::string outDir, jsonPath, faultsPath, metricsPath;

    const std::vector<exp::ArgSpec> specs = {
        exp::argU64("-j", &jobs),
        exp::argU64("--jobs", &jobs),
        exp::argU64("-t", &threads),
        exp::argU64("--threads", &threads),
        exp::argU64("--warmup", &warmup, &warmupSet),
        exp::argU64("--measure", &measure, &measureSet),
        exp::argFlag("--fast", &fast),
        exp::argStr("--faults", &faultsPath),
        exp::argU64("--seed", &seed, &seedSet),
        exp::argStr("--out", &outDir),
        exp::argFlag("--no-cells", &noCells),
        exp::argFlag("--resume", &resume),
        exp::argStr("--json", &jsonPath),
        exp::argStr("--metrics", &metricsPath),
        exp::argU64("--metrics-interval", &metricsInterval),
        exp::argU64("--audit", &auditInterval),
        exp::argFlag("--profile", &profile),
        exp::argFlag("--reliability", &reliability),
        exp::argU64("--wall-limit", &wallLimit),
        exp::argFlag("--live", &live),
        exp::argFlag("--progress", &progress),
        exp::argFlag("--help", &help),
        exp::argFlag("-h", &help),
    };
    std::string err;
    if (!exp::parseArgs(argc, argv, specs, err)) {
        std::fprintf(stderr, "%s: %s\n%s", argv[0], err.c_str(),
                     campaignUsage());
        return 2;
    }
    if (help) {
        std::printf("usage: %s [options]\n%s", argv[0], campaignUsage());
        return 0;
    }

    fault::FaultSchedule faultSchedule;
    if (!faultsPath.empty() &&
        !fault::FaultSchedule::fromFile(faultsPath, faultSchedule, err)) {
        std::fprintf(stderr, "%s: %s\n", argv[0], err.c_str());
        return 2;
    }

    std::printf("%s\n\n", banner);

    obs::JsonValue multi = obs::JsonValue::array();
    obs::JsonValue single;
    for (const std::string &name : specNames) {
        exp::SweepSpec spec;
        if (!exp::builtinSpec(name, spec)) {
            std::fprintf(stderr, "%s: unknown built-in spec '%s'\n",
                         argv[0], name.c_str());
            return 1;
        }
        if (warmupSet)
            spec.warmup = warmup;
        if (measureSet)
            spec.measure = measure;
        if (fast) {
            spec.warmup /= 4;
            spec.measure = std::max<Cycle>(spec.measure / 4, 1);
        }
        if (seedSet)
            spec.seeds = {seed};
        if (reliability)
            spec.reliability = {true};

        exp::CampaignOptions copt;
        copt.jobs = static_cast<int>(jobs);
        copt.threads = static_cast<int>(threads);
        copt.resume = resume;
        copt.progress = progress;
        copt.live = live || (!progress && isatty(fileno(stderr)) != 0);
        copt.profile = profile;
        copt.auditInterval = auditInterval;
        copt.wallLimitSeconds = wallLimit;
        copt.faultSchedule = faultSchedule;
        if (!metricsPath.empty()) {
            copt.metricsPath = specNames.size() == 1
                                   ? metricsPath
                                   : metricsPath + "." + spec.name;
            copt.metricsInterval = metricsInterval;
        }
        if (!noCells) {
            copt.cellDir = outDir.empty() ? "sweep-out/" + spec.name
                           : specNames.size() == 1
                               ? outDir
                               : outDir + "/" + spec.name;
        }

        std::printf("== spec '%s' (%s), %zu cells, %llu jobs ==\n",
                    spec.name.c_str(), spec.topology.c_str(),
                    spec.expand().size(),
                    static_cast<unsigned long long>(jobs));

        exp::Campaign campaign(spec, copt);
        obs::JsonValue results;
        try {
            results = campaign.run();
        } catch (const FatalError &e) {
            std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
            return 1;
        }

        switch (report) {
          case CampaignReport::LatencySeries:
            exp::printSeries(results);
            exp::printSaturationSummary(results);
            break;
          case CampaignReport::LinkUtilization:
            exp::printLinkUtilization(results);
            break;
          case CampaignReport::SpinCounts:
            exp::printSpinCounts(results);
            break;
        }

        const exp::CampaignPerf &perf = campaign.perf();
        std::printf("\n== campaign '%s': %zu cells (%zu simulated, %zu "
                    "cached) in %.2fs -> %.2f cells/s ==\n\n",
                    spec.name.c_str(), perf.cells, perf.cellsSimulated,
                    perf.cellsCached, perf.wallSeconds,
                    perf.cellsPerSec());
        if (profile)
            exp::printPhaseProfile(campaign.profile().toJson());
        if (!copt.metricsPath.empty())
            std::printf("wrote %s\n", copt.metricsPath.c_str());

        if (specNames.size() == 1)
            single = std::move(results);
        else
            multi.push(std::move(results));
    }

    if (!jsonPath.empty()) {
        obs::JsonValue doc;
        if (specNames.size() == 1) {
            doc = std::move(single);
        } else {
            doc = obs::JsonValue::object();
            doc.set("schema", obs::JsonValue("spin-sweep-multi/v1"));
            doc.set("campaigns", std::move(multi));
        }
        if (!exp::writeJsonFile(jsonPath, doc))
            return 1;
        std::printf("wrote %s\n", jsonPath.c_str());
    }
    return 0;
}

} // namespace spin::bench

#endif // SPINNOC_BENCH_CAMPAIGNBENCH_HH
