/**
 * @file
 * google-benchmark micro benchmarks: simulator engine throughput
 * (cycles/second) for the paper's two topologies at three load levels,
 * plus topology construction cost. These guard against performance
 * regressions in the hot per-cycle path.
 */

#include <benchmark/benchmark.h>

#include "bench/BenchUtil.hh"
#include "topology/Dragonfly.hh"
#include "topology/Mesh.hh"
#include "topology/Torus.hh"

using namespace spin;
using namespace spin::bench;

namespace
{

void
meshStep(benchmark::State &state, bool metrics)
{
    const double rate = state.range(0) / 100.0;
    auto topo = std::make_shared<Topology>(makeMesh(8, 8));
    const ConfigPreset preset = meshPresets3Vc()[3]; // MinAdaptive+SPIN
    auto net = preset.build(topo);
    if (metrics) {
        // Null sink: measures the engine (window snapshots + per-cycle
        // tick), not serialization I/O.
        net->enableMetrics(obs::MetricsConfig{},
                           std::make_unique<obs::NullMetricsSink>());
    }
    InjectorConfig icfg;
    icfg.injectionRate = rate;
    SyntheticInjector inj(*net, Pattern::UniformRandom, icfg);
    for (int i = 0; i < 500; ++i) { // settle
        inj.tick();
        net->step();
    }
    for (auto _ : state) {
        inj.tick();
        net->step();
    }
    state.counters["cycles/s"] =
        benchmark::Counter(static_cast<double>(state.iterations()),
                           benchmark::Counter::kIsRate);
}

void
BM_MeshStep(benchmark::State &state)
{
    meshStep(state, false);
}
BENCHMARK(BM_MeshStep)->Arg(1)->Arg(20)->Arg(40)
    ->Unit(benchmark::kMicrosecond);

/** Same workload with windowed metrics enabled; tools/check_micro_delta.py
 *  gates the off/on gap in CI. */
void
BM_MeshStepMetrics(benchmark::State &state)
{
    meshStep(state, true);
}
BENCHMARK(BM_MeshStepMetrics)->Arg(1)->Arg(20)->Arg(40)
    ->Unit(benchmark::kMicrosecond);

void
BM_DragonflyStep(benchmark::State &state)
{
    const double rate = state.range(0) / 100.0;
    auto topo = std::make_shared<Topology>(makePaperDragonfly());
    const ConfigPreset preset = dragonflyPresets1Vc()[0];
    auto net = preset.build(topo);
    InjectorConfig icfg;
    icfg.injectionRate = rate;
    SyntheticInjector inj(*net, Pattern::UniformRandom, icfg);
    for (int i = 0; i < 200; ++i) {
        inj.tick();
        net->step();
    }
    for (auto _ : state) {
        inj.tick();
        net->step();
    }
    state.counters["cycles/s"] =
        benchmark::Counter(static_cast<double>(state.iterations()),
                           benchmark::Counter::kIsRate);
}
BENCHMARK(BM_DragonflyStep)->Arg(1)->Arg(15)
    ->Unit(benchmark::kMicrosecond);

/**
 * Sharded-step scaling on the 1024-router torus (docs/SCALING.md):
 * the arg is the `threads` value, so CI's BENCH_sweep.json records a
 * cells/sec row per thread count and the t4/t1 ratio is the scaling
 * evidence. Uniform random at 0.30 keeps every shard busy without
 * saturating, which is where the barrier overhead would hide.
 */
void
BM_TorusStepThreads(benchmark::State &state)
{
    auto topo = std::make_shared<Topology>(makeTorus(32, 32));
    ConfigPreset preset = meshPresets3Vc()[3]; // MinAdaptive+SPIN
    preset.cfg.threads = static_cast<int>(state.range(0));
    auto net = preset.build(topo);
    InjectorConfig icfg;
    icfg.injectionRate = 0.30;
    SyntheticInjector inj(*net, Pattern::UniformRandom, icfg);
    for (int i = 0; i < 300; ++i) { // settle
        inj.tick();
        net->step();
    }
    for (auto _ : state) {
        inj.tick();
        net->step();
    }
    state.counters["cycles/s"] =
        benchmark::Counter(static_cast<double>(state.iterations()),
                           benchmark::Counter::kIsRate);
    state.counters["threads"] =
        benchmark::Counter(static_cast<double>(state.range(0)));
}
BENCHMARK(BM_TorusStepThreads)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMicrosecond)->MeasureProcessCPUTime()
    ->UseRealTime();

void
BM_BuildMesh(benchmark::State &state)
{
    for (auto _ : state) {
        Topology t = makeMesh(8, 8);
        benchmark::DoNotOptimize(t.numRouters());
    }
}
BENCHMARK(BM_BuildMesh)->Unit(benchmark::kMicrosecond);

void
BM_BuildDragonfly(benchmark::State &state)
{
    for (auto _ : state) {
        Topology t = makePaperDragonfly();
        benchmark::DoNotOptimize(t.numRouters());
    }
}
BENCHMARK(BM_BuildDragonfly)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
