/**
 * @file
 * Reproduces Fig. 8(a): network energy-delay product under
 * application-style (PARSEC-substitute) coherence traffic, for
 * MinAdaptive_2VC_SPIN normalized to EscapeVC_3VC.
 *
 * The paper runs PARSEC on gem5 full-system; we substitute a
 * request/response coherence generator over 3 vnets with per-app
 * profiles at ~1/10th of deadlock-onset load (see DESIGN.md Sec. 1.4).
 * Energy is the analytical router power model integrated over runtime;
 * delay is average packet latency.
 *
 * Expected shape: the 2-VC SPIN design needs ~2/3 of the escape
 * design's buffers for the same low-load latency, so its normalized
 * EDP sits well below 1.0 (the paper reports ~18% lower on average).
 */

#include <cmath>

#include "bench/BenchUtil.hh"
#include "power/AreaPowerModel.hh"
#include "topology/Mesh.hh"
#include "traffic/CoherenceTraffic.hh"

using namespace spin;
using namespace spin::bench;

namespace
{

struct EdpResult
{
    double latency = 0.0;
    double power = 0.0;
    double edp = 0.0;
};

EdpResult
runApp(const ConfigPreset &preset,
       const std::shared_ptr<const Topology> &topo,
       const AppProfile &app, Cycle cycles)
{
    auto net = preset.build(topo);
    CoherenceTraffic gen(*net, app);
    for (Cycle i = 0; i < cycles; ++i) {
        gen.tick();
        net->step();
    }
    // Drain outstanding transactions.
    for (Cycle i = 0; i < 20000 && net->packetsInFlight() > 0; ++i) {
        gen.tick();
        net->step();
    }

    // The escape design's 3 VCs already *include* its escape channel
    // (the routing uses VC0 of each vnet as the escape), so its power
    // model carries no extra-VC surcharge -- only SPIN's control-path
    // modules are an explicit extra.
    RouterDesign d;
    d.radix = 5;
    d.vnets = preset.cfg.vnets;
    d.vcsPerVnet = preset.cfg.vcsPerVnet;
    d.vcDepthFlits = preset.cfg.vcDepth;
    d.numRouters = topo->numRouters();
    d.extras = preset.cfg.scheme == DeadlockScheme::Spin
        ? SchemeExtras::Spin
        : SchemeExtras::None;

    EdpResult r;
    r.latency = net->stats().avgLatency();
    r.power = AreaPowerModel::evaluate(d).powerMw * topo->numRouters();
    r.edp = r.power * r.latency; // EDP per packet ~ P * D at equal load
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = Options::parse(argc, argv);
    const Cycle cycles = opt.fast ? 8000 : 30000;
    auto topo = std::make_shared<Topology>(makeMesh(8, 8));

    // The paper's Fig. 8(a) pair: EscapeVC 3VC vs MinAdaptive 2VC SPIN.
    ConfigPreset escape = meshPresets3Vc()[1]; // EscapeVC_3VC
    ConfigPreset spin2{"MinAdaptive_2VC_SPIN", escape.cfg,
                       RoutingKind::MinimalAdaptive};
    spin2.cfg.name = "MinAdaptive_2VC_SPIN";
    spin2.cfg.vcsPerVnet = 2;
    spin2.cfg.scheme = DeadlockScheme::Spin;
    opt.apply(escape);
    opt.apply(spin2);

    std::printf("=== Fig. 8a: network EDP on application-style traffic "
                "(normalized to EscapeVC_3VC) ===\n");
    std::printf("%-14s %12s %12s %12s %12s %10s\n", "app",
                "lat(escape)", "lat(spin)", "P(escape)", "P(spin)",
                "EDP ratio");

    double geo = 1.0;
    int n = 0;
    for (const AppProfile &app : parsecLikeProfiles()) {
        const EdpResult e = runApp(escape, topo, app, cycles);
        const EdpResult s = runApp(spin2, topo, app, cycles);
        const double ratio = s.edp / e.edp;
        geo *= ratio;
        ++n;
        std::printf("%-14s %12.2f %12.2f %12.1f %12.1f %10.3f\n",
                    app.name.c_str(), e.latency, s.latency, e.power,
                    s.power, ratio);
    }
    std::printf("\ngeometric-mean EDP ratio (SPIN/escape): %.3f "
                "(paper: ~0.82)\n", std::pow(geo, 1.0 / n));
    return 0;
}
