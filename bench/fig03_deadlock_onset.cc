/**
 * @file
 * Reproduces Fig. 3: the minimum injection rate (flits/node/cycle) at
 * which the 64-node mesh (minimal adaptive routing) and the 1024-node
 * dragonfly (UGAL path selection, unrestricted VCs) deadlock at least
 * once, per traffic pattern, with 3 VCs per port and 1-flit packets.
 * Deadlocks are detected by the oracle wait-for-graph; no recovery
 * scheme is active (scheme = None).
 *
 * Expected shape: onset rates sit far above real-application loads
 * (the paper: at least 10x), and tornado/transpose on the mesh do not
 * deadlock at all under minimal routing.
 */

#include "bench/BenchUtil.hh"
#include "deadlock/OracleDetector.hh"
#include "topology/Dragonfly.hh"
#include "topology/Mesh.hh"

using namespace spin;
using namespace spin::bench;

namespace
{

/** Run at one rate; report whether a deadlock ever appears. */
bool
deadlocks(const std::shared_ptr<const Topology> &topo, RoutingKind kind,
          Pattern pattern, double rate, Cycle cycles, const Options &opt)
{
    NetworkConfig cfg;
    cfg.vnets = 1; // Fig. 3 uses plain 1-flit synthetic traffic
    cfg.vcsPerVnet = 3;
    cfg.vcDepth = 5;
    cfg.maxPacketSize = 5;
    cfg.scheme = DeadlockScheme::None;
    opt.apply(cfg);
    auto net = buildNetwork(topo, cfg, kind);
    {
        char lbl[96];
        std::snprintf(lbl, sizeof(lbl), "onset|%s|%.2f",
                      toString(pattern).c_str(), rate);
        attachMetrics(*net, opt, lbl);
    }
    if (opt.profile)
        net->enableProfiler();

    InjectorConfig icfg;
    icfg.injectionRate = rate;
    icfg.controlFraction = 1.0; // 1-flit packets only, as in the paper
    SyntheticInjector inj(*net, pattern, icfg);
    OracleDetector oracle(*net);

    bool hit = false;
    for (Cycle i = 0; i < cycles && !hit; ++i) {
        inj.tick();
        net->step();
        if (i % 250 == 0 && oracle.detect().deadlocked)
            hit = true;
    }
    if (!hit)
        hit = oracle.detect().deadlocked;
    if (opt.profile)
        profileTotals().merge(*net->profiler());
    return hit;
}

obs::JsonValue
onsetSweep(const char *label, const std::shared_ptr<const Topology> &topo,
           RoutingKind kind, Cycle cycles,
           const std::vector<Pattern> &patterns, const Options &opt)
{
    obs::JsonValue block = obs::JsonValue::object();
    block.set("label", obs::JsonValue(label));
    block.set("windowCycles", obs::JsonValue(cycles));
    obs::JsonValue rows = obs::JsonValue::array();
    std::printf("--- %s (window %llu cycles, 3 VCs, 1-flit packets) "
                "---\n%-16s %s\n", label,
                static_cast<unsigned long long>(cycles), "pattern",
                "min deadlock rate (flits/node/cycle)");
    const std::vector<double> ladder = {0.05, 0.10, 0.15, 0.20, 0.30,
                                        0.45, 0.65, 1.00};
    for (const Pattern pat : patterns) {
        double onset = -1.0;
        for (const double rate : ladder) {
            if (deadlocks(topo, kind, pat, rate, cycles, opt)) {
                onset = rate;
                break;
            }
        }
        if (onset < 0)
            std::printf("%-16s no deadlock up to 1.00\n",
                        toString(pat).c_str());
        else
            std::printf("%-16s %.2f\n", toString(pat).c_str(), onset);
        obs::JsonValue row = obs::JsonValue::object();
        row.set("pattern", obs::JsonValue(toString(pat)));
        row.set("onsetRate", obs::JsonValue(onset));
        rows.push(std::move(row));
    }
    std::printf("\n");
    block.set("rows", std::move(rows));
    return block;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = Options::parse(argc, argv);
    const Cycle mesh_cycles = opt.fast ? 5000 : 20000;
    const Cycle dfly_cycles = opt.fast ? 2000 : 6000;

    std::printf("=== Fig. 3: minimum injection rate at which the "
                "network deadlocks ===\n\n");

    BenchReporter report("fig03_deadlock_onset", opt);
    obs::JsonValue blocks = obs::JsonValue::array();

    auto mesh = std::make_shared<Topology>(makeMesh(8, 8));
    blocks.push(onsetSweep("8x8 mesh, minimal adaptive", mesh,
                           RoutingKind::MinimalAdaptive, mesh_cycles,
                           {Pattern::UniformRandom, Pattern::BitComplement,
                            Pattern::Transpose, Pattern::Tornado,
                            Pattern::BitReverse, Pattern::Shuffle}, opt));

    auto dfly = std::make_shared<Topology>(makePaperDragonfly());
    blocks.push(onsetSweep("1024-node dragonfly, UGAL (unrestricted VCs)",
                           dfly, RoutingKind::UgalSpin, dfly_cycles,
                           {Pattern::UniformRandom, Pattern::BitComplement,
                            Pattern::Tornado, Pattern::Shuffle}, opt));
    report.add("onsetSweeps", std::move(blocks));

    std::printf("Reference: real applications load the NoC at roughly "
                "0.01-0.05 flits/node/cycle\n(paper Sec. II-F): onset "
                "rates above are ~10x higher, so deadlocks are rare\n"
                "events and recovery beats avoidance.\n");
    return report.writeIfRequested(opt) ? 0 : 1;
}
