/**
 * @file
 * Reproduces Table I: the qualitative comparison of deadlock-freedom
 * theories plus the VC cost columns. The qualitative attributes come
 * from the implemented routing algorithms themselves (their declared
 * capabilities), so the table is generated, not transcribed: the VC
 * costs are the minVcsPerVnet() of the corresponding implementations.
 */

#include <cstdio>

#include "core/Favors.hh"
#include "routing/EscapeVc.hh"
#include "routing/MinimalAdaptive.hh"
#include "routing/Ugal.hh"
#include "routing/WestFirst.hh"

using namespace spin;

int
main()
{
    std::printf("=== Table I: comparison of deadlock freedom theories "
                "===\n\n");
    std::printf("%-14s %-11s %-8s %-10s | %-22s %-22s %-9s\n", "theory",
                "inj/sched", "acyclic", "topology", "VC cost minimal",
                "VC cost fully-adaptive", "livelock");
    std::printf("%-14s %-11s %-8s %-10s | %-22s %-22s %-9s\n", "",
                "restrict", "CDG req", "dependent", "mesh / dragonfly",
                "mesh / dragonfly", "cost");
    std::printf("-------------------------------------------------------"
                "-----------------------------------------------\n");

    // Dally's theory: west-first / XY avoidance on mesh; VC-ordered
    // UGAL on dragonfly.
    {
        WestFirst wf;
        Ugal ugal(true);
        std::printf("%-14s %-11s %-8s %-10s | %-22s %-22s %-9s\n",
                    "Dally", "no", "yes", "yes", "1 / 2",
                    "6 / 3 (lit.)", "none");
        std::printf("  implemented: %s (mesh, %d VC), %s (dragonfly, "
                    "%d VCs)\n", wf.name().c_str(), wf.minVcsPerVnet(),
                    ugal.name().c_str(), ugal.minVcsPerVnet());
    }
    // Duato's theory: escape VC.
    {
        EscapeVc evc;
        std::printf("%-14s %-11s %-8s %-10s | %-22s %-22s %-9s\n",
                    "Duato", "no", "no*", "yes**", "1 / 2", "2 / 3",
                    "none");
        std::printf("  implemented: %s (mesh, %d VCs minimum)\n",
                    evc.name().c_str(), evc.minVcsPerVnet());
    }
    // Flow control (Static Bubble flavor as recovery).
    std::printf("%-14s %-11s %-8s %-10s | %-22s %-22s %-9s\n",
                "FlowCtrl", "yes", "no", "yes", "2 / 2", "2 / 2",
                "none");
    std::printf("  implemented: static-bubble recovery (reserved VC, "
                "so 2 VCs minimum)\n");
    // Deflection.
    std::printf("%-14s %-11s %-8s %-10s | %-22s %-22s %-9s\n",
                "Deflection", "yes+", "no", "no", "not possible",
                "0 (bufferless)", "high");
    std::printf("  not implemented: bufferless routing is out of scope "
                "(no VCT datapath)\n");
    // SPIN.
    {
        FavorsMinimal fmin;
        FavorsNonMinimal fnmin;
        MinimalAdaptive ma;
        std::printf("%-14s %-11s %-8s %-10s | %-22s %-22s %-9s\n",
                    "SPIN", "no", "no", "no", "1 / 1", "1 / 1", "none");
        std::printf("  implemented: %s / %s / %s, all with %d VC per "
                    "message class\n", ma.name().c_str(),
                    fmin.name().c_str(), fnmin.name().c_str(),
                    fmin.minVcsPerVnet());
        std::printf("  fully adaptive: %s; livelock-free by p=1 "
                    "misroute bound: %s\n",
                    fmin.fullyAdaptive() ? "yes" : "no",
                    fnmin.nonMinimal() ? "yes" : "n/a");
    }

    std::printf("\n*  only an acyclic connected escape sub-graph\n");
    std::printf("** escape CDG must be designed per topology\n");
    std::printf("+  cannot inject when all output ports are taken\n");
    return 0;
}
