/**
 * @file
 * Ablation: sensitivity of SPIN to its two tunables.
 *
 *  1. t_DD (deadlock-detection timeout): detection latency trades
 *     against false probes. Measured as ring-deadlock resolution time
 *     and as mesh throughput at a deadlock-prone load.
 *  2. probeMoveDelay (settling time before the post-spin re-check):
 *     too small and every probe_move dies on unsettled packets
 *     (forcing a kill + full re-detection), too large and multi-spin
 *     deadlocks resolve slowly.
 *
 * The paper fixes t_DD = 128 and leaves SM scheduling open; this bench
 * documents why those are reasonable choices in this implementation.
 */

#include "bench/BenchUtil.hh"
#include "topology/Mesh.hh"
#include "topology/Ring.hh"

using namespace spin;
using namespace spin::bench;

namespace
{

/** Clockwise ring routing (same construction as the test suite). */
class Clockwise : public RoutingAlgorithm
{
  public:
    std::string name() const override { return "cw-ring"; }
    void
    candidates(const Packet &, const Router &, RouterId,
               std::vector<PortId> &out) const override
    {
        out.assign(1, RingInfo::kCw);
    }
};

Cycle
ringRecoveryTime(Cycle t_dd, Cycle probe_move_delay, const Options &opt)
{
    auto topo = std::make_shared<Topology>(makeRing(8));
    NetworkConfig cfg;
    cfg.vnets = 1;
    cfg.vcsPerVnet = 1;
    cfg.vcDepth = 5;
    cfg.maxPacketSize = 5;
    cfg.scheme = DeadlockScheme::Spin;
    cfg.tDd = t_dd;
    cfg.probeMoveDelay = probe_move_delay;
    opt.apply(cfg);
    Network net(topo, cfg, std::make_unique<Clockwise>());
    for (NodeId i = 0; i < 8; ++i)
        net.offerPacket(net.makePacket(i, (i + 3) % 8, 0, 5));
    const Cycle start = net.now();
    while (net.packetsInFlight() > 0 && net.now() - start < 100000)
        net.step();
    return net.now() - start;
}

double
meshThroughput(Cycle t_dd, Cycle measure, const Options &opt)
{
    auto topo = std::make_shared<Topology>(makeMesh(8, 8));
    NetworkConfig cfg;
    cfg.vnets = 3;
    cfg.vcsPerVnet = 1;
    cfg.vcDepth = 5;
    cfg.maxPacketSize = 5;
    cfg.scheme = DeadlockScheme::Spin;
    cfg.tDd = t_dd;
    opt.apply(cfg);
    auto net = buildNetwork(topo, cfg, RoutingKind::FavorsMin);
    InjectorConfig icfg;
    icfg.injectionRate = 0.25; // around the 1-VC knee: deadlock-prone
    SyntheticInjector inj(*net, Pattern::BitReverse, icfg);
    for (Cycle i = 0; i < measure / 2; ++i) {
        inj.tick();
        net->step();
    }
    net->beginMeasurement();
    for (Cycle i = 0; i < measure; ++i) {
        inj.tick();
        net->step();
    }
    return net->stats().throughput(net->numNodes(), net->now());
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = Options::parse(argc, argv);
    const Cycle measure = opt.fast ? 3000 : 10000;

    BenchReporter report("ablation_spin_params", opt);
    obs::JsonValue tdd_rows = obs::JsonValue::array();
    obs::JsonValue delay_rows = obs::JsonValue::array();

    std::printf("=== Ablation 1: t_DD ===\n");
    std::printf("%8s %26s %28s\n", "t_DD", "8-ring recovery (cycles)",
                "mesh thru @0.25 bit-reverse");
    for (const Cycle t_dd : {16, 32, 64, 128, 256}) {
        const Cycle rec = ringRecoveryTime(t_dd, 8, opt);
        const double thr = meshThroughput(t_dd, measure, opt);
        std::printf("%8llu %26llu %28.3f\n",
                    static_cast<unsigned long long>(t_dd),
                    static_cast<unsigned long long>(rec), thr);
        obs::JsonValue row = obs::JsonValue::object();
        row.set("tDd", obs::JsonValue(t_dd));
        row.set("ringRecoveryCycles", obs::JsonValue(rec));
        row.set("meshThroughput", obs::JsonValue(thr));
        tdd_rows.push(std::move(row));
    }
    std::printf("\nSmaller t_DD resolves faster but fires more probes "
                "under plain congestion;\nthe paper's 128 is the "
                "conservative end of the flat region.\n");

    std::printf("\n=== Ablation 2: probeMoveDelay (t_DD = 32) ===\n");
    std::printf("%8s %26s\n", "delay", "8-ring recovery (cycles)");
    for (const Cycle d : {1, 4, 8, 16, 32}) {
        const Cycle rec = ringRecoveryTime(32, d, opt);
        std::printf("%8llu %26llu\n",
                    static_cast<unsigned long long>(d),
                    static_cast<unsigned long long>(rec));
        obs::JsonValue row = obs::JsonValue::object();
        row.set("probeMoveDelay", obs::JsonValue(d));
        row.set("ringRecoveryCycles", obs::JsonValue(rec));
        delay_rows.push(std::move(row));
    }
    std::printf("\nBelow ~packet-size cycles the probe_move outruns the "
                "rotated packets and\ndies, forcing kill_move plus a "
                "fresh t_DD round per extra spin.\n");
    report.add("tDdSweep", std::move(tdd_rows));
    report.add("probeMoveDelaySweep", std::move(delay_rows));
    return report.writeIfRequested(opt) ? 0 : 1;
}
