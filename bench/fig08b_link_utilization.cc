/**
 * @file
 * Reproduces Fig. 8(b): link-utilization breakdown (flits, probe SMs,
 * move-class SMs, idle) on the 8x8 mesh with 3 VCs and minimal adaptive
 * routing + SPIN, under uniform random traffic at low (0.01), medium
 * (0.2) and high (0.5) injection rates. Thin wrapper over the built-in
 * `fig08b` sweep spec (see docs/SWEEP.md).
 *
 * Expected shape: no SMs at low load; a few percent of probe cycles at
 * medium/high load; combined SM utilization never past ~5%; flit
 * utilization *drops* at high load as deadlocks idle the links.
 */

#include "bench/CampaignBench.hh"

int
main(int argc, char **argv)
{
    return spin::bench::runCampaignMain(
        "=== Fig. 8b: link utilization breakdown, 8x8 mesh, "
        "MinAdaptive_3VC_SPIN, uniform random ===",
        {"fig08b"}, spin::bench::CampaignReport::LinkUtilization, argc,
        argv);
}
