/**
 * @file
 * Reproduces Fig. 8(b): link-utilization breakdown (flits, probe SMs,
 * move-class SMs, idle) on the 8x8 mesh with 3 VCs and minimal adaptive
 * routing + SPIN, under uniform random traffic at low (0.01), medium
 * (0.2) and high (0.5) injection rates.
 *
 * Expected shape: no SMs at low load; a few percent of probe cycles at
 * medium/high load; combined SM utilization never past ~5%; flit
 * utilization *drops* at high load as deadlocks idle the links.
 */

#include "bench/BenchUtil.hh"
#include "topology/Mesh.hh"

using namespace spin;
using namespace spin::bench;

int
main(int argc, char **argv)
{
    const Options opt = Options::parse(argc, argv);
    const Cycle warm = opt.fast ? 500 : 2000;
    const Cycle meas = opt.fast ? 2000 : 10000;
    auto topo = std::make_shared<Topology>(makeMesh(8, 8));
    ConfigPreset preset = meshPresets3Vc()[3]; // MinAdaptive+SPIN
    opt.apply(preset);

    BenchReporter report("fig08b_link_utilization", opt);
    TraceAttacher attach(opt.tracePath);
    obs::JsonValue rows = obs::JsonValue::array();

    std::printf("=== Fig. 8b: link utilization breakdown, 8x8 mesh, "
                "MinAdaptive_3VC_SPIN, uniform random ===\n");
    std::printf("%8s %10s %10s %10s %10s %10s\n", "rate", "flit%",
                "probe%", "move%", "sm-total%", "idle%");

    for (const double rate : {0.01, 0.2, 0.5}) {
        auto net = preset.build(topo);
        attach(*net);
        net->enableSampling();
        InjectorConfig icfg;
        icfg.injectionRate = rate;
        SyntheticInjector inj(*net, Pattern::UniformRandom, icfg);
        for (Cycle i = 0; i < warm; ++i) {
            inj.tick();
            net->step();
        }
        net->beginMeasurement();
        for (Cycle i = 0; i < meas; ++i) {
            inj.tick();
            net->step();
        }
        const LinkUsage u = net->linkUsage();
        std::printf("%8.2f %10.2f %10.2f %10.2f %10.2f %10.2f\n", rate,
                    100 * u.frac(u.flitCycles),
                    100 * u.frac(u.probeCycles),
                    100 * u.frac(u.moveCycles),
                    100 * (u.frac(u.probeCycles) + u.frac(u.moveCycles)),
                    100 * u.frac(u.idleCycles));

        obs::JsonValue row = obs::JsonValue::object();
        row.set("rate", obs::JsonValue(rate));
        row.set("flitFrac", obs::JsonValue(u.frac(u.flitCycles)));
        row.set("probeFrac", obs::JsonValue(u.frac(u.probeCycles)));
        row.set("moveFrac", obs::JsonValue(u.frac(u.moveCycles)));
        row.set("idleFrac", obs::JsonValue(u.frac(u.idleCycles)));
        row.set("stats", net->stats().toJson());
        rows.push(std::move(row));
    }
    report.add("linkUtilization", std::move(rows));
    return report.writeIfRequested(opt) ? 0 : 1;
}
