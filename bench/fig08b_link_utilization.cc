/**
 * @file
 * Reproduces Fig. 8(b): link-utilization breakdown (flits, probe SMs,
 * move-class SMs, idle) on the 8x8 mesh with 3 VCs and minimal adaptive
 * routing + SPIN, under uniform random traffic at low (0.01), medium
 * (0.2) and high (0.5) injection rates.
 *
 * Expected shape: no SMs at low load; a few percent of probe cycles at
 * medium/high load; combined SM utilization never past ~5%; flit
 * utilization *drops* at high load as deadlocks idle the links.
 */

#include "bench/BenchUtil.hh"
#include "topology/Mesh.hh"

using namespace spin;
using namespace spin::bench;

int
main(int argc, char **argv)
{
    const Options opt = Options::parse(argc, argv);
    const Cycle warm = opt.fast ? 500 : 2000;
    const Cycle meas = opt.fast ? 2000 : 10000;
    auto topo = std::make_shared<Topology>(makeMesh(8, 8));
    const ConfigPreset preset = meshPresets3Vc()[3]; // MinAdaptive+SPIN

    std::printf("=== Fig. 8b: link utilization breakdown, 8x8 mesh, "
                "MinAdaptive_3VC_SPIN, uniform random ===\n");
    std::printf("%8s %10s %10s %10s %10s %10s\n", "rate", "flit%",
                "probe%", "move%", "sm-total%", "idle%");

    for (const double rate : {0.01, 0.2, 0.5}) {
        auto net = preset.build(topo);
        InjectorConfig icfg;
        icfg.injectionRate = rate;
        SyntheticInjector inj(*net, Pattern::UniformRandom, icfg);
        for (Cycle i = 0; i < warm; ++i) {
            inj.tick();
            net->step();
        }
        net->beginMeasurement();
        for (Cycle i = 0; i < meas; ++i) {
            inj.tick();
            net->step();
        }
        const LinkUsage u = net->linkUsage();
        std::printf("%8.2f %10.2f %10.2f %10.2f %10.2f %10.2f\n", rate,
                    100 * u.frac(u.flitCycles),
                    100 * u.frac(u.probeCycles),
                    100 * u.frac(u.moveCycles),
                    100 * (u.frac(u.probeCycles) + u.frac(u.moveCycles)),
                    100 * u.frac(u.idleCycles));
    }
    return 0;
}
