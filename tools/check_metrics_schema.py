#!/usr/bin/env python3
"""Validate a spin-metrics/v2 JSONL stream (the --metrics output).

Every line is one self-describing record. Per stream (a stream is all
records sharing one ``cell`` label, or the unlabeled records):

* exactly one ``header`` naming the instruments and the window interval
  before any ``window``;
* ``window`` records with contiguous ``seq`` starting at 0, monotonic
  half-open cycle ranges, counter/gauge keys matching the header's
  instrument lists exactly, and the derived block present;
* at most one ``measurement-begin`` marker;
* at most one ``finish`` record, after every window, whose ``windows``
  count matches the windows seen.

This is the drift gate for the metrics pipeline: a field renamed, a
record reordered, or an instrument silently dropped fails here before
any consumer (spin_report.py, external dashboards) mis-parses it.

Exit codes: 0 valid, 2 schema violation or IO error (mirroring
check_sweep_baseline.py: drift is a setup/contract error, not a
tolerance question).

Usage:
    tools/check_metrics_schema.py metrics.jsonl
    tools/check_metrics_schema.py metrics.jsonl --min-windows 1
"""

import argparse
import json
import sys

# v2 added the reliability.* counters (crcFails, linkRetries,
# retransmits, dupDrops, recoveredPackets, packetsAbandoned,
# watchdogAlarms). v1 streams predate them and fail here by
# design: regenerate the capture rather than mixing versions.
SCHEMA = "spin-metrics/v2"
KINDS = ("header", "window", "measurement-begin", "finish")

HEADER_KEYS = ("interval", "startCycle", "config", "counters", "gauges",
               "histograms")
WINDOW_KEYS = ("seq", "cycleStart", "cycleEnd", "counters", "gauges",
               "hist", "derived")
DERIVED_KEYS = ("throughput", "latencyAvg", "latencyP50", "latencyP99")


def fail(msg):
    print(f"check_metrics_schema: {msg}", file=sys.stderr)
    print("The stream does not match the spin-metrics/v2 contract "
          "(docs/OBSERVABILITY.md). If the producer changed "
          "deliberately, bump the schema version and update this "
          "checker together.", file=sys.stderr)
    sys.exit(2)


class Stream:
    """Validation state for one cell label."""

    def __init__(self, label):
        self.label = label or "<unlabeled>"
        self.header = None
        self.windows = 0
        self.last_end = None
        self.begun = False
        self.finished = False

    def where(self, lineno):
        return f"line {lineno} (cell {self.label})"


def check_names(where, kind, got, want):
    if list(got) != list(want):
        missing = [k for k in want if k not in got]
        extra = [k for k in got if k not in want]
        detail = []
        if missing:
            detail.append(f"missing {missing}")
        if extra:
            detail.append(f"unexpected {extra}")
        if not detail:
            detail.append("order differs from the header")
        fail(f"{where}: {kind} keys drifted from the header's "
             f"instrument list: {'; '.join(detail)}")


def check_record(stream, rec, lineno):
    where = stream.where(lineno)
    kind = rec.get("kind")
    if kind not in KINDS:
        fail(f"{where}: unknown kind {kind!r}, want one of {KINDS}")

    if kind == "header":
        if stream.header is not None:
            fail(f"{where}: duplicate header")
        for key in HEADER_KEYS:
            if key not in rec:
                fail(f"{where}: header lacks {key!r}")
        if not (isinstance(rec["interval"], int) and rec["interval"] > 0):
            fail(f"{where}: interval must be a positive integer, got "
                 f"{rec['interval']!r}")
        for key in ("counters", "gauges", "histograms"):
            names = rec[key]
            if (not isinstance(names, list)
                    or not all(isinstance(n, str) for n in names)):
                fail(f"{where}: header {key!r} must be an array of "
                     "instrument names")
            if len(set(names)) != len(names):
                fail(f"{where}: header {key!r} holds duplicate names")
        stream.header = rec
        return

    if stream.header is None:
        fail(f"{where}: {kind!r} record before the stream's header")
    if stream.finished:
        fail(f"{where}: {kind!r} record after the finish record")

    if kind == "measurement-begin":
        if stream.begun:
            fail(f"{where}: duplicate measurement-begin marker")
        if not isinstance(rec.get("cycle"), int):
            fail(f"{where}: measurement-begin lacks an integer 'cycle'")
        stream.begun = True
        return

    if kind == "finish":
        if rec.get("windows") != stream.windows:
            fail(f"{where}: finish claims {rec.get('windows')!r} "
                 f"windows, stream held {stream.windows}")
        stream.finished = True
        return

    # kind == "window"
    for key in WINDOW_KEYS:
        if key not in rec:
            fail(f"{where}: window lacks {key!r}")
    if rec["seq"] != stream.windows:
        fail(f"{where}: window seq {rec['seq']!r}, want "
             f"{stream.windows} (contiguous from 0)")
    start, end = rec["cycleStart"], rec["cycleEnd"]
    if not (isinstance(start, int) and isinstance(end, int)
            and start < end):
        fail(f"{where}: window range [{start!r}, {end!r}) is not a "
             "valid half-open cycle interval")
    if stream.last_end is not None and start < stream.last_end:
        fail(f"{where}: window starts at {start}, before the previous "
             f"window's end {stream.last_end}")
    check_names(where, "counters", rec["counters"].keys(),
                stream.header["counters"])
    check_names(where, "gauges", rec["gauges"].keys(),
                stream.header["gauges"])
    check_names(where, "hist", rec["hist"].keys(),
                stream.header["histograms"])
    for name, v in rec["counters"].items():
        if not (isinstance(v, int) and v >= 0):
            fail(f"{where}: counter {name!r} must be a non-negative "
                 f"integer, got {v!r}")
    for name, v in rec["gauges"].items():
        if not isinstance(v, (int, float)) or isinstance(v, bool):
            fail(f"{where}: gauge {name!r} must be numeric, got {v!r}")
    for name, buckets in rec["hist"].items():
        if (not isinstance(buckets, list) or not all(
                isinstance(b, int) and b >= 0 for b in buckets)):
            fail(f"{where}: histogram {name!r} must be an array of "
                 "non-negative bucket counts")
    for key in DERIVED_KEYS:
        v = rec["derived"].get(key)
        if not isinstance(v, (int, float)) or isinstance(v, bool):
            fail(f"{where}: derived.{key} must be numeric, got {v!r}")
    stream.windows += 1
    stream.last_end = end


def main():
    ap = argparse.ArgumentParser(
        description="Validate a spin-metrics/v2 JSONL stream.")
    ap.add_argument("path", help="metrics JSONL file (--metrics output)")
    ap.add_argument("--min-windows", type=int, default=0,
                    help="require at least N windows across all "
                         "streams (default %(default)s)")
    args = ap.parse_args()

    try:
        with open(args.path) as f:
            lines = f.read().splitlines()
    except OSError as e:
        fail(f"cannot read {args.path}: {e}")

    streams = {}
    records = 0
    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            fail(f"line {lineno}: blank line in JSONL stream")
        try:
            rec = json.loads(line)
        except ValueError as e:
            fail(f"line {lineno}: not valid JSON: {e}")
        if not isinstance(rec, dict):
            fail(f"line {lineno}: record is a JSON "
                 f"{type(rec).__name__}, want an object")
        if rec.get("schema") != SCHEMA:
            hint = ""
            if rec.get("schema") == "spin-metrics/v1":
                hint = (" (a v1 stream from an older build: regenerate "
                        "the capture with the current binaries)")
            fail(f"line {lineno}: schema is {rec.get('schema')!r}, "
                 f"want {SCHEMA!r}{hint}")
        label = rec.get("cell")
        if label is not None and not isinstance(label, str):
            fail(f"line {lineno}: 'cell' must be a string when present")
        stream = streams.setdefault(label, Stream(label))
        check_record(stream, rec, lineno)
        records += 1

    if records == 0:
        fail(f"{args.path} is empty: no records to validate")
    total_windows = sum(s.windows for s in streams.values())
    if total_windows < args.min_windows:
        fail(f"{args.path}: {total_windows} window(s) across "
             f"{len(streams)} stream(s), need at least "
             f"{args.min_windows}")

    print(f"OK: {records} records, {len(streams)} stream(s), "
          f"{total_windows} window(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
