/**
 * @file
 * spin-model: exhaustive explicit-state model checker for the SPIN
 * recovery protocol.
 *
 * Where spin_lint proves deadlock freedom statically from the routing
 * function, spin_model checks the *recovery protocol itself*: it
 * replays small bounded configurations (2-4 routers per dependency
 * loop, see src/verify/Scenarios.cc) through the real
 * SpinFsm/SpinUnit/SpinManager implementation and exhaustively
 * explores SM-schedule interleavings -- probe launches, FAvORS
 * arbitration upsets, move grants and timeouts, counter-probe
 * collisions, kill_moves, fault-induced aborts -- by delaying or
 * dropping special messages at every launch point up to a perturbation
 * budget. Visited states are deduplicated by a canonical digest
 * (rotation-symmetric on rings), every cycle of every run is audited
 * (flit conservation, frozen-VC bookkeeping, Fig. 4a transitions,
 * one-spin-per-loop), and every run must drain within the paper's
 * k = m*p + (m-1) spin bound. Violations come back as minimized,
 * deterministically replayable traces (spin-model-trace/v1).
 *
 * Examples:
 *   spin_model                                   # verify all scenarios
 *   spin_model --scenario ring4 --budget 2 --json report.json
 *   spin_model --mutate skip-cancel-unfreeze --trace-dir out/
 *   spin_model --replay out/ring4-audit-0.json
 *
 * exit status: 0 everything verified clean (or --replay reproduced its
 *              violation), 1 violation found (or --replay failed to
 *              reproduce), 2 usage error
 */

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "exp/ArgParse.hh"
#include "obs/Json.hh"
#include "verify/Explorer.hh"
#include "verify/Scenarios.hh"
#include "verify/Trace.hh"

namespace
{

using namespace spin;
using namespace spin::verify;

const char *kUsage =
    "spin_model: exhaustive model checker for the SPIN recovery protocol\n"
    "\n"
    "  --scenario NAME   verify one scenario (default: all; see --list)\n"
    "  --budget N        max SM-schedule perturbations per run (default 1)\n"
    "  --max-runs N      cap runs per scenario, 0 = run frontier dry\n"
    "                    (default 0)\n"
    "  --mutate NAME     none | skip-kill-move | skip-cancel-unfreeze\n"
    "                    (inject a protocol defect; the checker must\n"
    "                    catch it -- CI runs this as a self-test)\n"
    "  --no-liveness     disable the bounded-liveness horizon check\n"
    "  --trace-dir DIR   write a minimized spin-model-trace/v1 file per\n"
    "                    violation (DIR must exist)\n"
    "  --json PATH       machine-readable report (spin-model-report/v1)\n"
    "  --replay PATH     re-execute a trace; exit 0 iff its violation\n"
    "                    reproduces\n"
    "  --list            list scenarios and exit\n"
    "  --quiet           only print violations and the final verdict\n"
    "  --help            this message\n"
    "\n"
    "exit status: 0 verified clean / replay reproduced, 1 violation /\n"
    "             replay mismatch, 2 usage error\n";

struct Options
{
    std::string scenario;
    std::uint64_t budget = 1;
    std::uint64_t maxRuns = 0;
    std::string mutate = "none";
    bool noLiveness = false;
    std::string traceDir;
    std::string jsonPath;
    std::string replayPath;
    bool list = false;
    bool quiet = false;
    bool help = false;
};

bool
parseMutation(const std::string &name, ProtocolMutation &out)
{
    if (name == "none") {
        out = ProtocolMutation::None;
        return true;
    }
    if (name == "skip-kill-move") {
        out = ProtocolMutation::SkipKillMove;
        return true;
    }
    if (name == "skip-cancel-unfreeze") {
        out = ProtocolMutation::SkipCancelUnfreeze;
        return true;
    }
    return false;
}

int
listScenarios()
{
    for (const Scenario &sc : scenarios()) {
        std::printf("%-12s %s\n", sc.name.c_str(), sc.description.c_str());
        std::printf("%-12s   loop length %d, %d packets offered%s%s\n", "",
                    sc.loopLen, sc.offered,
                    sc.ringSymmetry ? ", ring-symmetric" : "",
                    sc.faultCycles.empty() ? ""
                                           : ", fault-injection roots");
    }
    return 0;
}

int
runReplay(const std::string &path)
{
    Violation want;
    std::string err;
    if (!traceFromFile(path, want, err)) {
        std::fprintf(stderr, "spin_model: cannot load %s: %s\n",
                     path.c_str(), err.c_str());
        return 2;
    }
    const Scenario *sc = findScenario(want.run.scenario);
    if (!sc) {
        std::fprintf(stderr, "spin_model: trace names unknown scenario %s\n",
                     want.run.scenario.c_str());
        return 2;
    }
    const ReplayResult got = replay(*sc, want.run);
    if (!got.violated) {
        std::printf("replay: NO violation (run %s at cycle %llu)\n",
                    got.quiescent ? "quiesced" : "ended",
                    static_cast<unsigned long long>(got.endCycle));
        return 1;
    }
    const bool match = got.violation.kind == want.kind;
    std::printf("replay: %s violation at cycle %llu (trace: %s at %llu)\n",
                got.violation.kind.c_str(),
                static_cast<unsigned long long>(got.violation.cycle),
                want.kind.c_str(),
                static_cast<unsigned long long>(want.cycle));
    std::printf("  %s\n", got.violation.message.c_str());
    return match ? 0 : 1;
}

obs::JsonValue
resultToJson(const Scenario &sc, const ExplorerOptions &opt,
             const ExploreResult &res)
{
    obs::JsonValue o = obs::JsonValue::object();
    o.set("scenario", sc.name);
    o.set("mutation", toString(opt.mutation));
    o.set("budget", static_cast<std::uint64_t>(opt.budget));
    o.set("runs", res.runs);
    o.set("statesVisited", res.statesVisited);
    o.set("prunedRuns", res.prunedRuns);
    o.set("choicePoints", res.choicePoints);
    o.set("cyclesSimulated", res.cyclesSimulated);
    o.set("exhausted", res.exhausted);
    obs::JsonValue viols = obs::JsonValue::array();
    for (const Violation &v : res.violations)
        viols.push(traceToJson(v));
    o.set("violations", std::move(viols));
    return o;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o;
    std::string err;
    const std::vector<exp::ArgSpec> specs = {
        exp::argStr("--scenario", &o.scenario),
        exp::argU64("--budget", &o.budget),
        exp::argU64("--max-runs", &o.maxRuns),
        exp::argStr("--mutate", &o.mutate),
        exp::argFlag("--no-liveness", &o.noLiveness),
        exp::argStr("--trace-dir", &o.traceDir),
        exp::argStr("--json", &o.jsonPath),
        exp::argStr("--replay", &o.replayPath),
        exp::argFlag("--list", &o.list),
        exp::argFlag("--quiet", &o.quiet),
        exp::argFlag("--help", &o.help),
    };
    if (!exp::parseArgs(argc, argv, specs, err)) {
        std::fprintf(stderr, "spin_model: %s\n%s", err.c_str(), kUsage);
        return 2;
    }
    if (o.help) {
        std::fputs(kUsage, stdout);
        return 0;
    }
    if (o.list)
        return listScenarios();
    if (!o.replayPath.empty())
        return runReplay(o.replayPath);

    ExplorerOptions eopt;
    eopt.budget = static_cast<int>(o.budget);
    eopt.maxRuns = o.maxRuns;
    eopt.checkLiveness = !o.noLiveness;
    if (!parseMutation(o.mutate, eopt.mutation)) {
        std::fprintf(stderr, "spin_model: unknown mutation \"%s\"\n%s",
                     o.mutate.c_str(), kUsage);
        return 2;
    }

    std::vector<const Scenario *> targets;
    if (o.scenario.empty()) {
        for (const Scenario &sc : scenarios())
            targets.push_back(&sc);
    } else {
        const Scenario *sc = findScenario(o.scenario);
        if (!sc) {
            std::fprintf(stderr, "spin_model: unknown scenario \"%s\"\n%s",
                         o.scenario.c_str(), kUsage);
            return 2;
        }
        targets.push_back(sc);
    }

    obs::JsonValue report = obs::JsonValue::object();
    report.set("schema", "spin-model-report/v1");
    obs::JsonValue rows = obs::JsonValue::array();

    std::uint64_t totalViolations = 0;
    for (const Scenario *sc : targets) {
        const ExploreResult res = explore(*sc, eopt);
        totalViolations += res.violations.size();
        if (!o.quiet) {
            std::printf("%-12s %6llu runs, %7llu states, %6llu pruned, "
                        "%6llu choice points, %9llu cycles%s -> %s\n",
                        sc->name.c_str(),
                        static_cast<unsigned long long>(res.runs),
                        static_cast<unsigned long long>(res.statesVisited),
                        static_cast<unsigned long long>(res.prunedRuns),
                        static_cast<unsigned long long>(res.choicePoints),
                        static_cast<unsigned long long>(res.cyclesSimulated),
                        res.exhausted ? "" : " (budget-capped)",
                        res.violations.empty() ? "clean" : "VIOLATION");
        }
        int idx = 0;
        for (const Violation &raw : res.violations) {
            const Violation v = minimize(*sc, raw);
            std::printf("  [%s] cycle %llu: %s\n", v.kind.c_str(),
                        static_cast<unsigned long long>(v.cycle),
                        v.message.c_str());
            std::printf("    reproduce: %zu perturbation(s)%s\n",
                        v.run.choices.size(),
                        v.run.faultCycle == kNeverCycle
                            ? ""
                            : " + router fault");
            if (!o.traceDir.empty()) {
                const std::string path = o.traceDir + "/" + sc->name + "-" +
                                         v.kind + "-" +
                                         std::to_string(idx) + ".json";
                if (traceToFile(v, path))
                    std::printf("    trace: %s\n", path.c_str());
                else
                    std::fprintf(stderr,
                                 "spin_model: cannot write %s\n",
                                 path.c_str());
            }
            ++idx;
        }
        rows.push(resultToJson(*sc, eopt, res));
    }
    report.set("scenarios", std::move(rows));
    report.set("clean", totalViolations == 0);

    if (!o.jsonPath.empty()) {
        std::ofstream out(o.jsonPath);
        out << report.dump(2) << "\n";
        if (!out) {
            std::fprintf(stderr, "spin_model: cannot write %s\n",
                         o.jsonPath.c_str());
            return 2;
        }
        if (!o.quiet)
            std::printf("report: %s\n", o.jsonPath.c_str());
    }

    if (totalViolations != 0) {
        std::printf("spin_model: %llu violation(s)\n",
                    static_cast<unsigned long long>(totalViolations));
        return 1;
    }
    if (!o.quiet)
        std::printf("spin_model: all scenarios verified clean\n");
    return 0;
}
