#!/usr/bin/env python3
"""Docs drift checker (the CI docs-check job).

Two gates, both against the working tree — no build needed:

1. **Flag coverage** — every CLI flag a bench or tool actually parses
   (the quoted ``--flag`` strings in its ``ArgSpec`` definitions /
   usage text) must appear in that binary's documentation page(s). A
   flag added to the code without a docs mention, or a flag renamed in
   code but not in docs, fails here. The source → page mapping lives
   in ``FLAG_TARGETS`` below; extend it when adding a new CLI surface.

2. **Link integrity** — every intra-repo markdown link
   (``[text](relative/path)``) in the repo's documentation must
   resolve to an existing file. External (``http...``), anchor-only
   (``#...``) and ``mailto:`` links are ignored; ``path#anchor`` is
   checked for the file part only.

Exit codes: 0 clean, 2 drift detected (the CI gate), 3 setup error
(missing files — the checker itself is misconfigured).

Usage:
    python3 tools/check_docs.py [--root REPO_ROOT]
"""

import argparse
import os
import re
import sys

# Each entry: (source file with the ArgSpec/usage strings,
#              pages where those flags must be documented,
#              flags exempt from the requirement).
# A flag passes when at least one of the pages mentions it verbatim.
GENERIC = {"--help"}
FLAG_TARGETS = [
    ("tools/spin_sweep.cc",
     ["docs/SWEEP.md"], GENERIC),
    ("tools/spin_lint.cc",
     ["docs/VERIFICATION.md"], GENERIC),
    ("tools/spin_model.cc",
     ["docs/VERIFICATION.md"], GENERIC),
    # The classic bench CLI (tables, fig03, fig08a, fig10, ablations,
    # micro_*) is defined once in BenchUtil.hh; the campaign bench CLI
    # (fig06/07/08b/09) once in CampaignBench.hh. Both are documented
    # in the regeneration guide.
    ("bench/BenchUtil.hh",
     ["EXPERIMENTS.md", "README.md"], GENERIC),
    ("bench/CampaignBench.hh",
     ["EXPERIMENTS.md", "README.md"], GENERIC),
]

# Documentation scanned for links: every tracked .md at the repo root
# and under docs/.
LINK_DIRS = [".", "docs"]

# "--flag" inside a C string literal: ArgSpec definitions quote the
# flag exactly ('argU64("--warmup", ...)'), and usage()-text mentions
# are a superset of those, so quoted occurrences are precise — prose
# em-dashes ("a -- b") never match.
FLAG_RE = re.compile(r'"(--[a-z][a-z0-9-]*)')

# [text](target) markdown links, ignoring images' leading '!' (still a
# path worth checking) and fenced ``` blocks handled by the caller.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def fail_setup(msg):
    print(f"check_docs: {msg}", file=sys.stderr)
    sys.exit(3)


def read(path):
    try:
        with open(path, encoding="utf-8") as f:
            return f.read()
    except OSError as e:
        fail_setup(f"cannot read {path}: {e}")


def check_flags(root):
    errors = []
    for src, pages, exempt in FLAG_TARGETS:
        src_path = os.path.join(root, src)
        if not os.path.exists(src_path):
            fail_setup(f"{src} vanished; update FLAG_TARGETS")
        flags = sorted(set(FLAG_RE.findall(read(src_path))) - exempt)
        docs = ""
        for page in pages:
            page_path = os.path.join(root, page)
            if not os.path.exists(page_path):
                fail_setup(f"{page} vanished; update FLAG_TARGETS")
            docs += read(page_path)
        for flag in flags:
            if flag not in docs:
                errors.append(
                    f"{src}: flag '{flag}' is not documented in "
                    f"{' or '.join(pages)}")
    return errors


def md_files(root):
    out = []
    for d in LINK_DIRS:
        full = os.path.join(root, d)
        if not os.path.isdir(full):
            continue
        for name in sorted(os.listdir(full)):
            if name.endswith(".md"):
                out.append(os.path.normpath(os.path.join(full, name)))
    return out


def strip_code_blocks(text):
    """Drop fenced code blocks: command examples legitimately contain
    bracket/paren sequences that are not links."""
    out, fenced = [], False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            fenced = not fenced
            continue
        if not fenced:
            out.append(line)
    return "\n".join(out)


def check_links(root):
    errors = []
    for md in md_files(root):
        text = strip_code_blocks(read(md))
        base = os.path.dirname(md)
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:",
                                  "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = os.path.normpath(os.path.join(base, path))
            if not os.path.exists(resolved):
                rel = os.path.relpath(md, root)
                errors.append(f"{rel}: broken link '{target}'")
    return errors


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repo root (default: the checker's parent "
                         "directory)")
    args = ap.parse_args()
    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))

    errors = check_flags(root) + check_links(root)
    if errors:
        print(f"check_docs: {len(errors)} drift issue(s):")
        for e in errors:
            print(f"  {e}")
        print("Document the flag on the binary's page (see "
              "FLAG_TARGETS in tools/check_docs.py) or fix the link.")
        return 2

    n_targets = len(FLAG_TARGETS)
    n_md = len(md_files(root))
    print(f"check_docs: OK ({n_targets} CLI surfaces, {n_md} markdown "
          f"files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
