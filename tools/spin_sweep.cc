/**
 * @file
 * spin_sweep -- parallel experiment-campaign runner.
 *
 * Runs a declarative sweep spec (built-in figure specs or a JSON file;
 * grammar in docs/SWEEP.md) across a worker pool, one independent
 * Network per cell, and writes the aggregated results JSON. The
 * aggregate is bit-identical for any -j; wall-clock performance is
 * reported separately (stdout and, with --bench-json, as the
 * BENCH_sweep.json baseline record CI gates against).
 *
 *   spin_sweep --spec fig07 -j4 --out sweep-out/fig07
 *   spin_sweep --spec ci-smoke -j2 --json results.json --resume
 *   spin_sweep --list
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "exp/ArgParse.hh"
#include "exp/Campaign.hh"
#include "exp/Report.hh"
#include "exp/SweepSpec.hh"
#include "fault/FaultSchedule.hh"

using namespace spin;
using namespace spin::exp;

namespace
{

const char *
usage()
{
    return "usage: spin_sweep --spec NAME|FILE [options]\n"
           "options:\n"
           "  --spec NAME|FILE   built-in spec name or JSON spec file\n"
           "  -j, --jobs N       worker threads, one cell each\n"
           "                     (default 1)\n"
           "  -t, --threads N    threads inside each cell's simulation\n"
           "                     (default 1; results bit-identical for\n"
           "                     any value, docs/SCALING.md)\n"
           "  --out DIR          per-cell result dir (default\n"
           "                     sweep-out/<spec>); enables resume\n"
           "  --no-cells         do not write per-cell files\n"
           "  --resume           reuse finished cells from --out\n"
           "  --json PATH        aggregated results JSON (default\n"
           "                     <out>/results.json)\n"
           "  --bench-json PATH  write the perf/baseline record\n"
           "                     (BENCH_sweep.json format)\n"
           "  --warmup N         override the spec's warmup window\n"
           "  --measure N        override the spec's measure window\n"
           "  --fast             quarter-scale warmup/measure\n"
           "  --faults PATH      inject a spin-faults/v2 schedule into\n"
           "                     every cell (docs/FAULTS.md)\n"
           "  --metrics PATH     combined spin-metrics/v2 JSONL of every\n"
           "                     simulated cell (docs/OBSERVABILITY.md)\n"
           "  --metrics-interval N  metrics window in cycles (default\n"
           "                     256)\n"
           "  --audit N          run the invariant auditor every N\n"
           "                     cycles in every cell; fail fast with a\n"
           "                     spin-audit/v1 report on violation\n"
           "  --profile          per-phase wall-clock attribution\n"
           "  --reliability      run every cell with end-to-end\n"
           "                     reliable delivery on (docs/FAULTS.md)\n"
           "  --wall-limit N     per-cell wall-clock budget in seconds;\n"
           "                     overruns dump telemetry and fail fast\n"
           "                     (0 = off)\n"
           "  --live             single-line progress meter on stderr\n"
           "                     (auto when stderr is a TTY)\n"
           "  --progress         per-cell progress on stderr\n"
           "  --cells            print the cell expansion and exit\n"
           "  --list             list built-in specs and presets\n"
           "  --help             this message\n";
}

void
listBuiltins()
{
    std::printf("built-in specs:\n");
    for (const std::string &name : builtinSpecNames()) {
        SweepSpec s;
        builtinSpec(name, s);
        std::printf("  %-16s %s, %zu presets x %zu patterns x %zu "
                    "rates x %zu seeds = %zu cells\n",
                    name.c_str(), s.topology.c_str(), s.presets.size(),
                    s.patterns.size(), s.rates.size(), s.seeds.size(),
                    s.expand().size());
    }
    std::printf("\npresets:\n");
    for (const ConfigPreset &p : presetRegistry()) {
        std::printf("  %-24s %s, %d vnets x %d VCs, %s\n",
                    p.name.c_str(), toString(p.kind).c_str(), p.cfg.vnets,
                    p.cfg.vcsPerVnet, toString(p.cfg.scheme).c_str());
    }
}

/**
 * The BENCH_sweep.json record: a deterministic per-cell digest (the
 * tolerance gate) plus the measured throughput of this run (the perf
 * trajectory). tools/check_sweep_baseline.py compares two of these.
 */
obs::JsonValue
benchRecord(const SweepSpec &spec, const obs::JsonValue &results,
            const CampaignPerf &perf, int jobs, int threads)
{
    using obs::JsonValue;
    JsonValue root = JsonValue::object();
    root.set("schema", JsonValue("spin-sweep-bench/v1"));
    root.set("spec", JsonValue(spec.name));
    JsonValue digest = JsonValue::array();
    const JsonValue &cells = results["cells"];
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const JsonValue &c = cells.at(i);
        JsonValue d = JsonValue::object();
        d.set("cell", c["cell"]);
        d.set("latency", c["latency"]);
        d.set("throughput", c["throughput"]);
        d.set("flitsEjected", c["stats"]["traffic"]["flitsEjected"]);
        d.set("spins", c["stats"]["spin"]["spins"]);
        digest.push(std::move(d));
    }
    root.set("digest", std::move(digest));
    JsonValue p = perf.toJson();
    p.set("jobs", JsonValue(jobs));
    p.set("threads", JsonValue(threads));
    root.set("perf", std::move(p));
    return root;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string specArg, outDir, jsonPath, benchJsonPath, faultsPath;
    std::string metricsPath;
    std::uint64_t jobs = 1, threads = 1, warmup = 0, measure = 0;
    std::uint64_t metricsInterval = 256, auditInterval = 0;
    bool warmupSet = false, measureSet = false;
    bool fast = false, resume = false, progress = false, live = false;
    bool profile = false;
    bool noCells = false, printCells = false, list = false, help = false;
    bool reliability = false;
    std::uint64_t wallLimit = 0;

    const std::vector<ArgSpec> specs = {
        argStr("--spec", &specArg),
        argU64("-j", &jobs),
        argU64("--jobs", &jobs),
        argU64("-t", &threads),
        argU64("--threads", &threads),
        argStr("--out", &outDir),
        argFlag("--no-cells", &noCells),
        argFlag("--resume", &resume),
        argStr("--json", &jsonPath),
        argStr("--bench-json", &benchJsonPath),
        argU64("--warmup", &warmup, &warmupSet),
        argU64("--measure", &measure, &measureSet),
        argFlag("--fast", &fast),
        argStr("--faults", &faultsPath),
        argStr("--metrics", &metricsPath),
        argU64("--metrics-interval", &metricsInterval),
        argU64("--audit", &auditInterval),
        argFlag("--profile", &profile),
        argFlag("--reliability", &reliability),
        argU64("--wall-limit", &wallLimit),
        argFlag("--live", &live),
        argFlag("--progress", &progress),
        argFlag("--cells", &printCells),
        argFlag("--list", &list),
        argFlag("--help", &help),
        argFlag("-h", &help),
    };
    std::string err;
    if (!parseArgs(argc, argv, specs, err)) {
        std::fprintf(stderr, "spin_sweep: %s\n%s", err.c_str(), usage());
        return 2;
    }
    if (help) {
        std::printf("%s", usage());
        return 0;
    }
    if (list) {
        listBuiltins();
        return 0;
    }
    if (specArg.empty()) {
        std::fprintf(stderr, "spin_sweep: --spec is required\n%s",
                     usage());
        return 2;
    }

    SweepSpec spec;
    if (!builtinSpec(specArg, spec) &&
        !SweepSpec::fromFile(specArg, spec, err)) {
        std::fprintf(stderr, "spin_sweep: %s\n", err.c_str());
        return 2;
    }
    if (warmupSet)
        spec.warmup = warmup;
    if (measureSet)
        spec.measure = measure;
    if (fast) {
        spec.warmup /= 4;
        spec.measure = std::max<Cycle>(spec.measure / 4, 1);
    }
    if (reliability)
        spec.reliability = {true};

    const std::vector<Cell> cells = spec.expand();
    if (printCells) {
        std::printf("%zu cells:\n", cells.size());
        for (const Cell &c : cells)
            std::printf("  [%4zu] %-56s netSeed=%llu\n", c.index,
                        c.id.c_str(),
                        static_cast<unsigned long long>(c.netSeed));
        return 0;
    }

    CampaignOptions copt;
    copt.jobs = static_cast<int>(jobs);
    copt.threads = static_cast<int>(threads);
    copt.resume = resume;
    copt.progress = progress;
    copt.metricsPath = metricsPath;
    copt.metricsInterval = metricsInterval;
    copt.auditInterval = auditInterval;
    copt.wallLimitSeconds = wallLimit;
    copt.profile = profile;
    // The meter is for humans: auto-enable on a TTY unless per-cell
    // logging was requested, which it would overwrite.
    copt.live = live || (!progress && isatty(fileno(stderr)) != 0);
    if (!faultsPath.empty() &&
        !fault::FaultSchedule::fromFile(faultsPath, copt.faultSchedule,
                                        err)) {
        std::fprintf(stderr, "spin_sweep: %s\n", err.c_str());
        return 2;
    }
    if (!noCells)
        copt.cellDir = outDir.empty() ? "sweep-out/" + spec.name : outDir;
    if (jsonPath.empty() && !copt.cellDir.empty())
        jsonPath = copt.cellDir + "/results.json";

    std::printf("spin_sweep: spec '%s' (%s), %zu cells, %llu jobs, "
                "%llu threads/cell%s\n\n",
                spec.name.c_str(), spec.topology.c_str(), cells.size(),
                static_cast<unsigned long long>(jobs),
                static_cast<unsigned long long>(threads),
                resume ? ", resume" : "");

    Campaign campaign(spec, copt);
    obs::JsonValue results;
    try {
        results = campaign.run();
    } catch (const FatalError &e) {
        std::fprintf(stderr, "spin_sweep: %s\n", e.what());
        return 1;
    }
    printSeries(results);

    const CampaignPerf &perf = campaign.perf();
    std::printf("== campaign: %zu cells (%zu simulated, %zu cached) in "
                "%.2fs -> %.2f cells/s, %.0f cycles/s ==\n",
                perf.cells, perf.cellsSimulated, perf.cellsCached,
                perf.wallSeconds, perf.cellsPerSec(),
                perf.cyclesPerSec());
    if (profile)
        printPhaseProfile(campaign.profile().toJson());

    bool ok = true;
    if (!metricsPath.empty())
        std::printf("wrote %s\n", metricsPath.c_str());
    if (!jsonPath.empty()) {
        ok = writeJsonFile(jsonPath, results) && ok;
        if (ok)
            std::printf("wrote %s\n", jsonPath.c_str());
    }
    if (!benchJsonPath.empty()) {
        obs::JsonValue rec =
            benchRecord(spec, results, perf, static_cast<int>(jobs),
                        static_cast<int>(threads));
        // Wall-clock only; the baseline checker never reads it.
        if (profile)
            rec.set("profile", campaign.profile().toJson());
        ok = writeJsonFile(benchJsonPath, rec) && ok;
        if (ok)
            std::printf("wrote %s\n", benchJsonPath.c_str());
    }
    return ok ? 0 : 1;
}
