#!/usr/bin/env python3
"""Compare two spin-model-report/v1 records (spin_model --json output).

The explorer is bit-deterministic: scenarios, digests, branch
enumeration and pruning all derive from the simulator's deterministic
state, so the state-space shape -- runs executed, distinct canonical
states, choice points, pruned runs, cycles simulated -- must match the
committed baseline exactly. A drift means the protocol implementation
(or the checker) changed behaviour; regenerate the baseline
*deliberately* with

    spin_model --budget 1 --json tools/MODEL_baseline.json

and commit it alongside the change that explains it (see
docs/VERIFICATION.md). Mirrors the check_sweep_baseline.py convention.

Exit codes: 0 match, 1 drift/violation, 2 usage/IO error.

Usage:
    tools/check_model_baseline.py tools/MODEL_baseline.json new.json
"""

import argparse
import json
import sys

SCHEMA = "spin-model-report/v1"
DIGEST_FIELDS = ("mutation", "budget", "runs", "statesVisited",
                 "prunedRuns", "choicePoints", "cyclesSimulated",
                 "exhausted")


def load(path):
    """Read one report, exiting 2 with a clear message on IO/JSON
    problems (a missing baseline is a setup error, not a drift)."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        print(f"check_model_baseline: cannot read {path}: {e}",
              file=sys.stderr)
        print("Generate the baseline with "
              "'spin_model --budget 1 --json <path>' "
              "(see docs/VERIFICATION.md).", file=sys.stderr)
        sys.exit(2)
    except ValueError as e:
        print(f"check_model_baseline: {path} is not valid JSON: {e}",
              file=sys.stderr)
        sys.exit(2)
    if not isinstance(doc, dict) or doc.get("schema") != SCHEMA:
        print(f"check_model_baseline: {path}: schema is "
              f"{doc.get('schema') if isinstance(doc, dict) else doc!r}, "
              f"want {SCHEMA!r}", file=sys.stderr)
        sys.exit(2)
    return doc


def rows(doc, name):
    got = doc.get("scenarios")
    if not isinstance(got, list):
        print(f"check_model_baseline: {name}: 'scenarios' must be an "
              f"array, got {type(got).__name__}", file=sys.stderr)
        sys.exit(2)
    out = {}
    for i, row in enumerate(got):
        if not isinstance(row, dict) or "scenario" not in row:
            print(f"check_model_baseline: {name}: scenarios[{i}] has no "
                  "'scenario' key", file=sys.stderr)
            sys.exit(2)
        out[row["scenario"]] = row
    return out


def main():
    ap = argparse.ArgumentParser(
        description="Gate a spin_model run against the committed "
                    "MODEL_baseline.json state-space shape.")
    ap.add_argument("baseline", help="committed baseline report")
    ap.add_argument("candidate", help="freshly generated report")
    args = ap.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)
    brows = rows(base, args.baseline)
    crows = rows(cand, args.candidate)

    errors = []
    if not cand.get("clean", False):
        errors.append("candidate report is not clean (violations found)")
    for missing in sorted(brows.keys() - crows.keys()):
        errors.append(f"scenario missing from candidate: {missing}")
    for extra in sorted(crows.keys() - brows.keys()):
        errors.append(f"scenario not in baseline: {extra}")
    for name in sorted(brows.keys() & crows.keys()):
        b, c = brows[name], crows[name]
        for field in DIGEST_FIELDS:
            if b.get(field) != c.get(field):
                errors.append(f"{name}: {field} drifted "
                              f"{b.get(field)!r} -> {c.get(field)!r}")
        if c.get("violations"):
            errors.append(f"{name}: {len(c['violations'])} violation(s)")

    if errors:
        print(f"FAIL: {len(errors)} mismatch(es) vs {args.baseline}:")
        for e in errors:
            print(f"  {e}")
        print("If the protocol change is intentional, regenerate the "
              "baseline (see docs/VERIFICATION.md) and commit it.")
        return 1

    total_states = sum(c.get("statesVisited", 0) for c in crows.values())
    total_runs = sum(c.get("runs", 0) for c in crows.values())
    print(f"OK: {len(brows)} scenarios match the baseline shape "
          f"({total_runs} runs, {total_states} states, all clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
