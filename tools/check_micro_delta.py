#!/usr/bin/env python3
"""Gate the metrics-off/on overhead of the simulator hot loop.

Reads a google-benchmark JSON export of micro_router and compares the
``cycles/s`` rate of every ``BM_MeshStep/<arg>`` run against its
``BM_MeshStepMetrics/<arg>`` twin (same workload with windowed metrics
enabled on a null sink). The windowed-metrics engine is designed to be
amortized -- one predicted branch per cycle plus a snapshot every
window -- so the on-rate must stay within ``--max-delta`` percent
(default 2%) of the off-rate.

Noise control: run the benchmark with repetitions (plus
``--benchmark_enable_random_interleaving=true`` so the off/on twins do
not run in distinct time windows) and this script keeps the BEST (max
cycles/s) repetition per benchmark -- the least-perturbed run is the
fairest estimate of the code's cost on a shared CI box. The hard gate
is the GEOMETRIC MEAN of the per-arg off/on ratios: single-arg spikes
on a noisy box do not fail the build, a systematic slowdown across the
load levels does. Per-arg rows are printed for diagnosis either way.

    build/bench/micro_router --benchmark_filter='BM_MeshStep' \\
        --benchmark_repetitions=5 \\
        --benchmark_enable_random_interleaving=true \\
        --benchmark_format=json > micro.json
    tools/check_micro_delta.py micro.json

Exit codes: 0 within budget, 1 overhead above budget, 2 bad input
(mirroring check_sweep_baseline.py: setup problems are not perf
regressions).
"""

import argparse
import json
import math
import sys

OFF = "BM_MeshStep"
ON = "BM_MeshStepMetrics"


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_micro_delta: cannot load {path}: {e}",
              file=sys.stderr)
        print("Produce it with: micro_router "
              "--benchmark_filter='BM_MeshStep' "
              "--benchmark_repetitions=5 --benchmark_format=json",
              file=sys.stderr)
        sys.exit(2)
    if not isinstance(doc, dict) or "benchmarks" not in doc:
        print(f"check_micro_delta: {path} is not google-benchmark JSON "
              "(no 'benchmarks' array)", file=sys.stderr)
        sys.exit(2)
    return doc


def best_rates(doc):
    """{(family, arg): best cycles/s across repetitions}."""
    rates = {}
    for b in doc["benchmarks"]:
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("name", "")
        # "BM_MeshStep/20" or "BM_MeshStep/20/repeats:5" -> family, arg
        parts = name.split("/")
        family = parts[0]
        if family not in (OFF, ON) or len(parts) < 2:
            continue
        arg = parts[1]
        rate = b.get("cycles/s")
        if not isinstance(rate, (int, float)) or rate <= 0:
            print(f"check_micro_delta: run {name!r} lacks a positive "
                  "'cycles/s' counter", file=sys.stderr)
            sys.exit(2)
        key = (family, arg)
        rates[key] = max(rates.get(key, 0.0), rate)
    return rates


def main():
    ap = argparse.ArgumentParser(
        description="Assert metrics-on micro_router throughput is "
                    "within a budget of metrics-off.")
    ap.add_argument("path", help="micro_router --benchmark_format=json "
                                 "output")
    ap.add_argument("--max-delta", type=float, default=2.0,
                    help="allowed slowdown in percent "
                         "(default %(default)s)")
    args = ap.parse_args()

    rates = best_rates(load(args.path))
    args_seen = sorted({arg for fam, arg in rates if fam == OFF},
                       key=lambda a: int(a) if a.isdigit() else 0)
    if not args_seen:
        print(f"check_micro_delta: no {OFF}/<arg> runs in {args.path}",
              file=sys.stderr)
        sys.exit(2)

    log_ratio_sum = 0.0
    for arg in args_seen:
        off = rates.get((OFF, arg))
        on = rates.get((ON, arg))
        if on is None:
            print(f"check_micro_delta: {OFF}/{arg} has no {ON}/{arg} "
                  "twin -- run without --benchmark_filter narrowing it "
                  "out", file=sys.stderr)
            sys.exit(2)
        delta = (off - on) / off * 100.0
        tag = "ok" if delta <= args.max_delta else "high"
        print(f"  arg {arg}: off {off:,.0f} cycles/s, on {on:,.0f} "
              f"cycles/s, delta {delta:+.2f}% [{tag}]")
        log_ratio_sum += math.log(on / off)

    geomean = (1.0 - math.exp(log_ratio_sum / len(args_seen))) * 100.0
    if geomean > args.max_delta:
        print(f"FAIL: metrics-enabled hot loop is {geomean:+.2f}% "
              f"slower (geomean over {len(args_seen)} load levels, "
              f"budget {args.max_delta}%). Check for work on the "
              "per-cycle path that should live behind the window "
              "boundary (src/obs/Metrics.hh tick()).")
        return 1
    print(f"OK: metrics overhead {geomean:+.2f}% (geomean over "
          f"{len(args_seen)} load levels, budget {args.max_delta}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
