/**
 * @file
 * spin-lint: static channel-dependency-graph verifier.
 *
 * Builds the extended CDG of a (topology x routing x VC-partition x
 * deadlock-scheme) configuration from the routing function alone and
 * decides deadlock freedom without simulating: acyclicity, the Duato
 * escape condition, bubble flow control, and recovery applicability
 * (SPIN probe budget / Static Bubble reserved layer), emitting concrete
 * witness cycles for every cyclic verdict. `--sweep` checks the whole
 * shipped scheme matrix against the paper's Table 1 classification and
 * each algorithm's declared selfDeadlockFree() contract -- the CI gate.
 *
 * Examples:
 *   spin_lint --topology mesh8x8 --routing favors-min --scheme spin \
 *             --vcs 1 --dot cdg.dot
 *   spin_lint --sweep --json spin_lint.json --dot-dir lint-out
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/CdgAnalyzer.hh"
#include "common/Logging.hh"
#include "fault/FaultSchedule.hh"
#include "network/NetworkBuilder.hh"
#include "topology/Dragonfly.hh"
#include "topology/Mesh.hh"
#include "topology/Ring.hh"
#include "topology/Torus.hh"

namespace
{

using namespace spin;
using analysis::AnalysisReport;
using analysis::CdgAnalyzer;
using analysis::Verdict;

const char *kUsage =
    "spin_lint: static channel-dependency-graph deadlock verifier\n"
    "\n"
    "  --topology SPEC   mesh8x8 | mesh:X,Y | torus:X,Y | ring:N |\n"
    "                    dragonfly | dragonfly:p,a,h,g  (default mesh8x8)\n"
    "  --routing NAME    xy-dor | west-first | minimal-adaptive |\n"
    "                    escape-vc | torus-bubble-dor | ugal-dally |\n"
    "                    ugal-spin | favors-min | favors-nmin\n"
    "  --scheme NAME     none | spin | static-bubble  (default none)\n"
    "  --vcs N           VCs per vnet (default: routing's declared min)\n"
    "  --vnets N         virtual networks (default 1; vnets never share\n"
    "                    VCs, so vnet 0 decides)\n"
    "  --max-states N    reachability budget (default 2^24)\n"
    "  --faults PATH     verify the topology degraded by a\n"
    "                    spin-faults/v2 spec (single config only)\n"
    "  --json PATH       write the report (or sweep table) as JSON\n"
    "  --dot PATH        write the CDG as Graphviz DOT (single config)\n"
    "  --dot-dir DIR     sweep: write DOT per cyclic/violating row\n"
    "  --sweep           verify the shipped configuration matrix\n"
    "  --quiet           only print violations\n"
    "  --help            this message\n"
    "\n"
    "exit status: 0 all contracts hold, 1 violation or inconclusive,\n"
    "             2 usage error\n";

struct Options
{
    std::string topology = "mesh8x8";
    std::string routing = "minimal-adaptive";
    std::string scheme = "none";
    int vcs = 0; // 0 = routing's declared minimum
    int vnets = 1;
    std::uint64_t maxStates = 1ull << 24;
    std::string faultsPath;
    std::string jsonPath;
    std::string dotPath;
    std::string dotDir;
    bool sweep = false;
    bool quiet = false;
};

bool
parseArgs(int argc, char **argv, Options &o)
{
    const auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "missing value for %s\n", argv[i]);
            return nullptr;
        }
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        const char *v = nullptr;
        if (!std::strcmp(a, "--help")) {
            std::fputs(kUsage, stdout);
            std::exit(0);
        } else if (!std::strcmp(a, "--sweep")) {
            o.sweep = true;
        } else if (!std::strcmp(a, "--quiet")) {
            o.quiet = true;
        } else if (!std::strcmp(a, "--topology")) {
            if (!(v = value(i)))
                return false;
            o.topology = v;
        } else if (!std::strcmp(a, "--routing")) {
            if (!(v = value(i)))
                return false;
            o.routing = v;
        } else if (!std::strcmp(a, "--scheme")) {
            if (!(v = value(i)))
                return false;
            o.scheme = v;
        } else if (!std::strcmp(a, "--vcs")) {
            if (!(v = value(i)))
                return false;
            o.vcs = std::atoi(v);
        } else if (!std::strcmp(a, "--vnets")) {
            if (!(v = value(i)))
                return false;
            o.vnets = std::atoi(v);
        } else if (!std::strcmp(a, "--max-states")) {
            if (!(v = value(i)))
                return false;
            o.maxStates = std::strtoull(v, nullptr, 10);
        } else if (!std::strcmp(a, "--faults")) {
            if (!(v = value(i)))
                return false;
            o.faultsPath = v;
        } else if (!std::strcmp(a, "--json")) {
            if (!(v = value(i)))
                return false;
            o.jsonPath = v;
        } else if (!std::strcmp(a, "--dot")) {
            if (!(v = value(i)))
                return false;
            o.dotPath = v;
        } else if (!std::strcmp(a, "--dot-dir")) {
            if (!(v = value(i)))
                return false;
            o.dotDir = v;
        } else {
            std::fprintf(stderr, "unknown option %s\n%s", a, kUsage);
            return false;
        }
    }
    return true;
}

/** Parse "name:a,b,c" numeric parameters after the colon. */
std::vector<int>
specParams(const std::string &spec)
{
    std::vector<int> out;
    const auto colon = spec.find(':');
    if (colon == std::string::npos)
        return out;
    std::string rest = spec.substr(colon + 1);
    std::size_t pos = 0;
    while (pos < rest.size()) {
        out.push_back(std::atoi(rest.c_str() + pos));
        const auto comma = rest.find(',', pos);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

std::shared_ptr<const Topology>
makeTopology(const std::string &spec)
{
    const auto params = specParams(spec);
    const std::string kind = spec.substr(0, spec.find(':'));
    if (spec == "mesh8x8")
        return std::make_shared<Topology>(makeMesh(8, 8));
    if (kind == "mesh" && params.size() == 2)
        return std::make_shared<Topology>(makeMesh(params[0], params[1]));
    if (kind == "torus" && params.size() == 2)
        return std::make_shared<Topology>(makeTorus(params[0], params[1]));
    if (kind == "ring" && params.size() == 1)
        return std::make_shared<Topology>(makeRing(params[0]));
    if (kind == "dragonfly" && params.empty())
        return std::make_shared<Topology>(makeDragonfly(2, 4, 2, 9));
    if (kind == "dragonfly" && params.size() == 4) {
        return std::make_shared<Topology>(makeDragonfly(
            params[0], params[1], params[2], params[3]));
    }
    SPIN_FATAL("unknown topology spec '", spec, "'");
}

RoutingKind
routingKindOf(const std::string &name)
{
    for (const RoutingKind k :
         {RoutingKind::XyDor, RoutingKind::WestFirst,
          RoutingKind::MinimalAdaptive, RoutingKind::EscapeVc,
          RoutingKind::TorusBubble, RoutingKind::UgalDally,
          RoutingKind::UgalSpin, RoutingKind::FavorsMin,
          RoutingKind::FavorsNMin}) {
        if (toString(k) == name)
            return k;
    }
    SPIN_FATAL("unknown routing '", name, "'");
}

DeadlockScheme
schemeOf(const std::string &name)
{
    if (name == "none")
        return DeadlockScheme::None;
    if (name == "spin")
        return DeadlockScheme::Spin;
    if (name == "static-bubble")
        return DeadlockScheme::StaticBubble;
    SPIN_FATAL("unknown scheme '", name, "'");
}

/** A row is healthy when the declaration matches the verdict and any
 *  configured recovery scheme actually certifies freedom. */
bool
rowOk(const AnalysisReport &rep, DeadlockScheme scheme)
{
    if (!rep.contractOk)
        return false;
    if (scheme != DeadlockScheme::None &&
        !analysis::verdictDeadlockFree(rep.verdict)) {
        return false;
    }
    return rep.verdict != Verdict::Inconclusive;
}

AnalysisReport
runOne(const Options &o, const std::string &topoSpec,
       const std::string &routingName, const std::string &schemeName,
       int vcs, std::string *dot)
{
    const RoutingKind kind = routingKindOf(routingName);
    NetworkConfig cfg;
    cfg.name = "spin-lint";
    cfg.vnets = o.vnets;
    cfg.vcsPerVnet = vcs > 0 ? vcs : makeRouting(kind)->minVcsPerVnet();
    cfg.scheme = schemeOf(schemeName);
    if (cfg.scheme == DeadlockScheme::StaticBubble)
        cfg.vcsPerVnet += 1; // the reserved VC rides on top
    std::shared_ptr<const Topology> topo = makeTopology(topoSpec);
    if (!o.faultsPath.empty()) {
        fault::FaultSchedule fs;
        std::string err;
        if (!fault::FaultSchedule::fromFile(o.faultsPath, fs, err))
            SPIN_FATAL(err);
        const std::string verr = fs.validate(*topo);
        if (!verr.empty())
            SPIN_FATAL("fault spec ", o.faultsPath, ": ", verr);
        topo = fault::degradedTopology(*topo, fs.concretize(*topo));
    }
    auto net = buildNetwork(std::move(topo), cfg, kind);
    CdgAnalyzer analyzer(*net);
    AnalysisReport rep = analyzer.analyze(0, o.maxStates);
    if (dot)
        *dot = analyzer.toDot(rep);
    return rep;
}

/** One sweep row: a shipped configuration and its Table 1 verdict. */
struct SweepRow
{
    const char *name;
    const char *topology;
    const char *routing;
    const char *scheme;
    int vcs; //!< 0 = routing's declared minimum
    Verdict expected;
};

/**
 * The shipped scheme matrix (paper Table 1 plus the DOR rows of
 * Table 2's topologies). Small instances: the CDG verdict is scale
 * invariant for these regular topologies, the witnesses just get
 * longer.
 */
const SweepRow kSweep[] = {
    {"DOR_mesh", "mesh8x8", "xy-dor", "none", 0, Verdict::Acyclic},
    {"WestFirst_mesh", "mesh8x8", "west-first", "none", 0,
     Verdict::Acyclic},
    {"EscapeVC_mesh", "mesh8x8", "escape-vc", "none", 0,
     Verdict::EscapeProtected},
    {"MinAdaptive_mesh_none", "mesh8x8", "minimal-adaptive", "none", 0,
     Verdict::Deadlockable},
    {"MinAdaptive_mesh_SPIN", "mesh8x8", "minimal-adaptive", "spin", 0,
     Verdict::RecoverableSpin},
    {"StaticBubble_mesh", "mesh8x8", "minimal-adaptive", "static-bubble",
     0, Verdict::RecoverableStaticBubble},
    {"FAvORS_Min_mesh_SPIN", "mesh8x8", "favors-min", "spin", 0,
     Verdict::RecoverableSpin},
    {"FAvORS_NMin_mesh_SPIN", "mesh8x8", "favors-nmin", "spin", 0,
     Verdict::RecoverableSpin},
    {"DOR_torus_none", "torus:4,4", "xy-dor", "none", 0,
     Verdict::Deadlockable},
    {"TorusBubble", "torus:4,4", "torus-bubble-dor", "none", 0,
     Verdict::FlowControlProtected},
    {"TorusBubble_8x8", "torus:8,8", "torus-bubble-dor", "none", 0,
     Verdict::FlowControlProtected},
    {"DOR_ring", "ring:8", "xy-dor", "none", 0, Verdict::Deadlockable},
    {"MinAdaptive_ring_SPIN", "ring:8", "minimal-adaptive", "spin", 0,
     Verdict::RecoverableSpin},
    {"UGAL_Dally_dfly", "dragonfly", "ugal-dally", "none", 0,
     Verdict::Acyclic},
    {"UGAL_dfly_SPIN", "dragonfly", "ugal-spin", "spin", 3,
     Verdict::RecoverableSpin},
    {"MinAdaptive_dfly_SPIN", "dragonfly", "minimal-adaptive", "spin", 0,
     Verdict::RecoverableSpin},
    {"FAvORS_NMin_dfly_SPIN", "dragonfly", "favors-nmin", "spin", 0,
     Verdict::RecoverableSpin},
};

bool
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    out << content;
    return static_cast<bool>(out);
}

int
runSweep(const Options &o)
{
    obs::JsonValue rows = obs::JsonValue::array();
    int failures = 0;
    for (const SweepRow &row : kSweep) {
        std::string dot;
        AnalysisReport rep =
            runOne(o, row.topology, row.routing, row.scheme, row.vcs,
                   o.dotDir.empty() ? nullptr : &dot);
        const bool verdictMatch = rep.verdict == row.expected;
        const bool witnessesOk =
            analysis::verdictSelfSufficient(rep.verdict) ||
            (!rep.witnesses.empty() &&
             rep.witnesses.front().verified);
        const bool ok = rowOk(rep, schemeOf(row.scheme)) &&
                        verdictMatch && witnessesOk;
        if (!ok)
            ++failures;
        if (!ok || !o.quiet) {
            std::printf("%-24s %s %s\n", row.name,
                        ok ? "ok  " : "FAIL", rep.summary().c_str());
            if (!verdictMatch) {
                std::printf("    expected verdict %s\n",
                            analysis::toString(row.expected).c_str());
            }
            if (!witnessesOk)
                std::printf("    missing verified witness cycle\n");
        }
        obs::JsonValue j = rep.toJson();
        j.set("row", row.name);
        j.set("expected", analysis::toString(row.expected));
        j.set("ok", ok);
        rows.push(std::move(j));
        if (!o.dotDir.empty() &&
            (!ok || !analysis::verdictSelfSufficient(rep.verdict))) {
            writeFile(o.dotDir + "/" + row.name + ".dot", dot);
        }
    }
    if (!o.jsonPath.empty()) {
        obs::JsonValue doc = obs::JsonValue::object();
        doc.set("tool", "spin_lint");
        doc.set("mode", "sweep");
        doc.set("failures", failures);
        doc.set("rows", std::move(rows));
        if (!writeFile(o.jsonPath, doc.dump(2) + "\n")) {
            std::fprintf(stderr, "cannot write %s\n", o.jsonPath.c_str());
            return 1;
        }
    }
    std::printf("%zu configurations, %d failure%s\n",
                std::size(kSweep), failures, failures == 1 ? "" : "s");
    return failures == 0 ? 0 : 1;
}

int
runSingle(const Options &o)
{
    std::string dot;
    AnalysisReport rep = runOne(o, o.topology, o.routing, o.scheme,
                                o.vcs, o.dotPath.empty() ? nullptr : &dot);
    std::printf("%s\n", rep.summary().c_str());
    for (const auto &w : rep.witnesses) {
        std::printf("  witness (m=%d, %s, spin bound %d): ", w.length,
                    w.verified ? "verified" : "UNVERIFIED", w.spinBound);
        for (const StaticChannel &c : w.channels)
            std::printf("%d->%d.v%d ", c.src, c.dst, c.vc);
        std::printf("\n");
    }
    if (!o.dotPath.empty() && !writeFile(o.dotPath, dot)) {
        std::fprintf(stderr, "cannot write %s\n", o.dotPath.c_str());
        return 1;
    }
    if (!o.jsonPath.empty() &&
        !writeFile(o.jsonPath, rep.toJson().dump(2) + "\n")) {
        std::fprintf(stderr, "cannot write %s\n", o.jsonPath.c_str());
        return 1;
    }
    return rowOk(rep, schemeOf(o.scheme)) ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options o;
    if (!parseArgs(argc, argv, o))
        return 2;
    if (o.sweep && !o.faultsPath.empty()) {
        std::fprintf(stderr, "--faults applies to a single "
                             "configuration, not --sweep\n");
        return 2;
    }
    try {
        return o.sweep ? runSweep(o) : runSingle(o);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "spin_lint: %s\n", e.what());
        return 2;
    }
}
