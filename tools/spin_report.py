#!/usr/bin/env python3
"""Render SPIN observability data into a self-contained HTML report.

Inputs (all optional, at least one required):

* ``--metrics m.jsonl``  -- a spin-metrics/v2 stream (bench --metrics or
  spin_sweep --metrics): windowed time series per cell.
* ``--sweep results.json`` -- a spin-sweep/v1 (or spin-sweep-multi/v1)
  aggregate: campaign heatmaps over the preset x pattern x rate grid.
* ``--stats s.json``  -- any bench/telemetry JSON; scanned recursively
  for deadlock forensics snapshots and applied fault events, which
  become chart markers (single-cell metrics) or an event table.

The output is one HTML file with inline SVG -- no external assets, no
third-party libraries, works from file://. Charts carry a hover
crosshair + tooltip, keyboard navigation, and a table-view twin.

Typical use:

    build/bench/fig07_mesh_perf --metrics m.jsonl --json s.json --fast
    tools/spin_report.py --metrics m.jsonl --sweep s.json -o report.html
"""

import argparse
import html
import json
import math
import sys

SCHEMA_METRICS = "spin-metrics/v2"
SCHEMA_SWEEP = ("spin-sweep/v1", "spin-sweep-multi/v1")

# Categorical slots (validated order; light / dark steps per mode).
# Aqua and yellow sit below 3:1 on the light surface, so every chart
# ships a table view (the relief rule).
LIGHT_SERIES = ["#2a78d6", "#eb6834", "#1baf7a", "#eda100"]
DARK_SERIES = ["#3987e5", "#d95926", "#199e70", "#c98500"]

# Sequential ramps for the heatmaps: blue for throughput; latency (a
# second sequential context on the same page) takes the next slot's
# hue, orange, as its own light->dark ramp.
BLUE_RAMP = ["#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec",
             "#5598e7", "#3987e5", "#2a78d6", "#256abf", "#1c5cab",
             "#184f95", "#104281", "#0d366b"]
ORANGE_RAMP = ["#fbe0d4", "#f8cdb9", "#f5ba9e", "#f2a783", "#ef9468",
               "#eb6834", "#d95926", "#c24e20", "#a8431b", "#8e3816",
               "#742d11"]
# Ink flips to white once the ramp is dark enough for 4.5:1.
BLUE_INK_FLIP = 6
ORANGE_INK_FLIP = 5

FAULT_COUNTERS = ("faults.linksFailed", "faults.routersFailed",
                  "faults.transientFaults", "faults.packetsLostToFaults",
                  "faults.packetsCorrupted")
# End-to-end reliability protocol activity (docs/FAULTS.md): summed into
# its own KPI tile so a chaos run shows recovery work at a glance.
RELIABILITY_COUNTERS = ("reliability.crcFails", "reliability.linkRetries",
                        "reliability.retransmits", "reliability.dupDrops",
                        "reliability.recoveredPackets",
                        "reliability.packetsAbandoned",
                        "reliability.watchdogAlarms")


def esc(s):
    return html.escape(str(s), quote=True)


def fmt(v):
    """Compact human number for labels and tables."""
    if v is None:
        return "-"
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000:
            return f"{v:,.0f}"
        if abs(v) >= 10:
            return f"{v:.1f}"
        return f"{v:.3g}"
    return f"{v:,}"


def nice_ticks(lo, hi, target=5):
    """Clean tick positions (1/2/5 x 10^k) covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1
    span = hi - lo
    raw = span / max(target, 1)
    mag = 10 ** math.floor(math.log10(raw))
    for mult in (1, 2, 5, 10):
        step = mult * mag
        if span / step <= target:
            break
    first = math.ceil(lo / step) * step
    ticks = []
    t = first
    while t <= hi + step * 1e-9:
        ticks.append(round(t, 10))
        t += step
    return ticks


# ---------------------------------------------------------------- inputs


def load_metrics(path):
    """Parse a spin-metrics/v2 JSONL into {label: stream dict}."""
    streams = {}
    try:
        f = open(path)
    except OSError as e:
        sys.exit(f"spin_report: cannot read {path}: {e}")
    with f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError as e:
                sys.exit(f"spin_report: {path}:{lineno}: bad JSON: {e}")
            if rec.get("schema") != SCHEMA_METRICS:
                sys.exit(f"spin_report: {path}:{lineno}: schema "
                         f"{rec.get('schema')!r}, want {SCHEMA_METRICS!r} "
                         "(run tools/check_metrics_schema.py)")
            label = rec.get("cell", "")
            s = streams.setdefault(label, {"label": label, "header": None,
                                           "windows": [], "beginCycle": None})
            kind = rec.get("kind")
            if kind == "header":
                s["header"] = rec
            elif kind == "window":
                s["windows"].append(rec)
            elif kind == "measurement-begin":
                s["beginCycle"] = rec.get("cycle")
    return streams


def load_json(path, what):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"spin_report: cannot read {what} {path}: {e}")


def scan_events(doc):
    """Recursively pull forensics deadlock loops and applied faults out
    of any bench/telemetry JSON document."""
    deadlocks, faults = [], []

    def walk(node):
        if isinstance(node, dict):
            forensics = node.get("forensics")
            if isinstance(forensics, dict):
                for snap in forensics.get("snapshots", []):
                    if isinstance(snap, dict) and "cycle" in snap:
                        deadlocks.append(snap)
            fl = node.get("faults")
            if isinstance(fl, dict):
                for ev in fl.get("applied", []):
                    if isinstance(ev, dict) and "cycle" in ev:
                        faults.append(ev)
            for v in node.values():
                walk(v)
        elif isinstance(node, list):
            for v in node:
                walk(v)

    walk(doc)
    deadlocks.sort(key=lambda s: s.get("cycle", 0))
    faults.sort(key=lambda s: s.get("cycle", 0))
    return deadlocks, faults


# ------------------------------------------------------------ line chart

CHART_W, CHART_H = 760, 240
ML, MR, MT, MB = 64, 16, 18, 34
PW, PH = CHART_W - ML - MR, CHART_H - MT - MB

_chart_seq = 0


def line_chart(title, xs, series, y_label, markers=(), x_label="cycle"):
    """One SVG line chart.

    series:  [(name, values, css_class)]
    markers: [(x, kind, text)] with kind in spin|fault|deadlock
    Returns (chart html, table html).
    """
    global _chart_seq
    _chart_seq += 1
    cid = f"c{_chart_seq}"

    xlo, xhi = min(xs), max(xs)
    if xhi == xlo:
        xhi = xlo + 1
    vals = [v for _, vv, _ in series for v in vv if v is not None]
    ylo = 0.0
    yhi = max(vals) if vals else 1.0
    if yhi <= ylo:
        yhi = ylo + 1
    yticks = nice_ticks(ylo, yhi)
    yhi = max(yhi, yticks[-1])

    def X(x):
        return ML + (x - xlo) / (xhi - xlo) * PW

    def Y(v):
        return MT + PH - (v - ylo) / (yhi - ylo) * PH

    out = [f'<figure class="chart" id="{cid}">',
           f'<figcaption>{esc(title)}</figcaption>',
           f'<svg viewBox="0 0 {CHART_W} {CHART_H}" role="img" '
           f'aria-label="{esc(title)}" tabindex="0">']
    for t in yticks:
        y = Y(t)
        out.append(f'<line class="grid" x1="{ML}" y1="{y:.1f}" '
                   f'x2="{ML + PW}" y2="{y:.1f}"/>')
        out.append(f'<text class="tick" x="{ML - 6}" y="{y + 3.5:.1f}" '
                   f'text-anchor="end">{esc(fmt(t))}</text>')
    for t in nice_ticks(xlo, xhi, 6):
        if t < xlo or t > xhi:
            continue
        x = X(t)
        out.append(f'<text class="tick" x="{x:.1f}" '
                   f'y="{MT + PH + 14}" text-anchor="middle">'
                   f'{esc(fmt(t))}</text>')
    out.append(f'<line class="axis" x1="{ML}" y1="{MT + PH}" '
               f'x2="{ML + PW}" y2="{MT + PH}"/>')
    out.append(f'<text class="tick" x="{ML + PW}" y="{MT + PH + 26}" '
               f'text-anchor="end">{esc(x_label)}</text>')
    out.append(f'<text class="tick" x="{ML - 6}" y="{MT - 6}" '
               f'text-anchor="end">{esc(y_label)}</text>')

    for x, kind, _txt in markers:
        px = X(x)
        out.append(f'<line class="mark-{kind}" x1="{px:.1f}" y1="{MT}" '
                   f'x2="{px:.1f}" y2="{MT + PH}"/>')
        out.append(f'<path class="mark-{kind}-glyph" d="M {px - 4:.1f} '
                   f'{MT} L {px + 4:.1f} {MT} L {px:.1f} {MT + 7} Z"/>')

    for name, vv, cls in series:
        pts = [f"{X(x):.1f},{Y(v):.1f}"
               for x, v in zip(xs, vv) if v is not None]
        if pts:
            out.append(f'<polyline class="line {cls}" '
                       f'points="{" ".join(pts)}"/>')
        # end marker (>=8px, surface ring) + selective end label
        last = next((i for i in range(len(vv) - 1, -1, -1)
                     if vv[i] is not None), None)
        if last is not None:
            out.append(f'<circle class="dot {cls}" cx="{X(xs[last]):.1f}" '
                       f'cy="{Y(vv[last]):.1f}" r="4"/>')
    out.append(f'<line class="cross" x1="0" y1="{MT}" x2="0" '
               f'y2="{MT + PH}" style="display:none"/>')
    out.append("</svg>")

    if len(series) >= 2:
        keys = "".join(
            f'<span class="key"><span class="swatch {cls}"></span>'
            f'{esc(name)}</span>' for name, _, cls in series)
        out.append(f'<div class="legend">{keys}</div>')

    payload = {
        "xs": [round(X(x), 1) for x in xs],
        "xv": xs,
        "series": [{"name": n, "cls": c,
                    "vals": [None if v is None else round(v, 4)
                             for v in vv]}
                   for n, vv, c in series],
        "markers": [{"x": x, "kind": k, "text": t} for x, k, t in markers],
    }
    out.append(f'<script type="application/json">'
               f'{json.dumps(payload)}</script>')
    out.append("</figure>")

    rows = []
    for i, x in enumerate(xs):
        cells = "".join(f"<td>{esc(fmt(vv[i]))}</td>" for _, vv, _ in series)
        note = "; ".join(t for mx, _, t in markers if mx == x)
        rows.append(f"<tr><td>{esc(fmt(x))}</td>{cells}"
                    f"<td>{esc(note)}</td></tr>")
    heads = "".join(f"<th>{esc(n)}</th>" for n, _, _ in series)
    table = (f'<details><summary>Table view: {esc(title)}</summary>'
             f'<table><thead><tr><th>{esc(x_label)}</th>{heads}'
             f"<th>events</th></tr></thead><tbody>"
             f'{"".join(rows)}</tbody></table></details>')
    return "".join(out), table


# --------------------------------------------------------------- heatmap


def heatmap(title, row_labels, col_labels, grid, ramp, ink_flip,
            log_scale=False, flags=None, note=""):
    """An HTML-table heatmap on a sequential one-hue ramp.

    grid[r][c] is a value or None; flags[r][c] truthy appends a dagger
    (used for saturated cells)."""
    vals = [v for row in grid for v in row if v is not None]
    if not vals:
        return ""
    lo, hi = min(vals), max(vals)

    def shade(v):
        if hi == lo:
            return 0
        if log_scale and lo > 0:
            f = (math.log10(v) - math.log10(lo)) / \
                (math.log10(hi) - math.log10(lo))
        else:
            f = (v - lo) / (hi - lo)
        return min(len(ramp) - 1, max(0, int(round(f * (len(ramp) - 1)))))

    out = [f'<figure class="heat"><figcaption>{esc(title)}</figcaption>',
           "<table><thead><tr><th></th>"]
    out += [f"<th>{esc(c)}</th>" for c in col_labels]
    out.append("</tr></thead><tbody>")
    for r, rl in enumerate(row_labels):
        out.append(f'<tr><th scope="row">{esc(rl)}</th>')
        for c in range(len(col_labels)):
            v = grid[r][c]
            if v is None:
                out.append("<td></td>")
                continue
            step = shade(v)
            ink = "#ffffff" if step >= ink_flip else "#0b0b0b"
            dag = "†" if flags and flags[r][c] else ""
            out.append(
                f'<td class="cell" style="background:{ramp[step]};'
                f'color:{ink}" tabindex="0" data-row="{esc(rl)}" '
                f'data-col="{esc(col_labels[c])}" '
                f'data-val="{esc(fmt(v))}{dag}">{esc(fmt(v))}{dag}</td>')
        out.append("</tr>")
    out.append("</tbody></table>")
    scale = "log" if log_scale else "linear"
    out.append(f'<div class="note">{esc(note)} Shade: light = '
               f"{esc(fmt(lo))}, dark = {esc(fmt(hi))} ({scale} scale)."
               "</div>")
    out.append("</figure>")
    return "".join(out)


# -------------------------------------------------------------- sections


def stream_markers(windows, deadlocks, faults, single_stream):
    """Per-window event markers from counter deltas, plus forensics /
    fault-injector events when they can be attributed (one stream)."""
    markers = []
    for w in windows:
        x = w["cycleEnd"]
        spins = w["counters"].get("spin.spins", 0)
        if spins:
            markers.append((x, "spin", f"{spins} spin(s) in window"))
        nfaults = sum(w["counters"].get(k, 0) for k in FAULT_COUNTERS)
        if nfaults:
            markers.append((x, "fault", f"{nfaults} fault event(s)"))
    if single_stream:
        for ev in faults:
            markers.append((ev["cycle"], "fault",
                            ev.get("event", ev.get("kind", "fault"))))
        for snap in deadlocks:
            markers.append((snap["cycle"], "deadlock",
                            f"deadlock loop, vnet {snap.get('vnet', '?')}"))
    markers.sort(key=lambda m: m[0])
    return markers


def render_stream(stream, deadlocks, faults, single_stream):
    windows = stream["windows"]
    if not windows:
        return ""
    xs = [w["cycleEnd"] for w in windows]
    markers = stream_markers(windows, deadlocks, faults, single_stream)

    blocks, tables = [], []
    c, t = line_chart("Throughput", xs,
                      [("throughput", [w["derived"]["throughput"]
                                       for w in windows], "s0")],
                      "flits/node/cycle", markers)
    blocks.append(c)
    tables.append(t)

    c, t = line_chart(
        "Packet latency", xs,
        [("avg", [w["derived"]["latencyAvg"] for w in windows], "s0"),
         ("p50", [w["derived"]["latencyP50"] for w in windows], "s1"),
         ("p99", [w["derived"]["latencyP99"] for w in windows], "s2")],
        "cycles", markers)
    blocks.append(c)
    tables.append(t)

    gauges = stream["header"]["gauges"] if stream["header"] else []
    occ = [g for g in gauges if g.startswith("occupancy.vnet")]
    dropped = occ[3:]
    series = [(g.split(".", 1)[1],
               [w["gauges"].get(g) for w in windows], f"s{i}")
              for i, g in enumerate(occ[:3])]
    if "occupancy.total" in gauges:
        series.append(("total", [w["gauges"].get("occupancy.total")
                                 for w in windows], "muted"))
    if series:
        c, t = line_chart("VC occupancy (buffered flits)", xs, series,
                          "flits", markers)
        blocks.append(c)
        tables.append(t)

    label = stream["label"] or "(unlabeled)"
    parts = [f"<section><h3>{esc(label)}</h3>"]
    if stream["beginCycle"] is not None:
        parts.append(f'<div class="note">Measurement begins at cycle '
                     f'{fmt(stream["beginCycle"])}; windowed series reset '
                     "there (warmup discarded).</div>")
    if dropped:
        parts.append(f'<div class="note">Occupancy chart shows the first '
                     f"3 of {len(occ)} vnets; {esc(', '.join(dropped))} "
                     "remain in the table view.</div>")
    parts += blocks + tables + ["</section>"]
    return "".join(parts)


def pick_streams(streams, max_cells, substr):
    """Rank streams: most events first, then most windows."""
    def score(s):
        spins = sum(w["counters"].get("spin.spins", 0)
                    for w in s["windows"])
        faults = sum(w["counters"].get(k, 0) for w in s["windows"]
                     for k in FAULT_COUNTERS)
        return (spins + faults, len(s["windows"]))

    picked = [s for s in streams.values()
              if s["windows"] and (not substr or substr in s["label"])]
    picked.sort(key=score, reverse=True)
    return picked[:max_cells], len(picked)


def sweep_heatmaps(doc):
    """Campaign heatmaps for one spin-sweep/v1 aggregate."""
    rows = {}
    for s in doc.get("series", []):
        key = (s.get("preset", "?"), s.get("pattern", "?"))
        rows.setdefault(key, []).append(s)
    rates = sorted({p["rate"] for ss in rows.values()
                    for s in ss for p in s.get("points", [])})
    if not rows or not rates:
        return ""
    labels = [f"{p} · {pat}" for p, pat in rows]
    lat, thr, sat = [], [], []
    for key in rows:
        lrow, trow, srow = [], [], []
        for r in rates:
            pts = [p for s in rows[key] for p in s.get("points", [])
                   if p["rate"] == r]
            if not pts:
                lrow.append(None)
                trow.append(None)
                srow.append(False)
                continue
            lrow.append(sum(p["latency"] for p in pts) / len(pts))
            trow.append(sum(p["throughput"] for p in pts) / len(pts))
            srow.append(any(p.get("saturated") for p in pts))
        lat.append(lrow)
        thr.append(trow)
        sat.append(srow)
    cols = [fmt(r) for r in rates]
    name = doc.get("spec", {}).get("name", "campaign")
    seeds = max(len(ss) for ss in rows.values())
    note = (f"Mean over {seeds} run(s) per cell; † = saturated. "
            "Columns: injection rate.")
    out = [f"<section><h3>Campaign: {esc(name)}</h3>"]
    out.append(heatmap("Average packet latency (cycles)", labels, cols,
                       lat, ORANGE_RAMP, ORANGE_INK_FLIP, log_scale=True,
                       flags=sat, note=note))
    out.append(heatmap("Accepted throughput (flits/node/cycle)", labels,
                       cols, thr, BLUE_RAMP, BLUE_INK_FLIP, flags=sat,
                       note=note))
    out.append("</section>")
    return "".join(out)


def event_table(deadlocks, faults):
    if not deadlocks and not faults:
        return ""
    rows = [(f.get("cycle", 0), "fault",
             f.get("event", f.get("kind", "fault"))) for f in faults]
    rows += [(d.get("cycle", 0), "deadlock",
              f"loop over {len(d.get('routers', []))} router(s), "
              f"vnet {d.get('vnet', '?')}") for d in deadlocks]
    rows.sort()
    body = "".join(
        f'<tr><td>{fmt(c)}</td><td><span class="badge {k}">'
        f"{esc(k)}</span></td><td>{esc(t)}</td></tr>"
        for c, k, t in rows)
    return ("<section><h3>Recorded events</h3><table class='events'>"
            "<thead><tr><th>cycle</th><th>kind</th><th>detail</th></tr>"
            f"</thead><tbody>{body}</tbody></table></section>")


def stat_tiles(streams, deadlocks, faults):
    windows = sum(len(s["windows"]) for s in streams.values())
    spins = sum(w["counters"].get("spin.spins", 0)
                for s in streams.values() for w in s["windows"])
    fevents = sum(w["counters"].get(k, 0) for s in streams.values()
                  for w in s["windows"] for k in FAULT_COUNTERS)
    relevents = sum(w["counters"].get(k, 0) for s in streams.values()
                    for w in s["windows"] for k in RELIABILITY_COUNTERS)
    tiles = [("Cells", len(streams)), ("Windows", windows),
             ("Spins", spins),
             ("Fault events", fevents + len(faults)),
             ("Reliability events", relevents),
             ("Deadlock loops", len(deadlocks))]
    return ('<div class="kpis">' + "".join(
        f'<div class="tile"><div class="label">{esc(n)}</div>'
        f'<div class="value">{esc(fmt(v))}</div></div>'
        for n, v in tiles) + "</div>")


# ------------------------------------------------------------------ page

STYLE = """
:root {
  color-scheme: light;
  --surface: #fcfcfb; --page: #f9f9f7;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7; --border: rgba(11,11,11,0.10);
  --s0: #2a78d6; --s1: #eb6834; --s2: #1baf7a; --s3: #eda100;
  --warning: #fab219; --serious: #ec835a; --critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface: #1a1a19; --page: #0d0d0d;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835; --border: rgba(255,255,255,0.10);
    --s0: #3987e5; --s1: #d95926; --s2: #199e70; --s3: #c98500;
  }
}
body { font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page); color: var(--ink); margin: 0;
  padding: 24px; }
h1 { font-size: 20px; margin: 0 0 4px; }
h3 { font-size: 15px; margin: 24px 0 8px; }
.sub { color: var(--ink-2); margin-bottom: 16px; }
section { background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px 20px; margin: 16px 0; }
section h3 { margin-top: 0; }
.kpis { display: flex; gap: 12px; flex-wrap: wrap; margin: 16px 0; }
.tile { background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 10px 18px; min-width: 110px; }
.tile .label { color: var(--ink-2); font-size: 12px; }
.tile .value { font-size: 26px; font-weight: 600; }
figure.chart { margin: 12px 0 4px; }
figure.chart figcaption, figure.heat figcaption {
  font-weight: 600; margin-bottom: 4px; }
svg { width: 100%; height: auto; display: block; }
svg:focus { outline: 2px solid var(--s0); outline-offset: 2px; }
.grid { stroke: var(--grid); stroke-width: 1; }
.axis { stroke: var(--axis); stroke-width: 1; }
.tick { fill: var(--muted); font-size: 11px;
  font-variant-numeric: tabular-nums; }
.line { fill: none; stroke-width: 2; stroke-linejoin: round;
  stroke-linecap: round; }
.line.s0 { stroke: var(--s0); } .dot.s0 { fill: var(--s0); }
.line.s1 { stroke: var(--s1); } .dot.s1 { fill: var(--s1); }
.line.s2 { stroke: var(--s2); } .dot.s2 { fill: var(--s2); }
.line.s3 { stroke: var(--s3); } .dot.s3 { fill: var(--s3); }
.line.muted { stroke: var(--muted); } .dot.muted { fill: var(--muted); }
.dot { stroke: var(--surface); stroke-width: 2; }
.cross { stroke: var(--axis); stroke-width: 1; }
.mark-spin { stroke: var(--warning); stroke-width: 1; opacity: .5; }
.mark-spin-glyph { fill: var(--warning); }
.mark-fault { stroke: var(--serious); stroke-width: 1; opacity: .5; }
.mark-fault-glyph { fill: var(--serious); }
.mark-deadlock { stroke: var(--critical); stroke-width: 1; opacity: .6; }
.mark-deadlock-glyph { fill: var(--critical); }
.legend { display: flex; gap: 16px; color: var(--ink-2);
  font-size: 12px; margin: 2px 0 8px; }
.key { display: inline-flex; align-items: center; gap: 6px; }
.swatch { width: 14px; height: 2px; display: inline-block; }
.swatch.s0 { background: var(--s0); } .swatch.s1 { background: var(--s1); }
.swatch.s2 { background: var(--s2); } .swatch.s3 { background: var(--s3); }
.swatch.muted { background: var(--muted); }
.note { color: var(--ink-2); font-size: 12px; margin: 4px 0 10px; }
details { margin: 4px 0 12px; }
details summary { color: var(--ink-2); font-size: 12px; cursor: pointer; }
table { border-collapse: collapse; font-size: 12px; margin-top: 6px; }
th, td { padding: 3px 10px; text-align: right;
  font-variant-numeric: tabular-nums; }
thead th { color: var(--ink-2); font-weight: 600;
  border-bottom: 1px solid var(--axis); }
tbody tr:nth-child(even) { background: rgba(137,135,129,0.07); }
.heat td.cell { border: 2px solid var(--surface); min-width: 52px;
  cursor: default; }
.heat td.cell:hover, .heat td.cell:focus {
  outline: 2px solid var(--ink); outline-offset: -2px; }
.heat th[scope=row] { text-align: left; color: var(--ink-2);
  font-weight: 400; }
.events td:last-child { text-align: left; }
.badge { padding: 1px 8px; border-radius: 9px; font-size: 11px;
  color: #fff; }
.badge.fault { background: var(--serious); }
.badge.deadlock { background: var(--critical); }
.marker-legend { display: flex; gap: 18px; font-size: 12px;
  color: var(--ink-2); margin: 8px 0 0; }
.marker-legend .tri { display: inline-block; width: 0; height: 0;
  border-left: 5px solid transparent; border-right: 5px solid transparent;
  border-top: 8px solid; margin-right: 6px; }
#tip { position: fixed; pointer-events: none; display: none;
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 6px; padding: 6px 10px; font-size: 12px;
  box-shadow: 0 2px 10px rgba(0,0,0,0.18); z-index: 10; }
#tip .row { display: flex; align-items: center; gap: 6px; }
#tip .k { width: 12px; height: 2px; }
#tip .v { font-weight: 600; }
#tip .n { color: var(--ink-2); }
"""

SCRIPT = """
(function () {
  const tip = document.createElement('div');
  tip.id = 'tip';
  document.body.appendChild(tip);
  const css = getComputedStyle(document.documentElement);

  function show(fig, data, idx, clientX, clientY) {
    const svg = fig.querySelector('svg');
    const cross = svg.querySelector('.cross');
    cross.setAttribute('x1', data.xs[idx]);
    cross.setAttribute('x2', data.xs[idx]);
    cross.style.display = '';
    tip.textContent = '';
    const head = document.createElement('div');
    head.className = 'row';
    const hv = document.createElement('span');
    hv.className = 'v';
    hv.textContent = 'cycle ' + data.xv[idx];
    head.appendChild(hv);
    tip.appendChild(head);
    for (const s of data.series) {
      if (s.vals[idx] === null) continue;
      const row = document.createElement('div');
      row.className = 'row';
      const k = document.createElement('span');
      k.className = 'k';
      k.style.background = css.getPropertyValue('--' + s.cls) ||
        'var(--muted)';
      const v = document.createElement('span');
      v.className = 'v';
      v.textContent = s.vals[idx];
      const n = document.createElement('span');
      n.className = 'n';
      n.textContent = s.name;
      row.append(k, v, n);
      tip.appendChild(row);
    }
    for (const m of data.markers) {
      if (m.x !== data.xv[idx]) continue;
      const row = document.createElement('div');
      row.className = 'row n';
      row.textContent = '\\u25b2 ' + m.text;
      tip.appendChild(row);
    }
    tip.style.display = 'block';
    const x = Math.min(clientX + 14, window.innerWidth - 180);
    tip.style.left = x + 'px';
    tip.style.top = (clientY + 14) + 'px';
  }

  function hide(fig) {
    tip.style.display = 'none';
    const cross = fig.querySelector('.cross');
    if (cross) cross.style.display = 'none';
  }

  document.querySelectorAll('figure.chart').forEach(fig => {
    const data = JSON.parse(
      fig.querySelector('script[type="application/json"]').textContent);
    const svg = fig.querySelector('svg');
    let focusIdx = -1;
    svg.addEventListener('pointermove', ev => {
      const r = svg.getBoundingClientRect();
      const sx = (ev.clientX - r.left) * (svg.viewBox.baseVal.width /
        r.width);
      let best = 0, dist = Infinity;
      data.xs.forEach((px, i) => {
        const d = Math.abs(px - sx);
        if (d < dist) { dist = d; best = i; }
      });
      show(fig, data, best, ev.clientX, ev.clientY);
    });
    svg.addEventListener('pointerleave', () => hide(fig));
    svg.addEventListener('keydown', ev => {
      if (ev.key === 'Escape') { focusIdx = -1; hide(fig); return; }
      if (ev.key !== 'ArrowLeft' && ev.key !== 'ArrowRight') return;
      ev.preventDefault();
      const n = data.xs.length;
      if (focusIdx < 0) focusIdx = ev.key === 'ArrowLeft' ? n - 1 : 0;
      else focusIdx = ev.key === 'ArrowLeft'
        ? Math.max(0, focusIdx - 1) : Math.min(n - 1, focusIdx + 1);
      const r = svg.getBoundingClientRect();
      show(fig, data, focusIdx, r.left + 40, r.top + 40);
    });
    svg.addEventListener('blur', () => { focusIdx = -1; hide(fig); });
  });

  document.querySelectorAll('.heat td.cell').forEach(td => {
    function showCell(ev) {
      tip.textContent = '';
      const v = document.createElement('div');
      v.className = 'v';
      v.textContent = td.dataset.val;
      const n = document.createElement('div');
      n.className = 'n';
      n.textContent = td.dataset.row + ' @ rate ' + td.dataset.col;
      tip.append(v, n);
      tip.style.display = 'block';
      const r = td.getBoundingClientRect();
      tip.style.left = Math.min(ev.clientX || r.right,
        window.innerWidth - 180) + 'px';
      tip.style.top = ((ev.clientY || r.top) + 14) + 'px';
    }
    td.addEventListener('pointermove', showCell);
    td.addEventListener('focus', showCell);
    td.addEventListener('pointerleave', () => tip.style.display = 'none');
    td.addEventListener('blur', () => tip.style.display = 'none');
  });
})();
"""

MARKER_LEGEND = (
    '<div class="marker-legend">'
    '<span><span class="tri" style="border-top-color:var(--warning)">'
    "</span>spins in window</span>"
    '<span><span class="tri" style="border-top-color:var(--serious)">'
    "</span>fault events</span>"
    '<span><span class="tri" style="border-top-color:var(--critical)">'
    "</span>deadlock loop (forensics)</span></div>")


def main():
    ap = argparse.ArgumentParser(
        description="Render SPIN metrics/sweep/forensics data as a "
                    "self-contained HTML report.")
    ap.add_argument("--metrics", help="spin-metrics/v2 JSONL")
    ap.add_argument("--sweep", help="spin-sweep/v1 (or -multi/v1) "
                                    "results JSON")
    ap.add_argument("--stats", help="bench/telemetry JSON scanned for "
                                    "forensics + fault events")
    ap.add_argument("-o", "--out", default="spin-report.html",
                    help="output HTML path (default %(default)s)")
    ap.add_argument("--max-cells", type=int, default=6,
                    help="time-series sections to render "
                         "(default %(default)s)")
    ap.add_argument("--cells", default="",
                    help="only cells whose label contains this substring")
    ap.add_argument("--title", default="SPIN simulation report")
    args = ap.parse_args()
    if not (args.metrics or args.sweep or args.stats):
        ap.error("need at least one of --metrics, --sweep, --stats")

    streams = load_metrics(args.metrics) if args.metrics else {}
    deadlocks, faults = [], []
    if args.stats:
        deadlocks, faults = scan_events(load_json(args.stats, "--stats"))

    body = [f"<h1>{esc(args.title)}</h1>"]
    inputs = ", ".join(p for p in (args.metrics, args.sweep, args.stats)
                       if p)
    body.append(f'<div class="sub">Inputs: {esc(inputs)}</div>')
    body.append(stat_tiles(streams, deadlocks, faults))

    if streams:
        picked, matched = pick_streams(streams, args.max_cells, args.cells)
        single = len(streams) == 1
        if matched > len(picked):
            body.append(
                f'<div class="note">Showing {len(picked)} of {matched} '
                "cells (ranked by spin/fault events, then windows); "
                "re-run with --max-cells or --cells for others.</div>")
        body.append(MARKER_LEGEND)
        for s in picked:
            body.append(render_stream(s, deadlocks, faults, single))

    if args.sweep:
        doc = load_json(args.sweep, "--sweep")
        schema = doc.get("schema")
        if schema not in SCHEMA_SWEEP:
            sys.exit(f"spin_report: {args.sweep}: schema {schema!r}, "
                     f"want one of {SCHEMA_SWEEP}")
        docs = doc.get("campaigns", []) \
            if schema == "spin-sweep-multi/v1" else [doc]
        for d in docs:
            body.append(sweep_heatmaps(d))

    body.append(event_table(deadlocks, faults))

    page = ("<!DOCTYPE html><html lang=\"en\"><head>"
            "<meta charset=\"utf-8\">"
            "<meta name=\"viewport\" content=\"width=device-width, "
            "initial-scale=1\">"
            f"<title>{esc(args.title)}</title>"
            f"<style>{STYLE}</style></head><body>"
            + "".join(body)
            + f"<script>{SCRIPT}</script></body></html>")
    try:
        with open(args.out, "w") as f:
            f.write(page)
    except OSError as e:
        sys.exit(f"spin_report: cannot write {args.out}: {e}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
