#!/usr/bin/env python3
"""Compare two spin-sweep-bench records (bench/BENCH_sweep.json format).

The record has two parts with different contracts:

* ``digest`` -- the deterministic per-cell results (latency, throughput,
  flits ejected, spins). The simulator is bit-deterministic for a given
  spec, so these must match the committed baseline essentially exactly;
  a drift here means the simulation changed behaviour and the baseline
  must be regenerated *deliberately* (see EXPERIMENTS.md).
* ``perf`` -- wall-clock throughput of the run. Machine-dependent, so it
  is reported but never gated by default; ``--min-cells-per-sec`` adds a
  floor for environments with known hardware.

Cells produced by the reliability sweep dimension carry ``__rel`` ids
(docs/SWEEP.md); a spec that never swept reliability has no such cells,
so existing baselines stay valid. Adding the dimension to a gated spec
surfaces here as "cell not in baseline" -- regenerate the baseline
deliberately when that is intended.

Exit codes: 0 match, 1 mismatch, 2 usage/IO error.

Usage:
    tools/check_sweep_baseline.py bench/BENCH_sweep.json new.json
    tools/check_sweep_baseline.py a.json b.json --rtol 1e-6
"""

import argparse
import json
import math
import sys

DIGEST_FIELDS = ("latency", "throughput", "flitsEjected", "spins")


def load(path):
    """Read and parse one record, exiting 2 with a clear message on any
    IO or JSON problem (a missing baseline is a setup error, not a
    digest mismatch)."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        print(f"check_sweep_baseline: cannot read {path}: {e}",
              file=sys.stderr)
        print("Generate the baseline with "
              "'spin_sweep --bench-json <path>' (see EXPERIMENTS.md).",
              file=sys.stderr)
        sys.exit(2)
    except ValueError as e:
        print(f"check_sweep_baseline: {path} is not valid JSON: {e}",
              file=sys.stderr)
        sys.exit(2)
    if not isinstance(doc, dict):
        print(f"check_sweep_baseline: {path} holds a JSON "
              f"{type(doc).__name__}, want a spin-sweep-bench/v1 object",
              file=sys.stderr)
        sys.exit(2)
    return doc


def digest_cells(rec, name):
    """Index a record's digest by cell id, exiting 2 on schema drift."""
    digest = rec.get("digest")
    if not isinstance(digest, list):
        print(f"check_sweep_baseline: {name}: 'digest' must be an "
              f"array, got {type(digest).__name__}", file=sys.stderr)
        sys.exit(2)
    cells = {}
    for i, c in enumerate(digest):
        if not isinstance(c, dict) or "cell" not in c:
            print(f"check_sweep_baseline: {name}: digest[{i}] has no "
                  "'cell' key; the record does not match the "
                  "spin-sweep-bench/v1 schema", file=sys.stderr)
            sys.exit(2)
        cells[c["cell"]] = c
    return cells


def close(a, b, rtol):
    if a is None or b is None:
        return a is b
    if isinstance(a, bool) or isinstance(b, bool):
        return a == b
    fa, fb = float(a), float(b)
    if math.isnan(fa) or math.isnan(fb):
        return False
    return abs(fa - fb) <= rtol * max(abs(fa), abs(fb), 1.0)


def main():
    ap = argparse.ArgumentParser(
        description="Gate a spin_sweep run against the committed "
                    "BENCH_sweep.json baseline.")
    ap.add_argument("baseline", help="committed baseline record")
    ap.add_argument("candidate", help="freshly generated record")
    ap.add_argument("--rtol", type=float, default=1e-9,
                    help="relative tolerance for digest numerics "
                         "(default %(default)g; the run is "
                         "deterministic, so keep this tight)")
    ap.add_argument("--min-cells-per-sec", type=float, default=None,
                    help="optional floor on the candidate's "
                         "perf.cellsPerSec")
    args = ap.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)

    for rec, name in ((base, args.baseline), (cand, args.candidate)):
        if rec.get("schema") != "spin-sweep-bench/v1":
            print(f"check_sweep_baseline: {name}: schema is "
                  f"{rec.get('schema')!r}, want 'spin-sweep-bench/v1'",
                  file=sys.stderr)
            return 2

    errors = []

    if base.get("spec") != cand.get("spec"):
        errors.append(f"spec mismatch: baseline ran "
                      f"{base.get('spec')!r}, candidate "
                      f"{cand.get('spec')!r}")

    bcells = digest_cells(base, args.baseline)
    ccells = digest_cells(cand, args.candidate)
    for missing in sorted(bcells.keys() - ccells.keys()):
        errors.append(f"cell missing from candidate: {missing}")
    for extra in sorted(ccells.keys() - bcells.keys()):
        errors.append(f"cell not in baseline: {extra}")

    for cell in sorted(bcells.keys() & ccells.keys()):
        b, c = bcells[cell], ccells[cell]
        for field in DIGEST_FIELDS:
            if not close(b.get(field), c.get(field), args.rtol):
                errors.append(
                    f"{cell}: {field} drifted "
                    f"{b.get(field)!r} -> {c.get(field)!r}")

    bperf = base.get("perf", {})
    cperf = cand.get("perf", {})
    print(f"perf: baseline {bperf.get('cellsPerSec', 0):.2f} cells/s "
          f"(-j{bperf.get('jobs', '?')}), candidate "
          f"{cperf.get('cellsPerSec', 0):.2f} cells/s "
          f"(-j{cperf.get('jobs', '?')})")
    if args.min_cells_per_sec is not None:
        got = float(cperf.get("cellsPerSec", 0.0))
        if got < args.min_cells_per_sec:
            errors.append(f"perf floor: {got:.2f} cells/s < "
                          f"{args.min_cells_per_sec:.2f}")

    if errors:
        print(f"FAIL: {len(errors)} mismatch(es) vs {args.baseline}:")
        for e in errors:
            print(f"  {e}")
        print("If the simulation change is intentional, regenerate the "
              "baseline (see EXPERIMENTS.md) and commit it.")
        return 1

    print(f"OK: {len(bcells)} digest cells match within "
          f"rtol={args.rtol:g}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
