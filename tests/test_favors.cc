/**
 * @file
 * Unit tests: the FAvORS routing algorithm (paper Sec. V) -- selection
 * rule, source decision between minimal and Valiant, livelock bound,
 * and end-to-end behavior with one VC.
 */

#include <gtest/gtest.h>

#include "core/Favors.hh"
#include "network/NetworkBuilder.hh"
#include "topology/Dragonfly.hh"
#include "topology/Mesh.hh"
#include "traffic/SyntheticInjector.hh"

namespace spin
{
namespace
{

NetworkConfig
favorsCfg(std::uint64_t seed = 1)
{
    NetworkConfig cfg;
    cfg.vnets = 1;
    cfg.vcsPerVnet = 1;
    cfg.vcDepth = 5;
    cfg.maxPacketSize = 5;
    cfg.scheme = DeadlockScheme::Spin;
    cfg.tDd = 64;
    cfg.seed = seed;
    return cfg;
}

TEST(FavorsMin, IsOneVcCapable)
{
    FavorsMinimal f;
    EXPECT_EQ(f.minVcsPerVnet(), 1);
    EXPECT_TRUE(f.fullyAdaptive());
    EXPECT_FALSE(f.nonMinimal());
    EXPECT_FALSE(f.selfDeadlockFree()); // SPIN provides freedom
}

TEST(FavorsMin, SelectsFreeVcCandidate)
{
    // On an idle mesh every candidate has a free VC: the selection must
    // return one of the minimal candidates (randomized).
    auto topo = std::make_shared<Topology>(makeMesh(4, 4));
    auto net = buildNetwork(topo, favorsCfg(), RoutingKind::FavorsMin);
    Packet pkt;
    pkt.vnet = 0;
    pkt.destRouter = 15;
    std::vector<PortId> cands{MeshInfo::kEast, MeshInfo::kNorth};
    std::set<PortId> picked;
    for (int i = 0; i < 64; ++i)
        picked.insert(net->routing().select(pkt, net->router(0), cands));
    // Randomized over both free candidates.
    EXPECT_EQ(picked.size(), 2u);
}

TEST(FavorsMin, PacketsStayMinimalWithoutSpins)
{
    auto topo = std::make_shared<Topology>(makeMesh(5, 5));
    auto net = buildNetwork(topo, favorsCfg(3), RoutingKind::FavorsMin);
    std::vector<PacketPtr> pkts;
    for (NodeId s = 0; s < 25; s += 3) {
        auto p = net->makePacket(s, 24 - s, 0, 5);
        pkts.push_back(p);
        net->offerPacket(p);
    }
    net->run(800);
    for (const auto &p : pkts) {
        ASSERT_NE(p->ejectCycle, kNeverCycle);
        if (p->spins == 0 && p->src != p->dest) {
            EXPECT_EQ(p->hops,
                      topo->distance(topo->routerOfNode(p->src),
                                     topo->routerOfNode(p->dest)));
        }
    }
}

TEST(FavorsNMin, MisroutesAtMostOnce)
{
    // The livelock bound p = 1: the source decides once; the packet
    // visits at most one intermediate.
    auto topo = std::make_shared<Topology>(makeDragonfly(2, 4, 2, 0));
    auto net = buildNetwork(topo, favorsCfg(5), RoutingKind::FavorsNMin);
    InjectorConfig icfg;
    icfg.injectionRate = 0.35;
    icfg.seed = 5;
    SyntheticInjector inj(*net, Pattern::Tornado, icfg);
    int max_misroutes = 0;
    net->setEjectListener([&](const PacketPtr &p) {
        max_misroutes = std::max(max_misroutes, p->misroutes);
    });
    for (int i = 0; i < 4000; ++i) {
        inj.tick();
        net->step();
    }
    EXPECT_LE(max_misroutes, 1);
}

TEST(FavorsNMin, LightLoadGoesMinimal)
{
    auto topo = std::make_shared<Topology>(makeDragonfly(2, 4, 2, 0));
    auto net = buildNetwork(topo, favorsCfg(7), RoutingKind::FavorsNMin);
    // Single packet on an idle network: free VCs everywhere -> minimal.
    auto p = net->makePacket(0, 70, 0, 5);
    net->offerPacket(p);
    net->run(200);
    ASSERT_NE(p->ejectCycle, kNeverCycle);
    EXPECT_EQ(p->intermediate, kInvalidId);
    EXPECT_EQ(p->hops, topo->distance(topo->routerOfNode(0),
                                      topo->routerOfNode(70)));
}

TEST(FavorsNMin, AdversarialLoadTriggersDetours)
{
    auto topo = std::make_shared<Topology>(makeDragonfly(2, 4, 2, 0));
    auto net = buildNetwork(topo, favorsCfg(9), RoutingKind::FavorsNMin);
    InjectorConfig icfg;
    icfg.injectionRate = 0.5;
    icfg.seed = 9;
    SyntheticInjector inj(*net, Pattern::Tornado, icfg);
    std::uint64_t detours = 0, total = 0;
    net->setEjectListener([&](const PacketPtr &p) {
        ++total;
        detours += p->intermediate != kInvalidId;
    });
    for (int i = 0; i < 5000; ++i) {
        inj.tick();
        net->step();
    }
    ASSERT_GT(total, 100u);
    EXPECT_GT(detours, 0u);
}

TEST(FavorsNMin, PhaseTwoFlipsAtIntermediate)
{
    auto topo = std::make_shared<Topology>(makeMesh(4, 4));
    auto net = buildNetwork(topo, favorsCfg(11), RoutingKind::FavorsNMin);
    auto p = net->makePacket(0, 15, 0, 1);
    p->sourceRouted = true; // bypass the source decision
    p->intermediate = 12;   // force a detour via the north-west corner
    p->misroutes = 1;
    net->offerPacket(p);
    net->run(200);
    ASSERT_NE(p->ejectCycle, kNeverCycle);
    EXPECT_TRUE(p->phaseTwo);
    // 0 -> 12 (3 hops) + 12 -> 15 (3 hops).
    EXPECT_EQ(p->hops, 6);
}

TEST(FavorsNames, TableIiiLabels)
{
    FavorsMinimal fmin;
    FavorsNonMinimal fnmin;
    EXPECT_EQ(fmin.name(), "favors-min");
    EXPECT_EQ(fnmin.name(), "favors-nmin");
    EXPECT_TRUE(fnmin.nonMinimal());
}

} // namespace
} // namespace spin
