/**
 * @file
 * Tests for the Bubble Flow Control torus baseline (Table I FlowCtrl
 * row): DOR route shape with wrap awareness, admission gating, and the
 * headline property -- a saturated torus with NO recovery scheme must
 * never deadlock because ring entry preserves the bubble.
 */

#include <gtest/gtest.h>

#include "deadlock/OracleDetector.hh"
#include "network/NetworkBuilder.hh"
#include "routing/TorusBubble.hh"
#include "topology/Mesh.hh"
#include "topology/Torus.hh"
#include "traffic/SyntheticInjector.hh"

namespace spin
{
namespace
{

NetworkConfig
plainCfg(int vcs = 2)
{
    NetworkConfig cfg;
    cfg.vnets = 1;
    cfg.vcsPerVnet = vcs;
    cfg.vcDepth = 5;
    cfg.maxPacketSize = 5;
    cfg.scheme = DeadlockScheme::None;
    return cfg;
}

TEST(TorusBubbleTest, RequiresTorus)
{
    auto mesh = std::make_shared<Topology>(makeMesh(4, 4));
    EXPECT_THROW(buildNetwork(mesh, plainCfg(), RoutingKind::TorusBubble),
                 FatalError);
}

TEST(TorusBubbleTest, DorPicksShortestWrapDirection)
{
    auto topo = std::make_shared<Topology>(makeTorus(5, 5));
    auto net = buildNetwork(topo, plainCfg(), RoutingKind::TorusBubble);
    const TorusBubble &tb =
        static_cast<const TorusBubble &>(net->routing());
    Packet pkt;
    std::vector<PortId> out;
    // 0 -> 1: one hop east.
    tb.candidates(pkt, net->router(0), 1, out);
    EXPECT_EQ(out[0], MeshInfo::kEast);
    // 0 -> 4: wrap west (1 hop) beats 4 hops east.
    tb.candidates(pkt, net->router(0), 4, out);
    EXPECT_EQ(out[0], MeshInfo::kWest);
    // 0 -> 20 (same column, y=4): wrap south.
    tb.candidates(pkt, net->router(0), 20, out);
    EXPECT_EQ(out[0], MeshInfo::kSouth);
    // X before Y: 0 -> 6 goes east first.
    tb.candidates(pkt, net->router(0), 6, out);
    EXPECT_EQ(out[0], MeshInfo::kEast);
}

TEST(TorusBubbleTest, DeliversEndToEnd)
{
    auto topo = std::make_shared<Topology>(makeTorus(4, 4));
    auto net = buildNetwork(topo, plainCfg(), RoutingKind::TorusBubble);
    for (NodeId s = 0; s < 16; ++s)
        net->offerPacket(net->makePacket(s, (s + 7) % 16, 0, 5));
    net->run(600);
    EXPECT_EQ(net->stats().packetsEjected, 16u);
}

class BubbleSaturation
    : public ::testing::TestWithParam<std::pair<std::uint64_t, Pattern>>
{
};

TEST_P(BubbleSaturation, SaturatedTorusNeverDeadlocks)
{
    // The whole point of the scheme: scheme == None, wrap-around rings,
    // saturating load -- and no deadlock, ever, because injection and
    // dimension changes preserve the bubble.
    const auto [seed, pattern] = GetParam();
    auto topo = std::make_shared<Topology>(makeTorus(4, 4));
    NetworkConfig cfg = plainCfg(2);
    cfg.seed = seed;
    auto net = buildNetwork(topo, cfg, RoutingKind::TorusBubble);
    InjectorConfig icfg;
    icfg.injectionRate = 0.6;
    icfg.seed = seed;
    SyntheticInjector inj(*net, pattern, icfg);
    OracleDetector oracle(*net);
    for (int i = 0; i < 5000; ++i) {
        inj.tick();
        net->step();
        if (i % 500 == 0) {
            ASSERT_FALSE(oracle.detect().deadlocked) << "cycle " << i;
        }
    }
    for (int i = 0; i < 30000 && net->packetsInFlight(); ++i)
        net->step();
    EXPECT_EQ(net->packetsInFlight(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, BubbleSaturation,
    ::testing::Values(std::pair<std::uint64_t, Pattern>{1,
                          Pattern::UniformRandom},
                      std::pair<std::uint64_t, Pattern>{2,
                          Pattern::Tornado},
                      std::pair<std::uint64_t, Pattern>{3,
                          Pattern::BitComplement},
                      std::pair<std::uint64_t, Pattern>{4,
                          Pattern::Transpose}));

TEST(TorusBubbleTest, BubbleInvariantHoldsUnderRowSaturation)
{
    // Hammer row 0's eastward ring with one VC per port. The bubble
    // invariant: the ring may transiently hit zero free VCs while a
    // packet cuts through (it holds source and target at once), but
    // never *stays* there -- and the gating engages (free dips to <= 1)
    // under this load.
    auto topo = std::make_shared<Topology>(makeTorus(4, 4));
    auto net = buildNetwork(topo, plainCfg(1), RoutingKind::TorusBubble);
    for (int wave = 0; wave < 20; ++wave) {
        for (int x = 0; x < 4; ++x)
            net->offerPacket(net->makePacket(x, (x + 2) % 4, 0, 5));
    }
    const TorusBubble &tb =
        static_cast<const TorusBubble &>(net->routing());
    int min_free = 99;
    int consecutive_zero = 0, worst_zero_run = 0;
    for (int i = 0; i < 3000; ++i) {
        net->step();
        const int free_vcs =
            tb.ringFreeVcs(net->router(0), MeshInfo::kEast, 0);
        min_free = std::min(min_free, free_vcs);
        consecutive_zero = free_vcs == 0 ? consecutive_zero + 1 : 0;
        worst_zero_run = std::max(worst_zero_run, consecutive_zero);
        if (net->packetsInFlight() == 0)
            break;
    }
    EXPECT_LE(min_free, 1) << "gating never engaged";
    // A cut-through transfer resolves within a packet time + slack.
    EXPECT_LE(worst_zero_run, 12);
    for (int i = 0; i < 6000 && net->packetsInFlight(); ++i)
        net->step();
    EXPECT_EQ(net->packetsInFlight(), 0u); // and it still drains
}

} // namespace
} // namespace spin
