/**
 * @file
 * Integration tests: the datapath end to end -- injection, VC
 * allocation, switch allocation, link traversal, credits, ejection --
 * on small networks, without any deadlock machinery in the way.
 */

#include <gtest/gtest.h>

#include "network/NetworkBuilder.hh"
#include "topology/Mesh.hh"
#include "topology/Ring.hh"
#include "traffic/SyntheticInjector.hh"

namespace spin
{
namespace
{

NetworkConfig
plainCfg(int vnets = 1, int vcs = 3)
{
    NetworkConfig cfg;
    cfg.vnets = vnets;
    cfg.vcsPerVnet = vcs;
    cfg.vcDepth = 5;
    cfg.maxPacketSize = 5;
    cfg.scheme = DeadlockScheme::None;
    return cfg;
}

std::unique_ptr<Network>
smallMesh(RoutingKind kind = RoutingKind::XyDor, int vnets = 1,
          int vcs = 3)
{
    auto topo = std::make_shared<Topology>(makeMesh(4, 4));
    return buildNetwork(topo, plainCfg(vnets, vcs), kind);
}

TEST(Datapath, SinglePacketDelivery)
{
    auto net = smallMesh();
    auto pkt = net->makePacket(0, 15, 0, 5);
    net->offerPacket(pkt);
    net->run(100);
    EXPECT_EQ(net->stats().packetsEjected, 1u);
    EXPECT_EQ(net->stats().flitsEjected, 5u);
    EXPECT_NE(pkt->ejectCycle, kNeverCycle);
    EXPECT_EQ(pkt->hops, 6); // Manhattan distance on a 4x4 corner pair
    EXPECT_EQ(net->packetsInFlight(), 0u);
}

TEST(Datapath, SelfDelivery)
{
    auto net = smallMesh();
    auto pkt = net->makePacket(3, 3, 0, 1);
    net->offerPacket(pkt);
    net->run(20);
    EXPECT_EQ(net->stats().packetsEjected, 1u);
    EXPECT_EQ(pkt->hops, 0);
}

TEST(Datapath, ZeroLoadLatencyMatchesPipelineModel)
{
    auto net = smallMesh();
    auto pkt = net->makePacket(0, 1, 0, 1); // one hop east
    net->offerPacket(pkt);
    net->run(50);
    ASSERT_EQ(net->stats().packetsEjected, 1u);
    // inject wire (1) + router (1) + link (1) + router (1) + eject
    // wire (1) = 5 cycles from NIC send to NIC receive; plus the
    // injection decision cycle itself.
    EXPECT_LE(pkt->latency(), 7u);
    EXPECT_GE(pkt->latency(), 5u);
}

TEST(Datapath, MultiFlitPacketStaysContiguousPerVc)
{
    auto net = smallMesh();
    // Two packets from the same source to the same destination.
    net->offerPacket(net->makePacket(0, 12, 0, 5));
    net->offerPacket(net->makePacket(0, 12, 0, 5));
    net->run(200);
    EXPECT_EQ(net->stats().packetsEjected, 2u);
    EXPECT_EQ(net->stats().flitsEjected, 10u);
}

TEST(Datapath, ManyToOneEjectsEverything)
{
    auto net = smallMesh();
    for (NodeId src = 0; src < 16; ++src) {
        if (src != 5)
            net->offerPacket(net->makePacket(src, 5, 0, 5));
    }
    net->run(600);
    EXPECT_EQ(net->stats().packetsEjected, 15u);
    EXPECT_EQ(net->packetsInFlight(), 0u);
}

TEST(Datapath, VnetsDoNotMix)
{
    auto net = smallMesh(RoutingKind::XyDor, 3, 1);
    net->offerPacket(net->makePacket(0, 15, 0, 1));
    net->offerPacket(net->makePacket(0, 15, 2, 5));
    net->run(100);
    EXPECT_EQ(net->stats().packetsEjected, 2u);
}

TEST(Datapath, UniformRandomLoadAllDelivered)
{
    auto net = smallMesh();
    InjectorConfig icfg;
    icfg.injectionRate = 0.10;
    SyntheticInjector inj(*net, Pattern::UniformRandom, icfg);
    for (int i = 0; i < 2000; ++i) {
        inj.tick();
        net->step();
    }
    // Drain.
    for (int i = 0; i < 3000 && net->packetsInFlight() > 0; ++i)
        net->step();
    EXPECT_EQ(net->packetsInFlight(), 0u);
    EXPECT_EQ(net->stats().packetsEjected, net->stats().packetsCreated);
    EXPECT_GT(net->stats().packetsEjected, 500u);
}

TEST(Datapath, LatencyGrowsWithLoad)
{
    double lat_low = 0, lat_mid = 0;
    for (const double rate : {0.02, 0.30}) {
        auto net = smallMesh(RoutingKind::XyDor);
        InjectorConfig icfg;
        icfg.injectionRate = rate;
        SyntheticInjector inj(*net, Pattern::UniformRandom, icfg);
        for (int i = 0; i < 1000; ++i) {
            inj.tick();
            net->step();
        }
        net->beginMeasurement();
        for (int i = 0; i < 2000; ++i) {
            inj.tick();
            net->step();
        }
        (rate < 0.1 ? lat_low : lat_mid) = net->stats().avgLatency();
    }
    EXPECT_GT(lat_mid, lat_low);
}

TEST(Datapath, CreditsNeverOverflow)
{
    // The OutputUnit asserts credit invariants internally; a saturated
    // run on a tiny ring exercises them hard.
    auto topo = std::make_shared<Topology>(makeRing(4));
    auto net = buildNetwork(topo, plainCfg(1, 2),
                            RoutingKind::MinimalAdaptive);
    InjectorConfig icfg;
    icfg.injectionRate = 0.8;
    SyntheticInjector inj(*net, Pattern::UniformRandom, icfg);
    for (int i = 0; i < 2000; ++i) {
        inj.tick();
        net->step();
    }
    SUCCEED(); // no assertion fired
}

TEST(Datapath, ThroughputTracksInjectionBelowSaturation)
{
    auto net = smallMesh();
    InjectorConfig icfg;
    icfg.injectionRate = 0.10;
    SyntheticInjector inj(*net, Pattern::UniformRandom, icfg);
    for (int i = 0; i < 1000; ++i) {
        inj.tick();
        net->step();
    }
    net->beginMeasurement();
    for (int i = 0; i < 4000; ++i) {
        inj.tick();
        net->step();
    }
    const double thr = net->stats().throughput(16, net->now());
    EXPECT_NEAR(thr, 0.10, 0.02);
}

TEST(Datapath, LinkUsageAccounting)
{
    auto net = smallMesh();
    net->beginMeasurement();
    net->offerPacket(net->makePacket(0, 3, 0, 5)); // 3 hops east
    net->run(60);
    const LinkUsage u = net->linkUsage();
    // 5 flits x 3 router-to-router links.
    EXPECT_EQ(u.flitCycles, 15u);
    EXPECT_EQ(u.probeCycles, 0u);
    EXPECT_EQ(u.totalCycles, 60u * net->numLinks());
    EXPECT_EQ(u.idleCycles, u.totalCycles - 15u);
}

TEST(Datapath, EjectListenerFires)
{
    auto net = smallMesh();
    int seen = 0;
    net->setEjectListener([&](const PacketPtr &) { ++seen; });
    net->offerPacket(net->makePacket(0, 9, 0, 1));
    net->offerPacket(net->makePacket(4, 2, 0, 5));
    net->run(100);
    EXPECT_EQ(seen, 2);
}

TEST(Datapath, HopsCountRouterTraversals)
{
    auto net = smallMesh();
    auto pkt = net->makePacket(0, 5, 0, 1); // (0,0) -> (1,1): 2 hops
    net->offerPacket(pkt);
    net->run(60);
    EXPECT_EQ(pkt->hops, 2);
}

} // namespace
} // namespace spin
