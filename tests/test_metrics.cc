/**
 * @file
 * Windowed-metrics engine and self-profiler tests: registry behavior,
 * the spin-metrics/v2 stream contract (self-describing records, header
 * before windows, contiguous seq, counter-delta correctness, the
 * hand-rolled serializer's byte-compatibility with JsonValue::dump),
 * warmup reset semantics, run-to-run determinism, PhaseProfiler
 * accumulation and merge, and campaign-level capture (per-cell streams
 * bit-identical for any worker count).
 */

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "SpinTestUtil.hh"
#include "exp/Campaign.hh"
#include "exp/SweepSpec.hh"
#include "obs/Metrics.hh"
#include "obs/Profiler.hh"
#include "stats/Stats.hh"

using namespace spin;
using obs::JsonValue;

namespace fs = std::filesystem;

namespace
{

/** Parse every line of a captured stream; hard-fails on bad JSON. */
std::vector<JsonValue>
parseLines(const std::vector<std::string> &lines)
{
    std::vector<JsonValue> out;
    for (const std::string &line : lines) {
        std::string err;
        JsonValue v = JsonValue::parse(line, &err);
        EXPECT_TRUE(err.empty()) << err << " in: " << line;
        out.push_back(std::move(v));
    }
    return out;
}

/** Run the canonical ring-deadlock workload with metrics attached and
 *  return the captured stream. */
std::vector<std::string>
captureRun(Cycle interval, const std::string &label)
{
    auto net = ringNetwork(6, DeadlockScheme::Spin);
    obs::MetricsConfig mcfg;
    mcfg.interval = interval;
    mcfg.label = label;
    auto sink = std::make_unique<obs::MemoryMetricsSink>();
    obs::MemoryMetricsSink *mem = sink.get();
    net->enableMetrics(mcfg, std::move(sink));
    injectRingDeadlock(*net);
    drain(*net, 5000);
    net->metrics()->finish(net->now());
    return mem->lines();
}

} // namespace

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

TEST(MetricsRegistry, PreservesRegistrationOrderAndReadsLive)
{
    obs::MetricsRegistry reg;
    std::uint64_t a = 1, b = 2;
    double g = 0.5;
    reg.addCounter("z.second", [&b]() { return b; });
    reg.addCounter("a.first", [&a]() { return a; });
    reg.addGauge("gauge", [&g]() { return g; });
    reg.addHistogram("hist",
                     []() { return std::vector<std::uint64_t>{0, 3}; });

    const std::vector<std::string> names = reg.counterNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "z.second"); // registration order, not sorted
    EXPECT_EQ(names[1], "a.first");

    EXPECT_EQ(reg.readCounters(), (std::vector<std::uint64_t>{2, 1}));
    b = 10;
    g = 2.5;
    EXPECT_EQ(reg.readCounters(), (std::vector<std::uint64_t>{10, 1}));
    EXPECT_EQ(reg.readGauges(), (std::vector<double>{2.5}));
    ASSERT_EQ(reg.readHistograms().size(), 1u);
    EXPECT_EQ(reg.readHistograms()[0],
              (std::vector<std::uint64_t>{0, 3}));

    // In-place variants agree with the allocating ones.
    std::vector<std::uint64_t> c;
    std::vector<double> gg;
    std::vector<std::vector<std::uint64_t>> h;
    reg.readCounters(c);
    reg.readGauges(gg);
    reg.readHistograms(h);
    EXPECT_EQ(c, reg.readCounters());
    EXPECT_EQ(gg, reg.readGauges());
    EXPECT_EQ(h, reg.readHistograms());
}

TEST(MetricsHistogram, PercentileEdges)
{
    EXPECT_EQ(obs::histogramPercentile({}, 0.5), 0.0);
    EXPECT_EQ(obs::histogramPercentile({0, 0, 0}, 0.99), 0.0);
    // All mass in bucket 3 = [4, 8): every percentile interpolates
    // inside it.
    const std::vector<std::uint64_t> one{0, 0, 0, 8};
    EXPECT_GE(obs::histogramPercentile(one, 0.01), 4.0);
    EXPECT_LE(obs::histogramPercentile(one, 1.0), 8.0);
    EXPECT_LT(obs::histogramPercentile(one, 0.25),
              obs::histogramPercentile(one, 0.75));
}

// ---------------------------------------------------------------------
// Stream contract
// ---------------------------------------------------------------------

TEST(NetworkMetrics, StreamIsSelfDescribingAndOrdered)
{
    const std::vector<std::string> lines = captureRun(32, "unit-cell");
    const std::vector<JsonValue> recs = parseLines(lines);
    ASSERT_GE(recs.size(), 3u); // header + >=1 window + finish

    // Every record is self-describing.
    for (const JsonValue &r : recs) {
        EXPECT_EQ(r["schema"].asString(), "spin-metrics/v2");
        EXPECT_EQ(r["cell"].asString(), "unit-cell");
        EXPECT_FALSE(r["kind"].asString().empty());
    }

    const JsonValue &header = recs.front();
    ASSERT_EQ(header["kind"].asString(), "header");
    EXPECT_EQ(header["interval"].asU64(), 32u);
    EXPECT_GT(header["counters"].size(), 0u);
    EXPECT_GT(header["gauges"].size(), 0u);
    EXPECT_EQ(header["config"]["numRouters"].asU64(), 6u);

    const JsonValue &fin = recs.back();
    ASSERT_EQ(fin["kind"].asString(), "finish");

    std::uint64_t seq = 0, windows = 0;
    Cycle lastEnd = 0;
    for (const JsonValue &r : recs) {
        if (r["kind"].asString() != "window")
            continue;
        EXPECT_EQ(r["seq"].asU64(), seq++);
        const Cycle start = r["cycleStart"].asU64();
        const Cycle end = r["cycleEnd"].asU64();
        EXPECT_LT(start, end);
        EXPECT_GE(start, lastEnd);
        lastEnd = end;
        // Window instrument keys match the header's lists exactly.
        EXPECT_EQ(r["counters"].size(), header["counters"].size());
        EXPECT_EQ(r["gauges"].size(), header["gauges"].size());
        for (std::size_t i = 0; i < header["counters"].size(); ++i)
            EXPECT_FALSE(
                r["counters"][header["counters"].at(i).asString()].isNull());
        EXPECT_FALSE(r["derived"]["throughput"].isNull());
        EXPECT_FALSE(r["derived"]["latencyP99"].isNull());
        ++windows;
    }
    EXPECT_EQ(fin["windows"].asU64(), windows);
}

TEST(NetworkMetrics, HandSerializerMatchesJsonValueDump)
{
    // emitWindow() hand-rolls its JSON for speed; parsing a line and
    // re-dumping it through JsonValue must reproduce the bytes.
    for (const std::string &line : captureRun(32, "roundtrip")) {
        std::string err;
        const JsonValue v = JsonValue::parse(line, &err);
        ASSERT_TRUE(err.empty()) << err;
        EXPECT_EQ(v.dump(0), line);
    }
}

TEST(NetworkMetrics, WindowCounterDeltasSumToCumulative)
{
    auto net = ringNetwork(6, DeadlockScheme::Spin);
    auto sink = std::make_unique<obs::MemoryMetricsSink>();
    obs::MemoryMetricsSink *mem = sink.get();
    net->enableMetrics(obs::MetricsConfig{16, ""}, std::move(sink));
    injectRingDeadlock(*net);
    drain(*net, 5000);
    net->metrics()->finish(net->now());

    std::uint64_t ejected = 0, spins = 0;
    for (const JsonValue &r : parseLines(mem->lines())) {
        if (r["kind"].asString() != "window")
            continue;
        ejected += r["counters"]["traffic.packetsEjected"].asU64();
        spins += r["counters"]["spin.spins"].asU64();
    }
    EXPECT_EQ(ejected, net->stats().packetsEjected);
    EXPECT_EQ(spins, net->stats().spins);
    EXPECT_GT(spins, 0u); // the ring deadlock forces at least one spin
}

TEST(NetworkMetrics, DeterministicAcrossRuns)
{
    EXPECT_EQ(captureRun(32, "det"), captureRun(32, "det"));
}

TEST(NetworkMetrics, FinishIsIdempotentAndEmitsPartialWindow)
{
    auto net = ringNetwork(4, DeadlockScheme::None);
    auto sink = std::make_unique<obs::MemoryMetricsSink>();
    obs::MemoryMetricsSink *mem = sink.get();
    net->enableMetrics(obs::MetricsConfig{1000, ""}, std::move(sink));
    injectRingDeadlock(*net);
    for (int i = 0; i < 40; ++i) // far less than one full window
        net->step();
    net->metrics()->finish(net->now());
    net->metrics()->finish(net->now()); // no-op
    const std::vector<JsonValue> recs = parseLines(mem->lines());
    // header, exactly one (partial) window, one finish.
    ASSERT_EQ(recs.size(), 3u);
    EXPECT_EQ(recs[1]["kind"].asString(), "window");
    EXPECT_EQ(recs[1]["cycleEnd"].asU64(), 40u);
    EXPECT_EQ(recs[2]["kind"].asString(), "finish");
    EXPECT_EQ(net->metrics()->windowsEmitted(), 1u);
}

TEST(NetworkMetrics, WarmupResetRebaselinesWindows)
{
    auto net = ringNetwork(6, DeadlockScheme::Spin);
    auto sink = std::make_unique<obs::MemoryMetricsSink>();
    obs::MemoryMetricsSink *mem = sink.get();
    net->enableMetrics(obs::MetricsConfig{32, ""}, std::move(sink));

    // Warmup traffic, then the explicit warmup boundary.
    injectRingDeadlock(*net);
    drain(*net, 5000);
    ASSERT_GT(net->stats().packetsEjected, 0u);
    net->beginMeasurement();

    // Measured traffic.
    injectRingDeadlock(*net);
    drain(*net, 5000);
    net->metrics()->finish(net->now());

    const std::vector<JsonValue> recs = parseLines(mem->lines());
    std::size_t beginIdx = 0;
    for (std::size_t i = 0; i < recs.size(); ++i) {
        if (recs[i]["kind"].asString() == "measurement-begin")
            beginIdx = i;
    }
    ASSERT_GT(beginIdx, 0u) << "no measurement-begin marker";

    // Deltas after the marker cover exactly the measured window: they
    // sum to the post-reset cumulative Stats, with no warmup leakage.
    std::uint64_t measured = 0;
    for (std::size_t i = beginIdx + 1; i < recs.size(); ++i) {
        if (recs[i]["kind"].asString() == "window")
            measured += recs[i]["counters"]["traffic.packetsEjected"]
                            .asU64();
    }
    EXPECT_EQ(measured, net->stats().packetsEjected);
}

namespace
{

/** The WarmupResetRebaselinesWindows workload, parameterized on the
 *  step-loop thread count, as a captured stream. */
std::vector<std::string>
warmupResetCapture(int threads)
{
    auto net = ringNetwork(6, DeadlockScheme::Spin, 1, 32, threads);
    auto sink = std::make_unique<obs::MemoryMetricsSink>();
    obs::MemoryMetricsSink *mem = sink.get();
    net->enableMetrics(obs::MetricsConfig{32, ""}, std::move(sink));
    injectRingDeadlock(*net);
    drain(*net, 5000);
    net->beginMeasurement();
    injectRingDeadlock(*net);
    drain(*net, 5000);
    net->metrics()->finish(net->now());
    return mem->lines();
}

} // namespace

TEST(NetworkMetrics, WarmupResetIdenticalAcrossThreadCounts)
{
    // The warmup boundary re-baselines every counter delta; sharded
    // stepping stages per-thread Stats around that reset, so the
    // emitted stream must stay byte-identical for any thread count
    // (docs/SCALING.md determinism contract).
    const std::vector<std::string> base = warmupResetCapture(1);
    bool sawBegin = false;
    for (const std::string &line : base)
        sawBegin |= line.find("measurement-begin") != std::string::npos;
    ASSERT_TRUE(sawBegin) << "stream never crossed the warmup boundary";
    EXPECT_EQ(warmupResetCapture(2), base);
    EXPECT_EQ(warmupResetCapture(4), base);
}

// ---------------------------------------------------------------------
// Stats merge
// ---------------------------------------------------------------------

namespace
{

/**
 * Walk @p one (a lone Stats::toJson) against @p two (the same Stats
 * merged twice into a fresh one) asserting the mergeFrom contract per
 * leaf: counters double, maxLatency maxes, windowStart is untouched,
 * the derived ratios are scale-invariant. Any numeric leaf that is
 * zero in @p one means a Stats field this test forgot to set -- extend
 * MergesEveryField alongside the new counter.
 */
void
checkDoubled(const JsonValue &one, const JsonValue &two,
             const std::string &path)
{
    if (one.isObject()) {
        ASSERT_TRUE(two.isObject()) << path;
        ASSERT_EQ(one.members().size(), two.members().size()) << path;
        for (std::size_t i = 0; i < one.members().size(); ++i) {
            const auto &m = one.members()[i];
            ASSERT_EQ(two.members()[i].first, m.first) << path;
            checkDoubled(m.second, two.members()[i].second,
                         path + "/" + m.first);
        }
        return;
    }
    if (one.isArray()) {
        ASSERT_TRUE(two.isArray()) << path;
        ASSERT_EQ(one.size(), two.size()) << path;
        for (std::size_t i = 0; i < one.size(); ++i)
            checkDoubled(one.at(i), two.at(i),
                         path + "[" + std::to_string(i) + "]");
        return;
    }
    ASSERT_TRUE(one.isNumber()) << path;
    if (path == "/windowStart") {
        EXPECT_EQ(two.asNumber(), 0.0) << path << ": merge must not "
            "touch the target's window start";
        return;
    }
    if (path.rfind("/derived/", 0) == 0) {
        // sum/count ratios and histogram percentiles are invariant
        // under doubling both operands.
        EXPECT_DOUBLE_EQ(two.asNumber(), one.asNumber()) << path;
        return;
    }
    EXPECT_GT(one.asNumber(), 0.0)
        << path << ": field never set; a counter was added to Stats "
        "without extending MergesEveryField";
    if (path == "/traffic/maxLatency")
        EXPECT_EQ(two.asNumber(), one.asNumber()) << path;
    else
        EXPECT_EQ(two.asNumber(), 2.0 * one.asNumber()) << path;
}

} // namespace

TEST(StatsMerge, MergesEveryField)
{
    // Give every counter a distinct nonzero value; the JSON walk below
    // is the drift tripwire Stats.hh points at: a counter present in
    // toJson but missing here (or in mergeFrom) fails loudly.
    Stats proto;
    std::uint64_t v = 0;
    const auto next = [&v]() { return ++v; };
    proto.packetsCreated = next();
    proto.packetsInjected = next();
    proto.packetsEjected = next();
    proto.flitsCreated = next();
    proto.flitsInjected = next();
    proto.flitsEjected = next();
    proto.latencySum = next();
    proto.netLatencySum = next();
    proto.hopsSum = next();
    proto.maxLatency = next();
    proto.spinsOfEjected = next();
    proto.latencyHist = {1, 2, 3, 4};
    proto.probesSent = next();
    proto.probesForked = next();
    proto.probesDropped = next();
    proto.probesReturned = next();
    proto.probeDropPriority = next();
    proto.probeDropInactive = next();
    proto.probeDropNoDep = next();
    proto.probeDropHops = next();
    proto.probeDropStale = next();
    proto.movesSent = next();
    proto.movesDropped = next();
    proto.movesReturned = next();
    proto.probeMovesSent = next();
    proto.probeMovesDropped = next();
    proto.probeMovesReturned = next();
    proto.killMovesSent = next();
    proto.smContentionDrops = next();
    proto.spins = next();
    proto.falsePositiveSpins = next();
    proto.spinsCancelled = next();
    proto.packetsRotated = next();
    proto.bubbleRecoveries = next();
    proto.linksFailed = next();
    proto.routersFailed = next();
    proto.transientFaults = next();
    proto.packetsUnroutable = next();
    proto.packetsRerouted = next();
    proto.packetsLostToFaults = next();
    proto.flitsLostToFaults = next();
    proto.packetsCorrupted = next();
    proto.packetsDroppedAtNic = next();
    proto.crcFails = next();
    proto.linkRetries = next();
    proto.retransmits = next();
    proto.dupDrops = next();
    proto.recoveredPackets = next();
    proto.packetsAbandoned = next();
    proto.watchdogAlarms = next();
    proto.windowStart = next();

    Stats merged;
    merged.mergeFrom(proto);
    merged.mergeFrom(proto);
    checkDoubled(proto.toJson(), merged.toJson(), "");
}

// ---------------------------------------------------------------------
// Profiler
// ---------------------------------------------------------------------

TEST(PhaseProfiler, AccumulatesAndMerges)
{
    obs::PhaseProfiler a;
    a.add(obs::Phase::Routing, 100);
    a.add(obs::Phase::Routing, 50);
    a.add(obs::Phase::Wires, 25);
    a.onCycle();
    EXPECT_EQ(a.phaseNs(obs::Phase::Routing), 150u);
    EXPECT_EQ(a.totalNs(), 175u);
    EXPECT_EQ(a.cycles(), 1u);

    obs::PhaseProfiler b;
    b.add(obs::Phase::Wires, 75);
    b.onCycle();
    a.merge(b);
    EXPECT_EQ(a.phaseNs(obs::Phase::Wires), 100u);
    EXPECT_EQ(a.cycles(), 2u);

    const JsonValue j = a.toJson();
    EXPECT_EQ(j["schema"].asString(), "spin-profile/v1");
    EXPECT_EQ(j["cycles"].asU64(), 2u);
    EXPECT_EQ(j["phases"]["routing"]["ns"].asU64(), 150u);
}

TEST(PhaseProfiler, NetworkAttributesWallClockWhenEnabled)
{
    auto net = ringNetwork(6, DeadlockScheme::Spin);
    net->enableProfiler();
    injectRingDeadlock(*net);
    drain(*net, 5000);
    ASSERT_NE(net->profiler(), nullptr);
    EXPECT_GT(net->profiler()->cycles(), 0u);
    EXPECT_GT(net->profiler()->totalNs(), 0u);
    // The deadlock workload must exercise routing and switch alloc.
    EXPECT_GT(net->profiler()->phaseNs(obs::Phase::Routing), 0u);
    EXPECT_GT(net->profiler()->phaseNs(obs::Phase::SwitchAlloc), 0u);
}

// ---------------------------------------------------------------------
// Campaign capture
// ---------------------------------------------------------------------

namespace
{

exp::SweepSpec
metricsSpec()
{
    std::string err;
    JsonValue doc = JsonValue::parse(
        R"({"name": "metrics-unit", "topology": "mesh4x4",
            "presets": ["MinAdaptive_3VC_SPIN"],
            "patterns": ["uniform-random"],
            "rates": [0.1, 0.3], "seeds": [1, 2],
            "warmup": 50, "measure": 150, "latencyCap": 200.0})",
        &err);
    EXPECT_TRUE(err.empty()) << err;
    exp::SweepSpec s;
    EXPECT_TRUE(exp::SweepSpec::fromJson(doc, s, err)) << err;
    return s;
}

} // namespace

TEST(CampaignMetrics, CellCaptureTagsAndProfiles)
{
    const exp::SweepSpec spec = metricsSpec();
    const std::vector<exp::Cell> cells = spec.expand();
    ASSERT_FALSE(cells.empty());
    std::string terr;
    auto topo = exp::makeTopologyByName(spec.topology, terr);
    ASSERT_TRUE(topo) << terr;

    std::vector<std::string> lines;
    obs::PhaseProfiler prof;
    exp::CellCapture cap;
    cap.metricsInterval = 32;
    cap.metricsOut = &lines;
    cap.profileOut = &prof;
    exp::Campaign::runCell(spec, cells[0], topo, nullptr, cap);

    ASSERT_FALSE(lines.empty());
    for (const JsonValue &r : parseLines(lines))
        EXPECT_EQ(r["cell"].asString(), cells[0].id);
    EXPECT_GT(prof.cycles(), 0u);
}

TEST(CampaignMetrics, CombinedFileBitIdenticalAcrossWorkerCounts)
{
    const exp::SweepSpec spec = metricsSpec();
    const fs::path dir =
        fs::path(testing::TempDir()) / "spinnoc_metrics_test";
    fs::remove_all(dir);
    fs::create_directories(dir);

    const auto runWith = [&](int jobs, const char *name) {
        exp::CampaignOptions opt;
        opt.jobs = jobs;
        opt.metricsPath = (dir / name).string();
        opt.metricsInterval = 32;
        exp::Campaign c(spec, opt);
        c.run();
        std::ifstream in(opt.metricsPath);
        EXPECT_TRUE(in.good()) << opt.metricsPath;
        std::stringstream ss;
        ss << in.rdbuf();
        return ss.str();
    };
    const std::string serial = runWith(1, "j1.jsonl");
    const std::string pooled = runWith(2, "j2.jsonl");
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, pooled);

    // One stream per cell, each with its header, in expansion order.
    std::istringstream in(serial);
    std::string line;
    std::vector<std::string> headerCells;
    while (std::getline(in, line)) {
        const JsonValue r = JsonValue::parse(line);
        if (r["kind"].asString() == "header")
            headerCells.push_back(r["cell"].asString());
    }
    const std::vector<exp::Cell> cells = spec.expand();
    ASSERT_EQ(headerCells.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i)
        EXPECT_EQ(headerCells[i], cells[i].id);
    fs::remove_all(dir);
}
