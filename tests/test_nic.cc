/**
 * @file
 * Unit tests: NIC injection mechanics -- queueing, VC acquisition at
 * the local in-port, streaming, source-routing hook -- plus
 * measurement-window behavior of the Network facade.
 */

#include <gtest/gtest.h>

#include "network/NetworkBuilder.hh"
#include "topology/Mesh.hh"
#include "traffic/SyntheticInjector.hh"

namespace spin
{
namespace
{

std::unique_ptr<Network>
net44(int vcs = 1)
{
    auto topo = std::make_shared<Topology>(makeMesh(4, 4));
    NetworkConfig cfg;
    cfg.vnets = 1;
    cfg.vcsPerVnet = vcs;
    cfg.scheme = DeadlockScheme::None;
    return buildNetwork(topo, cfg, RoutingKind::XyDor);
}

TEST(NicTest, QueueGrowsAndDrains)
{
    auto net = net44();
    for (int i = 0; i < 5; ++i)
        net->offerPacket(net->makePacket(0, 15, 0, 5));
    EXPECT_EQ(net->nic(0).queueLength(), 5u);
    net->run(300);
    EXPECT_EQ(net->nic(0).queueLength(), 0u);
    EXPECT_EQ(net->stats().packetsEjected, 5u);
}

TEST(NicTest, OneFlitPerCycleInjection)
{
    // A 5-flit packet takes at least 5 cycles to leave the NIC: the
    // injected-flit counter may never outpace the clock.
    auto net = net44();
    net->offerPacket(net->makePacket(0, 1, 0, 5));
    for (int i = 0; i < 20; ++i) {
        const auto before = net->stats().flitsInjected;
        net->step();
        EXPECT_LE(net->stats().flitsInjected - before, 1u);
    }
    EXPECT_EQ(net->stats().flitsInjected, 5u);
}

TEST(NicTest, InjectionBlocksWhenVcsBusy)
{
    // One VC at the local in-port: a second packet cannot start
    // streaming until the first tail has vacated it.
    auto net = net44(1);
    net->offerPacket(net->makePacket(0, 15, 0, 5));
    net->offerPacket(net->makePacket(0, 14, 0, 5));
    net->run(4); // partway through the first packet
    EXPECT_GE(net->nic(0).queueLength(), 1u);
    net->run(400);
    EXPECT_EQ(net->stats().packetsEjected, 2u);
}

TEST(NicTest, SourceRouteRunsExactlyOnce)
{
    auto net = net44();
    auto pkt = net->makePacket(2, 13, 0, 1);
    EXPECT_FALSE(pkt->sourceRouted);
    net->offerPacket(pkt);
    net->run(60);
    EXPECT_TRUE(pkt->sourceRouted);
}

TEST(NetworkFacade, MeasurementWindowResets)
{
    auto net = net44();
    net->offerPacket(net->makePacket(0, 5, 0, 1));
    net->run(100);
    EXPECT_EQ(net->stats().packetsEjected, 1u);
    net->beginMeasurement();
    EXPECT_EQ(net->stats().packetsEjected, 0u);
    EXPECT_EQ(net->stats().windowStart, net->now());
    const LinkUsage u = net->linkUsage();
    EXPECT_EQ(u.flitCycles, 0u);
}

TEST(NetworkFacade, MakePacketValidates)
{
    auto net = net44();
    EXPECT_DEATH(net->makePacket(-1, 0, 0, 1), "bad src");
    EXPECT_DEATH(net->makePacket(0, 99, 0, 1), "bad dest");
    EXPECT_DEATH(net->makePacket(0, 1, 7, 1), "bad vnet");
    EXPECT_DEATH(net->makePacket(0, 1, 0, 9), "bad packet size");
}

TEST(NetworkFacade, PacketIdsAreUnique)
{
    auto net = net44();
    auto a = net->makePacket(0, 1, 0, 1);
    auto b = net->makePacket(0, 1, 0, 1);
    EXPECT_NE(a->id, b->id);
}

} // namespace
} // namespace spin
