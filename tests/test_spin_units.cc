/**
 * @file
 * Unit tests: SPIN building blocks -- special messages, rotating
 * priority, loop buffer, FSM state names -- and the per-router unit's
 * detection pointer behavior on a live network.
 */

#include <gtest/gtest.h>

#include "core/LoopBuffer.hh"
#include "core/RotatingPriority.hh"
#include "core/SpecialMsg.hh"
#include "core/SpinManager.hh"
#include "core/SpinUnit.hh"
#include "tests/SpinTestUtil.hh"

namespace spin
{
namespace
{

TEST(SpecialMsg, ClassPriorityOrder)
{
    // probe_move > move = kill_move > probe (paper Sec. IV-C1).
    EXPECT_GT(classPriority(SmType::ProbeMove),
              classPriority(SmType::Move));
    EXPECT_EQ(classPriority(SmType::Move), classPriority(SmType::KillMove));
    EXPECT_GT(classPriority(SmType::Move), classPriority(SmType::Probe));
}

TEST(SpecialMsg, ToStringNames)
{
    EXPECT_EQ(toString(SmType::Probe), "probe");
    EXPECT_EQ(toString(SmType::KillMove), "kill_move");
    SpecialMsg sm;
    sm.sender = 5;
    sm.path = {1, 2};
    EXPECT_NE(sm.toString().find("R5"), std::string::npos);
}

TEST(RotatingPriority, RotatesRoundRobin)
{
    RotatingPriority rp(4, 100);
    // Epoch 0.
    EXPECT_EQ(rp.priorityOf(0, 0), 0);
    EXPECT_EQ(rp.priorityOf(3, 0), 3);
    // Epoch 1: everyone shifts by one.
    EXPECT_EQ(rp.priorityOf(0, 100), 1);
    EXPECT_EQ(rp.priorityOf(3, 100), 0);
    EXPECT_EQ(rp.fullRotation(), 400u);
}

TEST(RotatingPriority, EveryRouterEventuallyHighest)
{
    RotatingPriority rp(5, 10);
    for (RouterId r = 0; r < 5; ++r) {
        bool was_top = false;
        for (Cycle t = 0; t < rp.fullRotation(); t += 10)
            was_top |= rp.priorityOf(r, t) == 4;
        EXPECT_TRUE(was_top) << "router " << r;
    }
}

TEST(RotatingPriority, DistinctWithinEpoch)
{
    RotatingPriority rp(8, 64);
    std::set<int> prios;
    for (RouterId r = 0; r < 8; ++r)
        prios.insert(rp.priorityOf(r, 1234));
    EXPECT_EQ(prios.size(), 8u);
}

TEST(LoopBuffer, LatchAndClear)
{
    LoopBuffer lb;
    EXPECT_FALSE(lb.valid());
    lb.latch({2, 0, 1}, 6);
    EXPECT_TRUE(lb.valid());
    EXPECT_EQ(lb.loopHops(), 3);
    EXPECT_EQ(lb.loopLatency(), 6u);
    lb.clear();
    EXPECT_FALSE(lb.valid());
    EXPECT_EQ(lb.loopHops(), 0);
}

TEST(LoopBuffer, TableIiSizing)
{
    // Paper Table II: 64-router mesh, radix 5 -> 3 bits/entry, 64
    // entries = 192 bits, under two 128-bit flits.
    EXPECT_EQ(LoopBuffer::sizeBits(5, 64), 192);
    // 1024-node dragonfly: radix 15 -> 4 bits, 256 routers.
    EXPECT_EQ(LoopBuffer::sizeBits(15, 256), 1024);
}

TEST(SpinFsm, StateNames)
{
    EXPECT_EQ(toString(SpinState::ForwardProgress), "S_Forward_Progress");
    EXPECT_EQ(toString(InitState::MoveWait), "MoveWait");
}

TEST(SpinFsm, PaperStateExhaustiveOverBothContexts)
{
    // Every (initiator ctx x victim ctx) pair against the Fig. 4a
    // seven-state table from the SpinFsm.hh file comment. The victim
    // context has three equivalence classes: inactive, active for our
    // own recovery (Case II: the initiator freezes its own VC after the
    // move returns), and active for another router's recovery (frozen
    // by someone else's move -- masks everything as S_Frozen).
    const RouterId self = 2;
    const RouterId other = 5;
    const std::pair<InitState, SpinState> unmasked[] = {
        {InitState::Off, SpinState::Off},
        {InitState::DetectDeadlock, SpinState::DetectDeadlock},
        {InitState::MoveWait, SpinState::Move},
        {InitState::FwdProgress, SpinState::ForwardProgress},
        {InitState::ProbeMoveWait, SpinState::ProbeMove},
        {InitState::KillMoveWait, SpinState::KillMove},
    };
    for (const auto &[init, want] : unmasked) {
        FsmSnapshot s;
        s.state = init;

        // Victim inactive: the initiator context is what the paper sees.
        s.victimActive = false;
        s.victimSource = kInvalidId;
        EXPECT_EQ(s.paperState(self), want) << toString(init);

        // Victim active for our own spin (Case II dual role, paper
        // Sec. IV-C2): still not S_Frozen -- the router reports its
        // initiator role (S_Forward_Progress while awaiting its own
        // committed spin).
        s.victimActive = true;
        s.victimSource = self;
        EXPECT_EQ(s.paperState(self), want) << toString(init) << " (own)";

        // Frozen on someone else's behalf: masks every initiator state.
        s.victimSource = other;
        EXPECT_EQ(s.paperState(self), SpinState::Frozen)
            << toString(init) << " (other)";
    }
}

TEST(SpinFsm, PaperStateMatchesLiveUnitViaRestore)
{
    // The snapshot-level mapping above must agree with the live unit's
    // paperState() for every restorable combination.
    auto net = ringNetwork(4, DeadlockScheme::Spin);
    SpinManager *mgr = net->spinManager();
    ASSERT_NE(mgr, nullptr);
    net->run(1); // arm nothing; just get a valid clock
    const Cycle now = net->now();
    SpinUnit &u = mgr->unit(1);

    const InitState inits[] = {
        InitState::Off,          InitState::DetectDeadlock,
        InitState::MoveWait,     InitState::FwdProgress,
        InitState::ProbeMoveWait, InitState::KillMoveWait,
    };
    const RouterId sources[] = {kInvalidId, 1, 3}; // inactive/own/other
    for (const InitState init : inits) {
        for (const RouterId src : sources) {
            FsmSnapshot s;
            s.state = init;
            s.victimActive = src != kInvalidId;
            s.victimSource = src;
            s.spinIn = s.victimActive ? 100 : FsmSnapshot::kNever;
            u.restore(s, now);
            EXPECT_EQ(u.paperState(), s.paperState(1))
                << toString(init) << " src " << src;
        }
    }
    // Leave the unit clean for any later test on this fixture.
    u.restore(FsmSnapshot{}, now);
}

TEST(SpinUnitPointer, OffUntilTrafficArrives)
{
    auto net = ringNetwork(4, DeadlockScheme::Spin);
    SpinManager *mgr = net->spinManager();
    ASSERT_NE(mgr, nullptr);
    EXPECT_EQ(mgr->unit(1).initState(), InitState::Off);
    EXPECT_EQ(mgr->unit(1).paperState(), SpinState::Off);

    // One packet 0 -> 2 passes through router 1.
    net->offerPacket(net->makePacket(0, 2, 0, 5));
    bool saw_dd = false;
    for (int i = 0; i < 40; ++i) {
        net->step();
        saw_dd |= mgr->unit(1).initState() == InitState::DetectDeadlock;
    }
    EXPECT_TRUE(saw_dd);
    // Traffic drained: back to Off.
    EXPECT_EQ(net->packetsInFlight(), 0u);
    EXPECT_EQ(mgr->unit(1).initState(), InitState::Off);
}

TEST(SpinUnitPointer, LocalPortsNeverPointed)
{
    auto net = ringNetwork(4, DeadlockScheme::Spin);
    SpinManager *mgr = net->spinManager();
    // Saturate the source queue at node 0; packets sit at the local
    // in-port of router 0 but the counter must not watch them.
    for (int k = 0; k < 4; ++k)
        net->offerPacket(net->makePacket(0, 1, 0, 5));
    for (int i = 0; i < 10; ++i)
        net->step();
    const SpinUnit &u = mgr->unit(0);
    if (u.initState() == InitState::DetectDeadlock) {
        EXPECT_NE(u.pointerInport(), RingInfo::kLocal);
    }
}

TEST(SpinUnitPointer, EjectingPacketsNotWatched)
{
    auto net = ringNetwork(4, DeadlockScheme::Spin, 1, 16);
    // Packet 0 -> 1: at router 1 it only wants ejection; probes must
    // never be sent for it even though it transits router 1's in-port.
    net->offerPacket(net->makePacket(0, 1, 0, 5));
    for (int i = 0; i < 80; ++i)
        net->step();
    EXPECT_EQ(net->stats().probesSent, 0u);
}

TEST(SpinManager, NoSpuriousActivityOnIdleNetwork)
{
    auto net = ringNetwork(6, DeadlockScheme::Spin, 1, 8);
    net->run(500);
    const Stats &st = net->stats();
    EXPECT_EQ(st.probesSent, 0u);
    EXPECT_EQ(st.spins, 0u);
}

TEST(SpinManager, CongestionProbesDontSpinWithoutCycle)
{
    // Many-to-one hotspot on a ring segment: heavy congestion, but the
    // dependency graph is a chain (no cycle), so probes may fire and
    // must all die out without a single spin.
    auto net = ringNetwork(8, DeadlockScheme::Spin, 1, 8);
    for (int wave = 0; wave < 6; ++wave) {
        for (NodeId s = 0; s < 4; ++s)
            net->offerPacket(net->makePacket(s, 5, 0, 5));
    }
    net->run(1200);
    drain(*net, 4000);
    EXPECT_EQ(net->packetsInFlight(), 0u);
    EXPECT_GT(net->stats().probesSent, 0u);
    EXPECT_EQ(net->stats().spins, 0u);
    EXPECT_EQ(net->stats().movesSent, 0u);
}

} // namespace
} // namespace spin
