/**
 * @file
 * Unit tests: the analytical area/power model, validated against the
 * relative numbers the paper reports (Sec. VI-C/D and Fig. 10).
 */

#include <gtest/gtest.h>

#include "power/AreaPowerModel.hh"

namespace spin
{
namespace
{

RouterDesign
meshRouter(int vcs_per_vnet, SchemeExtras extras = SchemeExtras::None)
{
    RouterDesign d;
    d.radix = 5;
    d.vnets = 3;
    d.vcsPerVnet = vcs_per_vnet;
    d.vcDepthFlits = 5;
    d.flitBits = 128;
    d.numRouters = 64;
    d.extras = extras;
    return d;
}

RouterDesign
dflyRouter(int vcs_per_vnet, SchemeExtras extras = SchemeExtras::None)
{
    RouterDesign d;
    d.radix = 15; // 7 local + 4 global + 4 terminals
    d.vnets = 3;
    d.vcsPerVnet = vcs_per_vnet;
    d.vcDepthFlits = 5;
    d.flitBits = 128;
    d.numRouters = 256;
    d.extras = extras;
    return d;
}

TEST(AreaPower, MonotoneInVcs)
{
    const auto a1 = AreaPowerModel::evaluate(meshRouter(1));
    const auto a2 = AreaPowerModel::evaluate(meshRouter(2));
    const auto a3 = AreaPowerModel::evaluate(meshRouter(3));
    EXPECT_LT(a1.areaUm2, a2.areaUm2);
    EXPECT_LT(a2.areaUm2, a3.areaUm2);
    EXPECT_LT(a1.powerMw, a3.powerMw);
}

TEST(AreaPower, MeshOneVcVsThreeVcMatchesPaper)
{
    // Paper Sec. VI-D: the 1-VC mesh router is ~52% lower area and
    // ~50% lower power than the 3-VC router. Accept the claim within
    // a band (this is a calibrated analytical model).
    const auto a1 = AreaPowerModel::evaluate(meshRouter(1));
    const auto a3 = AreaPowerModel::evaluate(meshRouter(3));
    const double area_red = 1.0 - a1.areaUm2 / a3.areaUm2;
    const double power_red = 1.0 - a1.powerMw / a3.powerMw;
    EXPECT_NEAR(area_red, 0.52, 0.08);
    EXPECT_NEAR(power_red, 0.50, 0.10);
}

TEST(AreaPower, DragonflyOneVcVsThreeVcMatchesPaper)
{
    // Paper Sec. VI-C: ~53% lower area, ~55% lower power.
    const auto a1 = AreaPowerModel::evaluate(dflyRouter(1));
    const auto a3 = AreaPowerModel::evaluate(dflyRouter(3));
    const double area_red = 1.0 - a1.areaUm2 / a3.areaUm2;
    const double power_red = 1.0 - a1.powerMw / a3.powerMw;
    EXPECT_NEAR(area_red, 0.53, 0.10);
    EXPECT_NEAR(power_red, 0.55, 0.12);
}

TEST(AreaPower, SpinOverheadSmall)
{
    // Fig. 10: SPIN adds ~4% over the plain west-first router.
    const auto base = AreaPowerModel::evaluate(meshRouter(1));
    const auto with_spin =
        AreaPowerModel::evaluate(meshRouter(1, SchemeExtras::Spin));
    const double overhead = with_spin.areaUm2 / base.areaUm2 - 1.0;
    EXPECT_GT(overhead, 0.005);
    EXPECT_LT(overhead, 0.08);
}

TEST(AreaPower, OverheadOrderingMatchesFig10)
{
    // Fig. 10 ordering: west-first < SPIN < static bubble << escape-VC.
    const auto base = AreaPowerModel::evaluate(meshRouter(1));
    const auto spin =
        AreaPowerModel::evaluate(meshRouter(1, SchemeExtras::Spin));
    const auto bubble =
        AreaPowerModel::evaluate(meshRouter(1,
                                            SchemeExtras::StaticBubble));
    const auto escape =
        AreaPowerModel::evaluate(meshRouter(1, SchemeExtras::EscapeVc));
    EXPECT_LT(base.areaUm2, spin.areaUm2);
    EXPECT_LT(spin.areaUm2, bubble.areaUm2);
    EXPECT_LT(bubble.areaUm2, escape.areaUm2);
}

TEST(AreaPower, EscapeVcAddsOneVcPerVnet)
{
    const RouterDesign d = meshRouter(2, SchemeExtras::EscapeVc);
    EXPECT_EQ(AreaPowerModel::effectiveVcs(d), 3 * 2 + 3);
}

TEST(AreaPower, LoopBufferScalesWithNetworkSize)
{
    RouterDesign small = meshRouter(1, SchemeExtras::Spin);
    RouterDesign big = small;
    big.numRouters = 1024;
    EXPECT_LT(AreaPowerModel::evaluate(small).areaUm2,
              AreaPowerModel::evaluate(big).areaUm2);
}

TEST(AreaPower, BreakdownMentionsDimensions)
{
    const std::string s = AreaPowerModel::breakdown(meshRouter(3));
    EXPECT_NE(s.find("radix=5"), std::string::npos);
    EXPECT_NE(s.find("128b"), std::string::npos);
}

TEST(AreaPower, RejectsDegenerateDesign)
{
    RouterDesign d;
    d.radix = 1;
    EXPECT_DEATH(AreaPowerModel::evaluate(d), "bad router design");
}

} // namespace
} // namespace spin
