/**
 * @file
 * Unit tests: baseline routing algorithms -- path legality (turn
 * models), minimality, Duato escape discipline, UGAL VC ordering --
 * plus end-to-end delivery checks for each.
 */

#include <gtest/gtest.h>

#include "network/NetworkBuilder.hh"
#include "routing/EscapeVc.hh"
#include "routing/Ugal.hh"
#include "routing/WestFirst.hh"
#include "topology/Dragonfly.hh"
#include "topology/Mesh.hh"
#include "traffic/SyntheticInjector.hh"

namespace spin
{
namespace
{

NetworkConfig
cfgOf(int vnets, int vcs, DeadlockScheme scheme = DeadlockScheme::None)
{
    NetworkConfig cfg;
    cfg.vnets = vnets;
    cfg.vcsPerVnet = vcs;
    cfg.vcDepth = 5;
    cfg.maxPacketSize = 5;
    cfg.scheme = scheme;
    return cfg;
}

TEST(WestFirstHelper, XyOrder)
{
    MeshInfo m;
    m.sizeX = 4;
    m.sizeY = 4;
    // (1,1)=5 -> (0,2)=8: west first.
    EXPECT_EQ(westFirstNextPort(m, 5, 8), MeshInfo::kWest);
    // (1,1)=5 -> (3,1)=7: east.
    EXPECT_EQ(westFirstNextPort(m, 5, 7), MeshInfo::kEast);
    // (1,1)=5 -> (1,3)=13: north.
    EXPECT_EQ(westFirstNextPort(m, 5, 13), MeshInfo::kNorth);
    // (1,1)=5 -> (1,0)=1: south.
    EXPECT_EQ(westFirstNextPort(m, 5, 1), MeshInfo::kSouth);
}

TEST(WestFirstRouting, NeverTurnsBackWest)
{
    // Property: along any delivered path, once a packet moves in a
    // non-west direction it never goes west again. We verify by
    // construction: candidates() only offers kWest when dx < 0, and
    // going east is the only way to make dx negative... which cannot
    // happen on a minimal candidate set. Exercise many pairs.
    auto topo = std::make_shared<Topology>(makeMesh(6, 6));
    auto net = buildNetwork(topo, cfgOf(1, 1), RoutingKind::WestFirst);
    WestFirst &wf = static_cast<WestFirst &>(net->routing());
    std::vector<PortId> cands;
    const MeshInfo &m = *topo->mesh;
    for (RouterId r = 0; r < 36; ++r) {
        for (RouterId d = 0; d < 36; ++d) {
            if (r == d)
                continue;
            Packet pkt;
            pkt.destRouter = d;
            wf.candidates(pkt, net->router(r), d, cands);
            const int dx = m.xOf(d) - m.xOf(r);
            if (dx < 0) {
                ASSERT_EQ(cands.size(), 1u);
                EXPECT_EQ(cands[0], MeshInfo::kWest);
            } else {
                for (const PortId p : cands)
                    EXPECT_NE(p, MeshInfo::kWest);
            }
        }
    }
}

TEST(WestFirstRouting, DeliversUnderLoadWithoutRecovery)
{
    auto topo = std::make_shared<Topology>(makeMesh(4, 4));
    auto net = buildNetwork(topo, cfgOf(1, 1), RoutingKind::WestFirst);
    InjectorConfig icfg;
    icfg.injectionRate = 0.3;
    SyntheticInjector inj(*net, Pattern::Transpose, icfg);
    for (int i = 0; i < 4000; ++i) {
        inj.tick();
        net->step();
    }
    for (int i = 0; i < 10000 && net->packetsInFlight(); ++i)
        net->step();
    EXPECT_EQ(net->packetsInFlight(), 0u); // deadlock-free by avoidance
}

TEST(WestFirstRouting, RequiresMesh)
{
    auto topo = std::make_shared<Topology>(makeDragonfly(2, 4, 2, 0));
    EXPECT_THROW(buildNetwork(topo, cfgOf(1, 1), RoutingKind::WestFirst),
                 FatalError);
}

TEST(XyRouting, DeterministicPathLength)
{
    auto topo = std::make_shared<Topology>(makeMesh(4, 4));
    auto net = buildNetwork(topo, cfgOf(1, 1), RoutingKind::XyDor);
    auto pkt = net->makePacket(0, 15, 0, 1);
    net->offerPacket(pkt);
    net->run(100);
    EXPECT_EQ(pkt->hops, 6);
}

TEST(XyRouting, HeavyLoadDeliversOnMesh)
{
    auto topo = std::make_shared<Topology>(makeMesh(4, 4));
    auto net = buildNetwork(topo, cfgOf(1, 2), RoutingKind::XyDor);
    InjectorConfig icfg;
    icfg.injectionRate = 0.4;
    SyntheticInjector inj(*net, Pattern::UniformRandom, icfg);
    for (int i = 0; i < 4000; ++i) {
        inj.tick();
        net->step();
    }
    for (int i = 0; i < 10000 && net->packetsInFlight(); ++i)
        net->step();
    EXPECT_EQ(net->packetsInFlight(), 0u);
}

TEST(EscapeVcRouting, NeedsTwoVcs)
{
    auto topo = std::make_shared<Topology>(makeMesh(4, 4));
    EXPECT_THROW(buildNetwork(topo, cfgOf(1, 1), RoutingKind::EscapeVc),
                 FatalError);
}

TEST(EscapeVcRouting, SaturatedAdaptiveMeshDeliversWithoutRecovery)
{
    // Duato avoidance: fully adaptive in regular VCs, west-first in the
    // escape VC; must survive saturation with scheme == None.
    auto topo = std::make_shared<Topology>(makeMesh(4, 4));
    auto net = buildNetwork(topo, cfgOf(1, 3), RoutingKind::EscapeVc);
    InjectorConfig icfg;
    icfg.injectionRate = 0.6;
    SyntheticInjector inj(*net, Pattern::Transpose, icfg);
    for (int i = 0; i < 5000; ++i) {
        inj.tick();
        net->step();
    }
    for (int i = 0; i < 20000 && net->packetsInFlight(); ++i)
        net->step();
    EXPECT_EQ(net->packetsInFlight(), 0u);
}

TEST(EscapeVcRouting, EscapePacketsStayOnEscape)
{
    auto topo = std::make_shared<Topology>(makeMesh(4, 4));
    auto net = buildNetwork(topo, cfgOf(1, 2), RoutingKind::EscapeVc);
    EscapeVc &evc = static_cast<EscapeVc &>(net->routing());
    Packet pkt;
    pkt.vnet = 0;
    pkt.destRouter = 15;
    pkt.onEscape = true;
    std::vector<VcId> vcs;
    evc.allowedVcs(pkt, net->router(5), MeshInfo::kEast, vcs);
    ASSERT_EQ(vcs.size(), 1u);
    EXPECT_EQ(vcs[0], 0); // the escape VC of vnet 0
    std::vector<PortId> cands;
    evc.candidates(pkt, net->router(5), 15, cands);
    ASSERT_EQ(cands.size(), 1u);
    EXPECT_EQ(cands[0], westFirstNextPort(*topo->mesh, 5, 15));
}

TEST(EscapeVcRouting, RegularPacketsAvoidEscapeOffWestFirstRoute)
{
    auto topo = std::make_shared<Topology>(makeMesh(4, 4));
    auto net = buildNetwork(topo, cfgOf(1, 3), RoutingKind::EscapeVc);
    EscapeVc &evc = static_cast<EscapeVc &>(net->routing());
    Packet pkt;
    pkt.vnet = 0;
    pkt.destRouter = 15; // from 0: east/north both minimal; WF pick = E
    std::vector<VcId> vcs;
    // North is minimal but not the west-first hop: regular VCs only.
    evc.allowedVcs(pkt, net->router(0), MeshInfo::kNorth, vcs);
    EXPECT_EQ(vcs.size(), 2u);
    for (const VcId v : vcs)
        EXPECT_NE(v, 0);
    // East is the west-first hop: escape VC allowed, listed last.
    evc.allowedVcs(pkt, net->router(0), MeshInfo::kEast, vcs);
    ASSERT_EQ(vcs.size(), 3u);
    EXPECT_EQ(vcs.back(), 0);
}

TEST(UgalRouting, RequiresDragonfly)
{
    auto topo = std::make_shared<Topology>(makeMesh(4, 4));
    EXPECT_THROW(buildNetwork(topo, cfgOf(1, 3), RoutingKind::UgalDally),
                 FatalError);
}

TEST(UgalRouting, DallyNeedsThreeVcs)
{
    auto topo = std::make_shared<Topology>(makeDragonfly(2, 4, 2, 0));
    EXPECT_THROW(buildNetwork(topo, cfgOf(1, 2), RoutingKind::UgalDally),
                 FatalError);
    EXPECT_NO_THROW(buildNetwork(topo, cfgOf(1, 3),
                                 RoutingKind::UgalDally));
}

TEST(UgalRouting, VcClassFollowsGlobalHops)
{
    auto topo = std::make_shared<Topology>(makeDragonfly(2, 4, 2, 0));
    auto net = buildNetwork(topo, cfgOf(1, 3), RoutingKind::UgalDally);
    Ugal &ugal = static_cast<Ugal &>(net->routing());
    Packet pkt;
    pkt.vnet = 0;
    std::vector<VcId> vcs;
    for (int gh = 0; gh <= 2; ++gh) {
        pkt.globalHops = gh;
        ugal.allowedVcs(pkt, net->router(0), 0, vcs);
        ASSERT_EQ(vcs.size(), 1u);
        EXPECT_EQ(vcs[0], gh);
    }
    // Injection starts in class 0.
    ugal.injectionVcs(pkt, net->router(0), vcs);
    ASSERT_EQ(vcs.size(), 1u);
    EXPECT_EQ(vcs[0], 0);
}

TEST(UgalRouting, SpinFlavorUnrestricted)
{
    auto topo = std::make_shared<Topology>(makeDragonfly(2, 4, 2, 0));
    auto net = buildNetwork(topo, cfgOf(1, 3), RoutingKind::UgalSpin);
    Ugal &ugal = static_cast<Ugal &>(net->routing());
    Packet pkt;
    pkt.vnet = 0;
    pkt.globalHops = 1;
    std::vector<VcId> vcs;
    ugal.allowedVcs(pkt, net->router(0), 0, vcs);
    EXPECT_EQ(vcs.size(), 3u);
}

TEST(UgalRouting, DallyAvoidanceSurvivesSaturation)
{
    auto topo = std::make_shared<Topology>(makeDragonfly(2, 4, 2, 0));
    auto net = buildNetwork(topo, cfgOf(1, 3), RoutingKind::UgalDally);
    InjectorConfig icfg;
    icfg.injectionRate = 0.4;
    SyntheticInjector inj(*net, Pattern::BitComplement, icfg);
    for (int i = 0; i < 4000; ++i) {
        inj.tick();
        net->step();
    }
    for (int i = 0; i < 30000 && net->packetsInFlight(); ++i)
        net->step();
    EXPECT_EQ(net->packetsInFlight(), 0u);
}

TEST(UgalRouting, MisroutesUnderAdversarialLoadOnly)
{
    // At low load UGAL goes minimal; tornado at high load triggers
    // Valiant detours (misroutes > 0 on some packets).
    auto topo = std::make_shared<Topology>(makeDragonfly(2, 4, 2, 0));
    auto net = buildNetwork(topo, cfgOf(1, 3), RoutingKind::UgalDally);
    InjectorConfig icfg;
    icfg.injectionRate = 0.5;
    SyntheticInjector inj(*net, Pattern::Tornado, icfg);
    std::uint64_t misrouted = 0;
    net->setEjectListener([&](const PacketPtr &p) {
        misrouted += p->misroutes;
    });
    for (int i = 0; i < 4000; ++i) {
        inj.tick();
        net->step();
    }
    EXPECT_GT(misrouted, 0u);
}

TEST(MinimalAdaptiveRouting, AlwaysMinimalHops)
{
    auto topo = std::make_shared<Topology>(makeMesh(5, 5));
    NetworkConfig cfg = cfgOf(1, 2, DeadlockScheme::Spin);
    auto net = buildNetwork(topo, cfg, RoutingKind::MinimalAdaptive);
    std::vector<PacketPtr> pkts;
    for (NodeId s = 0; s < 25; ++s) {
        auto p = net->makePacket(s, (s * 7 + 3) % 25, 0, 1);
        pkts.push_back(p);
        net->offerPacket(p);
    }
    net->run(500);
    for (const auto &p : pkts) {
        if (p->spins == 0 && p->src != p->dest) {
            EXPECT_EQ(p->hops,
                      topo->distance(topo->routerOfNode(p->src),
                                     topo->routerOfNode(p->dest)))
                << p->toString();
        }
    }
}

} // namespace
} // namespace spin
