/**
 * @file
 * Property tests built on the whole-network auditor: after arbitrary
 * stress (including heavy SPIN activity), every redundant piece of
 * distributed state must still agree -- credits, ownership, freeze
 * bookkeeping.
 */

#include <gtest/gtest.h>

#include "deadlock/Invariants.hh"
#include "tests/SpinTestUtil.hh"
#include "topology/Mesh.hh"
#include "topology/Torus.hh"
#include "traffic/SyntheticInjector.hh"

namespace spin
{
namespace
{

TEST(Invariants, CleanAtReset)
{
    auto net = ringNetwork(4, DeadlockScheme::Spin);
    const AuditReport rep = auditNetwork(*net);
    EXPECT_TRUE(rep.clean()) << rep.toString();
}

TEST(Invariants, CleanMidDeadlockAndAfterRecovery)
{
    auto net = ringNetwork(6, DeadlockScheme::Spin, 1, 32);
    for (NodeId i = 0; i < 6; ++i)
        net->offerPacket(net->makePacket(i, (i + 2) % 6, 0, 5));
    // Audit every cycle straight through detection, freeze, spin.
    for (int i = 0; i < 400; ++i) {
        net->step();
        const AuditReport rep = auditNetwork(*net);
        ASSERT_TRUE(rep.clean())
            << "cycle " << net->now() << ": " << rep.toString();
    }
    drain(*net, 2000);
    EXPECT_EQ(net->packetsInFlight(), 0u);
    EXPECT_TRUE(auditNetwork(*net).clean());
}

class InvariantStress : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(InvariantStress, SaturatedTorusStaysConsistent)
{
    const std::uint64_t seed = GetParam();
    auto topo = std::make_shared<Topology>(makeTorus(4, 4));
    NetworkConfig cfg;
    cfg.vnets = 1;
    cfg.vcsPerVnet = 2;
    cfg.vcDepth = 5;
    cfg.maxPacketSize = 5;
    cfg.scheme = DeadlockScheme::Spin;
    cfg.tDd = 48;
    cfg.seed = seed;
    auto net = buildNetwork(topo, cfg, RoutingKind::MinimalAdaptive);
    InjectorConfig icfg;
    icfg.injectionRate = 0.45;
    icfg.seed = seed;
    SyntheticInjector inj(*net, Pattern::Tornado, icfg);
    for (int i = 0; i < 4000; ++i) {
        inj.tick();
        net->step();
        if (i % 97 == 0) {
            const AuditReport rep = auditNetwork(*net);
            ASSERT_TRUE(rep.clean())
                << "cycle " << net->now() << ": " << rep.toString();
        }
    }
    drain(*net, 30000);
    EXPECT_EQ(net->packetsInFlight(), 0u);
    EXPECT_TRUE(auditNetwork(*net).clean());
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvariantStress,
                         ::testing::Values(301, 302, 303));

TEST(Invariants, StaticBubbleRunsStayConsistent)
{
    auto topo = std::make_shared<Topology>(makeMesh(4, 4));
    NetworkConfig cfg;
    cfg.vnets = 1;
    cfg.vcsPerVnet = 2;
    cfg.scheme = DeadlockScheme::StaticBubble;
    cfg.bubbleTimeout = 48;
    auto net = buildNetwork(topo, cfg, RoutingKind::MinimalAdaptive);
    InjectorConfig icfg;
    icfg.injectionRate = 0.5;
    SyntheticInjector inj(*net, Pattern::Transpose, icfg);
    for (int i = 0; i < 3000; ++i) {
        inj.tick();
        net->step();
        if (i % 113 == 0) {
            ASSERT_TRUE(auditNetwork(*net).clean());
        }
    }
}

TEST(Invariants, ReportFormatsViolations)
{
    AuditReport rep;
    rep.violations.push_back("x");
    EXPECT_FALSE(rep.clean());
    EXPECT_NE(rep.toString().find("1 violation"), std::string::npos);
}

} // namespace
} // namespace spin
