/**
 * @file
 * Unit tests: router building blocks in isolation -- VirtualChannel
 * buffer/state invariants, OutputUnit allocation and credit flow,
 * InputUnit activity scans.
 */

#include <gtest/gtest.h>

#include "common/Logging.hh"
#include "router/InputUnit.hh"
#include "router/OutputUnit.hh"
#include "router/VirtualChannel.hh"

namespace spin
{
namespace
{

PacketPtr
mkPkt(int size, PacketId id = 1)
{
    auto p = std::make_shared<Packet>();
    p->id = id;
    p->sizeFlits = size;
    return p;
}

TEST(VirtualChannelTest, ActivationLifecycle)
{
    VirtualChannel vc;
    EXPECT_FALSE(vc.active());
    auto pkt = mkPkt(2);
    const auto flits = makeFlits(pkt);
    vc.pushFlit(flits[0], 10);
    EXPECT_TRUE(vc.active());
    EXPECT_EQ(vc.activeSince(), 10u);
    EXPECT_EQ(vc.owner(), pkt);
    vc.pushFlit(flits[1], 11);
    EXPECT_TRUE(vc.packetComplete());
    EXPECT_EQ(vc.popFlit().type, FlitType::Head);
    EXPECT_TRUE(vc.active()); // tail still inside
    EXPECT_EQ(vc.popFlit().type, FlitType::Tail);
    EXPECT_FALSE(vc.active()); // tail pop releases
    EXPECT_EQ(vc.owner(), nullptr);
}

TEST(VirtualChannelTest, TailPopClearsRoutingState)
{
    VirtualChannel vc;
    auto pkt = mkPkt(1);
    vc.pushFlit(makeFlits(pkt)[0], 0);
    vc.routeValid = true;
    vc.request = 2;
    vc.grantedVc = 1;
    vc.frozen = true;
    vc.frozenOutport = 2;
    vc.popFlit();
    EXPECT_FALSE(vc.routeValid);
    EXPECT_EQ(vc.request, kInvalidId);
    EXPECT_EQ(vc.grantedVc, kInvalidId);
    EXPECT_FALSE(vc.frozen);
}

TEST(VirtualChannelTest, CutThroughAllowsEmptyActive)
{
    VirtualChannel vc;
    auto pkt = mkPkt(3);
    const auto flits = makeFlits(pkt);
    vc.pushFlit(flits[0], 0);
    vc.popFlit(); // head forwarded before body arrives
    EXPECT_TRUE(vc.active());
    EXPECT_TRUE(vc.empty());
    EXPECT_FALSE(vc.packetComplete());
    vc.pushFlit(flits[1], 2); // body arrives later: same owner, legal
    vc.pushFlit(flits[2], 3);
    vc.popFlit();
    vc.popFlit();
    EXPECT_FALSE(vc.active());
}

TEST(VirtualChannelTest, RejectsInterleavedPackets)
{
    VirtualChannel vc;
    auto p1 = mkPkt(2, 1);
    auto p2 = mkPkt(1, 2);
    vc.pushFlit(makeFlits(p1)[0], 0);
    EXPECT_DEATH(vc.pushFlit(makeFlits(p2)[0], 1), "VCT violation");
}

TEST(VirtualChannelTest, RejectsBodyIntoIdleVc)
{
    VirtualChannel vc;
    auto pkt = mkPkt(3);
    EXPECT_DEATH(vc.pushFlit(makeFlits(pkt)[1], 0), "must be a head");
}

TEST(VirtualChannelTest, ProgressTimestamps)
{
    VirtualChannel vc;
    auto pkt = mkPkt(2);
    const auto flits = makeFlits(pkt);
    vc.pushFlit(flits[0], 5);
    EXPECT_EQ(vc.lastProgress(), 5u);
    vc.noteProgress(9);
    EXPECT_EQ(vc.lastProgress(), 9u);
}

TEST(OutputUnitTest, AllocateOnlyIdle)
{
    OutputUnit ou(0, false, 3, 5);
    const std::vector<VcId> all{0, 1, 2};
    EXPECT_EQ(ou.allocate(all, 11, 0), 0);
    EXPECT_EQ(ou.allocate(all, 12, 0), 1);
    EXPECT_EQ(ou.allocate(all, 13, 0), 2);
    EXPECT_EQ(ou.allocate(all, 14, 0), kInvalidId);
    EXPECT_EQ(ou.ownerOf(1), 12u);
}

TEST(OutputUnitTest, CreditRoundTripFreesVc)
{
    OutputUnit ou(0, false, 1, 2);
    EXPECT_EQ(ou.allocate({0}, 7, 0), 0);
    ou.consumeCredit(0);
    ou.consumeCredit(0);
    EXPECT_EQ(ou.credits(0), 0);
    ou.onCredit(0, false, 5);
    EXPECT_FALSE(ou.isIdle(0));
    ou.onCredit(0, true, 6); // tail credit: free again
    EXPECT_TRUE(ou.isIdle(0));
    EXPECT_EQ(ou.credits(0), 2);
    EXPECT_EQ(ou.ownerOf(0), 0u);
}

TEST(OutputUnitTest, NicPortsAreBottomless)
{
    OutputUnit ou(4, true, 3, 5);
    EXPECT_TRUE(ou.isIdle(0));
    EXPECT_GT(ou.credits(2), 1000000);
    EXPECT_TRUE(ou.hasIdleVcIn(0, 2));
    ou.consumeCredit(0); // no-op
    EXPECT_GT(ou.credits(0), 1000000);
    EXPECT_EQ(ou.occupancy(), 0);
}

TEST(OutputUnitTest, OccupancyCountsBufferedFlits)
{
    OutputUnit ou(0, false, 2, 5);
    EXPECT_EQ(ou.occupancy(), 0);
    ou.allocate({0}, 1, 0);
    ou.consumeCredit(0);
    ou.consumeCredit(0);
    ou.allocate({1}, 2, 0);
    ou.consumeCredit(1);
    EXPECT_EQ(ou.occupancy(), 3);
    ou.onCredit(0, false, 1);
    EXPECT_EQ(ou.occupancy(), 2);
}

TEST(OutputUnitTest, MinActiveTimeSemantics)
{
    OutputUnit ou(0, false, 2, 5);
    EXPECT_EQ(ou.minActiveTime(0, 1, 100), 0u); // idle VC exists
    ou.allocate({0}, 1, 40);
    EXPECT_EQ(ou.minActiveTime(0, 0, 100), 60u);
    EXPECT_EQ(ou.minActiveTime(0, 1, 100), 0u); // vc1 still idle
    ou.allocate({1}, 2, 90);
    EXPECT_EQ(ou.minActiveTime(0, 1, 100), 10u); // min of 60 and 10
}

TEST(OutputUnitTest, ForceAllocateSeizesBusyVc)
{
    OutputUnit ou(0, false, 1, 5);
    ou.allocate({0}, 1, 0);
    ou.forceAllocate(0, 42, 7);
    EXPECT_EQ(ou.ownerOf(0), 42u);
    EXPECT_FALSE(ou.isIdle(0));
    EXPECT_EQ(ou.activeSince(0), 7u);
}

TEST(InputUnitTest, ActivityScans)
{
    InputUnit iu(1, false, 4);
    EXPECT_FALSE(iu.allVcsActive());
    auto pkt = mkPkt(1);
    for (VcId v = 0; v < 4; ++v)
        iu.vc(v).pushFlit(makeFlits(mkPkt(1, v + 1))[0], 0);
    EXPECT_TRUE(iu.allVcsActive());
    iu.vc(2).popFlit();
    EXPECT_FALSE(iu.allVcsActive());
    EXPECT_TRUE(iu.allVcsActive(0, 1));  // vnet 0 range still active
    EXPECT_FALSE(iu.allVcsActive(2, 3)); // vnet 1 range has a free VC
}

TEST(InputUnitTest, FromNicFlag)
{
    InputUnit local(4, true, 2);
    InputUnit transit(0, false, 2);
    EXPECT_TRUE(local.fromNic());
    EXPECT_FALSE(transit.fromNic());
}

} // namespace
} // namespace spin
