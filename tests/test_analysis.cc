/**
 * @file
 * Static channel-dependency-graph analysis: graph algorithms, verdicts
 * for every shipped scheme (the paper's Table 1 classification derived
 * without simulation), machine-checked witness cycles, contract
 * cross-checks, and cross-validation that a static witness cycle can be
 * driven into a real deadlock the oracle detector then attributes to
 * exactly those channels.
 */

#include <algorithm>
#include <set>
#include <tuple>

#include <gtest/gtest.h>

#include "SpinTestUtil.hh"
#include "analysis/CdgAnalyzer.hh"
#include "analysis/Digraph.hh"
#include "common/Logging.hh"
#include "deadlock/OracleDetector.hh"
#include "network/NetworkBuilder.hh"
#include "topology/Dragonfly.hh"
#include "topology/Mesh.hh"
#include "topology/Ring.hh"
#include "topology/Torus.hh"

namespace spin
{
namespace
{

using analysis::AnalysisReport;
using analysis::CdgAnalyzer;
using analysis::Verdict;

std::unique_ptr<Network>
lintNet(Topology topo, RoutingKind kind, DeadlockScheme scheme, int vcs)
{
    NetworkConfig cfg;
    cfg.vnets = 1;
    cfg.vcsPerVnet = vcs;
    cfg.scheme = scheme;
    return buildNetwork(std::make_shared<Topology>(std::move(topo)), cfg,
                        kind);
}

AnalysisReport
analyzeOf(Network &net)
{
    return CdgAnalyzer(net).analyze(0);
}

// ---------------------------------------------------------------------
// Digraph algorithms
// ---------------------------------------------------------------------

TEST(Digraph, TarjanSeparatesCyclicFromAcyclic)
{
    analysis::Digraph g(6);
    g.addEdge(0, 1);
    g.addEdge(1, 2);
    g.addEdge(2, 0); // {0,1,2} cyclic
    g.addEdge(2, 3);
    g.addEdge(3, 4); // tail
    g.addEdge(5, 5); // self-loop counts as a nontrivial SCC
    const auto sccs = g.nontrivialSccs();
    ASSERT_EQ(sccs.size(), 2u);
    std::set<int> members;
    for (const auto &scc : sccs)
        members.insert(scc.begin(), scc.end());
    EXPECT_EQ(members, (std::set<int>{0, 1, 2, 5}));
    EXPECT_FALSE(g.acyclic());

    analysis::Digraph dag(4);
    dag.addEdge(0, 1);
    dag.addEdge(0, 2);
    dag.addEdge(1, 3);
    dag.addEdge(2, 3);
    EXPECT_TRUE(dag.acyclic());
    EXPECT_TRUE(dag.nontrivialSccs().empty());
}

TEST(Digraph, ShortestCycleAndJohnsonAgree)
{
    // Two nested cycles sharing node 0: 0-1-0 and 0-1-2-3-0.
    analysis::Digraph g(4);
    g.addEdge(0, 1);
    g.addEdge(1, 0);
    g.addEdge(1, 2);
    g.addEdge(2, 3);
    g.addEdge(3, 0);
    const auto sccs = g.nontrivialSccs();
    ASSERT_EQ(sccs.size(), 1u);
    const auto shortest = g.shortestCycleIn(sccs[0]);
    EXPECT_EQ(shortest.size(), 2u);
    const auto cycles = g.elementaryCycles(16, 64);
    EXPECT_EQ(cycles.size(), 2u);
    std::set<std::size_t> lengths;
    for (const auto &c : cycles)
        lengths.insert(c.size());
    EXPECT_EQ(lengths, (std::set<std::size_t>{2u, 4u}));
}

// ---------------------------------------------------------------------
// Verdicts across the shipped schemes (Table 1, statically)
// ---------------------------------------------------------------------

TEST(CdgAnalyzer, DorMeshIsAcyclic)
{
    auto net = lintNet(makeMesh(4, 4), RoutingKind::XyDor,
                       DeadlockScheme::None, 1);
    const AnalysisReport rep = analyzeOf(*net);
    EXPECT_EQ(rep.verdict, Verdict::Acyclic);
    EXPECT_EQ(rep.cyclicSccs, 0);
    EXPECT_TRUE(rep.witnesses.empty());
    EXPECT_TRUE(rep.contractOk);
}

TEST(CdgAnalyzer, WestFirstMeshIsAcyclic)
{
    auto net = lintNet(makeMesh(4, 4), RoutingKind::WestFirst,
                       DeadlockScheme::None, 1);
    const AnalysisReport rep = analyzeOf(*net);
    EXPECT_EQ(rep.verdict, Verdict::Acyclic);
    EXPECT_TRUE(rep.contractOk);
}

TEST(CdgAnalyzer, MinimalAdaptiveMeshIsCyclicWithVerifiedWitness)
{
    auto net = lintNet(makeMesh(4, 4), RoutingKind::MinimalAdaptive,
                       DeadlockScheme::None, 1);
    const AnalysisReport rep = analyzeOf(*net);
    EXPECT_EQ(rep.verdict, Verdict::Deadlockable);
    ASSERT_FALSE(rep.witnesses.empty());
    for (const auto &w : rep.witnesses) {
        EXPECT_TRUE(w.verified);
        EXPECT_EQ(static_cast<std::size_t>(w.length), w.channels.size());
    }
    // The classic 4-router turn cycle exists in a mesh.
    EXPECT_EQ(rep.witnesses.front().length, 4);
    EXPECT_TRUE(rep.contractOk); // declares !selfDeadlockFree
}

TEST(CdgAnalyzer, JohnsonWitnessesAreElementary)
{
    // 8x8 FAvORS yields one large SCC where the witness length cap
    // actually binds; the truncated enumeration must still return only
    // elementary cycles. A channel can be held by at most one packet,
    // so a witness that revisits a node is not a realizable deadlock
    // (and would inflate the reported spin bound k = m-1).
    auto net = lintNet(makeMesh(8, 8), RoutingKind::FavorsMin,
                       DeadlockScheme::Spin, 1);
    const AnalysisReport rep = analyzeOf(*net);
    ASSERT_FALSE(rep.witnesses.empty());
    std::set<std::vector<int>> seen;
    for (const auto &w : rep.witnesses) {
        const std::set<int> distinct(w.nodes.begin(), w.nodes.end());
        EXPECT_EQ(distinct.size(), w.nodes.size())
            << "witness of length " << w.length << " revisits a channel";
        EXPECT_TRUE(seen.insert(w.nodes).second) << "duplicate witness";
    }
}

TEST(CdgAnalyzer, MinimalAdaptiveRingIsCyclicWithFullRingWitness)
{
    auto net = lintNet(makeRing(8), RoutingKind::MinimalAdaptive,
                       DeadlockScheme::None, 1);
    const AnalysisReport rep = analyzeOf(*net);
    EXPECT_EQ(rep.verdict, Verdict::Deadlockable);
    ASSERT_FALSE(rep.witnesses.empty());
    // The only cycles a ring admits span a full direction: length n.
    EXPECT_EQ(rep.witnesses.front().length, 8);
    EXPECT_TRUE(rep.witnesses.front().verified);
}

TEST(CdgAnalyzer, EscapeVcSatisfiesDuatoCondition)
{
    auto net = lintNet(makeMesh(4, 4), RoutingKind::EscapeVc,
                       DeadlockScheme::None, 2);
    const AnalysisReport rep = analyzeOf(*net);
    EXPECT_EQ(rep.verdict, Verdict::EscapeProtected);
    EXPECT_TRUE(rep.escapeDeclared);
    EXPECT_TRUE(rep.escapeAcyclic);
    EXPECT_TRUE(rep.escapeAlwaysReachable);
    EXPECT_TRUE(rep.escapeClosed);
    // The adaptive layer still shows its cycle...
    EXPECT_GE(rep.cyclicSccs, 1);
    // ...and the verdict counts as deadlock-free without recovery.
    EXPECT_TRUE(analysis::verdictSelfSufficient(rep.verdict));
    EXPECT_TRUE(rep.contractOk);
}

TEST(CdgAnalyzer, TorusBubbleNeutralizesRingSccs)
{
    auto net = lintNet(makeTorus(4, 4), RoutingKind::TorusBubble,
                       DeadlockScheme::None, 1);
    const AnalysisReport rep = analyzeOf(*net);
    EXPECT_EQ(rep.verdict, Verdict::FlowControlProtected);
    // One SCC per unidirectional ring: 4 rows + 4 cols, 2 directions.
    EXPECT_EQ(rep.cyclicSccs, 8);
    EXPECT_TRUE(rep.contractOk);
}

TEST(CdgAnalyzer, DorOnTorusIsDeadlockable)
{
    auto net = lintNet(makeTorus(4, 4), RoutingKind::XyDor,
                       DeadlockScheme::None, 1);
    const AnalysisReport rep = analyzeOf(*net);
    EXPECT_EQ(rep.verdict, Verdict::Deadlockable);
    // XyDor's declaration is topology-aware (false once rings wrap),
    // so the static verdict and the contract agree.
    EXPECT_FALSE(rep.declaredSelfFree);
    EXPECT_TRUE(rep.contractOk);
    ASSERT_FALSE(rep.witnesses.empty());
    EXPECT_TRUE(rep.witnesses.front().verified);
}

TEST(CdgAnalyzer, UgalDallyDragonflyIsAcyclic)
{
    auto net = lintNet(makeDragonfly(2, 4, 2, 9), RoutingKind::UgalDally,
                       DeadlockScheme::None, 3);
    const AnalysisReport rep = analyzeOf(*net);
    EXPECT_EQ(rep.verdict, Verdict::Acyclic);
    EXPECT_TRUE(rep.contractOk);
}

TEST(CdgAnalyzer, UgalSpinDragonflyIsRecoverable)
{
    auto net = lintNet(makeDragonfly(2, 4, 2, 9), RoutingKind::UgalSpin,
                       DeadlockScheme::Spin, 3);
    const AnalysisReport rep = analyzeOf(*net);
    EXPECT_EQ(rep.verdict, Verdict::RecoverableSpin);
    EXPECT_GT(rep.probeBudget, 0);
    ASSERT_FALSE(rep.witnesses.empty());
    for (const auto &w : rep.witnesses) {
        EXPECT_TRUE(w.verified);
        EXPECT_TRUE(w.spinRecoverable);
        // Non-minimal routing: k = m*p + (m-1) with p = 1.
        EXPECT_EQ(w.spinBound, 2 * w.length - 1);
    }
}

TEST(CdgAnalyzer, SpinBoundIsMMinusOneForMinimalRouting)
{
    auto net = lintNet(makeMesh(4, 4), RoutingKind::MinimalAdaptive,
                       DeadlockScheme::Spin, 1);
    const AnalysisReport rep = analyzeOf(*net);
    EXPECT_EQ(rep.verdict, Verdict::RecoverableSpin);
    ASSERT_FALSE(rep.witnesses.empty());
    for (const auto &w : rep.witnesses)
        EXPECT_EQ(w.spinBound, w.length - 1); // p = 0
}

TEST(CdgAnalyzer, StaticBubbleReservedLayerCertified)
{
    auto net = lintNet(makeMesh(4, 4), RoutingKind::MinimalAdaptive,
                       DeadlockScheme::StaticBubble, 2);
    const AnalysisReport rep = analyzeOf(*net);
    EXPECT_EQ(rep.verdict, Verdict::RecoverableStaticBubble);
    EXPECT_TRUE(rep.contractOk);
}

// ---------------------------------------------------------------------
// Contract enforcement at construction time
// ---------------------------------------------------------------------

TEST(VcContract, UnderProvisionedEscapeVcIsFatal)
{
    EXPECT_THROW(lintNet(makeMesh(4, 4), RoutingKind::EscapeVc,
                         DeadlockScheme::None, 1),
                 FatalError);
}

TEST(VcContract, ReservedVcDoesNotCountTowardMinimum)
{
    // escape-vc needs 2 usable VCs; static bubble reserves one of the
    // 2 configured, leaving 1: construction must refuse.
    EXPECT_THROW(lintNet(makeMesh(4, 4), RoutingKind::EscapeVc,
                         DeadlockScheme::StaticBubble, 2),
                 FatalError);
    // With 3 configured VCs the contract holds again.
    EXPECT_NO_THROW(lintNet(makeMesh(4, 4), RoutingKind::EscapeVc,
                            DeadlockScheme::StaticBubble, 3));
}

TEST(VcContract, UnderProvisionedUgalDallyIsFatal)
{
    EXPECT_THROW(lintNet(makeDragonfly(2, 4, 2, 9),
                         RoutingKind::UgalDally, DeadlockScheme::None, 2),
                 FatalError);
}

// A routing algorithm whose declaration lies: claims deadlock freedom
// over a CDG that is one big cycle. The analyzer must catch it.
class LyingClockwiseRing : public ClockwiseRing
{
  public:
    std::string name() const override { return "lying-cw-ring"; }
    bool selfDeadlockFree() const override { return true; }
};

TEST(CdgAnalyzer, FlagsLyingSelfDeadlockFreeDeclaration)
{
    auto topo = std::make_shared<Topology>(makeRing(4));
    NetworkConfig cfg;
    cfg.vnets = 1;
    cfg.vcsPerVnet = 1;
    cfg.scheme = DeadlockScheme::None;
    Network net(topo, cfg, std::make_unique<LyingClockwiseRing>());
    const AnalysisReport rep = analyzeOf(net);
    EXPECT_EQ(rep.verdict, Verdict::Deadlockable);
    EXPECT_FALSE(rep.contractOk);
    EXPECT_FALSE(rep.contractNote.empty());
}

// ---------------------------------------------------------------------
// Cross-validation: static witness -> real deadlock -> oracle
// ---------------------------------------------------------------------

TEST(CrossValidation, StaticWitnessMatchesOracleDeadlockMembers)
{
    // Deterministic single-cycle CDG: the clockwise-only ring.
    auto net = ringNetwork(4, DeadlockScheme::None);
    const AnalysisReport rep = analyzeOf(*net);
    EXPECT_EQ(rep.verdict, Verdict::Deadlockable);
    ASSERT_EQ(rep.witnesses.size(), 1u);
    const auto &w = rep.witnesses.front();
    EXPECT_EQ(w.length, 4);
    EXPECT_TRUE(w.verified);

    // Drive the predicted deadlock for real.
    injectRingDeadlock(*net);
    drain(*net, 2000);
    const DeadlockReport oracle = OracleDetector(*net).detect();
    ASSERT_TRUE(oracle.deadlocked);

    // A CDG channel (link, vc) is the buffer at the link's downstream
    // (router, in-port): the oracle must blame exactly the witness set.
    using Buf = std::tuple<RouterId, PortId, VcId>;
    std::set<Buf> predicted;
    for (const StaticChannel &c : w.channels)
        predicted.emplace(c.dst, c.dstPort, c.vc);
    std::set<Buf> blamed;
    for (const DeadlockMember &m : oracle.members)
        blamed.emplace(m.router, m.inport, m.vc);
    EXPECT_EQ(predicted, blamed);
}

TEST(CrossValidation, SpinResolvesThePredictedLoopWithinBound)
{
    // Same loop, SPIN-enabled: the static spin bound must hold live.
    auto net = ringNetwork(4, DeadlockScheme::Spin, 1, 32);
    const AnalysisReport rep = analyzeOf(*net);
    EXPECT_EQ(rep.verdict, Verdict::RecoverableSpin);
    ASSERT_FALSE(rep.witnesses.empty());
    EXPECT_TRUE(rep.witnesses.front().spinRecoverable);

    injectRingDeadlock(*net);
    const Cycle spent = drain(*net, 20000);
    EXPECT_EQ(net->packetsInFlight(), 0u) << "SPIN failed to recover "
                                             "the statically predicted "
                                             "loop within " << spent
                                          << " cycles";
}

// ---------------------------------------------------------------------
// Report export
// ---------------------------------------------------------------------

TEST(AnalysisReport, JsonRoundTripsAndDotRenders)
{
    auto net = lintNet(makeRing(4), RoutingKind::MinimalAdaptive,
                       DeadlockScheme::None, 1);
    CdgAnalyzer analyzer(*net);
    const AnalysisReport rep = analyzer.analyze(0);

    std::string err;
    const obs::JsonValue j = obs::JsonValue::parse(rep.toJson().dump(2),
                                                   &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ((*j.find("verdict")).asString(), "deadlockable");
    ASSERT_NE(j.find("witnesses"), nullptr);
    EXPECT_GT(j["witnesses"].size(), 0u);

    const std::string dot = analyzer.toDot(rep);
    EXPECT_NE(dot.find("digraph cdg"), std::string::npos);
    EXPECT_NE(dot.find("color=red"), std::string::npos); // witness edges
}

TEST(AnalysisReport, TruncationIsInconclusive)
{
    auto net = lintNet(makeMesh(4, 4), RoutingKind::MinimalAdaptive,
                       DeadlockScheme::None, 1);
    const AnalysisReport rep = CdgAnalyzer(*net).analyze(0, 8);
    EXPECT_EQ(rep.verdict, Verdict::Inconclusive);
    EXPECT_FALSE(rep.contractOk);
    EXPECT_FALSE(analysis::verdictDeadlockFree(rep.verdict));
}

} // namespace
} // namespace spin
