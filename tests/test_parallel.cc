/**
 * @file
 * Sharded-step determinism tests: the StepExecutor primitive, thread
 * clamping, and the central contract of docs/SCALING.md -- a network
 * stepped with any `threads` value produces bit-identical statistics,
 * telemetry, trace streams and metrics streams. Every workload here
 * runs once per thread count and the outputs are compared as strings,
 * so any divergence (ordering, rng, staging) fails loudly.
 */

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "SpinTestUtil.hh"
#include "common/Logging.hh"
#include "fault/FaultInjector.hh"
#include "fault/FaultSchedule.hh"
#include "network/NetworkBuilder.hh"
#include "obs/Json.hh"
#include "obs/Metrics.hh"
#include "obs/Tracer.hh"
#include "sim/Parallel.hh"
#include "topology/Dragonfly.hh"
#include "topology/Torus.hh"
#include "traffic/SyntheticInjector.hh"

using namespace spin;

namespace
{

// ---------------------------------------------------------------------
// StepExecutor
// ---------------------------------------------------------------------

TEST(StepExecutor, RunsEveryShardExactlyOncePerGeneration)
{
    StepExecutor exec(4);
    EXPECT_EQ(exec.threads(), 4);
    std::vector<int> hits(4, 0);
    for (int gen = 0; gen < 200; ++gen)
        exec.run([&](int s) { ++hits[static_cast<std::size_t>(s)]; });
    for (const int h : hits)
        EXPECT_EQ(h, 200);
}

TEST(StepExecutor, SingleThreadRunsInline)
{
    StepExecutor exec(1);
    int calls = 0;
    exec.run([&](int s) {
        EXPECT_EQ(s, 0);
        ++calls;
    });
    EXPECT_EQ(calls, 1);
}

TEST(StepExecutor, PropagatesWorkerExceptionAndStaysUsable)
{
    StepExecutor exec(3);
    EXPECT_THROW(exec.run([](int s) {
        if (s == 2)
            throw FatalError("shard 2 exploded");
    }),
                 FatalError);
    // The pool must survive a failed generation.
    std::vector<int> hits(3, 0);
    exec.run([&](int s) { ++hits[static_cast<std::size_t>(s)]; });
    EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
}

// ---------------------------------------------------------------------
// Thread clamping
// ---------------------------------------------------------------------

TEST(ParallelStep, ThreadsClampToRouterCount)
{
    auto topo = std::make_shared<Topology>(makeRing(6));
    NetworkConfig cfg;
    cfg.vnets = 1;
    cfg.vcsPerVnet = 2;
    cfg.threads = 64;
    Network net(topo, cfg, makeRouting(RoutingKind::XyDor));
    EXPECT_EQ(net.threads(), 6);
}

// ---------------------------------------------------------------------
// Bit-identity across thread counts
// ---------------------------------------------------------------------

/** Full telemetry of a saturated SPIN torus run at @p threads. */
std::string
torusTelemetry(int threads)
{
    auto topo = std::make_shared<Topology>(makeTorus(8, 8));
    ConfigPreset preset = meshPresets3Vc()[3]; // MinAdaptive + SPIN
    preset.cfg.seed = 99;
    preset.cfg.threads = threads;
    auto net = preset.build(topo);
    InjectorConfig icfg;
    icfg.injectionRate = 0.45; // deep saturation: recovery active
    icfg.seed = 100;
    SyntheticInjector inj(*net, Pattern::UniformRandom, icfg);
    for (int i = 0; i < 500; ++i) {
        inj.tick();
        net->step();
    }
    net->beginMeasurement(); // warmup reset composes with sharding
    for (int i = 0; i < 2500; ++i) {
        inj.tick();
        net->step();
    }
    EXPECT_GT(net->stats().packetsEjected, 1000u);
    return net->telemetryJson().dump(2);
}

TEST(ParallelStep, TorusSpinTelemetryBitIdenticalAcrossThreadCounts)
{
    const std::string serial = torusTelemetry(1);
    // 3 leaves uneven shards (22/21/21 routers); 4 is the CI gate.
    EXPECT_EQ(serial, torusTelemetry(2));
    EXPECT_EQ(serial, torusTelemetry(3));
    EXPECT_EQ(serial, torusTelemetry(4));
}

/** Trace stream (all categories) of a recovering ring at @p threads. */
std::string
ringTrace(int threads)
{
    auto topo = std::make_shared<Topology>(makeRing(6));
    NetworkConfig cfg;
    cfg.vnets = 1;
    cfg.vcsPerVnet = 1;
    cfg.vcDepth = 5;
    cfg.maxPacketSize = 5;
    cfg.scheme = DeadlockScheme::Spin;
    cfg.tDd = 32;
    cfg.threads = threads;
    auto net = std::make_unique<Network>(topo, cfg,
                                         std::make_unique<ClockwiseRing>());
    std::ostringstream os;
    net->setTracer(std::make_unique<obs::Tracer>(
        std::make_unique<obs::JsonlSink>(os)));
    injectRingDeadlock(*net);
    drain(*net, 5000);
    net->setTracer(nullptr); // flush before reading the stream
    return os.str();
}

TEST(ParallelStep, TraceStreamBitIdenticalAcrossThreadCounts)
{
    const std::string serial = ringTrace(1);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, ringTrace(3));
    EXPECT_EQ(serial, ringTrace(6));
}

/** Metrics stream of a measured torus run at @p threads. */
std::vector<std::string>
torusMetrics(int threads)
{
    auto topo = std::make_shared<Topology>(makeTorus(4, 4));
    ConfigPreset preset = meshPresets3Vc()[3];
    preset.cfg.seed = 5;
    preset.cfg.threads = threads;
    auto net = preset.build(topo);
    obs::MetricsConfig mcfg;
    mcfg.interval = 50;
    mcfg.label = "parallel-identity";
    auto sink = std::make_unique<obs::MemoryMetricsSink>();
    obs::MemoryMetricsSink *mem = sink.get();
    net->enableMetrics(mcfg, std::move(sink));
    InjectorConfig icfg;
    icfg.injectionRate = 0.3;
    icfg.seed = 6;
    SyntheticInjector inj(*net, Pattern::Transpose, icfg);
    for (int i = 0; i < 200; ++i) {
        inj.tick();
        net->step();
    }
    net->beginMeasurement();
    for (int i = 0; i < 1000; ++i) {
        inj.tick();
        net->step();
    }
    net->metrics()->finish(net->now());
    return mem->lines();
}

TEST(ParallelStep, MetricsStreamBitIdenticalAcrossThreadCounts)
{
    const std::vector<std::string> serial = torusMetrics(1);
    EXPECT_GT(serial.size(), 5u);
    EXPECT_EQ(serial, torusMetrics(4));
}

/** Fault-heavy mesh run: router death exercises the staged-loss path
 *  (NIC retirement in the parallel injection phase, dead-router flit
 *  disposal in the parallel wire phase). */
std::string
faultTelemetry(int threads)
{
    auto topo = std::make_shared<Topology>(makeTorus(8, 8));
    ConfigPreset preset = meshPresets3Vc()[3];
    preset.cfg.seed = 21;
    preset.cfg.threads = threads;
    auto net = preset.build(topo);

    const char *spec = R"({
        "schema": "spin-faults/v1",
        "events": [
            {"kind": "link", "cycle": 120, "src": 27, "dst": 28},
            {"kind": "router", "cycle": 200, "router": 9},
            {"kind": "drop", "cycle": 260, "src": 2, "dst": 3},
            {"kind": "random-links", "cycle": 400, "count": 2, "seed": 7}
        ]})";
    std::string perr;
    const obs::JsonValue doc = obs::JsonValue::parse(spec, &perr);
    EXPECT_TRUE(perr.empty()) << perr;
    fault::FaultSchedule fs;
    std::string err;
    EXPECT_TRUE(fault::FaultSchedule::fromJson(doc, fs, err)) << err;
    net->attachFaults(std::move(fs));

    InjectorConfig icfg;
    icfg.injectionRate = 0.25;
    icfg.seed = 22;
    SyntheticInjector inj(*net, Pattern::UniformRandom, icfg);
    for (int i = 0; i < 1500; ++i) {
        inj.tick();
        net->step();
    }
    drain(*net, 4000); // staged losses must balance the books
    EXPECT_EQ(net->packetsInFlight(), 0u);
    return net->telemetryJson().dump(2);
}

TEST(ParallelStep, FaultRunsBitIdenticalAcrossThreadCounts)
{
    const std::string serial = faultTelemetry(1);
    EXPECT_NE(serial.find("\"routersFailed\": 1"), std::string::npos);
    EXPECT_EQ(serial, faultTelemetry(4));
}

/** Dragonfly UGAL run: source routing draws from the attachment
 *  router's rng stream inside the parallel injection phase. */
std::string
dragonflyTelemetry(int threads)
{
    auto topo = std::make_shared<Topology>(makeDragonfly(2, 4, 2, 9));
    ConfigPreset preset = dragonflyPresets3Vc()[1]; // UGAL + SPIN
    preset.cfg.seed = 13;
    preset.cfg.threads = threads;
    auto net = preset.build(topo);
    InjectorConfig icfg;
    icfg.injectionRate = 0.35;
    icfg.seed = 14;
    SyntheticInjector inj(*net, Pattern::UniformRandom, icfg);
    for (int i = 0; i < 2000; ++i) {
        inj.tick();
        net->step();
    }
    return net->telemetryJson().dump(2);
}

TEST(ParallelStep, DragonflyUgalBitIdenticalAcrossThreadCounts)
{
    const std::string serial = dragonflyTelemetry(1);
    EXPECT_EQ(serial, dragonflyTelemetry(3));
    EXPECT_EQ(serial, dragonflyTelemetry(8));
}

} // namespace
