/**
 * @file
 * Tests of the paper's theorem (Sec. III): a deadlocked ring of length
 * m resolves within m-1 spins under minimal routing and within
 * m*p + (m-1) spins under non-minimal routing with misroute bound p.
 * Parameterized over ring sizes; also validates the false-positive
 * accounting against the oracle and the non-minimal case via forced
 * Valiant detours.
 */

#include <gtest/gtest.h>

#include "core/SpinManager.hh"
#include "deadlock/OracleDetector.hh"
#include "tests/SpinTestUtil.hh"

namespace spin
{
namespace
{

class TheoremMinimal : public ::testing::TestWithParam<int>
{
};

TEST_P(TheoremMinimal, SpinsBoundedByRingLength)
{
    // m packets, each 2 clockwise hops from its destination, deadlock
    // in a ring of length m. Minimal routing: every spin is forward
    // progress, so at most m-1 spins resolve it (in fact after one
    // spin every packet is 1 hop out, after two every packet ejects).
    const int m = GetParam();
    auto net = ringNetwork(m, DeadlockScheme::Spin, 1, 32);
    for (NodeId i = 0; i < m; ++i)
        net->offerPacket(net->makePacket(i, (i + 2) % m, 0, 5));
    drain(*net, static_cast<Cycle>(m) * 4000);
    ASSERT_EQ(net->packetsInFlight(), 0u);
    EXPECT_GE(net->stats().spins, 1u);
    EXPECT_LE(net->stats().spins, static_cast<std::uint64_t>(m - 1));
    // Per-packet rotations also respect the bound.
    EXPECT_LE(net->stats().spinsOfEjected,
              static_cast<std::uint64_t>(m) * (m - 1));
}

INSTANTIATE_TEST_SUITE_P(RingSizes, TheoremMinimal,
                         ::testing::Values(3, 4, 6, 8, 12, 16));

class TheoremFarDest : public ::testing::TestWithParam<int>
{
};

TEST_P(TheoremFarDest, MultiSpinDeadlocksStayWithinBound)
{
    // Destinations m-1 hops away force up to m-1 consecutive spins --
    // the theorem's worst case for minimal routing. The probe_move
    // optimization (Sec. IV-B4) must chain the spins.
    const int m = GetParam();
    auto net = ringNetwork(m, DeadlockScheme::Spin, 1, 32);
    for (NodeId i = 0; i < m; ++i)
        net->offerPacket(net->makePacket(i, (i + m - 1) % m, 0, 5));
    drain(*net, static_cast<Cycle>(m) * 6000);
    ASSERT_EQ(net->packetsInFlight(), 0u);
    // Each packet needs m-1 hops; every one of the first m-2 ring
    // positions can require a spin: still bounded by m-1 per theorem.
    EXPECT_LE(net->stats().spins, static_cast<std::uint64_t>(m - 1));
}

INSTANTIATE_TEST_SUITE_P(RingSizes, TheoremFarDest,
                         ::testing::Values(4, 6, 8));

TEST(TheoremNonMinimal, MisroutedPacketsStillBounded)
{
    // Non-minimal case: packets detour through an intermediate (p = 1).
    // Build the deadlock out of phase-one (misrouting) packets: dest is
    // the neighbor *behind* the intermediate, so every hop toward the
    // intermediate is a "misroute" w.r.t. the final destination.
    const int m = 6;
    auto net = ringNetwork(m, DeadlockScheme::Spin, 1, 32);
    for (NodeId i = 0; i < m; ++i) {
        auto pkt = net->makePacket(i, (i + 4) % m, 0, 5);
        pkt->sourceRouted = true;
        pkt->intermediate = (i + 2) % m; // 2 CW hops, then 2 more
        pkt->misroutes = 1;
        net->offerPacket(pkt);
    }
    drain(*net, 20000);
    ASSERT_EQ(net->packetsInFlight(), 0u);
    // Bound: m*p + (m-1) = 6 + 5 = 11.
    EXPECT_LE(net->stats().spins, 11u);
    EXPECT_EQ(net->stats().packetsEjected, static_cast<std::uint64_t>(m));
}

TEST(TheoremNonMinimal, PhaseFlipPreservedAcrossSpins)
{
    // A rotated packet must keep its Valiant phase: after recovery it
    // still visits the intermediate before heading home.
    const int m = 6;
    auto net = ringNetwork(m, DeadlockScheme::Spin, 1, 32);
    std::vector<PacketPtr> pkts;
    for (NodeId i = 0; i < m; ++i) {
        auto pkt = net->makePacket(i, (i + 4) % m, 0, 5);
        pkt->sourceRouted = true;
        pkt->intermediate = (i + 2) % m;
        pkt->misroutes = 1;
        pkts.push_back(pkt);
        net->offerPacket(pkt);
    }
    drain(*net, 20000);
    for (const auto &p : pkts) {
        EXPECT_TRUE(p->phaseTwo) << p->toString();
        EXPECT_EQ(p->hops, 4) << p->toString(); // 2 out + 2 on
        EXPECT_NE(p->ejectCycle, kNeverCycle);
    }
}

TEST(TheoremFalsePositive, OracleAgreesWithSpinAccounting)
{
    // For the canonical constructed deadlock, the spin the recovery
    // performs is a true positive: the oracle saw a deadlock before it
    // and the stats must not classify it as false.
    auto net = ringNetwork(4, DeadlockScheme::Spin, 1, 32);
    injectRingDeadlock(*net);
    OracleDetector oracle(*net);
    bool oracle_saw = false;
    const Cycle start = net->now();
    while (net->packetsInFlight() > 0 && net->now() - start < 4000) {
        net->step();
        if (!oracle_saw && net->stats().spins == 0)
            oracle_saw |= oracle.detect().deadlocked;
    }
    EXPECT_TRUE(oracle_saw);
    EXPECT_GE(net->stats().spins, 1u);
    EXPECT_EQ(net->stats().falsePositiveSpins, 0u);
}

} // namespace
} // namespace spin
