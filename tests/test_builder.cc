/**
 * @file
 * Unit tests: the construction facade -- routing factory, Table III
 * presets, and configuration validation at network-build time.
 */

#include <gtest/gtest.h>

#include "network/NetworkBuilder.hh"
#include "topology/Dragonfly.hh"
#include "topology/Mesh.hh"

namespace spin
{
namespace
{

TEST(Builder, MakeRoutingNames)
{
    EXPECT_EQ(makeRouting(RoutingKind::XyDor)->name(), "xy-dor");
    EXPECT_EQ(makeRouting(RoutingKind::WestFirst)->name(), "west-first");
    EXPECT_EQ(makeRouting(RoutingKind::MinimalAdaptive)->name(),
              "minimal-adaptive");
    EXPECT_EQ(makeRouting(RoutingKind::EscapeVc)->name(), "escape-vc");
    EXPECT_EQ(makeRouting(RoutingKind::UgalDally)->name(), "ugal-dally");
    EXPECT_EQ(makeRouting(RoutingKind::UgalSpin)->name(), "ugal-spin");
    EXPECT_EQ(makeRouting(RoutingKind::FavorsMin)->name(), "favors-min");
    EXPECT_EQ(makeRouting(RoutingKind::FavorsNMin)->name(),
              "favors-nmin");
}

TEST(Builder, ToStringMatchesKind)
{
    EXPECT_EQ(toString(RoutingKind::FavorsNMin), "favors-nmin");
    EXPECT_EQ(toString(RoutingKind::UgalDally), "ugal-dally");
    EXPECT_EQ(toString(RoutingKind::TorusBubble), "torus-bubble-dor");
}

TEST(Builder, EveryKindHasConsistentNameAndFactory)
{
    // toString(kind) must agree with the instantiated algorithm's own
    // name() for every enumerator (catches missing switch cases).
    for (const RoutingKind k :
         {RoutingKind::XyDor, RoutingKind::WestFirst,
          RoutingKind::MinimalAdaptive, RoutingKind::EscapeVc,
          RoutingKind::TorusBubble, RoutingKind::UgalDally,
          RoutingKind::UgalSpin, RoutingKind::FavorsMin,
          RoutingKind::FavorsNMin}) {
        auto algo = makeRouting(k);
        ASSERT_NE(algo, nullptr);
        EXPECT_EQ(algo->name(), toString(k));
        EXPECT_NE(toString(k), "?");
    }
}

TEST(Builder, MeshPresetsBuild)
{
    auto topo = std::make_shared<Topology>(makeMesh(4, 4));
    for (const ConfigPreset &p : meshPresets3Vc()) {
        auto net = p.build(topo);
        ASSERT_NE(net, nullptr) << p.name;
        EXPECT_EQ(net->config().name, p.name);
        EXPECT_EQ(net->config().vcsPerVnet, 3);
        net->run(50); // must at least idle cleanly
    }
    for (const ConfigPreset &p : meshPresets1Vc()) {
        auto net = p.build(topo);
        EXPECT_EQ(net->config().vcsPerVnet, 1);
        net->run(50);
    }
}

TEST(Builder, DragonflyPresetsBuild)
{
    auto topo = std::make_shared<Topology>(makeDragonfly(2, 4, 2, 0));
    for (const ConfigPreset &p : dragonflyPresets3Vc()) {
        auto net = p.build(topo);
        net->run(50);
    }
    for (const ConfigPreset &p : dragonflyPresets1Vc()) {
        auto net = p.build(topo);
        net->run(50);
    }
}

TEST(Builder, PresetSchemesMatchTableIii)
{
    const auto mesh3 = meshPresets3Vc();
    EXPECT_EQ(mesh3[0].cfg.scheme, DeadlockScheme::None);  // WestFirst
    EXPECT_EQ(mesh3[1].cfg.scheme, DeadlockScheme::None);  // EscapeVC
    EXPECT_EQ(mesh3[2].cfg.scheme, DeadlockScheme::StaticBubble);
    EXPECT_EQ(mesh3[3].cfg.scheme, DeadlockScheme::Spin);
    const auto dfly3 = dragonflyPresets3Vc();
    EXPECT_EQ(dfly3[0].cfg.scheme, DeadlockScheme::None);  // Dally
    EXPECT_EQ(dfly3[1].cfg.scheme, DeadlockScheme::Spin);
}

TEST(Builder, SpinManagerOnlyWhenSpinScheme)
{
    auto topo = std::make_shared<Topology>(makeMesh(4, 4));
    auto spin_net = meshPresets3Vc()[3].build(topo);
    EXPECT_NE(spin_net->spinManager(), nullptr);
    auto plain_net = meshPresets3Vc()[0].build(topo);
    EXPECT_EQ(plain_net->spinManager(), nullptr);
}

TEST(Builder, VcRequirementEnforcedAtBuild)
{
    auto topo = std::make_shared<Topology>(makeDragonfly(2, 4, 2, 0));
    NetworkConfig cfg;
    cfg.vcsPerVnet = 2; // ugal-dally needs 3
    EXPECT_THROW(buildNetwork(topo, cfg, RoutingKind::UgalDally),
                 FatalError);
}

TEST(Builder, SchemeToString)
{
    EXPECT_EQ(toString(DeadlockScheme::Spin), "spin");
    EXPECT_EQ(toString(DeadlockScheme::StaticBubble), "static-bubble");
    EXPECT_EQ(toString(DeadlockScheme::None), "none");
}

} // namespace
} // namespace spin
