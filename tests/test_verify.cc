/**
 * @file
 * Tests for the spin_model verification subsystem (src/verify): the
 * Fig. 4a transition relation, FSM snapshot/restore, canonical state
 * digests, the explorer itself (clean protocol verifies, mutated
 * protocol convicted), trace serialization, and the committed
 * counterexample regression trace.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/SpinManager.hh"
#include "network/Network.hh"
#include "router/Router.hh"
#include "verify/Digest.hh"
#include "verify/Explorer.hh"
#include "verify/Scenarios.hh"
#include "verify/Trace.hh"

namespace spin::verify
{
namespace
{

const Scenario &
ring4()
{
    const Scenario *sc = findScenario("ring4");
    EXPECT_NE(sc, nullptr);
    return *sc;
}

std::unique_ptr<Network>
ring4At(Cycle cycles)
{
    std::unique_ptr<Network> net = ring4().build(kNeverCycle);
    for (Cycle i = 0; i < cycles; ++i)
        net->step();
    return net;
}

// ---------------------------------------------------------------------
// Fig. 4a transition relation
// ---------------------------------------------------------------------

TEST(VerifyTransitions, InitiatorRelationIsExactlyFig4a)
{
    using S = InitState;
    const std::vector<S> all = {S::Off,         S::DetectDeadlock,
                                S::MoveWait,    S::FwdProgress,
                                S::ProbeMoveWait, S::KillMoveWait};
    // Directed edges of the initiator projection of Fig. 4a.
    const std::vector<std::pair<S, S>> edges = {
        {S::Off, S::DetectDeadlock},
        {S::DetectDeadlock, S::MoveWait},
        {S::DetectDeadlock, S::Off},
        {S::MoveWait, S::FwdProgress},
        {S::MoveWait, S::KillMoveWait},
        {S::FwdProgress, S::ProbeMoveWait},
        {S::FwdProgress, S::DetectDeadlock},
        {S::FwdProgress, S::Off},
        {S::ProbeMoveWait, S::FwdProgress},
        {S::ProbeMoveWait, S::KillMoveWait},
        {S::KillMoveWait, S::DetectDeadlock},
        {S::KillMoveWait, S::Off},
    };
    for (const S from : all) {
        for (const S to : all) {
            const bool isEdge =
                from == to ||
                std::find(edges.begin(), edges.end(),
                          std::make_pair(from, to)) != edges.end();
            EXPECT_EQ(initTransitionAllowed(from, to), isEdge)
                << toString(from) << " -> " << toString(to);
        }
    }
}

TEST(VerifyTransitions, FrozenMasksThePaperView)
{
    using P = SpinState;
    const std::vector<P> all = {P::Off,    P::DetectDeadlock,
                                P::Move,   P::Frozen,
                                P::ForwardProgress, P::ProbeMove,
                                P::KillMove};
    for (const P s : all) {
        // Self-loops always allowed; entering/leaving Frozen always
        // allowed (the victim context masks the initiator context).
        EXPECT_TRUE(paperTransitionAllowed(s, s)) << toString(s);
        EXPECT_TRUE(paperTransitionAllowed(s, P::Frozen)) << toString(s);
        EXPECT_TRUE(paperTransitionAllowed(P::Frozen, s)) << toString(s);
    }
    // Unmasked pairs follow the initiator relation.
    EXPECT_TRUE(paperTransitionAllowed(P::Off, P::DetectDeadlock));
    EXPECT_TRUE(paperTransitionAllowed(P::Move, P::ForwardProgress));
    EXPECT_FALSE(paperTransitionAllowed(P::Off, P::Move));
    EXPECT_FALSE(paperTransitionAllowed(P::Move, P::ProbeMove));
    EXPECT_FALSE(paperTransitionAllowed(P::KillMove, P::Move));
}

// ---------------------------------------------------------------------
// Snapshot / restore
// ---------------------------------------------------------------------

TEST(VerifySnapshot, RestoreRoundTripsMidRecovery)
{
    // Cycle 44 is mid-recovery on ring4 (t_DD = 32, deadlock formed by
    // ~10): units hold loops, victims and frozen VCs.
    std::unique_ptr<Network> net = ring4At(44);
    const Cycle now = net->now();
    bool sawRecoveryState = false;
    for (int r = 0; r < net->numRouters(); ++r) {
        SpinUnit *su = net->router(r).spinUnit();
        ASSERT_NE(su, nullptr);
        const FsmSnapshot s = su->snapshot(now);
        sawRecoveryState |= s.state != InitState::Off || s.victimActive;
        su->restore(s, now);
        const FsmSnapshot again = su->snapshot(now);
        EXPECT_EQ(s, again) << "router " << r;
    }
    EXPECT_TRUE(sawRecoveryState)
        << "ring4 should be mid-recovery at cycle 44";
}

TEST(VerifySnapshot, SelfRestoreKeepsTheDigest)
{
    std::unique_ptr<Network> net = ring4At(44);
    const Cycle now = net->now();
    SpinManager *mgr = net->spinManager();
    ASSERT_NE(mgr, nullptr);

    const std::uint64_t before = canonicalDigest(*net, true);
    const SmSubstrate sms = mgr->snapshotSms(now);
    std::vector<FsmSnapshot> units;
    for (int r = 0; r < net->numRouters(); ++r)
        units.push_back(net->router(r).spinUnit()->snapshot(now));

    for (int r = 0; r < net->numRouters(); ++r)
        net->router(r).spinUnit()->restore(units[static_cast<size_t>(r)],
                                           now);
    mgr->restoreSms(sms, now);
    EXPECT_EQ(canonicalDigest(*net, true), before);
}

// ---------------------------------------------------------------------
// Canonical digests
// ---------------------------------------------------------------------

TEST(VerifyDigest, DeterministicAcrossIndependentBuilds)
{
    std::unique_ptr<Network> a = ring4().build(kNeverCycle);
    std::unique_ptr<Network> b = ring4().build(kNeverCycle);
    for (Cycle c = 0; c <= 60; ++c) {
        if (c % 20 == 0) {
            EXPECT_EQ(canonicalDigest(*a, true), canonicalDigest(*b, true))
                << "cycle " << c;
        }
        a->step();
        b->step();
    }
}

TEST(VerifyDigest, EvolvingStateChangesTheDigest)
{
    std::unique_ptr<Network> net = ring4().build(kNeverCycle);
    const std::uint64_t empty = canonicalDigest(*net, true);
    for (int i = 0; i < 40; ++i)
        net->step();
    EXPECT_NE(canonicalDigest(*net, true), empty);
}

// ---------------------------------------------------------------------
// Explorer
// ---------------------------------------------------------------------

TEST(VerifyExplorer, BaselineRunQuiescesClean)
{
    ExplorerOptions opt;
    opt.budget = 0;
    const ExploreResult res = explore(ring4(), opt);
    EXPECT_EQ(res.runs, 1u);
    EXPECT_TRUE(res.exhausted);
    EXPECT_TRUE(res.violations.empty());
    EXPECT_GT(res.statesVisited, 0u);
    EXPECT_EQ(res.choicePoints, 0u);
}

TEST(VerifyExplorer, BudgetOneExploresAndStaysClean)
{
    ExplorerOptions opt;
    opt.budget = 1;
    const ExploreResult res = explore(ring4(), opt);
    EXPECT_TRUE(res.exhausted);
    EXPECT_TRUE(res.violations.empty());
    // One child run per undeduplicated Delay/Drop branch, plus the
    // root: the protocol has real choice points on this scenario.
    EXPECT_GT(res.runs, 10u);
    EXPECT_EQ(res.runs, res.choicePoints + 1);
}

TEST(VerifyExplorer, SharedLoopCaseTwoStaysClean)
{
    const Scenario *sc = findScenario("shared8");
    ASSERT_NE(sc, nullptr);
    ExplorerOptions opt;
    opt.budget = 1;
    const ExploreResult res = explore(*sc, opt);
    EXPECT_TRUE(res.exhausted);
    EXPECT_TRUE(res.violations.empty());
}

TEST(VerifyExplorer, MutationIsConvictedWithMinimalTrace)
{
    ExplorerOptions opt;
    opt.budget = 1;
    opt.mutation = ProtocolMutation::SkipCancelUnfreeze;
    const ExploreResult res = explore(ring4(), opt);
    ASSERT_FALSE(res.violations.empty());
    const Violation minimal = minimize(ring4(), res.violations.front());
    EXPECT_EQ(minimal.kind, "audit");
    EXPECT_LE(minimal.run.choices.size(), 1u);

    const ReplayResult rep = replay(ring4(), minimal.run);
    ASSERT_TRUE(rep.violated);
    EXPECT_EQ(rep.violation.kind, minimal.kind);
    EXPECT_EQ(rep.violation.cycle, minimal.cycle);
}

// ---------------------------------------------------------------------
// Traces
// ---------------------------------------------------------------------

TEST(VerifyTrace, JsonRoundTrip)
{
    Violation v;
    v.kind = "liveness";
    v.message = "no quiescence by cycle 99";
    v.cycle = 99;
    v.run.scenario = "ring4";
    v.run.mutation = ProtocolMutation::SkipKillMove;
    v.run.faultCycle = 48;
    v.run.choices.push_back(
        Choice{17, SmType::Move, 3, 0, 1, SmAction::Drop});
    v.run.choices.push_back(
        Choice{21, SmType::KillMove, 2, 1, 0, SmAction::Delay});

    Violation back;
    std::string err;
    ASSERT_TRUE(traceFromJson(traceToJson(v), back, err)) << err;
    EXPECT_EQ(back.kind, v.kind);
    EXPECT_EQ(back.message, v.message);
    EXPECT_EQ(back.cycle, v.cycle);
    EXPECT_EQ(back.run.scenario, v.run.scenario);
    EXPECT_EQ(back.run.mutation, v.run.mutation);
    EXPECT_EQ(back.run.faultCycle, v.run.faultCycle);
    ASSERT_EQ(back.run.choices.size(), v.run.choices.size());
    for (std::size_t i = 0; i < v.run.choices.size(); ++i)
        EXPECT_EQ(back.run.choices[i], v.run.choices[i]) << "choice " << i;
}

TEST(VerifyTrace, RejectsMalformedDocuments)
{
    Violation out;
    std::string err;
    obs::JsonValue doc = obs::JsonValue::object();
    doc.set("schema", "wrong/v0");
    EXPECT_FALSE(traceFromJson(doc, out, err));
    EXPECT_NE(err.find("schema"), std::string::npos);
}

TEST(VerifyTrace, CommittedCounterexampleStillReproduces)
{
    // The committed regression trace: skip-cancel-unfreeze plus one
    // dropped move leaves a stale frozen victim on ring4. Replaying it
    // through the full simulator must reproduce the audit violation at
    // the recorded cycle, bit-identically, on every platform.
    const std::string path =
        std::string(SPINNOC_TEST_TRACE_DIR) +
        "/ring4-skip-cancel-unfreeze.json";
    Violation want;
    std::string err;
    ASSERT_TRUE(traceFromFile(path, want, err)) << err;
    const Scenario *sc = findScenario(want.run.scenario);
    ASSERT_NE(sc, nullptr);

    const ReplayResult got = replay(*sc, want.run);
    ASSERT_TRUE(got.violated);
    EXPECT_EQ(got.violation.kind, want.kind);
    EXPECT_EQ(got.violation.cycle, want.cycle);
    EXPECT_EQ(got.violation.message, want.message);
}

} // namespace
} // namespace spin::verify
