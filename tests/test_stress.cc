/**
 * @file
 * Property-based stress tests: the paper's central invariant is that
 * SPIN makes *any* (continuously routing) configuration deadlock-free.
 * We saturate cycle-prone topologies -- torus, ring, dragonfly, faulty
 * meshes, random regular graphs -- with fully adaptive routing and one
 * VC, then stop injection and require complete drainage: no packet may
 * remain stuck. Parameterized over seeds and patterns.
 */

#include <gtest/gtest.h>

#include "core/SpinManager.hh"
#include "deadlock/OracleDetector.hh"
#include "tests/SpinTestUtil.hh"
#include "topology/Dragonfly.hh"
#include "topology/Irregular.hh"
#include "topology/Mesh.hh"
#include "topology/Torus.hh"
#include "traffic/SyntheticInjector.hh"

namespace spin
{
namespace
{

NetworkConfig
spinCfg(int vcs, std::uint64_t seed, Cycle t_dd = 64)
{
    NetworkConfig cfg;
    cfg.vnets = 1;
    cfg.vcsPerVnet = vcs;
    cfg.vcDepth = 5;
    cfg.maxPacketSize = 5;
    cfg.scheme = DeadlockScheme::Spin;
    cfg.tDd = t_dd;
    cfg.seed = seed;
    return cfg;
}

/** Saturate, stop, drain; assert full delivery. */
void
saturateAndDrain(Network &net, Pattern pattern, double rate,
                 Cycle load_cycles, Cycle drain_cycles,
                 std::uint64_t seed)
{
    InjectorConfig icfg;
    icfg.injectionRate = rate;
    icfg.seed = seed;
    SyntheticInjector inj(net, pattern, icfg);
    for (Cycle i = 0; i < load_cycles; ++i) {
        inj.tick();
        net.step();
    }
    drain(net, drain_cycles);
    EXPECT_EQ(net.packetsInFlight(), 0u)
        << "stuck packets under " << toString(pattern) << " seed "
        << seed;
    EXPECT_EQ(net.stats().packetsEjected, net.stats().packetsCreated);
    OracleDetector oracle(net);
    EXPECT_FALSE(oracle.detect().deadlocked);
}

struct StressParam
{
    std::uint64_t seed;
    Pattern pattern;
};

class TorusStress : public ::testing::TestWithParam<StressParam>
{
};

TEST_P(TorusStress, SaturatedOneVcTorusDrains)
{
    // A torus with minimal adaptive routing and one VC deadlocks
    // readily (wrap-around cycles); SPIN must keep it live.
    const auto [seed, pattern] = GetParam();
    auto topo = std::make_shared<Topology>(makeTorus(4, 4));
    auto net = buildNetwork(topo, spinCfg(1, seed),
                            RoutingKind::MinimalAdaptive);
    saturateAndDrain(*net, pattern, 0.45, 3000, 20000, seed);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, TorusStress,
    ::testing::Values(StressParam{1, Pattern::UniformRandom},
                      StressParam{2, Pattern::UniformRandom},
                      StressParam{3, Pattern::BitComplement},
                      StressParam{4, Pattern::Tornado},
                      StressParam{5, Pattern::Transpose},
                      StressParam{6, Pattern::BitReverse},
                      StressParam{7, Pattern::Shuffle},
                      StressParam{8, Pattern::Neighbor}));

class MeshStress : public ::testing::TestWithParam<StressParam>
{
};

TEST_P(MeshStress, SaturatedOneVcAdaptiveMeshDrains)
{
    // Fully adaptive minimal on a mesh has cyclic CDG (all turns
    // allowed): the FAvORS-Min configuration of the paper.
    const auto [seed, pattern] = GetParam();
    auto topo = std::make_shared<Topology>(makeMesh(5, 5));
    auto net = buildNetwork(topo, spinCfg(1, seed),
                            RoutingKind::FavorsMin);
    saturateAndDrain(*net, pattern, 0.50, 3000, 40000, seed);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, MeshStress,
    ::testing::Values(StressParam{11, Pattern::UniformRandom},
                      StressParam{12, Pattern::Transpose},
                      StressParam{13, Pattern::BitComplement},
                      StressParam{14, Pattern::BitReverse},
                      StressParam{15, Pattern::Tornado},
                      StressParam{16, Pattern::BitRotation}));

TEST(MeshStress, ThreeVcAdaptiveMeshDrains)
{
    auto topo = std::make_shared<Topology>(makeMesh(4, 4));
    auto net = buildNetwork(topo, spinCfg(3, 21),
                            RoutingKind::MinimalAdaptive);
    saturateAndDrain(*net, Pattern::Transpose, 0.8, 3000, 25000, 21);
}

TEST(MeshStress, VnetsIsolateProtocolClasses)
{
    auto topo = std::make_shared<Topology>(makeMesh(4, 4));
    NetworkConfig cfg = spinCfg(1, 31);
    cfg.vnets = 3;
    auto net = buildNetwork(topo, cfg, RoutingKind::FavorsMin);
    saturateAndDrain(*net, Pattern::UniformRandom, 0.5, 2500, 20000, 31);
}

class DragonflyStress : public ::testing::TestWithParam<StressParam>
{
};

TEST_P(DragonflyStress, SmallDragonflyOneVcDrains)
{
    const auto [seed, pattern] = GetParam();
    // p=2, a=4, h=2, g=9: 72 terminals, 36 routers -- small enough for
    // a unit test, with real global-link latencies.
    auto topo = std::make_shared<Topology>(makeDragonfly(2, 4, 2, 0));
    auto net = buildNetwork(topo, spinCfg(1, seed),
                            RoutingKind::MinimalAdaptive);
    saturateAndDrain(*net, pattern, 0.30, 2000, 60000, seed);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, DragonflyStress,
    ::testing::Values(StressParam{41, Pattern::UniformRandom},
                      StressParam{42, Pattern::BitComplement},
                      StressParam{43, Pattern::Tornado},
                      StressParam{44, Pattern::Shuffle}));

TEST(DragonflyStress, UgalSpinDrains)
{
    auto topo = std::make_shared<Topology>(makeDragonfly(2, 4, 2, 0));
    auto net = buildNetwork(topo, spinCfg(3, 51),
                            RoutingKind::UgalSpin);
    saturateAndDrain(*net, Pattern::Tornado, 0.35, 2000, 60000, 51);
}

TEST(DragonflyStress, FavorsNonMinimalDrains)
{
    auto topo = std::make_shared<Topology>(makeDragonfly(2, 4, 2, 0));
    auto net = buildNetwork(topo, spinCfg(1, 61),
                            RoutingKind::FavorsNMin);
    saturateAndDrain(*net, Pattern::BitComplement, 0.30, 2000, 80000, 61);
}

class IrregularStress : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(IrregularStress, FaultyMeshDrains)
{
    // The headline use case: an irregular (power-gated) topology where
    // no turn model applies; table-driven adaptive + SPIN just works.
    const std::uint64_t seed = GetParam();
    Random trng(seed);
    auto topo = std::make_shared<Topology>(
        makeRandomFaultyMesh(5, 5, 6, trng));
    auto net = buildNetwork(topo, spinCfg(1, seed),
                            RoutingKind::MinimalAdaptive);
    // Well past saturation for a link-starved mesh; the drain budget
    // covers the long recover-and-crawl tail that follows.
    saturateAndDrain(*net, Pattern::UniformRandom, 0.30, 2000, 60000,
                     seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IrregularStress,
                         ::testing::Values(71, 72, 73, 74, 75));

class RandomGraphStress : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RandomGraphStress, JellyfishStyleGraphDrains)
{
    const std::uint64_t seed = GetParam();
    Random trng(seed);
    auto topo = std::make_shared<Topology>(makeRandomRegular(16, 3,
                                                             trng));
    auto net = buildNetwork(topo, spinCfg(1, seed),
                            RoutingKind::MinimalAdaptive);
    saturateAndDrain(*net, Pattern::UniformRandom, 0.30, 2000, 60000,
                     seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphStress,
                         ::testing::Values(81, 82, 83));

TEST(RingStressLong, ContinuousAdversarialLoadStaysLive)
{
    // Hours of deadlock-form/resolve churn compressed: continuous
    // clockwise load on a 1-VC ring.
    auto net = ringNetwork(6, DeadlockScheme::Spin, 1, 32);
    Random rng(99);
    for (int i = 0; i < 12000; ++i) {
        if (i % 20 == 0) {
            for (NodeId s = 0; s < 6; ++s)
                net->offerPacket(net->makePacket(s, (s + 2) % 6, 0, 5));
        }
        net->step();
    }
    // Recovery churn dominates drainage here: the 1-VC clockwise ring
    // re-deadlocks continuously (hundreds of spins), so the drain
    // budget is generous.
    drain(*net, 60000);
    EXPECT_EQ(net->packetsInFlight(), 0u);
    EXPECT_GT(net->stats().spins, 0u);
}

} // namespace
} // namespace spin
