/**
 * @file
 * Telemetry subsystem tests: the JSON document model (round-trips),
 * Stats::toJson / latencyPercentile edges, the trace sinks (JSONL and
 * Chrome trace_event), tracer filters, samplers, deadlock forensics
 * cross-checked against the oracle, the bench JSON export, and the
 * hardened bench option parser.
 */

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "SpinTestUtil.hh"
#include "bench/BenchUtil.hh"
#include "deadlock/OracleDetector.hh"
#include "fault/FaultSchedule.hh"
#include "obs/Forensics.hh"
#include "obs/Json.hh"
#include "obs/Samplers.hh"
#include "obs/Tracer.hh"
#include "stats/Stats.hh"
#include "topology/Mesh.hh"
#include "traffic/SyntheticInjector.hh"

using namespace spin;
using obs::JsonValue;

// ---------------------------------------------------------------------
// JSON document model
// ---------------------------------------------------------------------

TEST(Json, ScalarRoundTrip)
{
    JsonValue o = JsonValue::object();
    o.set("i", JsonValue(std::uint64_t{9007199254740992ull - 1}));
    o.set("neg", JsonValue(std::int64_t{-42}));
    o.set("f", JsonValue(0.25));
    o.set("b", JsonValue(true));
    o.set("s", JsonValue("hi \"there\"\n\t\\"));
    o.set("n", JsonValue());

    std::string err;
    const JsonValue back = JsonValue::parse(o.dump(), &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(back["i"].asU64(), 9007199254740991ull);
    EXPECT_EQ(back["neg"].asNumber(), -42.0);
    EXPECT_EQ(back["f"].asNumber(), 0.25);
    EXPECT_TRUE(back["b"].asBool());
    EXPECT_EQ(back["s"].asString(), "hi \"there\"\n\t\\");
    EXPECT_TRUE(back["n"].isNull());
}

TEST(Json, IntegralNumbersDumpWithoutDecimalPoint)
{
    JsonValue v(std::uint64_t{123456789});
    EXPECT_EQ(v.dump(), "123456789");
    EXPECT_EQ(JsonValue(1.5).dump(), "1.5");
}

TEST(Json, PreservesInsertionOrder)
{
    JsonValue o = JsonValue::object();
    o.set("z", JsonValue(1));
    o.set("a", JsonValue(2));
    o.set("m", JsonValue(3));
    EXPECT_EQ(o.dump(), "{\"z\":1,\"a\":2,\"m\":3}");
}

TEST(Json, NestedArrayRoundTrip)
{
    JsonValue arr = JsonValue::array();
    for (int i = 0; i < 5; ++i) {
        JsonValue row = JsonValue::object();
        row.set("idx", JsonValue(i));
        arr.push(std::move(row));
    }
    const JsonValue back = JsonValue::parse(arr.dump(2));
    ASSERT_TRUE(back.isArray());
    ASSERT_EQ(back.size(), 5u);
    EXPECT_EQ(back.at(3)["idx"].asNumber(), 3.0);
}

TEST(Json, ParseRejectsGarbage)
{
    std::string err;
    EXPECT_TRUE(JsonValue::parse("{\"a\":}", &err).isNull());
    EXPECT_FALSE(err.empty());
    EXPECT_TRUE(JsonValue::parse("[1,2,]", &err).isNull());
    EXPECT_TRUE(JsonValue::parse("{} x", &err).isNull());
    EXPECT_TRUE(JsonValue::parse("", &err).isNull());
}

TEST(Json, ParseUnicodeEscape)
{
    const JsonValue v = JsonValue::parse("\"a\\u00e9b\"");
    ASSERT_TRUE(v.isString());
    EXPECT_EQ(v.asString(), "a\xc3\xa9"
                            "b");
}

TEST(Json, CategoryMaskParsing)
{
    EXPECT_EQ(obs::parseCategoryMask("all"), obs::kCatAll);
    EXPECT_EQ(obs::parseCategoryMask(""), obs::kCatAll);
    EXPECT_EQ(obs::parseCategoryMask("flit"), obs::kCatFlit);
    EXPECT_EQ(obs::parseCategoryMask("flit,spin"),
              obs::kCatFlit | obs::kCatSpin);
    EXPECT_EQ(obs::parseCategoryMask("bogus"), obs::kCatAll);
    EXPECT_STREQ(obs::categoryName(obs::kCatSpin), "spin");
}

// ---------------------------------------------------------------------
// Stats: percentile edges and JSON export
// ---------------------------------------------------------------------

TEST(StatsPercentile, EmptyHistogramReturnsZero)
{
    const Stats st;
    EXPECT_EQ(st.latencyPercentile(0.5), 0.0);
    EXPECT_EQ(st.latencyPercentile(1.0), 0.0);
}

TEST(StatsPercentile, SingleBucketInterpolates)
{
    Stats st;
    Packet pkt;
    pkt.sizeFlits = 1;
    pkt.createCycle = 0;
    pkt.injectCycle = 0;
    pkt.ejectCycle = 10; // bucket bit_width(10) = 4, range [8, 16)
    for (int i = 0; i < 4; ++i)
        st.onEject(pkt);
    // All mass in one bucket: percentiles interpolate inside [8, 16).
    const double p25 = st.latencyPercentile(0.25);
    const double p100 = st.latencyPercentile(1.0);
    EXPECT_GE(p25, 8.0);
    EXPECT_LT(p25, p100);
    EXPECT_LE(p100, 16.0);
}

TEST(StatsPercentile, FullPercentileHitsLastBucket)
{
    Stats st;
    Packet a;
    a.sizeFlits = 1;
    a.createCycle = 0;
    a.injectCycle = 0;
    a.ejectCycle = 2; // bucket [2,4)
    st.onEject(a);
    Packet b;
    b.sizeFlits = 1;
    b.createCycle = 0;
    b.injectCycle = 0;
    b.ejectCycle = 100; // bucket [64,128)
    st.onEject(b);
    const double p100 = st.latencyPercentile(1.0);
    EXPECT_GT(p100, 64.0);
    EXPECT_LE(p100, 128.0);
    // p=0.5 must stay within the first bucket.
    EXPECT_LE(st.latencyPercentile(0.5), 4.0);
}

TEST(StatsPercentile, OutOfRangeProbabilitiesClamp)
{
    Stats st;
    Packet p;
    p.sizeFlits = 1;
    p.createCycle = 0;
    p.injectCycle = 0;
    p.ejectCycle = 5;
    st.onEject(p);
    EXPECT_GT(st.latencyPercentile(-1.0), 0.0);
    EXPECT_EQ(st.latencyPercentile(2.0), st.latencyPercentile(1.0));
}

TEST(StatsJson, RoundTripsThroughParser)
{
    auto net = ringNetwork(6, DeadlockScheme::Spin);
    injectRingDeadlock(*net);
    drain(*net, 5000);
    const Stats &st = net->stats();
    ASSERT_GT(st.spins, 0u);

    std::string err;
    const JsonValue j = JsonValue::parse(st.toJson().dump(2), &err);
    ASSERT_TRUE(err.empty()) << err;

    EXPECT_EQ(j["traffic"]["packetsEjected"].asU64(), st.packetsEjected);
    EXPECT_EQ(j["traffic"]["latencySum"].asU64(), st.latencySum);
    EXPECT_EQ(j["traffic"]["maxLatency"].asU64(), st.maxLatency);
    EXPECT_EQ(j["spin"]["spins"].asU64(), st.spins);
    EXPECT_EQ(j["spin"]["probesSent"].asU64(), st.probesSent);
    EXPECT_EQ(j["spin"]["probeDropReasons"]["stale"].asU64(),
              st.probeDropStale);
    EXPECT_EQ(j["derived"]["avgLatency"].asNumber(), st.avgLatency());
    const JsonValue &hist = j["traffic"]["latencyHist"];
    ASSERT_EQ(hist.size(), st.latencyHist.size());
    for (std::size_t i = 0; i < hist.size(); ++i)
        EXPECT_EQ(hist.at(i).asU64(), st.latencyHist[i]);
}

// ---------------------------------------------------------------------
// Trace sinks
// ---------------------------------------------------------------------

namespace
{

/** Run the canonical ring deadlock with a tracer writing into @p os. */
void
runTracedDeadlock(std::unique_ptr<obs::TraceSink> sink,
                  obs::Tracer **tracer_out = nullptr)
{
    auto net = ringNetwork(6, DeadlockScheme::Spin);
    auto tracer = std::make_unique<obs::Tracer>(std::move(sink));
    obs::Tracer *raw = tracer.get();
    net->setTracer(std::move(tracer));
    injectRingDeadlock(*net);
    drain(*net, 5000);
    ASSERT_EQ(net->packetsInFlight(), 0);
    if (tracer_out)
        *tracer_out = raw;
    raw->flush();
    // net (and the tracer/sink) destruct here; ChromeTraceSink's
    // destructor writes the trailer into the caller's stream.
}

} // namespace

TEST(TraceSinks, JsonlEveryLineParsesAndCoversLifecycle)
{
    std::stringstream ss;
    runTracedDeadlock(std::make_unique<obs::JsonlSink>(ss));

    std::set<std::string> names;
    std::string line;
    int lines = 0;
    while (std::getline(ss, line)) {
        ++lines;
        std::string err;
        const JsonValue j = JsonValue::parse(line, &err);
        ASSERT_TRUE(err.empty()) << "line " << lines << ": " << err;
        ASSERT_TRUE(j.isObject());
        EXPECT_NE(j.find("t"), nullptr);
        EXPECT_NE(j.find("cat"), nullptr);
        ASSERT_NE(j.find("ev"), nullptr);
        names.insert(j["ev"].asString());
    }
    EXPECT_GT(lines, 50);
    // Flit lifecycle...
    EXPECT_TRUE(names.count("inject"));
    EXPECT_TRUE(names.count("vc_alloc"));
    EXPECT_TRUE(names.count("sa_grant"));
    EXPECT_TRUE(names.count("link_traverse"));
    EXPECT_TRUE(names.count("eject"));
    // ...and the SPIN protocol.
    EXPECT_TRUE(names.count("probe_sent"));
    EXPECT_TRUE(names.count("probe_return"));
    EXPECT_TRUE(names.count("move_sent"));
    EXPECT_TRUE(names.count("move_return"));
    EXPECT_TRUE(names.count("vc_freeze"));
    EXPECT_TRUE(names.count("spin_exec"));
    EXPECT_TRUE(names.count("spin_rotate"));
}

TEST(TraceSinks, ChromeTraceIsOneValidJsonDocument)
{
    std::stringstream ss;
    runTracedDeadlock(std::make_unique<obs::ChromeTraceSink>(ss));

    std::string err;
    const JsonValue doc = JsonValue::parse(ss.str(), &err);
    ASSERT_TRUE(err.empty()) << err;
    const JsonValue &evs = doc["traceEvents"];
    ASSERT_TRUE(evs.isArray());
    ASSERT_GT(evs.size(), 50u);
    for (std::size_t i = 0; i < evs.size(); ++i) {
        const JsonValue &e = evs.at(i);
        EXPECT_EQ(e["ph"].asString(), "X");
        EXPECT_NE(e.find("ts"), nullptr);
        EXPECT_NE(e.find("pid"), nullptr);
        EXPECT_NE(e.find("tid"), nullptr);
        EXPECT_FALSE(e["name"].asString().empty());
    }
}

TEST(TraceSinks, OpenFailureReturnsNullWithoutCrashing)
{
    // The half-constructed sink is destroyed inside open(); its
    // destructor must tolerate the never-opened stream.
    EXPECT_EQ(obs::ChromeTraceSink::open("/nonexistent/dir/t.json"),
              nullptr);
    EXPECT_EQ(obs::JsonlSink::open("/nonexistent/dir/t.jsonl"), nullptr);
}

TEST(Tracer, CategoryMaskFilters)
{
    std::stringstream ss;
    {
        auto net = ringNetwork(6, DeadlockScheme::Spin);
        auto tracer = std::make_unique<obs::Tracer>(
            std::make_unique<obs::JsonlSink>(ss), obs::kCatSpin);
        net->setTracer(std::move(tracer));
        injectRingDeadlock(*net);
        drain(*net, 5000);
        EXPECT_GT(net->trace()->recorded(), 0u);
        EXPECT_GT(net->trace()->filtered(), 0u); // flit events rejected
    }
    std::string line;
    while (std::getline(ss, line)) {
        const JsonValue j = JsonValue::parse(line);
        EXPECT_EQ(j["cat"].asString(), "spin") << line;
    }
}

TEST(Tracer, RouterRestrictionFilters)
{
    std::stringstream ss;
    {
        auto net = ringNetwork(6, DeadlockScheme::Spin);
        auto tracer = std::make_unique<obs::Tracer>(
            std::make_unique<obs::JsonlSink>(ss));
        tracer->restrictRouters({2});
        net->setTracer(std::move(tracer));
        injectRingDeadlock(*net);
        drain(*net, 5000);
    }
    int lines = 0;
    std::string line;
    while (std::getline(ss, line)) {
        ++lines;
        const JsonValue j = JsonValue::parse(line);
        const JsonValue *r = j.find("router");
        if (r) {
            EXPECT_EQ(r->asU64(), 2u) << line;
        }
    }
    EXPECT_GT(lines, 0);
}

// ---------------------------------------------------------------------
// Samplers
// ---------------------------------------------------------------------

TEST(Samplers, RingSeriesWrapsAtCapacity)
{
    obs::RingSeries s(4);
    for (int i = 0; i < 10; ++i)
        s.push(static_cast<Cycle>(i), i * 1.0);
    EXPECT_EQ(s.size(), 4u);
    EXPECT_EQ(s.total(), 10u);
    // Oldest retained is sample 6, newest is 9.
    EXPECT_EQ(s.at(0).second, 6.0);
    EXPECT_EQ(s.back(), 9.0);
}

TEST(Samplers, CaptureOccupancyDuringDeadlock)
{
    auto net = ringNetwork(6, DeadlockScheme::Spin);
    obs::SamplerConfig scfg;
    scfg.period = 8;
    net->enableSampling(scfg);
    injectRingDeadlock(*net);
    drain(*net, 5000);

    const obs::NetworkSamplers *s = net->samplers();
    ASSERT_NE(s, nullptr);
    EXPECT_GT(s->samplesTaken(), 0u);
    // While deadlocked, some router input VC held buffered flits.
    double max_occ = 0.0;
    for (RouterId r = 0; r < net->numRouters(); ++r) {
        const obs::RingSeries &occ = s->routerOccupancy(r);
        for (std::size_t i = 0; i < occ.size(); ++i)
            max_occ = std::max(max_occ, occ.at(i).second);
    }
    EXPECT_GT(max_occ, 0.0);

    // The JSON dump parses and covers every router.
    std::string err;
    const JsonValue j = JsonValue::parse(s->toJson().dump(), &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(j["routerOccupancy"].size(),
              static_cast<std::size_t>(net->numRouters()));
    EXPECT_EQ(j["linkUtilization"].size(),
              static_cast<std::size_t>(net->numLinks()));
    EXPECT_EQ(j["samplesTaken"].asU64(), s->samplesTaken());
}

// ---------------------------------------------------------------------
// Forensics
// ---------------------------------------------------------------------

TEST(Forensics, ProbeSnapshotMatchesOracleLoop)
{
    auto net = ringNetwork(6, DeadlockScheme::Spin);
    net->enableForensics();
    injectRingDeadlock(*net);

    // Step until the oracle first confirms the deadlock, then capture
    // its report for cross-checking.
    OracleDetector oracle(*net);
    DeadlockReport report;
    for (int i = 0; i < 2000 && !report.deadlocked; ++i) {
        net->step();
        report = oracle.detect();
    }
    ASSERT_TRUE(report.deadlocked);
    net->forensics()->onOracleReport(*net, report, net->now());

    // Now let SPIN recover; the probe return adds a second snapshot.
    drain(*net, 5000);
    ASSERT_EQ(net->packetsInFlight(), 0);

    const auto &records = net->forensics()->records();
    ASSERT_GE(records.size(), 2u);
    const obs::LoopSnapshot &oracle_snap = records[0];
    EXPECT_EQ(oracle_snap.origin, "oracle");
    const obs::LoopSnapshot *probe_snap = nullptr;
    for (const auto &r : records) {
        if (r.origin == "probe") {
            probe_snap = &r;
            break;
        }
    }
    ASSERT_NE(probe_snap, nullptr);

    // The probe's loop is exactly the oracle's deadlocked-router set:
    // on the 1-VC ring the deadlock covers all six routers.
    std::set<RouterId> oracle_routers(oracle_snap.routers.begin(),
                                      oracle_snap.routers.end());
    std::set<RouterId> probe_routers(probe_snap->routers.begin(),
                                     probe_snap->routers.end());
    EXPECT_EQ(probe_routers, oracle_routers);
    EXPECT_EQ(probe_snap->routers.size(), 6u);
    EXPECT_EQ(probe_snap->edges.size(), 6u);

    // Edges chain into a closed cycle.
    for (std::size_t i = 0; i < probe_snap->edges.size(); ++i) {
        const auto &e = probe_snap->edges[i];
        const auto &next =
            probe_snap->edges[(i + 1) % probe_snap->edges.size()];
        EXPECT_EQ(e.downRouter, next.router);
    }

    // DOT output names every router and draws every edge.
    const std::string dot = probe_snap->toDot();
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    for (const RouterId r : probe_snap->routers)
        EXPECT_NE(dot.find("R" + std::to_string(r)), std::string::npos);
    EXPECT_NE(dot.find("->"), std::string::npos);

    // JSON export parses.
    std::string err;
    const JsonValue j =
        JsonValue::parse(net->forensics()->toJson().dump(2), &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(j["snapshots"].size(), records.size());
}

TEST(Forensics, RecordCapDropsExcess)
{
    obs::Forensics f(1);
    auto net = ringNetwork(4, DeadlockScheme::None);
    injectRingDeadlock(*net);
    for (int i = 0; i < 500; ++i)
        net->step();
    OracleDetector oracle(*net);
    const DeadlockReport report = oracle.detect();
    ASSERT_TRUE(report.deadlocked);
    f.onOracleReport(*net, report, net->now());
    f.onOracleReport(*net, report, net->now());
    EXPECT_EQ(f.records().size(), 1u);
    EXPECT_EQ(f.dropped(), 1u);
}

// ---------------------------------------------------------------------
// Network telemetry export
// ---------------------------------------------------------------------

TEST(Telemetry, DumpParsesAndMatchesLiveState)
{
    auto net = ringNetwork(6, DeadlockScheme::Spin);
    net->enableForensics();
    net->enableSampling();
    injectRingDeadlock(*net);
    drain(*net, 5000);

    std::string err;
    const JsonValue j = JsonValue::parse(net->telemetryJson().dump(2),
                                         &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(j["cycle"].asU64(), net->now());
    EXPECT_EQ(j["config"]["numRouters"].asU64(),
              static_cast<std::uint64_t>(net->numRouters()));
    EXPECT_EQ(j["config"]["scheme"].asString(), "spin");
    EXPECT_EQ(j["stats"]["spin"]["spins"].asU64(), net->stats().spins);
    EXPECT_NE(j.find("samplers"), nullptr);
    EXPECT_NE(j.find("forensics"), nullptr);

    const std::string path =
        testing::TempDir() + "/spinnoc_telemetry_test.json";
    ASSERT_TRUE(net->dumpTelemetry(path));
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    const JsonValue file = JsonValue::parse(ss.str(), &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(file["cycle"].asU64(), net->now());
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Bench harness: JSON export and option parsing
// ---------------------------------------------------------------------

TEST(BenchJson, SweepExportMatchesSweepResult)
{
    bench::Options opt;
    opt.warmup = 200;
    opt.measure = 400;
    auto topo = std::make_shared<Topology>(makeMesh(4, 4));
    const ConfigPreset preset = meshPresets3Vc()[0];
    const bench::SweepResult res = bench::sweep(
        preset, topo, Pattern::UniformRandom, {0.05, 0.1}, opt);
    ASSERT_EQ(res.points.size(), 2u);

    std::string err;
    const JsonValue j =
        JsonValue::parse(bench::sweepToJson(res).dump(2), &err);
    ASSERT_TRUE(err.empty()) << err;
    const JsonValue &pts = j["points"];
    ASSERT_EQ(pts.size(), res.points.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
        EXPECT_EQ(pts.at(i)["rate"].asNumber(), res.points[i].rate);
        EXPECT_EQ(pts.at(i)["latency"].asNumber(),
                  res.points[i].latency);
        EXPECT_EQ(pts.at(i)["throughput"].asNumber(),
                  res.points[i].throughput);
        EXPECT_EQ(pts.at(i)["saturated"].asBool(),
                  res.points[i].saturated);
    }
    EXPECT_EQ(j["saturationRate"].asNumber(), res.saturationRate);
    EXPECT_GT(res.points[0].throughput, 0.0);
}

TEST(BenchJson, ReporterCollectsSweepsUnderRoot)
{
    bench::Options opt;
    bench::BenchReporter report("unit_test_bench", opt);
    bench::SweepResult res;
    res.points.push_back({0.1, 20.0, 0.099, false});
    res.saturationRate = 0.1;
    report.addSweep("cfgA", "uniform", res);

    std::string err;
    const JsonValue j = JsonValue::parse(report.root().dump(2), &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(j["bench"].asString(), "unit_test_bench");
    ASSERT_EQ(j["sweeps"].size(), 1u);
    EXPECT_EQ(j["sweeps"].at(0)["config"].asString(), "cfgA");
    EXPECT_EQ(j["sweeps"].at(0)["pattern"].asString(), "uniform");
    EXPECT_EQ(j["sweeps"].at(0)["points"].size(), 1u);
}

namespace
{

bench::Options
parseArgs(std::vector<const char *> argv, bool &ok, std::string &err)
{
    argv.insert(argv.begin(), "bench");
    bench::Options o;
    ok = bench::Options::parseInto(
        o, static_cast<int>(argv.size()),
        const_cast<char **>(argv.data()), err);
    return o;
}

} // namespace

TEST(BenchOptions, RejectsUnknownFlag)
{
    bool ok = true;
    std::string err;
    parseArgs({"--bogus"}, ok, err);
    EXPECT_FALSE(ok);
    EXPECT_NE(err.find("--bogus"), std::string::npos);
}

TEST(BenchOptions, RejectsMissingValue)
{
    bool ok = true;
    std::string err;
    parseArgs({"--warmup"}, ok, err);
    EXPECT_FALSE(ok);
    EXPECT_NE(err.find("--warmup"), std::string::npos);
}

TEST(BenchOptions, ParsesAllFlags)
{
    bool ok = false;
    std::string err;
    const bench::Options o = parseArgs(
        {"--warmup", "100", "--measure", "300", "--seed", "77", "--json",
         "out.json", "--trace", "t.json"},
        ok, err);
    ASSERT_TRUE(ok) << err;
    EXPECT_EQ(o.warmup, 100u);
    EXPECT_EQ(o.measure, 300u);
    EXPECT_TRUE(o.seedSet);
    EXPECT_EQ(o.seed, 77u);
    EXPECT_EQ(o.jsonPath, "out.json");
    EXPECT_EQ(o.tracePath, "t.json");
}

TEST(BenchOptions, FastQuartersWindowsAndSeedAppliesToPreset)
{
    bool ok = false;
    std::string err;
    const bench::Options o =
        parseArgs({"--fast", "--seed", "5"}, ok, err);
    ASSERT_TRUE(ok) << err;
    EXPECT_EQ(o.warmup, 500u);
    EXPECT_EQ(o.measure, 1000u);

    ConfigPreset p = meshPresets3Vc()[0];
    o.apply(p);
    EXPECT_EQ(p.cfg.seed, 5u);

    bench::Options no_seed;
    p.cfg.seed = 99;
    no_seed.apply(p);
    EXPECT_EQ(p.cfg.seed, 99u); // no --seed: preset untouched
}

// ---------------------------------------------------------------------
// Disabled-path guarantee
// ---------------------------------------------------------------------

TEST(Telemetry, DisabledTracingChangesNothing)
{
    // Same workload with and without telemetry: identical simulation
    // outcome (tracing must be purely observational).
    auto plain = ringNetwork(6, DeadlockScheme::Spin);
    injectRingDeadlock(*plain);
    const Cycle t_plain = drain(*plain, 5000);

    std::stringstream ss;
    auto traced = ringNetwork(6, DeadlockScheme::Spin);
    traced->setTracer(std::make_unique<obs::Tracer>(
        std::make_unique<obs::JsonlSink>(ss)));
    traced->enableForensics();
    traced->enableSampling();
    injectRingDeadlock(*traced);
    const Cycle t_traced = drain(*traced, 5000);

    EXPECT_EQ(t_plain, t_traced);
    EXPECT_EQ(plain->stats().spins, traced->stats().spins);
    EXPECT_EQ(plain->stats().latencySum, traced->stats().latencySum);
    EXPECT_EQ(plain->stats().probesSent, traced->stats().probesSent);
}

// ---------------------------------------------------------------------
// Deterministic Stats JSON
// ---------------------------------------------------------------------

TEST(StatsJson, KeyOrderIsDeterministic)
{
    // Two independent identical runs must serialize byte-identically:
    // downstream tools (spin_report, check_sweep_baseline) diff stats
    // dumps textually, so key order is part of the contract.
    const auto run = [] {
        auto net = ringNetwork(6, DeadlockScheme::Spin);
        injectRingDeadlock(*net);
        drain(*net, 5000);
        return net->stats().toJson().dump();
    };
    const std::string a = run();
    EXPECT_EQ(a, run());

    // The top-level sections keep their documented insertion order.
    std::string err;
    const JsonValue j = JsonValue::parse(a, &err);
    ASSERT_TRUE(err.empty()) << err;
    std::vector<std::string> keys;
    for (const auto &m : j.members())
        keys.push_back(m.first);
    const std::vector<std::string> expected = {
        "traffic", "spin", "baseline", "faults", "reliability",
        "derived", "windowStart"};
    EXPECT_EQ(keys, expected);

    // Percentiles on a run with no retired packets stay well-defined.
    const Stats empty;
    EXPECT_EQ(empty.latencyPercentile(0.5), 0.0);
    EXPECT_EQ(empty.toJson()["derived"]["p99Latency"].asNumber(), 0.0);
}

// ---------------------------------------------------------------------
// Warmup reset semantics
// ---------------------------------------------------------------------

TEST(Samplers, WarmupResetDropsSeriesAndRebaselines)
{
    auto net = ringNetwork(6, DeadlockScheme::Spin);
    obs::SamplerConfig scfg;
    scfg.period = 8;
    net->enableSampling(scfg);
    injectRingDeadlock(*net);
    drain(*net, 5000);

    const obs::NetworkSamplers *s = net->samplers();
    ASSERT_NE(s, nullptr);
    ASSERT_GT(s->samplesTaken(), 0u);

    // beginMeasurement drops every warmup sample...
    net->beginMeasurement();
    EXPECT_EQ(s->samplesTaken(), 0u);
    for (RouterId r = 0; r < net->numRouters(); ++r) {
        EXPECT_EQ(s->routerOccupancy(r).size(), 0u);
        EXPECT_EQ(s->routerCreditStalls(r).size(), 0u);
    }
    for (int l = 0; l < net->numLinks(); ++l)
        EXPECT_EQ(s->linkUtilization(l).size(), 0u);

    // ...and the samplers keep working afterwards, with window deltas
    // measured against the post-reset baseline (a busy-fraction above
    // 1.0 would betray a stale cumulative baseline).
    injectRingDeadlock(*net);
    drain(*net, 5000);
    EXPECT_GT(s->samplesTaken(), 0u);
    for (int l = 0; l < net->numLinks(); ++l) {
        const obs::RingSeries &u = s->linkUtilization(l);
        for (std::size_t i = 0; i < u.size(); ++i) {
            EXPECT_GE(u.at(i).second, 0.0);
            EXPECT_LE(u.at(i).second, 1.0);
        }
    }
}

namespace
{

/** The warmup-reset sampler workload at a given step-loop thread
 *  count, reduced to its full telemetry document. */
std::string
sampledTelemetry(int threads)
{
    auto net = ringNetwork(6, DeadlockScheme::Spin, 1, 32, threads);
    obs::SamplerConfig scfg;
    scfg.period = 8;
    net->enableSampling(scfg);
    injectRingDeadlock(*net);
    drain(*net, 5000);
    net->beginMeasurement();
    injectRingDeadlock(*net);
    drain(*net, 5000);
    return net->telemetryJson().dump(2);
}

} // namespace

TEST(Samplers, WarmupResetIdenticalAcrossThreadCounts)
{
    // Sampler series are cleared at the warmup boundary and rebuilt
    // from the post-reset baseline; under sharded stepping the series
    // (and everything else in the telemetry document) must come out
    // byte-identical for any thread count (docs/SCALING.md).
    const std::string base = sampledTelemetry(1);
    EXPECT_EQ(sampledTelemetry(3), base);
    EXPECT_EQ(sampledTelemetry(6), base);
}

TEST(Samplers, RingSeriesClearEmptiesRetainedAndTotal)
{
    obs::RingSeries s(4);
    for (int i = 0; i < 10; ++i)
        s.push(static_cast<Cycle>(i), i * 1.0);
    ASSERT_EQ(s.size(), 4u);
    s.clear();
    EXPECT_EQ(s.size(), 0u);
    EXPECT_EQ(s.total(), 0u);
    // Post-clear pushes behave like a fresh ring (head rewound).
    s.push(100, 42.0);
    EXPECT_EQ(s.size(), 1u);
    EXPECT_EQ(s.at(0).first, 100u);
    EXPECT_EQ(s.back(), 42.0);
}

// ---------------------------------------------------------------------
// Fault-category tracing
// ---------------------------------------------------------------------

TEST(Tracer, FaultCategoryMaskPassesInjectorEvents)
{
    std::string perr;
    const JsonValue doc = JsonValue::parse(
        R"({"schema": "spin-faults/v1",
            "events": [{"kind": "corrupt", "cycle": 4,
                        "src": 0, "dst": 1}]})",
        &perr);
    ASSERT_TRUE(perr.empty()) << perr;
    fault::FaultSchedule fs;
    std::string err;
    ASSERT_TRUE(fault::FaultSchedule::fromJson(doc, fs, err)) << err;

    std::stringstream ss;
    {
        auto net = ringNetwork(6, DeadlockScheme::Spin);
        net->setTracer(std::make_unique<obs::Tracer>(
            std::make_unique<obs::JsonlSink>(ss), obs::kCatFault));
        net->attachFaults(std::move(fs));
        injectRingDeadlock(*net);
        drain(*net, 5000);
        // Flit/spin/link events all crossed the tracer and were
        // rejected by the category mask.
        EXPECT_GT(net->trace()->filtered(), 0u);
        EXPECT_GT(net->trace()->recorded(), 0u);
    }
    int lines = 0;
    bool saw_arm = false;
    std::string line;
    while (std::getline(ss, line)) {
        ++lines;
        const JsonValue j = JsonValue::parse(line);
        EXPECT_EQ(j["cat"].asString(), "fault") << line;
        if (j["ev"].asString() == "corrupt_arm")
            saw_arm = true;
    }
    EXPECT_GT(lines, 0);
    EXPECT_TRUE(saw_arm); // the schedule application itself is traced
}

// ---------------------------------------------------------------------
// Forensics on a clean run
// ---------------------------------------------------------------------

TEST(Forensics, CleanRunExportsEmptyButValidJson)
{
    auto net = ringNetwork(6, DeadlockScheme::Spin);
    net->enableForensics();
    // Light, non-deadlocking traffic: one short packet.
    net->offerPacket(net->makePacket(0, 2, 0, 3));
    drain(*net, 5000);
    EXPECT_EQ(net->packetsInFlight(), 0);
    EXPECT_EQ(net->stats().spins, 0u);

    const obs::Forensics *f = net->forensics();
    ASSERT_NE(f, nullptr);
    std::string err;
    const JsonValue j = JsonValue::parse(f->toJson().dump(2), &err);
    ASSERT_TRUE(err.empty()) << err;
    EXPECT_EQ(j["dropped"].asU64(), 0u);
    ASSERT_NE(j.find("snapshots"), nullptr);
    EXPECT_EQ(j["snapshots"].size(), 0u);
}
