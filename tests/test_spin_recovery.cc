/**
 * @file
 * Integration tests: the full SPIN recovery pipeline on deterministic
 * deadlocks -- detection, probe traversal, move, the synchronized spin,
 * probe_move, kill_move -- validated against the oracle detector and
 * the paper's theorem bounds.
 */

#include <gtest/gtest.h>

#include "core/SpinManager.hh"
#include "deadlock/OracleDetector.hh"
#include "tests/SpinTestUtil.hh"

namespace spin
{
namespace
{

TEST(RingDeadlock, FormsWithoutRecovery)
{
    auto net = ringNetwork(4, DeadlockScheme::None);
    injectRingDeadlock(*net);
    net->run(300);
    // Nothing can move: the oracle sees the 4-member cycle and nothing
    // ever ejects.
    OracleDetector oracle(*net);
    const DeadlockReport rep = oracle.detect();
    EXPECT_TRUE(rep.deadlocked);
    EXPECT_EQ(rep.members.size(), 4u);
    EXPECT_EQ(net->stats().packetsEjected, 0u);
    EXPECT_EQ(net->packetsInFlight(), 4u);

    // It persists forever.
    net->run(1000);
    EXPECT_TRUE(oracle.detect().deadlocked);
    EXPECT_EQ(net->stats().packetsEjected, 0u);
}

TEST(RingDeadlock, SpinResolvesIt)
{
    auto net = ringNetwork(4, DeadlockScheme::Spin);
    injectRingDeadlock(*net);
    drain(*net, 3000);

    EXPECT_EQ(net->packetsInFlight(), 0u);
    EXPECT_EQ(net->stats().packetsEjected, 4u);
    EXPECT_GE(net->stats().spins, 1u);
    OracleDetector oracle(*net);
    EXPECT_FALSE(oracle.detect().deadlocked);
}

TEST(RingDeadlock, TheoremBoundMinimalRouting)
{
    // Paper theorem, Case I: a deadlocked ring of length m under
    // minimal routing resolves within m - 1 spins. Here m = 4 and each
    // packet is one hop from its destination, so one spin suffices;
    // assert the hard bound and that no packet rotated more than m - 1
    // times.
    auto net = ringNetwork(4, DeadlockScheme::Spin);
    injectRingDeadlock(*net);
    std::vector<PacketPtr> pkts;
    drain(*net, 3000);

    EXPECT_LE(net->stats().spins, 3u);
    EXPECT_GE(net->stats().spins, 1u);
    // Each of the 4 packets rotates at most m - 1 times.
    EXPECT_LE(net->stats().spinsOfEjected, 4u * 3u);
}

TEST(RingDeadlock, ProbeTracesTheWholeLoop)
{
    auto net = ringNetwork(6, DeadlockScheme::Spin, 1, 64);
    // 6 packets, two hops each: cycle of length 6.
    for (NodeId i = 0; i < 6; ++i)
        net->offerPacket(net->makePacket(i, (i + 2) % 6, 0, 5));

    // Run until some router latches a loop.
    const SpinManager *mgr = net->spinManager();
    int loop_hops = 0;
    Cycle loop_lat = 0;
    for (int i = 0; i < 2000 && loop_hops == 0; ++i) {
        net->step();
        for (RouterId r = 0; r < 6; ++r) {
            const LoopBuffer &lb = mgr->unit(r).loopBuffer();
            if (lb.valid()) {
                loop_hops = lb.loopHops();
                loop_lat = lb.loopLatency();
                break;
            }
        }
    }
    ASSERT_GT(loop_hops, 0) << "no probe ever returned";
    EXPECT_EQ(loop_hops, 6);     // all six routers in the chain
    EXPECT_EQ(loop_lat, 6u);     // six 1-cycle links
    drain(*net, 4000);
    EXPECT_EQ(net->packetsInFlight(), 0u);
}

TEST(RingDeadlock, RepeatedDeadlocksKeepResolving)
{
    auto net = ringNetwork(4, DeadlockScheme::Spin);
    for (int round = 0; round < 5; ++round) {
        injectRingDeadlock(*net);
        drain(*net, 4000);
        ASSERT_EQ(net->packetsInFlight(), 0u) << "round " << round;
    }
    EXPECT_EQ(net->stats().packetsEjected, 20u);
    EXPECT_GE(net->stats().spins, 5u);
}

TEST(RingDeadlock, LongerRingResolves)
{
    auto net = ringNetwork(10, DeadlockScheme::Spin);
    for (NodeId i = 0; i < 10; ++i)
        net->offerPacket(net->makePacket(i, (i + 3) % 10, 0, 5));
    drain(*net, 8000);
    EXPECT_EQ(net->packetsInFlight(), 0u);
    EXPECT_EQ(net->stats().packetsEjected, 10u);
    EXPECT_GE(net->stats().spins, 1u);
}

TEST(RingDeadlock, MultiVcRingResolves)
{
    // Two VCs double the buffers but the cyclic CDG remains; fill both
    // VC layers.
    auto net = ringNetwork(4, DeadlockScheme::Spin, 2);
    injectRingDeadlock(*net);
    injectRingDeadlock(*net);
    drain(*net, 6000);
    EXPECT_EQ(net->packetsInFlight(), 0u);
    EXPECT_EQ(net->stats().packetsEjected, 8u);
}

TEST(RingDeadlock, SpinCycleArithmetic)
{
    // The committed spin cycle is (move emission) + 2 * loop latency
    // (paper Sec. IV-B2). Observe a frozen router's victim context.
    auto net = ringNetwork(4, DeadlockScheme::Spin, 1, 64);
    injectRingDeadlock(*net);
    const SpinManager *mgr = net->spinManager();
    bool checked = false;
    for (int i = 0; i < 3000 && !checked; ++i) {
        net->step();
        for (RouterId r = 0; r < 4; ++r) {
            const SpinUnit &u = mgr->unit(r);
            if (u.victim().active && u.loopBuffer().valid()) {
                // Initiator armed: spin cycle is 2*LL past the move.
                EXPECT_EQ(u.victim().spinCycle % 1, 0u); // well-formed
                EXPECT_GT(u.victim().spinCycle, net->now());
                EXPECT_LE(u.victim().spinCycle,
                          net->now() + 2 * u.loopBuffer().loopLatency()
                          + 2);
                checked = true;
                break;
            }
        }
    }
    EXPECT_TRUE(checked);
    drain(*net, 3000);
    EXPECT_EQ(net->packetsInFlight(), 0u);
}

TEST(RingDeadlock, FrozenStateObservable)
{
    auto net = ringNetwork(4, DeadlockScheme::Spin, 1, 64);
    injectRingDeadlock(*net);
    const SpinManager *mgr = net->spinManager();
    bool saw_frozen = false, saw_fwd = false;
    for (int i = 0; i < 3000; ++i) {
        net->step();
        for (RouterId r = 0; r < 4; ++r) {
            const SpinState s = mgr->unit(r).paperState();
            saw_frozen |= s == SpinState::Frozen;
            saw_fwd |= s == SpinState::ForwardProgress;
        }
        if (net->packetsInFlight() == 0)
            break;
    }
    EXPECT_TRUE(saw_frozen);
    EXPECT_TRUE(saw_fwd);
}

TEST(RingDeadlock, StatsAreConsistent)
{
    auto net = ringNetwork(4, DeadlockScheme::Spin);
    injectRingDeadlock(*net);
    drain(*net, 4000);
    const Stats &st = net->stats();
    EXPECT_GE(st.probesSent, st.probesReturned);
    EXPECT_GE(st.movesSent, st.movesReturned);
    EXPECT_GE(st.spins, st.falsePositiveSpins);
    EXPECT_GT(st.packetsRotated, 0u);
    // A genuine deadlock: the first spin must not be a false positive.
    EXPECT_LT(st.falsePositiveSpins, st.spins);
}

TEST(RingDeadlock, WithThreeVcsStillDetected)
{
    // Probes are dropped unless *all* VCs at the in-port are active, so
    // the deadlock must fill every VC before recovery starts; three
    // rounds of the workload do that.
    auto net = ringNetwork(4, DeadlockScheme::Spin, 3);
    for (int round = 0; round < 3; ++round)
        injectRingDeadlock(*net);
    drain(*net, 10000);
    EXPECT_EQ(net->packetsInFlight(), 0u);
    EXPECT_EQ(net->stats().packetsEjected, 12u);
}

} // namespace
} // namespace spin
