/**
 * @file
 * Corner-case tests for the SPIN protocol machinery itself: the
 * figure-"8" folded loop (paper Fig. 5b), overlapping recoveries
 * (Fig. 5a), kill_move cancellation, vnet isolation of probes, the
 * defensive rotation fixpoint, and the SM contention ordering.
 */

#include <gtest/gtest.h>

#include "core/SpinManager.hh"
#include "deadlock/Invariants.hh"
#include "deadlock/OracleDetector.hh"
#include "tests/SpinTestUtil.hh"
#include "topology/Mesh.hh"
#include "topology/Torus.hh"
#include "traffic/SyntheticInjector.hh"

namespace spin
{
namespace
{

/**
 * Routing driven by a per-(router, destRouter) next-port table the test
 * supplies -- lets tests wire arbitrary dependency shapes (folded
 * loops, shared loops) deterministically.
 */
class TableRouting : public RoutingAlgorithm
{
  public:
    using Key = std::pair<RouterId, RouterId>;

    std::string name() const override { return "table"; }

    void
    set(RouterId at, RouterId dest, PortId port)
    {
        table_[{at, dest}] = port;
    }

    void
    candidates(const Packet &pkt, const Router &r, RouterId target,
               std::vector<PortId> &out) const override
    {
        out.clear();
        const auto it = table_.find({r.id(), target});
        if (it != table_.end()) {
            out.push_back(it->second);
            return;
        }
        // Fallback: any minimal port.
        const auto &ports = net_->topo().minimalPorts(r.id(), target);
        out.push_back(ports.front());
        (void)pkt;
    }

  private:
    std::map<Key, PortId> table_;
};

NetworkConfig
oneVcSpin(Cycle t_dd = 32)
{
    NetworkConfig cfg;
    cfg.vnets = 1;
    cfg.vcsPerVnet = 1;
    cfg.vcDepth = 5;
    cfg.maxPacketSize = 5;
    cfg.scheme = DeadlockScheme::Spin;
    cfg.tDd = t_dd;
    return cfg;
}

TEST(SpinCorners, FigureEightFoldedLoop)
{
    // 3x3 mesh. Two 4-router loops sharing router 4 (the center):
    //   loop A: 0 -E-> 1 -N-> 4 -W-> 3 -S-> 0
    //   loop B: 4 -E-> 5 -N-> 8 -W-> 7 -S-> 4
    // One packet per loop edge, each wanting to continue 2 edges
    // around its loop: a folded "8" through the center.
    auto topo = std::make_shared<Topology>(makeMesh(3, 3));
    auto routing = std::make_unique<TableRouting>();
    TableRouting *tr = routing.get();
    // Loop A cycle: edges 0->1->4->3->0 (E,N,W,S).
    // Loop B cycle: edges 4->5->8->7->4 (E,N,W,S).
    const RouterId loopA[4] = {0, 1, 4, 3};
    const RouterId loopB[4] = {4, 5, 8, 7};
    for (int i = 0; i < 4; ++i) {
        // Packet on edge i targets the router two edges ahead; the
        // table routes along the loop.
        for (int k = 0; k < 4; ++k) {
            const RouterId at = loopA[k];
            const RouterId nxt = loopA[(k + 1) % 4];
            const PortId port =
                nxt == at + 1 ? MeshInfo::kEast
                : nxt == at - 1 ? MeshInfo::kWest
                : nxt == at + 3 ? MeshInfo::kNorth
                : MeshInfo::kSouth;
            for (int d = 0; d < 4; ++d)
                tr->set(at, loopA[d], port);
        }
        for (int k = 0; k < 4; ++k) {
            const RouterId at = loopB[k];
            const RouterId nxt = loopB[(k + 1) % 4];
            const PortId port =
                nxt == at + 1 ? MeshInfo::kEast
                : nxt == at - 1 ? MeshInfo::kWest
                : nxt == at + 3 ? MeshInfo::kNorth
                : MeshInfo::kSouth;
            for (int d = 0; d < 4; ++d) {
                if (at != 4 || (loopB[d] != loopA[0] &&
                                loopB[d] != loopA[1]))
                    tr->set(at, loopB[d], port);
            }
        }
    }
    // Fix the table at router 4 for loop A destinations (overwritten
    // above): loop A traffic at 4 goes West.
    for (int d = 0; d < 4; ++d)
        tr->set(4, loopA[d], MeshInfo::kWest);

    Network net(topo, oneVcSpin(), std::move(routing));

    // One 5-flit packet per loop edge, destination two loop edges on.
    for (int k = 0; k < 4; ++k) {
        net.offerPacket(net.makePacket(loopA[k], loopA[(k + 2) % 4], 0,
                                       5));
        if (loopB[k] != 4) // center NIC would collide with loop A src
            net.offerPacket(net.makePacket(loopB[k], loopB[(k + 2) % 4],
                                           0, 5));
    }

    Cycle start = net.now();
    while (net.packetsInFlight() > 0 && net.now() - start < 20000)
        net.step();
    EXPECT_EQ(net.packetsInFlight(), 0u);
    EXPECT_FALSE(OracleDetector(net).detect().deadlocked);
}

TEST(SpinCorners, TwoDisjointLoopsResolveInParallel)
{
    // Two independent 4-rings in one network (via a 4x4 torus's rows):
    // use the plain ring test twice in one larger ring instead -- an
    // 8-ring carrying two separate 4-cycles cannot exist, so place two
    // deadlock workloads far apart on a 12-ring.
    auto net = ringNetwork(12, DeadlockScheme::Spin, 1, 24);
    // Workload A on routers 0..3, workload B on routers 6..9: each
    // node sends 2 hops clockwise, filling two disjoint arcs.
    for (NodeId i = 0; i < 4; ++i)
        net->offerPacket(net->makePacket(i, (i + 2) % 12, 0, 5));
    for (NodeId i = 6; i < 10; ++i)
        net->offerPacket(net->makePacket(i, (i + 2) % 12, 0, 5));
    drain(*net, 20000);
    EXPECT_EQ(net->packetsInFlight(), 0u);
    EXPECT_EQ(net->stats().packetsEjected, 8u);
}

TEST(SpinCorners, ProbesNeverCrossVnets)
{
    // Fill vnet 0 with the ring deadlock while vnet 1 stays idle; with
    // vnet-scoped probes the recovery must proceed even though vnet 1
    // VCs at every port are idle.
    auto topo = std::make_shared<Topology>(makeRing(4));
    NetworkConfig cfg = oneVcSpin();
    cfg.vnets = 2;
    auto net = std::make_unique<Network>(
        topo, cfg, std::make_unique<ClockwiseRing>());
    for (NodeId i = 0; i < 4; ++i)
        net->offerPacket(net->makePacket(i, (i + 2) % 4, 0, 5));
    drain(*net, 4000);
    EXPECT_EQ(net->packetsInFlight(), 0u);
    EXPECT_GE(net->stats().spins, 1u);
}

TEST(SpinCorners, KillMoveReleasesAbortedRecovery)
{
    // Force a move to fail: after the probe returns, eject the packet
    // the initiator probed... hard to stage externally, so instead run
    // a congested-but-live workload where kills are frequent and
    // verify no VC stays frozen afterward.
    auto net = ringNetwork(8, DeadlockScheme::Spin, 1, 8);
    Random rng(5);
    for (int i = 0; i < 4000; ++i) {
        if (i % 4 == 0) {
            const NodeId s = static_cast<NodeId>(rng.below(8));
            net->offerPacket(net->makePacket(s, (s + 3) % 8, 0, 5));
        }
        net->step();
    }
    drain(*net, 30000);
    EXPECT_EQ(net->packetsInFlight(), 0u);
    for (RouterId r = 0; r < 8; ++r) {
        for (PortId p = 0; p < 3; ++p) {
            EXPECT_FALSE(net->router(r).input(p).vc(0).frozen)
                << "router " << r << " port " << p;
        }
        EXPECT_FALSE(net->spinManager()->unit(r).victim().active);
    }
}

TEST(SpinCorners, TorusHighLoadNoFrozenLeaks)
{
    auto topo = std::make_shared<Topology>(makeTorus(4, 4));
    auto net = buildNetwork(topo, oneVcSpin(64),
                            RoutingKind::MinimalAdaptive);
    InjectorConfig icfg;
    icfg.injectionRate = 0.5;
    icfg.seed = 77;
    SyntheticInjector inj(*net, Pattern::Tornado, icfg);
    for (int i = 0; i < 5000; ++i) {
        inj.tick();
        net->step();
    }
    drain(*net, 40000);
    EXPECT_EQ(net->packetsInFlight(), 0u);
    // No victim context may survive drainage.
    for (RouterId r = 0; r < 16; ++r)
        EXPECT_FALSE(net->spinManager()->unit(r).victim().active);
}

TEST(SpinCorners, StatsDropReasonsSumToDropped)
{
    auto net = ringNetwork(6, DeadlockScheme::Spin, 1, 16);
    for (NodeId i = 0; i < 6; ++i)
        net->offerPacket(net->makePacket(i, (i + 2) % 6, 0, 5));
    drain(*net, 6000);
    const Stats &st = net->stats();
    EXPECT_EQ(st.probesDropped,
              st.probeDropPriority + st.probeDropInactive +
              st.probeDropNoDep + st.probeDropHops + st.probeDropStale);
}

TEST(SpinCorners, SmLinkContentionKeepsHigherPriorityClass)
{
    // White-box: schedule a probe and a move onto the same link in the
    // same cycle; the move class must win and the probe must be
    // counted as a contention drop.
    auto net = ringNetwork(4, DeadlockScheme::Spin);
    SpinManager *mgr = net->spinManager();

    SpecialMsg probe;
    probe.type = SmType::Probe;
    probe.sender = 0;
    probe.sendCycle = 1;
    probe.path = {RingInfo::kCw};

    SpecialMsg kill; // same class priority as move
    kill.type = SmType::KillMove;
    kill.sender = 1;
    kill.sendCycle = 1;
    kill.path = {RingInfo::kCw, RingInfo::kCw};
    kill.pathIdx = 1;

    mgr->scheduleSend(1, SmSend{probe, 0, RingInfo::kCw});
    mgr->scheduleSend(1, SmSend{kill, 0, RingInfo::kCw});
    net->run(3);
    EXPECT_EQ(net->stats().smContentionDrops, 1u);
    // The surviving kill traversed the link: counted as a move-class
    // use on link 0->1.
    const Link *l = net->outLinkOf(0, RingInfo::kCw);
    ASSERT_NE(l, nullptr);
    EXPECT_EQ(l->moveUses(), 1u);
    EXPECT_EQ(l->probeUses(), 0u);
}

// ---------------------------------------------------------------------
// Counter-probe collision corners. These interleavings were found by
// exhaustively exploring ring4 with spin_model (see docs/VERIFICATION.md)
// and are pinned here as deterministic regressions: symmetric detection
// launches counter-probes that collide in flight, and the rotating
// priority filter must serialize them to a single committed spin.
// ---------------------------------------------------------------------

TEST(SpinCorners, CounterProbesSerializedByPriority)
{
    // All four routers block at once on the symmetric ring, so their
    // detection timers expire together and four counter-probes chase
    // each other around the loop. Exactly one may win per rotation.
    auto net = ringNetwork(4, DeadlockScheme::Spin);
    injectRingDeadlock(*net);
    drain(*net, 4000);
    const Stats &st = net->stats();
    EXPECT_EQ(net->packetsInFlight(), 0u);
    EXPECT_GT(st.probesSent, 1u);          // the collision happened
    EXPECT_GT(st.probeDropPriority, 0u);   // losers filtered in transit
    EXPECT_GT(st.spins, 0u);
    EXPECT_TRUE(auditNetwork(*net).clean());
}

TEST(SpinCorners, DelayedCounterProbeStillSerializes)
{
    // spin_model interleaving: hold the first probe launch back one
    // cycle, desynchronizing the otherwise symmetric collision. The
    // survivor changes but the outcome must not: one committed spin,
    // full drain, no frozen leak.
    auto net = ringNetwork(4, DeadlockScheme::Spin);
    SpinManager *mgr = net->spinManager();
    ASSERT_NE(mgr, nullptr);
    int delays = 0;
    mgr->setSmHook([&](const SmSend &send, Cycle) {
        if (send.sm.type == SmType::Probe && delays == 0) {
            ++delays;
            return SmAction::Delay;
        }
        return SmAction::Deliver;
    });
    injectRingDeadlock(*net);
    drain(*net, 4000);
    EXPECT_EQ(delays, 1);
    EXPECT_EQ(net->packetsInFlight(), 0u);
    EXPECT_GT(net->stats().spins, 0u);
    EXPECT_TRUE(auditNetwork(*net).clean());
}

TEST(SpinCorners, DroppedProbesForceRetryUntilRecovery)
{
    // Lossy collision: the first six probe launches vanish outright
    // (model action Drop). Detection must re-arm, re-probe on the next
    // t_DD expiry, and eventually commit a spin anyway.
    auto net = ringNetwork(4, DeadlockScheme::Spin);
    SpinManager *mgr = net->spinManager();
    ASSERT_NE(mgr, nullptr);
    int drops = 0;
    mgr->setSmHook([&](const SmSend &send, Cycle) {
        if (send.sm.type == SmType::Probe && drops < 6) {
            ++drops;
            return SmAction::Drop;
        }
        return SmAction::Deliver;
    });
    injectRingDeadlock(*net);
    drain(*net, 8000);
    EXPECT_EQ(drops, 6);
    EXPECT_EQ(net->packetsInFlight(), 0u);
    EXPECT_GT(net->stats().spins, 0u);
    EXPECT_TRUE(auditNetwork(*net).clean());
}

TEST(SpinCorners, LateOwnProbeReturnIsDroppedAsStale)
{
    // White-box pin of the guard the model checker leans on: a
    // router's own probe arriving while its recovery is already in
    // flight (MoveWait here) must be classified stale and dropped, not
    // double-accepted (paper Sec. IV-C2, last question).
    auto net = ringNetwork(4, DeadlockScheme::Spin);
    SpinManager *mgr = net->spinManager();
    ASSERT_NE(mgr, nullptr);
    net->run(1);
    FsmSnapshot s;
    s.state = InitState::MoveWait;
    mgr->unit(0).restore(s, net->now());

    SpecialMsg probe;
    probe.type = SmType::Probe;
    probe.sender = 0;
    probe.sendCycle = net->now();
    probe.path = {RingInfo::kCw};
    mgr->scheduleSend(net->now() + 1, SmSend{probe, 3, RingInfo::kCw});
    net->run(5);
    EXPECT_EQ(net->stats().probeDropStale, 1u);
    EXPECT_EQ(net->stats().probesDropped, 1u);

    mgr->unit(0).restore(FsmSnapshot{}, net->now());
}

TEST(SpinCorners, RecoveryLatencyIsBoundedOnSmallRing)
{
    // Detection + probe + move + 2*LL: with tDD=32 and LL=4, the whole
    // recovery must complete well within 4 * tDD of formation.
    auto net = ringNetwork(4, DeadlockScheme::Spin, 1, 32);
    injectRingDeadlock(*net);
    const Cycle spent = drain(*net, 4000);
    EXPECT_EQ(net->packetsInFlight(), 0u);
    EXPECT_LT(spent, 4u * 32u + 100u);
}

} // namespace
} // namespace spin
