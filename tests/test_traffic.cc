/**
 * @file
 * Unit tests: traffic patterns (permutation properties, mesh-specific
 * forms), the synthetic injector's rate accuracy and packet mix, and
 * the coherence request/response generator.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "network/NetworkBuilder.hh"
#include "topology/Dragonfly.hh"
#include "topology/Mesh.hh"
#include "traffic/CoherenceTraffic.hh"
#include "traffic/SyntheticInjector.hh"
#include "traffic/TrafficPattern.hh"

namespace spin
{
namespace
{

class PermutationPattern : public ::testing::TestWithParam<Pattern>
{
};

TEST_P(PermutationPattern, IsABijectionOnMesh64)
{
    const Topology topo = makeMesh(8, 8);
    TrafficPattern tp(GetParam(), topo);
    Random rng(1);
    std::set<NodeId> dests;
    for (NodeId s = 0; s < 64; ++s) {
        const NodeId d = tp.dest(s, rng);
        EXPECT_GE(d, 0);
        EXPECT_LT(d, 64);
        dests.insert(d);
    }
    EXPECT_EQ(dests.size(), 64u) << toString(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllPermutations, PermutationPattern,
                         ::testing::Values(Pattern::BitComplement,
                                           Pattern::Transpose,
                                           Pattern::Tornado,
                                           Pattern::BitReverse,
                                           Pattern::BitRotation,
                                           Pattern::Shuffle,
                                           Pattern::Neighbor));

TEST(TrafficPatterns, BitComplementMesh)
{
    const Topology topo = makeMesh(8, 8);
    TrafficPattern tp(Pattern::BitComplement, topo);
    Random rng(1);
    EXPECT_EQ(tp.dest(0, rng), 63);
    EXPECT_EQ(tp.dest(63, rng), 0);
    EXPECT_EQ(tp.dest(0b101010, rng), 0b010101);
}

TEST(TrafficPatterns, TransposeIsMatrixTransposeOnSquareMesh)
{
    const Topology topo = makeMesh(8, 8);
    TrafficPattern tp(Pattern::Transpose, topo);
    Random rng(1);
    // (x, y) = (3, 1) -> node 11; transpose -> (1, 3) -> node 25.
    EXPECT_EQ(tp.dest(11, rng), 25);
    // Diagonal maps to itself.
    EXPECT_EQ(tp.dest(9, rng), 9);
}

TEST(TrafficPatterns, TornadoHalfwayAcrossX)
{
    const Topology topo = makeMesh(8, 8);
    TrafficPattern tp(Pattern::Tornado, topo);
    Random rng(1);
    // x -> (x + 3) % 8, same row (ceil(8/2) - 1 = 3).
    EXPECT_EQ(tp.dest(0, rng), 3);
    EXPECT_EQ(tp.dest(6, rng), 1);
    EXPECT_EQ(tp.dest(8, rng), 11); // row 1
}

TEST(TrafficPatterns, NeighborWraps)
{
    const Topology topo = makeMesh(8, 8);
    TrafficPattern tp(Pattern::Neighbor, topo);
    Random rng(1);
    EXPECT_EQ(tp.dest(5, rng), 6);
    EXPECT_EQ(tp.dest(63, rng), 0);
}

TEST(TrafficPatterns, BitReverse)
{
    const Topology topo = makeMesh(8, 8);
    TrafficPattern tp(Pattern::BitReverse, topo);
    Random rng(1);
    EXPECT_EQ(tp.dest(0b000001, rng), 0b100000);
    EXPECT_EQ(tp.dest(0b110000, rng), 0b000011);
}

TEST(TrafficPatterns, UniformCoversNodes)
{
    const Topology topo = makeMesh(4, 4);
    TrafficPattern tp(Pattern::UniformRandom, topo);
    Random rng(3);
    std::set<NodeId> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(tp.dest(0, rng));
    EXPECT_EQ(seen.size(), 16u);
}

TEST(TrafficPatterns, DragonflyNonPow2FallsBackGracefully)
{
    // 72 terminals: bit patterns defined on the first 64; the rest are
    // uniform but always legal.
    const Topology topo = makeDragonfly(2, 4, 2, 0);
    ASSERT_EQ(topo.numNodes(), 72);
    TrafficPattern tp(Pattern::BitComplement, topo);
    Random rng(5);
    for (NodeId s = 0; s < 72; ++s) {
        const NodeId d = tp.dest(s, rng);
        EXPECT_GE(d, 0);
        EXPECT_LT(d, 72);
    }
    EXPECT_EQ(tp.dest(0, rng), 63);
}

std::unique_ptr<Network>
mesh44(int vnets = 1)
{
    auto topo = std::make_shared<Topology>(makeMesh(4, 4));
    NetworkConfig cfg;
    cfg.vnets = vnets;
    cfg.vcsPerVnet = 3;
    cfg.scheme = DeadlockScheme::None;
    return buildNetwork(topo, cfg, RoutingKind::XyDor);
}

TEST(SyntheticInjectorTest, RateAccuracy)
{
    auto net = mesh44();
    InjectorConfig icfg;
    icfg.injectionRate = 0.20;
    SyntheticInjector inj(*net, Pattern::UniformRandom, icfg);
    for (int i = 0; i < 10000; ++i)
        inj.tick(); // no net.step(): count offered flits only
    const double offered =
        double(net->stats().flitsCreated) / 16 / 10000;
    EXPECT_NEAR(offered, 0.20, 0.015);
}

TEST(SyntheticInjectorTest, PacketMix)
{
    auto net = mesh44();
    InjectorConfig icfg;
    icfg.injectionRate = 0.3;
    icfg.controlFraction = 0.5;
    SyntheticInjector inj(*net, Pattern::UniformRandom, icfg);
    for (int i = 0; i < 5000; ++i)
        inj.tick();
    const auto &st = net->stats();
    // avg flits/packet should be near (1 + 5) / 2 = 3.
    const double avg = double(st.flitsCreated) / st.packetsCreated;
    EXPECT_NEAR(avg, 3.0, 0.2);
}

TEST(SyntheticInjectorTest, VnetAssignment)
{
    auto net = mesh44(3);
    InjectorConfig icfg;
    icfg.injectionRate = 0.3;
    SyntheticInjector inj(*net, Pattern::UniformRandom, icfg);
    std::map<VnetId, int> by_vnet;
    net->setEjectListener([&](const PacketPtr &p) { ++by_vnet[p->vnet]; });
    for (int i = 0; i < 2000; ++i) {
        inj.tick();
        net->step();
    }
    for (int i = 0; i < 4000 && net->packetsInFlight(); ++i)
        net->step();
    EXPECT_GT(by_vnet[0], 0); // control on vnet 0
    EXPECT_GT(by_vnet[2], 0); // data on vnet 2
    EXPECT_EQ(by_vnet.count(1), 0u);
}

TEST(SyntheticInjectorTest, RejectsOversizedData)
{
    auto net = mesh44();
    InjectorConfig icfg;
    icfg.dataSize = 9; // > maxPacketSize
    EXPECT_THROW(SyntheticInjector(*net, Pattern::UniformRandom, icfg),
                 FatalError);
}

TEST(CoherenceTrafficTest, RequestsGetResponses)
{
    auto net = mesh44(3);
    AppProfile prof{"test", 0.01, 10, Pattern::UniformRandom};
    CoherenceTraffic gen(*net, prof);
    for (int i = 0; i < 3000; ++i) {
        gen.tick();
        net->step();
    }
    for (int i = 0; i < 4000 && net->packetsInFlight(); ++i) {
        gen.tick(); // keep issuing due responses
        net->step();
    }
    EXPECT_GT(gen.requestsIssued(), 100u);
    // Nearly every request answered once the network drained.
    EXPECT_GE(gen.responsesReceived() + 5, gen.requestsIssued());
}

TEST(CoherenceTrafficTest, NeedsThreeVnets)
{
    auto net = mesh44(1);
    AppProfile prof;
    EXPECT_THROW(CoherenceTraffic(*net, prof), FatalError);
}

TEST(CoherenceTrafficTest, ProfilesAreSane)
{
    const auto profiles = parsecLikeProfiles();
    EXPECT_EQ(profiles.size(), 8u);
    for (const auto &p : profiles) {
        EXPECT_GT(p.requestRate, 0.0);
        EXPECT_LT(p.requestRate, 0.05); // ~10x below deadlock onset
        EXPECT_GT(p.serviceDelay, 0u);
    }
}

} // namespace
} // namespace spin
