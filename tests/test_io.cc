/**
 * @file
 * Unit tests: topology serialization round-trips, trace parsing and
 * cycle-exact replay, latency percentile estimation.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "network/NetworkBuilder.hh"
#include "topology/Mesh.hh"
#include "topology/Ring.hh"
#include "topology/TopologyIo.hh"
#include "traffic/TraceTraffic.hh"

namespace spin
{
namespace
{

TEST(TopologyIo, RoundTripsMesh)
{
    const Topology orig = makeMesh(4, 4);
    std::stringstream ss;
    writeTopology(orig, ss);
    const Topology back = readTopology(ss);
    EXPECT_EQ(back.numRouters(), orig.numRouters());
    EXPECT_EQ(back.numNodes(), orig.numNodes());
    EXPECT_EQ(back.links().size(), orig.links().size());
    for (RouterId a = 0; a < orig.numRouters(); ++a) {
        for (RouterId b = 0; b < orig.numRouters(); ++b)
            EXPECT_EQ(back.distance(a, b), orig.distance(a, b));
    }
}

TEST(TopologyIo, ParsesHandWrittenGraph)
{
    std::stringstream ss(R"(
# a triangle with one NIC per router
routers 3 3
bilink 0 0 1 0 1
bilink 1 1 2 0 2
bilink 2 1 0 1 1
nic 0 0 2
nic 1 1 2
nic 2 2 2
)");
    const Topology t = readTopology(ss);
    EXPECT_EQ(t.numRouters(), 3);
    EXPECT_EQ(t.distance(0, 2), 1);
    const LinkSpec *l = t.outLink(1, 1);
    ASSERT_NE(l, nullptr);
    EXPECT_EQ(l->latency, 2u);
}

TEST(TopologyIo, LoadedTopologyRunsTraffic)
{
    const Topology orig = makeRing(6);
    std::stringstream ss;
    writeTopology(orig, ss);
    auto topo = std::make_shared<Topology>(readTopology(ss));
    NetworkConfig cfg;
    cfg.scheme = DeadlockScheme::Spin;
    auto net = buildNetwork(topo, cfg, RoutingKind::MinimalAdaptive);
    net->offerPacket(net->makePacket(0, 3, 0, 5));
    net->run(100);
    EXPECT_EQ(net->stats().packetsEjected, 1u);
}

TEST(TopologyIo, RejectsGarbage)
{
    std::stringstream a("links before routers\n");
    EXPECT_THROW(readTopology(a), FatalError);
    std::stringstream b("routers 2 2\nfrobnicate 1 2 3\n");
    EXPECT_THROW(readTopology(b), FatalError);
    std::stringstream c("routers 2 2\nnic 1 0 1\n"); // out of order
    EXPECT_THROW(readTopology(c), FatalError);
}

TEST(TraceTrafficTest, ParsesAndValidates)
{
    std::stringstream ss(R"(
# cycle src dst vnet size
0   0  5  0  1
3   1  4  0  5
3   2  3  0  1
10  0  1  0  5
)");
    const auto trace = readTrace(ss);
    ASSERT_EQ(trace.size(), 4u);
    EXPECT_EQ(trace[1].cycle, 3u);
    EXPECT_EQ(trace[1].sizeFlits, 5);

    std::stringstream bad("5 0 1 0 1\n3 0 1 0 1\n"); // unsorted
    EXPECT_THROW(readTrace(bad), FatalError);
}

TEST(TraceTrafficTest, CycleExactReplay)
{
    auto topo = std::make_shared<Topology>(makeMesh(3, 3));
    NetworkConfig cfg;
    cfg.scheme = DeadlockScheme::None;
    auto net = buildNetwork(topo, cfg, RoutingKind::XyDor);
    std::vector<TraceRecord> trace{
        {0, 0, 8, 0, 1},
        {5, 1, 7, 0, 5},
        {5, 2, 6, 0, 1},
    };
    TraceTraffic replay(*net, trace);
    for (int i = 0; i < 100; ++i) {
        replay.tick();
        net->step();
    }
    EXPECT_TRUE(replay.done());
    EXPECT_EQ(net->stats().packetsEjected, 3u);
    EXPECT_EQ(net->stats().packetsCreated, 3u);
}

TEST(TraceTrafficTest, RejectsOutOfRangeNodes)
{
    auto topo = std::make_shared<Topology>(makeMesh(3, 3));
    NetworkConfig cfg;
    auto net = buildNetwork(topo, cfg, RoutingKind::XyDor);
    std::vector<TraceRecord> trace{{0, 0, 99, 0, 1}};
    EXPECT_THROW(TraceTraffic(*net, trace), FatalError);
}

TEST(StatsPercentiles, HistogramEstimates)
{
    Stats st;
    // 100 packets at latency 10, 10 at latency 100, 1 at 1000.
    for (int i = 0; i < 100; ++i) {
        Packet p;
        p.createCycle = 0;
        p.injectCycle = 0;
        p.ejectCycle = 10;
        st.onEject(p);
    }
    for (int i = 0; i < 10; ++i) {
        Packet p;
        p.createCycle = 0;
        p.injectCycle = 0;
        p.ejectCycle = 100;
        st.onEject(p);
    }
    Packet p;
    p.createCycle = 0;
    p.injectCycle = 0;
    p.ejectCycle = 1000;
    st.onEject(p);

    const double p50 = st.latencyPercentile(0.50);
    EXPECT_GE(p50, 8.0);
    EXPECT_LE(p50, 16.0);
    const double p99 = st.latencyPercentile(0.99);
    EXPECT_GE(p99, 64.0);
    EXPECT_LE(p99, 128.0);
    EXPECT_GE(st.latencyPercentile(1.0), 512.0);
    EXPECT_EQ(Stats().latencyPercentile(0.5), 0.0);
}

} // namespace
} // namespace spin
