/**
 * @file
 * Tests for the experiment-campaign subsystem (src/exp): spec parsing
 * and validation, the per-cell seed derivation, the ArgParse helper,
 * and the Campaign determinism contract -- the aggregated results are
 * bit-identical for any worker count and across resume.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/ArgParse.hh"
#include "exp/Campaign.hh"
#include "exp/SweepSpec.hh"

namespace spin::exp
{
namespace
{

namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// Spec parsing
// ---------------------------------------------------------------------

SweepSpec
parseSpec(const char *json, std::string &err)
{
    std::string perr;
    const obs::JsonValue doc = obs::JsonValue::parse(json, &perr);
    EXPECT_TRUE(perr.empty()) << perr;
    SweepSpec s;
    EXPECT_TRUE(SweepSpec::fromJson(doc, s, err)) << err;
    return s;
}

bool
specFails(const char *json, const char *want_in_err)
{
    std::string perr;
    const obs::JsonValue doc = obs::JsonValue::parse(json, &perr);
    EXPECT_TRUE(perr.empty()) << perr;
    SweepSpec s;
    std::string err;
    if (SweepSpec::fromJson(doc, s, err))
        return false;
    EXPECT_NE(err.find(want_in_err), std::string::npos)
        << "error '" << err << "' does not mention '" << want_in_err
        << "'";
    return true;
}

TEST(SweepSpecTest, ParsesExplicitRatesAndSeeds)
{
    std::string err;
    const SweepSpec s = parseSpec(
        R"({"name": "t", "topology": "mesh4x4",
            "presets": ["WestFirst_3VC"],
            "patterns": ["uniform-random", "transpose"],
            "rates": [0.1, 0.2], "seeds": [1, 7],
            "warmup": 100, "measure": 200, "latencyCap": 50.0,
            "seedBase": 9})",
        err);
    EXPECT_EQ(s.name, "t");
    EXPECT_EQ(s.patterns.size(), 2u);
    EXPECT_EQ(s.rates.size(), 2u);
    EXPECT_EQ(s.seeds, (std::vector<std::uint64_t>{1, 7}));
    EXPECT_EQ(s.warmup, 100u);
    EXPECT_EQ(s.measure, 200u);
    EXPECT_DOUBLE_EQ(s.latencyCap, 50.0);
    EXPECT_EQ(s.seedBase, 9u);
    EXPECT_EQ(s.expand().size(), 1u * 2 * 2 * 2);
}

TEST(SweepSpecTest, RateLadderExpandsInclusive)
{
    std::string err;
    const SweepSpec s = parseSpec(
        R"({"name": "t", "topology": "mesh4x4",
            "presets": ["WestFirst_3VC"], "patterns": ["uniform-random"],
            "rates": {"lo": 0.1, "hi": 0.5, "points": 5}})",
        err);
    ASSERT_EQ(s.rates.size(), 5u);
    EXPECT_DOUBLE_EQ(s.rates.front(), 0.1);
    EXPECT_DOUBLE_EQ(s.rates.back(), 0.5);
}

TEST(SweepSpecTest, RejectsBadDocuments)
{
    EXPECT_TRUE(specFails(R"({"topology": "mesh4x4",
        "presets": ["WestFirst_3VC"], "patterns": ["uniform-random"],
        "rates": [0.1]})", "name"));
    EXPECT_TRUE(specFails(R"({"name": "t", "topology": "mesh4x4",
        "presets": ["NoSuchPreset"], "patterns": ["uniform-random"],
        "rates": [0.1]})", "NoSuchPreset"));
    EXPECT_TRUE(specFails(R"({"name": "t", "topology": "blob9",
        "presets": ["WestFirst_3VC"], "patterns": ["uniform-random"],
        "rates": [0.1]})", "topology"));
    EXPECT_TRUE(specFails(R"({"name": "t", "topology": "mesh4x4",
        "presets": ["WestFirst_3VC"], "patterns": ["no-such-pattern"],
        "rates": [0.1]})", "pattern"));
    EXPECT_TRUE(specFails(R"({"name": "t", "topology": "mesh4x4",
        "presets": ["WestFirst_3VC"], "patterns": ["uniform-random"],
        "rates": [1.5]})", "rates"));
    EXPECT_TRUE(specFails(R"({"name": "t", "topology": "mesh4x4",
        "presets": ["WestFirst_3VC"], "patterns": ["uniform-random"],
        "rates": {"lo": 0.5, "hi": 0.1, "points": 3}})", "ladder"));
    EXPECT_TRUE(specFails(R"({"name": "t", "topology": "mesh4x4",
        "presets": ["WestFirst_3VC"], "patterns": ["uniform-random"],
        "rates": [0.1], "measure": 0})", "measure"));
}

TEST(SweepSpecTest, BuiltinSpecsAllValidateAndExpand)
{
    for (const std::string &name : builtinSpecNames()) {
        SweepSpec s;
        ASSERT_TRUE(builtinSpec(name, s)) << name;
        EXPECT_EQ(s.name, name);
        EXPECT_TRUE(s.validate().empty()) << s.validate();
        EXPECT_FALSE(s.expand().empty()) << name;
    }
    SweepSpec s;
    EXPECT_FALSE(builtinSpec("no-such-spec", s));
    // The figure grids are pinned: a silent change to a built-in spec
    // would silently change what "reproduce Fig. N" means.
    ASSERT_TRUE(builtinSpec("fig07", s));
    EXPECT_EQ(s.expand().size(), 6u * 5 * 11);
    ASSERT_TRUE(builtinSpec("ci-smoke", s));
    EXPECT_EQ(s.expand().size(), 3u * 2 * 5);
}

TEST(SweepSpecTest, SpecRoundTripsThroughJson)
{
    SweepSpec s;
    ASSERT_TRUE(builtinSpec("ci-smoke", s));
    std::string err;
    SweepSpec back;
    ASSERT_TRUE(SweepSpec::fromJson(s.toJson(), back, err)) << err;
    EXPECT_EQ(back.toJson().dump(), s.toJson().dump());
}

// ---------------------------------------------------------------------
// Seed derivation
// ---------------------------------------------------------------------

TEST(DeriveCellSeedTest, DependsOnEveryCoordinateOnly)
{
    const std::uint64_t base = deriveCellSeed(
        0, "WestFirst_3VC", Pattern::UniformRandom, 0.1, 1);
    // Deterministic across calls.
    EXPECT_EQ(base, deriveCellSeed(0, "WestFirst_3VC",
                                   Pattern::UniformRandom, 0.1, 1));
    EXPECT_NE(base, 0u);
    // Each coordinate perturbs the seed.
    EXPECT_NE(base, deriveCellSeed(1, "WestFirst_3VC",
                                   Pattern::UniformRandom, 0.1, 1));
    EXPECT_NE(base, deriveCellSeed(0, "EscapeVC_3VC",
                                   Pattern::UniformRandom, 0.1, 1));
    EXPECT_NE(base, deriveCellSeed(0, "WestFirst_3VC",
                                   Pattern::Transpose, 0.1, 1));
    EXPECT_NE(base, deriveCellSeed(0, "WestFirst_3VC",
                                   Pattern::UniformRandom, 0.2, 1));
    EXPECT_NE(base, deriveCellSeed(0, "WestFirst_3VC",
                                   Pattern::UniformRandom, 0.1, 2));
}

TEST(DeriveCellSeedTest, ExpansionSeedsAreDistinct)
{
    SweepSpec s;
    ASSERT_TRUE(builtinSpec("fig07", s));
    std::vector<std::uint64_t> seeds;
    for (const Cell &c : s.expand())
        seeds.push_back(c.netSeed);
    std::sort(seeds.begin(), seeds.end());
    EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()),
              seeds.end());
}

// ---------------------------------------------------------------------
// ArgParse
// ---------------------------------------------------------------------

bool
runParse(std::vector<const char *> argv,
         const std::vector<ArgSpec> &specs, std::string &err)
{
    argv.insert(argv.begin(), "prog");
    return parseArgs(static_cast<int>(argv.size()),
                     const_cast<char **>(argv.data()), specs, err);
}

TEST(ArgParseTest, ParsesAllValueForms)
{
    std::uint64_t jobs = 1;
    double rate = 0.0;
    std::string out;
    bool flag = false, seen = false;
    const std::vector<ArgSpec> specs = {
        argU64("-j", &jobs),
        argU64("--jobs", &jobs, &seen),
        argF64("--rate", &rate),
        argStr("--out", &out),
        argFlag("--fast", &flag),
    };
    std::string err;
    EXPECT_TRUE(runParse({"-j4"}, specs, err)) << err; // attached short
    EXPECT_EQ(jobs, 4u);
    EXPECT_FALSE(seen);
    EXPECT_TRUE(runParse({"--jobs=8"}, specs, err)) << err; // --name=v
    EXPECT_EQ(jobs, 8u);
    EXPECT_TRUE(seen);
    EXPECT_TRUE(
        runParse({"--rate", "0.25", "--out", "x.json", "--fast"}, specs,
                 err))
        << err;
    EXPECT_DOUBLE_EQ(rate, 0.25);
    EXPECT_EQ(out, "x.json");
    EXPECT_TRUE(flag);
}

TEST(ArgParseTest, FailsLoudly)
{
    std::uint64_t n = 0;
    bool flag = false;
    const std::vector<ArgSpec> specs = {
        argU64("--n", &n),
        argFlag("--fast", &flag),
    };
    std::string err;
    EXPECT_FALSE(runParse({"--bogus"}, specs, err));
    EXPECT_NE(err.find("--bogus"), std::string::npos) << err;
    EXPECT_FALSE(runParse({"--n"}, specs, err)); // missing value
    EXPECT_NE(err.find("--n"), std::string::npos) << err;
    EXPECT_FALSE(runParse({"--n", "--fast"}, specs, err)); // ate a flag
    EXPECT_FALSE(runParse({"--n", "12x"}, specs, err)); // junk suffix
    EXPECT_FALSE(runParse({"--n", "-3"}, specs, err));  // negative
    EXPECT_FALSE(runParse({"--fast=1"}, specs, err));   // flag w/ value
    EXPECT_FALSE(runParse({"positional"}, specs, err));
}

// ---------------------------------------------------------------------
// Campaign determinism
// ---------------------------------------------------------------------

SweepSpec
tinySpec()
{
    std::string err;
    SweepSpec s = parseSpec(
        R"({"name": "unit", "topology": "mesh4x4",
            "presets": ["WestFirst_3VC", "MinAdaptive_3VC_SPIN"],
            "patterns": ["uniform-random"],
            "rates": [0.1, 0.3], "seeds": [1, 2],
            "warmup": 50, "measure": 150, "latencyCap": 200.0})",
        err);
    EXPECT_TRUE(err.empty()) << err;
    return s;
}

TEST(CampaignTest, AggregateIsBitIdenticalAcrossWorkerCounts)
{
    const SweepSpec spec = tinySpec();
    CampaignOptions serial;
    serial.jobs = 1;
    CampaignOptions pooled;
    pooled.jobs = 4;
    const std::string a = Campaign(spec, serial).run().dump(2);
    const std::string b = Campaign(spec, pooled).run().dump(2);
    EXPECT_EQ(a, b);
}

TEST(CampaignTest, ResumeFromPartialCellDirReproducesAggregate)
{
    const SweepSpec spec = tinySpec();
    const fs::path dir =
        fs::path(testing::TempDir()) / "spinnoc_exp_resume_test";
    fs::remove_all(dir);

    CampaignOptions opt;
    opt.jobs = 2;
    opt.cellDir = dir.string();
    Campaign first(spec, opt);
    const std::string full = first.run().dump(2);
    EXPECT_EQ(first.perf().cellsSimulated, 8u);

    // Drop one finished cell; a resume re-simulates exactly that cell
    // and reproduces the aggregate bit for bit.
    std::size_t removed = 0;
    for (const auto &e : fs::directory_iterator(dir)) {
        if (e.path().filename() != "results.json" &&
            e.path().extension() == ".json") {
            fs::remove(e.path());
            ++removed;
            break;
        }
    }
    ASSERT_EQ(removed, 1u);

    opt.resume = true;
    Campaign second(spec, opt);
    EXPECT_EQ(second.run().dump(2), full);
    EXPECT_EQ(second.perf().cellsSimulated, 1u);
    EXPECT_EQ(second.perf().cellsCached, 7u);

    fs::remove_all(dir);
}

TEST(CampaignTest, PeriodicAuditPassesOnCleanProtocol)
{
    // --audit wiring: the runtime auditor sampled every 16 cycles of
    // every cell must stay silent on the unmutated protocol, and the
    // audited aggregate must be bit-identical to the unaudited one
    // (the auditor is read-only).
    const SweepSpec spec = tinySpec();
    CampaignOptions plain;
    CampaignOptions audited;
    audited.auditInterval = 16;
    const std::string a = Campaign(spec, plain).run().dump(2);
    const std::string b = Campaign(spec, audited).run().dump(2);
    EXPECT_EQ(a, b);
}

TEST(CampaignTest, RunCellMatchesCampaignCell)
{
    const SweepSpec spec = tinySpec();
    const std::vector<Cell> cells = spec.expand();
    std::string terr;
    const auto topo = makeTopologyByName(spec.topology, terr);
    ASSERT_TRUE(topo) << terr;

    CampaignOptions opt;
    const obs::JsonValue results = Campaign(spec, opt).run();
    const obs::JsonValue lone = Campaign::runCell(spec, cells[3], topo);
    // The spec fingerprint (resume-compatibility metadata) lives only
    // in stored cell files, never in the aggregate, so the documents
    // must match exactly.
    const obs::JsonValue &inRun = results["cells"].at(3);
    EXPECT_EQ(inRun.find("specFingerprint"), nullptr);
    EXPECT_EQ(lone.dump(2), inRun.dump(2));
}

} // namespace
} // namespace spin::exp
