/**
 * @file
 * Tests for the fault-injection subsystem (src/fault): schedule
 * parsing and macro expansion, the degraded-topology builder, live
 * injection (accounting, no-hang draining, trace coverage), the
 * campaign determinism contract with a faults dimension, and the
 * static analyzer's verdict on a degraded mesh.
 */

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/CdgAnalyzer.hh"
#include "exp/Campaign.hh"
#include "exp/SweepSpec.hh"
#include "fault/FaultInjector.hh"
#include "fault/FaultSchedule.hh"
#include "network/NetworkBuilder.hh"
#include "obs/Tracer.hh"
#include "topology/Mesh.hh"

namespace spin::fault
{
namespace
{

FaultSchedule
parseSchedule(const char *json)
{
    std::string perr;
    const obs::JsonValue doc = obs::JsonValue::parse(json, &perr);
    EXPECT_TRUE(perr.empty()) << perr;
    FaultSchedule fs;
    std::string err;
    EXPECT_TRUE(FaultSchedule::fromJson(doc, fs, err)) << err;
    return fs;
}

// The CI smoke schedule (bench/faults_smoke.json), inlined so the test
// binary does not depend on the source-tree layout.
constexpr const char *kSmokeSpec = R"({
    "schema": "spin-faults/v1",
    "events": [
        {"kind": "link", "cycle": 100, "src": 27, "dst": 28},
        {"kind": "link", "cycle": 100, "src": 35, "dst": 43},
        {"kind": "router", "cycle": 150, "router": 9},
        {"kind": "corrupt", "cycle": 200, "src": 1, "dst": 2},
        {"kind": "drop", "cycle": 220, "src": 2, "dst": 3},
        {"kind": "random-links", "cycle": 300, "count": 2, "seed": 7}
    ]})";

// ---------------------------------------------------------------------
// Schedule parsing and expansion
// ---------------------------------------------------------------------

TEST(FaultScheduleTest, RoundTripsThroughJson)
{
    const FaultSchedule fs = parseSchedule(kSmokeSpec);
    ASSERT_EQ(fs.events.size(), 6u);
    EXPECT_EQ(fs.events[0].kind, FaultKind::LinkFail);
    EXPECT_EQ(fs.events[2].kind, FaultKind::RouterFail);
    EXPECT_EQ(fs.events[5].kind, FaultKind::RandomLinks);

    FaultSchedule back;
    std::string err;
    ASSERT_TRUE(FaultSchedule::fromJson(fs.toJson(), back, err)) << err;
    EXPECT_EQ(back.toJson().dump(), fs.toJson().dump());
}

TEST(FaultScheduleTest, RejectsMalformedDocuments)
{
    auto fails = [](const char *json, const char *want_in_err) {
        std::string perr;
        const obs::JsonValue doc = obs::JsonValue::parse(json, &perr);
        EXPECT_TRUE(perr.empty()) << perr;
        FaultSchedule fs;
        std::string err;
        if (FaultSchedule::fromJson(doc, fs, err))
            return false;
        EXPECT_NE(err.find(want_in_err), std::string::npos)
            << "error '" << err << "' does not mention '" << want_in_err
            << "'";
        return true;
    };
    EXPECT_TRUE(fails(R"({"events": []})", "schema"));
    EXPECT_TRUE(fails(R"({"schema": "spin-faults/v1"})", "events"));
    EXPECT_TRUE(fails(
        R"({"schema": "spin-faults/v1",
            "events": [{"kind": "meteor", "cycle": 1}]})",
        "kind"));
    EXPECT_TRUE(fails(
        R"({"schema": "spin-faults/v1",
            "events": [{"kind": "link", "cycle": 1}]})",
        "src"));
}

TEST(FaultScheduleTest, ValidateCatchesOutOfRangeEndpoints)
{
    const auto topo = std::make_shared<Topology>(makeMesh(4, 4));
    FaultSchedule fs = parseSchedule(
        R"({"schema": "spin-faults/v1",
            "events": [{"kind": "link", "cycle": 1,
                        "src": 0, "dst": 99}]})");
    EXPECT_FALSE(fs.validate(*topo).empty());

    fs = parseSchedule(
        R"({"schema": "spin-faults/v1",
            "events": [{"kind": "router", "cycle": 1, "router": 3}]})");
    EXPECT_TRUE(fs.validate(*topo).empty()) << fs.validate(*topo);
}

TEST(FaultScheduleTest, RandomLinksConcretizesDeterministically)
{
    const auto topo = std::make_shared<Topology>(makeMesh(8, 8));
    const FaultSchedule fs = FaultSchedule::randomLinkFailures(4, 42, 10);
    const std::vector<FaultEvent> a = fs.concretize(*topo);
    const std::vector<FaultEvent> b = fs.concretize(*topo);
    ASSERT_EQ(a.size(), 4u);
    ASSERT_EQ(b.size(), 4u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].kind, FaultKind::LinkFail);
        EXPECT_EQ(a[i].cycle, 10u);
        EXPECT_EQ(a[i].src, b[i].src);
        EXPECT_EQ(a[i].dst, b[i].dst);
        EXPECT_LT(a[i].src, 64);
        EXPECT_LT(a[i].dst, 64);
    }
}

// ---------------------------------------------------------------------
// Degraded topology
// ---------------------------------------------------------------------

TEST(DegradedTopologyTest, RemovesLinksAndMarksPartial)
{
    const Topology base = makeMesh(4, 4);
    const std::size_t before = base.links().size();
    FaultSchedule fs = parseSchedule(
        R"({"schema": "spin-faults/v1",
            "events": [{"kind": "link", "cycle": 1,
                        "src": 5, "dst": 6}]})");
    const auto degraded = degradedTopology(base, fs.concretize(base));
    ASSERT_TRUE(degraded);
    EXPECT_TRUE(degraded->partial());
    // Both directions of the failed pair are gone.
    EXPECT_EQ(degraded->links().size(), before - 2);
    // The mesh stays connected around the cut.
    EXPECT_GT(degraded->distance(5, 6), 1);
}

TEST(DegradedTopologyTest, DeadRouterDisconnectsItsPairs)
{
    const Topology base = makeMesh(4, 4);
    FaultSchedule fs = parseSchedule(
        R"({"schema": "spin-faults/v1",
            "events": [{"kind": "router", "cycle": 1, "router": 5}]})");
    const auto degraded = degradedTopology(base, fs.concretize(base));
    EXPECT_TRUE(degraded->partial());
    EXPECT_EQ(degraded->distance(0, 5), -1);
    EXPECT_EQ(degraded->distance(5, 0), -1);
    // The rest of the mesh routes around the dead router.
    EXPECT_EQ(degraded->distance(4, 6), 4);
}

// ---------------------------------------------------------------------
// Live injection
// ---------------------------------------------------------------------

std::unique_ptr<Network>
meshNet(int x, int y, RoutingKind kind, int vcs)
{
    NetworkConfig cfg;
    cfg.vnets = 1;
    cfg.vcsPerVnet = vcs;
    cfg.scheme = DeadlockScheme::None;
    return buildNetwork(std::make_shared<Topology>(makeMesh(x, y)), cfg,
                        kind);
}

TEST(FaultInjectionTest, DeadRouterPacketsAreAccountedNotHung)
{
    auto net = meshNet(4, 4, RoutingKind::WestFirst, 3);
    net->attachFaults(parseSchedule(
        R"({"schema": "spin-faults/v1",
            "events": [{"kind": "router", "cycle": 10, "router": 5}]})"));

    // Traffic into, out of, and across the doomed router.
    for (int wave = 0; wave < 8; ++wave) {
        net->offerPacket(net->makePacket(0, 5, 0, 3));  // into it
        net->offerPacket(net->makePacket(5, 10, 0, 3)); // out of it
        net->offerPacket(net->makePacket(4, 7, 0, 3));  // across row 1
        for (int i = 0; i < 4; ++i)
            net->step();
    }
    for (int i = 0; i < 600 && net->packetsInFlight() > 0; ++i)
        net->step();

    const Stats &st = net->stats();
    EXPECT_EQ(st.routersFailed, 1u);
    EXPECT_GT(st.packetsUnroutable, 0u);
    // Nothing wedges: every offered packet either ejected or was
    // retired with an accounted loss.
    EXPECT_EQ(net->packetsInFlight(), 0u);
}

TEST(FaultInjectionTest, StructuralCountersSurviveMeasurementReset)
{
    auto net = meshNet(4, 4, RoutingKind::WestFirst, 3);
    net->attachFaults(parseSchedule(
        R"({"schema": "spin-faults/v1",
            "events": [{"kind": "link", "cycle": 5,
                        "src": 1, "dst": 2}]})"));
    net->run(20);
    EXPECT_EQ(net->stats().linksFailed, 1u);
    net->beginMeasurement();
    // The warmup reset clears window counters but not fabric damage.
    EXPECT_EQ(net->stats().linksFailed, 1u);
    EXPECT_EQ(net->stats().packetsInjected, 0u);
}

TEST(FaultInjectionTest, EveryInjectedFaultAppearsInTheTrace)
{
    auto net = meshNet(4, 4, RoutingKind::WestFirst, 3);
    std::stringstream ss;
    net->setTracer(std::make_unique<obs::Tracer>(
        std::make_unique<obs::JsonlSink>(ss)));
    net->attachFaults(parseSchedule(
        R"({"schema": "spin-faults/v1",
            "events": [
                {"kind": "link", "cycle": 5, "src": 1, "dst": 2},
                {"kind": "router", "cycle": 8, "router": 10},
                {"kind": "corrupt", "cycle": 12, "src": 0, "dst": 1},
                {"kind": "drop", "cycle": 12, "src": 0, "dst": 1}
            ]})"));
    net->run(20);
    net->trace()->flush();

    std::set<std::string> faultEvents;
    std::string line;
    while (std::getline(ss, line)) {
        std::string err;
        const obs::JsonValue j = obs::JsonValue::parse(line, &err);
        ASSERT_TRUE(err.empty()) << err;
        if (j["cat"].asString() == "fault")
            faultEvents.insert(j["ev"].asString());
    }
    // The arm events fire at apply time, so all four injections are
    // visible even when no flit happens to traverse the armed link.
    EXPECT_TRUE(faultEvents.count("link_fail"));
    EXPECT_TRUE(faultEvents.count("router_fail"));
    EXPECT_TRUE(faultEvents.count("corrupt_arm"));
    EXPECT_TRUE(faultEvents.count("drop_arm"));
}

// ---------------------------------------------------------------------
// Campaign determinism with a faults dimension
// ---------------------------------------------------------------------

exp::SweepSpec
faultySpec()
{
    std::string perr;
    const obs::JsonValue doc = obs::JsonValue::parse(
        R"({"name": "unit-faults", "topology": "mesh4x4",
            "presets": ["WestFirst_3VC", "MinAdaptive_3VC_SPIN"],
            "patterns": ["uniform-random"],
            "rates": [0.1], "seeds": [1, 2],
            "faults": [0, 2], "faultCycle": 30,
            "warmup": 50, "measure": 150, "latencyCap": 200.0})",
        &perr);
    EXPECT_TRUE(perr.empty()) << perr;
    exp::SweepSpec s;
    std::string err;
    EXPECT_TRUE(exp::SweepSpec::fromJson(doc, s, err)) << err;
    return s;
}

TEST(FaultCampaignTest, FaultsDimensionExpandsAndPerturbsSeeds)
{
    const exp::SweepSpec spec = faultySpec();
    const std::vector<exp::Cell> cells = spec.expand();
    ASSERT_EQ(cells.size(), 2u * 1 * 1 * 2 * 2);
    for (const exp::Cell &c : cells) {
        if (c.faultCount == 0) {
            EXPECT_EQ(c.id.find("__f"), std::string::npos) << c.id;
        } else {
            EXPECT_NE(c.id.find("__f2"), std::string::npos) << c.id;
        }
    }
}

TEST(FaultCampaignTest, AggregateIsBitIdenticalAcrossWorkerCounts)
{
    const exp::SweepSpec spec = faultySpec();
    exp::CampaignOptions serial;
    serial.jobs = 1;
    exp::CampaignOptions pooled;
    pooled.jobs = 4;
    const std::string a = exp::Campaign(spec, serial).run().dump(2);
    const std::string b = exp::Campaign(spec, pooled).run().dump(2);
    EXPECT_EQ(a, b);
}

TEST(FaultCampaignTest, FixedScheduleReachesEveryCellDeterministically)
{
    const exp::SweepSpec spec = faultySpec();
    exp::CampaignOptions opt;
    opt.jobs = 2;
    opt.faultSchedule = parseSchedule(
        R"({"schema": "spin-faults/v1",
            "events": [{"kind": "link", "cycle": 20,
                        "src": 1, "dst": 2}]})");
    const obs::JsonValue results = exp::Campaign(spec, opt).run();
    const obs::JsonValue &cells = results["cells"];
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const obs::JsonValue &c = cells.at(i);
        ASSERT_NE(c.find("faultSchedule"), nullptr) << c["cell"].asString();
        EXPECT_GE(c["stats"]["faults"]["linksFailed"].asU64(), 1u)
            << c["cell"].asString();
    }
    exp::CampaignOptions serial = opt;
    serial.jobs = 1;
    EXPECT_EQ(exp::Campaign(spec, serial).run().dump(2),
              results.dump(2));
}

// ---------------------------------------------------------------------
// Static analysis on the degraded topology (the spin_lint cross-check)
// ---------------------------------------------------------------------

TEST(FaultAnalysisTest, DegradedEscapeVcLosesItsContract)
{
    const Topology base = makeMesh(8, 8);
    const FaultSchedule fs = parseSchedule(kSmokeSpec);
    ASSERT_TRUE(fs.validate(base).empty()) << fs.validate(base);
    const auto degraded = degradedTopology(base, fs.concretize(base));

    NetworkConfig cfg;
    cfg.vnets = 1;
    cfg.vcsPerVnet = 3;
    cfg.scheme = DeadlockScheme::None;

    // The escape ring needs the full mesh; cutting links from it turns
    // the Duato condition false and the CDG cyclic.
    auto esc = buildNetwork(degraded, cfg, RoutingKind::EscapeVc);
    const analysis::AnalysisReport er =
        analysis::CdgAnalyzer(*esc).analyze(0);
    EXPECT_EQ(er.verdict, analysis::Verdict::Deadlockable)
        << toString(er.verdict);

    // West-first's turn restrictions are per-hop, so any subset of the
    // mesh keeps the acyclic CDG: the runtime reroute stays safe.
    auto wf = buildNetwork(degraded, cfg, RoutingKind::WestFirst);
    const analysis::AnalysisReport wr =
        analysis::CdgAnalyzer(*wf).analyze(0);
    EXPECT_EQ(wr.verdict, analysis::Verdict::Acyclic)
        << toString(wr.verdict);
}

} // namespace
} // namespace spin::fault
