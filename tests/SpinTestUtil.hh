/**
 * @file
 * Shared helpers for the SPIN test suites: a clockwise-only ring
 * routing algorithm that deterministically manufactures a classic
 * 4-packet ring deadlock, and small network factories.
 */

#ifndef SPINNOC_TESTS_SPINTESTUTIL_HH
#define SPINNOC_TESTS_SPINTESTUTIL_HH

#include <memory>

#include "common/Config.hh"
#include "network/Network.hh"
#include "network/NetworkBuilder.hh"
#include "routing/RoutingAlgorithm.hh"
#include "topology/Ring.hh"

namespace spin
{

/**
 * Always routes clockwise on a ring. Every hop is minimal when the
 * destination is at most n/2 away clockwise -- which is how the tests
 * use it -- yet the channel dependency graph is a cycle, so filling
 * the ring deadlocks deterministically.
 */
class ClockwiseRing : public RoutingAlgorithm
{
  public:
    std::string name() const override { return "cw-ring"; }
    void
    candidates(const Packet &, const Router &, RouterId,
               std::vector<PortId> &out) const override
    {
        out.clear();
        out.push_back(RingInfo::kCw);
    }
};

/** Build an n-router ring network with the given scheme and VC count.
 *  @p threads shards the step loop (results are bit-identical for any
 *  value; the ×-threads determinism tests rely on that). */
inline std::unique_ptr<Network>
ringNetwork(int n, DeadlockScheme scheme, int vcs_per_vnet = 1,
            Cycle t_dd = 32, int threads = 1)
{
    auto topo = std::make_shared<Topology>(makeRing(n));
    NetworkConfig cfg;
    cfg.vnets = 1;
    cfg.vcsPerVnet = vcs_per_vnet;
    cfg.vcDepth = 5;
    cfg.maxPacketSize = 5;
    cfg.scheme = scheme;
    cfg.tDd = t_dd;
    cfg.threads = threads;
    return std::make_unique<Network>(topo, cfg,
                                     std::make_unique<ClockwiseRing>());
}

/**
 * Inject the canonical deadlock workload: every node sends one 5-flit
 * packet two hops clockwise. With one VC the four packets block each
 * other in a cycle of length n.
 */
inline void
injectRingDeadlock(Network &net)
{
    const int n = net.numNodes();
    for (NodeId i = 0; i < n; ++i)
        net.offerPacket(net.makePacket(i, (i + 2) % n, 0, 5));
}

/** Step the network until in-flight drops to zero or @p max cycles. */
inline Cycle
drain(Network &net, Cycle max)
{
    const Cycle start = net.now();
    while (net.packetsInFlight() > 0 && net.now() - start < max)
        net.step();
    return net.now() - start;
}

} // namespace spin

#endif // SPINNOC_TESTS_SPINTESTUTIL_HH
