/**
 * @file
 * Paper Sec. IV-C3 ("Robustness"): SPIN only needs the *total* loop
 * delay, not per-hop uniformity -- routers and links of different
 * speeds must still spin safely because the common start time is
 * derived from the probe's measured round trip. These tests build
 * rings and meshes with mixed link latencies and drive the full
 * recovery pipeline across them.
 */

#include <gtest/gtest.h>

#include "core/SpinManager.hh"
#include "deadlock/Invariants.hh"
#include "deadlock/OracleDetector.hh"
#include "tests/SpinTestUtil.hh"
#include "traffic/SyntheticInjector.hh"

namespace spin
{
namespace
{

/** Ring whose clockwise links have latencies 1, 2, 3, 1, 2, 3, ... */
std::shared_ptr<Topology>
mixedRing(int n)
{
    auto t = std::make_shared<Topology>();
    t->name = "mixed-ring";
    RingInfo info;
    info.n = n;
    t->ring = info;
    t->setRouters(n, 3);
    for (RouterId r = 0; r < n; ++r) {
        const Cycle lat = 1 + (r % 3);
        t->addBiLink(r, RingInfo::kCw, (r + 1) % n, RingInfo::kCcw, lat);
    }
    for (RouterId r = 0; r < n; ++r)
        t->attachNic(r, r, RingInfo::kLocal);
    t->finalize();
    return t;
}

NetworkConfig
spinCfg()
{
    NetworkConfig cfg;
    cfg.vnets = 1;
    cfg.vcsPerVnet = 1;
    cfg.vcDepth = 5;
    cfg.maxPacketSize = 5;
    cfg.scheme = DeadlockScheme::Spin;
    cfg.tDd = 32;
    return cfg;
}

TEST(Heterogeneous, DeadlockResolvesAcrossMixedLatencies)
{
    auto topo = mixedRing(6);
    Network net(topo, spinCfg(), std::make_unique<ClockwiseRing>());
    for (NodeId i = 0; i < 6; ++i)
        net.offerPacket(net.makePacket(i, (i + 2) % 6, 0, 5));
    const Cycle start = net.now();
    while (net.packetsInFlight() > 0 && net.now() - start < 8000)
        net.step();
    EXPECT_EQ(net.packetsInFlight(), 0u);
    EXPECT_GE(net.stats().spins, 1u);
    EXPECT_TRUE(auditNetwork(net).clean());
}

TEST(Heterogeneous, LoopLatencyReflectsLinkSum)
{
    // Probe RTT around the 6-ring = 1+2+3+1+2+3 = 12 cycles; the loop
    // buffer must latch exactly that, and the spin cycle is derived
    // from it.
    auto topo = mixedRing(6);
    Network net(topo, spinCfg(), std::make_unique<ClockwiseRing>());
    for (NodeId i = 0; i < 6; ++i)
        net.offerPacket(net.makePacket(i, (i + 2) % 6, 0, 5));
    Cycle latched = 0;
    const Cycle start = net.now();
    while (net.packetsInFlight() > 0 && net.now() - start < 8000) {
        net.step();
        for (RouterId r = 0; r < 6 && !latched; ++r) {
            const auto &lb = net.spinManager()->unit(r).loopBuffer();
            if (lb.valid())
                latched = lb.loopLatency();
        }
    }
    EXPECT_EQ(latched, 12u);
    EXPECT_EQ(net.packetsInFlight(), 0u);
}

TEST(Heterogeneous, ContinuousLoadOnMixedRingStaysLive)
{
    auto topo = mixedRing(8);
    auto net = std::make_unique<Network>(topo, spinCfg(),
                                         std::make_unique<ClockwiseRing>());
    Random rng(17);
    for (int i = 0; i < 6000; ++i) {
        if (i % 12 == 0) {
            const NodeId s = static_cast<NodeId>(rng.below(8));
            net->offerPacket(net->makePacket(s, (s + 3) % 8, 0, 5));
        }
        net->step();
    }
    drain(*net, 40000);
    EXPECT_EQ(net->packetsInFlight(), 0u);
    EXPECT_FALSE(OracleDetector(*net).detect().deadlocked);
    EXPECT_TRUE(auditNetwork(*net).clean());
}

} // namespace
} // namespace spin
