/**
 * @file
 * Determinism property: two runs with identical seeds and workloads
 * must produce bit-identical statistics, including through heavy SPIN
 * recovery activity. This guards against accidental dependence on
 * unordered-container iteration order or wall-clock state anywhere in
 * the stack -- reproducibility is what makes the benches meaningful.
 */

#include <gtest/gtest.h>

#include "network/NetworkBuilder.hh"
#include "tests/SpinTestUtil.hh"
#include "topology/Torus.hh"
#include "traffic/SyntheticInjector.hh"

namespace spin
{
namespace
{

struct RunResult
{
    std::uint64_t ejected, flits, spins, probes, moves, kills, latency;

    bool
    operator==(const RunResult &o) const
    {
        return ejected == o.ejected && flits == o.flits &&
               spins == o.spins && probes == o.probes &&
               moves == o.moves && kills == o.kills &&
               latency == o.latency;
    }
};

RunResult
run(std::uint64_t seed, Pattern pattern, double rate)
{
    auto topo = std::make_shared<Topology>(makeTorus(4, 4));
    NetworkConfig cfg;
    cfg.vnets = 1;
    cfg.vcsPerVnet = 1;
    cfg.scheme = DeadlockScheme::Spin;
    cfg.tDd = 48;
    cfg.seed = seed;
    auto net = buildNetwork(topo, cfg, RoutingKind::FavorsMin);
    InjectorConfig icfg;
    icfg.injectionRate = rate;
    icfg.seed = seed + 1;
    SyntheticInjector inj(*net, pattern, icfg);
    for (int i = 0; i < 6000; ++i) {
        inj.tick();
        net->step();
    }
    const Stats &st = net->stats();
    return RunResult{st.packetsEjected, st.flitsEjected, st.spins,
                     st.probesSent,     st.movesSent,    st.killMovesSent,
                     st.latencySum};
}

TEST(Determinism, IdenticalSeedsIdenticalRuns)
{
    // Deep saturation: adaptive selection, SM contention and fork
    // ordering all exercise heavily.
    const RunResult a = run(42, Pattern::UniformRandom, 0.5);
    const RunResult b = run(42, Pattern::UniformRandom, 0.5);
    EXPECT_TRUE(a == b);
    EXPECT_GT(a.ejected, 1000u); // a substantial run, not a stall
}

RunResult
runRing(std::uint64_t seed)
{
    auto net = ringNetwork(6, DeadlockScheme::Spin, 1, 32);
    (void)seed; // workload is deterministic; seed kept for symmetry
    for (int i = 0; i < 5000; ++i) {
        if (i % 20 == 0) {
            for (NodeId s = 0; s < 6; ++s)
                net->offerPacket(net->makePacket(s, (s + 2) % 6, 0, 5));
        }
        net->step();
    }
    const Stats &st = net->stats();
    return RunResult{st.packetsEjected, st.flitsEjected, st.spins,
                     st.probesSent,     st.movesSent,    st.killMovesSent,
                     st.latencySum};
}

TEST(Determinism, RecoveryPipelineIsDeterministic)
{
    // The clockwise ring re-deadlocks continuously; both runs must
    // resolve the same deadlocks in the same cycles.
    const RunResult a = runRing(7);
    const RunResult b = runRing(7);
    EXPECT_TRUE(a == b);
    EXPECT_GT(a.spins, 5u);
}

TEST(Determinism, DifferentSeedsDiverge)
{
    const RunResult a = run(1, Pattern::UniformRandom, 0.3);
    const RunResult b = run(2, Pattern::UniformRandom, 0.3);
    EXPECT_FALSE(a == b);
}

} // namespace
} // namespace spin
