/**
 * @file
 * Unit tests: common module (types, RNG, packets, config, delay line).
 */

#include <gtest/gtest.h>

#include <set>

#include "common/Config.hh"
#include "common/Logging.hh"
#include "common/Packet.hh"
#include "common/Random.hh"
#include "sim/Clock.hh"
#include "sim/DelayLine.hh"

namespace spin
{
namespace
{

TEST(FlitType, HeadTailPredicates)
{
    EXPECT_TRUE(isHeadFlit(FlitType::Head));
    EXPECT_TRUE(isHeadFlit(FlitType::HeadTail));
    EXPECT_FALSE(isHeadFlit(FlitType::Body));
    EXPECT_FALSE(isHeadFlit(FlitType::Tail));
    EXPECT_TRUE(isTailFlit(FlitType::Tail));
    EXPECT_TRUE(isTailFlit(FlitType::HeadTail));
    EXPECT_FALSE(isTailFlit(FlitType::Head));
    EXPECT_FALSE(isTailFlit(FlitType::Body));
}

TEST(Random, Deterministic)
{
    Random a(42), b(42), c(43);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Random, BelowStaysInRange)
{
    Random r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(13), 13u);
}

TEST(Random, BelowCoversRange)
{
    Random r(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(r.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Random, RangeInclusive)
{
    Random r(9);
    bool lo = false, hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.range(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        lo |= v == -2;
        hi |= v == 2;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Random, ChanceExtremes)
{
    Random r(1);
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
}

TEST(Random, UniformInUnitInterval)
{
    Random r(5);
    double sum = 0;
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 1000, 0.5, 0.05);
}

TEST(Packet, MakeFlitsSingle)
{
    auto pkt = std::make_shared<Packet>();
    pkt->sizeFlits = 1;
    const auto flits = makeFlits(pkt);
    ASSERT_EQ(flits.size(), 1u);
    EXPECT_EQ(flits[0].type, FlitType::HeadTail);
    EXPECT_EQ(flits[0].seq, 0);
}

TEST(Packet, MakeFlitsMulti)
{
    auto pkt = std::make_shared<Packet>();
    pkt->sizeFlits = 5;
    const auto flits = makeFlits(pkt);
    ASSERT_EQ(flits.size(), 5u);
    EXPECT_EQ(flits[0].type, FlitType::Head);
    EXPECT_EQ(flits[1].type, FlitType::Body);
    EXPECT_EQ(flits[3].type, FlitType::Body);
    EXPECT_EQ(flits[4].type, FlitType::Tail);
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(flits[i].seq, i);
        EXPECT_EQ(flits[i].pkt, pkt);
    }
}

TEST(Packet, LatencyMath)
{
    Packet p;
    p.createCycle = 10;
    p.injectCycle = 15;
    p.ejectCycle = 42;
    EXPECT_EQ(p.latency(), 32u);
    EXPECT_EQ(p.networkLatency(), 27u);
}

TEST(Config, ValidatesVctDepth)
{
    NetworkConfig cfg;
    cfg.vcDepth = 3;
    cfg.maxPacketSize = 5;
    EXPECT_THROW(cfg.validate(), FatalError);
}

TEST(Config, ValidatesStaticBubbleVcs)
{
    NetworkConfig cfg;
    cfg.scheme = DeadlockScheme::StaticBubble;
    cfg.vcsPerVnet = 1;
    EXPECT_THROW(cfg.validate(), FatalError);
    cfg.vcsPerVnet = 2;
    EXPECT_NO_THROW(cfg.validate());
}

TEST(Config, TotalVcs)
{
    NetworkConfig cfg;
    cfg.vnets = 3;
    cfg.vcsPerVnet = 2;
    EXPECT_EQ(cfg.totalVcs(), 6);
}

TEST(Clock, TicksMonotonically)
{
    Clock c;
    EXPECT_EQ(c.now(), 0u);
    c.tick();
    c.tick();
    EXPECT_EQ(c.now(), 2u);
    c.reset();
    EXPECT_EQ(c.now(), 0u);
}

TEST(DelayLine, InOrderDelivery)
{
    DelayLine<int> dl;
    dl.push(5, 1);
    dl.push(5, 2);
    dl.push(7, 3);
    EXPECT_TRUE(dl.drain(4).empty());
    const auto at5 = dl.drain(5);
    ASSERT_EQ(at5.size(), 2u);
    EXPECT_EQ(at5[0], 1);
    EXPECT_EQ(at5[1], 2);
    const auto at7 = dl.drain(10);
    ASSERT_EQ(at7.size(), 1u);
    EXPECT_EQ(at7[0], 3);
    EXPECT_TRUE(dl.empty());
}

TEST(DelayLine, OutOfOrderPushSorts)
{
    DelayLine<int> dl;
    dl.push(9, 1);
    dl.push(4, 2); // earlier arrival pushed later
    dl.push(6, 3);
    const auto all = dl.drain(20);
    ASSERT_EQ(all.size(), 3u);
    EXPECT_EQ(all[0], 2);
    EXPECT_EQ(all[1], 3);
    EXPECT_EQ(all[2], 1);
}

TEST(Logging, FatalThrows)
{
    EXPECT_THROW(SPIN_FATAL("boom ", 42), FatalError);
}

} // namespace
} // namespace spin
