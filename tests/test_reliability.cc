/**
 * @file
 * Tests for the end-to-end reliability layer (docs/FAULTS.md): the
 * spin-faults/v2 transient grammar, link-level retry and NIC
 * retransmission under a fault barrage (exactly-once delivery), the
 * escalation ladder (abandon counter, livelock watchdog), warmup
 * semantics of the reliability window counters, fault-hook parity on
 * the forced-send rotation path, and the campaign's reliability
 * dimension (expansion, determinism across worker counts).
 */

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "exp/Campaign.hh"
#include "exp/SweepSpec.hh"
#include "fault/FaultInjector.hh"
#include "fault/FaultSchedule.hh"
#include "network/NetworkBuilder.hh"
#include "topology/Mesh.hh"

namespace spin
{
namespace
{

fault::FaultSchedule
parseSchedule(const char *json)
{
    std::string perr;
    const obs::JsonValue doc = obs::JsonValue::parse(json, &perr);
    EXPECT_TRUE(perr.empty()) << perr;
    fault::FaultSchedule fs;
    std::string err;
    EXPECT_TRUE(fault::FaultSchedule::fromJson(doc, fs, err)) << err;
    return fs;
}

/** A mesh with the reliability protocol on and test-sized knobs. */
std::unique_ptr<Network>
relNet(int x, int y, RoutingKind kind, const ReliabilityConfig &rel)
{
    NetworkConfig cfg;
    cfg.vnets = 1;
    cfg.vcsPerVnet = 3;
    cfg.vcDepth = 5;
    cfg.maxPacketSize = 5;
    cfg.scheme = DeadlockScheme::None;
    cfg.reliability = rel;
    cfg.reliability.enabled = true;
    return buildNetwork(std::make_shared<Topology>(makeMesh(x, y)), cfg,
                        kind);
}

/** Per-flow delivery record fed by the eject listener, which fires
 *  only for fresh (post-duplicate-suppression) deliveries. */
struct Audit
{
    std::map<std::pair<NodeId, NodeId>, std::set<std::uint64_t>> flows;
    std::uint64_t duplicates = 0;

    void attach(Network &net)
    {
        net.setEjectListener([this](const PacketPtr &pkt) {
            if (!flows[{pkt->src, pkt->dest}].insert(pkt->e2eSeq).second)
                ++duplicates;
        });
    }

    /** Flows whose delivered sequence numbers are not 0..n-1. */
    std::uint64_t gaps() const
    {
        std::uint64_t g = 0;
        for (const auto &kv : flows)
            if (kv.second.size() != *kv.second.rbegin() + 1)
                ++g;
        return g;
    }
};

// ---------------------------------------------------------------------
// spin-faults/v2 grammar
// ---------------------------------------------------------------------

TEST(FaultScheduleV2Test, ParsesAndRoundTripsTransientArms)
{
    const fault::FaultSchedule fs = parseSchedule(
        R"({"schema": "spin-faults/v2",
            "events": [
                {"kind": "link-outage", "cycle": 10, "src": 1,
                 "dst": 2, "duration": 40},
                {"kind": "router-outage", "cycle": 20, "router": 5,
                 "duration": 30},
                {"kind": "flaky", "cycle": 30, "src": 2, "dst": 3,
                 "window": 100, "prob": 0.25},
                {"kind": "flaky-links", "cycle": 40, "count": 2,
                 "seed": 9, "window": 50, "prob": 0.5}
            ]})");
    ASSERT_EQ(fs.events.size(), 4u);
    EXPECT_EQ(fs.events[0].kind, fault::FaultKind::LinkOutage);
    EXPECT_EQ(fs.events[1].kind, fault::FaultKind::RouterOutage);
    EXPECT_EQ(fs.events[2].kind, fault::FaultKind::Flaky);
    EXPECT_EQ(fs.events[3].kind, fault::FaultKind::FlakyLinks);

    fault::FaultSchedule back;
    std::string err;
    ASSERT_TRUE(fault::FaultSchedule::fromJson(fs.toJson(), back, err))
        << err;
    EXPECT_EQ(back.toJson().dump(), fs.toJson().dump());
}

TEST(FaultScheduleV2Test, V2KindsNeedTheV2SchemaDeclaration)
{
    // A v1 document stays valid (dual-accept), but the transient kinds
    // are rejected under the legacy declaration so old tooling never
    // half-understands a schedule.
    std::string perr;
    const obs::JsonValue doc = obs::JsonValue::parse(
        R"({"schema": "spin-faults/v1",
            "events": [{"kind": "link-outage", "cycle": 1,
                        "src": 0, "dst": 1, "duration": 5}]})",
        &perr);
    ASSERT_TRUE(perr.empty()) << perr;
    fault::FaultSchedule fs;
    std::string err;
    EXPECT_FALSE(fault::FaultSchedule::fromJson(doc, fs, err));
    EXPECT_NE(err.find("needs schema"), std::string::npos) << err;
}

TEST(FaultScheduleV2Test, FlakyLinksConcretizesDeterministically)
{
    const Topology topo = makeMesh(4, 4);
    const fault::FaultSchedule fs = parseSchedule(
        R"({"schema": "spin-faults/v2",
            "events": [{"kind": "flaky-links", "cycle": 5, "count": 3,
                        "seed": 21, "window": 60, "prob": 0.1}]})");
    const std::vector<fault::FaultEvent> a = fs.concretize(topo);
    const std::vector<fault::FaultEvent> b = fs.concretize(topo);
    ASSERT_EQ(a.size(), 3u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].kind, fault::FaultKind::Flaky);
        EXPECT_EQ(a[i].src, b[i].src);
        EXPECT_EQ(a[i].dst, b[i].dst);
    }
}

// ---------------------------------------------------------------------
// Exactly-once delivery under transient faults
// ---------------------------------------------------------------------

TEST(ReliabilityProtocolTest, ExactlyOnceUnderTransientBarrage)
{
    ReliabilityConfig rel;
    rel.ackTimeout = 64;
    auto net = relNet(4, 4, RoutingKind::WestFirst, rel);
    net->attachFaults(parseSchedule(
        R"({"schema": "spin-faults/v2",
            "events": [
                {"kind": "flaky", "cycle": 10, "src": 5, "dst": 6,
                 "window": 150, "prob": 0.4, "seed": 3},
                {"kind": "link-outage", "cycle": 40, "src": 9,
                 "dst": 10, "duration": 60},
                {"kind": "corrupt", "cycle": 20, "src": 1, "dst": 2},
                {"kind": "drop", "cycle": 30, "src": 2, "dst": 3}
            ]})"));
    Audit audit;
    audit.attach(*net);

    // Row traffic keeps every armed link busy through its window.
    for (int wave = 0; wave < 50; ++wave) {
        for (int r = 0; r < 4; ++r)
            for (int c = 0; c + 1 < 4; ++c)
                net->offerPacket(
                    net->makePacket(4 * r + c, 4 * r + c + 1, 0, 3));
        for (int i = 0; i < 5; ++i)
            net->step();
    }
    for (int i = 0; i < 5000 && net->packetsInFlight() > 0; ++i)
        net->step();

    const Stats &st = net->stats();
    EXPECT_EQ(net->packetsInFlight(), 0u);
    EXPECT_EQ(audit.duplicates, 0u);
    EXPECT_EQ(audit.gaps(), 0u);
    EXPECT_EQ(st.packetsAbandoned, 0u);
    EXPECT_EQ(st.packetsLostToFaults, 0u);
    // The barrage actually bit: the per-hop checksum saw corruption
    // and the end-to-end layer had to resend at least the dropped
    // packet.
    EXPECT_GT(st.crcFails, 0u);
    EXPECT_GT(st.retransmits, 0u);
    EXPECT_GT(st.recoveredPackets, 0u);
}

TEST(ReliabilityProtocolTest, LateAcksAreSuppressedAsDuplicates)
{
    // An ack timeout shorter than any round trip forces spurious
    // retransmissions of packets that already arrived; the destination
    // must swallow every copy and the listener must still see each
    // sequence number exactly once.
    ReliabilityConfig rel;
    rel.ackTimeout = 1;
    rel.maxRetransmits = 8;
    auto net = relNet(4, 4, RoutingKind::WestFirst, rel);
    Audit audit;
    audit.attach(*net);

    for (int wave = 0; wave < 10; ++wave) {
        net->offerPacket(net->makePacket(0, 15, 0, 3));
        net->offerPacket(net->makePacket(12, 3, 0, 3));
        for (int i = 0; i < 4; ++i)
            net->step();
    }
    for (int i = 0; i < 3000 && net->packetsInFlight() > 0; ++i)
        net->step();

    const Stats &st = net->stats();
    EXPECT_EQ(net->packetsInFlight(), 0u);
    EXPECT_GT(st.dupDrops, 0u);
    EXPECT_EQ(audit.duplicates, 0u);
    EXPECT_EQ(audit.gaps(), 0u);
    EXPECT_EQ(st.packetsAbandoned, 0u);
}

// ---------------------------------------------------------------------
// Escalation ladder: abandon counter and livelock watchdog
// ---------------------------------------------------------------------

TEST(ReliabilityLadderTest, UnreachableDestinationIsAbandoned)
{
    ReliabilityConfig rel;
    rel.ackTimeout = 16;
    rel.maxRetransmits = 2;
    auto net = relNet(4, 4, RoutingKind::WestFirst, rel);
    net->attachFaults(parseSchedule(
        R"({"schema": "spin-faults/v1",
            "events": [{"kind": "router", "cycle": 5, "router": 5}]})"));

    for (int i = 0; i < 4; ++i)
        net->offerPacket(net->makePacket(0, 5, 0, 3));
    // Fixed-length run: between attempts nothing is in flight -- the
    // pending work is the source NIC's backoff timer -- so a
    // drain-until-empty loop would return before any timeout fires.
    net->run(2000);

    // Every copy went unroutable, the ladder ran out of attempts, and
    // the flow was retired with the loss accounted -- not wedged.
    EXPECT_EQ(net->packetsInFlight(), 0u);
    EXPECT_GE(net->stats().packetsAbandoned, 4u);
    EXPECT_GT(net->stats().retransmits, 0u);
}

TEST(ReliabilityLadderTest, WatchdogAlarmsOnceForStuckPackets)
{
    // Attempts keep failing well past the cycle budget, so the
    // watchdog must alarm -- exactly once per stuck packet, not once
    // per retransmission.
    ReliabilityConfig rel;
    rel.ackTimeout = 8;
    rel.maxRetransmits = 6;
    rel.watchdogBudget = 60;
    auto net = relNet(4, 4, RoutingKind::WestFirst, rel);
    net->attachFaults(parseSchedule(
        R"({"schema": "spin-faults/v1",
            "events": [{"kind": "router", "cycle": 5, "router": 5}]})"));

    net->offerPacket(net->makePacket(0, 5, 0, 3));
    // Fixed-length run for the same reason as above: the backoff
    // timers tick while nothing is in flight.
    net->run(4000);

    EXPECT_EQ(net->packetsInFlight(), 0u);
    EXPECT_EQ(net->stats().watchdogAlarms, 1u);
    EXPECT_GE(net->stats().packetsAbandoned, 1u);
}

// ---------------------------------------------------------------------
// Measurement-window semantics
// ---------------------------------------------------------------------

TEST(ReliabilityStatsTest, WindowCountersResetAtMeasurement)
{
    ReliabilityConfig rel;
    rel.ackTimeout = 1; // force dupDrops and retransmits during warmup
    auto net = relNet(4, 4, RoutingKind::WestFirst, rel);
    net->attachFaults(parseSchedule(
        R"({"schema": "spin-faults/v2",
            "events": [
                {"kind": "corrupt", "cycle": 5, "src": 1, "dst": 2},
                {"kind": "drop", "cycle": 5, "src": 5, "dst": 6}
            ]})"));

    for (int wave = 0; wave < 10; ++wave) {
        net->offerPacket(net->makePacket(0, 3, 0, 3));
        net->offerPacket(net->makePacket(4, 7, 0, 3));
        for (int i = 0; i < 4; ++i)
            net->step();
    }
    for (int i = 0; i < 3000 && net->packetsInFlight() > 0; ++i)
        net->step();

    const Stats &st = net->stats();
    EXPECT_GT(st.crcFails + st.linkRetries, 0u);
    EXPECT_GT(st.retransmits, 0u);
    EXPECT_GT(st.dupDrops, 0u);

    // Unlike linksFailed/routersFailed (structural damage), every
    // reliability counter is a window event rate and must clear.
    net->beginMeasurement();
    EXPECT_EQ(st.crcFails, 0u);
    EXPECT_EQ(st.linkRetries, 0u);
    EXPECT_EQ(st.retransmits, 0u);
    EXPECT_EQ(st.dupDrops, 0u);
    EXPECT_EQ(st.recoveredPackets, 0u);
    EXPECT_EQ(st.packetsAbandoned, 0u);
    EXPECT_EQ(st.watchdogAlarms, 0u);
}

TEST(ReliabilityStatsTest, OutageHealedBeforeMeasurementLeavesNoTrace)
{
    // A transient outage that is fully recovered -- window closed,
    // every retransmission delivered, fabric drained -- before
    // beginMeasurement must leave the measured aggregates
    // byte-identical to a run that never saw the fault.
    const auto run = [](bool faulty) {
        ReliabilityConfig rel;
        rel.ackTimeout = 32;
        auto net = relNet(4, 4, RoutingKind::WestFirst, rel);
        if (faulty)
            net->attachFaults(parseSchedule(
                R"({"schema": "spin-faults/v2",
                    "events": [{"kind": "link-outage", "cycle": 10,
                                "src": 1, "dst": 2,
                                "duration": 40}]})"));

        // Warmup traffic across the doomed link, then a full drain.
        for (int wave = 0; wave < 8; ++wave) {
            net->offerPacket(net->makePacket(0, 3, 0, 3));
            net->offerPacket(net->makePacket(1, 2, 0, 3));
            for (int i = 0; i < 5; ++i)
                net->step();
        }
        while (net->now() < 800)
            net->step();
        EXPECT_EQ(net->packetsInFlight(), 0u);

        net->beginMeasurement();
        for (int wave = 0; wave < 8; ++wave) {
            net->offerPacket(net->makePacket(0, 15, 0, 3));
            net->offerPacket(net->makePacket(5, 10, 0, 3));
            for (int i = 0; i < 5; ++i)
                net->step();
        }
        while (net->now() < 1200)
            net->step();

        const obs::JsonValue j = net->stats().toJson();
        return j["traffic"].dump() + "|" + j["reliability"].dump();
    };

    const std::string clean = run(false);
    const std::string healed = run(true);
    EXPECT_EQ(clean, healed);
}

// ---------------------------------------------------------------------
// Fault-hook parity on the forced-send rotation path
// ---------------------------------------------------------------------

TEST(ForceSendParityTest, RotationTraverseHonoursTransientArms)
{
    // SPIN rotations bypass the normal link-traversal path, so the
    // injector exposes a dedicated hook; it must honour the same arms
    // as a regular traversal (the historical gap: forceSend ignored
    // them entirely).
    ReliabilityConfig rel;
    auto net = relNet(4, 4, RoutingKind::WestFirst, rel);
    fault::FaultInjector &fi = net->attachFaults(parseSchedule(
        R"({"schema": "spin-faults/v1",
            "events": [
                {"kind": "corrupt", "cycle": 1, "src": 0, "dst": 1},
                {"kind": "drop", "cycle": 1, "src": 1, "dst": 2}
            ]})"));
    net->run(3); // injector arms both events

    const auto linkBetween = [&](RouterId src, RouterId dst) {
        for (int li = 0; li < net->numLinks(); ++li)
            if (net->link(li).spec().src == src &&
                net->link(li).spec().dst == dst)
                return li;
        return -1;
    };

    const int corruptLi = linkBetween(0, 1);
    ASSERT_GE(corruptLi, 0);
    PacketPtr a = net->makePacket(0, 1, 0, 3);
    fi.onRotationTraverse(corruptLi, *a, net->now(), a->sizeFlits);
    EXPECT_TRUE(a->corrupted);
    EXPECT_GT(net->stats().crcFails, 0u);

    const int dropLi = linkBetween(1, 2);
    ASSERT_GE(dropLi, 0);
    PacketPtr b = net->makePacket(1, 2, 0, 3);
    fi.onRotationTraverse(dropLi, *b, net->now(), b->sizeFlits);
    EXPECT_TRUE(b->faultDropped);

    // Arms are one-shot: a second rotation over the same link is clean.
    PacketPtr c = net->makePacket(0, 1, 0, 3);
    fi.onRotationTraverse(corruptLi, *c, net->now(), c->sizeFlits);
    EXPECT_FALSE(c->corrupted);
}

// ---------------------------------------------------------------------
// Campaign reliability dimension
// ---------------------------------------------------------------------

exp::SweepSpec
relSpec()
{
    std::string perr;
    const obs::JsonValue doc = obs::JsonValue::parse(
        R"({"name": "unit-rel", "topology": "mesh4x4",
            "presets": ["WestFirst_3VC"],
            "patterns": ["uniform-random"],
            "rates": [0.1], "seeds": [1, 2],
            "reliability": ["off", "on"],
            "warmup": 50, "measure": 150, "latencyCap": 200.0})",
        &perr);
    EXPECT_TRUE(perr.empty()) << perr;
    exp::SweepSpec s;
    std::string err;
    EXPECT_TRUE(exp::SweepSpec::fromJson(doc, s, err)) << err;
    return s;
}

TEST(ReliabilityCampaignTest, DimensionExpandsWithRelSuffix)
{
    const std::vector<exp::Cell> cells = relSpec().expand();
    ASSERT_EQ(cells.size(), 4u); // 2 seeds x {off, on}
    int rel = 0;
    for (const exp::Cell &c : cells) {
        if (c.reliability) {
            ++rel;
            EXPECT_NE(c.id.find("__rel"), std::string::npos) << c.id;
        } else {
            EXPECT_EQ(c.id.find("__rel"), std::string::npos) << c.id;
        }
    }
    EXPECT_EQ(rel, 2);
}

TEST(ReliabilityCampaignTest, AggregateBitIdenticalAcrossWorkerCounts)
{
    const exp::SweepSpec spec = relSpec();
    exp::CampaignOptions serial;
    serial.jobs = 1;
    exp::CampaignOptions pooled;
    pooled.jobs = 4;
    const obs::JsonValue ra = exp::Campaign(spec, serial).run();
    const obs::JsonValue rb = exp::Campaign(spec, pooled).run();
    EXPECT_EQ(ra.dump(2), rb.dump(2));

    // Cell documents advertise the dimension only when it is on, so
    // pre-reliability captures stay byte-identical.
    const obs::JsonValue &cells = ra["cells"];
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const obs::JsonValue &c = cells.at(i);
        const bool rel =
            c["cell"].asString().find("__rel") != std::string::npos;
        EXPECT_EQ(c.find("reliability") != nullptr, rel)
            << c["cell"].asString();
    }
}

} // namespace
} // namespace spin
