/**
 * @file
 * Unit tests: topology substrate (mesh, torus, ring, dragonfly,
 * irregular generators and the derived routing tables).
 */

#include <gtest/gtest.h>

#include <set>

#include "common/Logging.hh"
#include "topology/Dragonfly.hh"
#include "topology/Irregular.hh"
#include "topology/Mesh.hh"
#include "topology/Ring.hh"
#include "topology/Torus.hh"

namespace spin
{
namespace
{

TEST(Mesh, Dimensions)
{
    const Topology t = makeMesh(8, 8);
    EXPECT_EQ(t.numRouters(), 64);
    EXPECT_EQ(t.numNodes(), 64);
    ASSERT_TRUE(t.mesh.has_value());
    EXPECT_EQ(t.mesh->sizeX, 8);
    EXPECT_FALSE(t.mesh->wrap);
    // 2 * (2 * 8 * 7) directed channels.
    EXPECT_EQ(static_cast<int>(t.links().size()), 224);
}

TEST(Mesh, BorderPortsUnwired)
{
    const Topology t = makeMesh(4, 4);
    EXPECT_EQ(t.outLink(0, MeshInfo::kWest), nullptr);
    EXPECT_EQ(t.outLink(0, MeshInfo::kSouth), nullptr);
    EXPECT_NE(t.outLink(0, MeshInfo::kEast), nullptr);
    EXPECT_NE(t.outLink(0, MeshInfo::kNorth), nullptr);
    EXPECT_EQ(t.outLink(15, MeshInfo::kEast), nullptr);
    EXPECT_EQ(t.outLink(15, MeshInfo::kNorth), nullptr);
}

TEST(Mesh, LinkGeometry)
{
    const Topology t = makeMesh(4, 4);
    const LinkSpec *east = t.outLink(5, MeshInfo::kEast);
    ASSERT_NE(east, nullptr);
    EXPECT_EQ(east->dst, 6);
    EXPECT_EQ(east->dstPort, MeshInfo::kWest);
    const LinkSpec *north = t.outLink(5, MeshInfo::kNorth);
    ASSERT_NE(north, nullptr);
    EXPECT_EQ(north->dst, 9);
    EXPECT_EQ(north->dstPort, MeshInfo::kSouth);
}

TEST(Mesh, ManhattanDistances)
{
    const Topology t = makeMesh(8, 8);
    const MeshInfo &m = *t.mesh;
    for (RouterId a : {0, 7, 27, 63}) {
        for (RouterId b : {0, 5, 36, 63}) {
            const int dx = std::abs(m.xOf(a) - m.xOf(b));
            const int dy = std::abs(m.yOf(a) - m.yOf(b));
            EXPECT_EQ(t.distance(a, b), dx + dy);
        }
    }
}

TEST(Mesh, MinimalPortsAreProductive)
{
    const Topology t = makeMesh(8, 8);
    for (RouterId a = 0; a < 64; a += 7) {
        for (RouterId b = 0; b < 64; b += 5) {
            if (a == b)
                continue;
            const auto &ports = t.minimalPorts(a, b);
            ASSERT_FALSE(ports.empty());
            for (const PortId p : ports) {
                const LinkSpec *l = t.outLink(a, p);
                ASSERT_NE(l, nullptr);
                EXPECT_EQ(t.distance(l->dst, b), t.distance(a, b) - 1);
            }
        }
    }
}

TEST(Mesh, NicPorts)
{
    const Topology t = makeMesh(3, 3);
    for (RouterId r = 0; r < 9; ++r) {
        EXPECT_TRUE(t.isNicPort(r, MeshInfo::kLocal));
        EXPECT_FALSE(t.isNicPort(r, MeshInfo::kEast));
        EXPECT_EQ(t.routerOfNode(r), r);
        ASSERT_EQ(t.nodesAt(r).size(), 1u);
        EXPECT_EQ(t.nodesAt(r)[0], r);
    }
}

TEST(Mesh, RejectsDegenerate)
{
    EXPECT_THROW(makeMesh(1, 1), FatalError);
}

TEST(Torus, WrapLinks)
{
    const Topology t = makeTorus(4, 4);
    ASSERT_TRUE(t.mesh->wrap);
    const LinkSpec *west_of_zero = t.outLink(0, MeshInfo::kWest);
    ASSERT_NE(west_of_zero, nullptr);
    EXPECT_EQ(west_of_zero->dst, 3);
    // Torus distance uses the wrap: corner to corner is 2, not 6.
    EXPECT_EQ(t.distance(0, 15), 2);
}

TEST(Torus, EveryPortWired)
{
    const Topology t = makeTorus(3, 3);
    for (RouterId r = 0; r < 9; ++r) {
        for (PortId p = 0; p < 4; ++p)
            EXPECT_NE(t.outLink(r, p), nullptr);
    }
}

TEST(Ring, Structure)
{
    const Topology t = makeRing(8);
    EXPECT_EQ(t.numRouters(), 8);
    const LinkSpec *cw = t.outLink(3, RingInfo::kCw);
    ASSERT_NE(cw, nullptr);
    EXPECT_EQ(cw->dst, 4);
    EXPECT_EQ(cw->dstPort, RingInfo::kCcw);
    EXPECT_EQ(t.distance(0, 4), 4);
    EXPECT_EQ(t.distance(0, 5), 3); // shorter the other way
}

TEST(Dragonfly, PaperInstanceDimensions)
{
    const Topology t = makePaperDragonfly();
    ASSERT_TRUE(t.dragonfly.has_value());
    const DragonflyInfo &d = *t.dragonfly;
    EXPECT_EQ(d.p, 4);
    EXPECT_EQ(d.a, 8);
    EXPECT_EQ(d.h, 4);
    EXPECT_EQ(d.g, 32);
    EXPECT_EQ(t.numRouters(), 256);
    EXPECT_EQ(t.numNodes(), 1024);
}

TEST(Dragonfly, IntraGroupFullyConnected)
{
    const Topology t = makeDragonfly(2, 4, 2, 0);
    const DragonflyInfo &d = *t.dragonfly;
    for (int g = 0; g < d.g; ++g) {
        for (int i = 0; i < d.a; ++i) {
            for (int j = 0; j < d.a; ++j) {
                if (i == j)
                    continue;
                EXPECT_EQ(t.distance(d.routerOf(g, i), d.routerOf(g, j)),
                          1);
            }
        }
    }
}

TEST(Dragonfly, GroupsOneGlobalHopApart)
{
    const Topology t = makeDragonfly(2, 4, 2, 0); // g = 9, fully global
    const DragonflyInfo &d = *t.dragonfly;
    // Minimal path between any two groups is at most l-g-l = 3 hops.
    for (int ga = 0; ga < d.g; ++ga) {
        for (int gb = 0; gb < d.g; ++gb) {
            if (ga == gb)
                continue;
            EXPECT_LE(t.distance(d.routerOf(ga, 0), d.routerOf(gb, 0)), 3);
        }
    }
}

TEST(Dragonfly, GlobalLinkLatency)
{
    const Topology t = makePaperDragonfly();
    int globals = 0;
    for (const LinkSpec &l : t.links()) {
        if (l.global) {
            EXPECT_EQ(l.latency, 3u);
            ++globals;
        } else {
            EXPECT_EQ(l.latency, 1u);
        }
    }
    // 32 groups * 31 neighbor groups (directed).
    EXPECT_EQ(globals, 32 * 31);
}

TEST(Dragonfly, TerminalsPerRouter)
{
    const Topology t = makePaperDragonfly();
    for (RouterId r = 0; r < t.numRouters(); ++r)
        EXPECT_EQ(static_cast<int>(t.nodesAt(r).size()), 4);
}

TEST(Dragonfly, RejectsTooManyGroups)
{
    EXPECT_THROW(makeDragonfly(2, 4, 2, 10), FatalError);
}

TEST(FaultyMesh, RemovesLink)
{
    const Topology t = makeFaultyMesh(4, 4, {{5, 6}});
    EXPECT_EQ(t.outLink(5, MeshInfo::kEast), nullptr);
    EXPECT_EQ(t.outLink(6, MeshInfo::kWest), nullptr);
    // Still connected; the detour costs 2 extra hops.
    EXPECT_EQ(t.distance(5, 6), 3);
    // No mesh metadata: structure-aware routing must refuse it.
    EXPECT_FALSE(t.mesh.has_value());
}

TEST(FaultyMesh, RejectsDisconnection)
{
    // Cutting both links around router 0 isolates it.
    EXPECT_THROW(makeFaultyMesh(2, 2, {{0, 1}, {0, 2}}), FatalError);
}

TEST(FaultyMesh, RejectsNonAdjacent)
{
    EXPECT_THROW(makeFaultyMesh(4, 4, {{0, 5}}), FatalError);
}

TEST(RandomFaultyMesh, StaysConnected)
{
    Random rng(123);
    const Topology t = makeRandomFaultyMesh(6, 6, 8, rng);
    for (RouterId a = 0; a < t.numRouters(); ++a)
        EXPECT_GE(t.distance(0, a), 0);
    EXPECT_EQ(static_cast<int>(t.links().size()), (2 * 6 * 5 - 8) * 2);
}

TEST(RandomRegular, DegreeAndConnectivity)
{
    Random rng(99);
    const Topology t = makeRandomRegular(16, 4, rng);
    EXPECT_EQ(t.numRouters(), 16);
    for (RouterId r = 0; r < 16; ++r) {
        int wired = 0;
        for (PortId p = 0; p < 4; ++p) {
            if (t.outLink(r, p))
                ++wired;
        }
        EXPECT_EQ(wired, 4);
        EXPECT_TRUE(t.isNicPort(r, 4));
    }
}

TEST(RandomRegular, RejectsOddStubCount)
{
    Random rng(1);
    EXPECT_THROW(makeRandomRegular(5, 3, rng), FatalError);
}

TEST(Topology, LatencyDistanceWeighted)
{
    const Topology t = makePaperDragonfly();
    const DragonflyInfo &d = *t.dragonfly;
    // Two routers in the same group: 1-cycle local link.
    EXPECT_EQ(t.latencyDistance(d.routerOf(0, 0), d.routerOf(0, 1)), 1u);
    // Across groups at least one 3-cycle global link is involved.
    EXPECT_GE(t.latencyDistance(d.routerOf(0, 0), d.routerOf(5, 3)), 3u);
}

TEST(Topology, CustomGraphValidation)
{
    Topology t;
    t.setRouters(2, 2);
    t.addBiLink(0, 0, 1, 0);
    t.attachNic(0, 0, 1);
    t.attachNic(1, 1, 1);
    t.finalize();
    EXPECT_EQ(t.distance(0, 1), 1);

    Topology bad;
    bad.setRouters(3, 2);
    bad.addBiLink(0, 0, 1, 0); // router 2 disconnected
    EXPECT_THROW(bad.finalize(), FatalError);
}

} // namespace
} // namespace spin
