/**
 * @file
 * Unit tests: the oracle wait-for-graph detector and the Static Bubble
 * recovery baseline.
 */

#include <gtest/gtest.h>

#include "deadlock/OracleDetector.hh"
#include "deadlock/StaticBubble.hh"
#include "tests/SpinTestUtil.hh"
#include "topology/Mesh.hh"
#include "traffic/SyntheticInjector.hh"

namespace spin
{
namespace
{

TEST(Oracle, CleanNetworkHasNoDeadlock)
{
    auto net = ringNetwork(4, DeadlockScheme::None);
    OracleDetector oracle(*net);
    EXPECT_FALSE(oracle.detect().deadlocked);
    net->run(50);
    EXPECT_FALSE(oracle.detect().deadlocked);
}

TEST(Oracle, DetectsConstructedCycleExactly)
{
    auto net = ringNetwork(4, DeadlockScheme::None);
    injectRingDeadlock(*net);
    net->run(200);
    const DeadlockReport rep = OracleDetector(*net).detect();
    ASSERT_TRUE(rep.deadlocked);
    ASSERT_EQ(rep.members.size(), 4u);
    // Exactly one member per router, all at the clockwise in-port.
    std::set<RouterId> routers;
    for (const auto &m : rep.members) {
        routers.insert(m.router);
        EXPECT_EQ(m.inport, RingInfo::kCcw);
        EXPECT_EQ(m.vc, 0);
    }
    EXPECT_EQ(routers.size(), 4u);
}

TEST(Oracle, CongestionIsNotDeadlock)
{
    // Hotspot: many packets to one node; heavy blocking, no cycle.
    auto net = ringNetwork(8, DeadlockScheme::None);
    for (int wave = 0; wave < 4; ++wave) {
        for (NodeId s = 0; s < 4; ++s)
            net->offerPacket(net->makePacket(s, 5, 0, 5));
    }
    bool ever = false;
    for (int i = 0; i < 500; ++i) {
        net->step();
        ever |= OracleDetector(*net).detect().deadlocked;
    }
    EXPECT_FALSE(ever);
    EXPECT_EQ(net->packetsInFlight(), 0u);
}

TEST(Oracle, ChainBehindDeadlockIsIncluded)
{
    // Packets blocked *behind* a cycle cannot progress either; the
    // oracle reports them as deadlocked members too.
    auto net = ringNetwork(6, DeadlockScheme::None);
    for (NodeId i = 0; i < 6; ++i)
        net->offerPacket(net->makePacket(i, (i + 2) % 6, 0, 5));
    // An extra victim packet that will queue behind the cycle.
    net->run(300);
    const auto rep = OracleDetector(*net).detect();
    ASSERT_TRUE(rep.deadlocked);
    EXPECT_GE(rep.members.size(), 6u);
}

TEST(Oracle, FrozenVcsCountAsProgressing)
{
    auto net = ringNetwork(4, DeadlockScheme::Spin, 1, 16);
    injectRingDeadlock(*net);
    // Run until freezing happened but the spin has not executed.
    bool saw_committed_clean = false;
    for (int i = 0; i < 2000 && net->packetsInFlight(); ++i) {
        net->step();
        bool any_frozen = false;
        for (RouterId r = 0; r < 4; ++r) {
            for (VcId v = 0; v < 1; ++v) {
                if (net->router(r).input(RingInfo::kCcw).vc(v).frozen)
                    any_frozen = true;
            }
        }
        if (any_frozen &&
            !OracleDetector(*net).detect().deadlocked) {
            saw_committed_clean = true;
        }
    }
    // Once the whole loop froze, the oracle no longer reports it.
    EXPECT_TRUE(saw_committed_clean);
}

NetworkConfig
bubbleCfg(int vcs)
{
    NetworkConfig cfg;
    cfg.vnets = 1;
    cfg.vcsPerVnet = vcs;
    cfg.vcDepth = 5;
    cfg.maxPacketSize = 5;
    cfg.scheme = DeadlockScheme::StaticBubble;
    cfg.bubbleTimeout = 64;
    return cfg;
}

TEST(StaticBubbleTest, ReservedVcUnusedInNormalOperation)
{
    auto topo = std::make_shared<Topology>(makeMesh(4, 4));
    auto net = buildNetwork(topo, bubbleCfg(2),
                            RoutingKind::MinimalAdaptive);
    InjectorConfig icfg;
    icfg.injectionRate = 0.05; // light: no recovery should trigger
    SyntheticInjector inj(*net, Pattern::UniformRandom, icfg);
    for (int i = 0; i < 3000; ++i) {
        inj.tick();
        net->step();
    }
    EXPECT_EQ(net->stats().bubbleRecoveries, 0u);
    // Reserved VC (index 1) never became active at any transit port.
    for (RouterId r = 0; r < 16; ++r) {
        for (PortId p = 0; p < 4; ++p)
            EXPECT_FALSE(net->router(r).input(p).vc(1).active());
    }
}

TEST(StaticBubbleTest, RecoversSaturatedAdaptiveMesh)
{
    auto topo = std::make_shared<Topology>(makeMesh(4, 4));
    auto net = buildNetwork(topo, bubbleCfg(2),
                            RoutingKind::MinimalAdaptive);
    InjectorConfig icfg;
    icfg.injectionRate = 0.5;
    SyntheticInjector inj(*net, Pattern::Transpose, icfg);
    for (int i = 0; i < 4000; ++i) {
        inj.tick();
        net->step();
    }
    for (int i = 0; i < 30000 && net->packetsInFlight(); ++i)
        net->step();
    EXPECT_EQ(net->packetsInFlight(), 0u);
    EXPECT_FALSE(OracleDetector(*net).detect().deadlocked);
}

TEST(StaticBubbleTest, RecoveryActuallyTriggersOnDeadlock)
{
    // Adaptive 2-VC mesh at saturation deadlocks; recovery events must
    // be observed (unlike the light-load case above).
    auto topo = std::make_shared<Topology>(makeMesh(4, 4));
    auto net = buildNetwork(topo, bubbleCfg(2),
                            RoutingKind::MinimalAdaptive);
    InjectorConfig icfg;
    icfg.injectionRate = 0.6;
    icfg.seed = 17;
    SyntheticInjector inj(*net, Pattern::BitReverse, icfg);
    for (int i = 0; i < 6000; ++i) {
        inj.tick();
        net->step();
    }
    EXPECT_GT(net->stats().bubbleRecoveries, 0u);
}

TEST(StaticBubbleTest, ConfigRequiresTwoVcs)
{
    auto topo = std::make_shared<Topology>(makeMesh(4, 4));
    EXPECT_THROW(buildNetwork(topo, bubbleCfg(1),
                              RoutingKind::MinimalAdaptive),
                 FatalError);
}

} // namespace
} // namespace spin
