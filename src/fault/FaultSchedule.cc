#include "fault/FaultSchedule.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/Logging.hh"

namespace spin::fault
{

namespace
{

/** splitmix64: the schedule's only randomness source (deterministic). */
std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

bool
kindFromString(const std::string &s, FaultKind &out)
{
    if (s == "link")
        out = FaultKind::LinkFail;
    else if (s == "router")
        out = FaultKind::RouterFail;
    else if (s == "corrupt")
        out = FaultKind::Corrupt;
    else if (s == "drop")
        out = FaultKind::Drop;
    else if (s == "random-links")
        out = FaultKind::RandomLinks;
    else if (s == "link-outage")
        out = FaultKind::LinkOutage;
    else if (s == "router-outage")
        out = FaultKind::RouterOutage;
    else if (s == "flaky")
        out = FaultKind::Flaky;
    else if (s == "flaky-links")
        out = FaultKind::FlakyLinks;
    else
        return false;
    return true;
}

/** True for kinds the legacy spin-faults/v1 schema does not know. */
bool
isV2Kind(FaultKind k)
{
    return k == FaultKind::LinkOutage || k == FaultKind::RouterOutage ||
           k == FaultKind::Flaky || k == FaultKind::FlakyLinks;
}

bool
wantInt(const obs::JsonValue &ev, const char *key, std::int64_t &out,
        std::string &err, std::size_t idx)
{
    const obs::JsonValue *v = ev.find(key);
    if (!v || !v->isNumber()) {
        err = "faults: event " + std::to_string(idx) +
              " needs an integer '" + key + "'";
        return false;
    }
    out = static_cast<std::int64_t>(v->asNumber());
    return true;
}

bool
wantProb(const obs::JsonValue &ev, double &out, std::string &err,
         std::size_t idx)
{
    const obs::JsonValue *v = ev.find("prob");
    if (!v || !v->isNumber() || v->asNumber() <= 0.0 ||
        v->asNumber() > 1.0) {
        err = "faults: event " + std::to_string(idx) +
              " needs a 'prob' in (0, 1]";
        return false;
    }
    out = v->asNumber();
    return true;
}

/**
 * Canonical undirected router pairs that carry at least one link, in
 * ascending (lo, hi) order -- the candidate set the random macros pick
 * from and the unit a LinkFail event kills.
 */
std::vector<std::pair<RouterId, RouterId>>
linkPairs(const Topology &topo)
{
    std::vector<std::pair<RouterId, RouterId>> pairs;
    for (const LinkSpec &l : topo.links()) {
        const RouterId lo = std::min(l.src, l.dst);
        const RouterId hi = std::max(l.src, l.dst);
        pairs.emplace_back(lo, hi);
    }
    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
    return pairs;
}

/** Draw @p count distinct pairs from @p pairs without replacement. */
std::vector<std::pair<RouterId, RouterId>>
drawPairs(std::vector<std::pair<RouterId, RouterId>> remaining, int count,
          std::uint64_t seed)
{
    std::vector<std::pair<RouterId, RouterId>> out;
    std::uint64_t s = seed;
    const int n = std::min<int>(count, static_cast<int>(remaining.size()));
    for (int i = 0; i < n; ++i) {
        const std::size_t pick = splitmix64(s++) % remaining.size();
        out.push_back(remaining[pick]);
        remaining.erase(remaining.begin() +
                        static_cast<std::ptrdiff_t>(pick));
    }
    return out;
}

} // namespace

const char *
toString(FaultKind k)
{
    switch (k) {
      case FaultKind::LinkFail:     return "link";
      case FaultKind::RouterFail:   return "router";
      case FaultKind::Corrupt:      return "corrupt";
      case FaultKind::Drop:         return "drop";
      case FaultKind::RandomLinks:  return "random-links";
      case FaultKind::LinkOutage:   return "link-outage";
      case FaultKind::RouterOutage: return "router-outage";
      case FaultKind::Flaky:        return "flaky";
      case FaultKind::FlakyLinks:   return "flaky-links";
    }
    return "?";
}

std::string
describe(const FaultEvent &e)
{
    const std::string at = " @ cycle " + std::to_string(e.cycle);
    switch (e.kind) {
      case FaultKind::LinkFail:
        return "link " + std::to_string(e.src) + "<->" +
               std::to_string(e.dst) + " failed" + at;
      case FaultKind::RouterFail:
        return "router " + std::to_string(e.router) + " failed" + at;
      case FaultKind::Corrupt:
        return "corrupt on link " + std::to_string(e.src) + "->" +
               std::to_string(e.dst) + at;
      case FaultKind::Drop:
        return "drop on link " + std::to_string(e.src) + "->" +
               std::to_string(e.dst) + at;
      case FaultKind::RandomLinks:
        return std::to_string(e.count) + " random links" + at;
      case FaultKind::LinkOutage:
        return "link " + std::to_string(e.src) + "<->" +
               std::to_string(e.dst) + " outage for " +
               std::to_string(e.duration) + " cycles" + at;
      case FaultKind::RouterOutage:
        return "router " + std::to_string(e.router) + " outage for " +
               std::to_string(e.duration) + " cycles" + at;
      case FaultKind::Flaky:
        return "flaky link " + std::to_string(e.src) + "<->" +
               std::to_string(e.dst) + " for " +
               std::to_string(e.window) + " cycles" + at;
      case FaultKind::FlakyLinks:
        return std::to_string(e.count) + " flaky links for " +
               std::to_string(e.window) + " cycles" + at;
    }
    return "?";
}

obs::JsonValue
FaultEvent::toJson() const
{
    using obs::JsonValue;
    JsonValue o = JsonValue::object();
    o.set("cycle", JsonValue(cycle));
    o.set("kind", JsonValue(toString(kind)));
    switch (kind) {
      case FaultKind::LinkFail:
      case FaultKind::Corrupt:
      case FaultKind::Drop:
        o.set("src", JsonValue(src));
        o.set("dst", JsonValue(dst));
        break;
      case FaultKind::RouterFail:
        o.set("router", JsonValue(router));
        break;
      case FaultKind::RandomLinks:
        o.set("count", JsonValue(count));
        o.set("seed", JsonValue(seed));
        break;
      case FaultKind::LinkOutage:
        o.set("src", JsonValue(src));
        o.set("dst", JsonValue(dst));
        o.set("duration", JsonValue(duration));
        break;
      case FaultKind::RouterOutage:
        o.set("router", JsonValue(router));
        o.set("duration", JsonValue(duration));
        break;
      case FaultKind::Flaky:
        o.set("src", JsonValue(src));
        o.set("dst", JsonValue(dst));
        o.set("window", JsonValue(window));
        o.set("prob", JsonValue(prob));
        o.set("seed", JsonValue(seed));
        break;
      case FaultKind::FlakyLinks:
        o.set("count", JsonValue(count));
        o.set("seed", JsonValue(seed));
        o.set("window", JsonValue(window));
        o.set("prob", JsonValue(prob));
        break;
    }
    return o;
}

bool
FaultSchedule::fromJson(const obs::JsonValue &doc, FaultSchedule &out,
                        std::string &err)
{
    if (!doc.isObject()) {
        err = "faults: top-level document must be a JSON object";
        return false;
    }
    const obs::JsonValue &schema = doc["schema"];
    const bool v1 = schema.isString() && schema.asString() == kSchemaV1;
    if (!schema.isString() ||
        (!v1 && schema.asString() != kSchema)) {
        err = std::string("faults: 'schema' must be '") + kSchema +
              "' (or the legacy '" + kSchemaV1 + "')";
        return false;
    }
    const obs::JsonValue *events = doc.find("events");
    if (!events || !events->isArray()) {
        err = "faults: 'events' must be an array";
        return false;
    }

    FaultSchedule s;
    for (std::size_t i = 0; i < events->size(); ++i) {
        const obs::JsonValue &ev = events->at(i);
        if (!ev.isObject()) {
            err = "faults: event " + std::to_string(i) +
                  " must be an object";
            return false;
        }
        FaultEvent e;
        const obs::JsonValue &kind = ev["kind"];
        if (!kind.isString() ||
            !kindFromString(kind.asString(), e.kind)) {
            err = "faults: event " + std::to_string(i) +
                  " has unknown kind (want link, router, corrupt, "
                  "drop, random-links, link-outage, router-outage, "
                  "flaky, or flaky-links)";
            return false;
        }
        if (v1 && isV2Kind(e.kind)) {
            err = "faults: event " + std::to_string(i) + " kind '" +
                  kind.asString() + "' needs schema '" + kSchema + "'";
            return false;
        }
        const obs::JsonValue *cyc = ev.find("cycle");
        if (!cyc || !cyc->isNumber() || cyc->asNumber() < 0) {
            err = "faults: event " + std::to_string(i) +
                  " needs a non-negative 'cycle'";
            return false;
        }
        e.cycle = cyc->asU64();

        std::int64_t v = 0;
        switch (e.kind) {
          case FaultKind::LinkFail:
          case FaultKind::Corrupt:
          case FaultKind::Drop:
            if (!wantInt(ev, "src", v, err, i))
                return false;
            e.src = static_cast<RouterId>(v);
            if (!wantInt(ev, "dst", v, err, i))
                return false;
            e.dst = static_cast<RouterId>(v);
            break;
          case FaultKind::RouterFail:
            if (!wantInt(ev, "router", v, err, i))
                return false;
            e.router = static_cast<RouterId>(v);
            break;
          case FaultKind::RandomLinks:
            if (!wantInt(ev, "count", v, err, i))
                return false;
            if (v < 1) {
                err = "faults: event " + std::to_string(i) +
                      " needs count >= 1";
                return false;
            }
            e.count = static_cast<int>(v);
            if (!wantInt(ev, "seed", v, err, i))
                return false;
            e.seed = static_cast<std::uint64_t>(v);
            break;
          case FaultKind::LinkOutage:
            if (!wantInt(ev, "src", v, err, i))
                return false;
            e.src = static_cast<RouterId>(v);
            if (!wantInt(ev, "dst", v, err, i))
                return false;
            e.dst = static_cast<RouterId>(v);
            if (!wantInt(ev, "duration", v, err, i) || v < 1) {
                if (err.empty())
                    err = "faults: event " + std::to_string(i) +
                          " needs duration >= 1";
                return false;
            }
            e.duration = static_cast<Cycle>(v);
            break;
          case FaultKind::RouterOutage:
            if (!wantInt(ev, "router", v, err, i))
                return false;
            e.router = static_cast<RouterId>(v);
            if (!wantInt(ev, "duration", v, err, i) || v < 1) {
                if (err.empty())
                    err = "faults: event " + std::to_string(i) +
                          " needs duration >= 1";
                return false;
            }
            e.duration = static_cast<Cycle>(v);
            break;
          case FaultKind::Flaky:
            if (!wantInt(ev, "src", v, err, i))
                return false;
            e.src = static_cast<RouterId>(v);
            if (!wantInt(ev, "dst", v, err, i))
                return false;
            e.dst = static_cast<RouterId>(v);
            if (!wantInt(ev, "window", v, err, i) || v < 1) {
                if (err.empty())
                    err = "faults: event " + std::to_string(i) +
                          " needs window >= 1";
                return false;
            }
            e.window = static_cast<Cycle>(v);
            if (!wantProb(ev, e.prob, err, i))
                return false;
            if (const obs::JsonValue *sd = ev.find("seed");
                sd && sd->isNumber())
                e.seed = sd->asU64();
            break;
          case FaultKind::FlakyLinks:
            if (!wantInt(ev, "count", v, err, i))
                return false;
            if (v < 1) {
                err = "faults: event " + std::to_string(i) +
                      " needs count >= 1";
                return false;
            }
            e.count = static_cast<int>(v);
            if (!wantInt(ev, "seed", v, err, i))
                return false;
            e.seed = static_cast<std::uint64_t>(v);
            if (!wantInt(ev, "window", v, err, i) || v < 1) {
                if (err.empty())
                    err = "faults: event " + std::to_string(i) +
                          " needs window >= 1";
                return false;
            }
            e.window = static_cast<Cycle>(v);
            if (!wantProb(ev, e.prob, err, i))
                return false;
            break;
        }
        s.events.push_back(e);
    }
    out = std::move(s);
    return true;
}

bool
FaultSchedule::fromFile(const std::string &path, FaultSchedule &out,
                        std::string &err)
{
    std::ifstream is(path);
    if (!is) {
        err = "cannot open fault spec file " + path;
        return false;
    }
    std::ostringstream text;
    text << is.rdbuf();
    std::string perr;
    const obs::JsonValue doc = obs::JsonValue::parse(text.str(), &perr);
    if (doc.isNull() && !perr.empty()) {
        err = path + ": " + perr;
        return false;
    }
    return fromJson(doc, out, err);
}

obs::JsonValue
FaultSchedule::toJson() const
{
    using obs::JsonValue;
    JsonValue o = JsonValue::object();
    o.set("schema", JsonValue(kSchema));
    JsonValue evs = JsonValue::array();
    for (const FaultEvent &e : events)
        evs.push(e.toJson());
    o.set("events", std::move(evs));
    return o;
}

std::string
FaultSchedule::validate(const Topology &topo) const
{
    const int nr = topo.numRouters();
    const auto pairs = linkPairs(topo);
    for (std::size_t i = 0; i < events.size(); ++i) {
        const FaultEvent &e = events[i];
        const std::string at = "faults: event " + std::to_string(i);
        switch (e.kind) {
          case FaultKind::LinkFail:
          case FaultKind::Corrupt:
          case FaultKind::Drop:
          case FaultKind::LinkOutage:
          case FaultKind::Flaky: {
            if (e.src < 0 || e.src >= nr || e.dst < 0 || e.dst >= nr)
                return at + ": link endpoint out of range";
            const auto key = std::make_pair(std::min(e.src, e.dst),
                                            std::max(e.src, e.dst));
            if (!std::binary_search(pairs.begin(), pairs.end(), key))
                return at + ": no link between routers " +
                       std::to_string(e.src) + " and " +
                       std::to_string(e.dst);
            break;
          }
          case FaultKind::RouterFail:
          case FaultKind::RouterOutage:
            if (e.router < 0 || e.router >= nr)
                return at + ": router out of range";
            break;
          case FaultKind::RandomLinks:
          case FaultKind::FlakyLinks:
            if (e.count < 1 ||
                e.count > static_cast<int>(pairs.size())) {
                return at + ": count must be in [1, " +
                       std::to_string(pairs.size()) + "]";
            }
            break;
        }
    }
    return "";
}

std::vector<FaultEvent>
FaultSchedule::concretize(const Topology &topo) const
{
    std::vector<FaultEvent> out;
    for (const FaultEvent &e : events) {
        if (e.kind != FaultKind::RandomLinks &&
            e.kind != FaultKind::FlakyLinks) {
            out.push_back(e);
            continue;
        }
        // Seed-derived selection of distinct physical links: draw from
        // the canonical sorted pair list without replacement.
        const auto picked = drawPairs(linkPairs(topo), e.count, e.seed);
        for (std::size_t i = 0; i < picked.size(); ++i) {
            FaultEvent f;
            f.cycle = e.cycle;
            f.src = picked[i].first;
            f.dst = picked[i].second;
            if (e.kind == FaultKind::RandomLinks) {
                f.kind = FaultKind::LinkFail;
            } else {
                f.kind = FaultKind::Flaky;
                f.window = e.window;
                f.prob = e.prob;
                // Per-link Bernoulli stream seed, decorrelated from the
                // draw order so adding a link never reshuffles others.
                f.seed = splitmix64(e.seed ^ (0x5f1aCull + i));
            }
            out.push_back(f);
        }
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.cycle < b.cycle;
                     });
    return out;
}

FaultSchedule
FaultSchedule::randomLinkFailures(int count, std::uint64_t seed,
                                  Cycle cycle)
{
    FaultSchedule s;
    FaultEvent e;
    e.cycle = cycle;
    e.kind = FaultKind::RandomLinks;
    e.count = count;
    e.seed = seed;
    s.events.push_back(e);
    return s;
}

std::shared_ptr<const Topology>
degradedTopology(const Topology &base,
                 const std::vector<FaultEvent> &concrete)
{
    std::vector<char> deadRouter(base.numRouters(), 0);
    std::vector<std::pair<RouterId, RouterId>> deadPairs;
    for (const FaultEvent &e : concrete) {
        if (e.kind == FaultKind::RouterFail) {
            deadRouter[e.router] = 1;
        } else if (e.kind == FaultKind::LinkFail) {
            deadPairs.emplace_back(std::min(e.src, e.dst),
                                   std::max(e.src, e.dst));
        }
    }
    std::sort(deadPairs.begin(), deadPairs.end());

    auto topo = std::make_shared<Topology>();
    std::vector<int> radix;
    radix.reserve(base.numRouters());
    for (RouterId r = 0; r < base.numRouters(); ++r)
        radix.push_back(base.radix(r));
    topo->setRouters(radix);

    for (const LinkSpec &l : base.links()) {
        if (deadRouter[l.src] || deadRouter[l.dst])
            continue;
        const auto key = std::make_pair(std::min(l.src, l.dst),
                                        std::max(l.src, l.dst));
        if (std::binary_search(deadPairs.begin(), deadPairs.end(), key))
            continue;
        topo->addLink(l);
    }
    for (const NicAttach &a : base.nics())
        topo->attachNic(a.node, a.router, a.port);

    topo->mesh = base.mesh;
    topo->dragonfly = base.dragonfly;
    topo->ring = base.ring;
    topo->name = base.name + "+faults";
    topo->finalizePartial();
    return topo;
}

} // namespace spin::fault
