#include "fault/FaultInjector.hh"

#include <algorithm>

#include "common/Logging.hh"
#include "network/Network.hh"
#include "obs/Forensics.hh"
#include "obs/Tracer.hh"
#include "router/Router.hh"

namespace spin::fault
{

namespace
{

/** splitmix64 finalizer: the flaky Bernoulli stream's hash. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Uniform double in [0, 1) from a 64-bit hash (53 mantissa bits). */
double
toUnit(std::uint64_t h)
{
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/** Flip payload bits so the flit's CRC genuinely fails. */
constexpr std::uint64_t kPoison = 0xdeadbeefcafef00dull;

} // namespace

FaultInjector::FaultInjector(Network &net, FaultSchedule schedule)
    : net_(net), schedule_(std::move(schedule))
{
    const std::string verr = schedule_.validate(net_.topo());
    if (!verr.empty())
        SPIN_FATAL(verr);
    concrete_ = schedule_.concretize(net_.topo());
    failedLink_.assign(net_.numLinks(), 0);
    deadRouter_.assign(net_.numRouters(), 0);
    pendingCorrupt_.assign(net_.numLinks(), 0);
    pendingDrop_.assign(net_.numLinks(), 0);
    outageEnd_.assign(net_.numLinks(), 0);
    flakyEnd_.assign(net_.numLinks(), 0);
    flakyProb_.assign(net_.numLinks(), 0.0);
    flakySeed_.assign(net_.numLinks(), 0);
    flakyTx_.assign(net_.numLinks(), 0);
}

const Topology &
FaultInjector::degraded() const
{
    return degraded_ ? *degraded_ : net_.topo();
}

bool
FaultInjector::outPortAlive(RouterId r, PortId p) const
{
    const int li = net_.linkIndexOf(r, p);
    if (li < 0)
        return true; // NIC / unwired: not a router-to-router channel
    return !failedLink_[static_cast<std::size_t>(li)] &&
           !deadRouter_[static_cast<std::size_t>(
               net_.link(li).spec().dst)];
}

void
FaultInjector::tick(Cycle now)
{
    if (nextIdx_ >= concrete_.size() || concrete_[nextIdx_].cycle > now)
        return;

    bool permanentApplied = false;
    while (nextIdx_ < concrete_.size() &&
           concrete_[nextIdx_].cycle <= now) {
        const FaultEvent &e = concrete_[nextIdx_];
        switch (e.kind) {
          case FaultKind::LinkFail:
            applyLinkFail(e);
            permanentApplied = true;
            break;
          case FaultKind::RouterFail:
            applyRouterFail(e, now);
            permanentApplied = true;
            break;
          case FaultKind::Corrupt:
          case FaultKind::Drop:
            applyTransient(e);
            break;
          case FaultKind::LinkOutage:
          case FaultKind::RouterOutage:
            applyOutage(e);
            break;
          case FaultKind::Flaky:
            applyFlaky(e);
            break;
          case FaultKind::RandomLinks:
          case FaultKind::FlakyLinks:
            SPIN_FATAL("unexpanded macro event in injector");
        }
        noteApplied(e, now);
        ++nextIdx_;
    }

    if (permanentApplied) {
        anyPermanent_ = true;
        degraded_ = degradedTopology(
            net_.topo(),
            {concrete_.begin(),
             concrete_.begin() + static_cast<std::ptrdiff_t>(nextIdx_)});
    }
}

void
FaultInjector::failLinkIndex(int li)
{
    if (li < 0 || failedLink_[static_cast<std::size_t>(li)])
        return;
    failedLink_[static_cast<std::size_t>(li)] = 1;
    net_.link(li).fail();
}

void
FaultInjector::applyLinkFail(const FaultEvent &e)
{
    for (int li = 0; li < net_.numLinks(); ++li) {
        const LinkSpec &s = net_.link(li).spec();
        const bool match = (s.src == e.src && s.dst == e.dst) ||
                           (s.src == e.dst && s.dst == e.src);
        if (match)
            failLinkIndex(li);
    }
    ++net_.stats().linksFailed;
}

void
FaultInjector::applyRouterFail(const FaultEvent &e, Cycle now)
{
    if (deadRouter_[static_cast<std::size_t>(e.router)])
        return;
    deadRouter_[static_cast<std::size_t>(e.router)] = 1;
    for (int li = 0; li < net_.numLinks(); ++li) {
        const LinkSpec &s = net_.link(li).spec();
        if (s.src == e.router || s.dst == e.router)
            failLinkIndex(li);
    }
    net_.router(e.router).markDead(now);
    ++net_.stats().routersFailed;
}

void
FaultInjector::applyTransient(const FaultEvent &e)
{
    auto &pending =
        e.kind == FaultKind::Corrupt ? pendingCorrupt_ : pendingDrop_;
    // Arm the directed channel src -> dst; fall back to the reverse
    // direction when the spec named the pair the other way round.
    int armed = -1;
    for (int pass = 0; pass < 2 && armed < 0; ++pass) {
        const RouterId from = pass == 0 ? e.src : e.dst;
        const RouterId to = pass == 0 ? e.dst : e.src;
        for (int li = 0; li < net_.numLinks(); ++li) {
            const LinkSpec &s = net_.link(li).spec();
            if (s.src == from && s.dst == to) {
                ++pending[static_cast<std::size_t>(li)];
                armed = li;
                break;
            }
        }
    }
    ++net_.stats().transientFaults;
}

void
FaultInjector::applyOutage(const FaultEvent &e)
{
    // A down link (or a down router's links) garbles everything that
    // crosses it during the window; control traffic is assumed on a
    // protected sideband, so credits and SMs keep flowing.
    const Cycle end = e.cycle + e.duration;
    for (int li = 0; li < net_.numLinks(); ++li) {
        const LinkSpec &s = net_.link(li).spec();
        bool hit;
        if (e.kind == FaultKind::RouterOutage)
            hit = s.src == e.router || s.dst == e.router;
        else
            hit = (s.src == e.src && s.dst == e.dst) ||
                  (s.src == e.dst && s.dst == e.src);
        if (hit) {
            auto &slot = outageEnd_[static_cast<std::size_t>(li)];
            slot = std::max(slot, end);
        }
    }
    ++net_.stats().transientFaults;
}

void
FaultInjector::applyFlaky(const FaultEvent &e)
{
    const Cycle end = e.cycle + e.window;
    for (int li = 0; li < net_.numLinks(); ++li) {
        const LinkSpec &s = net_.link(li).spec();
        const bool hit = (s.src == e.src && s.dst == e.dst) ||
                         (s.src == e.dst && s.dst == e.src);
        if (!hit)
            continue;
        const auto i = static_cast<std::size_t>(li);
        flakyEnd_[i] = std::max(flakyEnd_[i], end);
        flakyProb_[i] = e.prob;
        // Decorrelate the two directions (and parallel links) without
        // depending on arm order.
        flakySeed_[i] = mix64(e.seed ^ (0x1000003ull * (li + 1)));
    }
    ++net_.stats().transientFaults;
}

void
FaultInjector::noteApplied(const FaultEvent &e, Cycle now)
{
    lastApplied_ = &concrete_[nextIdx_];

    if (obs::Tracer *t = net_.trace()) {
        obs::TraceEvent te;
        te.cycle = now;
        te.category = obs::kCatFault;
        switch (e.kind) {
          case FaultKind::LinkFail:     te.name = "link_fail"; break;
          case FaultKind::RouterFail:   te.name = "router_fail"; break;
          case FaultKind::Corrupt:      te.name = "corrupt_arm"; break;
          case FaultKind::Drop:         te.name = "drop_arm"; break;
          case FaultKind::RandomLinks:  te.name = "random_links"; break;
          case FaultKind::LinkOutage:   te.name = "link_outage"; break;
          case FaultKind::RouterOutage: te.name = "router_outage"; break;
          case FaultKind::Flaky:        te.name = "flaky_arm"; break;
          case FaultKind::FlakyLinks:   te.name = "flaky_links"; break;
        }
        const bool routerKind = e.kind == FaultKind::RouterFail ||
                                e.kind == FaultKind::RouterOutage;
        te.router = routerKind ? e.router : e.src;
        te.arg0 = routerKind ? -1 : e.dst;
        t->record(te);
    }
    if (obs::Forensics *f = net_.forensics())
        f->noteFault(now, describe(e));
}

bool
FaultInjector::corruptAttempt(std::size_t li, Cycle t)
{
    if (t < outageEnd_[li])
        return true;
    if (t < flakyEnd_[li]) {
        const std::uint64_t draw = mix64(flakySeed_[li] ^ ++flakyTx_[li]);
        if (toUnit(draw) < flakyProb_[li])
            return true;
    }
    return false;
}

void
FaultInjector::traceFlitEvent(const char *name, int li, const Packet &pkt,
                              Cycle now, std::int64_t arg1)
{
    obs::Tracer *t = net_.trace();
    if (!t)
        return;
    obs::TraceEvent te;
    te.cycle = now;
    te.category = obs::kCatFault;
    te.name = name;
    te.router = net_.link(li).spec().src;
    te.packet = pkt.id;
    te.arg0 = li;
    te.arg1 = arg1;
    t->record(te);
}

Cycle
FaultInjector::onFlitTraverse(int li, Flit &f, Packet &pkt, Cycle now)
{
    const auto i = static_cast<std::size_t>(li);
    bool oneShot = false;
    if (pendingCorrupt_[i] > 0) {
        --pendingCorrupt_[i];
        oneShot = true;
    }
    const bool transientWindow = now < outageEnd_[i] || now < flakyEnd_[i];

    Cycle extra = 0;
    if (oneShot || transientWindow) {
        const ReliabilityConfig &rel = net_.config().reliability;
        if (!rel.enabled) {
            // Legacy semantics: one transmission, corruption delivered
            // as-is.
            if (oneShot || corruptAttempt(i, now)) {
                pkt.corrupted = true;
                f.payload ^= kPoison;
                traceFlitEvent("flit_corrupt", li, pkt, now, -1);
            }
        } else {
            // Link-level retry, modeled analytically: attempt k starts
            // one link round trip (downstream CRC check + NACK + resend)
            // after attempt k-1, so a window that ends mid-recovery
            // stops corrupting later attempts. The one-shot arm
            // corrupts only the first attempt.
            const Cycle rtt = 2 * net_.link(li).latency() + 1;
            int n = 0;
            while (n <= rel.maxLinkRetries &&
                   ((n == 0 && oneShot) || corruptAttempt(i, now + n * rtt)))
                ++n;
            if (n > 0) {
                Stats &st = net_.stats();
                st.crcFails += static_cast<std::uint64_t>(n);
                if (n <= rel.maxLinkRetries) {
                    // Recovered at the link layer: the flit arrives
                    // clean, n round trips late.
                    st.linkRetries += static_cast<std::uint64_t>(n);
                    pkt.linkRetried = true;
                    traceFlitEvent("flit_retry", li, pkt, now, n);
                    extra = static_cast<Cycle>(n) * rtt;
                } else {
                    // Retry budget exhausted: deliver the last attempt
                    // poisoned and let the end-to-end layer recover the
                    // packet.
                    st.linkRetries +=
                        static_cast<std::uint64_t>(rel.maxLinkRetries);
                    pkt.corrupted = true;
                    f.payload ^= kPoison;
                    traceFlitEvent("flit_corrupt", li, pkt, now, n);
                }
            }
        }
    }

    if (pendingDrop_[i] > 0) {
        --pendingDrop_[i];
        pkt.faultDropped = true;
        traceFlitEvent("flit_drop", li, pkt, now, -1);
    }
    return extra;
}

void
FaultInjector::onRotationTraverse(int li, Packet &pkt, Cycle now, int flits)
{
    const auto i = static_cast<std::size_t>(li);
    if (pendingDrop_[i] > 0) {
        --pendingDrop_[i];
        pkt.faultDropped = true;
        traceFlitEvent("flit_drop", li, pkt, now, -1);
    }

    bool oneShot = false;
    if (pendingCorrupt_[i] > 0) {
        --pendingCorrupt_[i];
        oneShot = true;
    }
    if (!oneShot && now >= outageEnd_[i] && now >= flakyEnd_[i])
        return;

    // Rotations stream the whole packet and are never retried (a spin
    // cannot stall on a NACK without breaking the synchronized move),
    // so any corrupted flit poisons the packet for the end-to-end layer.
    int bad = oneShot ? 1 : 0;
    for (int k = 0; k < flits; ++k)
        bad += corruptAttempt(i, now + static_cast<Cycle>(k));
    if (bad == 0)
        return;
    pkt.corrupted = true;
    if (net_.config().reliability.enabled)
        net_.stats().crcFails += static_cast<std::uint64_t>(bad);
    traceFlitEvent("flit_corrupt", li, pkt, now, bad);
}

obs::JsonValue
FaultInjector::toJson() const
{
    using obs::JsonValue;
    JsonValue o = JsonValue::object();
    o.set("schedule", schedule_.toJson());
    JsonValue applied = JsonValue::array();
    for (std::size_t i = 0; i < nextIdx_; ++i)
        applied.push(concrete_[i].toJson());
    o.set("applied", std::move(applied));
    o.set("pending",
          JsonValue(static_cast<std::uint64_t>(concrete_.size() -
                                               nextIdx_)));
    int failed = 0;
    for (const char f : failedLink_)
        failed += f;
    o.set("failedLinks", JsonValue(failed));
    int dead = 0;
    for (const char d : deadRouter_)
        dead += d;
    o.set("deadRouters", JsonValue(dead));
    return o;
}

} // namespace spin::fault
