#include "fault/FaultInjector.hh"

#include "common/Logging.hh"
#include "network/Network.hh"
#include "obs/Forensics.hh"
#include "obs/Tracer.hh"
#include "router/Router.hh"

namespace spin::fault
{

FaultInjector::FaultInjector(Network &net, FaultSchedule schedule)
    : net_(net), schedule_(std::move(schedule))
{
    const std::string verr = schedule_.validate(net_.topo());
    if (!verr.empty())
        SPIN_FATAL(verr);
    concrete_ = schedule_.concretize(net_.topo());
    failedLink_.assign(net_.numLinks(), 0);
    deadRouter_.assign(net_.numRouters(), 0);
    pendingCorrupt_.assign(net_.numLinks(), 0);
    pendingDrop_.assign(net_.numLinks(), 0);
}

const Topology &
FaultInjector::degraded() const
{
    return degraded_ ? *degraded_ : net_.topo();
}

bool
FaultInjector::outPortAlive(RouterId r, PortId p) const
{
    const int li = net_.linkIndexOf(r, p);
    if (li < 0)
        return true; // NIC / unwired: not a router-to-router channel
    return !failedLink_[static_cast<std::size_t>(li)] &&
           !deadRouter_[static_cast<std::size_t>(
               net_.link(li).spec().dst)];
}

void
FaultInjector::tick(Cycle now)
{
    if (nextIdx_ >= concrete_.size() || concrete_[nextIdx_].cycle > now)
        return;

    bool permanentApplied = false;
    while (nextIdx_ < concrete_.size() &&
           concrete_[nextIdx_].cycle <= now) {
        const FaultEvent &e = concrete_[nextIdx_];
        switch (e.kind) {
          case FaultKind::LinkFail:
            applyLinkFail(e);
            permanentApplied = true;
            break;
          case FaultKind::RouterFail:
            applyRouterFail(e, now);
            permanentApplied = true;
            break;
          case FaultKind::Corrupt:
          case FaultKind::Drop:
            applyTransient(e);
            break;
          case FaultKind::RandomLinks:
            SPIN_FATAL("unexpanded random-links event in injector");
        }
        noteApplied(e, now);
        ++nextIdx_;
    }

    if (permanentApplied) {
        anyPermanent_ = true;
        degraded_ = degradedTopology(
            net_.topo(),
            {concrete_.begin(),
             concrete_.begin() + static_cast<std::ptrdiff_t>(nextIdx_)});
    }
}

void
FaultInjector::failLinkIndex(int li)
{
    if (li < 0 || failedLink_[static_cast<std::size_t>(li)])
        return;
    failedLink_[static_cast<std::size_t>(li)] = 1;
    net_.link(li).fail();
}

void
FaultInjector::applyLinkFail(const FaultEvent &e)
{
    for (int li = 0; li < net_.numLinks(); ++li) {
        const LinkSpec &s = net_.link(li).spec();
        const bool match = (s.src == e.src && s.dst == e.dst) ||
                           (s.src == e.dst && s.dst == e.src);
        if (match)
            failLinkIndex(li);
    }
    ++net_.stats().linksFailed;
}

void
FaultInjector::applyRouterFail(const FaultEvent &e, Cycle now)
{
    if (deadRouter_[static_cast<std::size_t>(e.router)])
        return;
    deadRouter_[static_cast<std::size_t>(e.router)] = 1;
    for (int li = 0; li < net_.numLinks(); ++li) {
        const LinkSpec &s = net_.link(li).spec();
        if (s.src == e.router || s.dst == e.router)
            failLinkIndex(li);
    }
    net_.router(e.router).markDead(now);
    ++net_.stats().routersFailed;
}

void
FaultInjector::applyTransient(const FaultEvent &e)
{
    auto &pending =
        e.kind == FaultKind::Corrupt ? pendingCorrupt_ : pendingDrop_;
    // Arm the directed channel src -> dst; fall back to the reverse
    // direction when the spec named the pair the other way round.
    int armed = -1;
    for (int pass = 0; pass < 2 && armed < 0; ++pass) {
        const RouterId from = pass == 0 ? e.src : e.dst;
        const RouterId to = pass == 0 ? e.dst : e.src;
        for (int li = 0; li < net_.numLinks(); ++li) {
            const LinkSpec &s = net_.link(li).spec();
            if (s.src == from && s.dst == to) {
                ++pending[static_cast<std::size_t>(li)];
                armed = li;
                break;
            }
        }
    }
    ++net_.stats().transientFaults;
}

void
FaultInjector::noteApplied(const FaultEvent &e, Cycle now)
{
    lastApplied_ = &concrete_[nextIdx_];

    if (obs::Tracer *t = net_.trace()) {
        obs::TraceEvent te;
        te.cycle = now;
        te.category = obs::kCatFault;
        switch (e.kind) {
          case FaultKind::LinkFail:   te.name = "link_fail"; break;
          case FaultKind::RouterFail: te.name = "router_fail"; break;
          case FaultKind::Corrupt:    te.name = "corrupt_arm"; break;
          case FaultKind::Drop:       te.name = "drop_arm"; break;
          case FaultKind::RandomLinks: te.name = "random_links"; break;
        }
        te.router = e.kind == FaultKind::RouterFail ? e.router : e.src;
        te.arg0 = e.kind == FaultKind::RouterFail ? -1 : e.dst;
        t->record(te);
    }
    if (obs::Forensics *f = net_.forensics())
        f->noteFault(now, describe(e));
}

void
FaultInjector::onFlitTraverse(int li, Packet &pkt, Cycle now)
{
    const auto i = static_cast<std::size_t>(li);
    if (pendingCorrupt_[i] > 0) {
        --pendingCorrupt_[i];
        pkt.corrupted = true;
        if (obs::Tracer *t = net_.trace()) {
            obs::TraceEvent te;
            te.cycle = now;
            te.category = obs::kCatFault;
            te.name = "flit_corrupt";
            te.router = net_.link(li).spec().src;
            te.packet = pkt.id;
            te.arg0 = li;
            t->record(te);
        }
    }
    if (pendingDrop_[i] > 0) {
        --pendingDrop_[i];
        pkt.faultDropped = true;
        if (obs::Tracer *t = net_.trace()) {
            obs::TraceEvent te;
            te.cycle = now;
            te.category = obs::kCatFault;
            te.name = "flit_drop";
            te.router = net_.link(li).spec().src;
            te.packet = pkt.id;
            te.arg0 = li;
            t->record(te);
        }
    }
}

obs::JsonValue
FaultInjector::toJson() const
{
    using obs::JsonValue;
    JsonValue o = JsonValue::object();
    o.set("schedule", schedule_.toJson());
    JsonValue applied = JsonValue::array();
    for (std::size_t i = 0; i < nextIdx_; ++i)
        applied.push(concrete_[i].toJson());
    o.set("applied", std::move(applied));
    o.set("pending",
          JsonValue(static_cast<std::uint64_t>(concrete_.size() -
                                               nextIdx_)));
    int failed = 0;
    for (const char f : failedLink_)
        failed += f;
    o.set("failedLinks", JsonValue(failed));
    int dead = 0;
    for (const char d : deadRouter_)
        dead += d;
    o.set("deadRouters", JsonValue(dead));
    return o;
}

} // namespace spin::fault
