/**
 * @file
 * Runtime fault injector: applies a FaultSchedule to a live Network.
 *
 * The injector owns the fault state the rest of the simulator queries:
 * which links have failed, which routers are dead, and the degraded
 * routing tables (a Topology rebuilt with finalizePartial() after each
 * permanent fault). Failure semantics are *drain-based*: a failed link
 * or dead router stops accepting NEW commitments (routing filter, NIC
 * admission gate, SM launch drop) while packets that already hold a
 * granted VC drain normally -- so flow control never wedges on credits
 * that will not return. With no injector attached every hook is a null
 * check and behavior is bit-identical to the fault-free simulator.
 */

#ifndef SPINNOC_FAULT_FAULTINJECTOR_HH
#define SPINNOC_FAULT_FAULTINJECTOR_HH

#include <memory>
#include <vector>

#include "common/Packet.hh"
#include "common/Types.hh"
#include "fault/FaultSchedule.hh"
#include "obs/Json.hh"

namespace spin
{
class Network;
}

namespace spin::fault
{

/** See file comment. Owned by the Network (attachFaults). */
class FaultInjector
{
  public:
    /** @p schedule is validated and concretized against net's topology
     *  (FatalError on an invalid schedule). */
    FaultInjector(Network &net, FaultSchedule schedule);

    /** Apply every event due at @p now. Called at the top of
     *  Network::step(), before wire arrivals. */
    void tick(Cycle now);

    /// @name Fault state queries (hot paths)
    /// @{
    /** True when link index @p li has permanently failed. */
    bool linkFailed(int li) const
    {
        return li >= 0 && failedLink_[static_cast<std::size_t>(li)];
    }
    /** True when router @p r has permanently failed. */
    bool routerDead(RouterId r) const
    {
        return deadRouter_[static_cast<std::size_t>(r)];
    }
    /** True once any permanent fault has been applied -- the routing
     *  fast path skips all fault filtering until then. */
    bool anyPermanent() const { return anyPermanent_; }
    /** True when out-port @p p of router @p r still leads somewhere
     *  (NIC and unwired ports count as alive). */
    bool outPortAlive(RouterId r, PortId p) const;
    /// @}

    /// @name Degraded routing tables
    /// @{
    /** The surviving topology (the base topology until the first
     *  permanent fault). */
    const Topology &degraded() const;
    /** Hop distance in the surviving topology; -1 when unreachable. */
    int degradedDistance(RouterId from, RouterId to) const
    {
        return degraded().distance(from, to);
    }
    /// @}

    /** Transient-fault hook: called by Router::sendFlit for every flit
     *  entering link @p li; consumes pending corrupt/drop arms. */
    void onFlitTraverse(int li, Packet &pkt, Cycle now);

    /** Concrete (macro-expanded) event list, sorted by cycle. */
    const std::vector<FaultEvent> &events() const { return concrete_; }
    /** Most recently applied event, nullptr before the first. */
    const FaultEvent *lastApplied() const { return lastApplied_; }
    /** Events applied so far. */
    std::size_t applied() const { return nextIdx_; }

    obs::JsonValue toJson() const;

  private:
    void applyLinkFail(const FaultEvent &e);
    void applyRouterFail(const FaultEvent &e, Cycle now);
    void applyTransient(const FaultEvent &e);
    void failLinkIndex(int li);
    void noteApplied(const FaultEvent &e, Cycle now);

    Network &net_;
    FaultSchedule schedule_;
    std::vector<FaultEvent> concrete_;
    std::size_t nextIdx_ = 0;

    std::vector<char> failedLink_;
    std::vector<char> deadRouter_;
    bool anyPermanent_ = false;
    const FaultEvent *lastApplied_ = nullptr;

    /** Per-link armed transient counts, consumed by onFlitTraverse. */
    std::vector<int> pendingCorrupt_;
    std::vector<int> pendingDrop_;

    /** Rebuilt after each tick that applied a permanent event. */
    std::shared_ptr<const Topology> degraded_;
};

} // namespace spin::fault

#endif // SPINNOC_FAULT_FAULTINJECTOR_HH
