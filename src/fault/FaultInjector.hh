/**
 * @file
 * Runtime fault injector: applies a FaultSchedule to a live Network.
 *
 * The injector owns the fault state the rest of the simulator queries:
 * which links have failed, which routers are dead, which links are in a
 * transient outage or flaky window, and the degraded routing tables (a
 * Topology rebuilt with finalizePartial() after each permanent fault).
 * Permanent-failure semantics are *drain-based*: a failed link or dead
 * router stops accepting NEW commitments (routing filter, NIC admission
 * gate, SM launch drop) while packets that already hold a granted VC
 * drain normally -- so flow control never wedges on credits that will
 * not return. Transient outages and flaky windows are *data-plane*
 * corruption: the link keeps moving flits (control is assumed on a
 * protected sideband) but garbles them, and the reliability layer
 * (link-level retry + NIC retransmission, docs/FAULTS.md) recovers.
 * With no injector attached every hook is a null check and behavior is
 * bit-identical to the fault-free simulator.
 */

#ifndef SPINNOC_FAULT_FAULTINJECTOR_HH
#define SPINNOC_FAULT_FAULTINJECTOR_HH

#include <memory>
#include <vector>

#include "common/Packet.hh"
#include "common/Types.hh"
#include "fault/FaultSchedule.hh"
#include "obs/Json.hh"

namespace spin
{
class Network;
}

namespace spin::fault
{

/** See file comment. Owned by the Network (attachFaults). */
class FaultInjector
{
  public:
    /** @p schedule is validated and concretized against net's topology
     *  (FatalError on an invalid schedule). */
    FaultInjector(Network &net, FaultSchedule schedule);

    /** Apply every event due at @p now. Called at the top of
     *  Network::step(), before wire arrivals. */
    void tick(Cycle now);

    /// @name Fault state queries (hot paths)
    /// @{
    /** True when link index @p li has permanently failed. */
    bool linkFailed(int li) const
    {
        return li >= 0 && failedLink_[static_cast<std::size_t>(li)];
    }
    /** True when router @p r has permanently failed. */
    bool routerDead(RouterId r) const
    {
        return deadRouter_[static_cast<std::size_t>(r)];
    }
    /** True once any permanent fault has been applied -- the routing
     *  fast path skips all fault filtering until then. */
    bool anyPermanent() const { return anyPermanent_; }
    /** True when out-port @p p of router @p r still leads somewhere
     *  (NIC and unwired ports count as alive). */
    bool outPortAlive(RouterId r, PortId p) const;
    /// @}

    /// @name Degraded routing tables
    /// @{
    /** The surviving topology (the base topology until the first
     *  permanent fault). */
    const Topology &degraded() const;
    /** Hop distance in the surviving topology; -1 when unreachable. */
    int degradedDistance(RouterId from, RouterId to) const
    {
        return degraded().distance(from, to);
    }
    /// @}

    /**
     * Transient-fault hook: called by Router::sendFlit for every flit
     * entering link @p li. Consumes pending corrupt/drop arms and
     * evaluates the link's outage / flaky state. With the reliability
     * layer off, a corrupted transmission poisons the flit in place
     * (legacy behavior). With it on, corrupted transmissions are
     * retried up to reliability.maxLinkRetries times -- modeled
     * analytically as an arrival delay of one link round trip per
     * failed attempt -- and only a retry-exhausted flit is delivered
     * poisoned for the end-to-end layer to recover.
     *
     * @return extra arrival delay in cycles (0 on the fault-free path).
     */
    Cycle onFlitTraverse(int li, Flit &f, Packet &pkt, Cycle now);

    /**
     * Transient-fault hook for the SPIN rotation path
     * (Router::forceSend): consumes pending corrupt/drop arms and
     * evaluates outage / flaky corruption for @p flits rotated flits.
     * Rotations are never retried (the synchronized spin cannot stall
     * on a NACK); a corrupted rotation delivers the packet poisoned
     * and, with reliability on, the end-to-end layer recovers it.
     */
    void onRotationTraverse(int li, Packet &pkt, Cycle now, int flits);

    /** Concrete (macro-expanded) event list, sorted by cycle. */
    const std::vector<FaultEvent> &events() const { return concrete_; }
    /** Most recently applied event, nullptr before the first. */
    const FaultEvent *lastApplied() const { return lastApplied_; }
    /** Events applied so far. */
    std::size_t applied() const { return nextIdx_; }

    obs::JsonValue toJson() const;

  private:
    void applyLinkFail(const FaultEvent &e);
    void applyRouterFail(const FaultEvent &e, Cycle now);
    void applyTransient(const FaultEvent &e);
    void applyOutage(const FaultEvent &e);
    void applyFlaky(const FaultEvent &e);
    void failLinkIndex(int li);
    void noteApplied(const FaultEvent &e, Cycle now);
    /** One transmission attempt on link @p li at cycle @p t: corrupted
     *  by an active outage window or a flaky Bernoulli hit? Consumes
     *  one draw from the link's flaky stream when its window is live. */
    bool corruptAttempt(std::size_t li, Cycle t);
    void traceFlitEvent(const char *name, int li, const Packet &pkt,
                        Cycle now, std::int64_t arg1);

    Network &net_;
    FaultSchedule schedule_;
    std::vector<FaultEvent> concrete_;
    std::size_t nextIdx_ = 0;

    std::vector<char> failedLink_;
    std::vector<char> deadRouter_;
    bool anyPermanent_ = false;
    const FaultEvent *lastApplied_ = nullptr;

    /** Per-link armed transient counts, consumed by onFlitTraverse. */
    std::vector<int> pendingCorrupt_;
    std::vector<int> pendingDrop_;

    /** Per-link outage window end (exclusive); 0 = never in outage. */
    std::vector<Cycle> outageEnd_;
    /** Per-link flaky window end (exclusive), probability and Bernoulli
     *  stream state. The transmission counter is advanced only by the
     *  shard that owns the link's source router (or by serial phases),
     *  so the stream is single-writer and bit-deterministic for any
     *  thread count. */
    std::vector<Cycle> flakyEnd_;
    std::vector<double> flakyProb_;
    std::vector<std::uint64_t> flakySeed_;
    std::vector<std::uint64_t> flakyTx_;

    /** Rebuilt after each tick that applied a permanent event. */
    std::shared_ptr<const Topology> degraded_;
};

} // namespace spin::fault

#endif // SPINNOC_FAULT_FAULTINJECTOR_HH
