/**
 * @file
 * Declarative fault schedule: which links and routers fail, and when.
 *
 * A schedule is a JSON document (schema "spin-faults/v2", reference in
 * docs/FAULTS.md) listing timed events. Permanent events (link and
 * router failures) degrade the topology; transient events (corrupt,
 * drop, time-bounded outages, flaky links) tag individual flits in
 * flight. Schedules are deterministic: the "random-links" and
 * "flaky-links" macros expand into concrete events from their own
 * seeds, so the same spec + seed produces bit-identical runs for any
 * worker count -- the same contract campaign cells obey. Documents
 * declaring the older "spin-faults/v1" schema still parse; the v2-only
 * kinds (outages, flaky links) require the v2 declaration.
 */

#ifndef SPINNOC_FAULT_FAULTSCHEDULE_HH
#define SPINNOC_FAULT_FAULTSCHEDULE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/Types.hh"
#include "obs/Json.hh"
#include "topology/Topology.hh"

namespace spin::fault
{

/** Fault event kinds (JSON "kind" values in docs/FAULTS.md). */
enum class FaultKind : std::uint8_t
{
    LinkFail,     //!< permanent: both directions between src and dst die
    RouterFail,   //!< permanent: the router and all its links die
    Corrupt,      //!< transient: tag the next flit on (src, dst) corrupted
    Drop,         //!< transient: the next packet on (src, dst) is
                  //!< discarded by the destination NIC on ejection
    RandomLinks,  //!< macro: seed-derived set of LinkFail events
    LinkOutage,   //!< transient: every flit crossing (src, dst) in
                  //!< [cycle, cycle + duration) is corrupted
    RouterOutage, //!< transient: LinkOutage on every link of the router
    Flaky,        //!< transient: per-flit corruption probability on
                  //!< (src, dst) over [cycle, cycle + window)
    FlakyLinks,   //!< macro: seed-derived set of Flaky events
};

/** JSON name of @p k ("link", "router", "corrupt", "drop",
 *  "random-links", "link-outage", "router-outage", "flaky",
 *  "flaky-links"). */
const char *toString(FaultKind k);

struct FaultEvent;

/** Human-readable one-liner, e.g. "link 5<->6 failed @ cycle 1000". */
std::string describe(const FaultEvent &e);

/** One scheduled fault. Fields that do not apply stay at sentinels. */
struct FaultEvent
{
    Cycle cycle = 0;
    FaultKind kind = FaultKind::LinkFail;
    /** Link endpoints (LinkFail / Corrupt / Drop / LinkOutage / Flaky). */
    RouterId src = kInvalidId;
    RouterId dst = kInvalidId;
    /** Failing router (RouterFail / RouterOutage). */
    RouterId router = kInvalidId;
    /** Number of links to pick (RandomLinks / FlakyLinks). */
    int count = 0;
    /** Selection seed (RandomLinks / FlakyLinks); also the Bernoulli
     *  stream seed of Flaky events. */
    std::uint64_t seed = 0;
    /** Outage length in cycles (LinkOutage / RouterOutage). */
    Cycle duration = 0;
    /** Flaky window length in cycles (Flaky / FlakyLinks). */
    Cycle window = 0;
    /** Per-flit corruption probability in (0, 1] (Flaky / FlakyLinks). */
    double prob = 0.0;

    obs::JsonValue toJson() const;
};

/** See file comment. */
struct FaultSchedule
{
    static constexpr const char *kSchema = "spin-faults/v2";
    /** Still-accepted legacy schema (permanent + one-shot kinds only). */
    static constexpr const char *kSchemaV1 = "spin-faults/v1";

    std::vector<FaultEvent> events;

    bool empty() const { return events.empty(); }

    /** Parse a schedule document; false + @p err on malformed input. */
    static bool fromJson(const obs::JsonValue &doc, FaultSchedule &out,
                         std::string &err);
    /** Parse a schedule file (JSON). */
    static bool fromFile(const std::string &path, FaultSchedule &out,
                         std::string &err);
    /** Echo of the schedule (round-trips through fromJson). */
    obs::JsonValue toJson() const;

    /** Check every event against @p topo. Empty string when ok. */
    std::string validate(const Topology &topo) const;

    /**
     * Expand macros into concrete events against @p topo:
     * "random-links" becomes its seed-derived LinkFail events and
     * "flaky-links" its seed-derived Flaky events; other events pass
     * through. The result is stably sorted by cycle and fully
     * deterministic.
     */
    std::vector<FaultEvent> concretize(const Topology &topo) const;

    /** Schedule failing @p count seed-picked links at @p cycle. */
    static FaultSchedule randomLinkFailures(int count, std::uint64_t seed,
                                            Cycle cycle);
};

/**
 * The surviving topology after the permanent events in @p concrete:
 * every link between a failed pair (both directions, parallel links
 * included) and every link of a failed router is removed; routers and
 * NIC attachments keep their ids. Transient events (outages, flaky
 * links, one-shot arms) never remove anything here. The result is
 * finalized with finalizePartial(), so distance() returns -1 for
 * disconnected pairs instead of failing the strong-connectivity check.
 */
std::shared_ptr<const Topology>
degradedTopology(const Topology &base,
                 const std::vector<FaultEvent> &concrete);

} // namespace spin::fault

#endif // SPINNOC_FAULT_FAULTSCHEDULE_HH
