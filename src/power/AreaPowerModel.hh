/**
 * @file
 * Analytical router area / power model.
 *
 * The paper synthesizes RTL in the Nangate 15nm open cell library and
 * reports *relative* numbers (Fig. 10 and the area/power claims of
 * Sec. VI-C/D). We reproduce those ratios with a component-level
 * analytical model: per-bit buffer cells, a radix^2 crossbar, VC and
 * switch allocators, routing tables, and the deadlock-scheme extras
 * (escape buffers, the Static Bubble recovery buffer + FSM, SPIN's
 * loop buffer + FSM + probe/move managers). Constants are calibrated
 * against published synthesis ratios; see EXPERIMENTS.md.
 */

#ifndef SPINNOC_POWER_AREAPOWERMODEL_HH
#define SPINNOC_POWER_AREAPOWERMODEL_HH

#include <string>

namespace spin
{

/** Deadlock-freedom extras attached to a router design. */
enum class SchemeExtras
{
    None,         //!< plain turn-restricted router (e.g. west-first)
    EscapeVc,     //!< +1 escape VC per vnet + escape routing logic
    StaticBubble, //!< +1 reserved VC per vnet + timeout FSM
    Spin,         //!< +loop buffer, FSM, probe/move managers
};

/** One router design point. */
struct RouterDesign
{
    int radix = 5;           //!< ports incl. local
    int vnets = 3;           //!< message classes
    int vcsPerVnet = 1;      //!< data VCs per vnet (extras separate)
    int vcDepthFlits = 5;    //!< buffer depth per VC
    int flitBits = 128;      //!< datapath width
    int numRouters = 64;     //!< network size (loop buffer sizing)
    SchemeExtras extras = SchemeExtras::None;
};

/** Area in um^2 and power in mW (relative fidelity only). */
struct AreaPower
{
    double areaUm2 = 0.0;
    double powerMw = 0.0;
};

/** See file comment. */
class AreaPowerModel
{
  public:
    /** Evaluate one router design point. */
    static AreaPower evaluate(const RouterDesign &d);

    /** Total data VCs per input port (including scheme extras). */
    static int effectiveVcs(const RouterDesign &d);

    /** Component breakdown string for reports. */
    static std::string breakdown(const RouterDesign &d);
};

} // namespace spin

#endif // SPINNOC_POWER_AREAPOWERMODEL_HH
