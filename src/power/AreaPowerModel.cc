#include "power/AreaPowerModel.hh"

#include <bit>
#include <sstream>

#include "common/Logging.hh"
#include "core/LoopBuffer.hh"

namespace spin
{

namespace
{

// Calibrated component constants (um^2). Absolute values are
// placeholders for a 15nm-class process; only the ratios matter and
// they are validated against the paper's published numbers in
// tests/test_power.cc and EXPERIMENTS.md.
constexpr double kBufBitArea = 0.60;   // per buffered bit
constexpr double kXbarCoeff = 0.25;    // * radix^2 * flitBits
constexpr double kVaCoeff = 3.0;       // * radix * vcs^2
constexpr double kSaCoeff = 2.5;       // * radix^2 * vcs
constexpr double kRouteCoeff = 30.0;   // * radix * vnets
constexpr double kFixed = 3600.0;      // clocking, control, link drivers

// Scheme extras.
constexpr double kSpinFsmArea = 250.0;
constexpr double kSpinMgrCoeff = 1.5;  // * radix * vcs
constexpr double kBubbleDepth = 8;     // central recovery buffer, flits
constexpr double kBubbleFsmArea = 200.0;
constexpr double kEscapeLogic = 300.0; // escape routing tables

// Power weights (mW per um^2 equivalents; buffers toggle hardest).
constexpr double kPwrBuf = 0.0050;
constexpr double kPwrXbar = 0.0060;
constexpr double kPwrLogic = 0.0035;
constexpr double kPwrFixed = 0.0030;

} // namespace

int
AreaPowerModel::effectiveVcs(const RouterDesign &d)
{
    int vcs = d.vnets * d.vcsPerVnet;
    if (d.extras == SchemeExtras::EscapeVc)
        vcs += d.vnets; // one escape VC per vnet
    return vcs;
}

AreaPower
AreaPowerModel::evaluate(const RouterDesign &d)
{
    SPIN_ASSERT(d.radix >= 2 && d.vnets >= 1 && d.vcsPerVnet >= 1 &&
                d.vcDepthFlits >= 1 && d.flitBits >= 1,
                "bad router design");

    const int vcs = effectiveVcs(d);
    const double buf_bits = static_cast<double>(d.radix) * vcs *
                            d.vcDepthFlits * d.flitBits;
    const double buf = buf_bits * kBufBitArea;
    const double xbar = kXbarCoeff * d.radix * d.radix * d.flitBits;
    const double va = kVaCoeff * d.radix * vcs * vcs;
    const double sa = kSaCoeff * d.radix * d.radix * vcs;
    const double route = kRouteCoeff * d.radix * d.vnets;

    double extras = 0.0;
    switch (d.extras) {
      case SchemeExtras::None:
        break;
      case SchemeExtras::EscapeVc:
        // Buffer/allocator growth is in effectiveVcs(); add the escape
        // routing tables.
        extras = kEscapeLogic;
        break;
      case SchemeExtras::StaticBubble:
        extras = kBubbleDepth * d.flitBits * kBufBitArea + kBubbleFsmArea;
        break;
      case SchemeExtras::Spin:
        extras = LoopBuffer::sizeBits(d.radix, d.numRouters) * kBufBitArea
                 + kSpinFsmArea + kSpinMgrCoeff * d.radix * vcs;
        break;
    }

    AreaPower ap;
    ap.areaUm2 = buf + xbar + va + sa + route + kFixed + extras;
    ap.powerMw = buf * kPwrBuf + xbar * kPwrXbar +
                 (va + sa + route + extras) * kPwrLogic +
                 kFixed * kPwrFixed;
    return ap;
}

std::string
AreaPowerModel::breakdown(const RouterDesign &d)
{
    const int vcs = effectiveVcs(d);
    const AreaPower ap = evaluate(d);
    std::ostringstream os;
    os << "radix=" << d.radix << " vcs/port=" << vcs
       << " depth=" << d.vcDepthFlits << " width=" << d.flitBits
       << "b -> area=" << ap.areaUm2 << "um^2 power=" << ap.powerMw
       << "mW";
    return os.str();
}

} // namespace spin
