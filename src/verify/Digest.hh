/**
 * @file
 * Behavioral state digest for the spin_model explicit-state checker.
 *
 * A digest is a 64-bit FNV-1a hash over everything that determines the
 * network's future behavior: VC buffers and their routing requests,
 * credit counters, allocation/round-robin pointers, flits and credits
 * on the wires, NIC queues, the SPIN units' FSM snapshots, the SM
 * substrate, the rotating-priority phase and the fault state. All
 * cycle-valued fields are hashed *relative to the current cycle*, so
 * two states reached at different times that behave identically from
 * here on hash equal -- the property visited-state dedup relies on.
 *
 * On vertex-transitive configurations (the ring scenarios) the digest
 * can additionally be canonicalized under the topology's rotation
 * group: the canonical digest is the minimum over all rotations of the
 * digest of the renamed network. Packet identities are normalized to
 * (src, dest, vnet, size) for this to be sound.
 */

#ifndef SPINNOC_VERIFY_DIGEST_HH
#define SPINNOC_VERIFY_DIGEST_HH

#include <cstdint>
#include <vector>

#include "common/Types.hh"

namespace spin
{

class Network;

namespace verify
{

/** Streaming 64-bit FNV-1a hasher. */
class Fnv
{
  public:
    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h_ ^= (v >> (8 * i)) & 0xffu;
            h_ *= 0x100000001b3ull;
        }
    }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void b(bool v) { u64(v ? 1 : 0); }
    std::uint64_t value() const { return h_; }

  private:
    std::uint64_t h_ = 0xcbf29ce484222325ull;
};

/**
 * Digest @p net under the router renaming @p perm (perm[r] = canonical
 * index of router r; empty = identity). Renamings other than the
 * identity require one NIC per router with node ids equal to router
 * ids (true for every shipped scenario topology).
 */
std::uint64_t digestNetwork(Network &net,
                            const std::vector<int> &perm = {});

/**
 * Canonical digest: the minimum of digestNetwork() over the ring's n
 * rotations when @p ring_symmetry is set (sound only when topology,
 * routing and workload are rotation-equivariant -- the scenario says
 * so), else the identity digest.
 */
std::uint64_t canonicalDigest(Network &net, bool ring_symmetry);

} // namespace verify
} // namespace spin

#endif // SPINNOC_VERIFY_DIGEST_HH
