#include "verify/Explorer.hh"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <sstream>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/Logging.hh"
#include "core/SpinManager.hh"
#include "deadlock/Invariants.hh"
#include "network/Network.hh"
#include "router/Router.hh"
#include "stats/Stats.hh"
#include "verify/Digest.hh"

namespace spin::verify
{

namespace
{

enum class RunStatus : std::uint8_t
{
    Quiesced, //!< all packets drained, all FSMs settled
    Violated, //!< an invariant failed (violation carries details)
    Horizon,  //!< hit the liveness horizon with checking disabled
    Pruned,   //!< suffix already covered (visited-state dedup)
};

struct RunOutcome
{
    RunStatus status = RunStatus::Horizon;
    Violation violation;
    Cycle endCycle = 0;
    std::uint64_t cycles = 0;
};

/** Exploration-wide memory shared by all runs of one explore() call. */
struct ExploreState
{
    /**
     * Canonical digest -> largest remaining perturbation budget with
     * which the suffix from that state has been fully explored. A
     * choice-free run reaching a state covered with at-least-equal
     * budget can stop: every continuation (including all branchings)
     * was already walked. Entries are committed only when the
     * recording run *finished* (quiesced, violated, or itself pruned
     * against committed states) so a periodic never-settling suffix
     * cannot vouch for itself.
     */
    std::unordered_map<std::uint64_t, int> visited;
    /** Dedup of enqueued branches: hash of (state digest at decision,
     *  verdicts already issued that cycle, SM identity, action). */
    std::unordered_set<std::uint64_t> decisions;
    std::deque<RunSpec> frontier;
};

/** Fold one hook verdict into the per-cycle decision salt. */
std::uint64_t
foldVerdict(std::uint64_t salt, const SmSend &send, int nth, SmAction a)
{
    Fnv f;
    f.u64(salt);
    f.u64(static_cast<std::uint64_t>(send.sm.type));
    f.i64(send.sm.sender);
    f.i64(send.outport);
    f.i64(nth);
    f.u64(static_cast<std::uint64_t>(a));
    return f.value();
}

/**
 * Bounded-liveness horizon for one run. Theorem 1 bounds a recovery at
 * k = m*p + (m-1) spins -- with the scenarios' minimal routing p = 0,
 * so k = m - 1. Every spin requires at most one full priority rotation
 * (the initiator must hold top priority to win probe arbitration), and
 * we grant one rotation of formation/drain slack, one rotation per
 * perturbation (each Delay/Drop can burn at most one timeout round),
 * and one more when a fault disrupts a recovery mid-flight.
 */
Cycle
horizonFor(const Scenario &sc, const SpinManager &mgr, const RunSpec &spec)
{
    const Cycle rot = mgr.rotation().fullRotation();
    const Cycle k = static_cast<Cycle>(sc.loopLen > 0 ? sc.loopLen - 1 : 1);
    Cycle h = sc.formation + (k + 2 + spec.choices.size()) * rot;
    if (spec.faultCycle != kNeverCycle)
        h += rot;
    return h;
}

/**
 * Execute one run. With @p ex non-null the run also *explores*:
 * records visited digests, prunes covered suffixes and enqueues child
 * runs for every undeduplicated Delay/Drop branch within budget. With
 * @p ex null this is a pure deterministic replay.
 */
RunOutcome
runOnce(const Scenario &sc, const RunSpec &spec, const ExplorerOptions &opt,
        ExploreState *ex)
{
    std::unique_ptr<Network> net = sc.build(spec.faultCycle);
    SpinManager *mgr = net->spinManager();
    SPIN_ASSERT(mgr != nullptr, "verify scenarios must use the SPIN scheme");
    mgr->setMutation(spec.mutation);

    const int n = net->numRouters();
    const Cycle horizon = horizonFor(sc, *mgr, spec);
    const int remaining =
        std::max(0, opt.budget - static_cast<int>(spec.choices.size()));

    RunOutcome out;
    out.violation.run = spec;
    const auto flag = [&](const char *kind, std::string msg, Cycle at) {
        if (out.status == RunStatus::Violated)
            return; // first violation wins
        out.status = RunStatus::Violated;
        out.violation.kind = kind;
        out.violation.message = std::move(msg);
        out.violation.cycle = at;
    };

    // ---- SM interceptor ------------------------------------------------
    std::vector<char> consumed(spec.choices.size(), 0);
    Cycle hookCycle = kNeverCycle;
    std::map<std::tuple<int, int, int>, int> nthSeen;
    std::uint64_t cycleDigest = 0; // canonical digest at cycle start
    std::uint64_t cycleSalt = 0;   // verdicts already issued this cycle

    mgr->setSmHook([&](const SmSend &send, Cycle hnow) -> SmAction {
        if (hnow != hookCycle) {
            hookCycle = hnow;
            nthSeen.clear();
            cycleSalt = 0;
        }
        const int nth = nthSeen[{static_cast<int>(send.sm.type),
                                 send.sm.sender, send.outport}]++;
        for (std::size_t i = 0; i < spec.choices.size(); ++i) {
            if (consumed[i] || !spec.choices[i].matches(send, hnow, nth))
                continue;
            consumed[i] = 1;
            cycleSalt =
                foldVerdict(cycleSalt, send, nth, spec.choices[i].action);
            return spec.choices[i].action;
        }
        if (ex && remaining > 0) {
            for (const SmAction a : {SmAction::Delay, SmAction::Drop}) {
                Fnv key;
                key.u64(cycleDigest);
                key.u64(cycleSalt);
                key.u64(static_cast<std::uint64_t>(send.sm.type));
                key.i64(send.sm.sender);
                key.i64(send.outport);
                key.i64(nth);
                key.u64(static_cast<std::uint64_t>(a));
                if (ex->decisions.insert(key.value()).second) {
                    RunSpec child = spec;
                    child.choices.push_back(Choice{hnow, send.sm.type,
                                                   send.sm.sender,
                                                   send.outport, nth, a});
                    ex->frontier.push_back(std::move(child));
                }
            }
        }
        cycleSalt = foldVerdict(cycleSalt, send, nth, SmAction::Deliver);
        return SmAction::Deliver;
    });

    // ---- main loop -----------------------------------------------------
    std::vector<InitState> prevInit(static_cast<std::size_t>(n));
    std::vector<SpinState> prevPaper(static_cast<std::size_t>(n));
    // Digests recorded this run, committed to ex->visited on completion.
    std::vector<std::uint64_t> trail;

    for (;;) {
        const Cycle now = net->now();
        out.endCycle = now;
        if (now >= horizon) {
            if (opt.checkLiveness) {
                std::ostringstream ss;
                ss << "no quiescence by cycle " << now << " (bound: "
                   << "formation " << sc.formation << " + (k=" << sc.loopLen - 1
                   << " spins + 2 + " << spec.choices.size()
                   << " perturbations) rotations of "
                   << mgr->rotation().fullRotation() << "); "
                   << net->packetsInFlight() << " packets still in flight";
                flag("liveness", ss.str(), now);
            }
            break;
        }

        const bool allConsumed =
            std::find(consumed.begin(), consumed.end(), char{0}) ==
            consumed.end();
        if (ex) {
            cycleDigest = canonicalDigest(*net, sc.ringSymmetry);
            if (spec.faultCycle != kNeverCycle && spec.faultCycle > now) {
                // A scheduled-but-unfired fault is invisible to the
                // network state; distinguish roots that only differ in
                // when the fault will strike.
                Fnv f;
                f.u64(cycleDigest);
                f.u64(spec.faultCycle - now);
                cycleDigest = f.value();
            }
            if (allConsumed) {
                const auto it = ex->visited.find(cycleDigest);
                if (it != ex->visited.end() && it->second >= remaining) {
                    out.status = RunStatus::Pruned;
                    break;
                }
                trail.push_back(cycleDigest);
            }
        }

        for (int r = 0; r < n; ++r) {
            const SpinUnit *su = net->router(r).spinUnit();
            prevInit[static_cast<std::size_t>(r)] = su->initState();
            prevPaper[static_cast<std::size_t>(r)] = su->paperState();
        }

        net->step();
        ++out.cycles;

        // 1. FSM transition relation (paper Fig. 4a). Routers that died
        // are exempt: markDead() force-resets their unit.
        for (int r = 0; r < n; ++r) {
            Router &rt = net->router(r);
            if (rt.dead())
                continue;
            const SpinUnit *su = rt.spinUnit();
            const InitState from = prevInit[static_cast<std::size_t>(r)];
            const InitState to = su->initState();
            if (!initTransitionAllowed(from, to)) {
                flag("transition",
                     "router " + std::to_string(r) +
                         ": illegal initiator transition " + toString(from) +
                         " -> " + toString(to),
                     net->now());
            }
            const SpinState pfrom = prevPaper[static_cast<std::size_t>(r)];
            const SpinState pto = su->paperState();
            if (!paperTransitionAllowed(pfrom, pto)) {
                flag("transition",
                     "router " + std::to_string(r) +
                         ": illegal Fig. 4a transition " + toString(pfrom) +
                         " -> " + toString(pto),
                     net->now());
            }
        }

        // 2. Whole-network audit: credits, ownership, frozen-VC
        // bookkeeping, stale victims, flit conservation.
        {
            const AuditReport rep = auditNetwork(*net);
            if (!rep.clean())
                flag("audit", rep.toString(), rep.cycle);
        }

        // 3. At most one committed spin per recovery source: every
        // active victim of one initiator must agree on the spin cycle.
        {
            std::map<RouterId, Cycle> spinAt;
            for (int r = 0; r < n; ++r) {
                Router &rt = net->router(r);
                if (rt.dead())
                    continue;
                const VictimCtx &v = rt.spinUnit()->victim();
                if (!v.active)
                    continue;
                const auto [it, fresh] =
                    spinAt.try_emplace(v.source, v.spinCycle);
                if (!fresh && it->second != v.spinCycle) {
                    flag("spin-uniqueness",
                         "two committed spins for source " +
                             std::to_string(v.source) + ": cycles " +
                             std::to_string(it->second) + " and " +
                             std::to_string(v.spinCycle) + " (victim " +
                             std::to_string(r) + ")",
                         net->now());
                }
            }
        }

        if (out.status == RunStatus::Violated)
            break;

        // 4. Quiescence: everything delivered, no SM anywhere, every
        // surviving FSM back to Off/DetectDeadlock with no victims.
        if (net->packetsInFlight() == 0 && mgr->smQuiescent()) {
            bool settled = true;
            for (int r = 0; r < n && settled; ++r) {
                Router &rt = net->router(r);
                if (rt.dead())
                    continue;
                const SpinUnit *su = rt.spinUnit();
                const InitState s = su->initState();
                settled = !su->victim().active &&
                          (s == InitState::Off ||
                           s == InitState::DetectDeadlock);
            }
            if (settled) {
                const Stats &st = net->stats();
                // Ejected covers CRC-rejected (faultDropped) packets;
                // fault runs may also lose packets into the dead
                // router or refuse them at the source as unroutable.
                const std::uint64_t accounted = st.packetsEjected +
                                                st.packetsLostToFaults +
                                                st.packetsUnroutable;
                if (accounted != static_cast<std::uint64_t>(sc.offered)) {
                    flag("conservation",
                         "offered " + std::to_string(sc.offered) +
                             " packets but ejected " +
                             std::to_string(st.packetsEjected) +
                             " + fault-lost " +
                             std::to_string(st.packetsLostToFaults) +
                             " + unroutable " +
                             std::to_string(st.packetsUnroutable),
                         net->now());
                } else if (spec.faultCycle == kNeverCycle &&
                           st.packetsLostToFaults + st.packetsUnroutable !=
                               0) {
                    flag("conservation",
                         "fault-free run lost " +
                             std::to_string(st.packetsLostToFaults +
                                            st.packetsUnroutable) +
                             " packets",
                         net->now());
                } else {
                    out.status = RunStatus::Quiesced;
                }
                out.endCycle = net->now();
                break;
            }
        }
    }

    // Commit this run's digests: valid unless the run fell off the
    // horizon unchecked (suffix neither settled nor flagged).
    if (ex && out.status != RunStatus::Horizon) {
        for (const std::uint64_t d : trail) {
            int &slot = ex->visited[d];
            slot = std::max(slot, remaining);
        }
    }
    mgr->setSmHook(nullptr);
    return out;
}

std::vector<RunSpec>
rootsFor(const Scenario &sc, ProtocolMutation mutation)
{
    std::vector<RunSpec> roots;
    RunSpec base;
    base.scenario = sc.name;
    base.mutation = mutation;
    if (sc.faultCycles.empty()) {
        roots.push_back(base);
        return roots;
    }
    for (const Cycle fc : sc.faultCycles) {
        base.faultCycle = fc;
        roots.push_back(base);
    }
    return roots;
}

} // namespace

ExploreResult
explore(const Scenario &sc, const ExplorerOptions &opt)
{
    ExploreResult res;
    ExploreState ex;
    for (RunSpec &root : rootsFor(sc, opt.mutation))
        ex.frontier.push_back(std::move(root));

    while (!ex.frontier.empty()) {
        if ((opt.maxRuns != 0 && res.runs >= opt.maxRuns) ||
            res.violations.size() >= opt.maxViolations) {
            res.exhausted = false;
            break;
        }
        RunSpec spec = std::move(ex.frontier.front());
        ex.frontier.pop_front();
        const RunOutcome o = runOnce(sc, spec, opt, &ex);
        ++res.runs;
        res.cyclesSimulated += o.cycles;
        if (o.status == RunStatus::Pruned)
            ++res.prunedRuns;
        else if (o.status == RunStatus::Violated)
            res.violations.push_back(o.violation);
    }
    res.statesVisited = ex.visited.size();
    res.choicePoints = ex.decisions.size();
    return res;
}

ReplayResult
replay(const Scenario &sc, const RunSpec &spec)
{
    ExplorerOptions opt;
    opt.budget = static_cast<int>(spec.choices.size());
    const RunOutcome o = runOnce(sc, spec, opt, nullptr);
    ReplayResult r;
    r.violated = o.status == RunStatus::Violated;
    if (r.violated)
        r.violation = o.violation;
    r.quiescent = o.status == RunStatus::Quiesced;
    r.endCycle = o.endCycle;
    return r;
}

Violation
minimize(const Scenario &sc, const Violation &v)
{
    Violation best = v;
    bool improved = true;
    while (improved && !best.run.choices.empty()) {
        improved = false;
        for (std::size_t i = 0; i < best.run.choices.size(); ++i) {
            RunSpec trial = best.run;
            trial.choices.erase(trial.choices.begin() +
                                static_cast<std::ptrdiff_t>(i));
            const ReplayResult r = replay(sc, trial);
            if (r.violated && r.violation.kind == best.kind) {
                best = r.violation;
                improved = true;
                break;
            }
        }
    }
    return best;
}

} // namespace spin::verify
