/**
 * @file
 * Explicit-state exploration engine for spin_model.
 *
 * The checker is *replay-based stateless*: a run is fully determined by
 * its RunSpec (scenario, mutation, fault cycle, perturbation list), so
 * instead of checkpointing simulator state the explorer re-executes
 * runs from cycle 0 and perturbs the SM schedule through the
 * SpinManager interceptor. Exploration is a breadth-first walk over
 * perturbation prefixes:
 *
 *  - Every run starts from the scenario's deterministic baseline (one
 *    root per fault cycle for fault scenarios).
 *  - While a run executes with spare perturbation budget, every SM
 *    launch it observes is a *choice point*: the explorer enqueues
 *    child runs that additionally Delay or Drop that SM.
 *  - Choice points are deduplicated by (canonical state digest at the
 *    decision, verdicts already issued that cycle, SM identity,
 *    action), so re-executions of a shared prefix do not re-enqueue
 *    the same children.
 *  - Runs whose perturbations are all consumed are cut short when the
 *    canonical digest of the current state was already fully explored
 *    with at least as much remaining budget (visited-state dedup; ring
 *    scenarios additionally canonicalize over rotations).
 *
 * Checked on every cycle of every run: the runtime flit/credit/freeze
 * auditor (deadlock/Invariants.hh) extended with verification-only
 * invariants, the Fig. 4a FSM transition relation, and per-source
 * committed-spin uniqueness. Checked at the horizon: bounded liveness
 * -- every packet must drain within formation + (k + 2 + budget) full
 * priority rotations, k = m - 1 being the paper's spin bound for
 * minimal routing (Theorem 1, p = 0). Checked at quiescence: flit
 * conservation (ejected + fault-lost == offered).
 */

#ifndef SPINNOC_VERIFY_EXPLORER_HH
#define SPINNOC_VERIFY_EXPLORER_HH

#include <cstdint>
#include <vector>

#include "verify/Scenarios.hh"
#include "verify/Trace.hh"

namespace spin::verify
{

struct ExplorerOptions
{
    /** Max perturbations (Delay/Drop choices) per run. */
    int budget = 2;
    /** Stop after this many runs; 0 = run the frontier dry. */
    std::uint64_t maxRuns = 0;
    /** Stop after collecting this many violations. */
    std::uint64_t maxViolations = 8;
    /** Protocol defect injected into every run. */
    ProtocolMutation mutation = ProtocolMutation::None;
    /** Flag runs that neither quiesce nor get pruned by the horizon. */
    bool checkLiveness = true;
};

struct ExploreResult
{
    std::uint64_t runs = 0;            //!< runs executed
    std::uint64_t statesVisited = 0;   //!< distinct canonical digests
    std::uint64_t prunedRuns = 0;      //!< runs cut short by dedup
    std::uint64_t choicePoints = 0;    //!< distinct (state, SM, action)
    std::uint64_t cyclesSimulated = 0; //!< total cycles across runs
    /** False when maxRuns/maxViolations stopped exploration early. */
    bool exhausted = true;
    std::vector<Violation> violations;
};

/** Exhaustively explore @p sc up to @p opt's budget. */
ExploreResult explore(const Scenario &sc, const ExplorerOptions &opt);

/** Outcome of one deterministic re-execution (spin_model --replay). */
struct ReplayResult
{
    bool violated = false;
    Violation violation; //!< valid when violated
    bool quiescent = false;
    Cycle endCycle = 0;
};

/** Re-execute @p spec against its scenario @p sc deterministically. */
ReplayResult replay(const Scenario &sc, const RunSpec &spec);

/**
 * Greedily shrink @p v's perturbation list: drop one choice at a time,
 * keeping the drop whenever the violation (same kind) still
 * reproduces. Returns the minimal reproducing violation.
 */
Violation minimize(const Scenario &sc, const Violation &v);

} // namespace spin::verify

#endif // SPINNOC_VERIFY_EXPLORER_HH
