#include "verify/Trace.hh"

#include <fstream>
#include <sstream>

namespace spin::verify
{

namespace
{

constexpr const char *kSchema = "spin-model-trace/v1";

const char *
actionName(SmAction a)
{
    switch (a) {
      case SmAction::Deliver: return "deliver";
      case SmAction::Delay:   return "delay";
      case SmAction::Drop:    return "drop";
    }
    return "?";
}

bool
actionFromName(const std::string &s, SmAction &out)
{
    if (s == "deliver") { out = SmAction::Deliver; return true; }
    if (s == "delay")   { out = SmAction::Delay;   return true; }
    if (s == "drop")    { out = SmAction::Drop;    return true; }
    return false;
}

const char *
smTypeName(SmType t)
{
    switch (t) {
      case SmType::Probe:     return "probe";
      case SmType::Move:      return "move";
      case SmType::ProbeMove: return "probe_move";
      case SmType::KillMove:  return "kill_move";
    }
    return "?";
}

bool
smTypeFromName(const std::string &s, SmType &out)
{
    if (s == "probe")      { out = SmType::Probe;     return true; }
    if (s == "move")       { out = SmType::Move;      return true; }
    if (s == "probe_move") { out = SmType::ProbeMove; return true; }
    if (s == "kill_move")  { out = SmType::KillMove;  return true; }
    return false;
}

bool
mutationFromName(const std::string &s, ProtocolMutation &out)
{
    if (s == "none") {
        out = ProtocolMutation::None;
        return true;
    }
    if (s == "skip-kill-move") {
        out = ProtocolMutation::SkipKillMove;
        return true;
    }
    if (s == "skip-cancel-unfreeze") {
        out = ProtocolMutation::SkipCancelUnfreeze;
        return true;
    }
    return false;
}

const obs::JsonValue *
need(const obs::JsonValue &v, const char *key, std::string &err)
{
    const obs::JsonValue *m = v.find(key);
    if (!m) {
        err = std::string("missing field \"") + key + "\"";
        return nullptr;
    }
    return m;
}

} // namespace

bool
Choice::operator==(const Choice &o) const
{
    return cycle == o.cycle && type == o.type && sender == o.sender &&
           outport == o.outport && nth == o.nth && action == o.action;
}

bool
Choice::matches(const SmSend &send, Cycle now, int nth_seen) const
{
    return now == cycle && send.sm.type == type &&
           send.sm.sender == sender && send.outport == outport &&
           nth_seen == nth;
}

obs::JsonValue
choiceToJson(const Choice &c)
{
    obs::JsonValue o = obs::JsonValue::object();
    o.set("cycle", static_cast<std::uint64_t>(c.cycle));
    o.set("type", smTypeName(c.type));
    o.set("sender", static_cast<std::int64_t>(c.sender));
    o.set("outport", static_cast<std::int64_t>(c.outport));
    o.set("nth", static_cast<std::int64_t>(c.nth));
    o.set("action", actionName(c.action));
    return o;
}

bool
choiceFromJson(const obs::JsonValue &v, Choice &out, std::string &err)
{
    if (!v.isObject()) {
        err = "choice is not an object";
        return false;
    }
    const obs::JsonValue *m = nullptr;
    if (!(m = need(v, "cycle", err)))
        return false;
    out.cycle = m->asU64();
    if (!(m = need(v, "type", err)))
        return false;
    if (!smTypeFromName(m->asString(), out.type)) {
        err = "unknown SM type \"" + m->asString() + "\"";
        return false;
    }
    if (!(m = need(v, "sender", err)))
        return false;
    out.sender = static_cast<RouterId>(m->asNumber());
    if (!(m = need(v, "outport", err)))
        return false;
    out.outport = static_cast<PortId>(m->asNumber());
    if (!(m = need(v, "nth", err)))
        return false;
    out.nth = static_cast<int>(m->asNumber());
    if (!(m = need(v, "action", err)))
        return false;
    if (!actionFromName(m->asString(), out.action)) {
        err = "unknown action \"" + m->asString() + "\"";
        return false;
    }
    return true;
}

obs::JsonValue
runSpecToJson(const RunSpec &r)
{
    obs::JsonValue o = obs::JsonValue::object();
    o.set("scenario", r.scenario);
    o.set("mutation", toString(r.mutation));
    if (r.faultCycle == kNeverCycle)
        o.set("faultCycle", obs::JsonValue());
    else
        o.set("faultCycle", static_cast<std::uint64_t>(r.faultCycle));
    obs::JsonValue arr = obs::JsonValue::array();
    for (const Choice &c : r.choices)
        arr.push(choiceToJson(c));
    o.set("choices", std::move(arr));
    return o;
}

bool
runSpecFromJson(const obs::JsonValue &v, RunSpec &out, std::string &err)
{
    if (!v.isObject()) {
        err = "run spec is not an object";
        return false;
    }
    const obs::JsonValue *m = nullptr;
    if (!(m = need(v, "scenario", err)))
        return false;
    out.scenario = m->asString();
    if (!(m = need(v, "mutation", err)))
        return false;
    if (!mutationFromName(m->asString(), out.mutation)) {
        err = "unknown mutation \"" + m->asString() + "\"";
        return false;
    }
    if (!(m = need(v, "faultCycle", err)))
        return false;
    out.faultCycle = m->isNull() ? kNeverCycle : m->asU64();
    if (!(m = need(v, "choices", err)))
        return false;
    if (!m->isArray()) {
        err = "\"choices\" is not an array";
        return false;
    }
    out.choices.clear();
    for (std::size_t i = 0; i < m->size(); ++i) {
        Choice c;
        if (!choiceFromJson(m->at(i), c, err))
            return false;
        out.choices.push_back(c);
    }
    return true;
}

obs::JsonValue
traceToJson(const Violation &v)
{
    obs::JsonValue doc = obs::JsonValue::object();
    doc.set("schema", kSchema);
    doc.set("kind", v.kind);
    doc.set("message", v.message);
    doc.set("cycle", static_cast<std::uint64_t>(v.cycle));
    doc.set("run", runSpecToJson(v.run));
    return doc;
}

bool
traceFromJson(const obs::JsonValue &doc, Violation &out, std::string &err)
{
    if (!doc.isObject()) {
        err = "trace is not an object";
        return false;
    }
    const obs::JsonValue *m = nullptr;
    if (!(m = need(doc, "schema", err)))
        return false;
    if (m->asString() != kSchema) {
        err = "unexpected schema \"" + m->asString() + "\" (want " +
              kSchema + ")";
        return false;
    }
    if (!(m = need(doc, "kind", err)))
        return false;
    out.kind = m->asString();
    if (!(m = need(doc, "message", err)))
        return false;
    out.message = m->asString();
    if (!(m = need(doc, "cycle", err)))
        return false;
    out.cycle = m->asU64();
    if (!(m = need(doc, "run", err)))
        return false;
    return runSpecFromJson(*m, out.run, err);
}

bool
traceFromFile(const std::string &path, Violation &out, std::string &err)
{
    std::ifstream in(path);
    if (!in) {
        err = "cannot open " + path;
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const obs::JsonValue doc = obs::JsonValue::parse(ss.str(), &err);
    if (doc.isNull())
        return false;
    return traceFromJson(doc, out, err);
}

bool
traceToFile(const Violation &v, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << traceToJson(v).dump(2) << "\n";
    return static_cast<bool>(out);
}

} // namespace spin::verify
