/**
 * @file
 * Bounded verification scenarios for spin_model: small networks (2-4
 * routers per dependency loop) whose workloads deterministically form
 * the deadlock shapes of the paper -- an independent loop, the shared-
 * loop Case II figure-8, a fault-aborted recovery, and two disjoint
 * simultaneous recoveries. Each scenario builds a *fresh* network per
 * run (the checker is replay-based), and carries the parameters the
 * explorer needs: the loop length m for the k = m*p + (m-1) liveness
 * bound, the offered packet count for conservation, and whether the
 * configuration is ring-rotation symmetric (digest canonicalization).
 */

#ifndef SPINNOC_VERIFY_SCENARIOS_HH
#define SPINNOC_VERIFY_SCENARIOS_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/Types.hh"

namespace spin
{

class Network;

namespace verify
{

/** One bounded configuration spin_model can exhaustively explore. */
struct Scenario
{
    std::string name;
    std::string description;
    /** Longest dependency-loop length m (hops). With minimal routing
     *  (p = 0) the paper's bound is k = m - 1 spins. */
    int loopLen = 0;
    /** Packets offered at cycle 0 (flit-conservation oracle). */
    int offered = 0;
    /** Upper bound on deadlock-formation time, cycles. */
    Cycle formation = 0;
    /** Rotation-equivariant ring: canonicalize digests. */
    bool ringSymmetry = false;
    /**
     * Fault-injection variants: the explorer treats each cycle here as
     * a separate root (a RouterFail scheduled at that cycle). Empty
     * for fault-free scenarios.
     */
    std::vector<Cycle> faultCycles;
    /**
     * Build a fresh network with the workload already offered.
     * @p fault_cycle is kNeverCycle for the fault-free root, else one
     * of faultCycles.
     */
    std::function<std::unique_ptr<Network>(Cycle fault_cycle)> build;
};

/** All shipped scenarios, in documentation order. */
const std::vector<Scenario> &scenarios();

/** Scenario by name; nullptr when unknown. */
const Scenario *findScenario(const std::string &name);

} // namespace verify
} // namespace spin

#endif // SPINNOC_VERIFY_SCENARIOS_HH
