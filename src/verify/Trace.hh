/**
 * @file
 * Counterexample traces for spin_model (schema "spin-model-trace/v1").
 *
 * A run of the checker is fully determined by (scenario, mutation,
 * fault cycle, perturbation list): the simulator itself is
 * deterministic, and all nondeterminism is injected through the
 * SpinManager's SM interceptor as explicit Delay/Drop decisions. A
 * trace therefore *is* a replayable counterexample: feed the same
 * RunSpec back through the engine and the violation reproduces
 * bit-identically (spin_model --replay, and the generated regression
 * tests under tests/traces/).
 */

#ifndef SPINNOC_VERIFY_TRACE_HH
#define SPINNOC_VERIFY_TRACE_HH

#include <string>
#include <vector>

#include "common/Types.hh"
#include "core/SpecialMsg.hh"
#include "core/SpinFsm.hh"
#include "core/SpinManager.hh"
#include "obs/Json.hh"

namespace spin::verify
{

/**
 * One perturbation: the @p nth SM of @p type from @p sender contending
 * for @p outport at @p cycle is delayed one cycle or dropped. All
 * unmatched SMs are delivered normally.
 */
struct Choice
{
    Cycle cycle = 0;
    SmType type = SmType::Probe;
    RouterId sender = kInvalidId;
    PortId outport = kInvalidId;
    int nth = 0;
    SmAction action = SmAction::Deliver;

    bool operator==(const Choice &o) const;
    /** True when this choice matches an SM send event. */
    bool matches(const SmSend &send, Cycle now, int nth_seen) const;
};

/** Everything that determines one run. */
struct RunSpec
{
    std::string scenario;
    ProtocolMutation mutation = ProtocolMutation::None;
    Cycle faultCycle = kNeverCycle;
    std::vector<Choice> choices;
};

/** A violation found by the explorer, with its reproducing run. */
struct Violation
{
    std::string kind;    //!< "audit", "transition", "liveness", ...
    std::string message; //!< human-readable details
    Cycle cycle = 0;     //!< cycle the check failed at
    RunSpec run;
};

/// @name spin-model-trace/v1 serialization
/// @{
obs::JsonValue choiceToJson(const Choice &c);
bool choiceFromJson(const obs::JsonValue &v, Choice &out,
                    std::string &err);
obs::JsonValue runSpecToJson(const RunSpec &r);
bool runSpecFromJson(const obs::JsonValue &v, RunSpec &out,
                     std::string &err);
/** Full trace document: the run plus the violation it reproduces. */
obs::JsonValue traceToJson(const Violation &v);
bool traceFromJson(const obs::JsonValue &doc, Violation &out,
                   std::string &err);
bool traceFromFile(const std::string &path, Violation &out,
                   std::string &err);
bool traceToFile(const Violation &v, const std::string &path);
/// @}

} // namespace spin::verify

#endif // SPINNOC_VERIFY_TRACE_HH
