#include "verify/Digest.hh"

#include <algorithm>

#include "common/Logging.hh"
#include "core/SpinManager.hh"
#include "fault/FaultInjector.hh"
#include "network/Network.hh"
#include "router/Router.hh"

namespace spin::verify
{

namespace
{

/** lcm(1..8) * 2: the detection-pick alternation in tickDetect() reads
 *  probeAttempt only through %2 and (/2) % ripe.size() with
 *  ripe.size() <= 8 on the bounded scenarios, so this residue carries
 *  all of its behavioral content while staying bounded. */
constexpr std::uint64_t kAttemptPeriod = 2 * 840;

std::int64_t
rel(Cycle abs, Cycle now)
{
    if (abs == kNeverCycle)
        return std::numeric_limits<std::int64_t>::max();
    return static_cast<std::int64_t>(now) - static_cast<std::int64_t>(abs);
}

int
mapped(const std::vector<int> &perm, RouterId r)
{
    if (r == kInvalidId || r < 0 ||
        r >= static_cast<RouterId>(perm.size())) {
        return -1;
    }
    return perm[r];
}

void
hashPacket(Fnv &h, const Packet &p, const std::vector<int> &perm)
{
    // Identity-free normalization: two packets with the same source,
    // destination, class, size and routing phase are interchangeable.
    h.i64(mapped(perm, p.src));
    h.i64(mapped(perm, p.dest));
    h.u64(static_cast<std::uint64_t>(p.vnet));
    h.u64(static_cast<std::uint64_t>(p.sizeFlits));
    h.u64(static_cast<std::uint64_t>(p.hops));
    h.i64(mapped(perm, p.intermediate));
    h.b(p.phaseTwo);
    h.u64(static_cast<std::uint64_t>(p.misroutes));
    h.u64(static_cast<std::uint64_t>(p.globalHops));
    h.b(p.onEscape);
}

void
hashSm(Fnv &h, const SpecialMsg &sm, Cycle now,
       const std::vector<int> &perm)
{
    h.u64(static_cast<std::uint64_t>(sm.type));
    h.i64(mapped(perm, sm.sender));
    h.u64(static_cast<std::uint64_t>(sm.vnet));
    h.i64(rel(sm.sendCycle, now));
    h.u64(sm.path.size());
    for (const PortId p : sm.path)
        h.i64(p);
    h.u64(sm.pathIdx);
    h.i64(rel(sm.spinCycle, now));
}

} // namespace

std::uint64_t
digestNetwork(Network &net, const std::vector<int> &perm_in)
{
    const int n = net.numRouters();
    std::vector<int> perm = perm_in;
    if (perm.empty()) {
        perm.resize(n);
        for (int r = 0; r < n; ++r)
            perm[r] = r;
    }
    SPIN_ASSERT(static_cast<int>(perm.size()) == n, "bad perm size");
    std::vector<int> inv(n, -1);
    for (int r = 0; r < n; ++r)
        inv[perm[r]] = r;

    const Cycle now = net.now();
    const int vcs = net.config().totalVcs();
    SpinManager *mgr = net.spinManager();
    const fault::FaultInjector *fi = net.faults();
    Fnv h;

    // Routers, in canonical order.
    for (int c = 0; c < n; ++c) {
        const RouterId r = inv[c];
        Router &rt = net.router(r);
        h.b(rt.dead());
        if (mgr)
            h.i64(mgr->priorityOf(r, now));
        for (PortId p = 0; p < rt.radix(); ++p) {
            const InputUnit &iu = rt.input(p);
            h.i64(iu.rrPointer);
            for (VcId v = 0; v < vcs; ++v) {
                const VirtualChannel &vc = iu.vc(v);
                h.b(vc.active());
                h.b(vc.frozen);
                h.i64(vc.frozenOutport);
                h.b(vc.routeValid);
                h.i64(vc.request);
                h.i64(vc.grantedVc);
                h.i64(vc.size());
                if (vc.active()) {
                    h.i64(rel(vc.lastProgress(), now));
                    h.i64(rel(vc.activeSince(), now));
                }
                if (!vc.empty()) {
                    const Flit &f = vc.front();
                    h.i64(f.seq);
                    // A flit may not leave the cycle it arrives; older
                    // arrivals are all equivalent.
                    h.b(f.arrivedAt == now);
                    if (f.pkt)
                        hashPacket(h, *f.pkt, perm);
                } else if (vc.owner()) {
                    hashPacket(h, *vc.owner(), perm);
                }
            }
            const OutputUnit &ou = rt.output(p);
            h.i64(rt.switchRrPointer(p));
            if (!ou.toNic()) {
                for (VcId v = 0; v < vcs; ++v) {
                    h.b(ou.isIdle(v));
                    h.i64(ou.credits(v));
                    h.i64(rel(ou.activeSince(v), now));
                }
            }
        }
        if (const SpinUnit *su = rt.spinUnit()) {
            const FsmSnapshot s = su->snapshot(now);
            h.u64(static_cast<std::uint64_t>(s.state));
            h.i64(s.deadlineIn);
            h.i64(s.ptrInport);
            h.i64(s.ptrVc);
            h.b(s.victimActive);
            h.i64(mapped(perm, s.victimSource));
            h.i64(s.spinIn);
            h.b(s.loopValid);
            h.u64(s.loopPath.size());
            for (const PortId p : s.loopPath)
                h.i64(p);
            h.u64(static_cast<std::uint64_t>(s.loopLatency));
            h.u64(static_cast<std::uint64_t>(s.loopVnet));
            h.u64(s.probeAttempt % kAttemptPeriod);
            h.u64(s.frozen.size());
            for (const auto &f : s.frozen) {
                h.i64(f.inport);
                h.i64(f.vc);
                h.i64(f.outport);
            }
        }
    }

    // Links, ordered by (canonical source, source port).
    std::vector<int> order(static_cast<std::size_t>(net.numLinks()));
    for (int li = 0; li < net.numLinks(); ++li)
        order[li] = li;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
        const LinkSpec &sa = net.link(a).spec();
        const LinkSpec &sb = net.link(b).spec();
        if (perm[sa.src] != perm[sb.src])
            return perm[sa.src] < perm[sb.src];
        return sa.srcPort < sb.srcPort;
    });
    for (const int li : order) {
        const Link &l = net.link(li);
        h.b(l.failed());
        h.i64(rel(l.flitBusyUntil(), now));
        h.b(l.smBusyAt() == now);
        l.forEachFlit([&](Cycle arrival, const LinkFlit &lf) {
            h.i64(rel(arrival, now));
            h.i64(lf.vc);
            h.i64(lf.flit.seq);
            if (lf.flit.pkt)
                hashPacket(h, *lf.flit.pkt, perm);
        });
        l.forEachCredit([&](Cycle arrival, const CreditMsg &cm) {
            h.i64(rel(arrival, now));
            h.i64(cm.vc);
            h.b(cm.isFree);
        });
    }

    // NICs, in canonical node order (node id == router id on the
    // scenario topologies; asserted for non-identity renamings).
    for (int c = 0; c < net.numNodes(); ++c) {
        const NodeId nid =
            net.numNodes() == n ? inv[c] : static_cast<NodeId>(c);
        Nic &nic = net.nic(nid);
        h.u64(nic.queueLength());
        h.u64(nic.streamRemaining());
        h.i64(nic.streamVc());
        nic.forEachQueued(
            [&](const Packet &p) { hashPacket(h, p, perm); });
        nic.forEachInjFlit([&](Cycle arrival, const LinkFlit &lf) {
            h.i64(rel(arrival, now));
            h.i64(lf.vc);
            h.i64(lf.flit.seq);
            if (lf.flit.pkt)
                hashPacket(h, *lf.flit.pkt, perm);
        });
        nic.forEachEjectFlit([&](Cycle arrival, const Flit &f) {
            h.i64(rel(arrival, now));
            h.i64(f.seq);
        });
        nic.forEachCredit([&](Cycle arrival, const CreditMsg &cm) {
            h.i64(rel(arrival, now));
            h.i64(cm.vc);
            h.b(cm.isFree);
        });
        const OutputUnit &tr = nic.tracker();
        for (VcId v = 0; v < tr.numVcs(); ++v) {
            h.b(tr.isIdle(v));
            h.i64(tr.credits(v));
        }
    }

    // SM substrate (already relative-time from snapshotSms).
    if (mgr) {
        SmSubstrate sub = mgr->snapshotSms(now);
        std::sort(sub.inFlight.begin(), sub.inFlight.end(),
                  [&](const SmSubstrate::InFlight &a,
                      const SmSubstrate::InFlight &b) {
                      const LinkSpec &sa = net.link(a.link).spec();
                      const LinkSpec &sb = net.link(b.link).spec();
                      if (perm[sa.src] != perm[sb.src])
                          return perm[sa.src] < perm[sb.src];
                      if (sa.srcPort != sb.srcPort)
                          return sa.srcPort < sb.srcPort;
                      return a.arriveIn < b.arriveIn;
                  });
        h.u64(sub.inFlight.size());
        for (const auto &f : sub.inFlight) {
            const LinkSpec &spec = net.link(f.link).spec();
            h.i64(perm[spec.src]);
            h.i64(spec.srcPort);
            h.i64(f.arriveIn);
            hashSm(h, f.sm, now, perm);
        }
        std::sort(sub.pending.begin(), sub.pending.end(),
                  [&](const SmSubstrate::Pending &a,
                      const SmSubstrate::Pending &b) {
                      if (a.dueIn != b.dueIn)
                          return a.dueIn < b.dueIn;
                      if (perm[a.send.from] != perm[b.send.from])
                          return perm[a.send.from] < perm[b.send.from];
                      if (a.send.outport != b.send.outport)
                          return a.send.outport < b.send.outport;
                      return a.send.sm.type < b.send.sm.type;
                  });
        h.u64(sub.pending.size());
        for (const auto &p : sub.pending) {
            h.i64(p.dueIn);
            h.i64(perm[p.send.from]);
            h.i64(p.send.outport);
            hashSm(h, p.send.sm, now, perm);
        }
    }

    // Fault state beyond the per-component flags hashed above.
    if (fi) {
        for (int c = 0; c < n; ++c)
            h.b(fi->routerDead(inv[c]));
    }
    h.u64(net.packetsInFlight());
    return h.value();
}

std::uint64_t
canonicalDigest(Network &net, bool ring_symmetry)
{
    if (!ring_symmetry)
        return digestNetwork(net);
    const int n = net.numRouters();
    SPIN_ASSERT(net.numNodes() == n,
                "ring symmetry requires one NIC per router");
    std::uint64_t best = ~0ull;
    std::vector<int> perm(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k) {
        for (int r = 0; r < n; ++r)
            perm[r] = (r + k) % n;
        best = std::min(best, digestNetwork(net, perm));
    }
    return best;
}

} // namespace spin::verify
