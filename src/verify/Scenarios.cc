#include "verify/Scenarios.hh"

#include <map>
#include <utility>

#include "common/Config.hh"
#include "fault/FaultSchedule.hh"
#include "network/Network.hh"
#include "routing/RoutingAlgorithm.hh"
#include "topology/Mesh.hh"
#include "topology/Ring.hh"
#include "topology/Torus.hh"

namespace spin::verify
{

namespace
{

/**
 * Always route clockwise on a ring (the tests' ClockwiseRing,
 * re-stated here because src/ cannot depend on tests/): minimal for
 * destinations at most n/2 hops clockwise, and its channel dependency
 * graph is the full ring cycle, so filling the ring deadlocks
 * deterministically.
 */
class CwRing : public RoutingAlgorithm
{
  public:
    std::string name() const override { return "verify-cw-ring"; }
    void
    candidates(const Packet &, const Router &, RouterId,
               std::vector<PortId> &out) const override
    {
        out.clear();
        out.push_back(RingInfo::kCw);
    }
};

/**
 * Per-(router, destRouter) next-port table; lets a scenario wire an
 * arbitrary dependency shape (the figure-8, disjoint torus-row loops)
 * deterministically.
 */
class TableRouting : public RoutingAlgorithm
{
  public:
    std::string name() const override { return "verify-table"; }

    void
    set(RouterId at, RouterId dest, PortId port)
    {
        table_[{at, dest}] = port;
    }

    void
    candidates(const Packet &, const Router &r, RouterId target,
               std::vector<PortId> &out) const override
    {
        out.clear();
        const auto it = table_.find({r.id(), target});
        if (it != table_.end()) {
            out.push_back(it->second);
            return;
        }
        out.push_back(net_->topo().minimalPorts(r.id(), target).front());
    }

  private:
    std::map<std::pair<RouterId, RouterId>, PortId> table_;
};

NetworkConfig
oneVcSpin(Cycle t_dd)
{
    NetworkConfig cfg;
    cfg.vnets = 1;
    cfg.vcsPerVnet = 1;
    cfg.vcDepth = 5;
    cfg.maxPacketSize = 5;
    cfg.scheme = DeadlockScheme::Spin;
    cfg.tDd = t_dd;
    return cfg;
}

void
attachRouterFault(Network &net, RouterId router, Cycle fault_cycle)
{
    if (fault_cycle == kNeverCycle)
        return;
    fault::FaultSchedule fs;
    fault::FaultEvent ev;
    ev.cycle = fault_cycle;
    ev.kind = fault::FaultKind::RouterFail;
    ev.router = router;
    fs.events.push_back(ev);
    net.attachFaults(std::move(fs));
}

std::unique_ptr<Network>
buildRing4(Cycle fault_cycle)
{
    auto topo = std::make_shared<Topology>(makeRing(4));
    auto net = std::make_unique<Network>(topo, oneVcSpin(32),
                                         std::make_unique<CwRing>());
    attachRouterFault(*net, 2, fault_cycle);
    for (NodeId i = 0; i < 4; ++i)
        net->offerPacket(net->makePacket(i, (i + 2) % 4, 0, 5));
    return net;
}

std::unique_ptr<Network>
buildShared8(Cycle)
{
    // 3x3 mesh, two 4-router loops sharing the center router 4 (the
    // paper's Fig. 5b folded "8" -- shared-loop Case II):
    //   loop A: 0 -E-> 1 -N-> 4 -W-> 3 -S-> 0
    //   loop B: 4 -E-> 5 -N-> 8 -W-> 7 -S-> 4
    auto topo = std::make_shared<Topology>(makeMesh(3, 3));
    auto routing = std::make_unique<TableRouting>();
    TableRouting *tr = routing.get();
    const RouterId loopA[4] = {0, 1, 4, 3};
    const RouterId loopB[4] = {4, 5, 8, 7};
    const auto portTo = [](RouterId at, RouterId nxt) {
        return nxt == at + 1 ? MeshInfo::kEast
               : nxt == at - 1 ? MeshInfo::kWest
               : nxt == at + 3 ? MeshInfo::kNorth
               : MeshInfo::kSouth;
    };
    for (int k = 0; k < 4; ++k) {
        const RouterId atA = loopA[k];
        const PortId pA = portTo(atA, loopA[(k + 1) % 4]);
        for (int d = 0; d < 4; ++d)
            tr->set(atA, loopA[d], pA);
        const RouterId atB = loopB[k];
        const PortId pB = portTo(atB, loopB[(k + 1) % 4]);
        for (int d = 0; d < 4; ++d) {
            if (atB != 4 || (loopB[d] != loopA[0] && loopB[d] != loopA[1]))
                tr->set(atB, loopB[d], pB);
        }
    }
    // Router 4 serves both loops: loop A traffic goes West (the loop B
    // pass above overwrote some of these entries).
    for (int d = 0; d < 4; ++d)
        tr->set(4, loopA[d], MeshInfo::kWest);

    auto net = std::make_unique<Network>(topo, oneVcSpin(32),
                                         std::move(routing));
    for (int k = 0; k < 4; ++k) {
        net->offerPacket(
            net->makePacket(loopA[k], loopA[(k + 2) % 4], 0, 5));
        if (loopB[k] != 4) // center NIC would collide with loop A's
            net->offerPacket(
                net->makePacket(loopB[k], loopB[(k + 2) % 4], 0, 5));
    }
    return net;
}

std::unique_ptr<Network>
buildDualTorus(Cycle)
{
    // 4x4 torus; rows 0 (routers 0-3) and 2 (routers 8-11) each carry
    // an eastward 4-cycle: two disjoint loops recovering concurrently.
    auto topo = std::make_shared<Topology>(makeTorus(4, 4));
    auto routing = std::make_unique<TableRouting>();
    TableRouting *tr = routing.get();
    for (const RouterId base : {0, 8}) {
        for (int x = 0; x < 4; ++x) {
            for (int d = 0; d < 4; ++d)
                tr->set(base + x, base + d, MeshInfo::kEast);
        }
    }
    auto net = std::make_unique<Network>(topo, oneVcSpin(16),
                                         std::move(routing));
    for (const RouterId base : {0, 8}) {
        for (int x = 0; x < 4; ++x) {
            net->offerPacket(net->makePacket(
                base + x, base + (x + 2) % 4, 0, 5));
        }
    }
    return net;
}

std::vector<Scenario>
makeScenarios()
{
    std::vector<Scenario> all;

    Scenario ring4;
    ring4.name = "ring4";
    ring4.description =
        "4-router clockwise ring, canonical 4-packet deadlock "
        "(independent loop)";
    ring4.loopLen = 4;
    ring4.offered = 4;
    ring4.formation = 128;
    ring4.ringSymmetry = true;
    ring4.build = buildRing4;
    all.push_back(std::move(ring4));

    Scenario shared8;
    shared8.name = "shared8";
    shared8.description =
        "3x3-mesh figure-8: two loops sharing the center router "
        "(shared-loop Case II)";
    shared8.loopLen = 4;
    shared8.offered = 7;
    shared8.formation = 160;
    shared8.build = buildShared8;
    all.push_back(std::move(shared8));

    Scenario fault;
    fault.name = "fault-ring4";
    fault.description =
        "ring4 with router 2 failing mid-recovery (fault-aborted spin); "
        "one root per fault cycle";
    fault.loopLen = 4;
    fault.offered = 4;
    fault.formation = 128;
    // Spread across the recovery timeline: formation, detection expiry
    // (tDd = 32 after blocking), probe/move exchange, committed spin,
    // post-spin re-check, and a late epoch.
    fault.faultCycles = {16, 48, 64, 80, 96, 112, 144, 176, 240, 400};
    fault.build = buildRing4;
    all.push_back(std::move(fault));

    Scenario dual;
    dual.name = "dual-torus8";
    dual.description =
        "4x4 torus, two disjoint 4-loops in rows 0 and 2 recovering "
        "concurrently";
    dual.loopLen = 4;
    dual.offered = 8;
    dual.formation = 128;
    dual.build = buildDualTorus;
    all.push_back(std::move(dual));

    return all;
}

} // namespace

const std::vector<Scenario> &
scenarios()
{
    static const std::vector<Scenario> all = makeScenarios();
    return all;
}

const Scenario *
findScenario(const std::string &name)
{
    for (const Scenario &s : scenarios())
        if (s.name == name)
            return &s;
    return nullptr;
}

} // namespace spin::verify
