/**
 * @file
 * Packet and flit definitions.
 *
 * The datapath is virtual cut-through (VCT), as in the paper's reference
 * implementation: a packet acquires a whole downstream virtual channel
 * before its head flit leaves, and the VC buffer is at least one maximum
 * packet deep, so a blocked packet always sits entirely inside one VC.
 * Flits of one packet share a single heap-allocated Packet record that
 * carries identity, timing and routing state.
 */

#ifndef SPINNOC_COMMON_PACKET_HH
#define SPINNOC_COMMON_PACKET_HH

#include <memory>
#include <string>
#include <vector>

#include "common/Types.hh"

namespace spin
{

/**
 * One network packet. Routing state mutated in flight lives here so that
 * adaptive algorithms (UGAL, FAvORS) can track phase across hops.
 */
struct Packet
{
    PacketId id = 0;
    NodeId src = kInvalidId;
    NodeId dest = kInvalidId;
    RouterId destRouter = kInvalidId;
    VnetId vnet = 0;
    int sizeFlits = 1;

    /** Cycle the traffic source created the packet (queueing included). */
    Cycle createCycle = 0;
    /** Cycle the head flit left the NIC and entered the first router. */
    Cycle injectCycle = kNeverCycle;
    /** Cycle the tail flit was ejected at the destination NIC. */
    Cycle ejectCycle = kNeverCycle;

    /** Hops actually taken (incremented per router traversal). */
    int hops = 0;

    /// @name Adaptive-routing state
    /// @{
    /** Valiant / FAvORS non-minimal phase-1 target router. */
    RouterId intermediate = kInvalidId;
    /** True once the intermediate router has been reached. */
    bool phaseTwo = false;
    /** Misroute count (livelock bound `p` of the paper's theorem). */
    int misroutes = 0;
    /** Global links traversed so far (UGAL VC ordering on dragonfly). */
    int globalHops = 0;
    /** True once the packet entered the Duato escape / reserved network. */
    bool onEscape = false;
    /// @}

    /** Number of SPIN rotations this packet took part in. */
    int spins = 0;

    /// @name Fault-injection marks (src/fault)
    /// @{
    /** A transient fault corrupted a flit of this packet in flight. */
    bool corrupted = false;
    /** A transient fault marked this packet for discard at the
     *  destination NIC (it still ejects; only accounting differs). */
    bool faultDropped = false;
    /// @}

    /// @name End-to-end reliability state (src/network, reliability on)
    /// @{
    /** Tracked by the source NIC's retransmit queue. */
    bool reliable = false;
    /** Per-(source, destination)-flow sequence number, stamped at
     *  offer time; duplicate suppression at the destination keys on it. */
    std::uint64_t e2eSeq = 0;
    /** Transmission attempt, 0 for the original copy. */
    int attempt = 0;
    /** Packet id of the original copy (== id for attempt 0). */
    PacketId origId = 0;
    /** At least one flit needed a link-level retransmission. */
    bool linkRetried = false;
    /** Ack deadline armed when the tail flit leaves the source NIC;
     *  kNeverCycle while still queued or streaming. */
    Cycle ackDeadline = kNeverCycle;
    /// @}

    /** True once sourceRoute() ran at the source NIC. */
    bool sourceRouted = false;

    /** End-to-end latency including source queueing. @pre ejected. */
    Cycle latency() const { return ejectCycle - createCycle; }
    /** In-network latency (inject to eject). @pre injected and ejected. */
    Cycle networkLatency() const { return ejectCycle - injectCycle; }

    std::string toString() const;
};

using PacketPtr = std::shared_ptr<Packet>;

/** One flit; flits of a packet share the Packet record. */
struct Flit
{
    PacketPtr pkt;
    FlitType type = FlitType::HeadTail;
    /** Sequence number within the packet, 0-based. */
    int seq = 0;
    /** Cycle this flit arrived at the current router (1-cycle router:
     *  a flit may not leave the cycle it arrives). */
    Cycle arrivedAt = 0;
    /** Modeled payload word, stamped by makeFlits; link faults flip
     *  bits in it so the checksum below genuinely fails. */
    std::uint64_t payload = 0;
    /** Checksum over (packet identity, seq, payload), stamped at flit
     *  creation and verified per hop by the link-retry layer and at
     *  ejection by the destination NIC (reliability on). */
    std::uint32_t crc = 0;

    bool isHead() const { return isHeadFlit(type); }
    bool isTail() const { return isTailFlit(type); }

    /** True when crc still matches the (possibly corrupted) payload. */
    bool crcOk() const { return crc == flitCrc(*this); }

    std::string toString() const;

    /** Reference checksum of @p f's identity + payload. */
    static std::uint32_t flitCrc(const Flit &f);
};

/**
 * Build all flits of @p pkt in order.
 *
 * @param pkt shared packet record (sizeFlits read from it)
 * @return vector of sizeFlits flits with correct head/body/tail types
 */
std::vector<Flit> makeFlits(const PacketPtr &pkt);
/** Like makeFlits() but fills @p flits, reusing its capacity. */
void makeFlitsInto(const PacketPtr &pkt, std::vector<Flit> &flits);

} // namespace spin

#endif // SPINNOC_COMMON_PACKET_HH
