/**
 * @file
 * Fundamental scalar types and enums shared by every subsystem.
 *
 * The simulator follows the conventions of packet-switched on-chip /
 * off-chip interconnection networks: a *node* is a traffic endpoint
 * (a NIC), a *router* is a switch, a *port* is a router-local port
 * index, a *VC* is a virtual channel within an input port, and a
 * *vnet* is a virtual network (message class) used to break protocol
 * deadlocks.
 */

#ifndef SPINNOC_COMMON_TYPES_HH
#define SPINNOC_COMMON_TYPES_HH

#include <cstdint>
#include <limits>
#include <string>

namespace spin
{

/** Simulation time in cycles. */
using Cycle = std::uint64_t;

/** Traffic endpoint (NIC) identifier, dense in [0, numNodes). */
using NodeId = std::int32_t;

/** Router identifier, dense in [0, numRouters). */
using RouterId = std::int32_t;

/** Router-local port index, dense in [0, radix). */
using PortId = std::int32_t;

/** Virtual-channel index within an input port. */
using VcId = std::int32_t;

/** Virtual network (message class) index. */
using VnetId = std::int32_t;

/** Unique packet identifier. */
using PacketId = std::uint64_t;

/** Sentinel for "no id". */
constexpr std::int32_t kInvalidId = -1;

/** Sentinel cycle value meaning "never". */
constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/** Flit position within a packet. */
enum class FlitType : std::uint8_t
{
    Head,      //!< first flit of a multi-flit packet
    Body,      //!< middle flit
    Tail,      //!< last flit of a multi-flit packet
    HeadTail,  //!< single-flit packet
};

/** @return true when @p t carries the routing information of a packet. */
constexpr bool
isHeadFlit(FlitType t)
{
    return t == FlitType::Head || t == FlitType::HeadTail;
}

/** @return true when @p t releases the virtual channel downstream. */
constexpr bool
isTailFlit(FlitType t)
{
    return t == FlitType::Tail || t == FlitType::HeadTail;
}

/** Named link-utilization buckets (Fig. 8b of the paper). */
enum class LinkUse : std::uint8_t
{
    Idle,   //!< no traversal started this cycle
    Flit,   //!< a data flit entered the link
    Probe,  //!< a probe special message entered the link
    Move,   //!< a move / probe_move / kill_move special message
};

/** Human-readable flit type name (for traces and test failure output). */
std::string toString(FlitType t);

} // namespace spin

#endif // SPINNOC_COMMON_TYPES_HH
