#include "common/Config.hh"

#include "common/Logging.hh"

namespace spin
{

std::string
toString(DeadlockScheme s)
{
    switch (s) {
      case DeadlockScheme::None: return "none";
      case DeadlockScheme::Spin: return "spin";
      case DeadlockScheme::StaticBubble: return "static-bubble";
    }
    return "?";
}

void
NetworkConfig::validate() const
{
    if (vnets < 1)
        SPIN_FATAL("vnets must be >= 1, got ", vnets);
    if (vcsPerVnet < 1)
        SPIN_FATAL("vcsPerVnet must be >= 1, got ", vcsPerVnet);
    if (vcDepth < 1)
        SPIN_FATAL("vcDepth must be >= 1, got ", vcDepth);
    if (maxPacketSize < 1)
        SPIN_FATAL("maxPacketSize must be >= 1, got ", maxPacketSize);
    if (vcDepth < maxPacketSize) {
        SPIN_FATAL("virtual cut-through requires vcDepth (", vcDepth,
                   ") >= maxPacketSize (", maxPacketSize, ")");
    }
    if (scheme == DeadlockScheme::Spin && tDd < 1)
        SPIN_FATAL("tDd must be >= 1, got ", tDd);
    if (scheme == DeadlockScheme::Spin && epochMultiplier < 2)
        SPIN_FATAL("epochMultiplier must be >= 2, got ", epochMultiplier);
    if (threads < 1)
        SPIN_FATAL("threads must be >= 1, got ", threads);
    if (scheme == DeadlockScheme::StaticBubble && vcsPerVnet < 2) {
        SPIN_FATAL("static bubble reserves one VC per vnet and needs "
                   "vcsPerVnet >= 2, got ", vcsPerVnet);
    }
    if (reliability.enabled) {
        if (reliability.maxLinkRetries < 0)
            SPIN_FATAL("reliability.maxLinkRetries must be >= 0, got ",
                       reliability.maxLinkRetries);
        if (reliability.ackTimeout < 1)
            SPIN_FATAL("reliability.ackTimeout must be >= 1, got ",
                       reliability.ackTimeout);
        if (reliability.maxRetransmits < 0)
            SPIN_FATAL("reliability.maxRetransmits must be >= 0, got ",
                       reliability.maxRetransmits);
        if (reliability.watchdogBudget < 1)
            SPIN_FATAL("reliability.watchdogBudget must be >= 1, got ",
                       reliability.watchdogBudget);
    }
}

} // namespace spin
