#include "common/Logging.hh"

#include <cstdlib>
#include <iostream>

namespace spin
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " @ " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << " @ " << file << ":" << line
              << std::endl;
    throw FatalError(msg);
}

void
warnImpl(const std::string &msg)
{
    std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    std::cerr << "info: " << msg << std::endl;
}

} // namespace spin
