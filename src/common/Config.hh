/**
 * @file
 * Network configuration record.
 *
 * A NetworkConfig fully describes the router microarchitecture and the
 * deadlock-freedom machinery of one simulated network; the topology and
 * routing algorithm are supplied separately when the Network is built.
 * Table III of the paper is expressed as a set of these records (see
 * network/NetworkBuilder.hh).
 */

#ifndef SPINNOC_COMMON_CONFIG_HH
#define SPINNOC_COMMON_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/Types.hh"

namespace spin
{

/** Which deadlock-freedom machinery is compiled into the network. */
enum class DeadlockScheme : std::uint8_t
{
    None,         //!< rely on the routing algorithm alone (may deadlock)
    Spin,         //!< the paper's SPIN recovery framework
    StaticBubble, //!< reserved-VC timeout recovery baseline
};

std::string toString(DeadlockScheme s);

/**
 * End-to-end reliability layer knobs (docs/FAULTS.md). Off by default:
 * with enabled == false every hook is a null check and behavior is
 * bit-identical to the pre-reliability simulator, which keeps existing
 * sweep baselines and resume fingerprints byte-stable.
 */
struct ReliabilityConfig
{
    /** Master switch for link-level retry + NIC retransmission. */
    bool enabled = false;
    /** Link-level retry bound: corrupted transmissions are re-sent up
     *  to this many times before the flit is delivered poisoned and
     *  recovery escalates to the end-to-end layer. */
    int maxLinkRetries = 3;
    /** Base ack timeout in cycles; retransmission k waits
     *  ackTimeout << k (exponential backoff), timed on the simulated
     *  clock. */
    Cycle ackTimeout = 512;
    /** End-to-end retransmission cap; exhausting it retires the packet
     *  with a distinct counter (stats.reliability.packetsAbandoned). */
    int maxRetransmits = 5;
    /** Livelock watchdog: an unacked packet older than this raises a
     *  one-shot watchdog alarm with a forensics dump of the NIC's
     *  retransmit state ("recovering" vs "stuck"). */
    Cycle watchdogBudget = 100000;
};

/** Router / network microarchitecture parameters. */
struct NetworkConfig
{
    /** Human-readable configuration name (Table III row). */
    std::string name = "default";

    /// @name Datapath
    /// @{
    /** Number of virtual networks (message classes). */
    int vnets = 1;
    /** Virtual channels per vnet per input port. */
    int vcsPerVnet = 3;
    /** VC buffer depth in flits; must be >= maxPacketSize (VCT). */
    int vcDepth = 5;
    /** Largest packet the traffic layer may create, in flits. */
    int maxPacketSize = 5;
    /// @}

    /// @name SPIN framework (used when scheme == Spin)
    /// @{
    /** Deadlock-detection timeout t_DD in cycles (paper default: 128). */
    Cycle tDd = 128;
    /** Rotating-priority epoch is epochMultiplier * tDd (paper: 4). */
    int epochMultiplier = 4;
    /**
     * Maximum probe path length in hops; 0 selects
     * min(total transit VC count, 4 * numRouters). The transit-VC
     * count is the true upper bound on an elementary wait-for cycle
     * (every hop of a loop occupies a distinct transit VC; folded
     * loops revisit routers, so router count alone is not a bound);
     * the 4N term keeps pathological many-VC networks from letting
     * probes wander quasi-unboundedly.
     */
    int maxProbeHops = 0;
    /**
     * Settling delay, in cycles after a spin completes, before the
     * initiator launches the probe_move re-check, so rotated packets can
     * land and recompute routes (implementation choice; the paper leaves
     * SM scheduling open).
     */
    Cycle probeMoveDelay = 8;
    /// @}

    /// @name Static Bubble baseline (used when scheme == StaticBubble)
    /// @{
    /** Timeout before the reserved VC is unlocked for recovery. */
    Cycle bubbleTimeout = 128;
    /// @}

    /** Deadlock-freedom machinery. */
    DeadlockScheme scheme = DeadlockScheme::Spin;

    /** End-to-end reliability layer (link retry + NIC retransmission). */
    ReliabilityConfig reliability;

    /** Master RNG seed. */
    std::uint64_t seed = 1;

    /**
     * Host worker threads stepping this network (the deterministic
     * sharded step loop, docs/SCALING.md). Purely a host-side
     * execution knob: results -- stats, metrics streams, traces -- are
     * bit-identical for any value. Clamped to the router count at
     * network construction.
     */
    int threads = 1;

    /** Total VCs per input port. */
    int totalVcs() const { return vnets * vcsPerVnet; }

    /** Throw FatalError when the record is inconsistent. */
    void validate() const;
};

} // namespace spin

#endif // SPINNOC_COMMON_CONFIG_HH
