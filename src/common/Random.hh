/**
 * @file
 * Deterministic pseudo-random source used by every stochastic decision in
 * the simulator (traffic generation, adaptive tie-breaks, intermediate-node
 * selection). A single seeded generator per simulation keeps runs exactly
 * reproducible, which the regression tests rely on.
 */

#ifndef SPINNOC_COMMON_RANDOM_HH
#define SPINNOC_COMMON_RANDOM_HH

#include <cstdint>
#include <vector>

#include "common/Logging.hh"

namespace spin
{

/**
 * xoshiro256** generator. Small, fast, and good enough for traffic
 * workloads; not for cryptography.
 */
class Random
{
  public:
    /** Seed the generator; equal seeds give equal streams. */
    explicit Random(std::uint64_t seed = 1);

    /**
     * Derive the seed of independent substream @p stream of master
     * seed @p seed (splitmix64 finalizer over both words). Used to give
     * every router its own generator so adaptive tie-breaks draw from
     * per-router streams -- the order routers execute in (and hence the
     * step loop's thread count) then cannot change any draw.
     */
    static std::uint64_t streamSeed(std::uint64_t seed,
                                    std::uint64_t stream);

    /** @return next raw 64-bit value. */
    std::uint64_t next();

    /** @return uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t below(std::uint64_t bound);

    /** @return uniform integer in [lo, hi]. @pre lo <= hi. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** @return uniform double in [0, 1). */
    double uniform();

    /** @return true with probability @p p. */
    bool chance(double p);

    /** @return a uniformly chosen element of @p v. @pre !v.empty(). */
    template <typename T>
    const T &
    pick(const std::vector<T> &v)
    {
        SPIN_ASSERT(!v.empty(), "pick() from empty vector");
        return v[below(v.size())];
    }

  private:
    std::uint64_t s_[4];
};

} // namespace spin

#endif // SPINNOC_COMMON_RANDOM_HH
