#include "common/Packet.hh"

#include <sstream>
#include <vector>

#include "common/Logging.hh"

namespace spin
{

std::string
toString(FlitType t)
{
    switch (t) {
      case FlitType::Head: return "Head";
      case FlitType::Body: return "Body";
      case FlitType::Tail: return "Tail";
      case FlitType::HeadTail: return "HeadTail";
    }
    return "?";
}

std::string
Packet::toString() const
{
    std::ostringstream os;
    os << "pkt#" << id << " " << src << "->" << dest << " vnet" << vnet
       << " size" << sizeFlits;
    return os.str();
}

std::string
Flit::toString() const
{
    std::ostringstream os;
    os << spin::toString(type) << "[" << seq << "] of "
       << (pkt ? pkt->toString() : std::string("<null>"));
    return os.str();
}

namespace
{

/** splitmix64 finalizer: cheap, well-mixed payload/checksum hash. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

std::uint32_t
Flit::flitCrc(const Flit &f)
{
    const Packet &p = *f.pkt;
    std::uint64_t h = mix64(static_cast<std::uint64_t>(p.src) ^
                            (static_cast<std::uint64_t>(p.dest) << 16) ^
                            (p.e2eSeq << 32));
    h = mix64(h ^ static_cast<std::uint64_t>(f.seq) ^ f.payload);
    return static_cast<std::uint32_t>(h ^ (h >> 32));
}

void
makeFlitsInto(const PacketPtr &pkt, std::vector<Flit> &flits)
{
    SPIN_ASSERT(pkt && pkt->sizeFlits >= 1, "bad packet");
    flits.clear();
    flits.reserve(pkt->sizeFlits);
    for (int i = 0; i < pkt->sizeFlits; ++i) {
        FlitType t;
        if (pkt->sizeFlits == 1)
            t = FlitType::HeadTail;
        else if (i == 0)
            t = FlitType::Head;
        else if (i == pkt->sizeFlits - 1)
            t = FlitType::Tail;
        else
            t = FlitType::Body;
        Flit f{pkt, t, i};
        f.payload = mix64((static_cast<std::uint64_t>(pkt->src) << 40) ^
                          (static_cast<std::uint64_t>(pkt->dest) << 20) ^
                          (pkt->e2eSeq << 4) ^
                          static_cast<std::uint64_t>(i));
        f.crc = Flit::flitCrc(f);
        flits.push_back(std::move(f));
    }
}

std::vector<Flit>
makeFlits(const PacketPtr &pkt)
{
    std::vector<Flit> flits;
    makeFlitsInto(pkt, flits);
    return flits;
}

} // namespace spin
