#include "common/Packet.hh"

#include <sstream>
#include <vector>

#include "common/Logging.hh"

namespace spin
{

std::string
toString(FlitType t)
{
    switch (t) {
      case FlitType::Head: return "Head";
      case FlitType::Body: return "Body";
      case FlitType::Tail: return "Tail";
      case FlitType::HeadTail: return "HeadTail";
    }
    return "?";
}

std::string
Packet::toString() const
{
    std::ostringstream os;
    os << "pkt#" << id << " " << src << "->" << dest << " vnet" << vnet
       << " size" << sizeFlits;
    return os.str();
}

std::string
Flit::toString() const
{
    std::ostringstream os;
    os << spin::toString(type) << "[" << seq << "] of "
       << (pkt ? pkt->toString() : std::string("<null>"));
    return os.str();
}

void
makeFlitsInto(const PacketPtr &pkt, std::vector<Flit> &flits)
{
    SPIN_ASSERT(pkt && pkt->sizeFlits >= 1, "bad packet");
    flits.clear();
    flits.reserve(pkt->sizeFlits);
    for (int i = 0; i < pkt->sizeFlits; ++i) {
        FlitType t;
        if (pkt->sizeFlits == 1)
            t = FlitType::HeadTail;
        else if (i == 0)
            t = FlitType::Head;
        else if (i == pkt->sizeFlits - 1)
            t = FlitType::Tail;
        else
            t = FlitType::Body;
        flits.push_back(Flit{pkt, t, i});
    }
}

std::vector<Flit>
makeFlits(const PacketPtr &pkt)
{
    std::vector<Flit> flits;
    makeFlitsInto(pkt, flits);
    return flits;
}

} // namespace spin
