#include "common/Random.hh"

namespace spin
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Random::Random(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

std::uint64_t
Random::streamSeed(std::uint64_t seed, std::uint64_t stream)
{
    std::uint64_t x = seed;
    (void)splitmix64(x);
    x ^= 0x9e3779b97f4a7c15ULL * (stream + 1);
    return splitmix64(x);
}

std::uint64_t
Random::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Random::below(std::uint64_t bound)
{
    SPIN_ASSERT(bound > 0, "below(0)");
    // Rejection sampling to remove modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Random::range(std::int64_t lo, std::int64_t hi)
{
    SPIN_ASSERT(lo <= hi, "range(", lo, ",", hi, ")");
    return lo + static_cast<std::int64_t>(
        below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double
Random::uniform()
{
    return (next() >> 11) * 0x1.0p-53;
}

bool
Random::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

} // namespace spin
