/**
 * @file
 * Error-reporting helpers in the gem5 tradition.
 *
 * panic()  - an internal invariant was violated: a simulator bug.
 * fatal()  - the user supplied an impossible configuration.
 * warn()   - something is suspicious but the simulation can continue.
 * inform() - status output.
 */

#ifndef SPINNOC_COMMON_LOGGING_HH
#define SPINNOC_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace spin
{

/** Abort with a message: simulator bug (calls std::abort). */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Exit with a message: user configuration error (throws). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning to stderr. */
void warnImpl(const std::string &msg);

/** Print a status message to stderr. */
void informImpl(const std::string &msg);

/** Thrown by fatal() so tests can assert on bad configurations. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg) : std::runtime_error(msg) {}
};

namespace detail
{

inline void
streamAll(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
streamAll(std::ostringstream &os, const T &v, const Rest &...rest)
{
    os << v;
    streamAll(os, rest...);
}

template <typename... Args>
std::string
concat(const Args &...args)
{
    std::ostringstream os;
    streamAll(os, args...);
    return os.str();
}

} // namespace detail

} // namespace spin

#define SPIN_PANIC(...) \
    ::spin::panicImpl(__FILE__, __LINE__, ::spin::detail::concat(__VA_ARGS__))

#define SPIN_FATAL(...) \
    ::spin::fatalImpl(__FILE__, __LINE__, ::spin::detail::concat(__VA_ARGS__))

#define SPIN_WARN(...) \
    ::spin::warnImpl(::spin::detail::concat(__VA_ARGS__))

#define SPIN_INFORM(...) \
    ::spin::informImpl(::spin::detail::concat(__VA_ARGS__))

/** Cheap always-on invariant check with context. */
#define SPIN_ASSERT(cond, ...)                                            \
    do {                                                                  \
        if (!(cond)) {                                                    \
            SPIN_PANIC("assertion failed: ", #cond, " ",                  \
                       ::spin::detail::concat(__VA_ARGS__));              \
        }                                                                 \
    } while (0)

#endif // SPINNOC_COMMON_LOGGING_HH
