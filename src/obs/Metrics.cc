#include "obs/Metrics.hh"

#include <algorithm>

#include "common/Logging.hh"
#include "core/SpinManager.hh"
#include "fault/FaultInjector.hh"
#include "network/Network.hh"
#include "router/Router.hh"
#include "routing/RoutingAlgorithm.hh"

namespace spin::obs
{

// ---------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------

std::unique_ptr<StreamMetricsSink>
StreamMetricsSink::open(const std::string &path)
{
    auto sink = std::unique_ptr<StreamMetricsSink>(new StreamMetricsSink());
    sink->own_.open(path);
    if (!sink->own_)
        return nullptr;
    sink->os_ = &sink->own_;
    return sink;
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

void
MetricsRegistry::addCounter(std::string name, CounterFn fn)
{
    counters_.emplace_back(std::move(name), std::move(fn));
}

void
MetricsRegistry::addGauge(std::string name, GaugeFn fn)
{
    gauges_.emplace_back(std::move(name), std::move(fn));
}

void
MetricsRegistry::addHistogram(std::string name, HistogramFn fn)
{
    histograms_.emplace_back(std::move(name), std::move(fn));
}

namespace
{

template <typename T>
std::vector<std::string>
names(const T &instruments)
{
    std::vector<std::string> out;
    out.reserve(instruments.size());
    for (const auto &kv : instruments)
        out.push_back(kv.first);
    return out;
}

} // namespace

std::vector<std::string>
MetricsRegistry::counterNames() const
{
    return names(counters_);
}

std::vector<std::string>
MetricsRegistry::gaugeNames() const
{
    return names(gauges_);
}

std::vector<std::string>
MetricsRegistry::histogramNames() const
{
    return names(histograms_);
}

std::vector<std::uint64_t>
MetricsRegistry::readCounters() const
{
    std::vector<std::uint64_t> out;
    out.reserve(counters_.size());
    for (const auto &kv : counters_)
        out.push_back(kv.second());
    return out;
}

std::vector<double>
MetricsRegistry::readGauges() const
{
    std::vector<double> out;
    out.reserve(gauges_.size());
    for (const auto &kv : gauges_)
        out.push_back(kv.second());
    return out;
}

std::vector<std::vector<std::uint64_t>>
MetricsRegistry::readHistograms() const
{
    std::vector<std::vector<std::uint64_t>> out;
    out.reserve(histograms_.size());
    for (const auto &kv : histograms_)
        out.push_back(kv.second());
    return out;
}

void
MetricsRegistry::readCounters(std::vector<std::uint64_t> &out) const
{
    out.resize(counters_.size());
    for (std::size_t i = 0; i < counters_.size(); ++i)
        out[i] = counters_[i].second();
}

void
MetricsRegistry::readGauges(std::vector<double> &out) const
{
    out.resize(gauges_.size());
    for (std::size_t i = 0; i < gauges_.size(); ++i)
        out[i] = gauges_[i].second();
}

void
MetricsRegistry::readHistograms(
    std::vector<std::vector<std::uint64_t>> &out) const
{
    out.resize(histograms_.size());
    for (std::size_t i = 0; i < histograms_.size(); ++i)
        out[i] = histograms_[i].second();
}

double
histogramPercentile(const std::vector<std::uint64_t> &buckets, double p)
{
    std::uint64_t total = 0;
    for (const std::uint64_t b : buckets)
        total += b;
    if (total == 0)
        return 0.0;
    p = std::clamp(p, 1e-9, 1.0);
    const double target = p * double(total);
    double seen = 0.0;
    for (std::size_t b = 0; b < buckets.size(); ++b) {
        const double in_bucket = double(buckets[b]);
        if (in_bucket > 0 && seen + in_bucket >= target) {
            // Bucket b holds values in [2^(b-1), 2^b); interpolate.
            // Buckets beyond 62 cannot occur for cycle-valued data but
            // are clamped anyway so the shift stays defined.
            const unsigned shift =
                static_cast<unsigned>(std::min<std::size_t>(b, 62));
            const double lo = b == 0 ? 0.0 : double(1ull << (shift - 1));
            const double hi = double(1ull << shift);
            return lo + (target - seen) / in_bucket * (hi - lo);
        }
        seen += in_bucket;
    }
    // Rounding pushed the target past the last occupied bucket: the
    // largest bucket's upper edge is the best answer.
    for (std::size_t b = buckets.size(); b-- > 0;) {
        if (buckets[b] > 0)
            return double(1ull << std::min<std::size_t>(b, 62));
    }
    return 0.0;
}

// ---------------------------------------------------------------------
// NetworkMetrics
// ---------------------------------------------------------------------

NetworkMetrics::NetworkMetrics(Network &net, MetricsConfig cfg,
                               std::unique_ptr<MetricsSink> sink)
    : net_(net), cfg_(std::move(cfg)), sink_(std::move(sink))
{
    SPIN_ASSERT(sink_, "null metrics sink");
    SPIN_ASSERT(cfg_.interval > 0, "metrics interval must be positive");
    registerBuiltins();

    // Pre-escape every constant fragment of the window record once;
    // emitWindow() only appends numbers between them.
    if (!cfg_.label.empty())
        cellField_ = ",\"cell\":\"" + JsonValue::escape(cfg_.label) + "\"";
    const auto keyFragments = [](const std::vector<std::string> &ns) {
        std::vector<std::string> out;
        out.reserve(ns.size());
        for (const std::string &n : ns)
            out.push_back("\"" + JsonValue::escape(n) + "\":");
        return out;
    };
    counterKeys_ = keyFragments(reg_.counterNames());
    gaugeKeys_ = keyFragments(reg_.gaugeNames());
    histKeys_ = keyFragments(reg_.histogramNames());

    windowStart_ = net_.now();
    rebaseline();
    emitHeader();
}

NetworkMetrics::~NetworkMetrics()
{
    finish(net_.now());
}

void
NetworkMetrics::registerBuiltins()
{
    Network &n = net_;
    const Stats &s = n.stats();

    const auto c = [&](const char *name, const std::uint64_t *field) {
        reg_.addCounter(name, [field]() { return *field; });
    };
    c("traffic.packetsInjected", &s.packetsInjected);
    c("traffic.packetsEjected", &s.packetsEjected);
    c("traffic.flitsInjected", &s.flitsInjected);
    c("traffic.flitsEjected", &s.flitsEjected);
    c("traffic.latencySum", &s.latencySum);
    c("traffic.hopsSum", &s.hopsSum);
    c("spin.probesSent", &s.probesSent);
    c("spin.probesForked", &s.probesForked);
    c("spin.probesDropped", &s.probesDropped);
    c("spin.probesReturned", &s.probesReturned);
    c("spin.movesSent", &s.movesSent);
    c("spin.probeMovesSent", &s.probeMovesSent);
    c("spin.killMovesSent", &s.killMovesSent);
    c("spin.spins", &s.spins);
    c("spin.falsePositiveSpins", &s.falsePositiveSpins);
    c("spin.spinsCancelled", &s.spinsCancelled);
    c("spin.packetsRotated", &s.packetsRotated);
    c("baseline.bubbleRecoveries", &s.bubbleRecoveries);
    c("faults.linksFailed", &s.linksFailed);
    c("faults.routersFailed", &s.routersFailed);
    c("faults.transientFaults", &s.transientFaults);
    c("faults.packetsUnroutable", &s.packetsUnroutable);
    c("faults.packetsRerouted", &s.packetsRerouted);
    c("faults.packetsLostToFaults", &s.packetsLostToFaults);
    c("faults.packetsCorrupted", &s.packetsCorrupted);
    c("faults.packetsDroppedAtNic", &s.packetsDroppedAtNic);
    c("reliability.crcFails", &s.crcFails);
    c("reliability.linkRetries", &s.linkRetries);
    c("reliability.retransmits", &s.retransmits);
    c("reliability.dupDrops", &s.dupDrops);
    c("reliability.recoveredPackets", &s.recoveredPackets);
    c("reliability.packetsAbandoned", &s.packetsAbandoned);
    c("reliability.watchdogAlarms", &s.watchdogAlarms);

    reg_.addGauge("net.packetsInFlight", [&n]() {
        return double(n.packetsInFlight());
    });
    reg_.addGauge("nic.queuedPackets", [&n]() {
        double q = 0;
        for (NodeId i = 0; i < n.numNodes(); ++i)
            q += double(n.nic(i).queueLength());
        return q;
    });
    reg_.addGauge("spin.smsInFlight", [&n]() {
        const SpinManager *sm = n.spinManager();
        return sm ? double(sm->smsInFlight()) : 0.0;
    });
    reg_.addGauge("faults.pendingEvents", [&n]() {
        const fault::FaultInjector *fi = n.faults();
        if (!fi)
            return 0.0;
        return double(fi->events().size() - fi->applied());
    });

    // Per-vnet input-VC occupancy (flits buffered network-wide), the
    // series the VC-management analyses plot against throughput.
    const int vnets = n.config().vnets;
    for (VnetId v = 0; v < vnets; ++v) {
        reg_.addGauge("occupancy.vnet" + std::to_string(v), [&n, v]() {
            std::uint64_t flits = 0;
            for (RouterId r = 0; r < n.numRouters(); ++r)
                flits += n.router(r).bufferedFlitsInVnet(v);
            return double(flits);
        });
    }
    reg_.addGauge("occupancy.total", [&n]() {
        double flits = 0;
        for (RouterId r = 0; r < n.numRouters(); ++r)
            flits += double(n.router(r).bufferedFlits());
        return flits;
    });

    reg_.addHistogram("latency", [&s]() { return s.latencyHist; });
}

JsonValue
NetworkMetrics::record(const char *kind) const
{
    // Every line is self-describing: consumers validate any record in
    // isolation (check_metrics_schema.py does exactly that).
    JsonValue o = JsonValue::object();
    o.set("schema", JsonValue("spin-metrics/v2"));
    o.set("kind", JsonValue(kind));
    if (!cfg_.label.empty())
        o.set("cell", JsonValue(cfg_.label));
    return o;
}

void
NetworkMetrics::emitHeader()
{
    JsonValue o = record("header");
    o.set("interval", JsonValue(cfg_.interval));
    o.set("startCycle", JsonValue(windowStart_));

    JsonValue cfg = JsonValue::object();
    cfg.set("name", JsonValue(net_.config().name));
    cfg.set("scheme", JsonValue(toString(net_.config().scheme)));
    cfg.set("routing", JsonValue(net_.routing().name()));
    cfg.set("vnets", JsonValue(net_.config().vnets));
    cfg.set("vcsPerVnet", JsonValue(net_.config().vcsPerVnet));
    cfg.set("seed", JsonValue(net_.config().seed));
    cfg.set("numRouters", JsonValue(net_.numRouters()));
    cfg.set("numNodes", JsonValue(net_.numNodes()));
    cfg.set("numLinks", JsonValue(net_.numLinks()));
    o.set("config", std::move(cfg));

    const auto strArr = [](const std::vector<std::string> &v) {
        JsonValue a = JsonValue::array();
        for (const std::string &s : v)
            a.push(JsonValue(s));
        return a;
    };
    o.set("counters", strArr(reg_.counterNames()));
    o.set("gauges", strArr(reg_.gaugeNames()));
    o.set("histograms", strArr(reg_.histogramNames()));
    sink_->line(o.dump(0));
}

void
NetworkMetrics::rebaseline()
{
    lastCounters_ = reg_.readCounters();
    lastHists_ = reg_.readHistograms();
}

void
NetworkMetrics::onMeasurementBegin(Cycle now)
{
    rebaseline();
    windowStart_ = now;
    JsonValue o = record("measurement-begin");
    o.set("cycle", JsonValue(now));
    sink_->line(o.dump(0));
}

void
NetworkMetrics::emitWindow(Cycle now)
{
    // Serialized by hand into a reused buffer -- byte-identical with
    // the JsonValue::dump(0) rendering of the same record, but without
    // the per-window tree allocations (the off/on micro_router gate
    // budgets 2% for the whole enabled engine).
    if (now <= windowStart_)
        return;
    const Cycle elapsed = now - windowStart_;

    reg_.readCounters(curCounters_);
    reg_.readHistograms(curHists_);
    reg_.readGauges(curGauges_);

    std::string &b = buf_;
    b.clear();
    b += "{\"schema\":\"spin-metrics/v2\",\"kind\":\"window\"";
    b += cellField_;
    b += ",\"seq\":";
    JsonValue::appendNumber(b, double(windows_));
    b += ",\"cycleStart\":";
    JsonValue::appendNumber(b, double(windowStart_));
    b += ",\"cycleEnd\":";
    JsonValue::appendNumber(b, double(now));

    // Counter deltas. beginMeasurement re-baselines through
    // onMeasurementBegin, so a cumulative value below its baseline can
    // only mean an out-of-band reset; restart from zero like the
    // samplers do.
    b += ",\"counters\":{";
    const auto &cnames = reg_.counters_;
    std::uint64_t flitsEjected = 0, packetsEjected = 0, latencySum = 0;
    for (std::size_t i = 0; i < curCounters_.size(); ++i) {
        const std::uint64_t delta =
            curCounters_[i] >= lastCounters_[i]
                ? curCounters_[i] - lastCounters_[i]
                : curCounters_[i];
        if (i)
            b += ',';
        b += counterKeys_[i];
        JsonValue::appendNumber(b, double(delta));
        if (cnames[i].first == "traffic.flitsEjected")
            flitsEjected = delta;
        else if (cnames[i].first == "traffic.packetsEjected")
            packetsEjected = delta;
        else if (cnames[i].first == "traffic.latencySum")
            latencySum = delta;
    }

    b += "},\"gauges\":{";
    for (std::size_t i = 0; i < curGauges_.size(); ++i) {
        if (i)
            b += ',';
        b += gaugeKeys_[i];
        JsonValue::appendNumber(b, curGauges_[i]);
    }

    // Histogram bucket deltas (bucket arrays only ever grow).
    b += "},\"hist\":{";
    const auto &hnames = reg_.histograms_;
    std::vector<std::uint64_t> latencyDelta;
    for (std::size_t i = 0; i < curHists_.size(); ++i) {
        std::vector<std::uint64_t> delta(curHists_[i].size(), 0);
        for (std::size_t bk = 0; bk < curHists_[i].size(); ++bk) {
            const std::uint64_t prev =
                bk < lastHists_[i].size() ? lastHists_[i][bk] : 0;
            delta[bk] = curHists_[i][bk] >= prev
                            ? curHists_[i][bk] - prev
                            : curHists_[i][bk];
        }
        if (i)
            b += ',';
        b += histKeys_[i];
        if (delta.empty()) {
            b += "[]";
        } else {
            b += '[';
            for (std::size_t bk = 0; bk < delta.size(); ++bk) {
                if (bk)
                    b += ',';
                JsonValue::appendNumber(b, double(delta[bk]));
            }
            b += ']';
        }
        if (hnames[i].first == "latency")
            latencyDelta = std::move(delta);
    }

    b += "},\"derived\":{\"throughput\":";
    JsonValue::appendNumber(b, double(flitsEjected) /
                                   double(net_.numNodes()) /
                                   double(elapsed));
    b += ",\"latencyAvg\":";
    JsonValue::appendNumber(
        b, packetsEjected ? double(latencySum) / double(packetsEjected)
                          : 0.0);
    b += ",\"latencyP50\":";
    JsonValue::appendNumber(b, histogramPercentile(latencyDelta, 0.5));
    b += ",\"latencyP99\":";
    JsonValue::appendNumber(b, histogramPercentile(latencyDelta, 0.99));
    b += "}}";

    sink_->line(b);
    ++windows_;
    windowStart_ = now;
    std::swap(lastCounters_, curCounters_);
    std::swap(lastHists_, curHists_);
}

void
NetworkMetrics::finish(Cycle now)
{
    if (finished_)
        return;
    finished_ = true;
    emitWindow(now);
    JsonValue o = record("finish");
    o.set("cycle", JsonValue(now));
    o.set("windows", JsonValue(windows_));
    sink_->line(o.dump(0));
    sink_->flush();
}

} // namespace spin::obs
