#include "obs/Tracer.hh"

#include <algorithm>
#include <cstring>

#include "obs/Json.hh"

namespace spin::obs
{

namespace
{

/** See Tracer::stageInto(). */
thread_local std::vector<TraceEvent> *tlsStage = nullptr;

} // namespace

const char *
categoryName(std::uint32_t cat)
{
    if (cat & kCatFlit)
        return "flit";
    if (cat & kCatSpin)
        return "spin";
    if (cat & kCatLink)
        return "link";
    if (cat & kCatSample)
        return "sample";
    if (cat & kCatForensic)
        return "forensic";
    if (cat & kCatFault)
        return "fault";
    return "other";
}

std::uint32_t
parseCategoryMask(const char *list)
{
    if (!list || !*list)
        return kCatAll;
    std::uint32_t mask = 0;
    const char *p = list;
    while (*p) {
        const char *comma = std::strchr(p, ',');
        const std::size_t n = comma ? static_cast<std::size_t>(comma - p)
                                    : std::strlen(p);
        const auto is = [&](const char *name) {
            return n == std::strlen(name) && std::strncmp(p, name, n) == 0;
        };
        if (is("all"))
            mask |= kCatAll;
        else if (is("flit"))
            mask |= kCatFlit;
        else if (is("spin"))
            mask |= kCatSpin;
        else if (is("link"))
            mask |= kCatLink;
        else if (is("sample"))
            mask |= kCatSample;
        else if (is("forensic"))
            mask |= kCatForensic;
        else if (is("fault"))
            mask |= kCatFault;
        p = comma ? comma + 1 : p + n;
    }
    return mask ? mask : kCatAll;
}

// ---------------------------------------------------------------------
// JsonlSink
// ---------------------------------------------------------------------

std::unique_ptr<JsonlSink>
JsonlSink::open(const std::string &path)
{
    auto sink = std::unique_ptr<JsonlSink>(new JsonlSink());
    sink->own_.open(path);
    if (!sink->own_)
        return nullptr;
    sink->os_ = &sink->own_;
    return sink;
}

void
JsonlSink::write(const TraceEvent &e)
{
    std::ostream &os = *os_;
    os << "{\"t\":" << e.cycle << ",\"cat\":\""
       << categoryName(e.category) << "\",\"ev\":\"" << e.name << '"';
    if (e.router != kInvalidId)
        os << ",\"router\":" << e.router;
    if (e.packet != 0)
        os << ",\"pkt\":" << e.packet;
    if (e.port != kInvalidId)
        os << ",\"port\":" << e.port;
    if (e.vc != kInvalidId)
        os << ",\"vc\":" << e.vc;
    if (e.arg0 != -1)
        os << ",\"a0\":" << e.arg0;
    if (e.arg1 != -1)
        os << ",\"a1\":" << e.arg1;
    if (e.detail)
        os << ",\"detail\":\"" << JsonValue::escape(e.detail) << '"';
    os << "}\n";
}

// ---------------------------------------------------------------------
// ChromeTraceSink
// ---------------------------------------------------------------------

ChromeTraceSink::ChromeTraceSink(std::ostream &os) : os_(&os)
{
    begin();
}

std::unique_ptr<ChromeTraceSink>
ChromeTraceSink::open(const std::string &path)
{
    auto sink = std::unique_ptr<ChromeTraceSink>(new ChromeTraceSink());
    sink->own_.open(path);
    if (!sink->own_)
        return nullptr;
    sink->os_ = &sink->own_;
    sink->begin();
    return sink;
}

ChromeTraceSink::~ChromeTraceSink()
{
    finish();
}

void
ChromeTraceSink::begin()
{
    *os_ << "{\"traceEvents\":[";
}

void
ChromeTraceSink::write(const TraceEvent &e)
{
    if (finished_)
        return;
    std::ostream &os = *os_;
    if (!first_)
        os << ",";
    first_ = false;
    // One complete slice per event; router id as the thread track so
    // each router gets its own swimlane in the viewer.
    os << "\n{\"name\":\"" << e.name << "\",\"cat\":\""
       << categoryName(e.category) << "\",\"ph\":\"X\",\"ts\":" << e.cycle
       << ",\"dur\":1,\"pid\":0,\"tid\":"
       << (e.router != kInvalidId ? e.router : -1) << ",\"args\":{";
    bool first_arg = true;
    const auto arg = [&](const char *key, std::int64_t v) {
        if (!first_arg)
            os << ",";
        first_arg = false;
        os << '"' << key << "\":" << v;
    };
    if (e.packet != 0)
        arg("pkt", static_cast<std::int64_t>(e.packet));
    if (e.port != kInvalidId)
        arg("port", e.port);
    if (e.vc != kInvalidId)
        arg("vc", e.vc);
    if (e.arg0 != -1)
        arg("a0", e.arg0);
    if (e.arg1 != -1)
        arg("a1", e.arg1);
    if (e.detail) {
        if (!first_arg)
            os << ",";
        first_arg = false;
        os << "\"detail\":\"" << JsonValue::escape(e.detail) << '"';
    }
    os << "}}";
}

void
ChromeTraceSink::finish()
{
    if (finished_ || !os_)  // os_ is null when open() failed
        return;
    finished_ = true;
    *os_ << "\n],\"displayTimeUnit\":\"ns\"}\n";
    os_->flush();
}

// ---------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------

Tracer::Tracer(std::unique_ptr<TraceSink> sink,
               std::uint32_t category_mask)
    : sink_(std::move(sink)), mask_(category_mask)
{
}

Tracer::~Tracer()
{
    if (sink_)
        sink_->flush();
}

void
Tracer::restrictRouters(const std::vector<RouterId> &routers)
{
    routerAllowed_.clear();
    routerFilterOn_ = !routers.empty();
    if (!routerFilterOn_)
        return;
    const RouterId top = *std::max_element(routers.begin(), routers.end());
    routerAllowed_.assign(static_cast<std::size_t>(top) + 1, 0);
    for (const RouterId r : routers) {
        if (r >= 0)
            routerAllowed_[static_cast<std::size_t>(r)] = 1;
    }
}

void
Tracer::record(const TraceEvent &e)
{
    if (tlsStage != nullptr) {
        tlsStage->push_back(e);
        return;
    }
    if (!wants(e.category, e.router)) {
        ++filtered_;
        return;
    }
    ++recorded_;
    sink_->write(e);
}

void
Tracer::stageInto(std::vector<TraceEvent> *buf)
{
    tlsStage = buf;
}

} // namespace spin::obs
