#include "obs/Samplers.hh"

#include "network/Network.hh"
#include "router/Router.hh"

namespace spin::obs
{

JsonValue
RingSeries::toJson() const
{
    JsonValue cycles = JsonValue::array();
    JsonValue values = JsonValue::array();
    for (std::size_t i = 0; i < size(); ++i) {
        const auto [t, v] = at(i);
        cycles.push(JsonValue(t));
        values.push(JsonValue(v));
    }
    JsonValue obj = JsonValue::object();
    obj.set("cycles", std::move(cycles));
    obj.set("values", std::move(values));
    return obj;
}

NetworkSamplers::NetworkSamplers(Network &net, const SamplerConfig &cfg)
    : net_(net), cfg_(cfg)
{
    const int nr = net.numRouters();
    const int nl = net.numLinks();
    occ_.assign(static_cast<std::size_t>(nr), RingSeries(cfg.capacity));
    stalls_.assign(static_cast<std::size_t>(nr), RingSeries(cfg.capacity));
    linkUtil_.assign(static_cast<std::size_t>(nl),
                     RingSeries(cfg.capacity));
    lastStalls_.assign(static_cast<std::size_t>(nr), 0);
    lastLinkUses_.assign(static_cast<std::size_t>(nl), 0);
}

void
NetworkSamplers::tick(Cycle now)
{
    if (now == 0 || now % cfg_.period != 0)
        return;
    ++samples_;

    const int nr = net_.numRouters();
    const int vcs = net_.config().totalVcs();
    for (RouterId r = 0; r < nr; ++r) {
        const Router &rt = net_.router(r);
        int flits = 0;
        for (PortId p = 0; p < rt.radix(); ++p) {
            const InputUnit &iu = rt.input(p);
            for (VcId v = 0; v < vcs; ++v)
                flits += iu.vc(v).size();
        }
        occ_[static_cast<std::size_t>(r)].push(now, flits);

        const std::uint64_t cum = rt.creditStallCycles();
        stalls_[static_cast<std::size_t>(r)].push(
            now, double(cum - lastStalls_[static_cast<std::size_t>(r)]));
        lastStalls_[static_cast<std::size_t>(r)] = cum;
    }

    for (int li = 0; li < net_.numLinks(); ++li) {
        const Link &l = net_.link(li);
        const std::uint64_t cum =
            l.flitUses() + l.probeUses() + l.moveUses();
        const auto i = static_cast<std::size_t>(li);
        // beginMeasurement() resets the cumulative link counters; a
        // negative delta marks that boundary -- restart the window.
        const std::uint64_t delta =
            cum >= lastLinkUses_[i] ? cum - lastLinkUses_[i] : cum;
        lastLinkUses_[i] = cum;
        linkUtil_[i].push(now, double(delta) / double(cfg_.period));
    }
}

void
NetworkSamplers::reset(Cycle now)
{
    (void)now;
    for (RingSeries &s : occ_)
        s.clear();
    for (RingSeries &s : stalls_)
        s.clear();
    for (RingSeries &s : linkUtil_)
        s.clear();
    samples_ = 0;
    // Re-baseline deltas from the live counters: credit stalls keep
    // accumulating across the boundary, link-use counters were just
    // zeroed by Network::beginMeasurement (reading them handles either
    // ordering).
    const int nr = net_.numRouters();
    for (RouterId r = 0; r < nr; ++r) {
        lastStalls_[static_cast<std::size_t>(r)] =
            net_.router(r).creditStallCycles();
    }
    for (int li = 0; li < net_.numLinks(); ++li) {
        const Link &l = net_.link(li);
        lastLinkUses_[static_cast<std::size_t>(li)] =
            l.flitUses() + l.probeUses() + l.moveUses();
    }
}

JsonValue
NetworkSamplers::toJson() const
{
    JsonValue root = JsonValue::object();
    root.set("period", JsonValue(cfg_.period));
    root.set("capacity",
             JsonValue(static_cast<std::uint64_t>(cfg_.capacity)));
    root.set("samplesTaken", JsonValue(samples_));

    const auto seriesMap = [](const std::vector<RingSeries> &all) {
        JsonValue arr = JsonValue::array();
        for (const RingSeries &s : all)
            arr.push(s.toJson());
        return arr;
    };
    root.set("routerOccupancy", seriesMap(occ_));
    root.set("routerCreditStalls", seriesMap(stalls_));
    root.set("linkUtilization", seriesMap(linkUtil_));
    return root;
}

} // namespace spin::obs
