/**
 * @file
 * The trace event record and its category bitmask. Events are plain
 * PODs built at the instrumentation site and handed to the Tracer; all
 * strings are static literals so recording never allocates.
 */

#ifndef SPINNOC_OBS_TRACEEVENT_HH
#define SPINNOC_OBS_TRACEEVENT_HH

#include <cstdint>

#include "common/Types.hh"

namespace spin::obs
{

/// @name Trace categories (bitmask; combine with |)
/// @{
inline constexpr std::uint32_t kCatFlit = 1u << 0;     //!< flit lifecycle
inline constexpr std::uint32_t kCatSpin = 1u << 1;     //!< SPIN protocol
inline constexpr std::uint32_t kCatLink = 1u << 2;     //!< link traversal
inline constexpr std::uint32_t kCatSample = 1u << 3;   //!< sampler output
inline constexpr std::uint32_t kCatForensic = 1u << 4; //!< loop snapshots
inline constexpr std::uint32_t kCatFault = 1u << 5;    //!< fault injection
inline constexpr std::uint32_t kCatAll = 0xffffffffu;
/// @}

/** Short lowercase name of the lowest set category bit (for sinks). */
const char *categoryName(std::uint32_t cat);

/** Parse a comma-separated category list ("flit,spin") into a mask;
 *  "all" or an empty string selects everything. Unknown names are
 *  ignored. */
std::uint32_t parseCategoryMask(const char *list);

/**
 * One recorded event. Fields that do not apply stay at their
 * sentinels and are omitted by the sinks.
 */
struct TraceEvent
{
    Cycle cycle = 0;
    std::uint32_t category = kCatFlit;
    /** Static event name, e.g. "inject", "probe_drop". */
    const char *name = "";
    RouterId router = kInvalidId;
    PacketId packet = 0;
    PortId port = kInvalidId;
    VcId vc = kInvalidId;
    /** Event-specific extras (e.g. outport, downstream VC, hop count). */
    std::int64_t arg0 = -1;
    std::int64_t arg1 = -1;
    /** Static detail string (e.g. a probe drop reason), or nullptr. */
    const char *detail = nullptr;
};

} // namespace spin::obs

#endif // SPINNOC_OBS_TRACEEVENT_HH
