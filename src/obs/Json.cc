#include "obs/Json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace spin::obs
{

namespace
{

const JsonValue kNull;

} // namespace

void
JsonValue::appendNumber(std::string &out, double d)
{
    if (std::isfinite(d) && d == std::floor(d) &&
        std::abs(d) < 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(d));
        out += buf;
    } else if (std::isfinite(d)) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.17g", d);
        out += buf;
    } else {
        out += "null"; // JSON has no inf/nan
    }
}

const JsonValue &
JsonValue::operator[](const std::string &key) const
{
    const JsonValue *v = find(key);
    return v ? *v : kNull;
}

std::string
JsonValue::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonValue::dumpTo(std::string &out, int indent, int depth) const
{
    const auto newline = [&](int d) {
        if (indent <= 0)
            return;
        out += '\n';
        out.append(static_cast<std::size_t>(indent) * d, ' ');
    };

    switch (type_) {
      case Type::Null:
        out += "null";
        break;
      case Type::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Type::Number:
        appendNumber(out, num_);
        break;
      case Type::String:
        out += '"';
        out += escape(str_);
        out += '"';
        break;
      case Type::Array:
        if (arr_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        for (std::size_t i = 0; i < arr_.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            arr_[i].dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += ']';
        break;
      case Type::Object:
        if (members_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (std::size_t i = 0; i < members_.size(); ++i) {
            if (i)
                out += ',';
            newline(depth + 1);
            out += '"';
            out += escape(members_[i].first);
            out += indent > 0 ? "\": " : "\":";
            members_[i].second.dumpTo(out, indent, depth + 1);
        }
        newline(depth);
        out += '}';
        break;
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

namespace
{

struct Parser
{
    const std::string &text;
    std::size_t pos = 0;
    std::string err;

    bool fail(const std::string &msg)
    {
        if (err.empty())
            err = msg + " at offset " + std::to_string(pos);
        return false;
    }

    void skipWs()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos]))) {
            ++pos;
        }
    }

    bool consume(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool literal(const char *lit)
    {
        const std::size_t n = std::string(lit).size();
        if (text.compare(pos, n, lit) == 0) {
            pos += n;
            return true;
        }
        return fail(std::string("expected '") + lit + "'");
    }

    bool parseString(std::string &out)
    {
        if (pos >= text.size() || text[pos] != '"')
            return fail("expected string");
        ++pos;
        out.clear();
        while (pos < text.size()) {
            const char c = text[pos++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                return fail("dangling escape");
            const char e = text[pos++];
            switch (e) {
              case '"':  out += '"'; break;
              case '\\': out += '\\'; break;
              case '/':  out += '/'; break;
              case 'n':  out += '\n'; break;
              case 'r':  out += '\r'; break;
              case 't':  out += '\t'; break;
              case 'b':  out += '\b'; break;
              case 'f':  out += '\f'; break;
              case 'u': {
                if (pos + 4 > text.size())
                    return fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text[pos++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // UTF-8 encode the BMP code point (surrogate pairs are
                // passed through as two 3-byte sequences; telemetry
                // never emits them).
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xC0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                }
                break;
              }
              default:
                return fail("bad escape");
            }
        }
        return fail("unterminated string");
    }

    bool parseValue(JsonValue &out)
    {
        skipWs();
        if (pos >= text.size())
            return fail("unexpected end of input");
        const char c = text[pos];
        if (c == '{') {
            ++pos;
            out = JsonValue::object();
            skipWs();
            if (consume('}'))
                return true;
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                if (!consume(':'))
                    return fail("expected ':'");
                JsonValue v;
                if (!parseValue(v))
                    return false;
                out.set(key, std::move(v));
                if (consume(','))
                    continue;
                if (consume('}'))
                    return true;
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos;
            out = JsonValue::array();
            skipWs();
            if (consume(']'))
                return true;
            while (true) {
                JsonValue v;
                if (!parseValue(v))
                    return false;
                out.push(std::move(v));
                if (consume(','))
                    continue;
                if (consume(']'))
                    return true;
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            out = JsonValue(std::move(s));
            return true;
        }
        if (c == 't') {
            if (!literal("true"))
                return false;
            out = JsonValue(true);
            return true;
        }
        if (c == 'f') {
            if (!literal("false"))
                return false;
            out = JsonValue(false);
            return true;
        }
        if (c == 'n') {
            if (!literal("null"))
                return false;
            out = JsonValue();
            return true;
        }
        // Number.
        char *end = nullptr;
        const double d = std::strtod(text.c_str() + pos, &end);
        if (end == text.c_str() + pos)
            return fail("unexpected character");
        pos = static_cast<std::size_t>(end - text.c_str());
        out = JsonValue(d);
        return true;
    }
};

} // namespace

JsonValue
JsonValue::parse(const std::string &text, std::string *err)
{
    Parser p{text, 0, {}};
    JsonValue v;
    if (!p.parseValue(v)) {
        if (err)
            *err = p.err;
        return JsonValue();
    }
    p.skipWs();
    if (p.pos != text.size()) {
        if (err)
            *err = "trailing garbage at offset " + std::to_string(p.pos);
        return JsonValue();
    }
    if (err)
        err->clear();
    return v;
}

} // namespace spin::obs
