/**
 * @file
 * Minimal self-contained JSON document model: an ordered value tree
 * with a writer (dump) and a strict recursive-descent parser. Exists so
 * telemetry export (Stats::toJson, trace sinks, Network::dumpTelemetry)
 * and its round-trip tests need no external dependency.
 */

#ifndef SPINNOC_OBS_JSON_HH
#define SPINNOC_OBS_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace spin::obs
{

/**
 * One JSON value. Objects preserve insertion order so dumped telemetry
 * is stable across runs (and diffs cleanly). Numbers are stored as
 * doubles; integral values are dumped without a decimal point, which
 * round-trips every counter below 2^53 exactly.
 */
class JsonValue
{
  public:
    enum class Type : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    JsonValue() = default;
    JsonValue(bool b) : type_(Type::Bool), bool_(b) {}
    JsonValue(double d) : type_(Type::Number), num_(d) {}
    JsonValue(int i) : type_(Type::Number), num_(i) {}
    JsonValue(std::int64_t i)
        : type_(Type::Number), num_(static_cast<double>(i)) {}
    JsonValue(std::uint64_t u)
        : type_(Type::Number), num_(static_cast<double>(u)) {}
    JsonValue(const char *s) : type_(Type::String), str_(s) {}
    JsonValue(std::string s) : type_(Type::String), str_(std::move(s)) {}

    static JsonValue array() { return JsonValue(Type::Array); }
    static JsonValue object() { return JsonValue(Type::Object); }

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::Null; }
    bool isBool() const { return type_ == Type::Bool; }
    bool isNumber() const { return type_ == Type::Number; }
    bool isString() const { return type_ == Type::String; }
    bool isArray() const { return type_ == Type::Array; }
    bool isObject() const { return type_ == Type::Object; }

    bool asBool() const { return bool_; }
    double asNumber() const { return num_; }
    std::uint64_t asU64() const { return static_cast<std::uint64_t>(num_); }
    const std::string &asString() const { return str_; }

    /// @name Array access
    /// @{
    std::size_t size() const
    {
        return type_ == Type::Array ? arr_.size() : members_.size();
    }
    const JsonValue &at(std::size_t i) const { return arr_[i]; }
    JsonValue &push(JsonValue v)
    {
        arr_.push_back(std::move(v));
        return arr_.back();
    }
    /// @}

    /// @name Object access (insertion-ordered)
    /// @{
    JsonValue &set(const std::string &key, JsonValue v)
    {
        for (auto &m : members_) {
            if (m.first == key) {
                m.second = std::move(v);
                return m.second;
            }
        }
        members_.emplace_back(key, std::move(v));
        return members_.back().second;
    }
    /** @return the member value, or nullptr when absent. */
    const JsonValue *find(const std::string &key) const
    {
        for (const auto &m : members_) {
            if (m.first == key)
                return &m.second;
        }
        return nullptr;
    }
    JsonValue *find(const std::string &key)
    {
        for (auto &m : members_) {
            if (m.first == key)
                return &m.second;
        }
        return nullptr;
    }
    /** Drop the member @p key. @return true when it was present. */
    bool
    remove(const std::string &key)
    {
        for (auto it = members_.begin(); it != members_.end(); ++it) {
            if (it->first == key) {
                members_.erase(it);
                return true;
            }
        }
        return false;
    }
    /** Member value by key; a shared Null when absent. */
    const JsonValue &operator[](const std::string &key) const;
    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return members_;
    }
    std::vector<std::pair<std::string, JsonValue>> &members()
    {
        return members_;
    }
    /// @}

    /** Serialize. @p indent 0 emits one compact line; > 0 pretty-prints. */
    std::string dump(int indent = 0) const;

    /**
     * Parse @p text. On failure returns Null and, when @p err is given,
     * stores a message with the byte offset of the problem.
     */
    static JsonValue parse(const std::string &text,
                           std::string *err = nullptr);

    /** Escape @p s as the *inside* of a JSON string literal. */
    static std::string escape(const std::string &s);

    /**
     * Append @p d to @p out exactly as dump() renders a number
     * (integral doubles without a decimal point). For hand-rolled
     * serializers that must stay byte-identical with dump(0).
     */
    static void appendNumber(std::string &out, double d);

  private:
    explicit JsonValue(Type t) : type_(t) {}

    void dumpTo(std::string &out, int indent, int depth) const;

    Type type_ = Type::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<JsonValue> arr_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

} // namespace spin::obs

#endif // SPINNOC_OBS_JSON_HH
