#include "obs/Forensics.hh"

#include <algorithm>
#include <fstream>

#include "core/SpecialMsg.hh"
#include "deadlock/OracleDetector.hh"
#include "network/Network.hh"
#include "router/Router.hh"

namespace spin::obs
{

std::string
LoopSnapshot::toDot() const
{
    std::string out = "digraph deadlock {\n";
    out += "  label=\"" + origin + " snapshot @ cycle " +
           std::to_string(cycle);
    if (initiator != kInvalidId)
        out += ", initiator R" + std::to_string(initiator);
    out += ", vnet " + std::to_string(vnet) + "\";\n";
    out += "  node [shape=box];\n";
    for (const RouterId r : routers) {
        out += "  R" + std::to_string(r);
        if (r == initiator)
            out += " [style=filled, fillcolor=lightcoral]";
        out += ";\n";
    }
    for (const WaitForEdge &e : edges) {
        out += "  R" + std::to_string(e.router) + " -> R" +
               std::to_string(e.downRouter) + " [label=\"in" +
               std::to_string(e.inport) + "/vc" + std::to_string(e.vc) +
               " pkt" + std::to_string(e.packet) + " -> out" +
               std::to_string(e.outport) + "\"];\n";
    }
    out += "}\n";
    return out;
}

JsonValue
LoopSnapshot::toJson() const
{
    JsonValue obj = JsonValue::object();
    obj.set("cycle", JsonValue(cycle));
    obj.set("origin", JsonValue(origin));
    if (initiator != kInvalidId)
        obj.set("initiator", JsonValue(initiator));
    obj.set("vnet", JsonValue(vnet));
    if (loopLatency != 0)
        obj.set("loopLatency", JsonValue(loopLatency));
    JsonValue rs = JsonValue::array();
    for (const RouterId r : routers)
        rs.push(JsonValue(r));
    obj.set("routers", std::move(rs));
    JsonValue es = JsonValue::array();
    for (const WaitForEdge &e : edges) {
        JsonValue je = JsonValue::object();
        je.set("router", JsonValue(e.router));
        je.set("inport", JsonValue(e.inport));
        je.set("vc", JsonValue(e.vc));
        je.set("packet", JsonValue(e.packet));
        je.set("outport", JsonValue(e.outport));
        je.set("downRouter", JsonValue(e.downRouter));
        je.set("downInport", JsonValue(e.downInport));
        es.push(std::move(je));
    }
    obj.set("edges", std::move(es));
    if (!precedingFault.empty()) {
        JsonValue f = JsonValue::object();
        f.set("cycle", JsonValue(precedingFaultCycle));
        f.set("event", JsonValue(precedingFault));
        obj.set("precedingFault", std::move(f));
    }
    return obj;
}

bool
Forensics::admit()
{
    if (records_.size() >= maxRecords_) {
        ++dropped_;
        return false;
    }
    return true;
}

void
Forensics::clear()
{
    records_.clear();
    dropped_ = 0;
}

void
Forensics::noteFault(Cycle cycle, std::string description)
{
    lastFaultCycle_ = cycle;
    lastFaultDesc_ = std::move(description);
}

void
Forensics::stampFault(LoopSnapshot &snap) const
{
    snap.precedingFault = lastFaultDesc_;
    snap.precedingFaultCycle = lastFaultCycle_;
}

void
Forensics::onProbeReturned(Network &net, RouterId initiator,
                           PortId pointer_inport, VcId pointer_vc,
                           const SpecialMsg &probe, Cycle now)
{
    if (!admit())
        return;

    LoopSnapshot snap;
    snap.cycle = now;
    snap.origin = "probe";
    stampFault(snap);
    snap.initiator = initiator;
    snap.vnet = probe.vnet;
    snap.loopLatency = now - probe.sendCycle;

    // Walk the recorded port path around the loop: path[i] is the
    // output port taken at the i-th router, starting at the initiator.
    const Topology &topo = net.topo();
    const int per = net.config().vcsPerVnet;
    RouterId r = initiator;
    PortId inport = pointer_inport;
    for (std::size_t i = 0; i < probe.path.size(); ++i) {
        const PortId outport = probe.path[i];

        WaitForEdge e;
        e.router = r;
        e.inport = inport;
        e.outport = outport;
        // The blocked packet behind this edge: the initiator's is the
        // pointed VC; at transit routers, the first VC of the probed
        // vnet at the arrival in-port that waits on the recorded
        // outport (the same scan the probe's fork performed).
        e.vc = i == 0 ? pointer_vc : kInvalidId;
        if (e.vc == kInvalidId) {
            const VcId lo = probe.vnet * per;
            for (VcId v = lo; v < lo + per; ++v) {
                if (net.router(r).depRequest(inport, v) == outport) {
                    e.vc = v;
                    break;
                }
            }
        }
        if (e.vc != kInvalidId) {
            const auto &owner = net.router(r).input(inport).vc(e.vc)
                                    .owner();
            if (owner)
                e.packet = owner->id;
        }

        const LinkSpec *l = topo.outLink(r, outport);
        if (!l)
            break; // defensive: a probe path only crosses wired ports
        e.downRouter = l->dst;
        e.downInport = l->dstPort;
        snap.routers.push_back(r);
        snap.edges.push_back(e);
        r = l->dst;
        inport = l->dstPort;
    }

    records_.push_back(std::move(snap));
}

void
Forensics::onOracleReport(Network &net, const DeadlockReport &report,
                          Cycle now)
{
    if (!report.deadlocked || !admit())
        return;

    LoopSnapshot snap;
    snap.cycle = now;
    snap.origin = "oracle";
    stampFault(snap);

    const Topology &topo = net.topo();
    for (const DeadlockMember &m : report.members) {
        WaitForEdge e;
        e.router = m.router;
        e.inport = m.inport;
        e.vc = m.vc;
        e.packet = m.packet;
        e.outport = net.router(m.router).depRequest(m.inport, m.vc);
        if (e.outport != kInvalidId) {
            if (const LinkSpec *l = topo.outLink(m.router, e.outport)) {
                e.downRouter = l->dst;
                e.downInport = l->dstPort;
            }
        }
        snap.edges.push_back(e);
        if (std::find(snap.routers.begin(), snap.routers.end(),
                      m.router) == snap.routers.end()) {
            snap.routers.push_back(m.router);
        }
        if (!snap.edges.empty() && snap.vnet == 0) {
            const auto &owner = net.router(m.router)
                                    .input(m.inport).vc(m.vc).owner();
            if (owner)
                snap.vnet = owner->vnet;
        }
    }
    std::sort(snap.routers.begin(), snap.routers.end());

    records_.push_back(std::move(snap));
}

JsonValue
Forensics::toJson() const
{
    JsonValue root = JsonValue::object();
    root.set("dropped", JsonValue(dropped_));
    if (!lastFaultDesc_.empty()) {
        JsonValue f = JsonValue::object();
        f.set("cycle", JsonValue(lastFaultCycle_));
        f.set("event", JsonValue(lastFaultDesc_));
        root.set("lastFault", std::move(f));
    }
    JsonValue arr = JsonValue::array();
    for (const LoopSnapshot &s : records_)
        arr.push(s.toJson());
    root.set("snapshots", std::move(arr));
    return root;
}

bool
Forensics::writeDot(const std::string &path, std::size_t index) const
{
    if (index >= records_.size())
        return false;
    std::ofstream os(path);
    if (!os)
        return false;
    os << records_[index].toDot();
    return static_cast<bool>(os);
}

bool
Forensics::writeLastDot(const std::string &path) const
{
    return !records_.empty() && writeDot(path, records_.size() - 1);
}

} // namespace spin::obs
