#include "obs/Profiler.hh"

namespace spin::obs
{

const char *
phaseName(Phase p)
{
    switch (p) {
      case Phase::Faults:
        return "faults";
      case Phase::Wires:
        return "wires";
      case Phase::SpecialMsg:
        return "specialMsg";
      case Phase::Rotation:
        return "rotation";
      case Phase::Bubble:
        return "bubble";
      case Phase::Injection:
        return "injection";
      case Phase::Routing:
        return "routing";
      case Phase::SwitchAlloc:
        return "switchAlloc";
      case Phase::FsmTimers:
        return "fsmTimers";
      case Phase::Telemetry:
        return "telemetry";
      case Phase::Count:
        break;
    }
    return "unknown";
}

std::uint64_t
PhaseProfiler::totalNs() const
{
    std::uint64_t total = 0;
    for (const std::uint64_t ns : ns_)
        total += ns;
    return total;
}

void
PhaseProfiler::merge(const PhaseProfiler &other)
{
    for (std::size_t i = 0; i < ns_.size(); ++i)
        ns_[i] += other.ns_[i];
    cycles_ += other.cycles_;
}

JsonValue
PhaseProfiler::toJson() const
{
    const std::uint64_t total = totalNs();
    JsonValue o = JsonValue::object();
    o.set("schema", JsonValue("spin-profile/v1"));
    o.set("cycles", JsonValue(cycles_));
    o.set("totalNs", JsonValue(total));
    o.set("nsPerCycle",
          JsonValue(cycles_ ? double(total) / double(cycles_) : 0.0));
    JsonValue phases = JsonValue::object();
    for (std::size_t i = 0; i < ns_.size(); ++i) {
        const auto p = static_cast<Phase>(i);
        JsonValue ph = JsonValue::object();
        ph.set("ns", JsonValue(ns_[i]));
        ph.set("share",
               JsonValue(total ? double(ns_[i]) / double(total) : 0.0));
        phases.set(phaseName(p), std::move(ph));
    }
    o.set("phases", std::move(phases));
    return o;
}

} // namespace spin::obs
