/**
 * @file
 * Event tracer with pluggable sinks.
 *
 * The hot-path contract: components hold no tracer state; they ask the
 * Network for its `Tracer *` and skip everything on nullptr, so a build
 * with tracing disabled pays exactly one predicted branch per hook.
 * When a tracer is attached, per-category and per-router filters decide
 * what reaches the sink.
 *
 * Two sinks ship with the simulator:
 *  - JsonlSink: one JSON object per line -- trivially greppable and
 *    streamable into any analysis script.
 *  - ChromeTraceSink: the Chrome trace_event JSON array format, loadable
 *    in chrome://tracing and https://ui.perfetto.dev (router = track).
 */

#ifndef SPINNOC_OBS_TRACER_HH
#define SPINNOC_OBS_TRACER_HH

#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/Packet.hh"
#include "obs/TraceEvent.hh"

namespace spin::obs
{

/** Destination for recorded events. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void write(const TraceEvent &e) = 0;
    virtual void flush() {}
};

/** Newline-delimited JSON: one event object per line. */
class JsonlSink : public TraceSink
{
  public:
    /** Write to a borrowed stream (e.g. a stringstream in tests). */
    explicit JsonlSink(std::ostream &os) : os_(&os) {}
    /** Open @p path for writing; returns nullptr on failure. */
    static std::unique_ptr<JsonlSink> open(const std::string &path);

    void write(const TraceEvent &e) override;
    void flush() override { os_->flush(); }

  private:
    JsonlSink() = default;
    std::ofstream own_;
    std::ostream *os_ = nullptr;
};

/**
 * Chrome trace_event array format. Every event becomes a 1-cycle
 * complete ("X") slice with pid = 0 and tid = router id, so each
 * router renders as its own track; `ts` is the simulation cycle.
 * The closing bracket is written by finish() (or the destructor).
 */
class ChromeTraceSink : public TraceSink
{
  public:
    explicit ChromeTraceSink(std::ostream &os);
    static std::unique_ptr<ChromeTraceSink> open(const std::string &path);
    ~ChromeTraceSink() override;

    void write(const TraceEvent &e) override;
    void flush() override { os_->flush(); }
    /** Write the trailer; further writes are ignored. Idempotent. */
    void finish();

  private:
    ChromeTraceSink() = default;
    void begin();
    std::ofstream own_;
    std::ostream *os_ = nullptr;
    bool first_ = true;
    bool finished_ = false;
};

/** See file comment. */
class Tracer
{
  public:
    explicit Tracer(std::unique_ptr<TraceSink> sink,
                    std::uint32_t category_mask = kCatAll);
    ~Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /// @name Runtime filters
    /// @{
    void setCategoryMask(std::uint32_t mask) { mask_ = mask; }
    std::uint32_t categoryMask() const { return mask_; }
    /** Only record events of these routers (and router-less events).
     *  An empty list removes the filter. */
    void restrictRouters(const std::vector<RouterId> &routers);
    /** True when an event of @p cat at @p router would be recorded. */
    bool
    wants(std::uint32_t cat, RouterId router = kInvalidId) const
    {
        if (!(mask_ & cat))
            return false;
        if (!routerFilterOn_ || router == kInvalidId)
            return true;
        return router >= 0 &&
               static_cast<std::size_t>(router) < routerAllowed_.size() &&
               routerAllowed_[static_cast<std::size_t>(router)];
    }
    /// @}

    /** Record @p e if the filters admit it. When this thread has a
     *  staging buffer installed (stageInto), the raw event is appended
     *  there instead and filtering happens when the owner replays it
     *  through record() on the coordinating thread. */
    void record(const TraceEvent &e);

    /**
     * Redirect this thread's record() calls into @p buf; nullptr
     * restores direct recording. Installed around the parallel phases
     * of the sharded step loop so worker threads never touch the sink;
     * the staged events are replayed in shard order at the phase
     * barrier, keeping trace output bit-identical for any thread count
     * (docs/SCALING.md). Thread-local and tracer-agnostic: a worker
     * serves exactly one network while staged.
     */
    static void stageInto(std::vector<TraceEvent> *buf);

    /// @name Convenience emitters (build the event in place)
    /// @{
    /** Flit-lifecycle event. */
    void
    flit(Cycle now, const char *name, RouterId router, const Packet &pkt,
         PortId port, VcId vc, std::int64_t arg0 = -1,
         std::int64_t arg1 = -1)
    {
        TraceEvent e;
        e.cycle = now;
        e.category = kCatFlit;
        e.name = name;
        e.router = router;
        e.packet = pkt.id;
        e.port = port;
        e.vc = vc;
        e.arg0 = arg0;
        e.arg1 = arg1;
        record(e);
    }

    /** SPIN-protocol event. */
    void
    spin(Cycle now, const char *name, RouterId router,
         const char *detail = nullptr, std::int64_t arg0 = -1,
         std::int64_t arg1 = -1)
    {
        TraceEvent e;
        e.cycle = now;
        e.category = kCatSpin;
        e.name = name;
        e.router = router;
        e.detail = detail;
        e.arg0 = arg0;
        e.arg1 = arg1;
        record(e);
    }
    /// @}

    void flush() { sink_->flush(); }

    /// @name Counters
    /// @{
    std::uint64_t recorded() const { return recorded_; }
    /** Events offered but rejected by a filter. */
    std::uint64_t filtered() const { return filtered_; }
    /// @}

  private:
    std::unique_ptr<TraceSink> sink_;
    std::uint32_t mask_;
    bool routerFilterOn_ = false;
    std::vector<char> routerAllowed_;
    std::uint64_t recorded_ = 0;
    std::uint64_t filtered_ = 0;
};

} // namespace spin::obs

#endif // SPINNOC_OBS_TRACER_HH
