/**
 * @file
 * Host-side simulator self-profiler: attributes wall-clock time to the
 * simulation phases of Network::step() (fault injection, wire
 * arrivals, SPIN special messages, rotations, bubble recovery,
 * injection, route compute, switch allocation, FSM timers, telemetry)
 * so hot-path work shows *where* a change helped without an external
 * profiler.
 *
 * Cost model: disabled (the default), each phase hook is one
 * pointer-null test -- the same contract as the tracer. Enabled, each
 * phase pays two steady_clock reads per cycle, which perturbs absolute
 * cycles/s; the *shares* remain meaningful, which is what the summary
 * reports. Wall-clock data is inherently machine-dependent, so the
 * summary lives next to the deterministic documents (telemetry
 * "profile" section, campaign perf block), never inside them.
 */

#ifndef SPINNOC_OBS_PROFILER_HH
#define SPINNOC_OBS_PROFILER_HH

#include <array>
#include <chrono>
#include <cstdint>

#include "obs/Json.hh"

namespace spin::obs
{

/** One timed phase of Network::step(). */
enum class Phase : std::uint8_t
{
    Faults,      //!< FaultInjector::tick
    Wires,       //!< link/NIC wire drains (traversal delivery)
    SpecialMsg,  //!< SPIN SM phase (probe/move processing)
    Rotation,    //!< SPIN synchronized rotations
    Bubble,      //!< Static Bubble recovery grants
    Injection,   //!< NIC injection
    Routing,     //!< route compute + VC allocation
    SwitchAlloc, //!< switch allocation + link traversal
    FsmTimers,   //!< SPIN counter FSMs
    Telemetry,   //!< samplers + metrics window work
    Count
};

/** Short stable name ("faults", "routing", ...). */
const char *phaseName(Phase p);

/** See file comment. */
class PhaseProfiler
{
  public:
    using clock = std::chrono::steady_clock;

    void
    add(Phase p, std::uint64_t ns)
    {
        ns_[static_cast<std::size_t>(p)] += ns;
    }
    /** Count one profiled cycle (called once per step). */
    void onCycle() { ++cycles_; }

    std::uint64_t phaseNs(Phase p) const
    {
        return ns_[static_cast<std::size_t>(p)];
    }
    std::uint64_t totalNs() const;
    std::uint64_t cycles() const { return cycles_; }

    /** Fold another profiler's totals into this one (campaigns). */
    void merge(const PhaseProfiler &other);

    /**
     * {"schema":"spin-profile/v1","cycles":...,"totalNs":...,
     *  "nsPerCycle":...,"phases":{name:{"ns":...,"share":...}}}
     */
    JsonValue toJson() const;

  private:
    std::array<std::uint64_t, static_cast<std::size_t>(Phase::Count)>
        ns_{};
    std::uint64_t cycles_ = 0;
};

/**
 * RAII phase timer: no-op (one predicted branch) when @p prof is null.
 * Scope instances must not be nested for the same profiler phase.
 */
class PhaseScope
{
  public:
    PhaseScope(PhaseProfiler *prof, Phase phase)
        : prof_(prof), phase_(phase)
    {
        if (prof_)
            t0_ = PhaseProfiler::clock::now();
    }
    ~PhaseScope()
    {
        if (prof_) {
            prof_->add(phase_,
                       static_cast<std::uint64_t>(
                           std::chrono::duration_cast<
                               std::chrono::nanoseconds>(
                               PhaseProfiler::clock::now() - t0_)
                               .count()));
        }
    }

    PhaseScope(const PhaseScope &) = delete;
    PhaseScope &operator=(const PhaseScope &) = delete;

  private:
    PhaseProfiler *prof_;
    Phase phase_;
    PhaseProfiler::clock::time_point t0_;
};

} // namespace spin::obs

#endif // SPINNOC_OBS_PROFILER_HH
