/**
 * @file
 * Deadlock forensics: when a probe returns (loop confirmed by SPIN
 * itself) or the ground-truth OracleDetector fires, snapshot the
 * wait-for structure -- routers, VCs, blocked packet ids, wait-for
 * edges -- so detection-correctness bugs can be inspected after the
 * fact. Snapshots export as Graphviz DOT and as structured JSON.
 */

#ifndef SPINNOC_OBS_FORENSICS_HH
#define SPINNOC_OBS_FORENSICS_HH

#include <string>
#include <vector>

#include "common/Types.hh"
#include "obs/Json.hh"

namespace spin
{
class Network;
struct SpecialMsg;
struct DeadlockReport;
}

namespace spin::obs
{

/** One wait-for edge: the packet in (router, inport, vc) waits on
 *  outport, whose link leads to (downRouter, downInport). */
struct WaitForEdge
{
    RouterId router = kInvalidId;
    PortId inport = kInvalidId;
    VcId vc = kInvalidId;
    PacketId packet = 0;
    PortId outport = kInvalidId;
    RouterId downRouter = kInvalidId;
    PortId downInport = kInvalidId;
};

/** One captured deadlock (or suspected-deadlock) structure. */
struct LoopSnapshot
{
    Cycle cycle = 0;
    /** "probe" (SPIN loop latch) or "oracle" (ground-truth detector). */
    std::string origin;
    /** Recovery-initiating router; kInvalidId for oracle snapshots. */
    RouterId initiator = kInvalidId;
    VnetId vnet = 0;
    /** Probe round-trip latency; 0 for oracle snapshots. */
    Cycle loopLatency = 0;
    /** Routers on the loop, in traversal order (probe) or sorted
     *  unique order (oracle). */
    std::vector<RouterId> routers;
    std::vector<WaitForEdge> edges;
    /** The injected fault applied most recently before this snapshot
     *  (empty when the run had none). */
    std::string precedingFault;
    Cycle precedingFaultCycle = 0;

    /** Graphviz DOT rendering of the wait-for cycle. */
    std::string toDot() const;
    JsonValue toJson() const;
};

/** See file comment. Owned by the Network; created by enableForensics. */
class Forensics
{
  public:
    explicit Forensics(std::size_t max_records = 64)
        : maxRecords_(max_records)
    {
    }

    /**
     * Capture the loop a returned probe discovered. Called from
     * SpinUnit::onProbeReturned; @p pointer_inport / @p pointer_vc are
     * the initiator's pointed VC (the probe's origin and return port).
     */
    void onProbeReturned(Network &net, RouterId initiator,
                         PortId pointer_inport, VcId pointer_vc,
                         const SpecialMsg &probe, Cycle now);

    /** Capture the wait-for structure of an oracle report. */
    void onOracleReport(Network &net, const DeadlockReport &report,
                        Cycle now);

    /**
     * Record an applied fault (from the FaultInjector). Subsequent
     * snapshots name it, so a detected deadlock points back to the
     * fault that preceded it.
     */
    void noteFault(Cycle cycle, std::string description);
    const std::string &lastFault() const { return lastFaultDesc_; }
    Cycle lastFaultCycle() const { return lastFaultCycle_; }

    const std::vector<LoopSnapshot> &records() const { return records_; }
    /** Snapshots discarded after the record cap filled. */
    std::uint64_t dropped() const { return dropped_; }
    void clear();

    JsonValue toJson() const;
    /** Write records_[index] as DOT. @return false on I/O failure. */
    bool writeDot(const std::string &path, std::size_t index) const;
    /** Write the most recent snapshot as DOT. */
    bool writeLastDot(const std::string &path) const;

  private:
    std::size_t maxRecords_;
    std::vector<LoopSnapshot> records_;
    std::uint64_t dropped_ = 0;
    std::string lastFaultDesc_;
    Cycle lastFaultCycle_ = 0;

    bool admit();
    void stampFault(LoopSnapshot &snap) const;
};

} // namespace spin::obs

#endif // SPINNOC_OBS_FORENSICS_HH
