/**
 * @file
 * Windowed time-series metrics engine.
 *
 * A MetricsRegistry is a named set of pull-based instruments:
 *
 *  - **counters** -- monotonically increasing cumulative values (read
 *    from Stats or a component); every window emits the *delta* over
 *    the window.
 *  - **gauges** -- instantaneous values sampled at the window boundary
 *    (VC occupancy, NIC queue depth, packets in flight).
 *  - **histograms** -- log2-bucketed cumulative histograms (HDR-style);
 *    every window emits the per-bucket delta plus p50/p99 interpolated
 *    within it.
 *
 * NetworkMetrics owns a registry pre-populated with the network's own
 * instruments (traffic, SPIN protocol, fault counters, per-vnet VC
 * occupancy) and snapshots it every `interval` cycles into a versioned
 * `spin-metrics/v2` JSONL stream: one header record, then one record
 * per window. All record content derives from simulation state alone,
 * so the stream is bit-identical across runs and worker counts.
 *
 * Hot-path contract (same as Tracer/Samplers): the Network holds a
 * `unique_ptr<NetworkMetrics>` that is null unless enableMetrics() was
 * called; Network::step() pays exactly one predicted branch per cycle
 * when metrics are disabled, and one modulo check per cycle when they
 * are enabled. All real work happens on window boundaries.
 */

#ifndef SPINNOC_OBS_METRICS_HH
#define SPINNOC_OBS_METRICS_HH

#include <cstdint>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/Types.hh"
#include "obs/Json.hh"

namespace spin
{
class Network;
}

namespace spin::obs
{

/** Metrics parameters. */
struct MetricsConfig
{
    /** Cycles per window (snapshot period). */
    Cycle interval = 256;
    /**
     * Label stamped into every record as "cell" (campaign runs tag
     * each cell's stream so many cells can share one file). Empty
     * omits the field.
     */
    std::string label;
};

/** Destination for spin-metrics/v2 JSONL records (one per line). */
class MetricsSink
{
  public:
    virtual ~MetricsSink() = default;
    virtual void line(const std::string &text) = 0;
    virtual void flush() {}
};

/** Appends records to a borrowed or owned stream. */
class StreamMetricsSink : public MetricsSink
{
  public:
    explicit StreamMetricsSink(std::ostream &os) : os_(&os) {}
    /** Open @p path for writing; returns nullptr on failure. */
    static std::unique_ptr<StreamMetricsSink> open(const std::string &path);

    void line(const std::string &text) override
    {
        *os_ << text << '\n';
    }
    void flush() override { os_->flush(); }

  private:
    StreamMetricsSink() = default;
    std::ofstream own_;
    std::ostream *os_ = nullptr;
};

/** Buffers records in memory (campaign cells, tests). */
class MemoryMetricsSink : public MetricsSink
{
  public:
    void line(const std::string &text) override
    {
        lines_.push_back(text);
    }
    const std::vector<std::string> &lines() const { return lines_; }

  private:
    std::vector<std::string> lines_;
};

/** Discards everything (micro-benchmarks of the engine itself). */
class NullMetricsSink : public MetricsSink
{
  public:
    void line(const std::string &) override {}
};

/** See file comment. */
class MetricsRegistry
{
  public:
    using CounterFn = std::function<std::uint64_t()>;
    using GaugeFn = std::function<double()>;
    /** Returns the cumulative log2-bucket array (any length). */
    using HistogramFn = std::function<std::vector<std::uint64_t>()>;

    void addCounter(std::string name, CounterFn fn);
    void addGauge(std::string name, GaugeFn fn);
    void addHistogram(std::string name, HistogramFn fn);

    /// @name Introspection (registration order)
    /// @{
    std::vector<std::string> counterNames() const;
    std::vector<std::string> gaugeNames() const;
    std::vector<std::string> histogramNames() const;
    /// @}

    /** Current cumulative counter values, in registration order. */
    std::vector<std::uint64_t> readCounters() const;
    std::vector<double> readGauges() const;
    std::vector<std::vector<std::uint64_t>> readHistograms() const;

    /// @name Allocation-free variants for the per-window hot path
    /// @{
    void readCounters(std::vector<std::uint64_t> &out) const;
    void readGauges(std::vector<double> &out) const;
    void readHistograms(std::vector<std::vector<std::uint64_t>> &out) const;
    /// @}

  private:
    friend class NetworkMetrics;
    std::vector<std::pair<std::string, CounterFn>> counters_;
    std::vector<std::pair<std::string, GaugeFn>> gauges_;
    std::vector<std::pair<std::string, HistogramFn>> histograms_;
};

/**
 * Percentile from a log2-bucket histogram delta (bucket b holds values
 * in [2^(b-1), 2^b), geometric interpolation). Exposed for the window
 * emitter, Stats, and the tests. @p p is clamped into (0, 1].
 */
double histogramPercentile(const std::vector<std::uint64_t> &buckets,
                           double p);

/** See file comment. Owned by the Network; created by enableMetrics. */
class NetworkMetrics
{
  public:
    /**
     * Registers the network's built-in instruments and writes the
     * header record. @p sink must not be null.
     */
    NetworkMetrics(Network &net, MetricsConfig cfg,
                   std::unique_ptr<MetricsSink> sink);
    ~NetworkMetrics();

    NetworkMetrics(const NetworkMetrics &) = delete;
    NetworkMetrics &operator=(const NetworkMetrics &) = delete;

    const MetricsConfig &config() const { return cfg_; }
    MetricsRegistry &registry() { return reg_; }
    const MetricsRegistry &registry() const { return reg_; }
    MetricsSink &sink() { return *sink_; }

    /** Called by Network::step() every cycle; emits on window ticks. */
    void
    tick(Cycle now)
    {
        if (now == 0 || now % cfg_.interval != 0)
            return;
        emitWindow(now);
    }

    /**
     * Warmup-reset hook (Network::beginMeasurement). Windowed series
     * restart like the non-structural Stats counters: counter and
     * histogram baselines re-read *after* the Stats reset, and a
     * "measurement-begin" marker record is written so consumers can
     * split warmup from measurement. Structural fault counters survive
     * inside Stats itself and keep accumulating normally.
     */
    void onMeasurementBegin(Cycle now);

    /**
     * Emit the final partial window (when any cycles elapsed since the
     * last boundary) and flush. Idempotent; also run by the destructor
     * so attach-and-forget captures are never truncated.
     */
    void finish(Cycle now);

    /** Windows emitted so far (partial final window included). */
    std::uint64_t windowsEmitted() const { return windows_; }

  private:
    void registerBuiltins();
    void emitHeader();
    void emitWindow(Cycle now);
    void rebaseline();
    /** Stamp schema/cell/kind prologue fields shared by all records. */
    JsonValue record(const char *kind) const;

    Network &net_;
    MetricsConfig cfg_;
    std::unique_ptr<MetricsSink> sink_;
    MetricsRegistry reg_;

    /** Baselines for delta computation. */
    std::vector<std::uint64_t> lastCounters_;
    std::vector<std::vector<std::uint64_t>> lastHists_;
    Cycle windowStart_ = 0;
    std::uint64_t windows_ = 0;
    bool finished_ = false;

    /**
     * Reused window-serialization state. emitWindow() hand-rolls its
     * JSON into buf_ (byte-identical with JsonValue::dump(0)) instead
     * of building a JsonValue tree: the tree's per-window string
     * allocations were the dominant cost of the enabled engine in
     * micro_router, and the off/on gate (tools/check_micro_delta.py)
     * budgets 2%. Keys never change after construction, so they are
     * pre-escaped once.
     */
    std::string cellField_;                //!< ',"cell":"<label>"' or ""
    std::vector<std::string> counterKeys_; //!< ',"<name>":' fragments
    std::vector<std::string> gaugeKeys_;
    std::vector<std::string> histKeys_;
    std::string buf_;
    std::vector<std::uint64_t> curCounters_;
    std::vector<double> curGauges_;
    std::vector<std::vector<std::uint64_t>> curHists_;
};

} // namespace spin::obs

#endif // SPINNOC_OBS_METRICS_HH
