/**
 * @file
 * Periodic telemetry samplers: per-router buffer occupancy and
 * credit-stall cycles, and per-link utilization, captured every
 * `period` cycles into fixed-capacity ring-buffered time series. This
 * is the data source for Fig. 8b-style utilization plots and for the
 * VC-occupancy analyses the HOTI'25 VC-management study relies on.
 *
 * Sampling is pull-based: nothing is touched on the per-cycle fast path
 * except one branch in Network::step() (and, for the credit-stall
 * counter, one branch in Router::allocateSwitch()) while sampling is
 * enabled.
 */

#ifndef SPINNOC_OBS_SAMPLERS_HH
#define SPINNOC_OBS_SAMPLERS_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/Types.hh"
#include "obs/Json.hh"

namespace spin
{
class Network;
}

namespace spin::obs
{

/** Sampler parameters. */
struct SamplerConfig
{
    /** Cycles between samples. */
    Cycle period = 64;
    /** Samples retained per series; older samples are overwritten. */
    std::size_t capacity = 4096;
};

/** Fixed-capacity (cycle, value) ring buffer, oldest-first iteration. */
class RingSeries
{
  public:
    explicit RingSeries(std::size_t capacity) : cap_(capacity) {}

    void
    push(Cycle t, double v)
    {
        if (buf_.size() < cap_) {
            buf_.emplace_back(t, v);
        } else {
            buf_[head_] = {t, v};
            head_ = (head_ + 1) % cap_;
        }
        ++total_;
    }

    /** Samples currently retained. */
    std::size_t size() const { return buf_.size(); }
    /** Samples ever pushed (>= size() once the ring wraps). */
    std::uint64_t total() const { return total_; }

    /** Drop every retained sample (capacity unchanged). */
    void
    clear()
    {
        buf_.clear();
        head_ = 0;
        total_ = 0;
    }

    /** i-th retained sample, oldest first. */
    std::pair<Cycle, double>
    at(std::size_t i) const
    {
        return buf_[(head_ + i) % buf_.size()];
    }

    double back() const { return at(buf_.size() - 1).second; }

    /** {"cycles":[...],"values":[...]} */
    JsonValue toJson() const;

  private:
    std::size_t cap_;
    std::size_t head_ = 0;
    std::uint64_t total_ = 0;
    std::vector<std::pair<Cycle, double>> buf_;
};

/** See file comment. Owned by the Network; created by enableSampling. */
class NetworkSamplers
{
  public:
    NetworkSamplers(Network &net, const SamplerConfig &cfg);

    const SamplerConfig &config() const { return cfg_; }

    /** Called by Network::step() every cycle; samples on period ticks. */
    void tick(Cycle now);

    /**
     * Warmup-reset hook (Network::beginMeasurement): drop every warmup
     * sample and re-read the delta baselines from the *current*
     * cumulative counters, so the first measurement-window sample
     * covers measurement cycles only. Mirrors the non-structural
     * counter reset in Stats::reset.
     */
    void reset(Cycle now);

    /// @name Series access
    /// @{
    /** Flits buffered across all input VCs of router @p r. */
    const RingSeries &routerOccupancy(RouterId r) const { return occ_[r]; }
    /** Credit-stall cycles of router @p r in each sample window. */
    const RingSeries &routerCreditStalls(RouterId r) const
    {
        return stalls_[r];
    }
    /** Busy fraction [0,1] of link @p idx in each sample window
     *  (flit + probe + move traversal cycles over the period). */
    const RingSeries &linkUtilization(int idx) const
    {
        return linkUtil_[static_cast<std::size_t>(idx)];
    }
    std::uint64_t samplesTaken() const { return samples_; }
    /// @}

    /** Full dump: config + every series, keyed by router/link id. */
    JsonValue toJson() const;

  private:
    Network &net_;
    SamplerConfig cfg_;
    std::vector<RingSeries> occ_;
    std::vector<RingSeries> stalls_;
    std::vector<RingSeries> linkUtil_;
    /** Previous cumulative counters, for per-window deltas. */
    std::vector<std::uint64_t> lastStalls_;
    std::vector<std::uint64_t> lastLinkUses_;
    std::uint64_t samples_ = 0;
};

} // namespace spin::obs

#endif // SPINNOC_OBS_SAMPLERS_HH
