#include "topology/Ring.hh"

#include "common/Logging.hh"

namespace spin
{

Topology
makeRing(int n, Cycle link_latency)
{
    if (n < 3)
        SPIN_FATAL("ring needs n >= 3");

    Topology t;
    t.name = std::to_string(n) + "-ring";
    RingInfo info;
    info.n = n;
    t.ring = info;

    t.setRouters(n, 3);
    for (RouterId r = 0; r < n; ++r) {
        const RouterId next = (r + 1) % n;
        // r's clockwise out-port feeds next's counter-clockwise in-port.
        t.addLink(LinkSpec{r, RingInfo::kCw, next, RingInfo::kCcw,
                           link_latency, false});
        t.addLink(LinkSpec{next, RingInfo::kCcw, r, RingInfo::kCw,
                           link_latency, false});
    }
    for (RouterId r = 0; r < n; ++r)
        t.attachNic(r, r, RingInfo::kLocal);
    t.finalize();
    return t;
}

} // namespace spin
