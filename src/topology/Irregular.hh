/**
 * @file
 * Irregular topology generators.
 *
 * The paper motivates SPIN for exactly these networks: random-graph
 * datacenter fabrics (Jellyfish), meshes with faulty or power-gated links,
 * and application-specific NoCs, where designing an acyclic CDG or escape
 * network at design time is hard. SPIN works on them unmodified.
 */

#ifndef SPINNOC_TOPOLOGY_IRREGULAR_HH
#define SPINNOC_TOPOLOGY_IRREGULAR_HH

#include <vector>

#include "common/Random.hh"
#include "topology/Topology.hh"

namespace spin
{

/**
 * Build a mesh with a set of bidirectional links removed (faulty /
 * power-gated). The mesh metadata is dropped so that structure-aware
 * routing refuses to run on it; use table-driven minimal adaptive
 * routing (+SPIN) instead.
 *
 * @param size_x,size_y mesh dimensions
 * @param dead_links pairs of adjacent routers whose connecting
 *                   bidirectional link is removed
 * @throws FatalError when removal disconnects the network or a pair is
 *         not adjacent
 */
Topology makeFaultyMesh(int size_x, int size_y,
                        const std::vector<std::pair<RouterId, RouterId>>
                            &dead_links,
                        Cycle link_latency = 1);

/**
 * Remove @p n_faults random links from a mesh while keeping it
 * connected (rejection sampling with the supplied RNG).
 */
Topology makeRandomFaultyMesh(int size_x, int size_y, int n_faults,
                              Random &rng, Cycle link_latency = 1);

/**
 * Jellyfish-style random regular graph: n routers, degree network links
 * each, one NIC per router. Built by repeated random matchings until the
 * graph is connected and simple.
 *
 * @param n routers (n * degree must be even)
 * @param degree network ports per router
 */
Topology makeRandomRegular(int n, int degree, Random &rng,
                           Cycle link_latency = 1);

} // namespace spin

#endif // SPINNOC_TOPOLOGY_IRREGULAR_HH
