/**
 * @file
 * 2-D mesh topology generator (the paper's on-chip 8x8 configuration).
 */

#ifndef SPINNOC_TOPOLOGY_MESH_HH
#define SPINNOC_TOPOLOGY_MESH_HH

#include "topology/Topology.hh"

namespace spin
{

/**
 * Build an X x Y mesh with one NIC per router and 5 ports per router
 * (E, W, N, S, Local). Border out-ports toward nonexistent neighbors are
 * left unwired.
 *
 * @param size_x columns
 * @param size_y rows
 * @param link_latency per-hop link latency in cycles (paper: 1)
 */
Topology makeMesh(int size_x, int size_y, Cycle link_latency = 1);

} // namespace spin

#endif // SPINNOC_TOPOLOGY_MESH_HH
