#include "topology/TopologyIo.hh"

#include <fstream>
#include <sstream>

#include "common/Logging.hh"

namespace spin
{

Topology
readTopology(std::istream &in)
{
    Topology t;
    bool have_routers = false;
    NodeId next_node = 0;
    std::string line;
    int line_no = 0;

    while (std::getline(in, line)) {
        ++line_no;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream ls(line);
        std::string kw;
        if (!(ls >> kw))
            continue;

        if (kw == "routers") {
            if (have_routers)
                SPIN_FATAL("line ", line_no, ": duplicate 'routers'");
            int n = 0;
            std::string second;
            if (!(ls >> n) || n <= 0)
                SPIN_FATAL("line ", line_no, ": bad router count");
            if (ls >> second) {
                if (second == "list") {
                    std::vector<int> ports(n);
                    for (int i = 0; i < n; ++i) {
                        if (!(ls >> ports[i]) || ports[i] <= 0) {
                            SPIN_FATAL("line ", line_no,
                                       ": bad per-router port list");
                        }
                    }
                    t.setRouters(ports);
                } else {
                    const int ports = std::stoi(second);
                    if (ports <= 0)
                        SPIN_FATAL("line ", line_no, ": bad port count");
                    t.setRouters(n, ports);
                }
            } else {
                SPIN_FATAL("line ", line_no, ": 'routers' needs a port "
                           "count");
            }
            have_routers = true;
        } else if (kw == "link" || kw == "bilink") {
            if (!have_routers)
                SPIN_FATAL("line ", line_no, ": link before 'routers'");
            int a, pa, b, pb;
            long lat;
            if (!(ls >> a >> pa >> b >> pb >> lat) || lat < 1)
                SPIN_FATAL("line ", line_no, ": malformed ", kw);
            std::string flag;
            const bool global = (ls >> flag) && flag == "global";
            if (kw == "bilink") {
                t.addBiLink(a, pa, b, pb, static_cast<Cycle>(lat),
                            global);
            } else {
                t.addLink(LinkSpec{a, pa, b, pb,
                                   static_cast<Cycle>(lat), global});
            }
        } else if (kw == "nic") {
            if (!have_routers)
                SPIN_FATAL("line ", line_no, ": nic before 'routers'");
            int node, router, port;
            if (!(ls >> node >> router >> port))
                SPIN_FATAL("line ", line_no, ": malformed nic");
            if (node != next_node)
                SPIN_FATAL("line ", line_no, ": NICs must appear in "
                           "node-id order (expected ", next_node, ")");
            t.attachNic(node, router, port);
            ++next_node;
        } else {
            SPIN_FATAL("line ", line_no, ": unknown keyword '", kw,
                       "'");
        }
    }
    if (!have_routers)
        SPIN_FATAL("topology stream had no 'routers' line");
    t.name = "from-file";
    t.finalize();
    return t;
}

Topology
readTopologyFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        SPIN_FATAL("cannot open topology file ", path);
    return readTopology(in);
}

void
writeTopology(const Topology &topo, std::ostream &out)
{
    out << "# spin-noc topology: " << topo.name << "\n";
    bool uniform = true;
    for (RouterId r = 1; r < topo.numRouters(); ++r)
        uniform &= topo.radix(r) == topo.radix(0);
    if (uniform) {
        out << "routers " << topo.numRouters() << " " << topo.radix(0)
            << "\n";
    } else {
        out << "routers " << topo.numRouters() << " list";
        for (RouterId r = 0; r < topo.numRouters(); ++r)
            out << " " << topo.radix(r);
        out << "\n";
    }
    for (const LinkSpec &l : topo.links()) {
        out << "link " << l.src << " " << l.srcPort << " " << l.dst
            << " " << l.dstPort << " " << l.latency
            << (l.global ? " global" : "") << "\n";
    }
    for (const NicAttach &n : topo.nics()) {
        out << "nic " << n.node << " " << n.router << " " << n.port
            << "\n";
    }
}

void
writeTopologyFile(const Topology &topo, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        SPIN_FATAL("cannot write topology file ", path);
    writeTopology(topo, out);
}

} // namespace spin
