#include "topology/Dragonfly.hh"

#include "common/Logging.hh"

namespace spin
{

Topology
makeDragonfly(int p, int a, int h, int g,
              Cycle local_latency, Cycle global_latency)
{
    if (p < 1 || a < 2 || h < 1)
        SPIN_FATAL("dragonfly needs p >= 1, a >= 2, h >= 1");
    const int g_max = a * h + 1;
    if (g == 0)
        g = g_max;
    if (g < 2 || g > g_max)
        SPIN_FATAL("dragonfly group count must be in [2, ", g_max,
                   "], got ", g);

    Topology t;
    t.name = "dragonfly-p" + std::to_string(p) + "a" + std::to_string(a)
        + "h" + std::to_string(h) + "g" + std::to_string(g);
    DragonflyInfo info;
    info.p = p;
    info.a = a;
    info.h = h;
    info.g = g;
    t.dragonfly = info;

    const int n_routers = g * a;
    t.setRouters(n_routers, (a - 1) + h + p);

    // Intra-group: full connectivity. Router i's local port j reaches
    // in-group router (j < i ? j : j + 1) so every router uses ports
    // 0 .. a-2 and the wiring is symmetric (i's port toward k equals
    // k-minus-skip index).
    for (int grp = 0; grp < g; ++grp) {
        for (int i = 0; i < a; ++i) {
            for (int k = i + 1; k < a; ++k) {
                const RouterId ri = info.routerOf(grp, i);
                const RouterId rk = info.routerOf(grp, k);
                const PortId pi = info.localPortBase() + (k - 1);
                const PortId pk = info.localPortBase() + i;
                t.addBiLink(ri, pi, rk, pk, local_latency, false);
            }
        }
    }

    // Inter-group: channel k of group G (router G*a + k/h, global port
    // k%h) connects to group T = (k < G ? k : k + 1). Only wire when
    // G < T to add each cable once; skip channels to nonexistent groups.
    for (int grp = 0; grp < g; ++grp) {
        for (int k = 0; k < a * h; ++k) {
            const int target = (k < grp) ? k : k + 1;
            if (target >= g || target <= grp)
                continue;
            // Reverse channel index inside the target group.
            const int k_back = (grp < target) ? grp : grp - 1;
            const RouterId rs = info.routerOf(grp, k / h);
            const RouterId rd = info.routerOf(target, k_back / h);
            const PortId ps = info.globalPortBase() + (k % h);
            const PortId pd = info.globalPortBase() + (k_back % h);
            t.addBiLink(rs, ps, rd, pd, global_latency, true);
        }
    }

    // Terminals.
    NodeId node = 0;
    for (RouterId r = 0; r < n_routers; ++r) {
        for (int term = 0; term < p; ++term)
            t.attachNic(node++, r, info.terminalPortBase() + term);
    }

    t.finalize();
    return t;
}

Topology
makePaperDragonfly()
{
    return makeDragonfly(4, 8, 4, 32, 1, 3);
}

} // namespace spin
