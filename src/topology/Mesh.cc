#include "topology/Mesh.hh"

#include "common/Logging.hh"

namespace spin
{

Topology
makeMesh(int size_x, int size_y, Cycle link_latency)
{
    if (size_x < 2 || size_y < 1)
        SPIN_FATAL("mesh needs size_x >= 2, size_y >= 1");

    Topology t;
    t.name = std::to_string(size_x) + "x" + std::to_string(size_y) + "-mesh";
    MeshInfo info;
    info.sizeX = size_x;
    info.sizeY = size_y;
    info.wrap = false;
    t.mesh = info;

    t.setRouters(size_x * size_y, 5);
    for (int y = 0; y < size_y; ++y) {
        for (int x = 0; x < size_x; ++x) {
            const RouterId r = info.routerAt(x, y);
            if (x + 1 < size_x) {
                t.addBiLink(r, MeshInfo::kEast,
                            info.routerAt(x + 1, y), MeshInfo::kWest,
                            link_latency);
            }
            if (y + 1 < size_y) {
                // North is +y.
                t.addBiLink(r, MeshInfo::kNorth,
                            info.routerAt(x, y + 1), MeshInfo::kSouth,
                            link_latency);
            }
        }
    }
    for (RouterId r = 0; r < size_x * size_y; ++r)
        t.attachNic(r, r, MeshInfo::kLocal);
    t.finalize();
    return t;
}

} // namespace spin
