#include "topology/Topology.hh"

#include <algorithm>
#include <deque>
#include <queue>

#include "common/Logging.hh"

namespace spin
{

void
Topology::setRouters(int n, int ports)
{
    SPIN_ASSERT(n > 0 && ports > 0, "bad router spec");
    radix_.assign(n, ports);
}

void
Topology::setRouters(const std::vector<int> &ports_per_router)
{
    SPIN_ASSERT(!ports_per_router.empty(), "no routers");
    radix_ = ports_per_router;
}

void
Topology::addLink(const LinkSpec &l)
{
    SPIN_ASSERT(!finalized_, "topology already finalized");
    SPIN_ASSERT(l.src >= 0 && l.src < numRouters(), "bad src router");
    SPIN_ASSERT(l.dst >= 0 && l.dst < numRouters(), "bad dst router");
    SPIN_ASSERT(l.srcPort >= 0 && l.srcPort < radix_[l.src], "bad src port");
    SPIN_ASSERT(l.dstPort >= 0 && l.dstPort < radix_[l.dst], "bad dst port");
    SPIN_ASSERT(l.latency >= 1, "link latency must be >= 1");
    links_.push_back(l);
}

void
Topology::addBiLink(RouterId a, PortId pa, RouterId b, PortId pb,
                    Cycle latency, bool global)
{
    addLink(LinkSpec{a, pa, b, pb, latency, global});
    addLink(LinkSpec{b, pb, a, pa, latency, global});
}

void
Topology::attachNic(NodeId node, RouterId router, PortId port)
{
    SPIN_ASSERT(!finalized_, "topology already finalized");
    SPIN_ASSERT(node == static_cast<NodeId>(nics_.size()),
                "NICs must be attached in node-id order");
    nics_.push_back(NicAttach{node, router, port});
}

void
Topology::finalize()
{
    finalizeImpl(true);
}

void
Topology::finalizePartial()
{
    finalizeImpl(false);
    partial_ = true;
}

void
Topology::finalizeImpl(bool strict)
{
    SPIN_ASSERT(!finalized_, "finalize() called twice");
    const int n = numRouters();

    outLinkIdx_.assign(n, {});
    inLinkIdx_.assign(n, {});
    for (int r = 0; r < n; ++r) {
        outLinkIdx_[r].assign(radix_[r], -1);
        inLinkIdx_[r].assign(radix_[r], -1);
    }
    for (std::size_t i = 0; i < links_.size(); ++i) {
        const LinkSpec &l = links_[i];
        if (outLinkIdx_[l.src][l.srcPort] != -1) {
            SPIN_FATAL("router ", l.src, " out-port ", l.srcPort,
                       " wired twice");
        }
        if (inLinkIdx_[l.dst][l.dstPort] != -1) {
            SPIN_FATAL("router ", l.dst, " in-port ", l.dstPort,
                       " wired twice");
        }
        outLinkIdx_[l.src][l.srcPort] = static_cast<std::int32_t>(i);
        inLinkIdx_[l.dst][l.dstPort] = static_cast<std::int32_t>(i);
    }

    nodesAt_.assign(n, {});
    for (const NicAttach &a : nics_) {
        if (a.router < 0 || a.router >= n)
            SPIN_FATAL("NIC ", a.node, " attached to bad router ", a.router);
        if (a.port < 0 || a.port >= radix_[a.router])
            SPIN_FATAL("NIC ", a.node, " attached to bad port ", a.port);
        if (outLinkIdx_[a.router][a.port] != -1 ||
            inLinkIdx_[a.router][a.port] != -1) {
            SPIN_FATAL("NIC ", a.node, " port collides with a link at "
                       "router ", a.router, " port ", a.port);
        }
        nodesAt_[a.router].push_back(a.node);
    }

    // BFS from every source router over the router graph (hop metric);
    // also a latency-weighted Dijkstra for zero-load latency estimates.
    dist_.assign(n, std::vector<std::int16_t>(n, -1));
    latDist_.assign(n, std::vector<std::int32_t>(n, -1));
    minPorts_.assign(n, std::vector<std::vector<PortId>>(n));

    // adjacency: per router list of (port, dst, latency)
    struct Edge { PortId port; RouterId dst; Cycle lat; };
    std::vector<std::vector<Edge>> adj(n);
    for (const LinkSpec &l : links_)
        adj[l.src].push_back(Edge{l.srcPort, l.dst, l.latency});

    for (int s = 0; s < n; ++s) {
        auto &dist = dist_[s];
        dist[s] = 0;
        std::deque<int> q{s};
        while (!q.empty()) {
            const int u = q.front();
            q.pop_front();
            for (const Edge &e : adj[u]) {
                if (dist[e.dst] < 0) {
                    dist[e.dst] = static_cast<std::int16_t>(dist[u] + 1);
                    q.push_back(e.dst);
                }
            }
        }
        for (int t = 0; t < n; ++t) {
            if (strict && dist[t] < 0) {
                SPIN_FATAL("router graph not strongly connected: no path ",
                           s, " -> ", t);
            }
        }
        // minimal next-hop ports: port p of s is minimal toward t iff
        // dist(neighbor(p), t) == dist(s, t) - 1... computed below after
        // all dist rows exist.
    }

    for (int s = 0; s < n; ++s) {
        for (const Edge &e : adj[s]) {
            for (int t = 0; t < n; ++t) {
                if (t != s && dist_[e.dst][t] == dist_[s][t] - 1)
                    minPorts_[s][t].push_back(e.port);
            }
        }
        for (int t = 0; t < n; ++t)
            std::sort(minPorts_[s][t].begin(), minPorts_[s][t].end());
    }

    // Latency-weighted shortest path (Dijkstra, small graphs).
    for (int s = 0; s < n; ++s) {
        auto &ld = latDist_[s];
        using Item = std::pair<std::int32_t, int>;
        std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
        ld[s] = 0;
        pq.emplace(0, s);
        while (!pq.empty()) {
            auto [d, u] = pq.top();
            pq.pop();
            if (d > ld[u])
                continue;
            for (const Edge &e : adj[u]) {
                const std::int32_t nd = d + static_cast<std::int32_t>(e.lat);
                if (ld[e.dst] < 0 || nd < ld[e.dst]) {
                    ld[e.dst] = nd;
                    pq.emplace(nd, e.dst);
                }
            }
        }
    }

    finalized_ = true;
}

void
Topology::checkFinalized() const
{
    SPIN_ASSERT(finalized_, "topology not finalized");
}

const LinkSpec *
Topology::outLink(RouterId r, PortId port) const
{
    checkFinalized();
    const std::int32_t i = outLinkIdx_[r][port];
    return i < 0 ? nullptr : &links_[i];
}

const LinkSpec *
Topology::inLink(RouterId r, PortId port) const
{
    checkFinalized();
    const std::int32_t i = inLinkIdx_[r][port];
    return i < 0 ? nullptr : &links_[i];
}

bool
Topology::isNicPort(RouterId r, PortId port) const
{
    checkFinalized();
    for (const NodeId n : nodesAt_[r]) {
        if (nics_[n].port == port)
            return true;
    }
    return false;
}

const std::vector<NodeId> &
Topology::nodesAt(RouterId r) const
{
    checkFinalized();
    return nodesAt_[r];
}

int
Topology::distance(RouterId from, RouterId to) const
{
    checkFinalized();
    return dist_[from][to];
}

const std::vector<PortId> &
Topology::minimalPorts(RouterId from, RouterId to) const
{
    checkFinalized();
    return minPorts_[from][to];
}

Cycle
Topology::latencyDistance(RouterId from, RouterId to) const
{
    checkFinalized();
    return static_cast<Cycle>(latDist_[from][to]);
}

} // namespace spin
