/**
 * @file
 * Dragonfly topology generator (Kim et al., ISCA 2008), the paper's
 * off-chip 1024-node configuration: p terminals per router, a routers per
 * group (fully connected locally), h global channels per router, g groups.
 */

#ifndef SPINNOC_TOPOLOGY_DRAGONFLY_HH
#define SPINNOC_TOPOLOGY_DRAGONFLY_HH

#include "topology/Topology.hh"

namespace spin
{

/**
 * Build a dragonfly.
 *
 * Global channel arrangement: group G owns a*h outgoing global channels
 * numbered k = 0 .. a*h-1 (router G*a + k/h, its (k%h)-th global port);
 * channel k of group G connects to group (k < G ? k : k + 1), i.e. the
 * consecutive arrangement. With g < a*h + 1 the trailing channels are
 * left unwired (the paper's 1024-node network uses g = 32 of the 33
 * possible groups).
 *
 * @param p terminals per router (paper: 4)
 * @param a routers per group (paper: 8, the "group size")
 * @param h global channels per router (paper: 4)
 * @param g number of groups; 0 selects the maximum a*h + 1
 * @param local_latency intra-group link latency (paper: 1)
 * @param global_latency inter-group link latency (paper: 3)
 */
Topology makeDragonfly(int p, int a, int h, int g = 0,
                       Cycle local_latency = 1, Cycle global_latency = 3);

/** The paper's 1024-node instance: p=4, a=8, h=4, g=32. */
Topology makePaperDragonfly();

} // namespace spin

#endif // SPINNOC_TOPOLOGY_DRAGONFLY_HH
