/**
 * @file
 * Generic interconnection-network topology.
 *
 * A Topology is a directed multigraph over routers plus a set of NIC
 * attachment points. Every concrete topology (mesh, torus, ring,
 * dragonfly, irregular graphs) is expressed as a plain Topology instance
 * with optional metadata blocks that structure-aware routing algorithms
 * (XY, west-first, UGAL) can consult. SPIN itself never reads the
 * metadata: it is topology agnostic, which is the point of the paper.
 */

#ifndef SPINNOC_TOPOLOGY_TOPOLOGY_HH
#define SPINNOC_TOPOLOGY_TOPOLOGY_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/Types.hh"

namespace spin
{

/** One directed channel: (src router, src out-port) -> (dst, in-port). */
struct LinkSpec
{
    RouterId src = kInvalidId;
    PortId srcPort = kInvalidId;
    RouterId dst = kInvalidId;
    PortId dstPort = kInvalidId;
    /** Link traversal latency in cycles (>= 1). */
    Cycle latency = 1;
    /** True for dragonfly inter-group channels (UGAL cares). */
    bool global = false;
};

/** NIC attachment: node <-> (router, local port). */
struct NicAttach
{
    NodeId node = kInvalidId;
    RouterId router = kInvalidId;
    /** Local port used both for injection (in) and ejection (out). */
    PortId port = kInvalidId;
};

/** Mesh/torus structural metadata. */
struct MeshInfo
{
    int sizeX = 0;
    int sizeY = 0;
    bool wrap = false; //!< torus when true

    /** Canonical mesh port directions. */
    static constexpr PortId kEast = 0;
    static constexpr PortId kWest = 1;
    static constexpr PortId kNorth = 2;
    static constexpr PortId kSouth = 3;
    static constexpr PortId kLocal = 4;

    int xOf(RouterId r) const { return r % sizeX; }
    int yOf(RouterId r) const { return r / sizeX; }
    RouterId routerAt(int x, int y) const { return y * sizeX + x; }
};

/** Dragonfly structural metadata (Kim et al. canonical arrangement). */
struct DragonflyInfo
{
    int p = 0; //!< terminals per router
    int a = 0; //!< routers per group
    int h = 0; //!< global channels per router
    int g = 0; //!< number of groups (<= a*h + 1)

    int groupOf(RouterId r) const { return r / a; }
    int indexInGroup(RouterId r) const { return r % a; }
    RouterId routerOf(int group, int idx) const { return group * a + idx; }

    /** Local ports to the other a-1 routers in the group: [0, a-1). */
    PortId localPortBase() const { return 0; }
    /** Global ports: [a-1, a-1+h). */
    PortId globalPortBase() const { return a - 1; }
    /** Terminal (NIC) ports: [a-1+h, a-1+h+p). */
    PortId terminalPortBase() const { return a - 1 + h; }
};

/** Ring structural metadata. */
struct RingInfo
{
    int n = 0;
    static constexpr PortId kCw = 0;  //!< +1 direction
    static constexpr PortId kCcw = 1; //!< -1 direction
    static constexpr PortId kLocal = 2;
};

/**
 * Immutable topology description plus derived routing tables.
 * Build one with the generator functions (makeMesh, makeDragonfly, ...)
 * or assemble a custom instance and call finalize().
 */
class Topology
{
  public:
    Topology() = default;

    /// @name Assembly (before finalize)
    /// @{
    /** Create @p n routers, each with @p ports ports, all unconnected. */
    void setRouters(int n, int ports);
    /** Per-router port count override (irregular radix). */
    void setRouters(const std::vector<int> &ports_per_router);
    /** Add one directed link. Ports must be unused in that direction. */
    void addLink(const LinkSpec &l);
    /** Add a bidirectional link using the same port pair on both ends. */
    void addBiLink(RouterId a, PortId pa, RouterId b, PortId pb,
                   Cycle latency = 1, bool global = false);
    /** Attach NIC @p node at (router, port). */
    void attachNic(NodeId node, RouterId router, PortId port);
    /**
     * Validate the assembled graph and derive routing tables
     * (hop distances, minimal next-hop port sets).
     * @throws FatalError if the router graph is not strongly connected.
     */
    void finalize();
    /**
     * finalize() minus the strong-connectivity requirement, for
     * degraded (fault-injected) topologies: unreachable pairs get
     * distance() == -1 and empty minimalPorts(). partial() reports
     * which variant built the tables.
     */
    void finalizePartial();
    /// @}

    /// @name Structure queries (after finalize)
    /// @{
    int numRouters() const { return static_cast<int>(radix_.size()); }
    /** True when built by finalizePartial() (may be disconnected). */
    bool partial() const { return partial_; }
    int numNodes() const { return static_cast<int>(nics_.size()); }
    int radix(RouterId r) const { return radix_[r]; }
    const std::vector<LinkSpec> &links() const { return links_; }
    const std::vector<NicAttach> &nics() const { return nics_; }

    /** Link leaving (r, port), or nullptr when the out-port is unwired. */
    const LinkSpec *outLink(RouterId r, PortId port) const;
    /** Link entering (r, port), or nullptr when the in-port is unwired. */
    const LinkSpec *inLink(RouterId r, PortId port) const;
    /** True when @p port of @p r is a NIC (local) port. */
    bool isNicPort(RouterId r, PortId port) const;

    RouterId routerOfNode(NodeId n) const { return nics_[n].router; }
    PortId portOfNode(NodeId n) const { return nics_[n].port; }
    /** Nodes attached to router @p r. */
    const std::vector<NodeId> &nodesAt(RouterId r) const;
    /// @}

    /// @name Routing tables (after finalize)
    /// @{
    /** Minimal hop count between routers (router graph, unweighted). */
    int distance(RouterId from, RouterId to) const;
    /** Out-ports of @p from on some minimal path to @p to (non-empty
     *  unless from == to). */
    const std::vector<PortId> &minimalPorts(RouterId from,
                                            RouterId to) const;
    /** Minimal latency (sum of link latencies) between routers. */
    Cycle latencyDistance(RouterId from, RouterId to) const;
    /// @}

    /// @name Metadata
    /// @{
    std::optional<MeshInfo> mesh;
    std::optional<DragonflyInfo> dragonfly;
    std::optional<RingInfo> ring;
    std::string name = "custom";
    /// @}

  private:
    std::vector<int> radix_;
    std::vector<LinkSpec> links_;
    std::vector<NicAttach> nics_;

    // (router, port) -> index into links_ or -1, flattened.
    std::vector<std::vector<std::int32_t>> outLinkIdx_;
    std::vector<std::vector<std::int32_t>> inLinkIdx_;
    std::vector<std::vector<NodeId>> nodesAt_;

    // dist_[from][to], minPorts_[from][to].
    std::vector<std::vector<std::int16_t>> dist_;
    std::vector<std::vector<std::int32_t>> latDist_;
    std::vector<std::vector<std::vector<PortId>>> minPorts_;

    bool finalized_ = false;
    bool partial_ = false;

    void finalizeImpl(bool strict);
    void checkFinalized() const;
};

} // namespace spin

#endif // SPINNOC_TOPOLOGY_TOPOLOGY_HH
