/**
 * @file
 * 2-D torus topology generator (wrap-around mesh).
 */

#ifndef SPINNOC_TOPOLOGY_TORUS_HH
#define SPINNOC_TOPOLOGY_TORUS_HH

#include "topology/Topology.hh"

namespace spin
{

/**
 * Build an X x Y torus with one NIC per router. Same port layout as the
 * mesh; the wrap links make every dimension a ring, so minimal routing
 * alone carries cyclic channel dependencies -- a classic SPIN use case.
 */
Topology makeTorus(int size_x, int size_y, Cycle link_latency = 1);

} // namespace spin

#endif // SPINNOC_TOPOLOGY_TORUS_HH
