/**
 * @file
 * Topology serialization: a small line-oriented text format so custom
 * fabrics (from NoC generators, fault maps, datacenter planners) can be
 * loaded without recompiling -- one of the paper's motivating SPIN use
 * cases is exactly such externally-generated irregular topologies.
 *
 * Format (comments with '#', whitespace-separated):
 *
 *   routers <N> <ports>          # or: routers <N> list p0 p1 ... pN-1
 *   link <src> <sport> <dst> <dport> <latency> [global]
 *   bilink <a> <pa> <b> <pb> <latency> [global]
 *   nic <node> <router> <port>
 *
 * NICs must appear in node-id order (matching Topology::attachNic).
 */

#ifndef SPINNOC_TOPOLOGY_TOPOLOGYIO_HH
#define SPINNOC_TOPOLOGY_TOPOLOGYIO_HH

#include <iosfwd>
#include <string>

#include "topology/Topology.hh"

namespace spin
{

/** Parse a topology from a stream. @throws FatalError on bad input. */
Topology readTopology(std::istream &in);

/** Parse a topology from a file. @throws FatalError on bad input. */
Topology readTopologyFile(const std::string &path);

/** Serialize @p topo (finalized) in the format above. */
void writeTopology(const Topology &topo, std::ostream &out);

/** Serialize to a file. @throws FatalError when unwritable. */
void writeTopologyFile(const Topology &topo, const std::string &path);

} // namespace spin

#endif // SPINNOC_TOPOLOGY_TOPOLOGYIO_HH
