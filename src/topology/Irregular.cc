#include "topology/Irregular.hh"

#include <algorithm>
#include <deque>
#include <set>
#include <utility>

#include "common/Logging.hh"

namespace spin
{

namespace
{

/** Undirected edge with canonical ordering. */
using Edge = std::pair<RouterId, RouterId>;

Edge
canon(RouterId a, RouterId b)
{
    return a < b ? Edge{a, b} : Edge{b, a};
}

/** Connectivity check over an undirected edge list. */
bool
connected(int n, const std::vector<Edge> &edges)
{
    std::vector<std::vector<int>> adj(n);
    for (const auto &[a, b] : edges) {
        adj[a].push_back(b);
        adj[b].push_back(a);
    }
    std::vector<char> seen(n, 0);
    std::deque<int> q{0};
    seen[0] = 1;
    int count = 1;
    while (!q.empty()) {
        const int u = q.front();
        q.pop_front();
        for (const int v : adj[u]) {
            if (!seen[v]) {
                seen[v] = 1;
                ++count;
                q.push_back(v);
            }
        }
    }
    return count == n;
}

/** All undirected mesh edges of an X x Y grid. */
std::vector<Edge>
meshEdges(int size_x, int size_y)
{
    std::vector<Edge> edges;
    for (int y = 0; y < size_y; ++y) {
        for (int x = 0; x < size_x; ++x) {
            const RouterId r = y * size_x + x;
            if (x + 1 < size_x)
                edges.push_back(canon(r, r + 1));
            if (y + 1 < size_y)
                edges.push_back(canon(r, r + size_x));
        }
    }
    return edges;
}

Topology
buildMeshWithEdges(int size_x, int size_y, const std::vector<Edge> &edges,
                   Cycle link_latency, const std::string &name)
{
    Topology t;
    t.name = name;
    // No mesh metadata on purpose: structure-aware routing must not run.
    t.setRouters(size_x * size_y, 5);
    for (const auto &[a, b] : edges) {
        if (b == a + 1) { // east-west
            t.addBiLink(a, MeshInfo::kEast, b, MeshInfo::kWest,
                        link_latency);
        } else {          // north-south (b == a + size_x)
            t.addBiLink(a, MeshInfo::kNorth, b, MeshInfo::kSouth,
                        link_latency);
        }
    }
    for (RouterId r = 0; r < size_x * size_y; ++r)
        t.attachNic(r, r, MeshInfo::kLocal);
    t.finalize();
    return t;
}

} // namespace

Topology
makeFaultyMesh(int size_x, int size_y,
               const std::vector<std::pair<RouterId, RouterId>> &dead_links,
               Cycle link_latency)
{
    if (size_x < 2 || size_y < 2)
        SPIN_FATAL("faulty mesh needs size_x, size_y >= 2");

    std::vector<Edge> edges = meshEdges(size_x, size_y);
    for (const auto &[a, b] : dead_links) {
        const Edge e = canon(a, b);
        const bool adjacent =
            (e.second == e.first + 1 && e.first % size_x != size_x - 1) ||
            e.second == e.first + size_x;
        if (!adjacent)
            SPIN_FATAL("routers ", a, " and ", b, " are not mesh neighbors");
        auto it = std::find(edges.begin(), edges.end(), e);
        if (it == edges.end())
            SPIN_FATAL("link ", a, "-", b, " removed twice");
        edges.erase(it);
    }
    if (!connected(size_x * size_y, edges))
        SPIN_FATAL("fault set disconnects the mesh");

    return buildMeshWithEdges(size_x, size_y, edges, link_latency,
                              std::to_string(size_x) + "x"
                              + std::to_string(size_y) + "-faulty-mesh");
}

Topology
makeRandomFaultyMesh(int size_x, int size_y, int n_faults, Random &rng,
                     Cycle link_latency)
{
    if (size_x < 2 || size_y < 2)
        SPIN_FATAL("faulty mesh needs size_x, size_y >= 2");

    std::vector<Edge> edges = meshEdges(size_x, size_y);
    if (n_faults < 0 || n_faults >= static_cast<int>(edges.size()))
        SPIN_FATAL("cannot remove ", n_faults, " of ", edges.size(),
                   " links");

    const int n = size_x * size_y;
    int removed = 0;
    int attempts = 0;
    while (removed < n_faults) {
        if (++attempts > 10000)
            SPIN_FATAL("could not find a connected fault set");
        const std::size_t i = rng.below(edges.size());
        std::vector<Edge> trial = edges;
        trial.erase(trial.begin() + static_cast<std::ptrdiff_t>(i));
        if (connected(n, trial)) {
            edges = std::move(trial);
            ++removed;
        }
    }

    return buildMeshWithEdges(size_x, size_y, edges, link_latency,
                              std::to_string(size_x) + "x"
                              + std::to_string(size_y) + "-rand-faulty-mesh");
}

Topology
makeRandomRegular(int n, int degree, Random &rng, Cycle link_latency)
{
    if (n < 3 || degree < 2)
        SPIN_FATAL("random regular graph needs n >= 3, degree >= 2");
    if (n * degree % 2 != 0)
        SPIN_FATAL("n * degree must be even");
    if (degree >= n)
        SPIN_FATAL("degree must be < n for a simple graph");

    // Pairing model: stubs = n*degree half-edges; shuffle and pair;
    // retry until simple (no self loops / multi-edges) and connected.
    std::vector<Edge> edges;
    for (int attempt = 0; attempt < 2000; ++attempt) {
        std::vector<RouterId> stubs;
        stubs.reserve(static_cast<std::size_t>(n) * degree);
        for (RouterId r = 0; r < n; ++r) {
            for (int d = 0; d < degree; ++d)
                stubs.push_back(r);
        }
        // Fisher-Yates shuffle.
        for (std::size_t i = stubs.size(); i > 1; --i)
            std::swap(stubs[i - 1], stubs[rng.below(i)]);

        std::set<Edge> used;
        bool ok = true;
        for (std::size_t i = 0; i + 1 < stubs.size() && ok; i += 2) {
            const RouterId a = stubs[i];
            const RouterId b = stubs[i + 1];
            if (a == b || used.count(canon(a, b)))
                ok = false;
            else
                used.insert(canon(a, b));
        }
        if (!ok)
            continue;
        std::vector<Edge> trial(used.begin(), used.end());
        if (!connected(n, trial)) {
            continue;
        }
        edges = std::move(trial);
        break;
    }
    if (edges.empty())
        SPIN_FATAL("failed to build a connected random regular graph");

    Topology t;
    t.name = "rrg-n" + std::to_string(n) + "d" + std::to_string(degree);
    t.setRouters(n, degree + 1); // +1 local port

    // Assign ports in order of appearance per router.
    std::vector<PortId> next_port(n, 0);
    for (const auto &[a, b] : edges) {
        const PortId pa = next_port[a]++;
        const PortId pb = next_port[b]++;
        t.addBiLink(a, pa, b, pb, link_latency);
    }
    for (RouterId r = 0; r < n; ++r)
        t.attachNic(r, r, degree);
    t.finalize();
    return t;
}

} // namespace spin
