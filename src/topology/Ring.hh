/**
 * @file
 * Unidirectional-capable ring topology generator. The smallest topology
 * exhibiting routing deadlock; used heavily by the SPIN unit tests and by
 * the walkthrough example (Fig. 2 / Fig. 4 of the paper).
 */

#ifndef SPINNOC_TOPOLOGY_RING_HH
#define SPINNOC_TOPOLOGY_RING_HH

#include "topology/Topology.hh"

namespace spin
{

/**
 * Build an N-router bidirectional ring with one NIC per router.
 * Ports: 0 = clockwise (+1), 1 = counter-clockwise (-1), 2 = local.
 */
Topology makeRing(int n, Cycle link_latency = 1);

} // namespace spin

#endif // SPINNOC_TOPOLOGY_RING_HH
