/**
 * @file
 * SPIN counter-FSM state definitions (paper Fig. 4a).
 *
 * The paper draws one seven-state FSM per router. A router can, however,
 * simultaneously play two roles (paper Sec. IV-C2, Case II of shared
 * loops: router B is frozen by H's move *and* times out its own move):
 * it can be the *initiator* of its own recovery, and the *victim*
 * (frozen member) of someone else's. This implementation therefore
 * splits the FSM into an initiator context and a victim context; the
 * paper's seven states are the observable union (see paperState()).
 *
 *   paper state            initiator ctx        victim ctx
 *   ---------------------  -------------------  -----------
 *   S_OFF                  Off                  inactive
 *   S_DD                   DetectDeadlock       inactive
 *   S_Move                 MoveWait             --
 *   S_Frozen               (any)                active (not own spin)
 *   S_Forward_Progress     FwdProgress          active, own source
 *   S_Probe_Move           ProbeMoveWait        --
 *   S_kill_move            KillMoveWait         --
 */

#ifndef SPINNOC_CORE_SPINFSM_HH
#define SPINNOC_CORE_SPINFSM_HH

#include <string>

#include "common/Types.hh"

namespace spin
{

/** Initiator-side FSM states. */
enum class InitState : std::uint8_t
{
    Off,            //!< no traffic to watch
    DetectDeadlock, //!< counting toward t_DD on the pointed VC
    MoveWait,       //!< probe returned; waiting for the move to return
    FwdProgress,    //!< move returned; waiting for the spin cycle
    ProbeMoveWait,  //!< spun; probe_move re-check in flight
    KillMoveWait,   //!< cancelling; kill_move in flight
};

/** The paper's seven observable FSM states. */
enum class SpinState : std::uint8_t
{
    Off,
    DetectDeadlock,
    Move,
    Frozen,
    ForwardProgress,
    ProbeMove,
    KillMove,
};

std::string toString(InitState s);
std::string toString(SpinState s);

/**
 * Victim context: this router has frozen VC(s) on behalf of a recovery
 * whose initiator is @c source (possibly itself).
 */
struct VictimCtx
{
    bool active = false;
    RouterId source = kInvalidId;
    Cycle spinCycle = kNeverCycle;
};

} // namespace spin

#endif // SPINNOC_CORE_SPINFSM_HH
