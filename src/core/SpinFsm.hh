/**
 * @file
 * SPIN counter-FSM state definitions (paper Fig. 4a).
 *
 * The paper draws one seven-state FSM per router. A router can, however,
 * simultaneously play two roles (paper Sec. IV-C2, Case II of shared
 * loops: router B is frozen by H's move *and* times out its own move):
 * it can be the *initiator* of its own recovery, and the *victim*
 * (frozen member) of someone else's. This implementation therefore
 * splits the FSM into an initiator context and a victim context; the
 * paper's seven states are the observable union (see paperState()).
 *
 *   paper state            initiator ctx        victim ctx
 *   ---------------------  -------------------  -----------
 *   S_OFF                  Off                  inactive
 *   S_DD                   DetectDeadlock       inactive
 *   S_Move                 MoveWait             --
 *   S_Frozen               (any)                active (not own spin)
 *   S_Forward_Progress     FwdProgress          active, own source
 *   S_Probe_Move           ProbeMoveWait        --
 *   S_kill_move            KillMoveWait         --
 */

#ifndef SPINNOC_CORE_SPINFSM_HH
#define SPINNOC_CORE_SPINFSM_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/Types.hh"

namespace spin
{

/** Initiator-side FSM states. */
enum class InitState : std::uint8_t
{
    Off,            //!< no traffic to watch
    DetectDeadlock, //!< counting toward t_DD on the pointed VC
    MoveWait,       //!< probe returned; waiting for the move to return
    FwdProgress,    //!< move returned; waiting for the spin cycle
    ProbeMoveWait,  //!< spun; probe_move re-check in flight
    KillMoveWait,   //!< cancelling; kill_move in flight
};

/** The paper's seven observable FSM states. */
enum class SpinState : std::uint8_t
{
    Off,
    DetectDeadlock,
    Move,
    Frozen,
    ForwardProgress,
    ProbeMove,
    KillMove,
};

std::string toString(InitState s);
std::string toString(SpinState s);

/**
 * Victim context: this router has frozen VC(s) on behalf of a recovery
 * whose initiator is @c source (possibly itself).
 */
struct VictimCtx
{
    bool active = false;
    RouterId source = kInvalidId;
    Cycle spinCycle = kNeverCycle;
};

/**
 * Complete save/restore image of one SpinUnit's recovery state: both
 * FSM contexts, the detection pointer, the latched loop and the frozen
 * entries. Absolute cycles (deadline, committed spin cycle) are stored
 * *relative to the capture cycle* so snapshots of behaviorally
 * identical states taken at different times compare equal -- the
 * property the model checker's visited-state dedup relies on.
 */
struct FsmSnapshot
{
    /** Relative-time sentinel mirroring kNeverCycle. */
    static constexpr std::int64_t kNever =
        std::numeric_limits<std::int64_t>::max();

    InitState state = InitState::Off;
    /** deadline - now; kNever when no timer is armed. */
    std::int64_t deadlineIn = kNever;
    PortId ptrInport = kInvalidId;
    VcId ptrVc = kInvalidId;

    bool victimActive = false;
    RouterId victimSource = kInvalidId;
    /** victim spinCycle - now; kNever when inactive. */
    std::int64_t spinIn = kNever;

    bool loopValid = false;
    std::vector<PortId> loopPath;
    Cycle loopLatency = 0;
    VnetId loopVnet = 0;
    std::uint64_t probeAttempt = 0;

    /** Frozen-VC bookkeeping (mirrors SpinUnit::FrozenEntry). */
    struct Frozen
    {
        PortId inport = kInvalidId;
        VcId vc = kInvalidId;
        PortId outport = kInvalidId;

        bool
        operator==(const Frozen &o) const
        {
            return inport == o.inport && vc == o.vc &&
                   outport == o.outport;
        }
    };
    std::vector<Frozen> frozen;

    bool operator==(const FsmSnapshot &o) const;
    bool operator!=(const FsmSnapshot &o) const { return !(*this == o); }

    /** The paper's seven-state view of this snapshot (the same mapping
     *  as SpinUnit::paperState(), self-id supplied by the caller). */
    SpinState paperState(RouterId self) const;
};

/**
 * Initiator-context transition relation (paper Fig. 4a projected onto
 * the initiator FSM; see the table in the file comment). The model
 * checker validates every per-cycle state change against this set;
 * self-loops are always allowed.
 */
bool initTransitionAllowed(InitState from, InitState to);

/**
 * Seven-state (paper-view) transition relation. S_Frozen masks the
 * initiator context, so any transition entering or leaving S_Frozen is
 * allowed here; the victim-context rules are checked separately.
 */
bool paperTransitionAllowed(SpinState from, SpinState to);

/**
 * Deliberate protocol mutations for the model checker's
 * catch-the-injected-bug validation (spin_model --mutate). `None` in
 * every real configuration; the others each break one handshake step
 * the checker must flag with a replayable counterexample.
 */
enum class ProtocolMutation : std::uint8_t
{
    None,
    /** sendKill() transitions but never launches the kill_move SM. */
    SkipKillMove,
    /** The rotation-safety fixpoint cancels entries without unfreezing
     *  them (and drops the cancellation notification). */
    SkipCancelUnfreeze,
};

std::string toString(ProtocolMutation m);

} // namespace spin

#endif // SPINNOC_CORE_SPINFSM_HH
