#include "core/SpinManager.hh"

#include <algorithm>
#include <unordered_map>

#include "common/Logging.hh"
#include "fault/FaultInjector.hh"
#include "network/Network.hh"
#include "obs/Tracer.hh"
#include "router/Router.hh"

namespace spin
{

namespace
{

/** Static-lifetime SM-type label for trace events. */
const char *
smName(SmType t)
{
    switch (t) {
      case SmType::Probe:     return "probe";
      case SmType::Move:      return "move";
      case SmType::ProbeMove: return "probe_move";
      case SmType::KillMove:  return "kill_move";
    }
    return "?";
}

/**
 * Upper bound on the length of an elementary cycle in the VC wait-for
 * graph: every hop of a loop occupies a distinct transit (non-local)
 * input VC, so the total transit-VC count bounds any loop. Folded loops
 * routinely exceed the 2N one might guess from router count.
 */
int
transitVcCount(const Network &net)
{
    const Topology &topo = net.topo();
    int vcs = 0;
    for (RouterId r = 0; r < topo.numRouters(); ++r) {
        const int nic_ports = static_cast<int>(topo.nodesAt(r).size());
        vcs += (topo.radix(r) - nic_ports) * net.config().totalVcs();
    }
    return vcs;
}

} // namespace

SpinManager::SpinManager(Network &net)
    : net_(net),
      prio_(net.numRouters(),
            net.config().epochMultiplier * net.config().tDd),
      tDd_(net.config().tDd),
      maxProbeHops_(net.config().maxProbeHops > 0
                    ? net.config().maxProbeHops
                    : std::min(transitVcCount(net),
                               4 * net.numRouters()))
{
    units_.reserve(net.numRouters());
    for (RouterId r = 0; r < net.numRouters(); ++r) {
        Router &router = net.router(r);
        auto unit = std::make_unique<SpinUnit>(*this, router);
        units_.push_back(unit.get());
        router.setSpinUnit(std::move(unit));
    }
    smLines_.resize(net.numLinks());
}

void
SpinManager::scheduleSend(Cycle when, SmSend send)
{
    scheduled_.emplace_back(when, std::move(send));
}

void
SpinManager::smPhase(Cycle now)
{
    if (smsInFlight_ == 0 && scheduled_.empty())
        return; // no SM anywhere: nothing below can fire

    // 1. Collect arrivals across all links.
    struct Arrival
    {
        RouterId router;
        PortId inport;
        SpecialMsg sm;
    };
    std::vector<Arrival> arrivals;
    if (smsInFlight_ != 0) {
        for (int li = 0; li < static_cast<int>(smLines_.size()); ++li) {
            if (smLines_[li].empty())
                continue;
            const LinkSpec &spec = net_.link(li).spec();
            for (SpecialMsg &sm : smLines_[li].drain(now)) {
                --smsInFlight_;
                // SMs in flight toward a router that died mid-wire are
                // lost with it (the dead unit must not process them).
                if (net_.faults() && net_.faults()->routerDead(spec.dst))
                    continue;
                arrivals.push_back(Arrival{spec.dst, spec.dstPort,
                                           std::move(sm)});
            }
        }
    }

    std::vector<SmSend> sends;

    if (!arrivals.empty()) {
        // Per-router processing order: SM class priority, then sender
        // dynamic priority (paper Sec. IV-C1).
        std::stable_sort(arrivals.begin(), arrivals.end(),
            [&](const Arrival &a, const Arrival &b) {
                if (a.router != b.router)
                    return a.router < b.router;
                const int ca = classPriority(a.sm.type);
                const int cb = classPriority(b.sm.type);
                if (ca != cb)
                    return ca > cb;
                return priorityOf(a.sm.sender, now) >
                       priorityOf(b.sm.sender, now);
            });
        for (Arrival &a : arrivals)
            units_[a.router]->processSm(a.sm, a.inport, sends);
    }

    // 2. FSM-scheduled emissions that are due.
    for (std::size_t i = 0; i < scheduled_.size();) {
        if (scheduled_[i].first <= now) {
            sends.push_back(std::move(scheduled_[i].second));
            scheduled_[i] = std::move(scheduled_.back());
            scheduled_.pop_back();
        } else {
            ++i;
        }
    }

    if (!sends.empty())
        launch(sends, now);
}

void
SpinManager::launch(std::vector<SmSend> &sends, Cycle now)
{
    // Model-checker interception point: each SM about to contend may be
    // delayed a cycle or dropped, exploring schedules (launch-order
    // races, FAvORS upsets, lossy wires) the deterministic rules below
    // would never produce on their own.
    if (smHook_) {
        std::size_t w = 0;
        for (std::size_t r = 0; r < sends.size(); ++r) {
            switch (smHook_(sends[r], now)) {
              case SmAction::Deliver:
                if (w != r)
                    sends[w] = std::move(sends[r]);
                ++w;
                break;
              case SmAction::Delay:
                scheduled_.emplace_back(now + 1, std::move(sends[r]));
                break;
              case SmAction::Drop:
                ++net_.stats().smContentionDrops;
                break;
            }
        }
        sends.resize(w);
        if (sends.empty())
            return;
    }

    // Group by physical link; one winner per link per cycle, everything
    // else is dropped (bufferless traversal).
    std::sort(sends.begin(), sends.end(),
        [&](const SmSend &a, const SmSend &b) {
            if (a.from != b.from)
                return a.from < b.from;
            if (a.outport != b.outport)
                return a.outport < b.outport;
            const int ca = classPriority(a.sm.type);
            const int cb = classPriority(b.sm.type);
            if (ca != cb)
                return ca > cb;
            const int pa = priorityOf(a.sm.sender, now);
            const int pb = priorityOf(b.sm.sender, now);
            if (pa != pb)
                return pa > pb;
            return a.sm.sender < b.sm.sender;
        });

    Stats &st = net_.stats();
    obs::Tracer *tr = net_.trace();
    std::size_t i = 0;
    while (i < sends.size()) {
        std::size_t j = i + 1;
        while (j < sends.size() && sends[j].from == sends[i].from &&
               sends[j].outport == sends[i].outport) {
            ++j;
        }
        if (tr) {
            for (std::size_t k = i + 1; k < j; ++k)
                tr->spin(now, "sm_contention_drop", sends[k].from,
                         smName(sends[k].sm.type), sends[k].sm.sender);
        }
        // sends[i] is the winner of this link's contention group.
        SmSend &win = sends[i];
        const int li = net_.linkIndexOf(win.from, win.outport);
        if (li >= 0 && net_.faults() && net_.faults()->linkFailed(li)) {
            // The wire is gone: the whole group is lost. The sender's
            // FSM recovers through its normal timeout path.
            st.smContentionDrops += j - i;
            if (tr)
                tr->spin(now, "sm_fault_drop", win.from,
                         smName(win.sm.type), win.sm.sender);
            i = j;
            continue;
        }
        if (li >= 0) {
            Link &link = net_.link(li);
            link.occupySm(now, win.sm.type == SmType::Probe
                          ? LinkUse::Probe : LinkUse::Move);
            smLines_[li].push(now + link.latency(), std::move(win.sm));
            ++smsInFlight_;
            st.smContentionDrops += j - i - 1;
        } else {
            // Should not happen: requests only ever target wired ports.
            SPIN_WARN("SM launched at unwired port ", win.outport,
                      " of router ", win.from, "; dropped");
            st.smContentionDrops += j - i;
        }
        i = j;
    }
}

void
SpinManager::spinPhase(Cycle now)
{
    // Gather every frozen entry whose committed spin cycle is now.
    struct Entry
    {
        RouterId r;
        SpinUnit::FrozenEntry fe;
        RouterId source;
        RouterId downRouter = kInvalidId;
        PortId downInport = kInvalidId;
        int targetIdx = -1;        // frozen entry we rotate into
        VcId fallbackVc = kInvalidId;
        bool valid = true;
    };
    std::vector<Entry> entries;
    std::vector<RouterId> involved;
    for (SpinUnit *u : units_) {
        const VictimCtx &v = u->victim();
        if (!v.active || v.spinCycle != now)
            continue;
        involved.push_back(u->router().id());
        for (const auto &fe : u->frozenEntries())
            entries.push_back(Entry{u->router().id(), fe, v.source,
                                    kInvalidId, kInvalidId, -1,
                                    kInvalidId, true});
    }
    if (entries.empty())
        return;

    const Topology &topo = net_.topo();
    const NetworkConfig &cfg = net_.config();

    // Index frozen entries by (router, inport) for target lookup. With
    // multiple VCs one loop can pass through two VCs of the same
    // in-port, so each slot holds a list.
    auto key = [](RouterId r, PortId p) {
        return (static_cast<std::uint64_t>(r) << 16) |
               static_cast<std::uint64_t>(p);
    };
    std::unordered_map<std::uint64_t, std::vector<int>> atInport;
    for (int i = 0; i < static_cast<int>(entries.size()); ++i)
        atInport[key(entries[i].r, entries[i].fe.inport)].push_back(i);

    // Resolve each entry's rotation target. Every frozen entry vacates
    // exactly once and is filled at most once, so targets are claimed
    // exclusively; likewise idle fallback VCs.
    std::vector<char> claimedEntry(entries.size(), 0);
    std::unordered_map<std::uint64_t, std::vector<VcId>> claimedIdle;
    for (Entry &e : entries) {
        const LinkSpec *l = topo.outLink(e.r, e.fe.outport);
        SPIN_ASSERT(l, "frozen toward an unwired port");
        e.downRouter = l->dst;
        e.downInport = l->dstPort;
        const auto it = atInport.find(key(e.downRouter, e.downInport));
        if (it != atInport.end()) {
            for (const int t : it->second) {
                if (entries[t].source == e.source && !claimedEntry[t]) {
                    e.targetIdx = t;
                    claimedEntry[t] = 1;
                    break;
                }
            }
            if (e.targetIdx >= 0)
                continue;
        }
        // No loop member vacates downstream; fall back to an idle VC
        // there if one exists (defensive path, see DESIGN.md).
        const Packet &pkt =
            *net_.router(e.r).input(e.fe.inport).vc(e.fe.vc).owner();
        const OutputUnit &out = net_.router(e.r).output(e.fe.outport);
        const VcId base = pkt.vnet * cfg.vcsPerVnet;
        const std::uint64_t dkey = key(e.downRouter, e.downInport);
        auto &taken = claimedIdle[dkey];
        for (VcId v = base; v < base + cfg.vcsPerVnet; ++v) {
            if (!out.isIdle(v))
                continue;
            if (std::find(taken.begin(), taken.end(), v) != taken.end())
                continue;
            e.fallbackVc = v;
            taken.push_back(v);
            break;
        }
        if (e.fallbackVc == kInvalidId)
            e.valid = false;
    }

    // Safety fixpoint: an entry is executable only if its target VC is
    // vacated by another executable entry (or is idle).
    bool changed = true;
    while (changed) {
        changed = false;
        for (Entry &e : entries) {
            if (e.valid && e.targetIdx >= 0 &&
                !entries[e.targetIdx].valid) {
                e.valid = false;
                changed = true;
            }
        }
    }

    // Stats: one spin per recovery source that executes, plus the
    // false-positive check (could any member have advanced normally?).
    Stats &st = net_.stats();
    std::vector<RouterId> sources;
    for (const Entry &e : entries) {
        if (e.valid &&
            std::find(sources.begin(), sources.end(), e.source) ==
                sources.end()) {
            sources.push_back(e.source);
        }
    }
    for (const RouterId src : sources) {
        ++st.spins;
        bool could_advance = false;
        int members = 0;
        for (const Entry &e : entries) {
            if (e.source != src || !e.valid)
                continue;
            ++members;
            if (could_advance)
                continue;
            const Packet &pkt =
                *net_.router(e.r).input(e.fe.inport).vc(e.fe.vc).owner();
            const OutputUnit &out = net_.router(e.r).output(e.fe.outport);
            const VcId base = pkt.vnet * cfg.vcsPerVnet;
            if (out.hasIdleVcIn(base, base + cfg.vcsPerVnet - 1))
                could_advance = true;
        }
        if (could_advance)
            ++st.falsePositiveSpins;
        if (obs::Tracer *t = net_.trace())
            t->spin(now, "spin_exec", src,
                    could_advance ? "false_positive" : nullptr, members);
    }

    // Which frozen entries get refilled this cycle? An entry's own VC
    // is refilled exactly when a valid entry claimed it as its target.
    std::vector<char> refilled(entries.size(), 0);
    for (const Entry &e : entries) {
        if (e.valid && e.targetIdx >= 0)
            refilled[e.targetIdx] = 1;
    }

    // Execute.
    std::vector<int> executedAt(net_.numRouters(), 0);
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const Entry &e = entries[i];
        if (!e.valid)
            continue;
        const VcId tvc = e.targetIdx >= 0
            ? entries[e.targetIdx].fe.vc
            : e.fallbackVc;
        net_.router(e.r).forceSend(e.fe.inport, e.fe.vc, e.fe.outport,
                                   tvc, refilled[i] != 0);
        ++executedAt[e.r];
    }
    // SkipCancelUnfreeze (spin_model --mutate): "forget" to release the
    // entries the safety fixpoint cancelled and to notify their units.
    // The stale-victim audit invariant must flag the leaked freezes.
    const bool skip_cancel =
        mutation_ == ProtocolMutation::SkipCancelUnfreeze;
    for (const Entry &e : entries) {
        if (!e.valid) {
            if (!skip_cancel)
                units_[e.r]->unfreeze(e.fe.inport, e.fe.outport);
            ++st.spinsCancelled;
            if (obs::Tracer *t = net_.trace())
                t->spin(now, "spin_cancel", e.r, nullptr, e.fe.inport,
                        e.fe.vc);
        }
    }
    for (const RouterId r : involved) {
        if (executedAt[r] > 0)
            units_[r]->onSpinExecuted(now);
        else if (!skip_cancel)
            units_[r]->onSpinCancelled(now);
    }
}

void
SpinManager::fsmTick(Cycle now)
{
    for (SpinUnit *u : units_)
        u->tick(now);
}

SmSubstrate
SpinManager::snapshotSms(Cycle now) const
{
    SmSubstrate s;
    for (int li = 0; li < static_cast<int>(smLines_.size()); ++li) {
        smLines_[li].forEach([&](Cycle arrival, const SpecialMsg &sm) {
            SmSubstrate::InFlight f;
            f.link = li;
            f.arriveIn = static_cast<std::int64_t>(arrival) -
                         static_cast<std::int64_t>(now);
            f.sm = sm;
            s.inFlight.push_back(std::move(f));
        });
    }
    s.pending.reserve(scheduled_.size());
    for (const auto &[when, send] : scheduled_) {
        SmSubstrate::Pending p;
        p.dueIn = static_cast<std::int64_t>(when) -
                  static_cast<std::int64_t>(now);
        p.send = send;
        s.pending.push_back(std::move(p));
    }
    return s;
}

void
SpinManager::restoreSms(const SmSubstrate &s, Cycle now)
{
    for (DelayLine<SpecialMsg> &line : smLines_)
        line.clear();
    smsInFlight_ = 0;
    scheduled_.clear();
    for (const SmSubstrate::InFlight &f : s.inFlight) {
        SPIN_ASSERT(f.link >= 0 &&
                    f.link < static_cast<int>(smLines_.size()),
                    "SM substrate restore onto a different topology");
        smLines_[f.link].push(
            static_cast<Cycle>(f.arriveIn +
                               static_cast<std::int64_t>(now)),
            f.sm);
        ++smsInFlight_;
    }
    for (const SmSubstrate::Pending &p : s.pending) {
        scheduled_.emplace_back(
            static_cast<Cycle>(p.dueIn +
                               static_cast<std::int64_t>(now)),
            p.send);
    }
}

} // namespace spin
