#include "core/SpinFsm.hh"

namespace spin
{

std::string
toString(InitState s)
{
    switch (s) {
      case InitState::Off:            return "Off";
      case InitState::DetectDeadlock: return "DetectDeadlock";
      case InitState::MoveWait:       return "MoveWait";
      case InitState::FwdProgress:    return "FwdProgress";
      case InitState::ProbeMoveWait:  return "ProbeMoveWait";
      case InitState::KillMoveWait:   return "KillMoveWait";
    }
    return "?";
}

std::string
toString(SpinState s)
{
    switch (s) {
      case SpinState::Off:             return "S_OFF";
      case SpinState::DetectDeadlock:  return "S_DD";
      case SpinState::Move:            return "S_Move";
      case SpinState::Frozen:          return "S_Frozen";
      case SpinState::ForwardProgress: return "S_Forward_Progress";
      case SpinState::ProbeMove:       return "S_Probe_Move";
      case SpinState::KillMove:        return "S_kill_move";
    }
    return "?";
}

std::string
toString(ProtocolMutation m)
{
    switch (m) {
      case ProtocolMutation::None:               return "none";
      case ProtocolMutation::SkipKillMove:       return "skip-kill-move";
      case ProtocolMutation::SkipCancelUnfreeze:
        return "skip-cancel-unfreeze";
    }
    return "?";
}

bool
FsmSnapshot::operator==(const FsmSnapshot &o) const
{
    return state == o.state && deadlineIn == o.deadlineIn &&
           ptrInport == o.ptrInport && ptrVc == o.ptrVc &&
           victimActive == o.victimActive &&
           victimSource == o.victimSource && spinIn == o.spinIn &&
           loopValid == o.loopValid && loopPath == o.loopPath &&
           loopLatency == o.loopLatency && loopVnet == o.loopVnet &&
           probeAttempt == o.probeAttempt && frozen == o.frozen;
}

SpinState
FsmSnapshot::paperState(RouterId self) const
{
    if (victimActive && victimSource != self)
        return SpinState::Frozen;
    switch (state) {
      case InitState::Off:            return SpinState::Off;
      case InitState::DetectDeadlock: return SpinState::DetectDeadlock;
      case InitState::MoveWait:       return SpinState::Move;
      case InitState::FwdProgress:    return SpinState::ForwardProgress;
      case InitState::ProbeMoveWait:  return SpinState::ProbeMove;
      case InitState::KillMoveWait:   return SpinState::KillMove;
    }
    return SpinState::Off;
}

bool
initTransitionAllowed(InitState from, InitState to)
{
    if (from == to)
        return true;
    switch (from) {
      case InitState::Off:
        // onFlitArrival / resetDetection arm the detection counter.
        return to == InitState::DetectDeadlock;
      case InitState::DetectDeadlock:
        // Probe returned -> MoveWait; traffic drained -> Off.
        return to == InitState::MoveWait || to == InitState::Off;
      case InitState::MoveWait:
        // Move returned + freeze -> FwdProgress; timeout or vanished
        // dependency -> kill_move.
        return to == InitState::FwdProgress ||
               to == InitState::KillMoveWait;
      case InitState::FwdProgress:
        // Spin executed -> probe_move re-check; spin cancelled by the
        // safety fixpoint -> restart (or stop) detection.
        return to == InitState::ProbeMoveWait ||
               to == InitState::DetectDeadlock || to == InitState::Off;
      case InitState::ProbeMoveWait:
        // Re-check confirmed the loop -> FwdProgress again; dropped
        // (loop resolved) -> kill_move.
        return to == InitState::FwdProgress ||
               to == InitState::KillMoveWait;
      case InitState::KillMoveWait:
        // Kill returned or timed out -> restart (or stop) detection.
        return to == InitState::DetectDeadlock || to == InitState::Off;
    }
    return false;
}

bool
paperTransitionAllowed(SpinState from, SpinState to)
{
    // S_Frozen masks the initiator context; entering/leaving it is
    // governed by the victim rules, not this relation.
    if (from == to || from == SpinState::Frozen ||
        to == SpinState::Frozen) {
        return true;
    }
    const auto unmap = [](SpinState s) {
        switch (s) {
          case SpinState::Off:             return InitState::Off;
          case SpinState::DetectDeadlock:  return InitState::DetectDeadlock;
          case SpinState::Move:            return InitState::MoveWait;
          case SpinState::ForwardProgress: return InitState::FwdProgress;
          case SpinState::ProbeMove:       return InitState::ProbeMoveWait;
          case SpinState::KillMove:        return InitState::KillMoveWait;
          case SpinState::Frozen:          break;
        }
        return InitState::Off;
    };
    return initTransitionAllowed(unmap(from), unmap(to));
}

} // namespace spin
