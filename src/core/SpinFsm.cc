#include "core/SpinFsm.hh"

namespace spin
{

std::string
toString(InitState s)
{
    switch (s) {
      case InitState::Off:            return "Off";
      case InitState::DetectDeadlock: return "DetectDeadlock";
      case InitState::MoveWait:       return "MoveWait";
      case InitState::FwdProgress:    return "FwdProgress";
      case InitState::ProbeMoveWait:  return "ProbeMoveWait";
      case InitState::KillMoveWait:   return "KillMoveWait";
    }
    return "?";
}

std::string
toString(SpinState s)
{
    switch (s) {
      case SpinState::Off:             return "S_OFF";
      case SpinState::DetectDeadlock:  return "S_DD";
      case SpinState::Move:            return "S_Move";
      case SpinState::Frozen:          return "S_Frozen";
      case SpinState::ForwardProgress: return "S_Forward_Progress";
      case SpinState::ProbeMove:       return "S_Probe_Move";
      case SpinState::KillMove:        return "S_kill_move";
    }
    return "?";
}

} // namespace spin
