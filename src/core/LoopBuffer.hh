/**
 * @file
 * The Loop Buffer (paper Table II): a control-path buffer in every
 * router that latches the deadlock path a returning probe acquired.
 * Conceptually different from escape buffers: it sits on the control
 * path and adds no datapath storage.
 */

#ifndef SPINNOC_CORE_LOOPBUFFER_HH
#define SPINNOC_CORE_LOOPBUFFER_HH

#include <vector>

#include "common/Types.hh"

namespace spin
{

/** See file comment. */
class LoopBuffer
{
  public:
    /** Latch a confirmed loop path and its round-trip latency. */
    void latch(std::vector<PortId> path, Cycle loop_latency);

    /** Release the latched path. */
    void clear();

    bool valid() const { return valid_; }
    const std::vector<PortId> &path() const { return path_; }
    /** Loop length in cycles (probe round-trip time). */
    Cycle loopLatency() const { return loopLatency_; }
    /** Loop length in hops. */
    int loopHops() const { return static_cast<int>(path_.size()); }

    /**
     * Hardware sizing rule from Table II:
     * log2(router radix) bits per hop entry, N entries.
     *
     * @return buffer size in bits
     */
    static int sizeBits(int radix, int num_routers);

  private:
    std::vector<PortId> path_;
    Cycle loopLatency_ = 0;
    bool valid_ = false;
};

} // namespace spin

#endif // SPINNOC_CORE_LOOPBUFFER_HH
