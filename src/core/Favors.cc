#include "core/Favors.hh"

#include <algorithm>
#include <cstdio>

#include "common/Logging.hh"
#include "network/Network.hh"
#include "router/Router.hh"

namespace spin
{

Cycle
FavorsNonMinimal::minActive(const Router &r, const Packet &pkt,
                            const std::vector<PortId> &ports) const
{
    // Congestion estimate for the best port of the set, in cycles.
    //
    // The paper's signal is the next-hop VC active time "obtained from
    // the VC credit", relaxed by the buffer turn-around time. In this
    // substrate that raw signal resets whenever a VC changes occupant,
    // so a steadily draining bottleneck can look idle at decision time;
    // we therefore take the max of the relaxed active time and the
    // buffered-flit backlog behind the port (each buffered flit is at
    // least one cycle of drain), which measures the same pressure but
    // integrates over occupants. See DESIGN.md Sec. 1.3.
    const VcId base = vnetVcBase(pkt.vnet);
    const Cycle turnaround = net_->config().vcDepth + 2;
    Cycle best = kNeverCycle;
    for (const PortId p : ports) {
        const OutputUnit &out = r.output(p);
        Cycle t = out.minActiveTime(base, base + vcsPerVnet() - 1,
                                    net_->now());
        t = t > turnaround ? t - turnaround : 0;
        const Cycle backlog = static_cast<Cycle>(out.occupancy());
        best = std::min(best, std::max(t, backlog));
        if (best == 0)
            break;
    }
    return best;
}

void
FavorsNonMinimal::sourceRoute(Packet &pkt, RouterId src)
{
    const Topology &topo = net_->topo();
    const RouterId dst = pkt.destRouter;
    if (src == dst)
        return;

    const Router &r = net_->router(src);
    const auto &min_ports = topo.minimalPorts(src, dst);
    const Cycle t_min = minActive(r, pkt, min_ports);
    if (t_min == 0)
        return; // genuinely unloaded minimal path: route minimally

    // A single random intermediate candidate spreads detour traffic
    // uniformly and avoids routing hotspots (paper Sec. V).
    // The source router's private stream keeps the draw order fixed
    // under the sharded (multi-threaded) injection phase.
    RouterId inter = kInvalidId;
    for (int tries = 0; tries < 8; ++tries) {
        const RouterId cand =
            static_cast<RouterId>(r.rng().below(topo.numRouters()));
        if (cand != src && cand != dst) {
            inter = cand;
            break;
        }
    }
    if (inter == kInvalidId)
        return;

    const Cycle h_min = topo.distance(src, dst);
    const Cycle h_nmin = topo.distance(src, inter) +
                         topo.distance(inter, dst);
    const Cycle t_nmin = minActive(r, pkt, topo.minimalPorts(src, inter));
#ifdef SPIN_FAVORS_TRACE
    static int cnt = 0;
    if (++cnt % 500 == 0)
        std::fprintf(stderr, "FAV tmin=%llu tnm=%llu hmin=%llu hnm=%llu -> %s\n",
            (unsigned long long)t_min,(unsigned long long)t_nmin,
            (unsigned long long)h_min,(unsigned long long)h_nmin,
            (h_min + t_min > h_nmin + t_nmin) ? "DETOUR" : "minimal");
#endif
    if (h_min + t_min > h_nmin + t_nmin) {
        pkt.intermediate = inter;
        pkt.misroutes = 1;
    }
}

} // namespace spin
