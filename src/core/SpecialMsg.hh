/**
 * @file
 * SPIN special messages (SMs): probe, move, probe_move and kill_move
 * (paper Sec. IV). SMs travel buffered-network-free on the regular
 * links at higher priority than flits; on contention for a link the
 * strict class order below picks a winner and the rest are dropped --
 * every initiator FSM is robust to loss through timeouts.
 */

#ifndef SPINNOC_CORE_SPECIALMSG_HH
#define SPINNOC_CORE_SPECIALMSG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/Types.hh"

namespace spin
{

/** Special message classes. */
enum class SmType : std::uint8_t
{
    Probe,     //!< trace a suspected deadlock dependency chain
    Move,      //!< commit the loop to a spin at an embedded cycle
    ProbeMove, //!< post-spin re-check + re-freeze in one traversal
    KillMove,  //!< cancel a committed spin, unfreeze the loop
};

std::string toString(SmType t);

/**
 * Link-contention priority (paper Sec. IV-C1):
 * probe_move > move = kill_move > probe (> flits, implicitly).
 */
constexpr int
classPriority(SmType t)
{
    switch (t) {
      case SmType::ProbeMove: return 3;
      case SmType::Move:      return 2;
      case SmType::KillMove:  return 2;
      case SmType::Probe:     return 1;
    }
    return 0;
}

/**
 * One special message in flight.
 *
 * The path is the sequence of output ports around the dependency loop,
 * starting with the initiator's own output port. A probe appends the
 * forwarding port at every router it traverses; move / probe_move /
 * kill_move carry the complete latched path and consume it via pathIdx
 * (the paper strips the head entry instead -- same thing, cheaper here).
 */
struct SpecialMsg
{
    SmType type = SmType::Probe;
    /** Recovery-initiating router. */
    RouterId sender = kInvalidId;
    /** Message class of the traced chain: buffer dependencies never
     *  cross virtual networks, so the whole loop shares one vnet. */
    VnetId vnet = 0;
    /** Cycle the SM entered its first link (loop latency math). */
    Cycle sendCycle = 0;
    /** Output-port sequence around the loop. */
    std::vector<PortId> path;
    /** Next unconsumed path entry (move/probe_move/kill_move). */
    std::uint32_t pathIdx = 0;
    /** Committed global spin cycle (move/probe_move). */
    Cycle spinCycle = 0;

    std::string toString() const;
};

/** An SM about to enter a link: contends for (from, outport) this cycle. */
struct SmSend
{
    SpecialMsg sm;
    RouterId from = kInvalidId;
    PortId outport = kInvalidId;
};

} // namespace spin

#endif // SPINNOC_CORE_SPECIALMSG_HH
