/**
 * @file
 * FAvORS: Fully Adaptive One-VC Routing with Spin (paper Sec. V).
 *
 * The first truly one-VC fully adaptive deadlock-free routing
 * algorithm: no turn restrictions, no VC orderings, no escape buffers
 * -- SPIN supplies deadlock freedom. Two variants:
 *
 *  - FavorsMinimal routes on minimal paths only, choosing each hop by
 *    the paper's selection rule (random among ports with a free
 *    next-hop VC, else the least-active next-hop VC).
 *  - FavorsNonMinimal additionally decides once at the source whether
 *    to detour through a random intermediate router, using the cost
 *    comparison  Hmin + t_active_min  vs  Hnonmin + t_active_nonmin.
 *    The single misroute keeps it livelock-free (p = 1).
 */

#ifndef SPINNOC_CORE_FAVORS_HH
#define SPINNOC_CORE_FAVORS_HH

#include "routing/MinimalAdaptive.hh"

namespace spin
{

/** Minimal FAvORS (paper "FAvORS Min"). */
class FavorsMinimal : public MinimalAdaptive
{
  public:
    std::string name() const override { return "favors-min"; }
};

/** Non-minimal FAvORS (paper "FAvORS NMin"). */
class FavorsNonMinimal : public MinimalAdaptive
{
  public:
    std::string name() const override { return "favors-nmin"; }
    bool nonMinimal() const override { return true; }

    void sourceRoute(Packet &pkt, RouterId src) override;

  private:
    /**
     * min over @p ports of the next-hop VC active time (paper: obtained
     * from the VC credit; 0 when an idle VC exists).
     */
    Cycle minActive(const Router &r, const Packet &pkt,
                    const std::vector<PortId> &ports) const;
};

} // namespace spin

#endif // SPINNOC_CORE_FAVORS_HH
