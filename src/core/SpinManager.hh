/**
 * @file
 * Network-level SPIN coordinator.
 *
 * The recovery itself is fully distributed -- every decision is taken in
 * a per-router SpinUnit from locally visible state. This manager models
 * the shared physical substrate those units communicate over: bufferless
 * SM traversal on the regular links with strict-priority contention
 * drops, and the synchronized rotation that all frozen routers execute
 * in the committed spin cycle. It also implements the defensive
 * atomic-rotation fixpoint described in DESIGN.md Sec. 1.3.
 */

#ifndef SPINNOC_CORE_SPINMANAGER_HH
#define SPINNOC_CORE_SPINMANAGER_HH

#include <memory>
#include <vector>

#include "common/Types.hh"
#include "core/RotatingPriority.hh"
#include "core/SpecialMsg.hh"
#include "core/SpinUnit.hh"
#include "sim/DelayLine.hh"

namespace spin
{

class Network;

/** See file comment. */
class SpinManager
{
  public:
    explicit SpinManager(Network &net);

    Network &network() { return net_; }
    SpinUnit &unit(RouterId r) { return *units_[r]; }
    const SpinUnit &unit(RouterId r) const { return *units_[r]; }

    /// @name Per-cycle phases (called by Network::step)
    /// @{
    /** Deliver SM arrivals, process them, resolve link contention. */
    void smPhase(Cycle now);
    /** Execute committed rotations whose spin cycle is @p now. */
    void spinPhase(Cycle now);
    /** Run every unit's counter FSM. */
    void fsmTick(Cycle now);
    /// @}

    /** Schedule @p send to contend for its link at cycle @p when. */
    void scheduleSend(Cycle when, SmSend send);

    /** Special messages currently traversing links (metrics gauge). */
    int smsInFlight() const { return smsInFlight_; }

    /// @name Parameters
    /// @{
    Cycle tDd() const { return tDd_; }
    int maxProbeHops() const { return maxProbeHops_; }
    int priorityOf(RouterId r, Cycle now) const
    {
        return prio_.priorityOf(r, now);
    }
    const RotatingPriority &rotation() const { return prio_; }
    /// @}

  private:
    Network &net_;
    RotatingPriority prio_;
    Cycle tDd_;
    int maxProbeHops_;

    /** Units are owned by their routers; borrowed here for iteration. */
    std::vector<SpinUnit *> units_;
    /** Per-link SM pipelines, indexed like Network's link array. */
    std::vector<DelayLine<SpecialMsg>> smLines_;
    /** SMs currently inside smLines_; lets smPhase() skip the
     *  per-link scan in the (overwhelmingly common) no-SM cycles. */
    int smsInFlight_ = 0;
    /** FSM-scheduled future emissions. */
    std::vector<std::pair<Cycle, SmSend>> scheduled_;

    /** Resolve one cycle's link contention and launch the winners. */
    void launch(std::vector<SmSend> &sends, Cycle now);
};

} // namespace spin

#endif // SPINNOC_CORE_SPINMANAGER_HH
