/**
 * @file
 * Network-level SPIN coordinator.
 *
 * The recovery itself is fully distributed -- every decision is taken in
 * a per-router SpinUnit from locally visible state. This manager models
 * the shared physical substrate those units communicate over: bufferless
 * SM traversal on the regular links with strict-priority contention
 * drops, and the synchronized rotation that all frozen routers execute
 * in the committed spin cycle. It also implements the defensive
 * atomic-rotation fixpoint described in DESIGN.md Sec. 1.3.
 */

#ifndef SPINNOC_CORE_SPINMANAGER_HH
#define SPINNOC_CORE_SPINMANAGER_HH

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/Types.hh"
#include "core/RotatingPriority.hh"
#include "core/SpecialMsg.hh"
#include "core/SpinUnit.hh"
#include "sim/DelayLine.hh"

namespace spin
{

class Network;

/**
 * Model-checker verdict for one SM about to contend for its link. The
 * checker's interceptor (see setSmHook) perturbs SM schedules through
 * these: Delay re-queues the send for the next cycle (models wire/
 * arbitration jitter), Drop loses it outright (models contention or
 * fault loss on paths the built-in contention rule would not pick).
 */
enum class SmAction : std::uint8_t
{
    Deliver,
    Delay,
    Drop,
};

/**
 * Portable image of the SM substrate (in-flight SMs + scheduled
 * emissions), arrival/send cycles stored relative to the capture cycle
 * so images from different runs of the same behavior compare equal.
 */
struct SmSubstrate
{
    struct InFlight
    {
        int link = -1;
        std::int64_t arriveIn = 0;
        SpecialMsg sm;
    };
    struct Pending
    {
        std::int64_t dueIn = 0;
        SmSend send;
    };
    std::vector<InFlight> inFlight;
    std::vector<Pending> pending;
};

/** See file comment. */
class SpinManager
{
  public:
    explicit SpinManager(Network &net);

    Network &network() { return net_; }
    SpinUnit &unit(RouterId r) { return *units_[r]; }
    const SpinUnit &unit(RouterId r) const { return *units_[r]; }

    /// @name Per-cycle phases (called by Network::step)
    /// @{
    /** Deliver SM arrivals, process them, resolve link contention. */
    void smPhase(Cycle now);
    /** Execute committed rotations whose spin cycle is @p now. */
    void spinPhase(Cycle now);
    /** Run every unit's counter FSM. */
    void fsmTick(Cycle now);
    /// @}

    /** Schedule @p send to contend for its link at cycle @p when. */
    void scheduleSend(Cycle when, SmSend send);

    /** Special messages currently traversing links (metrics gauge). */
    int smsInFlight() const { return smsInFlight_; }

    /// @name Model-checker hooks
    /// @{
    /**
     * Interceptor consulted for every SM just before link contention;
     * its verdict (see SmAction) lets the model checker explore launch
     * orderings the deterministic simulator would never produce. Null
     * (the default) means every SM is delivered normally.
     */
    using SmHook = std::function<SmAction(const SmSend &, Cycle)>;
    void setSmHook(SmHook hook) { smHook_ = std::move(hook); }

    /** Deliberate protocol defect under test (spin_model --mutate). */
    void setMutation(ProtocolMutation m) { mutation_ = m; }
    ProtocolMutation mutation() const { return mutation_; }

    /** Capture / re-apply the SM substrate (times relative to @p now). */
    SmSubstrate snapshotSms(Cycle now) const;
    void restoreSms(const SmSubstrate &s, Cycle now);
    /** True when no SM is in flight or scheduled anywhere. */
    bool smQuiescent() const
    {
        return smsInFlight_ == 0 && scheduled_.empty();
    }
    /// @}

    /// @name Parameters
    /// @{
    Cycle tDd() const { return tDd_; }
    int maxProbeHops() const { return maxProbeHops_; }
    int priorityOf(RouterId r, Cycle now) const
    {
        return prio_.priorityOf(r, now);
    }
    const RotatingPriority &rotation() const { return prio_; }
    /// @}

  private:
    Network &net_;
    RotatingPriority prio_;
    Cycle tDd_;
    int maxProbeHops_;

    /** Units are owned by their routers; borrowed here for iteration. */
    std::vector<SpinUnit *> units_;
    /** Per-link SM pipelines, indexed like Network's link array. */
    std::vector<DelayLine<SpecialMsg>> smLines_;
    /** SMs currently inside smLines_; lets smPhase() skip the
     *  per-link scan in the (overwhelmingly common) no-SM cycles. */
    int smsInFlight_ = 0;
    /** FSM-scheduled future emissions. */
    std::vector<std::pair<Cycle, SmSend>> scheduled_;
    SmHook smHook_;
    ProtocolMutation mutation_ = ProtocolMutation::None;

    /** Resolve one cycle's link contention and launch the winners. */
    void launch(std::vector<SmSend> &sends, Cycle now);
};

} // namespace spin

#endif // SPINNOC_CORE_SPINMANAGER_HH
