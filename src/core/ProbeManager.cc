#include "core/ProbeManager.hh"

#include <algorithm>

#include "common/Logging.hh"
#include "core/SpinManager.hh"
#include "core/SpinUnit.hh"
#include "network/Network.hh"
#include "obs/Tracer.hh"
#include "router/Router.hh"

namespace spin
{

void
ProbeManager::process(const SpecialMsg &sm, PortId inport,
                      std::vector<SmSend> &sends)
{
    Router &rt = unit_.router();
    Network &net = rt.network();
    Stats &st = net.stats();
    const RouterId self = rt.id();

    const auto drop = [&](const char *reason) {
        if (obs::Tracer *t = net.trace())
            t->spin(net.now(), "probe_drop", self, reason, sm.sender,
                    static_cast<std::int64_t>(sm.path.size()));
    };

    if (sm.sender == self) {
        if (unit_.initState() != InitState::DetectDeadlock ||
            unit_.victim().active) {
            // A second loop through us while a recovery is already in
            // flight: drop; the timeout machinery covers the rest
            // (paper Sec. IV-C2, last question).
            ++st.probesDropped;
            ++st.probeDropStale;
            drop("stale");
            return;
        }
        if (inport == unit_.pointerInport()) {
            // Our probe returned on the in-port of the pointed VC:
            // the dependency chain is confirmed.
            unit_.onProbeReturned(sm, net.now());
            return;
        }
        // Figure-"8" Case II: our probe came back on a different port;
        // treat it as a transit probe and keep tracing.
    }

    // Transit. Rotating-priority filter (paper Sec. IV-C1): a router
    // whose dynamic priority exceeds the sender's drops the probe, so
    // among concurrent initiators on one loop exactly the
    // highest-priority one completes -- this is what serializes the
    // otherwise symmetric recovery race.
    SpinManager &mgr = unit_.manager();
    const Cycle now = net.now();
    if (mgr.priorityOf(self, now) > mgr.priorityOf(sm.sender, now)) {
        ++st.probesDropped;
        ++st.probeDropPriority;
        drop("priority");
        return;
    }
    // Drop when the recorded path no longer fits the loop buffer.
    if (static_cast<int>(sm.path.size()) >= mgr.maxProbeHops()) {
        ++st.probesDropped;
        ++st.probeDropHops;
        drop("hops");
        return;
    }
    // Dependencies never cross message classes: the chain lives within
    // the probed packet's vnet, so only that vnet's VCs matter here (an
    // idle VC of another vnet says nothing about this chain).
    const VcId lo = sm.vnet * net.config().vcsPerVnet;
    const VcId hi = lo + net.config().vcsPerVnet - 1;
    const InputUnit &iu = rt.input(inport);
    if (iu.fromNic() || !iu.allVcsActive(lo, hi)) {
        ++st.probesDropped;
        ++st.probeDropInactive;
        drop("inactive");
        return;
    }

    // Unique requested output ports of the blocked packets, excluding
    // ejection (packets waiting for the NIC cannot be in a cycle).
    PortId ports[8];
    int n_ports = 0;
    std::vector<PortId> overflow; // radix > 8 (e.g. dragonfly)
    for (VcId v = lo; v <= hi; ++v) {
        const PortId req = rt.depRequest(inport, v);
        if (req == kInvalidId || rt.isNicPort(req))
            continue;
        bool seen = false;
        for (int i = 0; i < n_ports && !seen; ++i)
            seen = ports[i] == req;
        for (const PortId p : overflow)
            seen = seen || p == req;
        if (seen)
            continue;
        if (n_ports < 8)
            ports[n_ports++] = req;
        else
            overflow.push_back(req);
    }
    if (n_ports == 0) {
        ++st.probesDropped;
        ++st.probeDropNoDep;
        drop("no_dep");
        return;
    }

    obs::Tracer *tr = net.trace();
    const auto fork = [&](PortId o) {
        SpecialMsg copy = sm;
        copy.path.push_back(o);
        sends.push_back(SmSend{std::move(copy), self, o});
        if (tr)
            tr->spin(net.now(), "probe_fwd", self, nullptr, sm.sender, o);
    };
    for (int i = 0; i < n_ports; ++i)
        fork(ports[i]);
    for (const PortId p : overflow)
        fork(p);
    if (n_ports + static_cast<int>(overflow.size()) > 1)
        st.probesForked += n_ports + overflow.size() - 1;
}

} // namespace spin
