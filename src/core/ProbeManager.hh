/**
 * @file
 * Probe manager (paper Table II): scans the VCs at a probe's input port
 * for the set of unique output ports their packets are waiting on and
 * forks the probe out of all of them, or drops it when the port cannot
 * be part of a deadlock (a free VC, or everyone waiting for ejection).
 */

#ifndef SPINNOC_CORE_PROBEMANAGER_HH
#define SPINNOC_CORE_PROBEMANAGER_HH

#include <vector>

#include "common/Types.hh"
#include "core/SpecialMsg.hh"

namespace spin
{

class SpinUnit;

/** See file comment. */
class ProbeManager
{
  public:
    explicit ProbeManager(SpinUnit &unit) : unit_(unit) {}

    /**
     * Process an arriving probe. Appends forked forwards to @p sends;
     * accepts the probe (loop confirmed) when it is the unit's own probe
     * returning on the pointed VC's in-port.
     */
    void process(const SpecialMsg &sm, PortId inport,
                 std::vector<SmSend> &sends);

  private:
    SpinUnit &unit_;
};

} // namespace spin

#endif // SPINNOC_CORE_PROBEMANAGER_HH
