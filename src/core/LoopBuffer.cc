#include "core/LoopBuffer.hh"

#include <bit>

#include "common/Logging.hh"

namespace spin
{

void
LoopBuffer::latch(std::vector<PortId> path, Cycle loop_latency)
{
    SPIN_ASSERT(!path.empty(), "latching empty loop path");
    SPIN_ASSERT(loop_latency > 0, "latching zero loop latency");
    path_ = std::move(path);
    loopLatency_ = loop_latency;
    valid_ = true;
}

void
LoopBuffer::clear()
{
    path_.clear();
    loopLatency_ = 0;
    valid_ = false;
}

int
LoopBuffer::sizeBits(int radix, int num_routers)
{
    SPIN_ASSERT(radix > 1 && num_routers > 0, "bad sizing query");
    const unsigned bits_per_entry =
        std::bit_width(static_cast<unsigned>(radix - 1));
    return static_cast<int>(bits_per_entry) * num_routers;
}

} // namespace spin
