#include "core/MoveManager.hh"

#include "common/Logging.hh"
#include "core/SpinManager.hh"
#include "core/SpinUnit.hh"
#include "network/Network.hh"
#include "obs/Tracer.hh"
#include "router/Router.hh"

namespace spin
{

void
MoveManager::processMove(const SpecialMsg &sm, PortId inport,
                         std::vector<SmSend> &sends)
{
    Router &rt = unit_.router();
    Network &net = rt.network();
    Stats &st = net.stats();
    const RouterId self = rt.id();
    const bool is_pm = sm.type == SmType::ProbeMove;
    auto &dropped = is_pm ? st.probeMovesDropped : st.movesDropped;

    const char *const kind = is_pm ? "probe_move_drop" : "move_drop";
    const auto drop = [&](const char *reason) {
        if (obs::Tracer *t = net.trace())
            t->spin(net.now(), kind, self, reason, sm.sender);
    };

    // Returned to its initiator after consuming the whole path?
    if (sm.sender == self && sm.pathIdx == sm.path.size()) {
        const InitState want =
            is_pm ? InitState::ProbeMoveWait : InitState::MoveWait;
        if (unit_.initState() == want) {
            unit_.onMoveReturned(sm, inport, net.now());
        } else {
            ++dropped;
            drop("stale_return");
        }
        return;
    }

    // Transit. A router committed to another recovery drops the SM
    // (source-id latch, paper Sec. IV-C2 Case II).
    const VictimCtx &victim = unit_.victim();
    if (victim.active && victim.source != sm.sender) {
        ++dropped;
        drop("other_recovery");
        return;
    }
    SPIN_ASSERT(sm.pathIdx < sm.path.size(), "move overran its path");
    const PortId outport = sm.path[sm.pathIdx];
    const VcId v = unit_.findFreezable(inport, outport, sm.vnet);
    if (v == kInvalidId) {
        // The dependency traced earlier no longer exists here: the SM
        // is dropped; the initiator will time out and send kill_move.
        ++dropped;
        drop("no_freezable");
        return;
    }

    unit_.freeze(inport, v, outport, sm.sender, sm.spinCycle);

    SpecialMsg fwd = sm;
    ++fwd.pathIdx;
    sends.push_back(SmSend{std::move(fwd), self, outport});
}

void
MoveManager::processKill(const SpecialMsg &sm, PortId inport,
                         std::vector<SmSend> &sends)
{
    Router &rt = unit_.router();
    const RouterId self = rt.id();
    Stats &st = rt.network().stats();

    if (sm.sender == self && sm.pathIdx == sm.path.size()) {
        if (unit_.initState() == InitState::KillMoveWait)
            unit_.onKillReturned(rt.network().now());
        return;
    }

    const VictimCtx &victim = unit_.victim();
    if (victim.active && victim.source != sm.sender) {
        // Frozen for someone else: the kill is not ours to honor.
        ++st.smContentionDrops;
        if (obs::Tracer *t = rt.network().trace())
            t->spin(rt.network().now(), "kill_move_drop", self,
                    "other_recovery", sm.sender);
        return;
    }
    SPIN_ASSERT(sm.pathIdx < sm.path.size(), "kill_move overran its path");
    const PortId outport = sm.path[sm.pathIdx];
    if (victim.active)
        unit_.unfreeze(inport, outport);

    SpecialMsg fwd = sm;
    ++fwd.pathIdx;
    sends.push_back(SmSend{std::move(fwd), self, outport});
}

} // namespace spin
