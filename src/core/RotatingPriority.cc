#include "core/RotatingPriority.hh"

#include "common/Logging.hh"

namespace spin
{

RotatingPriority::RotatingPriority(int num_routers, Cycle epoch_len)
    : n_(num_routers), epochLen_(epoch_len)
{
    SPIN_ASSERT(n_ > 0, "no routers");
    SPIN_ASSERT(epochLen_ > 0, "zero epoch");
}

int
RotatingPriority::priorityOf(RouterId r, Cycle now) const
{
    const Cycle epoch = now / epochLen_;
    return static_cast<int>((r + epoch) % n_);
}

} // namespace spin
