/**
 * @file
 * Move manager (paper Table II): processes move, probe_move and
 * kill_move traversals -- freezing and unfreezing the deadlocked VCs
 * along the latched loop path and enforcing the source-id latch that
 * serializes overlapping recoveries.
 */

#ifndef SPINNOC_CORE_MOVEMANAGER_HH
#define SPINNOC_CORE_MOVEMANAGER_HH

#include <vector>

#include "common/Types.hh"
#include "core/SpecialMsg.hh"

namespace spin
{

class SpinUnit;

/** See file comment. */
class MoveManager
{
  public:
    explicit MoveManager(SpinUnit &unit) : unit_(unit) {}

    /** Process an arriving move or probe_move. */
    void processMove(const SpecialMsg &sm, PortId inport,
                     std::vector<SmSend> &sends);

    /** Process an arriving kill_move. */
    void processKill(const SpecialMsg &sm, PortId inport,
                     std::vector<SmSend> &sends);

  private:
    SpinUnit &unit_;
};

} // namespace spin

#endif // SPINNOC_CORE_MOVEMANAGER_HH
