/**
 * @file
 * Per-router SPIN unit: the counter FSM, the loop buffer, the frozen-VC
 * bookkeeping, and the probe/move managers (paper Table II). One is
 * attached to every router when the network's deadlock scheme is Spin.
 */

#ifndef SPINNOC_CORE_SPINUNIT_HH
#define SPINNOC_CORE_SPINUNIT_HH

#include <vector>

#include "common/Types.hh"
#include "core/LoopBuffer.hh"
#include "core/MoveManager.hh"
#include "core/ProbeManager.hh"
#include "core/SpecialMsg.hh"
#include "core/SpinFsm.hh"

namespace spin
{

class Router;
class SpinManager;

/** See file comment. */
class SpinUnit
{
  public:
    SpinUnit(SpinManager &mgr, Router &router);

    Router &router() { return router_; }
    const Router &router() const { return router_; }
    SpinManager &manager() { return mgr_; }

    /// @name Datapath hooks (called by the Router)
    /// @{
    /** A flit arrived at a non-local in-port: S_OFF -> S_DD. */
    void onFlitArrival(PortId inport, VcId vc);
    /** A flit left (inport, vc): advance the pointed-VC counter. */
    void onFlitDeparture(PortId inport, VcId vc);
    /// @}

    /**
     * Process one arriving SM; forwards are appended to @p sends and
     * contend for links this cycle in the SpinManager.
     */
    void processSm(const SpecialMsg &sm, PortId inport,
                   std::vector<SmSend> &sends);

    /** Counter expiry checks; runs once per cycle. */
    void tick(Cycle now);

    /// @name Frozen-VC bookkeeping (spin rotation inputs)
    /// @{
    struct FrozenEntry
    {
        PortId inport = kInvalidId;
        VcId vc = kInvalidId;
        PortId outport = kInvalidId;
    };

    const std::vector<FrozenEntry> &frozenEntries() const
    {
        return frozen_;
    }
    const VictimCtx &victim() const { return victim_; }

    /** Freeze (inport, vc) toward @p outport for @p source's recovery. */
    void freeze(PortId inport, VcId vc, PortId outport, RouterId source,
                Cycle spin_cycle);
    /** Unfreeze the entry matching (inport wanting @p outport), if any.
     *  @return true when an entry was released. */
    bool unfreeze(PortId inport, PortId outport);
    /** Drop all frozen state (kill_move completion / cancellation). */
    void unfreezeAll();
    /// @}

    /// @name Rotation-phase callbacks (SpinManager)
    /// @{
    /** All of this router's entries were just rotated. */
    void onSpinExecuted(Cycle now);
    /** Entries were cancelled by the safety fixpoint. */
    void onSpinCancelled(Cycle now);
    /// @}

    /// @name State save/restore (model checker + tests)
    /// @{
    /** Capture the unit's full recovery state, times relative to @p now. */
    FsmSnapshot snapshot(Cycle now) const;
    /**
     * Re-apply a snapshot taken at some earlier (or other-run) cycle,
     * rebasing relative times onto @p now. Releases any currently
     * frozen VCs, then re-applies the snapshot's freeze flags.
     */
    void restore(const FsmSnapshot &s, Cycle now);
    /// @}

    /// @name Introspection
    /// @{
    InitState initState() const { return state_; }
    /** The paper's seven-state view (see SpinFsm.hh). */
    SpinState paperState() const;
    const LoopBuffer &loopBuffer() const { return loop_; }
    /** In-port / VC of the most recent probe (the acceptance port). */
    PortId pointerInport() const { return ptrInport_; }
    VcId pointerVc() const { return ptrVc_; }
    /// @}

    /// @name Used by the probe / move managers
    /// @{
    /** Accept a returned probe: latch loop, emit the move. */
    void onProbeReturned(const SpecialMsg &probe, Cycle now);
    /** Move/probe_move returned: freeze own VC, arm the spin. */
    void onMoveReturned(const SpecialMsg &sm, PortId inport, Cycle now);
    /** kill_move returned: clear recovery state. */
    void onKillReturned(Cycle now);
    /**
     * The router died (fault injection): drop every frozen entry and
     * all detection/recovery state without sending anything. The
     * router's buffers are purged by markDead, so watching them would
     * touch freed packet state.
     */
    void abortForFault(Cycle now);
    /** Abort the current recovery with a kill_move traversal. */
    void sendKill(Cycle now);
    /**
     * First VC of @p vnet at @p inport whose packet is complete,
     * unfrozen, uncommitted and currently waiting on @p outport;
     * kInvalidId when none (the move/probe_move drop condition).
     */
    VcId findFreezable(PortId inport, PortId outport, VnetId vnet) const;
    /// @}

  private:
    friend class ProbeManager;
    friend class MoveManager;

    SpinManager &mgr_;
    Router &router_;
    ProbeManager probeMgr_;
    MoveManager moveMgr_;

    InitState state_ = InitState::Off;
    Cycle deadline_ = kNeverCycle;
    PortId ptrInport_ = kInvalidId;
    VcId ptrVc_ = kInvalidId;

    LoopBuffer loop_;
    /** Message class of the latched loop. */
    VnetId loopVnet_ = 0;
    VictimCtx victim_;
    std::vector<FrozenEntry> frozen_;

    /** True when (inport, vc) may be watched for deadlock. */
    bool qualifies(PortId inport, VcId vc) const;
    /** True when any VC at the router qualifies. */
    bool anyQualifies() const;
    /** Detection attempt counter (oldest-first / sweep alternation). */
    std::uint64_t probeAttempt_ = 0;
    /** Restart detection after a recovery completes or aborts. */
    void resetDetection(Cycle now);
    /** Detection timer logic within tick(). */
    void tickDetect(Cycle now);
};

} // namespace spin

#endif // SPINNOC_CORE_SPINUNIT_HH
