#include "core/SpinUnit.hh"

#include "common/Logging.hh"
#include "core/SpinManager.hh"
#include "network/Network.hh"
#include "obs/Forensics.hh"
#include "obs/Tracer.hh"
#include "router/Router.hh"

namespace spin
{

SpinUnit::SpinUnit(SpinManager &mgr, Router &router)
    : mgr_(mgr), router_(router), probeMgr_(*this), moveMgr_(*this)
{
}

// ---------------------------------------------------------------------
// Detection pointer management
// ---------------------------------------------------------------------

bool
SpinUnit::qualifies(PortId inport, VcId vc) const
{
    const InputUnit &iu = router_.input(inport);
    if (iu.fromNic())
        return false; // local buffers can never join an in-network cycle
    const VirtualChannel &v = iu.vc(vc);
    if (!v.active())
        return false;
    // Packets waiting for ejection cannot be part of a cyclic chain.
    if (router_.isEjectRequest(inport, vc))
        return false;
    return true;
}



bool
SpinUnit::anyQualifies() const
{
    const int vcs = router_.network().config().totalVcs();
    for (PortId p = 0; p < router_.radix(); ++p) {
        for (VcId v = 0; v < vcs; ++v) {
            if (qualifies(p, v))
                return true;
        }
    }
    return false;
}

void
SpinUnit::resetDetection(Cycle now)
{
    ptrInport_ = kInvalidId;
    ptrVc_ = kInvalidId;
    if (anyQualifies()) {
        state_ = InitState::DetectDeadlock;
        deadline_ = now + mgr_.tDd();
    } else {
        state_ = InitState::Off;
        deadline_ = kNeverCycle;
    }
}

void
SpinUnit::onFlitArrival(PortId inport, VcId vc)
{
    if (state_ == InitState::Off && qualifies(inport, vc)) {
        state_ = InitState::DetectDeadlock;
        deadline_ = router_.network().now() + mgr_.tDd();
    }
}

void
SpinUnit::onFlitDeparture(PortId, VcId)
{
    // Progress timestamps live in the VCs themselves
    // (VirtualChannel::lastProgress); nothing to do here.
}

// ---------------------------------------------------------------------
// SM dispatch
// ---------------------------------------------------------------------

void
SpinUnit::processSm(const SpecialMsg &sm, PortId inport,
                    std::vector<SmSend> &sends)
{
    switch (sm.type) {
      case SmType::Probe:
        probeMgr_.process(sm, inport, sends);
        break;
      case SmType::Move:
      case SmType::ProbeMove:
        moveMgr_.processMove(sm, inport, sends);
        break;
      case SmType::KillMove:
        moveMgr_.processKill(sm, inport, sends);
        break;
    }
}

// ---------------------------------------------------------------------
// Counter FSM
// ---------------------------------------------------------------------

void
SpinUnit::tickDetect(Cycle now)
{
    if (victim_.active)
        return; // the counter is armed for the spin cycle instead
    if (now < deadline_)
        return;
    deadline_ = now + mgr_.tDd(); // reset and restart regardless

    // Collect the "ripe" VCs: qualifying, routed toward a real link,
    // and without forward progress for at least t_DD.
    struct Ripe
    {
        PortId inport;
        VcId vc;
        Cycle since;
    };
    std::vector<Ripe> ripe;
    const int vcs = router_.network().config().totalVcs();
    bool any_qualifies = false;
    for (PortId p = 0; p < router_.radix(); ++p) {
        for (VcId v = 0; v < vcs; ++v) {
            if (!qualifies(p, v))
                continue;
            any_qualifies = true;
            const VirtualChannel &ch = router_.input(p).vc(v);
            if (now - ch.lastProgress() < mgr_.tDd())
                continue;
            const PortId req = router_.depRequest(p, v);
            if (req == kInvalidId || router_.isNicPort(req))
                continue;
            ripe.push_back(Ripe{p, v, ch.lastProgress()});
        }
    }
    if (!any_qualifies) {
        state_ = InitState::Off;
        deadline_ = kNeverCycle;
        return;
    }
    if (ripe.empty())
        return;

    // Probe the *oldest*-blocked VC first: a deadlock's own loop stops
    // before the chains that pile up behind it, so at loop routers the
    // oldest VC is the loop VC. Alternate with a slow sweep over the
    // younger ripe VCs so a router stuck *behind* a remote loop still
    // covers everything (see DESIGN.md on detection coverage).
    std::sort(ripe.begin(), ripe.end(),
              [](const Ripe &a, const Ripe &b) {
                  return a.since < b.since;
              });
    std::size_t pick = 0;
    if (probeAttempt_ % 2 == 1)
        pick = (probeAttempt_ / 2 + 1) % ripe.size();
    ++probeAttempt_;

    const PortId inport = ripe[pick].inport;
    const VcId vcid = ripe[pick].vc;
    ptrInport_ = inport; // the probe-return acceptance port
    ptrVc_ = vcid;
    const PortId req = router_.depRequest(inport, vcid);

    SpecialMsg probe;
    probe.type = SmType::Probe;
    probe.sender = router_.id();
    probe.vnet = router_.input(inport).vc(vcid).owner()->vnet;
    probe.sendCycle = now + 1; // generation takes a cycle
    probe.path.push_back(req);
    mgr_.scheduleSend(now + 1, SmSend{probe, router_.id(), req});
    ++router_.network().stats().probesSent;
    if (obs::Tracer *t = router_.network().trace())
        t->spin(now, "probe_sent", router_.id(), nullptr, inport, vcid);
}

void
SpinUnit::tick(Cycle now)
{
    switch (state_) {
      case InitState::Off:
        break;
      case InitState::DetectDeadlock:
        tickDetect(now);
        break;
      case InitState::MoveWait:
      case InitState::ProbeMoveWait:
        if (now >= deadline_)
            sendKill(now); // move/probe_move was dropped somewhere
        break;
      case InitState::KillMoveWait:
        if (now >= deadline_) {
            // kill_move lost; every frozen router also un-freezes via
            // its own safety net, so just restart detection.
            loop_.clear();
            resetDetection(now);
        }
        break;
      case InitState::FwdProgress:
        break; // the SpinManager fires the rotation at the spin cycle
    }
}

void
SpinUnit::sendKill(Cycle now)
{
    SPIN_ASSERT(loop_.valid(), "kill without a latched loop");
    SpecialMsg kill;
    kill.type = SmType::KillMove;
    kill.sender = router_.id();
    kill.vnet = loopVnet_;
    kill.sendCycle = now + 1;
    kill.path = loop_.path();
    kill.pathIdx = 1;
    if (mgr_.mutation() != ProtocolMutation::SkipKillMove) {
        mgr_.scheduleSend(now + 1,
                          SmSend{kill, router_.id(), kill.path[0]});
    }
    state_ = InitState::KillMoveWait;
    deadline_ = now + 1 + loop_.loopLatency() + 1;
    ++router_.network().stats().killMovesSent;
    if (obs::Tracer *t = router_.network().trace())
        t->spin(now, "kill_move_sent", router_.id(), nullptr,
                static_cast<std::int64_t>(kill.path.size()));

    // Our own committed freeze (if the move returned before a later
    // probe_move failed) is released immediately.
    if (victim_.active && victim_.source == router_.id())
        unfreezeAll();
}

// ---------------------------------------------------------------------
// Freeze bookkeeping
// ---------------------------------------------------------------------

VcId
SpinUnit::findFreezable(PortId inport, PortId outport, VnetId vnet) const
{
    const InputUnit &iu = router_.input(inport);
    if (iu.fromNic())
        return kInvalidId;
    const int per = router_.network().config().vcsPerVnet;
    const VcId lo = vnet * per;
    for (VcId v = lo; v < lo + per; ++v) {
        const VirtualChannel &vc = iu.vc(v);
        if (!vc.active() || vc.frozen || !vc.packetComplete())
            continue;
        if (vc.grantedVc != kInvalidId)
            continue; // already committed downstream; it will move
        if (vc.routeValid && vc.request == outport)
            return v;
    }
    return kInvalidId;
}

void
SpinUnit::freeze(PortId inport, VcId vc, PortId outport, RouterId source,
                 Cycle spin_cycle)
{
    VirtualChannel &v = router_.input(inport).vc(vc);
    SPIN_ASSERT(!v.frozen, "double freeze");
    v.frozen = true;
    v.frozenOutport = outport;
    victim_.active = true;
    victim_.source = source;
    victim_.spinCycle = spin_cycle;
    frozen_.push_back(FrozenEntry{inport, vc, outport});
    if (obs::Tracer *t = router_.network().trace())
        t->spin(router_.network().now(), "vc_freeze", router_.id(),
                nullptr, inport, vc);
}

bool
SpinUnit::unfreeze(PortId inport, PortId outport)
{
    for (std::size_t i = 0; i < frozen_.size(); ++i) {
        if (frozen_[i].inport == inport && frozen_[i].outport == outport) {
            VirtualChannel &v = router_.input(inport).vc(frozen_[i].vc);
            v.frozen = false;
            v.frozenOutport = kInvalidId;
            frozen_.erase(frozen_.begin() +
                          static_cast<std::ptrdiff_t>(i));
            if (frozen_.empty())
                victim_ = VictimCtx{};
            return true;
        }
    }
    return false;
}

void
SpinUnit::unfreezeAll()
{
    for (const FrozenEntry &e : frozen_) {
        VirtualChannel &v = router_.input(e.inport).vc(e.vc);
        v.frozen = false;
        v.frozenOutport = kInvalidId;
    }
    frozen_.clear();
    victim_ = VictimCtx{};
}

// ---------------------------------------------------------------------
// Recovery milestones
// ---------------------------------------------------------------------

void
SpinUnit::onProbeReturned(const SpecialMsg &probe, Cycle now)
{
    SPIN_ASSERT(state_ == InitState::DetectDeadlock, "probe return in ",
                toString(state_));
    SPIN_ASSERT(now > probe.sendCycle, "probe returned instantly");
    const Cycle ll = now - probe.sendCycle;
    loop_.latch(probe.path, ll);
    loopVnet_ = probe.vnet;

    const Cycle te = now + 1;
    SpecialMsg move;
    move.type = SmType::Move;
    move.sender = router_.id();
    move.vnet = probe.vnet;
    move.sendCycle = te;
    move.path = loop_.path();
    move.pathIdx = 1;
    move.spinCycle = te + 2 * ll;
    mgr_.scheduleSend(te, SmSend{move, router_.id(), move.path[0]});

    state_ = InitState::MoveWait;
    deadline_ = te + ll + 1;
    Stats &st = router_.network().stats();
    ++st.probesReturned;
    ++st.movesSent;

    Network &net = router_.network();
    if (obs::Tracer *t = net.trace()) {
        t->spin(now, "probe_return", router_.id(), nullptr,
                static_cast<std::int64_t>(ll),
                static_cast<std::int64_t>(probe.path.size()));
        t->spin(te, "move_sent", router_.id(), nullptr,
                static_cast<std::int64_t>(move.spinCycle));
    }
    if (obs::Forensics *f = net.forensics())
        f->onProbeReturned(net, router_.id(), ptrInport_, ptrVc_, probe,
                           now);
}

void
SpinUnit::onMoveReturned(const SpecialMsg &sm, PortId inport, Cycle now)
{
    // Freeze our own deadlocked packet: the VC at the SM's in-port that
    // wants path[0] (paper Step 11).
    const VcId v = findFreezable(inport, sm.path[0], sm.vnet);
    if (v == kInvalidId) {
        // Our own dependency vanished; cancel the whole spin.
        sendKill(now);
        return;
    }
    freeze(inport, v, sm.path[0], router_.id(), sm.spinCycle);
    state_ = InitState::FwdProgress;
    deadline_ = sm.spinCycle;
    Stats &st = router_.network().stats();
    if (sm.type == SmType::Move)
        ++st.movesReturned;
    else
        ++st.probeMovesReturned;
    if (obs::Tracer *t = router_.network().trace())
        t->spin(now,
                sm.type == SmType::Move ? "move_return"
                                        : "probe_move_return",
                router_.id(), nullptr,
                static_cast<std::int64_t>(sm.spinCycle));
}

void
SpinUnit::onKillReturned(Cycle now)
{
    loop_.clear();
    unfreezeAll();
    resetDetection(now);
}

void
SpinUnit::abortForFault(Cycle now)
{
    (void)now;
    unfreezeAll();
    loop_.clear();
    ptrInport_ = kInvalidId;
    ptrVc_ = kInvalidId;
    state_ = InitState::Off;
    deadline_ = kNeverCycle;
}

void
SpinUnit::onSpinExecuted(Cycle now)
{
    frozen_.clear();
    victim_ = VictimCtx{};

    if (state_ == InitState::FwdProgress) {
        // We initiated this spin: immediately re-check the loop with a
        // probe_move once the rotated packets have settled.
        SPIN_ASSERT(loop_.valid(), "initiator without a loop");
        const Cycle te =
            now + router_.network().config().probeMoveDelay;
        SpecialMsg pm;
        pm.type = SmType::ProbeMove;
        pm.sender = router_.id();
        pm.vnet = loopVnet_;
        pm.sendCycle = te;
        pm.path = loop_.path();
        pm.pathIdx = 1;
        pm.spinCycle = te + 2 * loop_.loopLatency();
        mgr_.scheduleSend(te, SmSend{pm, router_.id(), pm.path[0]});
        state_ = InitState::ProbeMoveWait;
        deadline_ = te + loop_.loopLatency() + 1;
        ++router_.network().stats().probeMovesSent;
        if (obs::Tracer *t = router_.network().trace())
            t->spin(te, "probe_move_sent", router_.id(), nullptr,
                    static_cast<std::int64_t>(pm.spinCycle));
    } else {
        resetDetection(now);
    }
}

void
SpinUnit::onSpinCancelled(Cycle now)
{
    unfreezeAll();
    if (state_ == InitState::FwdProgress) {
        loop_.clear();
        state_ = InitState::DetectDeadlock;
    }
    resetDetection(now);
}

// ---------------------------------------------------------------------
// Snapshot / restore
// ---------------------------------------------------------------------

namespace
{

std::int64_t
relCycle(Cycle abs, Cycle now)
{
    if (abs == kNeverCycle)
        return FsmSnapshot::kNever;
    return static_cast<std::int64_t>(abs) - static_cast<std::int64_t>(now);
}

Cycle
absCycle(std::int64_t rel, Cycle now)
{
    if (rel == FsmSnapshot::kNever)
        return kNeverCycle;
    return static_cast<Cycle>(rel + static_cast<std::int64_t>(now));
}

} // namespace

FsmSnapshot
SpinUnit::snapshot(Cycle now) const
{
    FsmSnapshot s;
    s.state = state_;
    s.deadlineIn = relCycle(deadline_, now);
    s.ptrInport = ptrInport_;
    s.ptrVc = ptrVc_;
    s.victimActive = victim_.active;
    s.victimSource = victim_.source;
    s.spinIn = victim_.active ? relCycle(victim_.spinCycle, now)
                              : FsmSnapshot::kNever;
    s.loopValid = loop_.valid();
    if (s.loopValid) {
        s.loopPath = loop_.path();
        s.loopLatency = loop_.loopLatency();
        s.loopVnet = loopVnet_;
    }
    s.probeAttempt = probeAttempt_;
    s.frozen.reserve(frozen_.size());
    for (const FrozenEntry &e : frozen_)
        s.frozen.push_back(FsmSnapshot::Frozen{e.inport, e.vc, e.outport});
    return s;
}

void
SpinUnit::restore(const FsmSnapshot &s, Cycle now)
{
    unfreezeAll();
    state_ = s.state;
    deadline_ = absCycle(s.deadlineIn, now);
    ptrInport_ = s.ptrInport;
    ptrVc_ = s.ptrVc;
    victim_.active = s.victimActive;
    victim_.source = s.victimSource;
    victim_.spinCycle =
        s.victimActive ? absCycle(s.spinIn, now) : kNeverCycle;
    if (s.loopValid)
        loop_.latch(s.loopPath, s.loopLatency);
    else
        loop_.clear();
    loopVnet_ = s.loopVnet;
    probeAttempt_ = s.probeAttempt;
    for (const FsmSnapshot::Frozen &f : s.frozen) {
        VirtualChannel &v = router_.input(f.inport).vc(f.vc);
        v.frozen = true;
        v.frozenOutport = f.outport;
        frozen_.push_back(FrozenEntry{f.inport, f.vc, f.outport});
    }
}

SpinState
SpinUnit::paperState() const
{
    if (victim_.active && victim_.source != router_.id())
        return SpinState::Frozen;
    switch (state_) {
      case InitState::Off:            return SpinState::Off;
      case InitState::DetectDeadlock: return SpinState::DetectDeadlock;
      case InitState::MoveWait:       return SpinState::Move;
      case InitState::FwdProgress:    return SpinState::ForwardProgress;
      case InitState::ProbeMoveWait:  return SpinState::ProbeMove;
      case InitState::KillMoveWait:   return SpinState::KillMove;
    }
    return SpinState::Off;
}

} // namespace spin
