/**
 * @file
 * Principle of rotating priority among routers (paper Sec. IV-C1).
 *
 * Probes contending for the same link are arbitrated by the dynamic
 * priority of their *senders*. Priorities rotate round-robin every
 * epoch (4 * t_DD by default) so that every router eventually holds the
 * highest priority long enough to detect a deadlock, send a probe and
 * receive it back -- the liveness argument for arbitrary loops.
 */

#ifndef SPINNOC_CORE_ROTATINGPRIORITY_HH
#define SPINNOC_CORE_ROTATINGPRIORITY_HH

#include "common/Types.hh"

namespace spin
{

/** See file comment. Higher value = higher priority. */
class RotatingPriority
{
  public:
    /**
     * @param num_routers routers in the network
     * @param epoch_len   cycles per rotation step (4 * t_DD)
     */
    RotatingPriority(int num_routers, Cycle epoch_len);

    /** Dynamic priority of router @p r at cycle @p now, in [0, N). */
    int priorityOf(RouterId r, Cycle now) const;

    Cycle epochLength() const { return epochLen_; }
    /** Cycles for priorities to complete one full rotation. */
    Cycle fullRotation() const { return epochLen_ * n_; }

  private:
    int n_;
    Cycle epochLen_;
};

} // namespace spin

#endif // SPINNOC_CORE_ROTATINGPRIORITY_HH
