#include "core/SpecialMsg.hh"

#include <sstream>

namespace spin
{

std::string
toString(SmType t)
{
    switch (t) {
      case SmType::Probe:     return "probe";
      case SmType::Move:      return "move";
      case SmType::ProbeMove: return "probe_move";
      case SmType::KillMove:  return "kill_move";
    }
    return "?";
}

std::string
SpecialMsg::toString() const
{
    std::ostringstream os;
    os << spin::toString(type) << " from R" << sender << " path[";
    for (std::size_t i = 0; i < path.size(); ++i)
        os << (i ? "," : "") << path[i];
    os << "] idx=" << pathIdx << " spin@" << spinCycle;
    return os.str();
}

} // namespace spin
