#include "exp/Report.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <utility>
#include <vector>

namespace spin::exp
{

void
printSeries(const obs::JsonValue &results)
{
    const obs::JsonValue &series = results["series"];
    for (std::size_t i = 0; i < series.size(); ++i) {
        const obs::JsonValue &s = series.at(i);
        std::printf("## %s | %s | seed %llu\n",
                    s["preset"].asString().c_str(),
                    s["pattern"].asString().c_str(),
                    static_cast<unsigned long long>(s["seed"].asU64()));
        std::printf("%10s %14s %14s %6s\n", "rate", "latency(cy)",
                    "thru(f/n/c)", "sat");
        const obs::JsonValue &points = s["points"];
        for (std::size_t k = 0; k < points.size(); ++k) {
            const obs::JsonValue &p = points.at(k);
            std::printf("%10.3f %14.2f %14.4f %6s\n",
                        p["rate"].asNumber(), p["latency"].asNumber(),
                        p["throughput"].asNumber(),
                        p["saturated"].asBool() ? "yes" : "");
        }
        std::printf("-> saturation throughput ~ %.3f flits/node/cycle\n\n",
                    s["saturationRate"].asNumber());
    }
}

void
printSaturationSummary(const obs::JsonValue &results)
{
    const obs::JsonValue &series = results["series"];
    std::printf("=== Saturation-throughput summary (flits/node/cycle) "
                "===\n%-24s %-16s %8s\n", "config", "pattern", "sat");
    for (std::size_t i = 0; i < series.size(); ++i) {
        const obs::JsonValue &s = series.at(i);
        std::printf("%-24s %-16s %8.3f\n",
                    s["preset"].asString().c_str(),
                    s["pattern"].asString().c_str(),
                    s["saturationRate"].asNumber());
    }
}

void
printLinkUtilization(const obs::JsonValue &results)
{
    std::printf("%-24s %8s %10s %10s %10s %10s %10s\n", "config", "rate",
                "flit%", "probe%", "move%", "sm-total%", "idle%");
    const obs::JsonValue &cells = results["cells"];
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const obs::JsonValue &c = cells.at(i);
        const obs::JsonValue &u = c["linkUsage"];
        const double total = u["totalCycles"].asNumber();
        if (total <= 0)
            continue;
        const double flit = u["flitCycles"].asNumber() / total;
        const double probe = u["probeCycles"].asNumber() / total;
        const double move = u["moveCycles"].asNumber() / total;
        const double idle = u["idleCycles"].asNumber() / total;
        std::printf("%-24s %8.2f %10.2f %10.2f %10.2f %10.2f %10.2f\n",
                    c["preset"].asString().c_str(), c["rate"].asNumber(),
                    100 * flit, 100 * probe, 100 * move,
                    100 * (probe + move), 100 * idle);
    }
}

void
printSpinCounts(const obs::JsonValue &results)
{
    const obs::JsonValue &cells = results["cells"];
    std::string group;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const obs::JsonValue &c = cells.at(i);
        const std::string here =
            c["preset"].asString() + " | " + c["pattern"].asString();
        if (here != group) {
            group = here;
            std::printf("--- %s ---\n%8s %10s %14s %12s %12s\n",
                        group.c_str(), "rate", "spins", "false-pos",
                        "probes", "probe-ret");
        }
        const obs::JsonValue &sp = c["stats"]["spin"];
        std::printf(
            "%8.2f %10llu %14llu %12llu %12llu\n", c["rate"].asNumber(),
            static_cast<unsigned long long>(sp["spins"].asU64()),
            static_cast<unsigned long long>(
                sp["falsePositiveSpins"].asU64()),
            static_cast<unsigned long long>(sp["probesSent"].asU64()),
            static_cast<unsigned long long>(sp["probesReturned"].asU64()));
    }
    std::printf("\n");
}

bool
writeJsonFile(const std::string &path, const obs::JsonValue &doc)
{
    std::ofstream os(path);
    if (!os) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return false;
    }
    os << doc.dump(2) << '\n';
    return static_cast<bool>(os);
}

void
printPhaseProfile(const obs::JsonValue &profile)
{
    const obs::JsonValue &phases = profile["phases"];
    const double total = profile["totalNs"].asNumber();
    const double cycles = profile["cycles"].asNumber();
    std::printf("== phase profile: %.0f cycles, %.1f ms wall, "
                "%.0f ns/cycle ==\n",
                cycles, total / 1e6,
                profile["nsPerCycle"].asNumber());
    // Share-sorted rows; ties keep the phase-enum order.
    std::vector<std::pair<double, std::string>> rows;
    for (const auto &kv : phases.members())
        rows.emplace_back(kv.second["ns"].asNumber(), kv.first);
    std::stable_sort(rows.begin(), rows.end(),
                     [](const auto &a, const auto &b) {
                         return a.first > b.first;
                     });
    for (const auto &[ns, name] : rows) {
        if (ns <= 0)
            continue;
        std::printf("  %-12s %10.1f ms  %5.1f%%\n", name.c_str(),
                    ns / 1e6, total > 0 ? 100.0 * ns / total : 0.0);
    }
    std::printf("\n");
}

} // namespace spin::exp
