/**
 * @file
 * Console reports over aggregated campaign results.
 *
 * Every printer consumes the spin-sweep/v1 results document produced by
 * Campaign::run() (see docs/SWEEP.md) so the sweep runner and the
 * figure wrappers in bench/ share one presentation layer: spin_sweep
 * prints the latency series for any spec, and each figure binary picks
 * the table that matches its paper artifact.
 */

#ifndef SPINNOC_EXP_REPORT_HH
#define SPINNOC_EXP_REPORT_HH

#include <string>

#include "obs/Json.hh"

namespace spin::exp
{

/** Per-series latency/throughput tables (one block per series). */
void printSeries(const obs::JsonValue &results);

/**
 * Saturation-throughput summary: one `config pattern sat` row per
 * series, the closing table of the latency figure benches.
 */
void printSaturationSummary(const obs::JsonValue &results);

/**
 * Fig. 8b-style link-utilization breakdown: one row per cell with the
 * flit / probe-SM / move-SM / idle cycle fractions.
 */
void printLinkUtilization(const obs::JsonValue &results);

/**
 * Fig. 9-style spin-count table: one row per cell with spins,
 * false-positive spins, and probe traffic; a header per (preset,
 * pattern) group (cells arrive in expansion order, so groups are
 * contiguous).
 */
void printSpinCounts(const obs::JsonValue &results);

/** Write @p doc to @p path as indented JSON; complains on stderr. */
bool writeJsonFile(const std::string &path, const obs::JsonValue &doc);

/**
 * Wall-clock phase-attribution table over a spin-profile/v1 document
 * (obs::PhaseProfiler::toJson): one row per phase, share-sorted.
 */
void printPhaseProfile(const obs::JsonValue &profile);

} // namespace spin::exp

#endif // SPINNOC_EXP_REPORT_HH
