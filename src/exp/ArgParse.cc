#include "exp/ArgParse.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace spin::exp
{

ArgSpec
argU64(const char *name, std::uint64_t *dst, bool *seen)
{
    ArgSpec s;
    s.name = name;
    s.kind = ArgSpec::Kind::U64;
    s.u64 = dst;
    s.seen = seen;
    return s;
}

ArgSpec
argF64(const char *name, double *dst, bool *seen)
{
    ArgSpec s;
    s.name = name;
    s.kind = ArgSpec::Kind::F64;
    s.f64 = dst;
    s.seen = seen;
    return s;
}

ArgSpec
argStr(const char *name, std::string *dst, bool *seen)
{
    ArgSpec s;
    s.name = name;
    s.kind = ArgSpec::Kind::Str;
    s.str = dst;
    s.seen = seen;
    return s;
}

ArgSpec
argFlag(const char *name, bool *dst, bool *seen)
{
    ArgSpec s;
    s.name = name;
    s.kind = ArgSpec::Kind::Flag;
    s.flag = dst;
    s.seen = seen;
    return s;
}

bool
parseU64(const std::string &text, std::uint64_t &out)
{
    if (text.empty() || text[0] == '-' || text[0] == '+')
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno != 0 || end != text.c_str() + text.size())
        return false;
    out = v;
    return true;
}

bool
parseF64(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (errno != 0 || end != text.c_str() + text.size())
        return false;
    out = v;
    return true;
}

namespace
{

bool
applyValue(const ArgSpec &spec, const std::string &value, std::string &err)
{
    switch (spec.kind) {
      case ArgSpec::Kind::U64:
        if (!parseU64(value, *spec.u64)) {
            err = "invalid integer for " + spec.name + ": '" + value + "'";
            return false;
        }
        return true;
      case ArgSpec::Kind::F64:
        if (!parseF64(value, *spec.f64)) {
            err = "invalid number for " + spec.name + ": '" + value + "'";
            return false;
        }
        return true;
      case ArgSpec::Kind::Str:
        *spec.str = value;
        return true;
      case ArgSpec::Kind::Flag:
        err = spec.name + " takes no value";
        return false;
    }
    return false;
}

} // namespace

bool
parseArgs(int argc, char **argv, const std::vector<ArgSpec> &specs,
          std::string &err)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.empty() || arg[0] != '-') {
            err = "unexpected positional argument: '" + arg + "'";
            return false;
        }

        std::string name = arg;
        std::string inlineValue;
        bool hasInline = false;
        const std::size_t eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            inlineValue = arg.substr(eq + 1);
            hasInline = true;
        }

        const ArgSpec *spec = nullptr;
        for (const ArgSpec &s : specs) {
            if (s.name == name) {
                spec = &s;
                break;
            }
        }
        // Short-option attached value: "-j4" means "-j 4".
        if (!spec && !hasInline && name.size() > 2 && name[1] != '-') {
            const std::string shortName = name.substr(0, 2);
            for (const ArgSpec &s : specs) {
                if (s.name == shortName &&
                    s.kind != ArgSpec::Kind::Flag) {
                    spec = &s;
                    name = shortName;
                    inlineValue = arg.substr(2);
                    hasInline = true;
                    break;
                }
            }
        }
        if (!spec) {
            err = "unknown flag: " + name;
            return false;
        }
        if (spec->seen)
            *spec->seen = true;

        if (spec->kind == ArgSpec::Kind::Flag) {
            if (hasInline) {
                err = name + " takes no value";
                return false;
            }
            if (spec->flag)
                *spec->flag = true;
            continue;
        }

        std::string value;
        if (hasInline) {
            value = inlineValue;
        } else {
            if (i + 1 >= argc) {
                err = "missing value for " + name;
                return false;
            }
            value = argv[++i];
            // A '--'-prefixed token after a valued flag is almost
            // certainly a forgotten value, not a value that happens to
            // look like a flag; failing loudly beats silently consuming
            // the next option.
            if (value.rfind("--", 0) == 0) {
                err = "missing value for " + name + " (found flag '" +
                      value + "' instead)";
                return false;
            }
        }
        if (!applyValue(*spec, value, err))
            return false;
    }
    return true;
}

} // namespace spin::exp
