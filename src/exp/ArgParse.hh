/**
 * @file
 * Declarative command-line parsing shared by the bench harness
 * (bench/BenchUtil.hh) and the campaign runner (tools/spin_sweep).
 *
 * The contract every tool built on this gets for free:
 *  - unknown `--flags` are fatal, anywhere on the line;
 *  - bare positional arguments are fatal (no tool here takes any);
 *  - a flag that needs a value never silently swallows the next flag
 *    (`--warmup --fast` is an error, not warmup=0 plus a lost --fast);
 *  - numeric values are validated end-to-end (`--warmup 10x` is an
 *    error, not 10);
 *  - `--name value` and `--name=value` are both accepted.
 *
 * Parsing never exits or throws; callers print `err` with their usage
 * text and choose the exit code.
 */

#ifndef SPINNOC_EXP_ARGPARSE_HH
#define SPINNOC_EXP_ARGPARSE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace spin::exp
{

/** One accepted flag and where its value lands. */
struct ArgSpec
{
    enum class Kind : std::uint8_t
    {
        U64,  //!< unsigned integer value
        F64,  //!< floating-point value
        Str,  //!< string value
        Flag, //!< boolean, no value
    };

    std::string name; //!< including the leading "--"
    Kind kind = Kind::Flag;

    std::uint64_t *u64 = nullptr;
    double *f64 = nullptr;
    std::string *str = nullptr;
    bool *flag = nullptr;
    /** Optional: set true when the flag appeared. */
    bool *seen = nullptr;
};

/// @name Spec constructors
/// @{
ArgSpec argU64(const char *name, std::uint64_t *dst, bool *seen = nullptr);
ArgSpec argF64(const char *name, double *dst, bool *seen = nullptr);
ArgSpec argStr(const char *name, std::string *dst, bool *seen = nullptr);
ArgSpec argFlag(const char *name, bool *dst, bool *seen = nullptr);
/// @}

/** Strict full-string unsigned parse (no trailing garbage, no sign). */
bool parseU64(const std::string &text, std::uint64_t &out);
/** Strict full-string double parse. */
bool parseF64(const std::string &text, double &out);

/**
 * Parse @p argv[1..] against @p specs. Returns false with @p err set on
 * the first violation of the contract in the file comment. `--help` and
 * `-h` are NOT special-cased here; tools that want them list a Flag.
 */
bool parseArgs(int argc, char **argv, const std::vector<ArgSpec> &specs,
               std::string &err);

} // namespace spin::exp

#endif // SPINNOC_EXP_ARGPARSE_HH
