#include "exp/SweepSpec.hh"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/Logging.hh"
#include "topology/Dragonfly.hh"
#include "topology/Mesh.hh"
#include "topology/Ring.hh"
#include "topology/Torus.hh"

namespace spin::exp
{

namespace
{

/** FNV-1a over a byte string. */
std::uint64_t
fnv1a(std::uint64_t h, const std::string &s)
{
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

/** splitmix64 finalizer: avalanche the structured hash input. */
std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Fixed-point rate text: the same for spec files and seed derivation. */
std::string
rateText(double rate)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6f", rate);
    return buf;
}

NetworkConfig
vnet1Cfg(const std::string &name, int vcs_per_vnet)
{
    NetworkConfig cfg;
    cfg.name = name;
    cfg.vnets = 1;
    cfg.vcsPerVnet = vcs_per_vnet;
    cfg.vcDepth = 5;
    cfg.maxPacketSize = 5;
    cfg.scheme = DeadlockScheme::Spin;
    return cfg;
}

} // namespace

std::uint64_t
deriveCellSeed(std::uint64_t seed_base, const std::string &preset,
               Pattern pattern, double rate, std::uint64_t seed_entry)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    h = fnv1a(h, preset);
    h = fnv1a(h, toString(pattern));
    h = fnv1a(h, rateText(rate));
    h ^= splitmix64(seed_entry);
    h ^= splitmix64(seed_base + 0x5851f42d4c957f2dull);
    const std::uint64_t s = splitmix64(h);
    return s ? s : 1; // a zero seed is legal but keep it distinctive
}

const std::vector<ConfigPreset> &
presetRegistry()
{
    static const std::vector<ConfigPreset> registry = [] {
        std::vector<ConfigPreset> all;
        for (auto &&group : {meshPresets3Vc(), meshPresets1Vc(),
                             dragonflyPresets3Vc(), dragonflyPresets1Vc()})
            for (const ConfigPreset &p : group)
                all.push_back(p);
        // The Fig. 9 spin-count sweeps run single-vnet routers.
        all.push_back({"MinAd_1vnet_1VC_SPIN",
                       vnet1Cfg("MinAd_1vnet_1VC_SPIN", 1),
                       RoutingKind::MinimalAdaptive});
        all.push_back({"MinAd_1vnet_3VC_SPIN",
                       vnet1Cfg("MinAd_1vnet_3VC_SPIN", 3),
                       RoutingKind::MinimalAdaptive});
        all.push_back({"UGAL_1vnet_3VC_SPIN",
                       vnet1Cfg("UGAL_1vnet_3VC_SPIN", 3),
                       RoutingKind::UgalSpin});
        return all;
    }();
    return registry;
}

const ConfigPreset *
findPreset(const std::string &name)
{
    for (const ConfigPreset &p : presetRegistry()) {
        if (p.name == name)
            return &p;
    }
    return nullptr;
}

std::shared_ptr<const Topology>
makeTopologyByName(const std::string &name, std::string &err)
{
    int x = 0, y = 0;
    char tail = 0;
    if (std::sscanf(name.c_str(), "mesh%dx%d%c", &x, &y, &tail) == 2 &&
        x >= 2 && y >= 2) {
        return std::make_shared<Topology>(makeMesh(x, y));
    }
    if (std::sscanf(name.c_str(), "torus%dx%d%c", &x, &y, &tail) == 2 &&
        x >= 2 && y >= 2) {
        return std::make_shared<Topology>(makeTorus(x, y));
    }
    if (std::sscanf(name.c_str(), "ring%d%c", &x, &tail) == 1 && x >= 2) {
        return std::make_shared<Topology>(makeRing(x));
    }
    if (name == "dragonfly") {
        return std::make_shared<Topology>(makePaperDragonfly());
    }
    err = "unknown topology '" + name +
          "' (want mesh<X>x<Y>, torus<X>x<Y>, ring<N>, or dragonfly)";
    return nullptr;
}

bool
patternFromString(const std::string &text, Pattern &out)
{
    std::string norm = text;
    for (char &c : norm) {
        if (c == '_')
            c = '-';
    }
    for (const Pattern p :
         {Pattern::UniformRandom, Pattern::BitComplement,
          Pattern::Transpose, Pattern::Tornado, Pattern::BitReverse,
          Pattern::BitRotation, Pattern::Shuffle, Pattern::Neighbor}) {
        if (toString(p) == norm) {
            out = p;
            return true;
        }
    }
    return false;
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

namespace
{

bool
wantString(const obs::JsonValue &doc, const char *key, std::string &out,
           std::string &err, bool required)
{
    const obs::JsonValue *v = doc.find(key);
    if (!v) {
        if (required)
            err = std::string("spec: missing required key '") + key + "'";
        return !required;
    }
    if (!v->isString()) {
        err = std::string("spec: '") + key + "' must be a string";
        return false;
    }
    out = v->asString();
    return true;
}

bool
wantNumber(const obs::JsonValue &doc, const char *key, double &out,
           std::string &err)
{
    const obs::JsonValue *v = doc.find(key);
    if (!v)
        return true;
    if (!v->isNumber()) {
        err = std::string("spec: '") + key + "' must be a number";
        return false;
    }
    out = v->asNumber();
    return true;
}

bool
wantStringArray(const obs::JsonValue &doc, const char *key,
                std::vector<std::string> &out, std::string &err)
{
    const obs::JsonValue *v = doc.find(key);
    if (!v) {
        err = std::string("spec: missing required key '") + key + "'";
        return false;
    }
    if (!v->isArray() || v->size() == 0) {
        err = std::string("spec: '") + key +
              "' must be a non-empty array of strings";
        return false;
    }
    out.clear();
    for (std::size_t i = 0; i < v->size(); ++i) {
        if (!v->at(i).isString()) {
            err = std::string("spec: '") + key +
                  "' must contain only strings";
            return false;
        }
        out.push_back(v->at(i).asString());
    }
    return true;
}

} // namespace

bool
SweepSpec::fromJson(const obs::JsonValue &doc, SweepSpec &out,
                    std::string &err)
{
    if (!doc.isObject()) {
        err = "spec: top-level document must be a JSON object";
        return false;
    }
    SweepSpec s;
    if (!wantString(doc, "name", s.name, err, true))
        return false;
    if (!wantString(doc, "topology", s.topology, err, true))
        return false;
    if (!wantStringArray(doc, "presets", s.presets, err))
        return false;

    std::vector<std::string> patternNames;
    if (!wantStringArray(doc, "patterns", patternNames, err))
        return false;
    s.patterns.clear();
    for (const std::string &pn : patternNames) {
        Pattern p;
        if (!patternFromString(pn, p)) {
            err = "spec: unknown pattern '" + pn + "'";
            return false;
        }
        s.patterns.push_back(p);
    }

    // rates: either an explicit array or a {lo, hi, points} ladder.
    const obs::JsonValue *rates = doc.find("rates");
    if (!rates) {
        err = "spec: missing required key 'rates'";
        return false;
    }
    s.rates.clear();
    if (rates->isArray() && rates->size() > 0) {
        for (std::size_t i = 0; i < rates->size(); ++i) {
            if (!rates->at(i).isNumber()) {
                err = "spec: 'rates' array must contain only numbers";
                return false;
            }
            s.rates.push_back(rates->at(i).asNumber());
        }
    } else if (rates->isObject()) {
        double lo = 0.0, hi = 0.0, points = 0.0;
        if (!wantNumber(*rates, "lo", lo, err) ||
            !wantNumber(*rates, "hi", hi, err) ||
            !wantNumber(*rates, "points", points, err)) {
            return false;
        }
        const int n = static_cast<int>(points);
        if (n < 1 || lo <= 0.0 || hi < lo) {
            err = "spec: rates ladder needs 0 < lo <= hi and points >= 1";
            return false;
        }
        if (n == 1) {
            s.rates.push_back(lo);
        } else {
            const double step = (hi - lo) / (n - 1);
            for (int i = 0; i < n; ++i)
                s.rates.push_back(lo + step * i);
        }
    } else {
        err = "spec: 'rates' must be a non-empty array or {lo,hi,points}";
        return false;
    }

    const obs::JsonValue *seeds = doc.find("seeds");
    if (seeds) {
        if (!seeds->isArray() || seeds->size() == 0) {
            err = "spec: 'seeds' must be a non-empty array of integers";
            return false;
        }
        s.seeds.clear();
        for (std::size_t i = 0; i < seeds->size(); ++i) {
            if (!seeds->at(i).isNumber()) {
                err = "spec: 'seeds' must contain only integers";
                return false;
            }
            s.seeds.push_back(seeds->at(i).asU64());
        }
    }

    const obs::JsonValue *faults = doc.find("faults");
    if (faults) {
        if (!faults->isArray() || faults->size() == 0) {
            err = "spec: 'faults' must be a non-empty array of "
                  "non-negative integers";
            return false;
        }
        s.faults.clear();
        for (std::size_t i = 0; i < faults->size(); ++i) {
            if (!faults->at(i).isNumber() ||
                faults->at(i).asNumber() < 0) {
                err = "spec: 'faults' must contain only non-negative "
                      "integers";
                return false;
            }
            s.faults.push_back(static_cast<int>(faults->at(i).asNumber()));
        }
    }

    const obs::JsonValue *rel = doc.find("reliability");
    if (rel) {
        if (!rel->isArray() || rel->size() == 0) {
            err = "spec: 'reliability' must be a non-empty array of "
                  "\"off\"/\"on\"";
            return false;
        }
        s.reliability.clear();
        for (std::size_t i = 0; i < rel->size(); ++i) {
            const obs::JsonValue &e = rel->at(i);
            if (e.isString() && e.asString() == "off") {
                s.reliability.push_back(false);
            } else if (e.isString() && e.asString() == "on") {
                s.reliability.push_back(true);
            } else {
                err = "spec: 'reliability' entries must be \"off\" or "
                      "\"on\"";
                return false;
            }
        }
    }

    double warmup = static_cast<double>(s.warmup);
    double measure = static_cast<double>(s.measure);
    double faultCycle = static_cast<double>(s.faultCycle);
    double seedBase = 0.0;
    if (!wantNumber(doc, "warmup", warmup, err) ||
        !wantNumber(doc, "measure", measure, err) ||
        !wantNumber(doc, "faultCycle", faultCycle, err) ||
        !wantNumber(doc, "latencyCap", s.latencyCap, err) ||
        !wantNumber(doc, "seedBase", seedBase, err)) {
        return false;
    }
    if (faultCycle < 0) {
        err = "spec: need faultCycle >= 0";
        return false;
    }
    s.faultCycle = static_cast<Cycle>(faultCycle);
    if (warmup < 0 || measure < 1) {
        err = "spec: need warmup >= 0 and measure >= 1";
        return false;
    }
    s.warmup = static_cast<Cycle>(warmup);
    s.measure = static_cast<Cycle>(measure);
    s.seedBase = static_cast<std::uint64_t>(seedBase);

    const std::string verr = s.validate();
    if (!verr.empty()) {
        err = verr;
        return false;
    }
    out = std::move(s);
    return true;
}

bool
SweepSpec::fromFile(const std::string &path, SweepSpec &out,
                    std::string &err)
{
    std::ifstream is(path);
    if (!is) {
        err = "cannot open spec file " + path;
        return false;
    }
    std::ostringstream text;
    text << is.rdbuf();
    std::string perr;
    const obs::JsonValue doc = obs::JsonValue::parse(text.str(), &perr);
    if (doc.isNull() && !perr.empty()) {
        err = path + ": " + perr;
        return false;
    }
    return fromJson(doc, out, err);
}

obs::JsonValue
SweepSpec::toJson() const
{
    using obs::JsonValue;
    JsonValue o = JsonValue::object();
    o.set("name", JsonValue(name));
    o.set("topology", JsonValue(topology));
    JsonValue ps = JsonValue::array();
    for (const std::string &p : presets)
        ps.push(JsonValue(p));
    o.set("presets", std::move(ps));
    JsonValue pats = JsonValue::array();
    for (const Pattern p : patterns)
        pats.push(JsonValue(toString(p)));
    o.set("patterns", std::move(pats));
    JsonValue rs = JsonValue::array();
    for (const double r : rates)
        rs.push(JsonValue(r));
    o.set("rates", std::move(rs));
    JsonValue ss = JsonValue::array();
    for (const std::uint64_t s : seeds)
        ss.push(JsonValue(s));
    o.set("seeds", std::move(ss));
    JsonValue fs = JsonValue::array();
    for (const int f : faults)
        fs.push(JsonValue(f));
    o.set("faults", std::move(fs));
    // Emitted only when non-default: the spec echo feeds the resume
    // fingerprint, and specs written before the dimension existed must
    // keep their caches valid.
    if (!(reliability.size() == 1 && !reliability[0])) {
        JsonValue rl = JsonValue::array();
        for (const bool b : reliability)
            rl.push(JsonValue(b ? "on" : "off"));
        o.set("reliability", std::move(rl));
    }
    o.set("faultCycle", JsonValue(faultCycle));
    o.set("warmup", JsonValue(warmup));
    o.set("measure", JsonValue(measure));
    o.set("latencyCap", JsonValue(latencyCap));
    o.set("seedBase", JsonValue(seedBase));
    return o;
}

std::string
SweepSpec::validate() const
{
    if (name.empty())
        return "spec: 'name' must be non-empty";
    std::string terr;
    if (!makeTopologyByName(topology, terr))
        return "spec: " + terr;
    if (presets.empty())
        return "spec: 'presets' must be non-empty";
    for (const std::string &p : presets) {
        if (!findPreset(p)) {
            std::string known;
            for (const ConfigPreset &r : presetRegistry())
                known += (known.empty() ? "" : ", ") + r.name;
            return "spec: unknown preset '" + p + "' (known: " + known +
                   ")";
        }
    }
    if (patterns.empty())
        return "spec: 'patterns' must be non-empty";
    if (rates.empty())
        return "spec: 'rates' must be non-empty";
    for (const double r : rates) {
        if (!(r > 0.0) || r > 1.0)
            return "spec: rates must be in (0, 1] flits/node/cycle";
    }
    if (seeds.empty())
        return "spec: 'seeds' must be non-empty";
    if (faults.empty())
        return "spec: 'faults' must be non-empty";
    for (const int f : faults) {
        if (f < 0)
            return "spec: fault counts must be >= 0";
    }
    if (reliability.empty())
        return "spec: 'reliability' must be non-empty";
    if (measure < 1)
        return "spec: need measure >= 1";
    return "";
}

std::vector<Cell>
SweepSpec::expand() const
{
    std::vector<Cell> cells;
    cells.reserve(presets.size() * patterns.size() * rates.size() *
                  seeds.size() * faults.size() * reliability.size());
    for (const std::string &preset : presets) {
        for (const Pattern pattern : patterns) {
            for (const double rate : rates) {
                for (const std::uint64_t seed : seeds) {
                    for (const int fc : faults) {
                      for (const bool rel : reliability) {
                        Cell c;
                        c.index = cells.size();
                        c.preset = preset;
                        c.pattern = pattern;
                        c.rate = rate;
                        c.seed = seed;
                        c.faultCount = fc;
                        c.reliability = rel;
                        c.netSeed = deriveCellSeed(seedBase, preset,
                                                   pattern, rate, seed);
                        std::string id = preset + "__" +
                                         toString(pattern) + "__r" +
                                         rateText(rate) + "__s" +
                                         std::to_string(seed);
                        if (fc > 0) {
                            // Fault cells get a distinct seed and id;
                            // fc == 0 keeps both byte-identical to the
                            // pre-dimension expansion.
                            c.netSeed ^= splitmix64(
                                0xfa0175ull +
                                static_cast<std::uint64_t>(fc));
                            if (c.netSeed == 0)
                                c.netSeed = 1;
                            id += "__f" + std::to_string(fc);
                        }
                        // Reliability keeps the netSeed: the protocol
                        // changes delivery, not the offered traffic, so
                        // on/off cells stay directly comparable. The id
                        // suffix keeps cell files disjoint.
                        if (rel)
                            id += "__rel";
                        for (char &ch : id) {
                            const bool ok =
                                (ch >= 'a' && ch <= 'z') ||
                                (ch >= 'A' && ch <= 'Z') ||
                                (ch >= '0' && ch <= '9') || ch == '_' ||
                                ch == '-';
                            if (!ok)
                                ch = '_';
                        }
                        c.id = std::move(id);
                        cells.push_back(std::move(c));
                      }
                    }
                }
            }
        }
    }
    return cells;
}

// ---------------------------------------------------------------------
// Built-in specs
// ---------------------------------------------------------------------

namespace
{

struct BuiltinSpecText
{
    const char *name;
    const char *json;
};

/**
 * The shipped campaigns. Kept as JSON text so the spec parser is the
 * single source of truth (and permanently dogfooded); EXPERIMENTS.md
 * documents each one's paper artifact.
 */
const BuiltinSpecText kBuiltins[] = {
    {"fig06",
     R"({"name": "fig06", "topology": "dragonfly",
         "presets": ["UGAL_3VC_Dally", "UGAL_3VC_SPIN",
                     "Minimal_1VC_SPIN", "FAvORS_NMin_1VC_SPIN"],
         "patterns": ["uniform-random", "bit-complement", "transpose",
                      "tornado", "neighbor"],
         "rates": {"lo": 0.02, "hi": 0.32, "points": 6},
         "warmup": 1200, "measure": 2000, "latencyCap": 600.0})"},
    {"fig07",
     R"({"name": "fig07", "topology": "mesh8x8",
         "presets": ["WestFirst_3VC", "EscapeVC_3VC", "StaticBubble_3VC",
                     "MinAdaptive_3VC_SPIN", "WestFirst_1VC",
                     "FAvORS_Min_1VC_SPIN"],
         "patterns": ["uniform-random", "transpose", "bit-reverse",
                      "bit-rotation", "tornado"],
         "rates": {"lo": 0.02, "hi": 0.62, "points": 11},
         "warmup": 2000, "measure": 4000, "latencyCap": 400.0})"},
    {"fig08b",
     R"({"name": "fig08b", "topology": "mesh8x8",
         "presets": ["MinAdaptive_3VC_SPIN"],
         "patterns": ["uniform-random"],
         "rates": [0.01, 0.2, 0.5],
         "warmup": 2000, "measure": 10000, "latencyCap": 400.0})"},
    {"fig09-mesh",
     R"({"name": "fig09-mesh", "topology": "mesh8x8",
         "presets": ["MinAd_1vnet_1VC_SPIN", "MinAd_1vnet_3VC_SPIN"],
         "patterns": ["uniform-random"],
         "rates": [0.05, 0.15, 0.25, 0.35, 0.45],
         "warmup": 0, "measure": 20000, "latencyCap": 1e9})"},
    {"fig09-dragonfly",
     R"({"name": "fig09-dragonfly", "topology": "dragonfly",
         "presets": ["MinAd_1vnet_1VC_SPIN", "UGAL_1vnet_3VC_SPIN"],
         "patterns": ["bit-complement"],
         "rates": [0.05, 0.15, 0.25],
         "warmup": 0, "measure": 6000, "latencyCap": 1e9})"},
    // Reduced spec: the CI smoke gate and the README quickstart. Biased
    // toward at-and-below-knee loads where the idle-router fast path
    // matters; one deep-saturation point keeps SPIN recovery covered.
    {"ci-smoke",
     R"({"name": "ci-smoke", "topology": "mesh8x8",
         "presets": ["WestFirst_3VC", "MinAdaptive_3VC_SPIN",
                     "FAvORS_Min_1VC_SPIN"],
         "patterns": ["uniform-random", "transpose"],
         "rates": [0.02, 0.10, 0.18, 0.26, 0.34],
         "warmup": 300, "measure": 700, "latencyCap": 400.0})"},
    // Fault-dimension smoke: every cell runs once intact and once with
    // 2 and 4 random link failures injected mid-warmup. Two seeds so
    // CI exercises distinct degraded topologies each run.
    {"ci-faults",
     R"({"name": "ci-faults", "topology": "mesh8x8",
         "presets": ["WestFirst_3VC", "MinAdaptive_3VC_SPIN"],
         "patterns": ["uniform-random"],
         "rates": [0.05, 0.15],
         "seeds": [1, 2],
         "faults": [0, 2, 4], "faultCycle": 200,
         "warmup": 300, "measure": 700, "latencyCap": 400.0})"},
    // Thread-scaling gate: one large-topology cell (1024 routers, the
    // size docs/SCALING.md quotes speedups for). CI runs it twice,
    // --threads 1 and --threads 4, and diffs the aggregates; a perf
    // row lands in BENCH_sweep.json via micro_router as well.
    {"scaling-torus32",
     R"({"name": "scaling-torus32", "topology": "torus32x32",
         "presets": ["MinAdaptive_3VC_SPIN"],
         "patterns": ["uniform-random"],
         "rates": [0.10, 0.30],
         "warmup": 200, "measure": 600, "latencyCap": 1e9})"},
};

} // namespace

std::vector<std::string>
builtinSpecNames()
{
    std::vector<std::string> names;
    for (const BuiltinSpecText &b : kBuiltins)
        names.push_back(b.name);
    return names;
}

bool
builtinSpec(const std::string &name, SweepSpec &out)
{
    for (const BuiltinSpecText &b : kBuiltins) {
        if (name == b.name) {
            std::string perr;
            const obs::JsonValue doc =
                obs::JsonValue::parse(b.json, &perr);
            SPIN_ASSERT(!doc.isNull(), "builtin spec ", b.name,
                        " does not parse: ", perr);
            std::string serr;
            const bool ok = SweepSpec::fromJson(doc, out, serr);
            SPIN_ASSERT(ok, "builtin spec ", b.name, " invalid: ", serr);
            return true;
        }
    }
    return false;
}

} // namespace spin::exp
