/**
 * @file
 * Multi-threaded experiment-campaign runner.
 *
 * Every cell of a SweepSpec is an independent simulation: one Network,
 * one injector, a warmup window and a measurement window. Workers pull
 * cells from a shared counter; because each cell's RNG seed is derived
 * from its coordinates alone (SweepSpec), the aggregated results are
 * bit-identical for any worker count -- aggregation always walks cells
 * in expansion order, and wall-clock timing lives outside the
 * deterministic document.
 *
 * Resume: with a cell directory configured, each finished cell is
 * written to `<dir>/<cell-id>.json` (atomically, via rename). A later
 * run of the same spec with resume enabled reloads those files instead
 * of re-simulating; mixing cached and fresh cells cannot change the
 * aggregate because cached results are themselves the deterministic
 * per-cell documents.
 */

#ifndef SPINNOC_EXP_CAMPAIGN_HH
#define SPINNOC_EXP_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exp/SweepSpec.hh"
#include "fault/FaultSchedule.hh"
#include "obs/Json.hh"
#include "obs/Profiler.hh"

namespace spin::exp
{

/** Runner knobs (everything outside the deterministic spec). */
struct CampaignOptions
{
    /** Worker threads pulling whole cells; clamped to [1, 64].
     *  1 runs inline. */
    int jobs = 1;
    /**
     * Worker threads inside each cell's Network::step() (spin_sweep
     * --threads; docs/SCALING.md). Orthogonal to `jobs`: jobs spreads
     * cells across cores, threads spreads one simulation. Results are
     * bit-identical for any value; the resume fingerprint still folds
     * a non-default value in, so caches produced under different
     * intra-cell parallelism are never silently mixed.
     */
    int threads = 1;
    /** Per-cell result directory; empty disables cell files + resume. */
    std::string cellDir;
    /** Reuse existing per-cell files instead of re-simulating. */
    bool resume = false;
    /** Progress lines on stderr ("[12/30] cell ..."). */
    bool progress = false;
    /**
     * Fixed fault schedule attached to every cell's network (e.g. from
     * spin_sweep --faults). Applied in addition to the spec's own
     * random-failure dimension; identical for every cell, so the
     * aggregate stays bit-identical for any -j.
     */
    fault::FaultSchedule faultSchedule;
    /**
     * Combined spin-metrics/v2 JSONL path; empty disables per-cell
     * metrics. Every simulated cell captures its windowed metrics into
     * a memory buffer (records tagged with the cell id); after the
     * workers join, the buffers are concatenated in expansion order, so
     * the file is bit-identical for any -j. Cells reloaded from the
     * resume cache contribute no records.
     */
    std::string metricsPath;
    /** Metrics window length in cycles. */
    Cycle metricsInterval = 256;
    /**
     * Audit the runtime invariants every N cycles in every simulated
     * cell (spin_sweep --audit N); 0 disables. A violation aborts the
     * campaign with the spin-audit/v1 report written next to the cell
     * file (see CellCapture::auditReportPath).
     */
    Cycle auditInterval = 0;
    /**
     * Single-line live progress meter on stderr (cells done/total,
     * cells/sec, ETA, worker utilization), redrawn a few times per
     * second. Meant for TTYs; `progress` is the log-friendly variant.
     */
    bool live = false;
    /** Attribute wall-clock time to step() phases in every simulated
     *  cell; totals aggregate into Campaign::profile(). */
    bool profile = false;
    /**
     * Per-cell wall-clock watchdog in seconds (spin_sweep
     * --wall-limit); 0 disables. A cell that overruns dumps its
     * telemetry (including NIC retransmit state) next to the cell file
     * and fails the campaign fast instead of hanging the worker pool.
     */
    std::uint64_t wallLimitSeconds = 0;
};

/** Wall-clock accounting of one run() (not part of the results). */
struct CampaignPerf
{
    double wallSeconds = 0.0;
    std::size_t cells = 0;          //!< total cells in the spec
    std::size_t cellsSimulated = 0; //!< actually run this time
    std::size_t cellsCached = 0;    //!< reloaded from the cell dir
    std::uint64_t cyclesSimulated = 0;

    double
    cellsPerSec() const
    {
        return wallSeconds > 0 ? cellsSimulated / wallSeconds : 0.0;
    }
    double
    cyclesPerSec() const
    {
        return wallSeconds > 0 ? cyclesSimulated / wallSeconds : 0.0;
    }

    obs::JsonValue toJson() const;
};

/** Optional per-cell instrumentation for Campaign::runCell. */
struct CellCapture
{
    /** Metrics window length; used when metricsOut is set. */
    Cycle metricsInterval = 256;
    /** When non-null, receives the cell's spin-metrics/v2 lines. */
    std::vector<std::string> *metricsOut = nullptr;
    /** When non-null, the cell runs profiled and its phase totals are
     *  merged in. */
    obs::PhaseProfiler *profileOut = nullptr;
    /**
     * Run the runtime invariant auditor (deadlock/Invariants.hh) every
     * N cycles; 0 disables. The first violation fails the cell fast:
     * the spin-audit/v1 report is written to auditReportPath (when
     * set) and the cell throws FatalError.
     */
    Cycle auditInterval = 0;
    /** Destination for the failure report; empty keeps it in the
     *  exception message only. */
    std::string auditReportPath;
    /** Threads inside the cell's Network::step()
     *  (CampaignOptions::threads). */
    int threads = 1;
    /** Wall-clock budget for this cell in seconds; 0 disables
     *  (CampaignOptions::wallLimitSeconds). On overrun the cell writes
     *  its telemetry to wallReportPath (when set) and throws. */
    std::uint64_t wallLimitSeconds = 0;
    /** Destination for the overrun telemetry dump; empty keeps the
     *  diagnosis in the exception message only. */
    std::string wallReportPath;
};

/** See file comment. */
class Campaign
{
  public:
    Campaign(SweepSpec spec, CampaignOptions opt);

    /**
     * Run (or resume) the campaign and return the aggregated results
     * document: {schema, spec, cells[], series[]}. Deterministic for a
     * given spec -- independent of jobs, resume state, and machine.
     * Throws FatalError when any cell fails.
     */
    obs::JsonValue run();

    /** Wall-clock accounting of the last run(). */
    const CampaignPerf &perf() const { return perf_; }

    /** Aggregated phase profile of the last run() (profile option;
     *  zero cycles when it was off). Not part of the results. */
    const obs::PhaseProfiler &profile() const { return profile_; }

    /** Simulate one cell in isolation (used by run() and the tests).
     *  @p extra_faults, when non-null, is attached on top of the cell's
     *  own fault dimension. */
    static obs::JsonValue
    runCell(const SweepSpec &spec, const Cell &cell,
            const std::shared_ptr<const Topology> &topo,
            const fault::FaultSchedule *extra_faults = nullptr,
            const CellCapture &capture = {});

  private:
    SweepSpec spec_;
    CampaignOptions opt_;
    CampaignPerf perf_;
    obs::PhaseProfiler profile_;

    std::string cellPath(const Cell &cell) const;
    /** Load a cached cell result; Null when absent or invalid. */
    obs::JsonValue loadCached(const Cell &cell) const;
    bool storeCell(const Cell &cell, const obs::JsonValue &result) const;
};

} // namespace spin::exp

#endif // SPINNOC_EXP_CAMPAIGN_HH
