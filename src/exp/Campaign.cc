#include "exp/Campaign.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include <cmath>

#include "common/Logging.hh"
#include "deadlock/Invariants.hh"
#include "fault/FaultInjector.hh"
#include "fault/FaultSchedule.hh"
#include "network/Network.hh"
#include "obs/Metrics.hh"
#include "traffic/SyntheticInjector.hh"

namespace spin::exp
{

namespace
{

/** Spec fingerprint stamped into cell files to invalidate stale caches.
 *  A fixed fault schedule changes every cell's behaviour, so it is part
 *  of the fingerprint even though it lives outside the spec. */
std::string
specFingerprint(const SweepSpec &spec, const fault::FaultSchedule &faults,
                int threads)
{
    std::string text = spec.toJson().dump(0);
    if (!faults.empty())
        text += faults.toJson().dump(0);
    // Intra-cell threading cannot change results (docs/SCALING.md),
    // but mixing caches across thread counts would mask a determinism
    // regression, so a non-default count taints the fingerprint. The
    // default stays unfolded to keep existing caches valid.
    if (threads != 1)
        text += "threads=" + std::to_string(threads);
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

} // namespace

obs::JsonValue
CampaignPerf::toJson() const
{
    using obs::JsonValue;
    JsonValue o = JsonValue::object();
    o.set("wallSeconds", JsonValue(wallSeconds));
    o.set("cells", JsonValue(static_cast<std::uint64_t>(cells)));
    o.set("cellsSimulated",
          JsonValue(static_cast<std::uint64_t>(cellsSimulated)));
    o.set("cellsCached",
          JsonValue(static_cast<std::uint64_t>(cellsCached)));
    o.set("cyclesSimulated", JsonValue(cyclesSimulated));
    o.set("cellsPerSec", JsonValue(cellsPerSec()));
    o.set("cyclesPerSec", JsonValue(cyclesPerSec()));
    return o;
}

Campaign::Campaign(SweepSpec spec, CampaignOptions opt)
    : spec_(std::move(spec)), opt_(std::move(opt))
{
    const std::string verr = spec_.validate();
    if (!verr.empty())
        SPIN_FATAL(verr);
    if (opt_.jobs < 1)
        opt_.jobs = 1;
    if (opt_.jobs > 64)
        opt_.jobs = 64;
    if (opt_.threads < 1)
        opt_.threads = 1;
    if (opt_.threads > 64)
        opt_.threads = 64;
}

obs::JsonValue
Campaign::runCell(const SweepSpec &spec, const Cell &cell,
                  const std::shared_ptr<const Topology> &topo,
                  const fault::FaultSchedule *extra_faults,
                  const CellCapture &capture)
{
    const ConfigPreset *reg = findPreset(cell.preset);
    SPIN_ASSERT(reg, "cell references unknown preset ", cell.preset);
    ConfigPreset preset = *reg;
    preset.cfg.seed = cell.netSeed;
    preset.cfg.threads = capture.threads > 0 ? capture.threads : 1;
    // The reliability dimension toggles the protocol with its default
    // knobs; per-knob sweeps go through dedicated specs/presets.
    preset.cfg.reliability.enabled = cell.reliability;

    auto net = preset.build(topo);
    InjectorConfig icfg;
    icfg.injectionRate = cell.rate;
    icfg.seed = cell.netSeed + 1;
    SyntheticInjector inj(*net, cell.pattern, icfg);

    fault::FaultSchedule faults;
    if (extra_faults)
        faults = *extra_faults;
    if (cell.faultCount > 0) {
        // The schedule seed derives from the cell seed alone, so a cell
        // is bit-identical however the campaign is parallelized.
        const fault::FaultSchedule dim =
            fault::FaultSchedule::randomLinkFailures(
                cell.faultCount, cell.netSeed + 2, spec.faultCycle);
        faults.events.insert(faults.events.end(), dim.events.begin(),
                             dim.events.end());
    }
    if (!faults.empty())
        net->attachFaults(std::move(faults));

    obs::MemoryMetricsSink *msink = nullptr;
    if (capture.metricsOut) {
        auto sink = std::make_unique<obs::MemoryMetricsSink>();
        msink = sink.get();
        obs::MetricsConfig mcfg;
        mcfg.interval =
            capture.metricsInterval > 0 ? capture.metricsInterval : 256;
        mcfg.label = cell.id;
        net->enableMetrics(mcfg, std::move(sink));
    }
    if (capture.profileOut)
        net->enableProfiler();

    // Fail-fast invariant audit (spin_sweep --audit N): the same
    // oracle the model checker uses per cycle, sampled every N cycles
    // of a full-scale run. The first violation writes the spin-audit/v1
    // report and aborts the cell.
    const auto maybeAudit = [&]() {
        if (capture.auditInterval == 0 ||
            net->now() % capture.auditInterval != 0) {
            return;
        }
        const AuditReport rep = auditNetwork(*net);
        if (rep.clean())
            return;
        obs::JsonValue doc = rep.toJson();
        doc.set("cell", obs::JsonValue(cell.id));
        doc.set("cycle", obs::JsonValue(net->now()));
        std::string where;
        if (!capture.auditReportPath.empty()) {
            std::ofstream os(capture.auditReportPath);
            os << doc.dump(2) << '\n';
            where = "; report: " + capture.auditReportPath;
        }
        SPIN_FATAL("invariant audit failed at cycle ", net->now(), " (",
                   rep.violations.size(), " violation(s): ",
                   rep.violations.front(), ")", where);
    };

    // Wall-clock watchdog (spin_sweep --wall-limit): sampled every
    // ~1024 cycles. A wedged cell dumps its telemetry -- including the
    // per-NIC retransmit queues, the first thing to read when the
    // reliability protocol livelocks -- and fails fast.
    const auto wallStart = std::chrono::steady_clock::now();
    std::uint64_t wallTicks = 0;
    const auto checkWall = [&]() {
        if (capture.wallLimitSeconds == 0 || (++wallTicks & 1023u) != 0)
            return;
        const auto secs =
            std::chrono::duration_cast<std::chrono::seconds>(
                std::chrono::steady_clock::now() - wallStart)
                .count();
        if (static_cast<std::uint64_t>(secs) < capture.wallLimitSeconds)
            return;
        obs::JsonValue doc = net->telemetryJson();
        obs::JsonValue retx = obs::JsonValue::array();
        for (int n = 0; n < net->numNodes(); ++n) {
            Nic &nic = net->nic(static_cast<NodeId>(n));
            if (nic.retxQueueLength() > 0)
                retx.push(nic.retxJson(net->now()));
        }
        doc.set("retx", std::move(retx));
        std::string where;
        if (!capture.wallReportPath.empty()) {
            std::ofstream os(capture.wallReportPath);
            os << doc.dump(2) << '\n';
            where = "; telemetry: " + capture.wallReportPath;
        }
        SPIN_FATAL("wall-clock limit of ", capture.wallLimitSeconds,
                   "s exceeded at cycle ", net->now(), where);
    };

    for (Cycle i = 0; i < spec.warmup; ++i) {
        inj.tick();
        net->step();
        maybeAudit();
        checkWall();
    }
    net->beginMeasurement();
    for (Cycle i = 0; i < spec.measure; ++i) {
        inj.tick();
        net->step();
        maybeAudit();
        checkWall();
    }

    if (msink) {
        net->metrics()->finish(net->now());
        *capture.metricsOut = msink->lines();
    }
    if (capture.profileOut)
        capture.profileOut->merge(*net->profiler());

    const double latency = net->stats().avgLatency();
    const double throughput =
        net->stats().throughput(net->numNodes(), net->now());
    const bool saturated =
        latency > spec.latencyCap || throughput < 0.9 * cell.rate;

    using obs::JsonValue;
    JsonValue c = JsonValue::object();
    c.set("cell", JsonValue(cell.id));
    c.set("index", JsonValue(static_cast<std::uint64_t>(cell.index)));
    c.set("preset", JsonValue(cell.preset));
    c.set("pattern", JsonValue(toString(cell.pattern)));
    c.set("rate", JsonValue(cell.rate));
    c.set("seed", JsonValue(cell.seed));
    c.set("netSeed", JsonValue(cell.netSeed));
    c.set("faults", JsonValue(cell.faultCount));
    // Key present only on reliability cells: off-cell documents stay
    // byte-identical to those written before the dimension existed.
    if (cell.reliability)
        c.set("reliability", JsonValue(true));
    if (const fault::FaultInjector *fi = net->faults())
        c.set("faultSchedule", fi->toJson());
    c.set("latency", JsonValue(latency));
    c.set("netLatency", JsonValue(net->stats().avgNetLatency()));
    c.set("throughput", JsonValue(throughput));
    c.set("saturated", JsonValue(saturated));
    c.set("stats", net->stats().toJson());

    const LinkUsage u = net->linkUsage();
    JsonValue lu = JsonValue::object();
    lu.set("flitCycles", JsonValue(u.flitCycles));
    lu.set("probeCycles", JsonValue(u.probeCycles));
    lu.set("moveCycles", JsonValue(u.moveCycles));
    lu.set("idleCycles", JsonValue(u.idleCycles));
    lu.set("totalCycles", JsonValue(u.totalCycles));
    c.set("linkUsage", std::move(lu));
    return c;
}

std::string
Campaign::cellPath(const Cell &cell) const
{
    return opt_.cellDir + "/" + cell.id + ".json";
}

obs::JsonValue
Campaign::loadCached(const Cell &cell) const
{
    std::ifstream is(cellPath(cell));
    if (!is)
        return {};
    std::ostringstream text;
    text << is.rdbuf();
    const obs::JsonValue doc = obs::JsonValue::parse(text.str());
    if (!doc.isObject())
        return {};
    const obs::JsonValue *id = doc.find("cell");
    const obs::JsonValue *fp = doc.find("specFingerprint");
    const obs::JsonValue *stats = doc.find("stats");
    if (!id || !id->isString() || id->asString() != cell.id || !fp ||
        !fp->isString() ||
        fp->asString() !=
            specFingerprint(spec_, opt_.faultSchedule, opt_.threads) ||
        !stats || !stats->isObject()) {
        return {};
    }
    return doc;
}

bool
Campaign::storeCell(const Cell &cell, const obs::JsonValue &result) const
{
    const std::string path = cellPath(cell);
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp);
        if (!os)
            return false;
        os << result.dump(2) << '\n';
        if (!os)
            return false;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    return !ec;
}

obs::JsonValue
Campaign::run()
{
    const auto t0 = std::chrono::steady_clock::now();
    perf_ = CampaignPerf{};

    std::string terr;
    const std::shared_ptr<const Topology> topo =
        makeTopologyByName(spec_.topology, terr);
    if (!topo)
        SPIN_FATAL(terr);

    const std::vector<Cell> cells = spec_.expand();
    perf_.cells = cells.size();
    std::vector<obs::JsonValue> results(cells.size());
    const std::string fingerprint =
        specFingerprint(spec_, opt_.faultSchedule, opt_.threads);
    const fault::FaultSchedule *extraFaults =
        opt_.faultSchedule.empty() ? nullptr : &opt_.faultSchedule;

    if (!opt_.cellDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opt_.cellDir, ec);
        if (ec)
            SPIN_FATAL("cannot create cell directory ", opt_.cellDir,
                       ": ", ec.message());
    }

    // Resume pass: reload finished cells; anything else gets simulated.
    std::vector<std::size_t> pending;
    pending.reserve(cells.size());
    for (const Cell &cell : cells) {
        if (opt_.resume && !opt_.cellDir.empty()) {
            obs::JsonValue cached = loadCached(cell);
            if (cached.isObject()) {
                cached.remove("specFingerprint"); // cache metadata
                results[cell.index] = std::move(cached);
                ++perf_.cellsCached;
                continue;
            }
        }
        pending.push_back(cell.index);
    }

    // Per-cell metrics buffers, indexed by expansion order. Workers
    // write disjoint slots; the combined file is assembled after the
    // join so it is bit-identical for any -j.
    const bool wantMetrics = !opt_.metricsPath.empty();
    std::vector<std::vector<std::string>> metricsLines(
        wantMetrics ? cells.size() : 0);

    profile_ = obs::PhaseProfiler{};

    std::atomic<std::size_t> next{0};
    std::atomic<std::uint64_t> cycles{0};
    std::atomic<std::size_t> done{0};
    std::atomic<int> busy{0};
    std::mutex errMutex;
    std::string firstError;
    std::mutex logMutex;
    std::mutex profMutex;

    const auto worker = [&]() {
        for (;;) {
            const std::size_t slot = next.fetch_add(1);
            if (slot >= pending.size())
                return;
            const Cell &cell = cells[pending[slot]];
            busy.fetch_add(1);
            try {
                CellCapture capture;
                capture.threads = opt_.threads;
                if (wantMetrics) {
                    capture.metricsInterval = opt_.metricsInterval;
                    capture.metricsOut = &metricsLines[cell.index];
                }
                if (opt_.auditInterval > 0) {
                    capture.auditInterval = opt_.auditInterval;
                    capture.auditReportPath =
                        opt_.cellDir.empty()
                            ? "spin-audit-violation.json"
                            : cellPath(cell) + ".audit.json";
                }
                if (opt_.wallLimitSeconds > 0) {
                    capture.wallLimitSeconds = opt_.wallLimitSeconds;
                    capture.wallReportPath =
                        opt_.cellDir.empty()
                            ? "spin-wall-limit.json"
                            : cellPath(cell) + ".wall.json";
                }
                obs::PhaseProfiler cellProfile;
                if (opt_.profile)
                    capture.profileOut = &cellProfile;
                obs::JsonValue r =
                    runCell(spec_, cell, topo, extraFaults, capture);
                if (opt_.profile) {
                    std::lock_guard<std::mutex> lock(profMutex);
                    profile_.merge(cellProfile);
                }
                // The fingerprint is cache metadata: it lands in the
                // cell file (loadCached validates against it) but
                // never in the aggregate, which must stay
                // bit-identical across knobs the fingerprint folds in
                // (e.g. --threads).
                r.set("specFingerprint", obs::JsonValue(fingerprint));
                if (!opt_.cellDir.empty() && !storeCell(cell, r)) {
                    std::lock_guard<std::mutex> lock(errMutex);
                    if (firstError.empty())
                        firstError =
                            "cannot write cell file " + cellPath(cell);
                }
                r.remove("specFingerprint");
                results[cell.index] = std::move(r);
                cycles.fetch_add(spec_.warmup + spec_.measure);
                const std::size_t n = done.fetch_add(1) + 1;
                busy.fetch_sub(1);
                if (opt_.progress) {
                    std::lock_guard<std::mutex> lock(logMutex);
                    std::fprintf(stderr, "[%zu/%zu] %s\n", n,
                                 pending.size(), cell.id.c_str());
                }
            } catch (const std::exception &e) {
                busy.fetch_sub(1);
                std::lock_guard<std::mutex> lock(errMutex);
                if (firstError.empty())
                    firstError = "cell " + cell.id + ": " + e.what();
                return;
            }
        }
    };

    const int jobs = static_cast<int>(
        std::min<std::size_t>(opt_.jobs, std::max<std::size_t>(
                                             pending.size(), 1)));

    // Live progress meter: one stderr line redrawn in place, fed only
    // by the atomics above, torn down before any result is used --
    // it can never affect the deterministic documents.
    std::atomic<bool> meterRun{opt_.live && !pending.empty()};
    std::thread meter;
    if (meterRun.load()) {
        meter = std::thread([&, jobs]() {
            const auto start = std::chrono::steady_clock::now();
            while (meterRun.load()) {
                const std::size_t d = done.load();
                const double secs =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
                const double rate = secs > 0 ? d / secs : 0.0;
                char eta[32];
                if (d == 0 || rate <= 0) {
                    std::snprintf(eta, sizeof(eta), "--:--");
                } else {
                    const long left = std::lround(
                        double(pending.size() - d) / rate);
                    std::snprintf(eta, sizeof(eta), "%02ld:%02ld",
                                  left / 60, left % 60);
                }
                {
                    std::lock_guard<std::mutex> lock(logMutex);
                    std::fprintf(stderr,
                                 "\r[%zu/%zu cells] %.1f cells/s | "
                                 "ETA %s | workers %d/%d busy   ",
                                 d, pending.size(), rate, eta,
                                 busy.load(), jobs);
                    std::fflush(stderr);
                }
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(200));
            }
            std::lock_guard<std::mutex> lock(logMutex);
            std::fprintf(stderr, "\r%78s\r", "");
            std::fflush(stderr);
        });
    }

    if (jobs <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (int j = 0; j < jobs; ++j)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }
    meterRun.store(false);
    if (meter.joinable())
        meter.join();
    if (!firstError.empty())
        SPIN_FATAL("campaign '", spec_.name, "' failed: ", firstError);

    perf_.cellsSimulated = pending.size();
    perf_.cyclesSimulated = cycles.load();

    // Combined metrics stream, cells concatenated in expansion order.
    if (wantMetrics) {
        const std::filesystem::path mpath(opt_.metricsPath);
        if (mpath.has_parent_path()) {
            std::error_code ec;
            std::filesystem::create_directories(mpath.parent_path(), ec);
        }
        std::ofstream os(opt_.metricsPath);
        if (!os)
            SPIN_FATAL("cannot write metrics file ", opt_.metricsPath);
        for (const Cell &cell : cells) {
            for (const std::string &line : metricsLines[cell.index])
                os << line << '\n';
        }
        if (!os)
            SPIN_FATAL("error writing metrics file ", opt_.metricsPath);
    }

    // ------------------------------------------------------------------
    // Deterministic aggregation: expansion order only, no wall clock.
    // ------------------------------------------------------------------
    using obs::JsonValue;
    JsonValue root = JsonValue::object();
    root.set("schema", JsonValue("spin-sweep/v1"));
    root.set("spec", spec_.toJson());

    JsonValue cellArr = JsonValue::array();
    for (const Cell &cell : cells) {
        SPIN_ASSERT(results[cell.index].isObject(),
                    "missing result for cell ", cell.id);
        cellArr.push(results[cell.index]); // copy; series built below
    }
    root.set("cells", std::move(cellArr));

    // One series per (preset, pattern, seed): the latency/throughput
    // curve plus its estimated saturation rate, mirroring
    // bench::SweepResult so figure tables can be printed from this.
    JsonValue series = JsonValue::array();
    for (const std::string &preset : spec_.presets) {
        for (const Pattern pattern : spec_.patterns) {
            for (const std::uint64_t seed : spec_.seeds) {
              for (const int fc : spec_.faults) {
               for (const bool rel : spec_.reliability) {
                JsonValue s = JsonValue::object();
                s.set("preset", JsonValue(preset));
                s.set("pattern", JsonValue(toString(pattern)));
                s.set("seed", JsonValue(seed));
                s.set("faults", JsonValue(fc));
                if (rel)
                    s.set("reliability", JsonValue(true));
                JsonValue points = JsonValue::array();
                double saturation = 0.0;
                for (const Cell &cell : cells) {
                    if (cell.preset != preset ||
                        cell.pattern != pattern || cell.seed != seed ||
                        cell.faultCount != fc ||
                        cell.reliability != rel) {
                        continue;
                    }
                    const JsonValue &r = results[cell.index];
                    JsonValue p = JsonValue::object();
                    p.set("rate", JsonValue(cell.rate));
                    p.set("latency", r["latency"]);
                    p.set("throughput", r["throughput"]);
                    p.set("saturated", r["saturated"]);
                    if (!r["saturated"].asBool())
                        saturation = std::max(saturation, cell.rate);
                    points.push(std::move(p));
                }
                s.set("points", std::move(points));
                s.set("saturationRate", JsonValue(saturation));
                series.push(std::move(s));
               }
              }
            }
        }
    }
    root.set("series", std::move(series));

    perf_.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    return root;
}

} // namespace spin::exp
