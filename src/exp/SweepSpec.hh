/**
 * @file
 * Declarative experiment-campaign specification.
 *
 * A sweep spec is the cross product
 *
 *     presets x patterns x rates x seeds
 *
 * over one topology: every combination is one *cell*, an independent
 * single-network simulation with its own deterministically derived RNG
 * seed. Specs are JSON documents (grammar in docs/SWEEP.md); the
 * paper's figure sweeps ship as built-in specs so
 * `spin_sweep --spec fig07` and `bench/fig07_mesh_perf` are the same
 * campaign.
 *
 * Determinism contract: a cell's seed depends only on the cell's
 * coordinates (preset name, pattern, rate, seed-list entry) and the
 * spec's seedBase -- never on worker count, execution order, or which
 * cells were resumed from disk. See docs/SWEEP.md.
 */

#ifndef SPINNOC_EXP_SWEEPSPEC_HH
#define SPINNOC_EXP_SWEEPSPEC_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/Types.hh"
#include "network/NetworkBuilder.hh"
#include "obs/Json.hh"
#include "topology/Topology.hh"
#include "traffic/TrafficPattern.hh"

namespace spin::exp
{

/** One fully expanded simulation: a point of the campaign product. */
struct Cell
{
    std::size_t index = 0; //!< position in the deterministic expansion
    std::string preset;    //!< registry name of the (config, routing) row
    Pattern pattern = Pattern::UniformRandom;
    double rate = 0.0;          //!< offered load, flits/node/cycle
    std::uint64_t seed = 1;     //!< the seed-list entry
    std::uint64_t netSeed = 1;  //!< derived per-cell network seed
    int faultCount = 0;         //!< random link failures to inject
    bool reliability = false;   //!< end-to-end reliable delivery on
    std::string id;             //!< unique, filesystem-safe cell name
};

/** See file comment. */
struct SweepSpec
{
    std::string name;
    std::string topology; //!< e.g. "mesh8x8", "torus4x4", "dragonfly"
    std::vector<std::string> presets;
    std::vector<Pattern> patterns;
    std::vector<double> rates;
    std::vector<std::uint64_t> seeds = {1};
    /**
     * Fault dimension: each entry is a count of random link failures
     * injected at faultCycle (0 = the fault-free baseline). A cell with
     * faultCount == 0 keeps the exact id and netSeed it had before the
     * dimension existed, so adding faults to a spec never perturbs its
     * baseline cells.
     */
    std::vector<int> faults = {0};
    /** Injection cycle for the fault dimension (measured from reset). */
    Cycle faultCycle = 1000;
    /**
     * Reliability dimension ("reliability": ["off", "on"]): each entry
     * toggles the end-to-end reliable-delivery protocol
     * (docs/FAULTS.md) for its cells. Off-cells keep the exact id,
     * netSeed, and spec echo they had before the dimension existed, so
     * adding "on" to a spec never perturbs its baseline cells or
     * invalidates their resume caches.
     */
    std::vector<bool> reliability = {false};
    Cycle warmup = 2000;
    Cycle measure = 4000;
    /** Latency above which a point counts as saturated. */
    double latencyCap = 400.0;
    /** Mixed into every cell seed; lets one spec rerun independently. */
    std::uint64_t seedBase = 0;

    /**
     * Parse a spec document. On error returns false and sets @p err;
     * the returned spec is validated (known topology, presets,
     * patterns; non-empty product).
     */
    static bool fromJson(const obs::JsonValue &doc, SweepSpec &out,
                         std::string &err);
    /** Parse a spec file (JSON). */
    static bool fromFile(const std::string &path, SweepSpec &out,
                         std::string &err);

    /** Echo of the spec (round-trips through fromJson). */
    obs::JsonValue toJson() const;

    /** Expand the product into cells, in deterministic order. */
    std::vector<Cell> expand() const;

    /** Validate against the registries. Empty string when ok. */
    std::string validate() const;
};

/// @name Registries
/// @{
/**
 * Every named (config, routing) row a spec may reference: the Table III
 * presets plus the vnet-1 rows Fig. 9 sweeps. Order is stable.
 */
const std::vector<ConfigPreset> &presetRegistry();
/** Find a registry preset by name; nullptr when absent. */
const ConfigPreset *findPreset(const std::string &name);

/**
 * Build a topology from its spec name: "mesh<X>x<Y>", "torus<X>x<Y>",
 * "ring<N>", or "dragonfly" (the paper's 1024-node p=4 a=8 h=4 g=32).
 * Returns nullptr with @p err set for unknown names.
 */
std::shared_ptr<const Topology> makeTopologyByName(const std::string &name,
                                                   std::string &err);

/** Parse a pattern name as printed by toString(Pattern). */
bool patternFromString(const std::string &text, Pattern &out);
/// @}

/// @name Built-in specs
/// @{
/** Names of the shipped campaign specs (paper figures + ci-smoke). */
std::vector<std::string> builtinSpecNames();
/** Load a built-in spec; false when @p name is not built in. */
bool builtinSpec(const std::string &name, SweepSpec &out);
/// @}

/**
 * The per-cell seed derivation (exposed for tests): a 64-bit FNV-1a /
 * splitmix64 mix of the cell coordinates and the spec seedBase.
 */
std::uint64_t deriveCellSeed(std::uint64_t seed_base,
                             const std::string &preset, Pattern pattern,
                             double rate, std::uint64_t seed_entry);

} // namespace spin::exp

#endif // SPINNOC_EXP_SWEEPSPEC_HH
