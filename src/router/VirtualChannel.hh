/**
 * @file
 * One virtual channel (buffer) at a router input port.
 *
 * Virtual cut-through: a VC holds flits of at most one packet at a time;
 * the buffer is at least one maximum-size packet deep, so a blocked
 * packet always resides entirely in its VC -- the property SPIN's freeze
 * and rotation rely on. Note the VC can be transiently *empty while
 * active* when a packet is cutting through (head already forwarded, body
 * still arriving).
 */

#ifndef SPINNOC_ROUTER_VIRTUALCHANNEL_HH
#define SPINNOC_ROUTER_VIRTUALCHANNEL_HH

#include <vector>

#include "common/Packet.hh"
#include "common/Types.hh"

namespace spin
{

/**
 * Input-side virtual channel with its routing request state.
 * The *request* is the output port the resident packet currently wants;
 * adaptive algorithms may re-target it every cycle while blocked. The
 * request is what SPIN's probes trace as a buffer dependency.
 */
class VirtualChannel
{
  public:
    /// @name Buffer
    /// @{
    bool empty() const { return count_ == 0; }
    int size() const { return static_cast<int>(count_); }
    const Flit &front() const { return buf_[head_]; }
    /** Packet owning the VC; nullptr when idle. */
    const PacketPtr &owner() const { return owner_; }
    /** True when every flit of the resident packet is buffered. */
    bool
    packetComplete() const
    {
        return owner_ && size() == owner_->sizeFlits &&
               front().isHead();
    }

    /** Append an arriving flit. */
    void pushFlit(Flit f, Cycle now);
    /** Remove and return the front flit. @pre !empty(). */
    Flit popFlit();
    /// @}

    /// @name State
    /// @{
    /** Active = owned by a packet in flight through this VC. */
    bool active() const { return active_; }
    /** Cycle the VC last became active. */
    Cycle activeSince() const { return activeSince_; }
    /** Cycle of the last forward progress (activation or a flit
     *  departure); drives SPIN's oldest-blocked-first detection. */
    Cycle lastProgress() const { return lastProgress_; }
    void noteProgress(Cycle now) { lastProgress_ = now; }
    /// @}

    /// @name Routing request (valid while a head flit is at the front)
    /// @{
    /** True once the request below is valid for the resident packet. */
    bool routeValid = false;
    /** Output port currently requested; kInvalidId when routeValid
     *  is false. Ejection is a regular (NIC) output port. */
    PortId request = kInvalidId;
    /** Downstream VC granted by VC allocation; kInvalidId until then.
     *  Stays valid for body/tail flits of the packet. */
    VcId grantedVc = kInvalidId;
    /// @}

    /// @name SPIN freeze state
    /// @{
    /** Frozen VCs are excluded from switch allocation. */
    bool frozen = false;
    /** Output port the freeze (move SM) committed the packet to. */
    PortId frozenOutport = kInvalidId;
    /// @}

  private:
    /**
     * Ring buffer over a flat vector (deques allocate a chunk per VC
     * and scatter flits; VC buffers are small and hot). Capacity grows
     * geometrically and is retained across packets.
     */
    std::vector<Flit> buf_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    PacketPtr owner_;
    bool active_ = false;
    Cycle activeSince_ = 0;
    Cycle lastProgress_ = 0;

    void grow();
};

} // namespace spin

#endif // SPINNOC_ROUTER_VIRTUALCHANNEL_HH
