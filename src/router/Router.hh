/**
 * @file
 * One-cycle virtual-cut-through router.
 *
 * Pipeline model (matching Garnet's 1-cycle router that the paper
 * simulates): flits arriving at cycle t are eligible for route compute,
 * VC allocation and switch allocation at cycle t+1 and traverse the link
 * the same cycle, arriving downstream at t+1+L.
 *
 * The router exposes the hooks SPIN needs: per-VC requested output ports
 * (buffer dependencies), freeze/unfreeze, and forced sends for the
 * synchronized rotation.
 */

#ifndef SPINNOC_ROUTER_ROUTER_HH
#define SPINNOC_ROUTER_ROUTER_HH

#include <memory>
#include <vector>

#include "common/Config.hh"
#include "common/Packet.hh"
#include "common/Random.hh"
#include "common/Types.hh"
#include "network/Link.hh"
#include "router/InputUnit.hh"
#include "router/OutputUnit.hh"

namespace spin
{

class Network;
class SpinUnit;

namespace fault
{
class FaultInjector;
}

/** See file comment. */
class Router
{
  public:
    Router(Network &net, RouterId id);
    ~Router();

    Router(const Router &) = delete;
    Router &operator=(const Router &) = delete;

    RouterId id() const { return id_; }
    int radix() const { return static_cast<int>(inputs_.size()); }

    InputUnit &input(PortId p) { return inputs_[p]; }
    const InputUnit &input(PortId p) const { return inputs_[p]; }
    OutputUnit &output(PortId p) { return outputs_[p]; }
    const OutputUnit &output(PortId p) const { return outputs_[p]; }

    /** True when @p p connects to a NIC. */
    bool isNicPort(PortId p) const { return nicPort_[p]; }

    /** The network this router belongs to. */
    Network &network() { return net_; }
    const Network &network() const { return net_; }

    /**
     * This router's private RNG stream (seeded from the network seed
     * and the router id). All stochastic routing decisions made *at*
     * this router -- adaptive tie-breaks, intermediate-node picks for
     * packets injected here -- draw from it, so the draws are
     * independent of the order other routers execute in and the
     * sharded step loop stays bit-deterministic for any thread count.
     * Mutable: select() sees a const Router but the draw is state.
     */
    Random &rng() const { return rng_; }

    /** SPIN per-router unit; nullptr unless scheme == Spin. */
    SpinUnit *spinUnit() { return spin_.get(); }
    const SpinUnit *spinUnit() const { return spin_.get(); }
    void setSpinUnit(std::unique_ptr<SpinUnit> u);

    /// @name Fault hooks (src/fault)
    /// @{
    /** Cache the network's injector (set by Network::attachFaults). */
    void setFaultInjector(fault::FaultInjector *f) { faults_ = f; }
    /** True once markDead() ran: the router accepts nothing. */
    bool dead() const { return dead_; }
    /**
     * Permanent router failure: purge every buffered flit (packets
     * whose tail is here are retired via Network::notifyLost; fragments
     * whose tail is still upstream are retired when the tail arrives
     * and is dropped), abort any SPIN state, and refuse all future
     * flits and credits. No upstream credits are returned -- upstream
     * output VCs pointing here stay allocated, which is the modeled
     * loss, and new routes avoid the router via the degraded tables.
     */
    void markDead(Cycle now);
    /// @}

    /// @name Per-cycle phases, called by Network::step()
    /// @{
    /** A flit arrived from the wire into (inport, vc). */
    void receiveFlit(PortId inport, VcId vc, Flit f);
    /** A credit arrived for downstream VC @p vc of @p outport. */
    void receiveCredit(PortId outport, VcId vc, bool is_free);
    /** Route compute + VC allocation for head packets. */
    void computeRoutes();
    /** Switch allocation + link traversal. */
    void allocateSwitch();
    /// @}

    /// @name Dependency queries (used by SPIN and the oracle detector)
    /// @{
    /**
     * Output port the packet in (inport, vc) is currently waiting on:
     * the frozen port when frozen, else the live request.
     * kInvalidId when idle or not yet routed.
     */
    PortId depRequest(PortId inport, VcId vc) const;
    /** True when that request is the ejection (NIC) port. */
    bool isEjectRequest(PortId inport, VcId vc) const;
    /// @}

    /**
     * SPIN rotation: force the complete packet in (inport, vc) out of
     * @p outport into downstream VC @p down_vc, bypassing allocation.
     * Handles credits, link busy accounting and routing hooks.
     *
     * @param refilled true when another rotating packet enters this VC
     *        in the same cycle (the normal closed-loop case); when
     *        false the final upstream credit carries the free signal so
     *        the upstream output unit releases the VC.
     */
    void forceSend(PortId inport, VcId vc, PortId outport, VcId down_vc,
                   bool refilled);

    /**
     * Static Bubble recovery: grant the reserved downstream VC
     * @p down_vc of @p outport to the blocked head in (inport, vc).
     */
    void grantReserved(PortId inport, VcId vc, PortId outport,
                       VcId down_vc);

    /**
     * Cycles any granted head VC sat blocked purely on credits.
     * Only accumulated while the network's samplers are enabled.
     */
    std::uint64_t creditStallCycles() const { return creditStalls_; }

    /**
     * Flits currently buffered in this router's input VCs. Zero means
     * computeRoutes()/allocateSwitch() are no-ops this cycle, which
     * Network::step() uses to skip idle routers.
     */
    int bufferedFlits() const { return *load_; }

    /** Flits buffered in input VCs belonging to @p vnet. Maintained
     *  incrementally next to the load slot, so the metrics gauges
     *  never walk the VC table. */
    std::uint64_t bufferedFlitsInVnet(VnetId vnet) const
    {
        return vnetLoad_[static_cast<std::size_t>(vnet)];
    }

    /** Switch-allocation round-robin pointer of @p outport. Part of the
     *  router's behavioral state, so state digests must include it. */
    PortId switchRrPointer(PortId outport) const
    {
        return outRr_[outport];
    }

  private:
    Network &net_;
    RouterId id_;
    std::vector<InputUnit> inputs_;
    std::vector<OutputUnit> outputs_;
    std::vector<bool> nicPort_;
    std::unique_ptr<SpinUnit> spin_;
    /** Network's fault injector, nullptr on fault-free runs. */
    fault::FaultInjector *faults_ = nullptr;
    /** See markDead(). */
    bool dead_ = false;

    /** See rng(). */
    mutable Random rng_;

    /** Per-outport round-robin pointer over input ports (SA stage 2). */
    std::vector<PortId> outRr_;

    /** Per-port wired links (nullptr for NIC/unwired ports), cached at
     *  construction -- the network's link table is fixed by then. */
    std::vector<Link *> outLink_;
    std::vector<Link *> inLink_;

    /** See creditStallCycles(). */
    std::uint64_t creditStalls_ = 0;

    /** Slot in the network's contiguous per-router load array (see
     *  bufferedFlits()); Network::step() scans that array directly so
     *  skipping idle routers touches no Router object. */
    int *load_;

    /** Per-vnet slice of *load_ (see bufferedFlitsInVnet()). Updated
     *  wherever load_ is, via vcVnet(). */
    std::vector<std::uint64_t> vnetLoad_;
    int vcsPerVnet_ = 1;
    VnetId vcVnet(VcId vcid) const { return vcid / vcsPerVnet_; }

    /**
     * Per-inport bitmask of VCs holding at least one flit (bit v set
     * <=> vc(v) non-empty). Lets route compute and switch allocation
     * visit occupied VCs only instead of scanning the whole VC table
     * every cycle; scan order over the set bits matches the full
     * scan's order, so allocation decisions are unchanged.
     */
    std::vector<std::uint64_t> occupied_;

    // Scratch buffers reused across cycles to avoid allocation churn.
    mutable std::vector<PortId> scratchPorts_;
    mutable std::vector<VcId> scratchVcs_;
    std::vector<LinkFlit> scratchPacket_;

    /** Compute/refresh the route request of one head VC. @return false
     *  when no surviving path to the target exists (caller purges). */
    bool routeVc(PortId inport, VcId vcid);
    /** Restrict scratchPorts_ to alive, degraded-distance-decreasing
     *  candidates (falling back to the degraded minimal tables).
     *  @return false when @p target is unreachable. */
    bool filterFaultyPorts(VirtualChannel &vc, Packet &pkt,
                           RouterId target);
    /** Retire the complete unroutable packet in (inport, vc): pop its
     *  flits, return credits, account it, drop it. Waits (no-op) until
     *  the whole packet has streamed into the VC. */
    void purgeUnroutable(PortId inport, VcId vcid);
    /** True when @p outport has an idle VC @p pkt may acquire. */
    bool hasIdleAllowedVc(const Packet &pkt, PortId outport) const;
    /** Try to acquire a downstream VC for a routed head. */
    void tryVcAllocation(PortId inport, VcId vcid);
    /** True when (inport,vc) can send a flit right now. Forced inline:
     *  it is the innermost probe of switch allocation. */
    [[gnu::always_inline]] inline bool
    readyToSend(PortId inport, VcId vcid, Cycle now) const;
    /** Move one flit out: pop, credits, link push, hooks. */
    void sendFlit(PortId inport, VcId vcid);
    /** Accumulate credit-stall telemetry (samplers enabled only). */
    void countCreditStalls(Cycle now);
    /** Send one credit upstream for a flit popped from (inport, vc). */
    void creditUpstream(PortId inport, VcId vcid, bool is_free);
};

} // namespace spin

#endif // SPINNOC_ROUTER_ROUTER_HH
