/**
 * @file
 * Input-side unit for one router input port: the VC array plus the
 * round-robin pointer used by the input stage of switch allocation.
 */

#ifndef SPINNOC_ROUTER_INPUTUNIT_HH
#define SPINNOC_ROUTER_INPUTUNIT_HH

#include <vector>

#include "common/Types.hh"
#include "router/VirtualChannel.hh"

namespace spin
{

/** VC array at one input port. */
class InputUnit
{
  public:
    /**
     * @param port this input port's id
     * @param from_nic true when fed by a NIC (injection port); such
     *        ports are excluded from SPIN (local buffers can never be
     *        part of a cyclic in-network dependency, Sec. IV-B)
     * @param num_vcs VCs at this port
     */
    InputUnit(PortId port, bool from_nic, int num_vcs);

    PortId port() const { return port_; }
    bool fromNic() const { return fromNic_; }
    int numVcs() const { return static_cast<int>(vcs_.size()); }

    VirtualChannel &vc(VcId v) { return vcs_[v]; }
    const VirtualChannel &vc(VcId v) const { return vcs_[v]; }

    /** True when every VC at the port is active (probe fork condition:
     *  a free VC here means upstream could still make progress). */
    bool allVcsActive() const;
    /** Same, restricted to VC indices [lo, hi] (one vnet's VCs). */
    bool allVcsActive(VcId lo, VcId hi) const;

    /** Round-robin pointer for SA input arbitration. */
    VcId rrPointer = 0;

  private:
    PortId port_;
    bool fromNic_;
    std::vector<VirtualChannel> vcs_;
};

} // namespace spin

#endif // SPINNOC_ROUTER_INPUTUNIT_HH
