#include "router/VirtualChannel.hh"

#include "common/Logging.hh"

namespace spin
{

void
VirtualChannel::pushFlit(const Flit &f, Cycle now)
{
    if (!active_) {
        SPIN_ASSERT(f.isHead(), "first flit into an idle VC must be a "
                    "head, got ", f.toString());
        SPIN_ASSERT(buf_.empty(), "idle VC with buffered flits");
        active_ = true;
        activeSince_ = now;
        lastProgress_ = now;
        owner_ = f.pkt;
    } else {
        SPIN_ASSERT(owner_ == f.pkt,
                    "VC interleaving two packets (VCT violation)");
    }
    buf_.push_back(f);
}

Flit
VirtualChannel::popFlit()
{
    SPIN_ASSERT(!buf_.empty(), "pop from empty VC");
    Flit f = buf_.front();
    buf_.pop_front();
    if (f.isTail()) {
        SPIN_ASSERT(buf_.empty(), "flits behind a tail in one VC");
        active_ = false;
        owner_.reset();
        routeValid = false;
        request = kInvalidId;
        grantedVc = kInvalidId;
        frozen = false;
        frozenOutport = kInvalidId;
    }
    return f;
}

} // namespace spin
