#include "router/VirtualChannel.hh"

#include <utility>

#include "common/Logging.hh"

namespace spin
{

void
VirtualChannel::grow()
{
    const std::size_t cap = buf_.size();
    std::vector<Flit> nb(cap < 4 ? 8 : cap * 2);
    for (std::size_t i = 0; i < count_; ++i)
        nb[i] = std::move(buf_[(head_ + i) % cap]);
    buf_ = std::move(nb);
    head_ = 0;
}

void
VirtualChannel::pushFlit(Flit f, Cycle now)
{
    if (!active_) {
        SPIN_ASSERT(f.isHead(), "first flit into an idle VC must be a "
                    "head, got ", f.toString());
        SPIN_ASSERT(count_ == 0, "idle VC with buffered flits");
        active_ = true;
        activeSince_ = now;
        lastProgress_ = now;
        owner_ = f.pkt;
    } else {
        SPIN_ASSERT(owner_ == f.pkt,
                    "VC interleaving two packets (VCT violation)");
    }
    if (count_ == buf_.size())
        grow();
    buf_[(head_ + count_) % buf_.size()] = std::move(f);
    ++count_;
}

Flit
VirtualChannel::popFlit()
{
    SPIN_ASSERT(count_ != 0, "pop from empty VC");
    Flit f = std::move(buf_[head_]);
    head_ = (head_ + 1) % buf_.size();
    --count_;
    if (f.isTail()) {
        SPIN_ASSERT(count_ == 0, "flits behind a tail in one VC");
        active_ = false;
        owner_.reset();
        routeValid = false;
        request = kInvalidId;
        grantedVc = kInvalidId;
        frozen = false;
        frozenOutport = kInvalidId;
    }
    return f;
}

} // namespace spin
