/**
 * @file
 * Output-side bookkeeping for one router output port: the upstream view
 * of the virtual channels at the downstream router's matching input port,
 * maintained through credit messages. Because links are point-to-point,
 * this unit is the sole allocator of those downstream VCs.
 */

#ifndef SPINNOC_ROUTER_OUTPUTUNIT_HH
#define SPINNOC_ROUTER_OUTPUTUNIT_HH

#include <limits>
#include <vector>

#include "common/Logging.hh"
#include "common/Types.hh"

namespace spin
{

/**
 * Downstream-VC state tracker and credit counter for one output port.
 * NIC (ejection) ports are modeled as always-free sinks: the paper's
 * NICs "eject flits without any stalls".
 */
class OutputUnit
{
  public:
    /**
     * @param port  this output port's id
     * @param to_nic true when the port ejects to a NIC
     * @param num_vcs VCs at the downstream input port
     * @param depth  downstream VC buffer depth in flits
     */
    OutputUnit(PortId port, bool to_nic, int num_vcs, int depth);

    PortId port() const { return port_; }
    bool toNic() const { return toNic_; }
    int numVcs() const { return static_cast<int>(vcs_.size()); }

    /** True when downstream VC @p vc is unallocated. */
    bool isIdle(VcId vc) const { return toNic_ || vcs_[vc].idle; }
    /** Free-slot count believed for downstream VC @p vc. */
    int
    credits(VcId vc) const
    {
        if (toNic_)
            return std::numeric_limits<int>::max() / 2;
        return vcs_[vc].credits;
    }
    /** Cycle the downstream VC last became active (for FAvORS t_active). */
    Cycle activeSince(VcId vc) const { return vcs_[vc].activeSince; }
    /** Packet holding the allocation of @p vc, 0 when idle. */
    PacketId ownerOf(VcId vc) const { return vcs_[vc].owner; }

    /** True when any VC in [lo, hi] is idle (NIC ports: always). */
    bool hasIdleVcIn(VcId lo, VcId hi) const;

    /**
     * Allocate the first idle VC from @p allowed to packet @p owner.
     * @return the granted VC, or kInvalidId when none is idle.
     */
    VcId allocate(const std::vector<VcId> &allowed, PacketId owner,
                  Cycle now);

    /** SPIN rotation: seize @p vc for @p owner regardless of state. */
    void forceAllocate(VcId vc, PacketId owner, Cycle now);

    /** A flit was sent into downstream VC @p vc. */
    void
    consumeCredit(VcId vc)
    {
        if (toNic_)
            return;
        DownVc &d = vcs_[vc];
        --d.credits;
        // Transiently negative only during a SPIN rotation, where the
        // vacating packet's credits are still in flight back to us.
        SPIN_ASSERT(d.credits >= -depth_, "credit underflow on vc ", vc);
    }

    /** Credit returned from downstream for @p vc. */
    void
    onCredit(VcId vc, bool is_free, Cycle now)
    {
        SPIN_ASSERT(!toNic_, "credits from a NIC port");
        DownVc &d = vcs_[vc];
        ++d.credits;
        SPIN_ASSERT(d.credits <= depth_, "credit overflow on vc ", vc);
        if (is_free) {
            SPIN_ASSERT(d.credits == depth_,
                        "free signal with outstanding credits on vc ",
                        vc);
            d.idle = true;
            d.owner = 0;
            d.activeSince = now;
        }
    }

    /** Total buffered flits downstream (UGAL congestion estimate). */
    int occupancy() const;

    /**
     * Minimum t_active over VCs in [lo, hi]: cycles the longest-idle...
     * more precisely the *least* number of cycles any allocated VC has
     * been active for, 0 when an idle VC exists (FAvORS Sec. V).
     */
    Cycle minActiveTime(VcId lo, VcId hi, Cycle now) const;

  private:
    struct DownVc
    {
        bool idle = true;
        int credits = 0;
        PacketId owner = 0;
        Cycle activeSince = 0;
    };

    PortId port_;
    bool toNic_;
    int depth_;
    std::vector<DownVc> vcs_;
};

} // namespace spin

#endif // SPINNOC_ROUTER_OUTPUTUNIT_HH
