#include "router/InputUnit.hh"

namespace spin
{

InputUnit::InputUnit(PortId port, bool from_nic, int num_vcs)
    : port_(port), fromNic_(from_nic)
{
    vcs_.resize(num_vcs);
}

bool
InputUnit::allVcsActive() const
{
    for (const auto &v : vcs_) {
        if (!v.active())
            return false;
    }
    return true;
}

bool
InputUnit::allVcsActive(VcId lo, VcId hi) const
{
    for (VcId v = lo; v <= hi; ++v) {
        if (!vcs_[v].active())
            return false;
    }
    return true;
}

} // namespace spin
