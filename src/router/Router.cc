#include "router/Router.hh"

#include <bit>

#include "common/Logging.hh"
#include "core/SpinUnit.hh"
#include "fault/FaultInjector.hh"
#include "network/Network.hh"
#include "obs/Tracer.hh"
#include "routing/RoutingAlgorithm.hh"
#include "routing/WestFirst.hh"

namespace spin
{

Router::Router(Network &net, RouterId id)
    : net_(net), id_(id),
      rng_(Random::streamSeed(net.config().seed,
                              static_cast<std::uint64_t>(id))),
      load_(&net.routerLoadSlot(id))
{
    const Topology &topo = net.topo();
    const NetworkConfig &cfg = net.config();
    vnetLoad_.assign(static_cast<std::size_t>(cfg.vnets), 0);
    vcsPerVnet_ = cfg.vcsPerVnet;
    const int radix = topo.radix(id);

    nicPort_.assign(radix, false);
    for (const NodeId n : topo.nodesAt(id))
        nicPort_[topo.portOfNode(n)] = true;

    inputs_.reserve(radix);
    outputs_.reserve(radix);
    for (PortId p = 0; p < radix; ++p) {
        inputs_.emplace_back(p, nicPort_[p], cfg.totalVcs());
        outputs_.emplace_back(p, nicPort_[p], cfg.totalVcs(), cfg.vcDepth);
    }
    outRr_.assign(radix, 0);
    SPIN_ASSERT(cfg.totalVcs() <= 64,
                "occupancy bitmask supports at most 64 VCs per port");
    SPIN_ASSERT(radix <= 64,
                "switch-allocation bitmasks support at most 64 ports");
    occupied_.assign(radix, 0);
    outLink_.reserve(radix);
    inLink_.reserve(radix);
    for (PortId p = 0; p < radix; ++p) {
        outLink_.push_back(net.outLinkOf(id, p));
        inLink_.push_back(net.inLinkOf(id, p));
    }
}

Router::~Router() = default;

void
Router::setSpinUnit(std::unique_ptr<SpinUnit> u)
{
    spin_ = std::move(u);
}

void
Router::receiveFlit(PortId inport, VcId vcid, Flit f)
{
    if (dead_) {
        // Committed packets drain into the failure and vanish; the
        // tail flit retires the packet (it is always at-or-upstream of
        // every other fragment, so this fires exactly once).
        ++net_.stats().flitsLostToFaults;
        if (f.isTail()) {
            ++net_.stats().packetsLostToFaults;
            net_.notifyLost(f.pkt);
        }
        return;
    }
    const Cycle now = net_.now();
    f.arrivedAt = now;
    inputs_[inport].vc(vcid).pushFlit(std::move(f), now);
    ++*load_;
    ++vnetLoad_[vcVnet(vcid)];
    occupied_[inport] |= std::uint64_t{1} << vcid;
    if (spin_ && !inputs_[inport].fromNic())
        spin_->onFlitArrival(inport, vcid);
}

void
Router::receiveCredit(PortId outport, VcId vcid, bool is_free)
{
    if (dead_)
        return;
    outputs_[outport].onCredit(vcid, is_free, net_.now());
}

void
Router::markDead(Cycle now)
{
    if (dead_)
        return;
    dead_ = true;
    for (PortId p = 0; p < radix(); ++p) {
        InputUnit &iu = inputs_[p];
        for (VcId v = 0; v < iu.numVcs(); ++v) {
            VirtualChannel &vc = iu.vc(v);
            while (!vc.empty()) {
                const Flit f = vc.popFlit();
                --*load_;
                --vnetLoad_[vcVnet(v)];
                ++net_.stats().flitsLostToFaults;
                if (f.isTail()) {
                    ++net_.stats().packetsLostToFaults;
                    net_.notifyLost(f.pkt);
                }
            }
        }
        occupied_[p] = 0;
    }
    if (spin_)
        spin_->abortForFault(now);
}

void
Router::computeRoutes()
{
    for (PortId inport = 0; inport < radix(); ++inport) {
        InputUnit &iu = inputs_[inport];
        // Walk occupied VCs in ascending order, like the full scan did.
        for (std::uint64_t m = occupied_[inport]; m != 0; m &= m - 1) {
            const VcId v = std::countr_zero(m);
            VirtualChannel &vc = iu.vc(v);
            if (!vc.active() || vc.frozen)
                continue;
            if (!vc.front().isHead())
                continue;
            if (vc.grantedVc != kInvalidId)
                continue; // committed; waiting only on switch/credits
            if (!routeVc(inport, v)) {
                purgeUnroutable(inport, v);
                continue;
            }
            tryVcAllocation(inport, v);
        }
    }
}

bool
Router::routeVc(PortId inport, VcId vcid)
{
    VirtualChannel &vc = inputs_[inport].vc(vcid);
    Packet &pkt = *vc.owner();

    PortId request;
    if (pkt.destRouter == id_) {
        request = net_.topo().portOfNode(pkt.dest);
    } else if (net_.config().scheme == DeadlockScheme::StaticBubble &&
               pkt.onEscape) {
        // Recovery packets drain on the reserved network via west-first.
        // Not fault-filtered: the escape ring's deadlock freedom rests
        // on the intact mesh, and spin_lint flags the degraded variant.
        SPIN_ASSERT(net_.topo().mesh.has_value(),
                    "static bubble escape requires a mesh");
        request = westFirstNextPort(*net_.topo().mesh, id_, pkt.destRouter);
    } else {
        if (pkt.intermediate != kInvalidId && !pkt.phaseTwo &&
            pkt.intermediate == id_) {
            pkt.phaseTwo = true;
        }
        const bool faulty = faults_ && faults_->anyPermanent();
        if (faulty && pkt.intermediate != kInvalidId && !pkt.phaseTwo &&
            faults_->degradedDistance(id_, pkt.intermediate) < 0) {
            // The phase-1 target died or got cut off: abandon the
            // detour and head straight for the destination.
            pkt.phaseTwo = true;
        }
        const RouterId target =
            (pkt.intermediate != kInvalidId && !pkt.phaseTwo)
            ? pkt.intermediate
            : pkt.destRouter;
        RoutingAlgorithm &algo = net_.routing();
        algo.candidates(pkt, *this, target, scratchPorts_);
        SPIN_ASSERT(!scratchPorts_.empty(), "routing produced no "
                    "candidates at router ", id_, " for ", pkt.toString());
        if (faulty && !filterFaultyPorts(vc, pkt, target))
            return false;
        request = algo.select(pkt, *this, scratchPorts_);

        // Request hysteresis: adaptive selection runs every cycle, but
        // a blocked head only re-targets a *different* port when that
        // port actually has a free allowed VC. This keeps the buffer
        // dependencies SPIN traces stable inside a deadlock (where no
        // port has free VCs and re-selection would be a coin flip)
        // without giving up any real adaptivity.
        if (vc.routeValid && request != vc.request &&
            !hasIdleAllowedVc(pkt, request)) {
            bool still_candidate = false;
            for (const PortId c : scratchPorts_)
                still_candidate |= c == vc.request;
            if (still_candidate)
                request = vc.request;
        }
    }

    vc.request = request;
    vc.routeValid = true;
    return true;
}

bool
Router::filterFaultyPorts(VirtualChannel &vc, Packet &pkt,
                          RouterId target)
{
    const int dh = faults_->degradedDistance(id_, target);
    if (dh < 0)
        return false; // no surviving path: unroutable

    // Keep only candidates whose link is alive AND strictly reduces
    // the degraded distance. The strict-decrease rule forfeits
    // non-minimal adaptivity under faults but guarantees progress
    // (no livelock between intact-table and degraded-table hops).
    const Topology &topo = net_.topo();
    std::size_t w = 0;
    for (const PortId c : scratchPorts_) {
        if (!faults_->outPortAlive(id_, c))
            continue;
        const LinkSpec *l = topo.outLink(id_, c);
        if (!l || faults_->degradedDistance(l->dst, target) != dh - 1)
            continue;
        scratchPorts_[w++] = c;
    }
    if (w != 0) {
        scratchPorts_.resize(w);
        return true;
    }

    // The algorithm's candidates all died or detour: fall back to the
    // degraded minimal tables (alive by construction, non-empty since
    // dh >= 1).
    const std::vector<PortId> &mp =
        faults_->degraded().minimalPorts(id_, target);
    SPIN_ASSERT(!mp.empty(), "degraded tables empty despite dh=", dh,
                " at router ", id_);
    scratchPorts_.assign(mp.begin(), mp.end());
    if (!vc.routeValid) {
        ++net_.stats().packetsRerouted;
        if (obs::Tracer *t = net_.trace()) {
            obs::TraceEvent e;
            e.cycle = net_.now();
            e.category = obs::kCatFault;
            e.name = "reroute";
            e.router = id_;
            e.packet = pkt.id;
            e.arg0 = target;
            t->record(e);
        }
    }
    return true;
}

void
Router::purgeUnroutable(PortId inport, VcId vcid)
{
    VirtualChannel &vc = inputs_[inport].vc(vcid);
    if (!vc.packetComplete())
        return; // VCT: wait until the whole packet streamed in
    const PacketPtr pkt = vc.owner();
    const Cycle now = net_.now();

    while (!vc.empty()) {
        vc.popFlit();
        --*load_;
        --vnetLoad_[vcVnet(vcid)];
        creditUpstream(inport, vcid, vc.empty());
    }
    occupied_[inport] &= ~(std::uint64_t{1} << vcid);

    if (spin_ && !inputs_[inport].fromNic())
        spin_->onFlitDeparture(inport, vcid);

    ++net_.stats().packetsUnroutable;
    net_.notifyLost(pkt);

    if (obs::Tracer *t = net_.trace()) {
        obs::TraceEvent e;
        e.cycle = now;
        e.category = obs::kCatFault;
        e.name = "packet_unroutable";
        e.router = id_;
        e.packet = pkt->id;
        e.port = inport;
        e.vc = vcid;
        t->record(e);
    }
}

bool
Router::hasIdleAllowedVc(const Packet &pkt, PortId outport) const
{
    const OutputUnit &out = outputs_[outport];
    if (out.toNic())
        return true;
    net_.routing().allowedVcs(pkt, *this, outport, scratchVcs_);
    applyVcReservation(net_, pkt, scratchVcs_);
    for (const VcId v : scratchVcs_) {
        if (out.isIdle(v))
            return true;
    }
    return false;
}

void
Router::tryVcAllocation(PortId inport, VcId vcid)
{
    VirtualChannel &vc = inputs_[inport].vc(vcid);
    if (!vc.routeValid || vc.grantedVc != kInvalidId)
        return;
    Packet &pkt = *vc.owner();
    OutputUnit &out = outputs_[vc.request];

    if (out.toNic()) {
        // Ejection: the NIC sinks flits without stalls; no VC needed.
        vc.grantedVc = 0;
        return;
    }

    RoutingAlgorithm &algo = net_.routing();
    if (!out.toNic() && !algo.admission(pkt, *this, inport, vc.request))
        return; // flow-control gate (e.g. bubble condition)
    if (net_.config().scheme == DeadlockScheme::StaticBubble &&
        pkt.onEscape) {
        scratchVcs_.clear();
        const int per = net_.config().vcsPerVnet;
        scratchVcs_.push_back(pkt.vnet * per + per - 1);
    } else {
        algo.allowedVcs(pkt, *this, vc.request, scratchVcs_);
        applyVcReservation(net_, pkt, scratchVcs_);
    }

    const VcId granted = out.allocate(scratchVcs_, pkt.id, net_.now());
    if (granted != kInvalidId) {
        vc.grantedVc = granted;
        algo.onVcGranted(pkt, *this, vc.request, granted);
        if (obs::Tracer *t = net_.trace())
            t->flit(net_.now(), "vc_alloc", id_, pkt, inport, vcid,
                    vc.request, granted);
    }
}

inline bool
Router::readyToSend(PortId inport, VcId vcid, Cycle now) const
{
    const VirtualChannel &vc = inputs_[inport].vc(vcid);
    if (vc.empty() || vc.frozen || !vc.routeValid ||
        vc.grantedVc == kInvalidId) {
        return false;
    }
    if (vc.front().arrivedAt >= now)
        return false; // one-cycle router: cannot leave the arrival cycle
    const OutputUnit &out = outputs_[vc.request];
    if (out.credits(vc.grantedVc) <= 0)
        return false;
    if (out.toNic())
        return true;
    const Link *l = outLink_[vc.request];
    SPIN_ASSERT(l, "granted route over unwired port ", vc.request,
                " at router ", id_);
    return l->freeForFlit(now);
}

void
Router::allocateSwitch()
{
    const Cycle now = net_.now();
    const int n = radix();

    if (net_.samplers())
        countCreditStalls(now);

    // Stage 1: one candidate VC per input port (round-robin). Only
    // occupied VCs can be ready, so probe the set bits of the
    // occupancy mask in round-robin order: bits >= rrPointer first
    // (ascending), then the wrap-around -- the same probe order the
    // full (rrPointer + k) % vcs scan visited non-empty VCs in.
    // scratchPorts_ holds the per-inport winner VC; entries without a
    // candMask bit are stale and never read.
    if (static_cast<int>(scratchPorts_.size()) < n)
        scratchPorts_.resize(n);
    std::uint64_t candMask = 0; // inports holding a candidate
    std::uint64_t reqMask = 0;  // outports requested by any candidate
    for (PortId inport = 0; inport < n; ++inport) {
        const std::uint64_t occ = occupied_[inport];
        if (occ == 0)
            continue;
        const int rr = inputs_[inport].rrPointer;
        std::uint64_t m = occ >> rr << rr; // bits >= rr, then wrap
        for (int half = 0; half < 2; ++half) {
            for (; m != 0; m &= m - 1) {
                const VcId v = std::countr_zero(m);
                if (readyToSend(inport, v, now)) {
                    scratchPorts_[inport] = v;
                    candMask |= std::uint64_t{1} << inport;
                    reqMask |= std::uint64_t{1}
                               << inputs_[inport].vc(v).request;
                    break;
                }
            }
            if ((candMask >> inport & 1) != 0)
                break;
            m = occ & ~(occ >> rr << rr); // the wrap-around half
        }
    }
    if (candMask == 0)
        return;

    // Stage 2: one input port per output port (round-robin). Outports
    // nobody requested cannot have a winner and are skipped outright.
    for (std::uint64_t om = reqMask; om != 0; om &= om - 1) {
        const PortId outport = std::countr_zero(om);
        PortId winner = kInvalidId;
        for (int k = 0; k < n; ++k) {
            const PortId inport = (outRr_[outport] + k) % n;
            if ((candMask >> inport & 1) != 0 &&
                inputs_[inport].vc(scratchPorts_[inport]).request ==
                    outport) {
                winner = inport;
                break;
            }
        }
        if (winner == kInvalidId)
            continue;
        const VcId v = scratchPorts_[winner];
        sendFlit(winner, v);
        candMask &= ~(std::uint64_t{1} << winner);
        inputs_[winner].rrPointer = (v + 1) % inputs_[winner].numVcs();
        outRr_[outport] = (winner + 1) % n;
        if (candMask == 0)
            return; // no remaining outport can have a winner
    }
}

void
Router::sendFlit(PortId inport, VcId vcid)
{
    const Cycle now = net_.now();
    VirtualChannel &vc = inputs_[inport].vc(vcid);
    const PortId outport = vc.request;
    const VcId dvc = vc.grantedVc;
    const PacketPtr pkt = vc.owner();

    vc.noteProgress(now);
    Flit f = vc.popFlit();
    --*load_;
    --vnetLoad_[vcVnet(vcid)];
    if (vc.empty())
        occupied_[inport] &= ~(std::uint64_t{1} << vcid);
    OutputUnit &out = outputs_[outport];
    out.consumeCredit(dvc);

    const bool isTail = f.isTail();
    const bool isHead = f.isHead();
    const int seq = f.seq;
    if (out.toNic()) {
        net_.nicAt(id_, outport).pushEject(now + 1, std::move(f));
    } else {
        Cycle extra = 0;
        if (faults_)
            extra = faults_->onFlitTraverse(
                net_.linkIndexOf(id_, outport), f, *pkt, now);
        outLink_[outport]->pushFlitDelayed(now, extra,
                                           LinkFlit{std::move(f), dvc});
    }

    creditUpstream(inport, vcid, isTail);

    if (spin_ && !inputs_[inport].fromNic())
        spin_->onFlitDeparture(inport, vcid);

    if (isHead && !out.toNic()) {
        ++pkt->hops;
        net_.routing().onHop(*pkt, *this, outport);
    }

    if (obs::Tracer *t = net_.trace()) {
        t->flit(now, "sa_grant", id_, *pkt, inport, vcid, outport, dvc);
        if (!out.toNic()) {
            obs::TraceEvent e;
            e.cycle = now;
            e.category = obs::kCatLink;
            e.name = "link_traverse";
            e.router = id_;
            e.packet = pkt->id;
            e.port = outport;
            e.vc = dvc;
            e.arg0 = net_.linkIndexOf(id_, outport);
            e.arg1 = seq;
            t->record(e);
        }
    }
}

void
Router::countCreditStalls(Cycle now)
{
    for (PortId inport = 0; inport < radix(); ++inport) {
        InputUnit &iu = inputs_[inport];
        for (VcId v = 0; v < iu.numVcs(); ++v) {
            const VirtualChannel &vc = iu.vc(v);
            if (vc.empty() || vc.frozen || !vc.routeValid ||
                vc.grantedVc == kInvalidId) {
                continue;
            }
            if (vc.front().arrivedAt >= now)
                continue;
            if (outputs_[vc.request].credits(vc.grantedVc) <= 0)
                ++creditStalls_;
        }
    }
}

void
Router::creditUpstream(PortId inport, VcId vcid, bool is_free)
{
    const Cycle now = net_.now();
    if (inputs_[inport].fromNic()) {
        net_.nicAt(id_, inport).pushCredit(now + 1, vcid, is_free);
    } else {
        Link *l = inLink_[inport];
        SPIN_ASSERT(l, "flit in a VC at unwired in-port ", inport,
                    " of router ", id_);
        l->pushCredit(now + l->latency(), CreditMsg{vcid, is_free});
    }
}

PortId
Router::depRequest(PortId inport, VcId vcid) const
{
    const VirtualChannel &vc = inputs_[inport].vc(vcid);
    if (!vc.active())
        return kInvalidId;
    if (vc.frozen)
        return vc.frozenOutport;
    return vc.routeValid ? vc.request : kInvalidId;
}

bool
Router::isEjectRequest(PortId inport, VcId vcid) const
{
    const PortId req = depRequest(inport, vcid);
    return req != kInvalidId && nicPort_[req];
}

void
Router::forceSend(PortId inport, VcId vcid, PortId outport, VcId down_vc,
                  bool refilled)
{
    const Cycle now = net_.now();
    VirtualChannel &vc = inputs_[inport].vc(vcid);
    SPIN_ASSERT(vc.packetComplete(), "rotating an incomplete packet");
    SPIN_ASSERT(!inputs_[inport].fromNic(), "rotating a local in-port");

    const PacketPtr pkt = vc.owner();
    const int n = pkt->sizeFlits;

    std::vector<LinkFlit> &lfs = scratchPacket_;
    lfs.clear();
    lfs.reserve(n);
    while (!vc.empty()) {
        lfs.push_back(LinkFlit{vc.popFlit(), down_vc});
        --*load_;
        --vnetLoad_[vcVnet(vcid)];
    }
    occupied_[inport] &= ~(std::uint64_t{1} << vcid);

    Link *l = outLink_[outport];
    SPIN_ASSERT(l, "rotation over unwired port");
    OutputUnit &out = outputs_[outport];
    out.forceAllocate(down_vc, pkt->id, now);
    for (int i = 0; i < n; ++i)
        out.consumeCredit(down_vc);
    if (faults_)
        faults_->onRotationTraverse(net_.linkIndexOf(id_, outport), *pkt,
                                    now, n);
    l->pushPacket(now, lfs);

    // Return credits upstream as one burst: the pop is instantaneous
    // in this model, and the credit wire is ordered, so a staggered
    // return could be overtaken by the free signal of the packet
    // rotating *into* this VC. When the loop's upstream member
    // force-allocates this VC in the same cycle (refilled), the isFree
    // tail signal is suppressed so the upstream output unit never sees
    // a spurious release.
    Link *ul = inLink_[inport];
    SPIN_ASSERT(ul, "frozen VC at unwired in-port");
    for (int i = 0; i < n; ++i) {
        const bool free_sig = !refilled && i == n - 1;
        ul->pushCredit(now + ul->latency(), CreditMsg{vcid, free_sig});
    }

    ++pkt->hops;
    ++pkt->spins;
    net_.routing().onHop(*pkt, *this, outport);
    ++net_.stats().packetsRotated;

    if (spin_)
        spin_->onFlitDeparture(inport, vcid);

    if (obs::Tracer *t = net_.trace())
        t->flit(now, "spin_rotate", id_, *pkt, inport, vcid, outport,
                down_vc);
}

void
Router::grantReserved(PortId inport, VcId vcid, PortId outport,
                      VcId down_vc)
{
    VirtualChannel &vc = inputs_[inport].vc(vcid);
    SPIN_ASSERT(vc.routeValid && vc.grantedVc == kInvalidId,
                "reserved grant on a VC that is not waiting");
    Packet &pkt = *vc.owner();

    // Re-target the packet's request to the recovery entry port.
    vc.request = outport;
    scratchVcs_.clear();
    scratchVcs_.push_back(down_vc);
    const VcId got = outputs_[outport].allocate(scratchVcs_, pkt.id,
                                                net_.now());
    SPIN_ASSERT(got == down_vc, "reserved VC was not idle");
    vc.grantedVc = got;
    pkt.onEscape = true;
    ++net_.stats().bubbleRecoveries;

    if (obs::Tracer *t = net_.trace())
        t->spin(net_.now(), "bubble_grant", id_, nullptr, inport, vcid);
}

} // namespace spin
