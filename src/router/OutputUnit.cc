#include "router/OutputUnit.hh"

#include <algorithm>
#include <limits>

#include "common/Logging.hh"

namespace spin
{

OutputUnit::OutputUnit(PortId port, bool to_nic, int num_vcs, int depth)
    : port_(port), toNic_(to_nic), depth_(depth)
{
    vcs_.resize(num_vcs);
    for (auto &v : vcs_)
        v.credits = depth;
}

bool
OutputUnit::hasIdleVcIn(VcId lo, VcId hi) const
{
    if (toNic_)
        return true;
    for (VcId v = lo; v <= hi; ++v) {
        if (vcs_[v].idle)
            return true;
    }
    return false;
}

VcId
OutputUnit::allocate(const std::vector<VcId> &allowed, PacketId owner,
                     Cycle now)
{
    SPIN_ASSERT(!toNic_, "NIC ports need no VC allocation");
    for (const VcId v : allowed) {
        DownVc &d = vcs_[v];
        if (d.idle) {
            SPIN_ASSERT(d.credits == depth_,
                        "idle downstream VC with missing credits");
            d.idle = false;
            d.owner = owner;
            d.activeSince = now;
            return v;
        }
    }
    return kInvalidId;
}

void
OutputUnit::forceAllocate(VcId vc, PacketId owner, Cycle now)
{
    SPIN_ASSERT(!toNic_, "cannot force-allocate a NIC port");
    DownVc &d = vcs_[vc];
    d.idle = false;
    d.owner = owner;
    d.activeSince = now;
}

int
OutputUnit::occupancy() const
{
    if (toNic_)
        return 0;
    int occ = 0;
    for (const auto &d : vcs_)
        occ += std::max(0, depth_ - d.credits);
    return occ;
}

Cycle
OutputUnit::minActiveTime(VcId lo, VcId hi, Cycle now) const
{
    if (toNic_)
        return 0;
    Cycle best = kNeverCycle;
    for (VcId v = lo; v <= hi; ++v) {
        const DownVc &d = vcs_[v];
        if (d.idle)
            return 0;
        best = std::min(best, now - d.activeSince);
    }
    return best;
}

} // namespace spin
