/**
 * @file
 * Fixed-latency pipelined delay line.
 *
 * Models a wire/pipeline: an item pushed at cycle t with latency L becomes
 * visible to the consumer at cycle t + L. One item may enter per cycle
 * (links are one-flit wide) but the line itself never back-pressures;
 * admission control happens at the producer.
 */

#ifndef SPINNOC_SIM_DELAYLINE_HH
#define SPINNOC_SIM_DELAYLINE_HH

#include <deque>
#include <utility>
#include <vector>

#include "common/Logging.hh"
#include "common/Types.hh"

namespace spin
{

/**
 * Delay line of items of type T ordered by arrival cycle.
 * Items pushed earlier always arrive no later than items pushed later
 * (latency is constant per line), so a deque stays sorted.
 */
template <typename T>
class DelayLine
{
  public:
    /**
     * Schedule @p item to arrive at @p arrival. Arrivals are normally
     * pushed in order; a SPIN rotation streams a whole packet's worth
     * of staggered credits at once, so out-of-order pushes insert-sort
     * from the back (stable: equal arrivals keep push order).
     */
    void
    push(Cycle arrival, T item)
    {
        // In-order pushes append. (Not just a shortcut: deque::emplace
        // at end() of an *empty* deque resolves to emplace_front, whose
        // start cursor sits on a chunk boundary here -- that path
        // allocates and frees a whole chunk on every push/drain pair.)
        if (line_.empty() || line_.back().first <= arrival) {
            line_.emplace_back(arrival, std::move(item));
            return;
        }
        auto it = line_.end();
        while (it != line_.begin() && std::prev(it)->first > arrival)
            --it;
        line_.emplace(it, arrival, std::move(item));
    }

    /** Pop every item whose arrival cycle is <= @p now. */
    std::vector<T>
    drain(Cycle now)
    {
        std::vector<T> out;
        while (!line_.empty() && line_.front().first <= now) {
            out.push_back(std::move(line_.front().second));
            line_.pop_front();
        }
        return out;
    }

    /**
     * Like drain(), but hands each arrival to @p fn instead of building
     * a vector — the per-cycle path, where the common case is "nothing
     * arrived" and even the empty-vector return would churn. @p fn gets
     * a mutable reference and may move from it; the item is popped
     * right after the call.
     */
    template <typename F>
    void
    drainInto(Cycle now, F &&fn)
    {
        while (!line_.empty() && line_.front().first <= now) {
            fn(line_.front().second);
            line_.pop_front();
        }
    }

    bool empty() const { return line_.empty(); }
    std::size_t size() const { return line_.size(); }

    /** Drop every pending item (state restore). */
    void clear() { line_.clear(); }

    /** Inspect pending items without disturbing them (audits). */
    template <typename F>
    void
    forEach(F &&fn) const
    {
        for (const auto &[arrival, item] : line_)
            fn(arrival, item);
    }

  private:
    std::deque<std::pair<Cycle, T>> line_;
};

} // namespace spin

#endif // SPINNOC_SIM_DELAYLINE_HH
