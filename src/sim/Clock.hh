/**
 * @file
 * Global simulation clock.
 *
 * The simulator is cycle-driven: Network::step() advances every component
 * by one cycle in a fixed phase order (see network/Network.hh). The Clock
 * is shared by reference so that all components observe the same time.
 */

#ifndef SPINNOC_SIM_CLOCK_HH
#define SPINNOC_SIM_CLOCK_HH

#include "common/Types.hh"

namespace spin
{

/** Monotonic cycle counter shared by all components of one Network. */
class Clock
{
  public:
    Clock() = default;

    /** Current cycle. */
    Cycle now() const { return now_; }

    /** Advance one cycle. */
    void tick() { ++now_; }

    /** Reset to cycle 0 (used by tests). */
    void reset() { now_ = 0; }

  private:
    Cycle now_ = 0;
};

} // namespace spin

#endif // SPINNOC_SIM_CLOCK_HH
