/**
 * @file
 * Persistent worker pool for the deterministic sharded step loop.
 *
 * A StepExecutor owns N-1 worker threads (the calling thread acts as
 * shard 0) and replays one closure across all shards per run() call.
 * Synchronization is a generation counter with C++20 atomic
 * wait/notify -- futex-backed on Linux, so idle workers sleep instead
 * of spinning between simulation phases, which matters on the small
 * oversubscribed CI runners the determinism gates execute on.
 *
 * Determinism contract (docs/SCALING.md): the executor guarantees only
 * that every shard closure finished before run() returns. Bit-identical
 * results across thread counts are the *callers'* obligation: each
 * phase closure may write shard-local state only, and cross-shard
 * effects (stats, trace events, in-flight accounting) are staged per
 * shard and committed in shard order by Network::step().
 */

#ifndef SPINNOC_SIM_PARALLEL_HH
#define SPINNOC_SIM_PARALLEL_HH

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace spin
{

/** See file comment. */
class StepExecutor
{
  public:
    /** Spawn @p threads - 1 workers; @p threads is clamped to >= 1. */
    explicit StepExecutor(int threads);
    ~StepExecutor();

    StepExecutor(const StepExecutor &) = delete;
    StepExecutor &operator=(const StepExecutor &) = delete;

    int threads() const { return nthreads_; }

    /**
     * Execute task(shard) for every shard in [0, threads()); the
     * calling thread runs shard 0. Returns once every shard finished.
     * A FatalError thrown inside any shard is rethrown here (first
     * one wins) after the remaining shards complete.
     */
    void run(const std::function<void(int)> &task);

  private:
    void workerLoop(int shard);
    void runShard(const std::function<void(int)> &task, int shard);

    const int nthreads_;
    /** Live only inside run(); guarded by the epoch_ release/acquire
     *  pair, never read by a worker outside its generation. */
    const std::function<void(int)> *task_ = nullptr;
    /** Bumped once per run(); workers wait for it to change. */
    std::atomic<std::uint64_t> epoch_{0};
    /** Total shard completions by workers; run() waits until it
     *  reaches epoch_ * (nthreads_ - 1). */
    std::atomic<std::uint64_t> done_{0};
    std::atomic<bool> stop_{false};
    std::mutex errMutex_;
    std::exception_ptr firstError_;
    std::vector<std::thread> workers_;
};

} // namespace spin

#endif // SPINNOC_SIM_PARALLEL_HH
