// Clock is header-only; this translation unit anchors the sim module.
#include "sim/Clock.hh"
