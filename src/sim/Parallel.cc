#include "sim/Parallel.hh"

namespace spin
{

StepExecutor::StepExecutor(int threads)
    : nthreads_(threads < 1 ? 1 : threads)
{
    workers_.reserve(static_cast<std::size_t>(nthreads_ - 1));
    for (int s = 1; s < nthreads_; ++s)
        workers_.emplace_back([this, s] { workerLoop(s); });
}

StepExecutor::~StepExecutor()
{
    stop_.store(true, std::memory_order_release);
    epoch_.fetch_add(1, std::memory_order_release);
    epoch_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
StepExecutor::runShard(const std::function<void(int)> &task, int shard)
{
    try {
        task(shard);
    } catch (...) {
        const std::lock_guard<std::mutex> lock(errMutex_);
        if (!firstError_)
            firstError_ = std::current_exception();
    }
}

void
StepExecutor::run(const std::function<void(int)> &task)
{
    if (workers_.empty()) {
        task(0);
        return;
    }
    task_ = &task;
    // The release fetch_add publishes task_ to workers whose acquire
    // load of epoch_ observes the new generation.
    const std::uint64_t gen =
        epoch_.fetch_add(1, std::memory_order_release) + 1;
    epoch_.notify_all();

    runShard(task, 0);

    const std::uint64_t want = gen * workers_.size();
    std::uint64_t d = done_.load(std::memory_order_acquire);
    while (d < want) {
        done_.wait(d, std::memory_order_acquire);
        d = done_.load(std::memory_order_acquire);
    }
    task_ = nullptr;

    if (firstError_) {
        std::exception_ptr e;
        {
            const std::lock_guard<std::mutex> lock(errMutex_);
            e = firstError_;
            firstError_ = nullptr;
        }
        std::rethrow_exception(e);
    }
}

void
StepExecutor::workerLoop(int shard)
{
    std::uint64_t seen = 0;
    for (;;) {
        epoch_.wait(seen, std::memory_order_acquire);
        seen = epoch_.load(std::memory_order_acquire);
        if (stop_.load(std::memory_order_acquire))
            return;
        runShard(*task_, shard);
        done_.fetch_add(1, std::memory_order_release);
        done_.notify_one();
    }
}

} // namespace spin
