#include "traffic/TrafficPattern.hh"

#include <bit>

#include "common/Logging.hh"

namespace spin
{

std::string
toString(Pattern p)
{
    switch (p) {
      case Pattern::UniformRandom: return "uniform-random";
      case Pattern::BitComplement: return "bit-complement";
      case Pattern::Transpose:     return "transpose";
      case Pattern::Tornado:       return "tornado";
      case Pattern::BitReverse:    return "bit-reverse";
      case Pattern::BitRotation:   return "bit-rotation";
      case Pattern::Shuffle:       return "shuffle";
      case Pattern::Neighbor:      return "neighbor";
    }
    return "?";
}

TrafficPattern::TrafficPattern(Pattern p, const Topology &topo)
    : pattern_(p), numNodes_(topo.numNodes())
{
    SPIN_ASSERT(numNodes_ >= 2, "pattern over <2 nodes");
    bits_ = std::bit_width(static_cast<unsigned>(numNodes_)) - 1;
    pow2_ = 1 << bits_;
    if (topo.mesh && topo.numNodes() == topo.mesh->sizeX * topo.mesh->sizeY) {
        meshX_ = topo.mesh->sizeX;
        meshY_ = topo.mesh->sizeY;
    }
}

NodeId
TrafficPattern::permuted(NodeId src) const
{
    const unsigned s = static_cast<unsigned>(src);
    const unsigned mask = static_cast<unsigned>(pow2_ - 1);
    switch (pattern_) {
      case Pattern::BitComplement:
        return static_cast<NodeId>(~s & mask);
      case Pattern::Transpose: {
        if (meshX_ > 0 && meshX_ == meshY_) {
            const int x = src % meshX_;
            const int y = src / meshX_;
            return static_cast<NodeId>(x * meshX_ + y);
        }
        // Bit transpose: swap the low and high halves of the address.
        const int half = bits_ / 2;
        const unsigned lo = s & ((1u << half) - 1);
        const unsigned hi = (s >> half) & ((1u << half) - 1);
        const unsigned rest = s & ~((1u << (2 * half)) - 1);
        return static_cast<NodeId>(rest | (lo << half) | hi);
      }
      case Pattern::Tornado: {
        if (meshX_ > 0) {
            const int x = src % meshX_;
            const int y = src / meshX_;
            const int tx = (x + (meshX_ + 1) / 2 - 1) % meshX_;
            return static_cast<NodeId>(y * meshX_ + tx);
        }
        return static_cast<NodeId>(
            (src + numNodes_ / 2) % numNodes_);
      }
      case Pattern::BitReverse: {
        unsigned r = 0;
        for (int i = 0; i < bits_; ++i) {
            if (s & (1u << i))
                r |= 1u << (bits_ - 1 - i);
        }
        return static_cast<NodeId>(r);
      }
      case Pattern::BitRotation:
        return static_cast<NodeId>(((s >> 1) | ((s & 1u) << (bits_ - 1)))
                                   & mask);
      case Pattern::Shuffle:
        return static_cast<NodeId>(((s << 1) | (s >> (bits_ - 1))) & mask);
      case Pattern::Neighbor:
        return static_cast<NodeId>((src + 1) % numNodes_);
      default:
        SPIN_PANIC("permuted() on a random pattern");
    }
}

NodeId
TrafficPattern::dest(NodeId src, Random &rng) const
{
    SPIN_ASSERT(src >= 0 && src < numNodes_, "bad source node ", src);
    switch (pattern_) {
      case Pattern::UniformRandom:
        return static_cast<NodeId>(rng.below(numNodes_));
      case Pattern::Tornado:
      case Pattern::Neighbor:
      case Pattern::Transpose:
        if (pattern_ == Pattern::Transpose && !(meshX_ > 0 &&
                                                meshX_ == meshY_) &&
            src >= pow2_) {
            return static_cast<NodeId>(rng.below(numNodes_));
        }
        return permuted(src);
      default:
        // Bit patterns: defined on the power-of-two prefix.
        if (src >= pow2_)
            return static_cast<NodeId>(rng.below(numNodes_));
        return permuted(src);
    }
}

} // namespace spin
