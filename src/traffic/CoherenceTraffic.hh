/**
 * @file
 * Coherence-protocol-style request/response traffic over 3 virtual
 * networks: the PARSEC substitute for Fig. 8(a) (see DESIGN.md).
 *
 * Each node issues 1-flit GetX requests (vnet 0) to a home node drawn
 * from a pattern; the home "directory" answers with a 5-flit data
 * response (vnet 2) after a fixed service delay. Request rates are
 * derived from the paper's observation that real applications load the
 * NoC at roughly a tenth of deadlock-onset rates.
 */

#ifndef SPINNOC_TRAFFIC_COHERENCETRAFFIC_HH
#define SPINNOC_TRAFFIC_COHERENCETRAFFIC_HH

#include <deque>
#include <string>
#include <vector>

#include "common/Random.hh"
#include "common/Types.hh"
#include "traffic/TrafficPattern.hh"

namespace spin
{

class Network;

/** An application profile driving the generator (PARSEC substitute). */
struct AppProfile
{
    std::string name;
    /** Request rate in requests/node/cycle. */
    double requestRate = 0.005;
    /** Cycles the directory takes to answer. */
    Cycle serviceDelay = 20;
    /** Sharing pattern for home-node selection. */
    Pattern pattern = Pattern::UniformRandom;
};

/** The eight profiles used by the Fig. 8(a) harness. */
std::vector<AppProfile> parsecLikeProfiles();

/** See file comment. Call tick() once per cycle before Network::step. */
class CoherenceTraffic
{
  public:
    CoherenceTraffic(Network &net, const AppProfile &profile,
                     std::uint64_t seed = 11);

    void tick();

    std::uint64_t requestsIssued() const { return requestsIssued_; }
    std::uint64_t responsesReceived() const { return responsesReceived_; }

  private:
    Network &net_;
    AppProfile profile_;
    TrafficPattern pattern_;
    Random rng_;
    /** (due cycle, responder, requester) queue, FIFO by due cycle. */
    std::deque<std::tuple<Cycle, NodeId, NodeId>> pending_;
    std::uint64_t requestsIssued_ = 0;
    std::uint64_t responsesReceived_ = 0;
};

} // namespace spin

#endif // SPINNOC_TRAFFIC_COHERENCETRAFFIC_HH
