#include "traffic/TraceTraffic.hh"

#include <fstream>
#include <sstream>

#include "common/Logging.hh"
#include "network/Network.hh"

namespace spin
{

std::vector<TraceRecord>
readTrace(std::istream &in)
{
    std::vector<TraceRecord> trace;
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        std::istringstream ls(line);
        TraceRecord rec;
        long long cyc;
        if (!(ls >> cyc))
            continue; // blank / comment-only line
        if (cyc < 0 || !(ls >> rec.src >> rec.dst >> rec.vnet >>
                         rec.sizeFlits)) {
            SPIN_FATAL("trace line ", line_no, ": malformed record");
        }
        rec.cycle = static_cast<Cycle>(cyc);
        if (!trace.empty() && rec.cycle < trace.back().cycle)
            SPIN_FATAL("trace line ", line_no, ": cycles not sorted");
        if (rec.sizeFlits < 1)
            SPIN_FATAL("trace line ", line_no, ": bad packet size");
        trace.push_back(rec);
    }
    return trace;
}

std::vector<TraceRecord>
readTraceFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        SPIN_FATAL("cannot open trace file ", path);
    return readTrace(in);
}

TraceTraffic::TraceTraffic(Network &net, std::vector<TraceRecord> trace)
    : net_(net), trace_(std::move(trace))
{
    for (const TraceRecord &r : trace_) {
        if (r.src < 0 || r.src >= net.numNodes() || r.dst < 0 ||
            r.dst >= net.numNodes()) {
            SPIN_FATAL("trace node ids out of range for this topology");
        }
        if (r.vnet < 0 || r.vnet >= net.config().vnets)
            SPIN_FATAL("trace vnet out of range");
        if (r.sizeFlits > net.config().maxPacketSize)
            SPIN_FATAL("trace packet larger than maxPacketSize");
    }
}

void
TraceTraffic::tick()
{
    const Cycle now = net_.now();
    while (next_ < trace_.size() && trace_[next_].cycle <= now) {
        const TraceRecord &r = trace_[next_++];
        net_.offerPacket(net_.makePacket(r.src, r.dst, r.vnet,
                                         r.sizeFlits));
    }
}

} // namespace spin
