/**
 * @file
 * Trace-driven traffic: replays a packet trace captured from a real
 * workload (or written by hand for a directed experiment). One line
 * per packet:
 *
 *   <cycle> <src> <dst> <vnet> <size_flits>     # '#' starts a comment
 *
 * Lines must be sorted by cycle. Replay is cycle-exact: a packet is
 * offered to its source NIC in the stated cycle (actual injection then
 * follows normal VC arbitration).
 */

#ifndef SPINNOC_TRAFFIC_TRACETRAFFIC_HH
#define SPINNOC_TRAFFIC_TRACETRAFFIC_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "common/Types.hh"

namespace spin
{

class Network;

/** One trace record. */
struct TraceRecord
{
    Cycle cycle = 0;
    NodeId src = 0;
    NodeId dst = 0;
    VnetId vnet = 0;
    int sizeFlits = 1;
};

/** Parse a trace from a stream. @throws FatalError on malformed input
 *  or unsorted cycles. */
std::vector<TraceRecord> readTrace(std::istream &in);

/** Parse a trace file. @throws FatalError when unreadable. */
std::vector<TraceRecord> readTraceFile(const std::string &path);

/** See file comment. Call tick() once per cycle before Network::step. */
class TraceTraffic
{
  public:
    TraceTraffic(Network &net, std::vector<TraceRecord> trace);

    /** Offer every packet due this cycle. */
    void tick();

    /** True when the whole trace has been offered. */
    bool done() const { return next_ >= trace_.size(); }
    std::size_t offered() const { return next_; }

  private:
    Network &net_;
    std::vector<TraceRecord> trace_;
    std::size_t next_ = 0;
};

} // namespace spin

#endif // SPINNOC_TRAFFIC_TRACETRAFFIC_HH
