/**
 * @file
 * The synthetic traffic patterns of the paper's evaluation (Dally &
 * Towles conventions): uniform random, bit complement, transpose,
 * tornado, bit reverse, bit rotation, shuffle and neighbor.
 *
 * Bit-permutation patterns are defined over the largest power-of-two
 * prefix of the node space; the few nodes outside it (none on the 64-
 * node mesh or the 1024-terminal dragonfly) fall back to uniform
 * random. Tornado and transpose use their mesh-coordinate forms on
 * meshes, matching the paper's description ("half-way across the
 * x-dimension").
 */

#ifndef SPINNOC_TRAFFIC_TRAFFICPATTERN_HH
#define SPINNOC_TRAFFIC_TRAFFICPATTERN_HH

#include <string>

#include "common/Random.hh"
#include "common/Types.hh"
#include "topology/Topology.hh"

namespace spin
{

/** Pattern selector. */
enum class Pattern : std::uint8_t
{
    UniformRandom,
    BitComplement,
    Transpose,
    Tornado,
    BitReverse,
    BitRotation,
    Shuffle,
    Neighbor,
};

std::string toString(Pattern p);

/** Destination generator for one pattern over one topology. */
class TrafficPattern
{
  public:
    TrafficPattern(Pattern p, const Topology &topo);

    Pattern pattern() const { return pattern_; }

    /** Destination node for traffic sourced at @p src. */
    NodeId dest(NodeId src, Random &rng) const;

  private:
    Pattern pattern_;
    int numNodes_;
    int bits_;    //!< log2 of the power-of-two prefix
    int pow2_;    //!< 1 << bits_
    int meshX_ = 0;
    int meshY_ = 0;

    NodeId permuted(NodeId src) const;
};

} // namespace spin

#endif // SPINNOC_TRAFFIC_TRAFFICPATTERN_HH
