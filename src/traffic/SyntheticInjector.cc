#include "traffic/SyntheticInjector.hh"

#include "common/Logging.hh"
#include "network/Network.hh"

namespace spin
{

SyntheticInjector::SyntheticInjector(Network &net, Pattern pattern,
                                     const InjectorConfig &cfg)
    : net_(net), pattern_(pattern, net.topo()), cfg_(cfg), rng_(cfg.seed)
{
    if (cfg_.injectionRate < 0.0)
        SPIN_FATAL("negative injection rate");
    if (cfg_.controlFraction < 0.0 || cfg_.controlFraction > 1.0)
        SPIN_FATAL("control fraction must be in [0, 1]");
    if (cfg_.dataSize > net.config().maxPacketSize)
        SPIN_FATAL("data packets larger than maxPacketSize");
    if (net.config().vnets >= 3)
        dataVnet_ = 2;
    recomputeProb();
}

void
SyntheticInjector::recomputeProb()
{
    const double avg_flits =
        cfg_.controlFraction * cfg_.controlSize +
        (1.0 - cfg_.controlFraction) * cfg_.dataSize;
    packetProb_ = cfg_.injectionRate / avg_flits;
    if (packetProb_ > 1.0) {
        SPIN_WARN("injection rate ", cfg_.injectionRate,
                  " exceeds 1 packet/node/cycle; clamping");
        packetProb_ = 1.0;
    }
}

void
SyntheticInjector::setRate(double flits_per_node_per_cycle)
{
    cfg_.injectionRate = flits_per_node_per_cycle;
    recomputeProb();
}

void
SyntheticInjector::tick()
{
    const int n = net_.numNodes();
    for (NodeId src = 0; src < n; ++src) {
        if (!rng_.chance(packetProb_))
            continue;
        const bool control = rng_.chance(cfg_.controlFraction);
        const NodeId dst = pattern_.dest(src, rng_);
        auto pkt = net_.makePacket(src, dst,
                                   control ? controlVnet_ : dataVnet_,
                                   control ? cfg_.controlSize
                                           : cfg_.dataSize);
        net_.offerPacket(pkt);
    }
}

} // namespace spin
