#include "traffic/CoherenceTraffic.hh"

#include "common/Logging.hh"
#include "network/Network.hh"

namespace spin
{

std::vector<AppProfile>
parsecLikeProfiles()
{
    // Rates are in requests/node/cycle; with a 1-flit request plus a
    // 5-flit response the network load stays roughly an order of
    // magnitude below the mesh's deadlock-onset rates (paper Fig. 3),
    // as the paper observes for PARSEC.
    return {
        {"blackscholes", 0.0020, 24, Pattern::UniformRandom},
        {"bodytrack",    0.0060, 20, Pattern::UniformRandom},
        {"canneal",      0.0120, 18, Pattern::BitReverse},
        {"dedup",        0.0090, 22, Pattern::Shuffle},
        {"ferret",       0.0100, 20, Pattern::Transpose},
        {"fluidanimate", 0.0070, 16, Pattern::Neighbor},
        {"swaptions",    0.0030, 24, Pattern::UniformRandom},
        {"vips",         0.0110, 18, Pattern::BitRotation},
    };
}

CoherenceTraffic::CoherenceTraffic(Network &net, const AppProfile &profile,
                                   std::uint64_t seed)
    : net_(net), profile_(profile),
      pattern_(profile.pattern, net.topo()), rng_(seed)
{
    if (net.config().vnets < 3)
        SPIN_FATAL("coherence traffic needs 3 vnets (req/fwd/resp)");

    net_.setEjectListener([this](const PacketPtr &pkt) {
        if (pkt->vnet == 0) {
            // Request reached the directory: schedule the response.
            pending_.emplace_back(net_.now() + profile_.serviceDelay,
                                  pkt->dest, pkt->src);
        } else if (pkt->vnet == 2) {
            ++responsesReceived_;
        }
    });
}

void
CoherenceTraffic::tick()
{
    const Cycle now = net_.now();

    // Issue due responses.
    while (!pending_.empty() && std::get<0>(pending_.front()) <= now) {
        const auto [due, responder, requester] = pending_.front();
        pending_.pop_front();
        auto resp = net_.makePacket(responder, requester, 2, 5);
        net_.offerPacket(resp);
    }

    // Issue new requests.
    for (NodeId src = 0; src < net_.numNodes(); ++src) {
        if (!rng_.chance(profile_.requestRate))
            continue;
        const NodeId home = pattern_.dest(src, rng_);
        auto req = net_.makePacket(src, home, 0, 1);
        net_.offerPacket(req);
        ++requestsIssued_;
    }
}

} // namespace spin
