/**
 * @file
 * Bernoulli synthetic traffic injector. The paper injects a mix of
 * 1-flit control and 5-flit data packets at a configured rate in
 * flits/node/cycle; with 3 vnets the control packets use vnet 0 and the
 * data packets vnet 2, mirroring a request/response protocol without
 * generating protocol dependencies.
 */

#ifndef SPINNOC_TRAFFIC_SYNTHETICINJECTOR_HH
#define SPINNOC_TRAFFIC_SYNTHETICINJECTOR_HH

#include "common/Random.hh"
#include "common/Types.hh"
#include "traffic/TrafficPattern.hh"

namespace spin
{

class Network;

/** Injector parameters. */
struct InjectorConfig
{
    /** Offered load in flits/node/cycle. */
    double injectionRate = 0.1;
    /** Fraction of packets that are control (1-flit). */
    double controlFraction = 0.5;
    int controlSize = 1;
    int dataSize = 5;
    /** RNG seed (independent of the network's own stream). */
    std::uint64_t seed = 7;
};

/** See file comment. Call tick() once per cycle before Network::step. */
class SyntheticInjector
{
  public:
    SyntheticInjector(Network &net, Pattern pattern,
                      const InjectorConfig &cfg);

    /** Generate this cycle's packets. */
    void tick();

    /** Change the offered load mid-run (sweeps). */
    void setRate(double flits_per_node_per_cycle);
    double rate() const { return cfg_.injectionRate; }
    const TrafficPattern &pattern() const { return pattern_; }

  private:
    Network &net_;
    TrafficPattern pattern_;
    InjectorConfig cfg_;
    Random rng_;
    double packetProb_;
    VnetId controlVnet_ = 0;
    VnetId dataVnet_ = 0;

    void recomputeProb();
};

} // namespace spin

#endif // SPINNOC_TRAFFIC_SYNTHETICINJECTOR_HH
