/**
 * @file
 * West-first turn-model routing (Glass & Ni), the paper's mesh
 * deadlock-avoidance baseline: all hops toward the west are taken
 * first; afterwards the packet routes adaptively among the productive
 * {E, N, S} directions and never turns back west, which keeps the
 * channel dependency graph acyclic.
 */

#ifndef SPINNOC_ROUTING_WESTFIRST_HH
#define SPINNOC_ROUTING_WESTFIRST_HH

#include "routing/RoutingAlgorithm.hh"
#include "topology/Topology.hh"

namespace spin
{

/**
 * Deterministic west-first next hop (XY order: W, then E, then Y).
 * Shared by the Escape-VC and Static Bubble escape networks, whose
 * reserved channels drain along it.
 */
PortId westFirstNextPort(const MeshInfo &m, RouterId cur, RouterId dest);

/** See file comment. Partially adaptive, deadlock-free on meshes. */
class WestFirst : public RoutingAlgorithm
{
  public:
    std::string name() const override { return "west-first"; }
    bool selfDeadlockFree() const override { return true; }
    void attach(Network &net) override;
    void candidates(const Packet &pkt, const Router &r, RouterId target,
                    std::vector<PortId> &out) const override;
};

} // namespace spin

#endif // SPINNOC_ROUTING_WESTFIRST_HH
