/**
 * @file
 * Table-driven minimal adaptive routing: every output port on some
 * minimal path is a candidate, and the base class's FAvORS-style
 * selection picks among them each cycle. Fully adaptive, topology
 * agnostic, and *not* deadlock-free by itself -- it relies on a
 * recovery scheme (SPIN / Static Bubble) or luck. This is both the
 * paper's "MinAdaptive + SPIN" configuration and the minimal half of
 * FAvORS.
 */

#ifndef SPINNOC_ROUTING_MINIMALADAPTIVE_HH
#define SPINNOC_ROUTING_MINIMALADAPTIVE_HH

#include "routing/RoutingAlgorithm.hh"

namespace spin
{

/** See file comment. */
class MinimalAdaptive : public RoutingAlgorithm
{
  public:
    std::string name() const override { return "minimal-adaptive"; }
    bool fullyAdaptive() const override { return true; }
    void candidates(const Packet &pkt, const Router &r, RouterId target,
                    std::vector<PortId> &out) const override;
};

} // namespace spin

#endif // SPINNOC_ROUTING_MINIMALADAPTIVE_HH
