/**
 * @file
 * UGAL routing for dragonfly topologies (Kim et al. / Singh), the
 * paper's off-chip baseline and its SPIN-enabled variant.
 *
 * At the source the algorithm compares the congestion-weighted cost of
 * the minimal path against a random Valiant detour through another
 * group and misroutes at most once (livelock bound p = 1). The baseline
 * flavor enforces Dally's deadlock-avoidance VC ordering -- the VC
 * class equals the number of global links already traversed, so 3 VCs
 * are required. The SPIN flavor drops the restriction entirely: any
 * free VC is fair game, and deadlock freedom comes from recovery.
 */

#ifndef SPINNOC_ROUTING_UGAL_HH
#define SPINNOC_ROUTING_UGAL_HH

#include "routing/RoutingAlgorithm.hh"

namespace spin
{

/** See file comment. */
class Ugal : public RoutingAlgorithm
{
  public:
    /**
     * @param vc_ordered true = Dally-avoidance baseline (VC class =
     *        global hops, >= 3 VCs); false = unrestricted (for SPIN)
     */
    explicit Ugal(bool vc_ordered) : vcOrdered_(vc_ordered) {}

    std::string name() const override
    {
        return vcOrdered_ ? "ugal-dally" : "ugal-spin";
    }
    bool fullyAdaptive() const override { return !vcOrdered_; }
    bool nonMinimal() const override { return true; }
    bool selfDeadlockFree() const override { return vcOrdered_; }
    int minVcsPerVnet() const override { return vcOrdered_ ? 3 : 1; }

    void attach(Network &net) override;
    void sourceRoute(Packet &pkt, RouterId src) override;
    void candidates(const Packet &pkt, const Router &r, RouterId target,
                    std::vector<PortId> &out) const override;
    void allowedVcs(const Packet &pkt, const Router &r, PortId outport,
                    std::vector<VcId> &out) const override;
    void injectionVcs(const Packet &pkt, const Router &r,
                      std::vector<VcId> &out) const override;
    void onHop(Packet &pkt, const Router &r, PortId outport) const
        override;
    void initialStates(RouterId src, RouterId dest, VnetId vnet,
                       std::vector<RouteState> &out) const override;

  private:
    bool vcOrdered_;

    /**
     * entry_[from_group * g + to_group]: the router a packet lands on
     * when it takes from_group's global channel into to_group, or
     * kInvalidId when that pair is unwired. The ordered flavor only
     * detours through these gateways (see sourceRoute).
     */
    std::vector<RouterId> entry_;
    /** Same indexing: the router owning that global channel... */
    std::vector<RouterId> exitRouter_;
    /** ...and its global out-port on that router. */
    std::vector<PortId> exitPort_;

    /** Congestion estimate: min downstream occupancy over @p ports. */
    int minOccupancy(const Router &r,
                     const std::vector<PortId> &ports) const;
};

} // namespace spin

#endif // SPINNOC_ROUTING_UGAL_HH
