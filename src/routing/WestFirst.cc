#include "routing/WestFirst.hh"

#include "common/Logging.hh"
#include "network/Network.hh"
#include "router/Router.hh"

namespace spin
{

PortId
westFirstNextPort(const MeshInfo &m, RouterId cur, RouterId dest)
{
    const int dx = m.xOf(dest) - m.xOf(cur);
    const int dy = m.yOf(dest) - m.yOf(cur);
    if (dx < 0)
        return MeshInfo::kWest;
    if (dx > 0)
        return MeshInfo::kEast;
    if (dy > 0)
        return MeshInfo::kNorth;
    SPIN_ASSERT(dy < 0, "west-first next hop requested at destination");
    return MeshInfo::kSouth;
}

void
WestFirst::attach(Network &net)
{
    RoutingAlgorithm::attach(net);
    if (!net.topo().mesh || net.topo().mesh->wrap)
        SPIN_FATAL("west-first routing requires a (non-wrapping) mesh");
}

void
WestFirst::candidates(const Packet &, const Router &r, RouterId target,
                      std::vector<PortId> &out) const
{
    out.clear();
    const MeshInfo &m = *net_->topo().mesh;
    const int dx = m.xOf(target) - m.xOf(r.id());
    const int dy = m.yOf(target) - m.yOf(r.id());
    if (dx < 0) {
        // All west hops must come first; no adaptivity here.
        out.push_back(MeshInfo::kWest);
        return;
    }
    if (dx > 0)
        out.push_back(MeshInfo::kEast);
    if (dy > 0)
        out.push_back(MeshInfo::kNorth);
    else if (dy < 0)
        out.push_back(MeshInfo::kSouth);
    SPIN_ASSERT(!out.empty(), "west-first requested at destination");
}

} // namespace spin
