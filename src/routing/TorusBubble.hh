/**
 * @file
 * Dimension-ordered torus routing with Bubble Flow Control (Carrion et
 * al. / Puente et al.), the concrete implementation of Table I's
 * "Flow Control" theory row: a torus ring cannot deadlock as long as
 * one free packet buffer remains in it, so a packet may *enter* a ring
 * (from injection or from the other dimension) only when the ring
 * would retain a free VC after the move. Packets already traveling
 * within a ring advance unrestricted.
 *
 * The bubble check here is the idealized global-view variant (the
 * paper's references implement it distributedly with critical-bubble
 * tokens); the admission semantics -- and therefore the deadlock
 * freedom and the injection-restriction cost the paper's Table I
 * records -- are the same.
 */

#ifndef SPINNOC_ROUTING_TORUSBUBBLE_HH
#define SPINNOC_ROUTING_TORUSBUBBLE_HH

#include "routing/RoutingAlgorithm.hh"

namespace spin
{

/** See file comment. */
class TorusBubble : public RoutingAlgorithm
{
  public:
    std::string name() const override { return "torus-bubble-dor"; }
    bool selfDeadlockFree() const override { return true; }

    void attach(Network &net) override;
    void candidates(const Packet &pkt, const Router &r, RouterId target,
                    std::vector<PortId> &out) const override;
    bool admission(const Packet &pkt, const Router &r, PortId inport,
                   PortId outport) const override;
    bool sccProtectedByFlowControl(
        const std::vector<StaticChannel> &channels) const override;

    /** Free VCs in the unidirectional ring entered via @p outport of
     *  router @p r, for @p vnet (diagnostic + admission input). */
    int ringFreeVcs(const Router &r, PortId outport, VnetId vnet) const;

  private:
    /** Wrap-aware signed delta from @p from to @p to modulo @p k. */
    static int wrapDelta(int from, int to, int k);
    /** True when @p port moves along the X dimension. */
    static bool isXPort(PortId port);
};

} // namespace spin

#endif // SPINNOC_ROUTING_TORUSBUBBLE_HH
