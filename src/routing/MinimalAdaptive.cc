#include "routing/MinimalAdaptive.hh"

#include "common/Logging.hh"
#include "network/Network.hh"
#include "router/Router.hh"

namespace spin
{

void
MinimalAdaptive::candidates(const Packet &, const Router &r,
                            RouterId target,
                            std::vector<PortId> &out) const
{
    const auto &ports = net_->topo().minimalPorts(r.id(), target);
    SPIN_ASSERT(!ports.empty(), "no minimal port from ", r.id(), " to ",
                target);
    out.assign(ports.begin(), ports.end());
}

} // namespace spin
