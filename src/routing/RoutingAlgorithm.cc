#include "routing/RoutingAlgorithm.hh"

#include <algorithm>

#include "common/Logging.hh"
#include "network/Network.hh"
#include "router/Router.hh"

namespace spin
{

void
RoutingAlgorithm::attach(Network &net)
{
    net_ = &net;
}

void
RoutingAlgorithm::sourceRoute(Packet &, RouterId)
{
}

PortId
RoutingAlgorithm::select(const Packet &pkt, const Router &r,
                         const std::vector<PortId> &cands) const
{
    SPIN_ASSERT(!cands.empty(), "no route candidates at router ", r.id(),
                " for ", pkt.toString());
    if (cands.size() == 1)
        return cands[0];

    // FAvORS selection (paper Sec. V): a random candidate whose next hop
    // has a free allowed VC; otherwise the candidate whose next-hop VC
    // has been active for the fewest cycles.
    //
    // Scratch is thread-local: under the sharded step loop every worker
    // re-selects blocked heads of its own routers concurrently through
    // this one shared algorithm instance.
    const Cycle now = net_->now();
    static thread_local std::vector<VcId> scratchVcs;
    static thread_local std::vector<PortId> scratchFree;
    std::vector<VcId> &allowed = scratchVcs;
    std::vector<PortId> &free_cands = scratchFree;
    free_cands.clear();
    PortId best = cands[0];
    Cycle best_active = kNeverCycle;
    for (const PortId c : cands) {
        allowedVcs(pkt, r, c, allowed);
        applyVcReservation(*net_, pkt, allowed);
        const OutputUnit &out = r.output(c);
        Cycle t_active = kNeverCycle;
        for (const VcId v : allowed) {
            if (out.isIdle(v)) {
                t_active = 0;
                break;
            }
            t_active = std::min(t_active, now - out.activeSince(v));
        }
        if (t_active == 0)
            free_cands.push_back(c);
        if (t_active < best_active) {
            best_active = t_active;
            best = c;
        }
    }
    if (!free_cands.empty())
        return free_cands[r.rng().below(free_cands.size())];
    return best;
}

void
RoutingAlgorithm::allowedVcs(const Packet &pkt, const Router &,
                             PortId, std::vector<VcId> &out) const
{
    out.clear();
    const VcId base = vnetVcBase(pkt.vnet);
    for (int i = 0; i < vcsPerVnet(); ++i)
        out.push_back(base + i);
}

void
RoutingAlgorithm::injectionVcs(const Packet &pkt, const Router &r,
                               std::vector<VcId> &out) const
{
    allowedVcs(pkt, r, kInvalidId, out);
}

bool
RoutingAlgorithm::admission(const Packet &, const Router &, PortId,
                            PortId) const
{
    return true;
}

void
RoutingAlgorithm::onHop(Packet &, const Router &, PortId) const
{
}

void
RoutingAlgorithm::onVcGranted(Packet &, const Router &, PortId, VcId) const
{
}

void
RoutingAlgorithm::initialStates(RouterId src, RouterId dest, VnetId vnet,
                                std::vector<RouteState> &out) const
{
    out.clear();
    RouteState s;
    s.router = src;
    s.target = dest;
    s.dest = dest;
    s.vnet = vnet;
    out.push_back(s);
    if (!nonMinimal())
        return;
    // Misrouting algorithms (UGAL, FAvORS-NMin) may detour through any
    // intermediate router; phase 1 routes minimally toward it.
    const int nr = net_->topo().numRouters();
    for (RouterId inter = 0; inter < nr; ++inter) {
        if (inter == src || inter == dest)
            continue;
        if (net_->topo().partial() &&
            (net_->topo().distance(src, inter) < 0 ||
             net_->topo().distance(inter, dest) < 0))
            continue; // detour severed on a degraded topology
        RouteState m = s;
        m.target = inter;
        m.misrouting = true;
        out.push_back(m);
    }
}

void
RoutingAlgorithm::enumerateHops(const RouteState &s,
                                std::vector<RouteHop> &out) const
{
    out.clear();
    SPIN_ASSERT(net_, "enumerateHops before attach");
    if (s.terminal())
        return;

    // Synthesize the packet record the routing functions would see.
    Packet pkt;
    pkt.destRouter = s.dest;
    pkt.vnet = s.vnet;
    pkt.globalHops = s.globalHops;
    pkt.onEscape = s.onEscape;
    pkt.intermediate = s.misrouting ? s.target : kInvalidId;
    pkt.phaseTwo = !s.misrouting;

    const Router &r = net_->router(s.router);
    std::vector<PortId> cands;
    candidates(pkt, r, s.target, cands);
    std::vector<VcId> vcs;
    for (const PortId p : cands) {
        const LinkSpec *l = net_->topo().outLink(s.router, p);
        if (!l && net_->topo().partial())
            continue; // degraded topology: the link was cut by a fault
        SPIN_ASSERT(l, "candidate port ", p, " of router ", s.router,
                    " is unwired");
        allowedVcs(pkt, r, p, vcs);
        applyVcReservation(*net_, pkt, vcs);
        for (const VcId v : vcs) {
            // Advance the abstract state through the same hooks the
            // datapath fires, so scheme-specific transitions (escape
            // entry, global-hop classes) need no duplicate logic.
            Packet moved = pkt;
            onHop(moved, r, p);
            onVcGranted(moved, r, p, v);

            RouteHop h;
            h.outport = p;
            h.vc = v;
            RouteState &ns = h.next;
            ns.router = l->dst;
            ns.dest = s.dest;
            ns.vnet = s.vnet;
            // VC classes only ever compare against vcsPerVnet - 1, so
            // saturating keeps the state space finite without changing
            // any allowedVcs() answer.
            ns.globalHops = std::min(moved.globalHops, vcsPerVnet());
            ns.onEscape = moved.onEscape;
            if (l->dst == s.dest || (s.misrouting && l->dst == s.target)) {
                // Reached the destination (routers eject on arrival even
                // mid-misroute) or the intermediate: phase 2 begins.
                ns.target = s.dest;
                ns.misrouting = false;
            } else {
                ns.target = s.target;
                ns.misrouting = s.misrouting;
            }
            out.push_back(h);
        }
    }
}

void
RoutingAlgorithm::escapeVcs(VnetId, std::vector<VcId> &out) const
{
    out.clear();
}

bool
RoutingAlgorithm::sccProtectedByFlowControl(
    const std::vector<StaticChannel> &) const
{
    return false;
}

VcId
RoutingAlgorithm::vnetVcBase(VnetId vnet) const
{
    return vnet * net_->config().vcsPerVnet;
}

int
RoutingAlgorithm::vcsPerVnet() const
{
    return net_->config().vcsPerVnet;
}

void
applyVcReservation(const Network &net, const Packet &pkt,
                   std::vector<VcId> &vcs)
{
    const NetworkConfig &cfg = net.config();
    if (cfg.scheme != DeadlockScheme::StaticBubble)
        return;
    const int per = cfg.vcsPerVnet;
    if (pkt.onEscape) {
        // Recovery packets ride reserved VCs only.
        std::erase_if(vcs, [per](VcId v) { return v % per != per - 1; });
    } else {
        std::erase_if(vcs, [per](VcId v) { return v % per == per - 1; });
    }
}

} // namespace spin
