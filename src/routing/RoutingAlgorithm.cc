#include "routing/RoutingAlgorithm.hh"

#include <algorithm>

#include "common/Logging.hh"
#include "network/Network.hh"
#include "router/Router.hh"

namespace spin
{

void
RoutingAlgorithm::attach(Network &net)
{
    net_ = &net;
}

void
RoutingAlgorithm::sourceRoute(Packet &, RouterId)
{
}

PortId
RoutingAlgorithm::select(const Packet &pkt, const Router &r,
                         const std::vector<PortId> &cands) const
{
    SPIN_ASSERT(!cands.empty(), "no route candidates at router ", r.id(),
                " for ", pkt.toString());
    if (cands.size() == 1)
        return cands[0];

    // FAvORS selection (paper Sec. V): a random candidate whose next hop
    // has a free allowed VC; otherwise the candidate whose next-hop VC
    // has been active for the fewest cycles.
    const Cycle now = net_->now();
    std::vector<VcId> allowed;
    std::vector<PortId> free_cands;
    PortId best = cands[0];
    Cycle best_active = kNeverCycle;
    for (const PortId c : cands) {
        allowedVcs(pkt, r, c, allowed);
        applyVcReservation(*net_, pkt, allowed);
        const OutputUnit &out = r.output(c);
        Cycle t_active = kNeverCycle;
        for (const VcId v : allowed) {
            if (out.isIdle(v)) {
                t_active = 0;
                break;
            }
            t_active = std::min(t_active, now - out.activeSince(v));
        }
        if (t_active == 0)
            free_cands.push_back(c);
        if (t_active < best_active) {
            best_active = t_active;
            best = c;
        }
    }
    if (!free_cands.empty())
        return free_cands[net_->rng().below(free_cands.size())];
    return best;
}

void
RoutingAlgorithm::allowedVcs(const Packet &pkt, const Router &,
                             PortId, std::vector<VcId> &out) const
{
    out.clear();
    const VcId base = vnetVcBase(pkt.vnet);
    for (int i = 0; i < vcsPerVnet(); ++i)
        out.push_back(base + i);
}

void
RoutingAlgorithm::injectionVcs(const Packet &pkt, const Router &r,
                               std::vector<VcId> &out) const
{
    allowedVcs(pkt, r, kInvalidId, out);
}

bool
RoutingAlgorithm::admission(const Packet &, const Router &, PortId,
                            PortId) const
{
    return true;
}

void
RoutingAlgorithm::onHop(Packet &, const Router &, PortId) const
{
}

void
RoutingAlgorithm::onVcGranted(Packet &, const Router &, PortId, VcId) const
{
}

VcId
RoutingAlgorithm::vnetVcBase(VnetId vnet) const
{
    return vnet * net_->config().vcsPerVnet;
}

int
RoutingAlgorithm::vcsPerVnet() const
{
    return net_->config().vcsPerVnet;
}

void
applyVcReservation(const Network &net, const Packet &pkt,
                   std::vector<VcId> &vcs)
{
    const NetworkConfig &cfg = net.config();
    if (cfg.scheme != DeadlockScheme::StaticBubble)
        return;
    const int per = cfg.vcsPerVnet;
    if (pkt.onEscape) {
        // Recovery packets ride reserved VCs only.
        std::erase_if(vcs, [per](VcId v) { return v % per != per - 1; });
    } else {
        std::erase_if(vcs, [per](VcId v) { return v % per == per - 1; });
    }
}

} // namespace spin
