#include "routing/Ugal.hh"

#include <algorithm>
#include <limits>

#include "common/Logging.hh"
#include "network/Network.hh"
#include "router/Router.hh"

namespace spin
{

void
Ugal::attach(Network &net)
{
    RoutingAlgorithm::attach(net);
    if (!net.topo().dragonfly)
        SPIN_FATAL("UGAL routing requires a dragonfly topology");
}

int
Ugal::minOccupancy(const Router &r, const std::vector<PortId> &ports) const
{
    int best = std::numeric_limits<int>::max();
    for (const PortId p : ports)
        best = std::min(best, r.output(p).occupancy());
    return best == std::numeric_limits<int>::max() ? 0 : best;
}

void
Ugal::sourceRoute(Packet &pkt, RouterId src)
{
    const Topology &topo = net_->topo();
    const RouterId dst = pkt.destRouter;
    if (src == dst)
        return;

    const Router &r = net_->router(src);
    const int hmin = topo.distance(src, dst);
    const int qmin = minOccupancy(r, topo.minimalPorts(src, dst));

    // One random Valiant candidate: any other router (UGAL-L flavor
    // with a single sampled detour).
    RouterId inter = kInvalidId;
    for (int tries = 0; tries < 8; ++tries) {
        const RouterId cand =
            static_cast<RouterId>(net_->rng().below(topo.numRouters()));
        if (cand != src && cand != dst) {
            inter = cand;
            break;
        }
    }
    if (inter == kInvalidId)
        return;

    const int hnm = topo.distance(src, inter) + topo.distance(inter, dst);
    const int qnm = minOccupancy(r, topo.minimalPorts(src, inter));
    if (qmin * hmin > qnm * hnm) {
        pkt.intermediate = inter;
        pkt.misroutes = 1;
    }
}

void
Ugal::candidates(const Packet &, const Router &r, RouterId target,
                 std::vector<PortId> &out) const
{
    const auto &ports = net_->topo().minimalPorts(r.id(), target);
    SPIN_ASSERT(!ports.empty(), "no minimal port");
    out.assign(ports.begin(), ports.end());
}

void
Ugal::allowedVcs(const Packet &pkt, const Router &, PortId,
                 std::vector<VcId> &out) const
{
    out.clear();
    const VcId base = vnetVcBase(pkt.vnet);
    if (!vcOrdered_) {
        for (int i = 0; i < vcsPerVnet(); ++i)
            out.push_back(base + i);
        return;
    }
    // Dally ordering: the VC class equals the global hops taken so far,
    // which strictly increases around any potential cycle.
    const int cls = std::min(pkt.globalHops, vcsPerVnet() - 1);
    out.push_back(base + cls);
}

void
Ugal::injectionVcs(const Packet &pkt, const Router &r,
                   std::vector<VcId> &out) const
{
    if (!vcOrdered_) {
        RoutingAlgorithm::injectionVcs(pkt, r, out);
        return;
    }
    out.clear();
    out.push_back(vnetVcBase(pkt.vnet)); // class 0 at injection
}

void
Ugal::onHop(Packet &pkt, const Router &r, PortId outport) const
{
    const LinkSpec *l = net_->topo().outLink(r.id(), outport);
    if (l && l->global)
        ++pkt.globalHops;
}

} // namespace spin
