#include "routing/Ugal.hh"

#include <algorithm>
#include <limits>

#include "common/Logging.hh"
#include "network/Network.hh"
#include "router/Router.hh"

namespace spin
{

void
Ugal::attach(Network &net)
{
    RoutingAlgorithm::attach(net);
    const Topology &topo = net.topo();
    if (!topo.dragonfly)
        SPIN_FATAL("UGAL routing requires a dragonfly topology");
    const DragonflyInfo &df = *topo.dragonfly;
    entry_.assign(static_cast<std::size_t>(df.g) * df.g, kInvalidId);
    exitRouter_.assign(entry_.size(), kInvalidId);
    exitPort_.assign(entry_.size(), kInvalidId);
    for (const LinkSpec &l : topo.links()) {
        if (!l.global)
            continue;
        const std::size_t pair = df.groupOf(l.src) * df.g +
                                 df.groupOf(l.dst);
        entry_[pair] = l.dst;
        exitRouter_[pair] = l.src;
        exitPort_[pair] = l.srcPort;
    }
}

int
Ugal::minOccupancy(const Router &r, const std::vector<PortId> &ports) const
{
    int best = std::numeric_limits<int>::max();
    for (const PortId p : ports)
        best = std::min(best, r.output(p).occupancy());
    return best == std::numeric_limits<int>::max() ? 0 : best;
}

void
Ugal::sourceRoute(Packet &pkt, RouterId src)
{
    const Topology &topo = net_->topo();
    const RouterId dst = pkt.destRouter;
    if (src == dst)
        return;

    const Router &r = net_->router(src);
    const int hmin = topo.distance(src, dst);
    const int qmin = minOccupancy(r, topo.minimalPorts(src, dst));

    // One random Valiant candidate. The ordered flavor must detour
    // through the gateway router its group's global channel enters the
    // detour group at: that keeps every path shaped l-g-l-g-l, where
    // the global-hop VC class strictly separates consecutive local
    // hops. An arbitrary-router detour puts two locals of the same VC
    // class back to back inside the intermediate group, and two such
    // packets circling opposite directions deadlock (the CDG cycle
    // spin_lint flags). The unordered flavor detours anywhere; SPIN
    // recovery owns its loops.
    // Draws come from the *source router's* stream: injection runs
    // sharded by attachment router, so the draw order at any one
    // router is fixed regardless of how other shards are scheduled.
    RouterId inter = kInvalidId;
    const DragonflyInfo &df = *topo.dragonfly;
    for (int tries = 0; tries < 8; ++tries) {
        if (vcOrdered_) {
            const int cand = static_cast<int>(r.rng().below(df.g));
            if (cand == df.groupOf(src) || cand == df.groupOf(dst))
                continue;
            const RouterId e = entry_[df.groupOf(src) * df.g + cand];
            if (e != kInvalidId && e != dst) {
                inter = e;
                break;
            }
        } else {
            const RouterId cand = static_cast<RouterId>(
                r.rng().below(topo.numRouters()));
            if (cand != src && cand != dst) {
                inter = cand;
                break;
            }
        }
    }
    if (inter == kInvalidId)
        return;

    const int hnm = topo.distance(src, inter) + topo.distance(inter, dst);
    const int qnm = minOccupancy(r, topo.minimalPorts(src, inter));
    if (qmin * hmin > qnm * hnm) {
        pkt.intermediate = inter;
        pkt.misroutes = 1;
    }
}

void
Ugal::candidates(const Packet &, const Router &r, RouterId target,
                 std::vector<PortId> &out) const
{
    const Topology &topo = net_->topo();
    if (!vcOrdered_) {
        const auto &ports = topo.minimalPorts(r.id(), target);
        SPIN_ASSERT(!ports.empty(), "no minimal port");
        out.assign(ports.begin(), ports.end());
        return;
    }
    // The ordered flavor routes hierarchically: local hop to the
    // gateway, the gateway's global channel, local hop to the target.
    // minimalPorts() would do, except that equal-hop-count ties can
    // detour through a third group (g-l-g is as short as l-g-l), and a
    // path with three global hops circulates inside the saturated top
    // VC class -- the ordering no longer proves acyclicity.
    const DragonflyInfo &df = *topo.dragonfly;
    const int rg = df.groupOf(r.id());
    const int tg = df.groupOf(target);
    out.clear();
    if (rg == tg) {
        const auto &ports = topo.minimalPorts(r.id(), target);
        SPIN_ASSERT(!ports.empty(), "no local port to group peer");
        out.push_back(ports.front());
        return;
    }
    const std::size_t pair = static_cast<std::size_t>(rg) * df.g + tg;
    const RouterId gw = exitRouter_[pair];
    SPIN_ASSERT(gw != kInvalidId, "no global channel from group ", rg,
                " to group ", tg);
    if (gw == r.id()) {
        out.push_back(exitPort_[pair]);
    } else {
        const auto &ports = topo.minimalPorts(r.id(), gw);
        SPIN_ASSERT(!ports.empty(), "no local port to gateway");
        out.push_back(ports.front());
    }
}

void
Ugal::allowedVcs(const Packet &pkt, const Router &, PortId,
                 std::vector<VcId> &out) const
{
    out.clear();
    const VcId base = vnetVcBase(pkt.vnet);
    if (!vcOrdered_) {
        for (int i = 0; i < vcsPerVnet(); ++i)
            out.push_back(base + i);
        return;
    }
    // Dally ordering: the VC class equals the global hops taken so far,
    // which strictly increases around any potential cycle.
    const int cls = std::min(pkt.globalHops, vcsPerVnet() - 1);
    out.push_back(base + cls);
}

void
Ugal::injectionVcs(const Packet &pkt, const Router &r,
                   std::vector<VcId> &out) const
{
    if (!vcOrdered_) {
        RoutingAlgorithm::injectionVcs(pkt, r, out);
        return;
    }
    out.clear();
    out.push_back(vnetVcBase(pkt.vnet)); // class 0 at injection
}

void
Ugal::initialStates(RouterId src, RouterId dest, VnetId vnet,
                    std::vector<RouteState> &out) const
{
    if (!vcOrdered_) {
        RoutingAlgorithm::initialStates(src, dest, vnet, out);
        return;
    }
    // The ordered flavor's detour set is exactly the gateway entries
    // sourceRoute can sample (see there); enumerating wider would flag
    // cycles on paths the algorithm never produces.
    out.clear();
    RouteState s;
    s.router = src;
    s.target = dest;
    s.dest = dest;
    s.vnet = vnet;
    out.push_back(s);
    const DragonflyInfo &df = *net_->topo().dragonfly;
    const int sg = df.groupOf(src);
    for (int gi = 0; gi < df.g; ++gi) {
        if (gi == sg || gi == df.groupOf(dest))
            continue;
        const RouterId e = entry_[sg * df.g + gi];
        if (e == kInvalidId || e == dest)
            continue;
        RouteState m = s;
        m.target = e;
        m.misrouting = true;
        out.push_back(m);
    }
}

void
Ugal::onHop(Packet &pkt, const Router &r, PortId outport) const
{
    const LinkSpec *l = net_->topo().outLink(r.id(), outport);
    if (l && l->global)
        ++pkt.globalHops;
}

} // namespace spin
