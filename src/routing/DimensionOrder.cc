#include "routing/DimensionOrder.hh"

#include "common/Logging.hh"
#include "network/Network.hh"
#include "router/Router.hh"

namespace spin
{

bool
DimensionOrder::selfDeadlockFree() const
{
    const auto &mesh = net_->topo().mesh;
    return mesh.has_value() && !mesh->wrap;
}

void
DimensionOrder::candidates(const Packet &, const Router &r,
                           RouterId target,
                           std::vector<PortId> &out) const
{
    out.clear();
    const Topology &topo = net_->topo();
    if (topo.mesh && !topo.mesh->wrap) {
        const MeshInfo &m = *topo.mesh;
        const int dx = m.xOf(target) - m.xOf(r.id());
        const int dy = m.yOf(target) - m.yOf(r.id());
        if (dx > 0)
            out.push_back(MeshInfo::kEast);
        else if (dx < 0)
            out.push_back(MeshInfo::kWest);
        else if (dy > 0)
            out.push_back(MeshInfo::kNorth);
        else if (dy < 0)
            out.push_back(MeshInfo::kSouth);
        SPIN_ASSERT(!out.empty(), "XY route requested at destination");
        return;
    }
    // Table fallback: deterministic lowest minimal port.
    const auto &ports = topo.minimalPorts(r.id(), target);
    SPIN_ASSERT(!ports.empty(), "no minimal port");
    out.push_back(ports.front());
}

} // namespace spin
