#include "routing/TorusBubble.hh"

#include "common/Logging.hh"
#include "network/Network.hh"
#include "router/Router.hh"

namespace spin
{

void
TorusBubble::attach(Network &net)
{
    RoutingAlgorithm::attach(net);
    if (!net.topo().mesh || !net.topo().mesh->wrap)
        SPIN_FATAL("bubble flow control requires a torus");
}

int
TorusBubble::wrapDelta(int from, int to, int k)
{
    int d = (to - from) % k;
    if (d < 0)
        d += k;
    // Prefer the positive (E/N) direction on ties.
    return d <= k / 2 ? d : d - k;
}

bool
TorusBubble::isXPort(PortId port)
{
    return port == MeshInfo::kEast || port == MeshInfo::kWest;
}

void
TorusBubble::candidates(const Packet &, const Router &r, RouterId target,
                        std::vector<PortId> &out) const
{
    out.clear();
    const MeshInfo &m = *net_->topo().mesh;
    const int dx = wrapDelta(m.xOf(r.id()), m.xOf(target), m.sizeX);
    const int dy = wrapDelta(m.yOf(r.id()), m.yOf(target), m.sizeY);
    if (dx > 0)
        out.push_back(MeshInfo::kEast);
    else if (dx < 0)
        out.push_back(MeshInfo::kWest);
    else if (dy > 0)
        out.push_back(MeshInfo::kNorth);
    else if (dy < 0)
        out.push_back(MeshInfo::kSouth);
    SPIN_ASSERT(!out.empty(), "DOR requested at destination");
}

int
TorusBubble::ringFreeVcs(const Router &r, PortId outport,
                         VnetId vnet) const
{
    const MeshInfo &m = *net_->topo().mesh;
    const VcId base = vnetVcBase(vnet);
    // Count from the *upstream output units*: allocation state updates
    // there the instant a VC is granted, so two admissions racing in
    // the same cycle see each other's reservations (counting the
    // downstream buffers instead lags by the link latency and lets
    // simultaneous entries break the bubble).
    const int x = m.xOf(r.id());
    const int y = m.yOf(r.id());
    int free_vcs = 0;
    if (isXPort(outport)) {
        for (int i = 0; i < m.sizeX; ++i) {
            const Router &rr = net_->router(m.routerAt(i, y));
            for (int v = 0; v < vcsPerVnet(); ++v)
                free_vcs += rr.output(outport).isIdle(base + v);
        }
    } else {
        for (int j = 0; j < m.sizeY; ++j) {
            const Router &rr = net_->router(m.routerAt(x, j));
            for (int v = 0; v < vcsPerVnet(); ++v)
                free_vcs += rr.output(outport).isIdle(base + v);
        }
    }
    return free_vcs;
}

bool
TorusBubble::sccProtectedByFlowControl(
    const std::vector<StaticChannel> &channels) const
{
    // The bubble admission rule keeps one free packet buffer in every
    // unidirectional ring, so a dependency cycle confined to a single
    // ring can never fill completely. Dimension-ordered candidates
    // admit no other kind of cycle; anything mixing rings is a real
    // hazard this guarantee does not cover.
    if (channels.empty())
        return false;
    const MeshInfo &m = *net_->topo().mesh;
    const PortId port = channels.front().srcPort;
    const bool xdim = isXPort(port);
    const int line = xdim ? m.yOf(channels.front().src)
                          : m.xOf(channels.front().src);
    for (const StaticChannel &c : channels) {
        if (c.srcPort != port)
            return false; // different direction or dimension
        if ((xdim ? m.yOf(c.src) : m.xOf(c.src)) != line)
            return false; // different ring of the same dimension
    }
    return true;
}

bool
TorusBubble::admission(const Packet &pkt, const Router &r, PortId inport,
                       PortId outport) const
{
    // Movement within a ring is never restricted; only *entering* a
    // ring (injection, or a dimension change) needs the bubble.
    const bool entering = r.input(inport).fromNic() ||
                          isXPort(inport) != isXPort(outport);
    if (!entering)
        return true;
    // After we take one buffer, at least one must remain free.
    return ringFreeVcs(r, outport, pkt.vnet) >= 2;
}

} // namespace spin
