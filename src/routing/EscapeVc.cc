#include "routing/EscapeVc.hh"

#include "common/Logging.hh"
#include "network/Network.hh"
#include "router/Router.hh"
#include "routing/WestFirst.hh"

namespace spin
{

void
EscapeVc::attach(Network &net)
{
    RoutingAlgorithm::attach(net);
    if (!net.topo().mesh || net.topo().mesh->wrap)
        SPIN_FATAL("escape-VC routing requires a (non-wrapping) mesh");
}

bool
EscapeVc::regularIdleAt(const Packet &pkt, const Router &r,
                        PortId port) const
{
    const OutputUnit &out = r.output(port);
    const VcId base = vnetVcBase(pkt.vnet);
    return out.hasIdleVcIn(base + 1, base + vcsPerVnet() - 1);
}

void
EscapeVc::candidates(const Packet &pkt, const Router &r, RouterId target,
                     std::vector<PortId> &out) const
{
    out.clear();
    const MeshInfo &m = *net_->topo().mesh;
    if (pkt.onEscape) {
        out.push_back(westFirstNextPort(m, r.id(), target));
        return;
    }
    const auto &ports = net_->topo().minimalPorts(r.id(), target);
    out.assign(ports.begin(), ports.end());
}

PortId
EscapeVc::select(const Packet &pkt, const Router &r,
                 const std::vector<PortId> &cands) const
{
    if (pkt.onEscape || cands.size() == 1)
        return cands[0];

    // Prefer a random adaptive candidate with a free regular VC; when
    // everything regular is taken, head for the escape channel.
    // Thread-local scratch: workers of the sharded step loop re-select
    // concurrently through this one shared algorithm instance.
    static thread_local std::vector<PortId> scratchFree;
    std::vector<PortId> &free_cands = scratchFree;
    free_cands.clear();
    for (const PortId c : cands) {
        if (regularIdleAt(pkt, r, c))
            free_cands.push_back(c);
    }
    if (!free_cands.empty())
        return free_cands[r.rng().below(free_cands.size())];
    return westFirstNextPort(*net_->topo().mesh, r.id(), pkt.destRouter);
}

void
EscapeVc::allowedVcs(const Packet &pkt, const Router &r, PortId outport,
                     std::vector<VcId> &out) const
{
    out.clear();
    const VcId base = vnetVcBase(pkt.vnet);
    if (pkt.onEscape) {
        out.push_back(escapeVc(pkt.vnet));
        return;
    }
    // Regular VCs first so they are preferred; the escape VC is legal
    // only along the west-first route (acyclic escape CDG).
    for (int i = 1; i < vcsPerVnet(); ++i)
        out.push_back(base + i);
    if (outport != kInvalidId &&
        outport == westFirstNextPort(*net_->topo().mesh, r.id(),
                                     pkt.destRouter)) {
        out.push_back(escapeVc(pkt.vnet));
    }
}

void
EscapeVc::injectionVcs(const Packet &pkt, const Router &r,
                       std::vector<VcId> &out) const
{
    // Injection may use regular VCs only; the source queue always
    // drains because the regular VCs recycle via the escape network.
    out.clear();
    const VcId base = vnetVcBase(pkt.vnet);
    for (int i = 1; i < vcsPerVnet(); ++i)
        out.push_back(base + i);
    (void)r;
}

void
EscapeVc::onVcGranted(Packet &pkt, const Router &, PortId, VcId vc) const
{
    if (vc == escapeVc(pkt.vnet))
        pkt.onEscape = true;
}

void
EscapeVc::escapeVcs(VnetId vnet, std::vector<VcId> &out) const
{
    out.clear();
    out.push_back(escapeVc(vnet));
}

} // namespace spin
