/**
 * @file
 * Routing algorithm interface.
 *
 * An algorithm answers three questions each cycle for a head packet at a
 * router: which output ports are acceptable (candidates), which one to
 * request right now (select, re-evaluated every cycle while blocked --
 * this is what makes routing adaptive), and which downstream VCs the
 * packet may acquire (allowedVcs -- this is where Dally-style VC
 * orderings and Duato escape restrictions live). Algorithms that
 * misroute (UGAL, FAvORS-NMin) additionally make a one-time decision at
 * the source (sourceRoute).
 */

#ifndef SPINNOC_ROUTING_ROUTINGALGORITHM_HH
#define SPINNOC_ROUTING_ROUTINGALGORITHM_HH

#include <string>
#include <vector>

#include "common/Packet.hh"
#include "common/Types.hh"

namespace spin
{

class Network;
class Router;

/**
 * Abstract per-packet routing state for static channel-dependency-graph
 * analysis (src/analysis). It captures exactly the Packet fields the
 * routing functions read -- destination, current target, escape /
 * misroute phase, global-hop VC class -- so the analyzer can enumerate
 * every state a packet can be in without simulating traffic.
 */
struct RouteState
{
    RouterId router = kInvalidId; //!< where the packet head is
    RouterId target = kInvalidId; //!< current routing target
    RouterId dest = kInvalidId;   //!< final destination router
    VnetId vnet = 0;
    /** Global links taken so far, saturated (VC-ordered schemes). */
    int globalHops = 0;
    /** True once the packet entered an escape / reserved layer. */
    bool onEscape = false;
    /** True while routing toward an intermediate router (phase 1). */
    bool misrouting = false;

    /** The packet ejects here: no further channel is demanded. */
    bool terminal() const { return router == dest; }
    bool operator==(const RouteState &) const = default;
};

/** One statically enumerated hop option: the per-VC channel taken
 *  (outport + downstream VC) and the resulting routing state. */
struct RouteHop
{
    PortId outport = kInvalidId;
    VcId vc = kInvalidId;
    RouteState next;
};

/** One per-VC channel as the static-analysis hooks see it. */
struct StaticChannel
{
    RouterId src = kInvalidId;
    PortId srcPort = kInvalidId;
    RouterId dst = kInvalidId;
    PortId dstPort = kInvalidId;
    VcId vc = kInvalidId;
};

/** Base class; see file comment. Stateless per packet: all per-packet
 *  state lives in the Packet record. */
class RoutingAlgorithm
{
  public:
    virtual ~RoutingAlgorithm() = default;

    /** Human-readable name (Table III row label). */
    virtual std::string name() const = 0;

    /** True when no legal minimal turn is ever prohibited. */
    virtual bool fullyAdaptive() const { return false; }
    /** True when the algorithm can misroute (needs livelock bound p). */
    virtual bool nonMinimal() const { return false; }
    /**
     * True when the algorithm is deadlock-free by itself (avoidance);
     * false when it relies on a recovery scheme such as SPIN.
     */
    virtual bool selfDeadlockFree() const { return false; }
    /** Minimum VCs per vnet this algorithm needs to operate. */
    virtual int minVcsPerVnet() const { return 1; }

    /**
     * Bind to a network. Called once by the Network constructor;
     * validates topology metadata requirements.
     */
    virtual void attach(Network &net);

    /**
     * One-time decision at the source router when the packet reaches
     * the head of its NIC queue (e.g. minimal-vs-Valiant).
     */
    virtual void sourceRoute(Packet &pkt, RouterId src);

    /**
     * Output ports @p pkt may take at router @p r this cycle, written
     * into @p out (cleared first). Never includes the ejection port:
     * the router ejects when destRouter == r. Must be non-empty.
     *
     * @param target the packet's current routing target (the
     *        intermediate router during a misroute phase, otherwise the
     *        destination router)
     */
    virtual void candidates(const Packet &pkt, const Router &r,
                            RouterId target,
                            std::vector<PortId> &out) const = 0;

    /**
     * Choose this cycle's requested port among @p cands.
     * Default policy is the paper's FAvORS selection (Sec. V): prefer a
     * random candidate whose next-hop has a free allowed VC, otherwise
     * the candidate whose next-hop VC has been active the fewest cycles.
     */
    virtual PortId select(const Packet &pkt, const Router &r,
                          const std::vector<PortId> &cands) const;

    /**
     * Downstream VC indices @p pkt may acquire when leaving @p r via
     * @p outport, written into @p out (cleared first). Default: every
     * VC of the packet's vnet.
     */
    virtual void allowedVcs(const Packet &pkt, const Router &r,
                            PortId outport, std::vector<VcId> &out) const;

    /** VCs a NIC may inject into at the source router's local port.
     *  Default: same as allowedVcs toward the local in-port. */
    virtual void injectionVcs(const Packet &pkt, const Router &r,
                              std::vector<VcId> &out) const;

    /**
     * Admission check consulted before downstream-VC allocation; used
     * by flow-control schemes (bubble flow control) to gate entry into
     * a resource class. Default: always admit.
     */
    virtual bool admission(const Packet &pkt, const Router &r,
                           PortId inport, PortId outport) const;

    /** Hook: head flit committed to leave @p r via @p outport. */
    virtual void onHop(Packet &pkt, const Router &r, PortId outport) const;

    /** Hook: downstream VC granted (escape-network tracking). */
    virtual void onVcGranted(Packet &pkt, const Router &r, PortId outport,
                             VcId vc) const;

    /// @name Static analysis (spin-lint / src/analysis)
    /// @{
    /**
     * Routing states a packet injected at @p src toward @p dest can
     * start in. Default: the single minimal state; misrouting
     * algorithms (nonMinimal()) additionally start one phase-1 state
     * per possible intermediate router.
     */
    virtual void initialStates(RouterId src, RouterId dest, VnetId vnet,
                               std::vector<RouteState> &out) const;

    /**
     * Every (outport, downstream VC) channel a packet in state @p s may
     * demand next, with the state it would then be in. The default
     * derives the set mechanically from candidates() x allowedVcs()
     * (with the deadlock scheme's VC reservation applied) and advances
     * the state through the onHop / onVcGranted hooks, so most
     * algorithms need no override. Empty when @p s is terminal.
     */
    virtual void enumerateHops(const RouteState &s,
                               std::vector<RouteHop> &out) const;

    /**
     * VCs of @p vnet forming a Duato-style escape layer, written into
     * @p out (cleared first). Empty (the default) means the algorithm
     * declares no escape layer; a non-empty answer makes the analyzer
     * run the escape-subgraph acyclicity + reachability checks.
     */
    virtual void escapeVcs(VnetId vnet, std::vector<VcId> &out) const;

    /**
     * True when the algorithm's flow control guarantees that the
     * dependency cycles inside the strongly connected component formed
     * by @p channels can never completely fill (e.g. bubble flow
     * control keeps one free packet buffer per torus ring). Default:
     * no such guarantee.
     */
    virtual bool sccProtectedByFlowControl(
        const std::vector<StaticChannel> &channels) const;
    /// @}

  protected:
    Network *net_ = nullptr;

    /** First and last VC index of @p vnet given the attached config. */
    VcId vnetVcBase(VnetId vnet) const;
    int vcsPerVnet() const;

};

/**
 * Remove VCs the deadlock scheme reserves (Static Bubble keeps the last
 * VC of every vnet for recovery) from an allowed-VC list, unless the
 * packet is already on the recovery network.
 */
void applyVcReservation(const Network &net, const Packet &pkt,
                        std::vector<VcId> &vcs);

} // namespace spin

#endif // SPINNOC_ROUTING_ROUTINGALGORITHM_HH
