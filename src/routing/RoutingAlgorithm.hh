/**
 * @file
 * Routing algorithm interface.
 *
 * An algorithm answers three questions each cycle for a head packet at a
 * router: which output ports are acceptable (candidates), which one to
 * request right now (select, re-evaluated every cycle while blocked --
 * this is what makes routing adaptive), and which downstream VCs the
 * packet may acquire (allowedVcs -- this is where Dally-style VC
 * orderings and Duato escape restrictions live). Algorithms that
 * misroute (UGAL, FAvORS-NMin) additionally make a one-time decision at
 * the source (sourceRoute).
 */

#ifndef SPINNOC_ROUTING_ROUTINGALGORITHM_HH
#define SPINNOC_ROUTING_ROUTINGALGORITHM_HH

#include <string>
#include <vector>

#include "common/Packet.hh"
#include "common/Types.hh"

namespace spin
{

class Network;
class Router;

/** Base class; see file comment. Stateless per packet: all per-packet
 *  state lives in the Packet record. */
class RoutingAlgorithm
{
  public:
    virtual ~RoutingAlgorithm() = default;

    /** Human-readable name (Table III row label). */
    virtual std::string name() const = 0;

    /** True when no legal minimal turn is ever prohibited. */
    virtual bool fullyAdaptive() const { return false; }
    /** True when the algorithm can misroute (needs livelock bound p). */
    virtual bool nonMinimal() const { return false; }
    /**
     * True when the algorithm is deadlock-free by itself (avoidance);
     * false when it relies on a recovery scheme such as SPIN.
     */
    virtual bool selfDeadlockFree() const { return false; }
    /** Minimum VCs per vnet this algorithm needs to operate. */
    virtual int minVcsPerVnet() const { return 1; }

    /**
     * Bind to a network. Called once by the Network constructor;
     * validates topology metadata requirements.
     */
    virtual void attach(Network &net);

    /**
     * One-time decision at the source router when the packet reaches
     * the head of its NIC queue (e.g. minimal-vs-Valiant).
     */
    virtual void sourceRoute(Packet &pkt, RouterId src);

    /**
     * Output ports @p pkt may take at router @p r this cycle, written
     * into @p out (cleared first). Never includes the ejection port:
     * the router ejects when destRouter == r. Must be non-empty.
     *
     * @param target the packet's current routing target (the
     *        intermediate router during a misroute phase, otherwise the
     *        destination router)
     */
    virtual void candidates(const Packet &pkt, const Router &r,
                            RouterId target,
                            std::vector<PortId> &out) const = 0;

    /**
     * Choose this cycle's requested port among @p cands.
     * Default policy is the paper's FAvORS selection (Sec. V): prefer a
     * random candidate whose next-hop has a free allowed VC, otherwise
     * the candidate whose next-hop VC has been active the fewest cycles.
     */
    virtual PortId select(const Packet &pkt, const Router &r,
                          const std::vector<PortId> &cands) const;

    /**
     * Downstream VC indices @p pkt may acquire when leaving @p r via
     * @p outport, written into @p out (cleared first). Default: every
     * VC of the packet's vnet.
     */
    virtual void allowedVcs(const Packet &pkt, const Router &r,
                            PortId outport, std::vector<VcId> &out) const;

    /** VCs a NIC may inject into at the source router's local port.
     *  Default: same as allowedVcs toward the local in-port. */
    virtual void injectionVcs(const Packet &pkt, const Router &r,
                              std::vector<VcId> &out) const;

    /**
     * Admission check consulted before downstream-VC allocation; used
     * by flow-control schemes (bubble flow control) to gate entry into
     * a resource class. Default: always admit.
     */
    virtual bool admission(const Packet &pkt, const Router &r,
                           PortId inport, PortId outport) const;

    /** Hook: head flit committed to leave @p r via @p outport. */
    virtual void onHop(Packet &pkt, const Router &r, PortId outport) const;

    /** Hook: downstream VC granted (escape-network tracking). */
    virtual void onVcGranted(Packet &pkt, const Router &r, PortId outport,
                             VcId vc) const;

  protected:
    Network *net_ = nullptr;

    /** First and last VC index of @p vnet given the attached config. */
    VcId vnetVcBase(VnetId vnet) const;
    int vcsPerVnet() const;
};

/**
 * Remove VCs the deadlock scheme reserves (Static Bubble keeps the last
 * VC of every vnet for recovery) from an allowed-VC list, unless the
 * packet is already on the recovery network.
 */
void applyVcReservation(const Network &net, const Packet &pkt,
                        std::vector<VcId> &vcs);

} // namespace spin

#endif // SPINNOC_ROUTING_ROUTINGALGORITHM_HH
