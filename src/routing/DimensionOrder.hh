/**
 * @file
 * Deterministic dimension-ordered (XY) routing.
 *
 * On a mesh this is the textbook XY route: finish the X dimension, then
 * Y; its channel dependency graph is acyclic, so it is deadlock-free by
 * Dally's theory without help. On any other topology it degenerates to
 * the lowest-numbered minimal port from the tables (deterministic but
 * not deadlock-free in general -- e.g. on a torus or ring).
 */

#ifndef SPINNOC_ROUTING_DIMENSIONORDER_HH
#define SPINNOC_ROUTING_DIMENSIONORDER_HH

#include "routing/RoutingAlgorithm.hh"

namespace spin
{

/** See file comment. */
class DimensionOrder : public RoutingAlgorithm
{
  public:
    std::string name() const override { return "xy-dor"; }
    bool selfDeadlockFree() const override;
    void candidates(const Packet &pkt, const Router &r, RouterId target,
                    std::vector<PortId> &out) const override;
};

} // namespace spin

#endif // SPINNOC_ROUTING_DIMENSIONORDER_HH
