/**
 * @file
 * Duato-style escape-VC routing for meshes (the paper's EscapeVC
 * baseline): VC 0 of each vnet is the escape channel routed west-first
 * (acyclic CDG); the remaining VCs route fully adaptive minimal. A
 * packet that cannot find a free regular VC falls into the escape
 * network and, conservatively, stays there until ejection -- Duato's
 * sufficient condition holds either way.
 */

#ifndef SPINNOC_ROUTING_ESCAPEVC_HH
#define SPINNOC_ROUTING_ESCAPEVC_HH

#include "routing/RoutingAlgorithm.hh"

namespace spin
{

/** See file comment. */
class EscapeVc : public RoutingAlgorithm
{
  public:
    std::string name() const override { return "escape-vc"; }
    bool fullyAdaptive() const override { return true; }
    bool selfDeadlockFree() const override { return true; }
    int minVcsPerVnet() const override { return 2; }

    void attach(Network &net) override;
    void candidates(const Packet &pkt, const Router &r, RouterId target,
                    std::vector<PortId> &out) const override;
    PortId select(const Packet &pkt, const Router &r,
                  const std::vector<PortId> &cands) const override;
    void allowedVcs(const Packet &pkt, const Router &r, PortId outport,
                    std::vector<VcId> &out) const override;
    void injectionVcs(const Packet &pkt, const Router &r,
                      std::vector<VcId> &out) const override;
    void onVcGranted(Packet &pkt, const Router &r, PortId outport,
                     VcId vc) const override;
    void escapeVcs(VnetId vnet, std::vector<VcId> &out) const override;

  private:
    /** Escape VC index for @p vnet. */
    VcId escapeVc(VnetId vnet) const { return vnetVcBase(vnet); }
    /** True when any candidate's regular VCs have a free slot. */
    bool regularIdleAt(const Packet &pkt, const Router &r,
                       PortId port) const;
};

} // namespace spin

#endif // SPINNOC_ROUTING_ESCAPEVC_HH
