/**
 * @file
 * Statistics engine: traffic counters with warmup-reset semantics plus
 * the SPIN event counters the paper's evaluation section reports
 * (probes, moves, spins, false positives -- Fig. 8b and Fig. 9).
 */

#ifndef SPINNOC_STATS_STATS_HH
#define SPINNOC_STATS_STATS_HH

#include <cstdint>
#include <vector>

#include "common/Packet.hh"
#include "common/Types.hh"
#include "obs/Json.hh"

namespace spin
{

/** See file comment. All counters cover the current measurement window
 *  (since the last reset()). */
class Stats
{
  public:
    /// @name Traffic
    /// @{
    std::uint64_t packetsCreated = 0;
    std::uint64_t packetsInjected = 0;
    std::uint64_t packetsEjected = 0;
    std::uint64_t flitsCreated = 0;
    std::uint64_t flitsInjected = 0;
    std::uint64_t flitsEjected = 0;
    std::uint64_t latencySum = 0;
    std::uint64_t netLatencySum = 0;
    std::uint64_t hopsSum = 0;
    std::uint64_t maxLatency = 0;
    std::uint64_t spinsOfEjected = 0;
    /** log2-bucketed end-to-end latency histogram. */
    std::vector<std::uint64_t> latencyHist;
    /// @}

    /// @name SPIN events
    /// @{
    std::uint64_t probesSent = 0;
    std::uint64_t probesForked = 0;
    std::uint64_t probesDropped = 0;
    std::uint64_t probesReturned = 0;
    /// @name Probe drop reasons (diagnostics)
    /// @{
    std::uint64_t probeDropPriority = 0;  //!< rotating-priority filter
    std::uint64_t probeDropInactive = 0;  //!< a free VC at the in-port
    std::uint64_t probeDropNoDep = 0;     //!< only ejection/no requests
    std::uint64_t probeDropHops = 0;      //!< path cap exceeded
    std::uint64_t probeDropStale = 0;     //!< own probe in wrong state
    /// @}
    std::uint64_t movesSent = 0;
    std::uint64_t movesDropped = 0;
    std::uint64_t movesReturned = 0;
    std::uint64_t probeMovesSent = 0;
    std::uint64_t probeMovesDropped = 0;
    std::uint64_t probeMovesReturned = 0;
    std::uint64_t killMovesSent = 0;
    std::uint64_t smContentionDrops = 0;
    /** Completed synchronized rotations (one per loop per rotation). */
    std::uint64_t spins = 0;
    /** Rotations counted as false positives (see DESIGN.md Sec. 1.3). */
    std::uint64_t falsePositiveSpins = 0;
    /** Transfers cancelled by the defensive safety fixpoint. */
    std::uint64_t spinsCancelled = 0;
    /** Packets moved one hop by rotations. */
    std::uint64_t packetsRotated = 0;
    /// @}

    /// @name Baseline recovery events
    /// @{
    /** Static Bubble reserved-VC grants. */
    std::uint64_t bubbleRecoveries = 0;
    /// @}

    /// @name Fault injection (src/fault)
    /// @{
    /** Permanent link-failure events applied. */
    std::uint64_t linksFailed = 0;
    /** Permanent router-failure events applied. */
    std::uint64_t routersFailed = 0;
    /** Transient (corrupt/drop) events armed. */
    std::uint64_t transientFaults = 0;
    /** Packets purged because no surviving path to their destination
     *  exists (in-network purge or NIC admission gate). */
    std::uint64_t packetsUnroutable = 0;
    /** Packets whose route fell back to the degraded minimal tables. */
    std::uint64_t packetsRerouted = 0;
    /** Packets retired because they touched a dead router. */
    std::uint64_t packetsLostToFaults = 0;
    /** Flits discarded at or inside dead routers. */
    std::uint64_t flitsLostToFaults = 0;
    /** Ejected packets carrying a corruption mark. */
    std::uint64_t packetsCorrupted = 0;
    /** Ejected packets discarded by the destination NIC (drop fault). */
    std::uint64_t packetsDroppedAtNic = 0;
    /// @}

    /// @name End-to-end reliability (reliability.enabled, docs/FAULTS.md)
    /// @{
    /** Corrupted link transmissions detected by the per-hop checksum. */
    std::uint64_t crcFails = 0;
    /** Link-level retransmission attempts that recovered a flit. */
    std::uint64_t linkRetries = 0;
    /** End-to-end packet retransmissions (timeout-driven copies). */
    std::uint64_t retransmits = 0;
    /** Duplicate copies suppressed at the destination NIC. */
    std::uint64_t dupDrops = 0;
    /** Delivered packets that needed link retry or retransmission. */
    std::uint64_t recoveredPackets = 0;
    /** Packets abandoned after maxRetransmits attempts (escalation
     *  ladder exhausted). */
    std::uint64_t packetsAbandoned = 0;
    /** Livelock-watchdog alarms (packet alive past watchdogBudget). */
    std::uint64_t watchdogAlarms = 0;
    /// @}

    /** Start of the current measurement window. */
    Cycle windowStart = 0;

    /** Record an ejected packet. */
    void onEject(const Packet &pkt);

    /** Zero every counter and open a new window at @p now. */
    void reset(Cycle now);

    /**
     * Fold @p o into this record: counters and histogram buckets add,
     * maxLatency takes the max, windowStart is untouched. Every field
     * is commutative under merge, which is what lets the sharded step
     * loop stage per-thread Stats and commit them in any grouping with
     * bit-identical results (docs/SCALING.md). A new counter added to
     * this class MUST be added here (MergesEveryField in
     * tests/test_metrics.cc guards the full field list).
     */
    void mergeFrom(const Stats &o);

    /// @name Derived metrics
    /// @{
    /**
     * Latency percentile estimated from the log2 histogram (exact
     * bucket, geometric interpolation within it). p in (0, 1].
     */
    double latencyPercentile(double p) const;
    double avgLatency() const;
    double avgNetLatency() const;
    double avgHops() const;
    /** Received throughput in flits/node/cycle over the window. */
    double throughput(int num_nodes, Cycle now) const;
    /// @}

    /**
     * Machine-readable export: every counter above plus the derived
     * averages and the raw latency histogram, as an ordered JSON
     * object. Round-trips through obs::JsonValue::parse exactly for
     * counters below 2^53 (all of them, in practice).
     */
    obs::JsonValue toJson() const;
};

} // namespace spin

#endif // SPINNOC_STATS_STATS_HH
